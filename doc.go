// Package symriscv is a from-scratch Go reproduction of "Processor
// Verification using Symbolic Execution: A RISC-V Case-Study" (Bruns, Herdt,
// Drechsler — DATE 2023): cross-level processor verification that
// co-simulates an RTL RISC-V core against an instruction-set-simulator
// reference model under a symbolic execution engine, searching for
// satisfiable functional mismatches and emitting concrete test vectors.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map), is exercised by the symv command and the runnable examples, and
// regenerates the paper's evaluation via the benchmarks in bench_test.go
// and the runners in internal/harness.
package symriscv
