module symriscv

go 1.22
