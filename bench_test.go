// Benchmarks regenerating the paper's evaluation artefacts. One benchmark
// per table/figure plus the ablations called out in DESIGN.md:
//
//   - BenchmarkTable1Campaign — Table I (errors & mismatches catalogue)
//   - BenchmarkTable2         — Table II (one sub-benchmark per injected
//     fault and instruction limit; the reported metric is time-to-bug)
//   - BenchmarkLongRun        — the §V-A exemplary exploration statistics
//   - BenchmarkAblationSlicedRegs — sliced vs wide symbolic register files
//   - BenchmarkAblationInstrLimit — instruction limit 1 vs 2 growth
//   - BenchmarkSolverDecodeQuery / BenchmarkEngineForkStep — substrate costs
package symriscv_test

import (
	"fmt"
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/fuzz"
	"symriscv/internal/harness"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// BenchmarkTable1Campaign times one full Table I probe campaign (shipped
// core vs shipped VP, all probe scenarios).
func BenchmarkTable1Campaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.RunTable1(harness.Table1Options{
			PerProbeTime: 60 * time.Second,
		})
		if len(res.Rows) < 25 {
			b.Fatalf("campaign degraded: only %d rows", len(res.Rows))
		}
		b.ReportMetric(float64(len(res.Rows)), "rows")
		b.ReportMetric(float64(res.Stats.Paths), "paths")
	}
}

// BenchmarkTable2 regenerates each Table II cell: time-to-first-mismatch for
// every injected fault at instruction limits 1 and 2.
func BenchmarkTable2(b *testing.B) {
	for _, limit := range []int{1, 2} {
		for _, f := range faults.All() {
			f, limit := f, limit
			b.Run(fmt.Sprintf("%s/limit%d", f, limit), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					coreCfg := microrv32.FixedConfig()
					coreCfg.Faults = faults.Only(f)
					cfg := cosim.Config{
						ISS:        iss.FixedConfig(),
						Core:       coreCfg,
						Filter:     cosim.BlockSystemInstructions,
						InstrLimit: limit,
					}
					x := core.NewExplorer(cosim.RunFunc(cfg))
					rep := x.Explore(core.Options{
						StopOnFirstFinding: true,
						MaxTime:            120 * time.Second,
					})
					if len(rep.Findings) == 0 {
						b.Fatalf("%s not found at limit %d", f, limit)
					}
					b.ReportMetric(float64(rep.Stats.Instructions), "instrs")
					b.ReportMetric(float64(rep.Stats.Completed), "paths")
					b.ReportMetric(float64(rep.Stats.Partial), "partial")
				}
			})
		}
	}
}

// BenchmarkLongRun times a budgeted comprehensive exploration (the paper's
// §V-A exemplary run, scaled to a fixed wall budget).
func BenchmarkLongRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.LongRun(harness.LongRunOptions{
			Common:     harness.Common{Workers: 1, Budget: 5 * time.Second},
			InstrLimit: 1,
			NumRegs:    2,
		})
		b.ReportMetric(float64(res.Report.Stats.Paths), "paths")
		b.ReportMetric(float64(res.Report.Stats.Instructions), "instrs")
		b.ReportMetric(float64(len(res.Report.TestVectors)), "testvecs")
	}
}

// BenchmarkAblationSlicedRegs measures the cost of exploring the OP-IMM
// class as the symbolic register slice grows — the paper's motivation for
// slicing (unsliced exploration "requires more than 30 days").
func BenchmarkAblationSlicedRegs(b *testing.B) {
	for _, regs := range []int{2, 4, 8} {
		regs := regs
		b.Run(fmt.Sprintf("regs%d", regs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cosim.Config{
					ISS:             iss.FixedConfig(),
					Core:            microrv32.FixedConfig(),
					Filter:          cosim.OnlyOpcode(riscv.OpImm),
					NumSymbolicRegs: regs,
					InstrLimit:      1,
				}
				x := core.NewExplorer(cosim.RunFunc(cfg))
				rep := x.Explore(core.Options{MaxPaths: 800, MaxTime: 60 * time.Second})
				b.ReportMetric(float64(rep.Stats.Paths), "paths")
			}
		})
	}
}

// BenchmarkAblationInstrLimit measures exploration growth from instruction
// limit 1 to 2 on one ALU class (Table II discussion).
func BenchmarkAblationInstrLimit(b *testing.B) {
	for _, limit := range []int{1, 2} {
		limit := limit
		b.Run(fmt.Sprintf("limit%d", limit), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cosim.Config{
					ISS:        iss.FixedConfig(),
					Core:       microrv32.FixedConfig(),
					Filter:     cosim.OnlyOpcode(riscv.OpReg),
					InstrLimit: limit,
				}
				x := core.NewExplorer(cosim.RunFunc(cfg))
				rep := x.Explore(core.Options{MaxPaths: 700, MaxTime: 60 * time.Second})
				b.ReportMetric(float64(rep.Stats.Paths), "paths")
				b.ReportMetric(float64(rep.Stats.Instructions), "instrs")
			}
		})
	}
}

// BenchmarkSolverDecodeQuery measures the incremental QF_BV query pattern of
// the decode chains: repeated mask/match feasibility checks on one solver.
func BenchmarkSolverDecodeQuery(b *testing.B) {
	ctx := smt.NewContext()
	s := solver.New(ctx)
	insn := ctx.Var("insn", 32)
	opcode := ctx.And(insn, ctx.BV(32, 0x707f))
	matches := []uint64{0x33, 0x13, 0x63, 0x03, 0x23, 0x37, 0x17, 0x6f, 0x67, 0x73}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := matches[i%len(matches)]
		if s.Check(ctx.Eq(opcode, ctx.BV(32, m))) != solver.Sat {
			b.Fatal("decode query must be satisfiable")
		}
	}
}

// BenchmarkEngineForkStep measures a full co-simulation path execution
// (replay + one fresh symbolic instruction) including all solver traffic.
func BenchmarkEngineForkStep(b *testing.B) {
	cfg := cosim.Config{
		ISS:        iss.FixedConfig(),
		Core:       microrv32.FixedConfig(),
		Filter:     cosim.BlockSystemInstructions,
		InstrLimit: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := core.NewExplorer(cosim.RunFunc(cfg))
		rep := x.Explore(core.Options{MaxPaths: 25})
		if rep.Stats.Paths == 0 {
			b.Fatal("no paths explored")
		}
	}
}

// BenchmarkInterruptHunt measures the symbolic-interrupt extension: time to
// find the missing-MIE-gate fault.
func BenchmarkInterruptHunt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		coreCfg := microrv32.FixedConfig()
		coreCfg.IgnoreMIEBug = true
		cfg := cosim.Config{
			ISS:                iss.FixedConfig(),
			Core:               coreCfg,
			Filter:             cosim.BlockSystemInstructions,
			SymbolicInterrupts: true,
			StartPC:            0x100,
		}
		x := core.NewExplorer(cosim.RunFunc(cfg))
		rep := x.Explore(core.Options{StopOnFirstFinding: true, MaxTime: 60 * time.Second})
		if len(rep.Findings) == 0 {
			b.Fatal("MIE bug not found")
		}
		b.ReportMetric(float64(rep.Stats.Paths), "paths")
	}
}

// BenchmarkBaselineFuzzing measures the fuzzing baseline's time-to-bug for a
// reachable fault (E6), complementing BenchmarkTable2's symbolic numbers.
func BenchmarkBaselineFuzzing(b *testing.B) {
	coreCfg := microrv32.FixedConfig()
	coreCfg.Faults = faults.Only(faults.E6)
	base := cosim.Config{ISS: iss.FixedConfig(), Core: coreCfg, InstrLimit: 1}
	for i := 0; i < b.N; i++ {
		c := fuzz.Campaign{Seed: int64(i + 1), Strategy: fuzz.StrategyValid, Base: base}
		res := c.Run(500000, 60*time.Second)
		if !res.Found {
			b.Fatal("fuzzing failed to find E6")
		}
		b.ReportMetric(float64(res.Trials), "trials")
	}
}

// BenchmarkTable2Pipeline reruns the error-injection study against the
// pipelined second core (the generality experiment).
func BenchmarkTable2Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.RunTable2(harness.Table2Options{
			PerCellTime: 60 * time.Second,
			Limits:      []int{1},
			Common:      harness.Common{Core: cosim.CorePipecore},
		})
		found, sum := res.Sum(1)
		if found != len(res.Rows) {
			b.Fatalf("pipeline campaign found %d/%d", found, len(res.Rows))
		}
		b.ReportMetric(float64(sum.Instr), "instrs")
	}
}

// BenchmarkEngineAblation quantifies the engine's branch optimizations
// (implication shortcut + eager sibling pruning) on an OP-IMM class sweep.
func BenchmarkEngineAblation(b *testing.B) {
	for _, mode := range []struct {
		name  string
		noOpt bool
	}{{"optimized", false}, {"ablated", true}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cosim.Config{
					ISS:        iss.FixedConfig(),
					Core:       microrv32.FixedConfig(),
					Filter:     cosim.OnlyOpcode(riscv.OpImm),
					InstrLimit: 1,
				}
				x := core.NewExplorer(cosim.RunFunc(cfg))
				rep := x.Explore(core.Options{
					MaxTime:               60 * time.Second,
					NoBranchOptimizations: mode.noOpt,
				})
				if !rep.Exhausted {
					b.Fatal("sweep not exhausted")
				}
				b.ReportMetric(float64(rep.Stats.SolverQueries), "queries")
				b.ReportMetric(float64(rep.Stats.Paths), "scheduled-paths")
			}
		})
	}
}
