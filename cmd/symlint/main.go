// Command symlint runs the repo's static invariant checkers (see
// internal/analysis) over the module:
//
//	go run ./cmd/symlint ./...          # all analyzers, whole module
//	go run ./cmd/symlint -run determinism ./internal/core
//	go run ./cmd/symlint -list
//
// It exits non-zero when any diagnostic survives the //symlint:allow
// directives, so CI can gate on it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"symriscv/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("symlint", flag.ExitOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: symlint [-list] [-run names] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	var names []string
	if *runNames != "" {
		names = strings.Split(*runNames, ",")
	}
	analyzers := analysis.ByName(names)
	if len(analyzers) == 0 {
		return fmt.Errorf("no analyzer matches -run=%s", *runNames)
	}

	root, err := moduleRoot()
	if err != nil {
		return err
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(root, fs.Args())
	if err != nil {
		return err
	}

	failed := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return err
		}
		for _, d := range diags {
			fmt.Println(d)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks upward from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
