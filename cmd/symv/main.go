// Command symv drives the symbolic RISC-V processor verification flow: it
// regenerates the paper's experiments (Table I, Table II, the exemplary long
// run, and the ablations) and runs individual bug hunts.
//
// Usage:
//
//	symv table1  [-probe-time 60s] [-max-paths 5000] [shared flags]
//	symv table2  [-cell-time 60s] [-limits 1,2] [-faults E0,E3] [shared flags]
//	symv hunt    [-fault E6] [-limit 1] [-shipped] [-regs 2] [-time 60s] [shared flags]
//	symv longrun [-budget 30s] [-limit 1] [-regs 2] [-coverage] [shared flags]
//	symv ablation [-kind regs|limit] [-budget 30s] [shared flags]
//	symv bench   [-budget 10s] [-quick] [-ablate] [-json-file BENCH_explore.json] [shared flags]
//	symv baseline [-cell-time 20s] [-trials 200000] [shared flags]
//	symv replay  [-fault E6] [-cycle-trace] [shared flags] name=hexvalue ...
//	symv trace   [-top 8] TRACE.jsonl
//	symv lint-table [-v] [shared flags]
//	symv lint-dut  [-allowlist LINTDUT.allow]
//	               [-sat-probe] [-regs 2] [-v] [shared flags]
//
// Every subcommand accepts the shared flag group:
//
//	-core NAME     device under test: microrv32 (default) | pipecore; the
//	               lint commands also accept both (their default)
//	-workers N     shard each exploration's path tree across N solver
//	               contexts (default GOMAXPROCS); results are identical to
//	               -workers 1 by construction (see internal/parexplore)
//	-cache on|off  query-elimination layer (stack models, independence
//	               slicing, feasibility caching)
//	-rewrite on|off extended term rewrites ahead of bit-blasting
//	-fork on|off   fork-point state checkpointing (siblings resume from a
//	               snapshot instead of replaying the decision prefix)
//	-json          emit machine-readable JSON instead of the table
//	-trace FILE    write a JSONL span/counter trace (inspect with symv trace)
//	-metrics       print the aggregated per-phase table to stderr afterwards
//
// -cache=off, -rewrite=off and -fork=off are ablation switches — reports are
// identical on and off by construction, only the solver and replay work
// changes (see internal/querycache, internal/core/snapshot.go). -trace and
// -metrics are side channels: they never change a report either (see
// internal/obs).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"symriscv/internal/smt"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/decodecheck"
	"symriscv/internal/dutlint"
	"symriscv/internal/faults"
	"symriscv/internal/harness"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/obs"
	"symriscv/internal/pipecore"
	"symriscv/internal/qstore"
	"symriscv/internal/rvfi"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// usageError marks an error caused by bad command-line input (unknown flag,
// malformed flag value, missing operand). The flag package has already
// printed the message and the flag-set usage when parsing failed; run maps
// every usageError to exit code 2, runtime failures to exit code 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }

// badUsage wraps a hand-raised usage error, printing it the same way the
// flag package reports a bad flag (message to stderr, then exit 2 via run).
func badUsage(stderr io.Writer, format string, args ...any) error {
	err := fmt.Errorf(format, args...)
	fmt.Fprintln(stderr, "symv:", err)
	return usageError{err}
}

// parseFlags runs one subcommand's flag parsing under the unified error
// contract: parse failures (which the flag set has already reported to
// stderr together with its usage text) come back as usageError.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	return nil
}

// run dispatches one symv invocation and returns its exit code: 0 on
// success, 2 for command-line usage errors (unknown command or flag, bad
// flag value — always accompanied by usage text on stderr), 1 for runtime
// failures.
func run(args []string, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "table1":
		err = cmdTable1(args[1:], stderr)
	case "table2":
		err = cmdTable2(args[1:], stderr)
	case "hunt":
		err = cmdHunt(args[1:], stderr)
	case "longrun":
		err = cmdLongRun(args[1:], stderr)
	case "ablation":
		err = cmdAblation(args[1:], stderr)
	case "bench":
		err = cmdBench(args[1:], stderr)
	case "baseline":
		err = cmdBaseline(args[1:], stderr)
	case "replay":
		err = cmdReplay(args[1:], stderr)
	case "trace":
		err = cmdTrace(args[1:], stderr)
	case "cache":
		err = cmdCache(args[1:], stderr)
	case "lint-table":
		err = cmdLintTable(args[1:], stderr)
	case "lint-dut":
		err = cmdLintDUT(args[1:], stderr)
	case "-h", "--help", "help":
		usage(stderr)
	default:
		fmt.Fprintf(stderr, "symv: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	switch err := err.(type) {
	case nil:
		return 0
	case usageError:
		return 2
	default:
		fmt.Fprintln(stderr, "symv:", err)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `symv — symbolic co-simulation verification of a RISC-V RTL core

commands:
  table1    regenerate the Table I error/mismatch catalogue
  table2    regenerate the Table II error-injection study
  hunt      hunt one injected fault (or the shipped bugs)
  longrun   budgeted comprehensive exploration statistics
  ablation  sliced-register or instruction-limit ablation
  bench     exploration throughput and time-to-bug at workers=1 vs N
  baseline  compare symbolic execution against fuzzing baselines
  replay    re-execute a test vector (name=hexvalue pairs) against a fault
  trace     digest a JSONL observability trace (from -trace FILE)
  cache     inspect or maintain a persistent witness store (-store DIR):
            stats | verify | gc | distill
  lint-table  statically verify the decode table (clean + all fault configs)
  lint-dut    static semantic lint of a core's symbolic transition relation

shared flags (every exploration command):
  -core microrv32|pipecore  -workers N  -cache on|off  -rewrite on|off
  -fork on|off  -store DIR  -json  -trace FILE  -metrics`)
}

// sharedFlags is the flag group every exploration subcommand registers: the
// worker count, the two ablation toggles, machine-readable output, and the
// observability sinks. It maps one-to-one onto harness.Common.
type sharedFlags struct {
	workers   *int
	core      *string
	cache     *string
	rewrite   *string
	inprocess *string
	portfolio *string
	fork      *string
	store     *string
	jsonOut   *bool
	trace     *string
	metrics   *bool

	// allowBothCores lets -core take "both"/"all" (the lint commands fan out
	// over every core themselves; campaigns verify exactly one).
	allowBothCores bool
	// deprecated collects deprecation notes recorded by legacy flag aliases
	// (e.g. table2's -dut); build surfaces them via harness.Common.Warnings.
	deprecated []string
}

// sharedGroup registers the shared flag group on a subcommand's flag set.
func sharedGroup(fs *flag.FlagSet) *sharedFlags {
	return &sharedFlags{
		workers: fs.Int("workers", runtime.GOMAXPROCS(0),
			"parallel exploration workers per exploration (1 = sequential; results are worker-count independent)"),
		core: fs.String("core", "",
			"device under test: microrv32 | pipecore (default microrv32; the lint commands also accept both)"),
		cache:     fs.String("cache", "on", "query-elimination layer (stack models, slicing, feasibility cache): on | off"),
		rewrite:   fs.String("rewrite", "on", "extended term rewrites ahead of bit-blasting: on | off"),
		inprocess: fs.String("inprocess", "on", "SAT-core inprocessing (subsumption, strengthening, variable elimination): on | off"),
		portfolio: fs.String("portfolio", "off", "diverse deterministic SAT heuristics per worker at -workers >= 2: on | off"),
		fork:      fs.String("fork", "on", "fork-point state checkpointing (siblings resume from snapshots instead of replaying the prefix): on | off"),
		store: fs.String("store", "",
			"persistent witness store directory: load compatible cache entries at startup, persist new ones at exploration boundaries (inspect with symv cache)"),
		jsonOut: fs.Bool("json", false, "emit machine-readable JSON instead of the table"),
		trace:   fs.String("trace", "", "write a JSONL span/counter trace to this file (inspect with symv trace)"),
		metrics: fs.Bool("metrics", false, "print the aggregated counter/phase table to stderr after the run"),
	}
}

// build validates the group, opens the observability sinks and (with -store)
// the persistent witness store session. keyParts are the subcommand's
// compatibility descriptors (DUT configuration, fault set, workload shape);
// together with the cache schema version they form the store's version key,
// so entries never leak between incompatible runs. A store directory that
// cannot be opened degrades to a cold cache with a stderr warning — it never
// fails the campaign. The returned finish func closes the store session and
// the recorder (flushing the trace file) and prints the -metrics table; call
// it after the campaign, before emitting results is fine too since all these
// sinks bypass stdout.
func (g *sharedFlags) build(cmd string, stderr io.Writer, keyParts ...string) (harness.Common, func() error, error) {
	c := harness.Common{Workers: *g.workers}
	var ok bool
	if c.Cache, ok = harness.ParseToggle(*g.cache); !ok {
		return c, nil, badUsage(stderr, "bad -cache=%q (want on or off)", *g.cache)
	}
	if c.Rewrite, ok = harness.ParseToggle(*g.rewrite); !ok {
		return c, nil, badUsage(stderr, "bad -rewrite=%q (want on or off)", *g.rewrite)
	}
	if c.Inprocess, ok = harness.ParseToggle(*g.inprocess); !ok {
		return c, nil, badUsage(stderr, "bad -inprocess=%q (want on or off)", *g.inprocess)
	}
	if c.Portfolio, ok = harness.ParseToggle(*g.portfolio); !ok {
		return c, nil, badUsage(stderr, "bad -portfolio=%q (want on or off)", *g.portfolio)
	}
	if c.Fork, ok = harness.ParseToggle(*g.fork); !ok {
		return c, nil, badUsage(stderr, "bad -fork=%q (want on or off)", *g.fork)
	}
	if g.allowBothCores && (*g.core == "" || isAllCores(*g.core)) {
		// The command fans out over every core itself (harness.LintDUTCores);
		// Common.Core stays at the zero value.
	} else if kind, ok := cosim.ParseCoreKind(*g.core); ok {
		c.Core = kind
	} else if g.allowBothCores {
		return c, nil, badUsage(stderr, "bad -core=%q (want microrv32, pipecore or both)", *g.core)
	} else {
		return c, nil, badUsage(stderr, "bad -core=%q (want microrv32 or pipecore)", *g.core)
	}
	c.DeprecatedFlags = g.deprecated
	for _, w := range c.Warnings() {
		fmt.Fprintln(stderr, "symv: warning:", w)
	}
	var traceFile *os.File
	if *g.trace != "" || *g.metrics {
		var w io.Writer
		if *g.trace != "" {
			f, err := os.Create(*g.trace)
			if err != nil {
				return c, nil, err
			}
			traceFile = f
			w = f
		}
		c.Obs = obs.New(obs.Options{Trace: w, Label: "symv " + cmd})
	}
	if *g.store != "" {
		key := qstore.VersionKey(append([]string{"cmd=" + cmd}, keyParts...)...)
		sess, err := qstore.OpenSession(*g.store, key)
		if err != nil {
			fmt.Fprintf(stderr, "symv: warning: store %s unavailable (%v); running with a cold cache\n", *g.store, err)
		} else {
			c.Store = sess
		}
	}
	finish := func() error {
		if c.Store != nil {
			if err := c.Store.Close(); err != nil {
				fmt.Fprintf(stderr, "symv: warning: store persist failed (%v); entries from this run may be lost\n", err)
			}
			c.Store.PublishObs(c.Obs)
			fmt.Fprintln(stderr, c.Store.Stats().Summary())
		}
		if c.Obs == nil {
			return nil
		}
		closeErr := c.Obs.Close()
		if *g.metrics {
			fmt.Fprint(stderr, c.Obs.FormatSnapshot())
		}
		if closeErr != nil {
			return closeErr
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "trace written to %s (inspect with: symv trace %s)\n", *g.trace, *g.trace)
		}
		return nil
	}
	return c, finish, nil
}

// isAllCores reports whether a -core value selects every core at once (only
// the lint commands accept this; campaigns verify exactly one core).
func isAllCores(v string) bool {
	switch strings.ToLower(v) {
	case "both", "all":
		return true
	}
	return false
}

// coreName returns the canonical name of the selected core for store version
// keys, so aliases ("", "pipeline") key identically to their canonical
// spelling. Unparseable values pass through lowercased; build rejects them
// before any store is opened.
func (g *sharedFlags) coreName() string {
	if k, ok := cosim.ParseCoreKind(*g.core); ok {
		return k.String()
	}
	return strings.ToLower(*g.core)
}

// deprecate records a deprecation note for build to surface through
// harness.Common.Warnings. Call before build.
func (g *sharedFlags) deprecate(note string) { g.deprecated = append(g.deprecated, note) }

// lintCores resolves -core for the lint commands, where the empty value and
// "both"/"all" fan out over every core.
func (g *sharedFlags) lintCores() []string { return harness.LintDUTCores(*g.core) }

// requireMicroRV32 rejects -core selections other than microrv32 for commands
// whose campaign is defined on the FSM core only.
func (g *sharedFlags) requireMicroRV32(cmd string, stderr io.Writer) error {
	if k, ok := cosim.ParseCoreKind(*g.core); ok && k == cosim.CorePipecore {
		return badUsage(stderr, "%s supports only -core microrv32", cmd)
	}
	return nil
}

func cmdTable1(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	fs.SetOutput(stderr)
	probeTime := fs.Duration("probe-time", 60*time.Second, "exploration budget per probe scenario")
	maxPaths := fs.Int("max-paths", 5000, "path budget per probe scenario")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	common, finish, err := shared.build("table1", stderr, "core="+shared.coreName())
	if err != nil {
		return err
	}
	res := harness.RunTable1(harness.Table1Options{
		PerProbeTime:     *probeTime,
		PerProbeMaxPaths: *maxPaths,
		Common:           common,
	})
	if *shared.jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return err
		}
		return finish()
	}
	fmt.Print(res.Format())
	fmt.Printf("campaign wall time: %s\n", res.Elapsed.Round(time.Millisecond))
	return finish()
}

func cmdTable2(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("table2", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cellTime := fs.Duration("cell-time", 60*time.Second, "budget per (fault, limit) cell")
	limitsArg := fs.String("limits", "1,2", "comma-separated instruction limits")
	faultsArg := fs.String("faults", "", "comma-separated fault subset (default all)")
	parallel := fs.Int("parallel", 1, "concurrent cells (each with its own solver)")
	dutArg := fs.String("dut", "", "deprecated alias of -core (microrv32 | pipecore)")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	if *dutArg != "" {
		kind, ok := cosim.ParseCoreKind(*dutArg)
		if !ok {
			return badUsage(stderr, "bad -dut=%q (want microrv32 or pipecore)", *dutArg)
		}
		if cur, curOK := cosim.ParseCoreKind(*shared.core); *shared.core != "" && (!curOK || cur != kind) {
			return badUsage(stderr, "-dut=%q conflicts with -core=%q; drop -dut", *dutArg, *shared.core)
		}
		*shared.core = kind.String()
		shared.deprecate("-dut is deprecated; use the shared -core flag (microrv32 | pipecore)")
	}

	limits, err := parseInts(*limitsArg)
	if err != nil {
		return badUsage(stderr, "bad -limits: %v", err)
	}
	var fset []faults.Fault
	if *faultsArg != "" {
		fset, err = parseFaults(*faultsArg)
		if err != nil {
			return badUsage(stderr, "%v", err)
		}
	}
	common, finish, err := shared.build("table2", stderr,
		"core="+shared.coreName(), "limits="+*limitsArg, "faults="+*faultsArg)
	if err != nil {
		return err
	}
	res := harness.RunTable2(harness.Table2Options{
		PerCellTime: *cellTime,
		Limits:      limits,
		Faults:      fset,
		Parallel:    *parallel,
		Common:      common,
	})
	if *shared.jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return err
		}
		return finish()
	}
	fmt.Print(res.Format())
	fmt.Printf("campaign wall time: %s\n", res.Elapsed.Round(time.Millisecond))
	return finish()
}

// findingJSON is the marshal-friendly view of a core.Finding: the error is
// rendered to a string (error values don't marshal usefully).
type findingJSON struct {
	Path   int
	Err    string
	Inputs smt.MapEnv `json:",omitempty"`
}

// reportJSON is the marshal-friendly view of a core.Report.
type reportJSON struct {
	Stats       core.Stats
	Exhausted   bool
	Findings    []findingJSON `json:",omitempty"`
	TestVectors int           `json:",omitempty"` // count; vectors are bulky
}

func toReportJSON(r *core.Report) reportJSON {
	out := reportJSON{
		Stats:       r.Stats,
		Exhausted:   r.Exhausted,
		TestVectors: len(r.TestVectors),
	}
	for _, f := range r.Findings {
		out.Findings = append(out.Findings, findingJSON{Path: f.Path, Err: f.Err.Error(), Inputs: f.Inputs})
	}
	return out
}

func cmdHunt(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("hunt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	faultArg := fs.String("fault", "", "fault to inject (E0..E14); empty = none")
	limit := fs.Int("limit", 1, "instruction limit")
	shipped := fs.Bool("shipped", false, "use the as-shipped (buggy) core and VP instead of the fixed baseline (microrv32 only)")
	regs := fs.Int("regs", 2, "symbolic register slice size")
	budget := fs.Duration("time", 60*time.Second, "exploration budget")
	all := fs.Bool("all", false, "collect all findings instead of stopping at the first")
	search := fs.String("search", "dfs", "search strategy: dfs | bfs | random")
	seed := fs.Int64("seed", 0, "seed for the random-path strategy")
	progress := fs.Bool("progress", false, "print live exploration statistics")
	irq := fs.Bool("interrupts", false, "drive a symbolic external-interrupt line")
	irqBug := fs.Bool("mie-bug", false, "inject the missing-MIE-gate interrupt fault")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	strategy, err := parseSearch(*search)
	if err != nil {
		return badUsage(stderr, "%v", err)
	}
	var fv []faults.Fault
	if *faultArg != "" {
		if fv, err = parseFaults(*faultArg); err != nil {
			return badUsage(stderr, "%v", err)
		}
	}
	if k, ok := cosim.ParseCoreKind(*shared.core); ok && k == cosim.CorePipecore {
		if *shipped {
			return badUsage(stderr, "-shipped is microrv32-only (pipecore has no as-shipped variant)")
		}
		if *irqBug {
			return badUsage(stderr, "-mie-bug is microrv32-only")
		}
	}
	common, finish, err := shared.build("hunt", stderr,
		"core="+shared.coreName(),
		fmt.Sprintf("shipped=%v", *shipped), "fault="+*faultArg,
		fmt.Sprintf("limit=%d", *limit), fmt.Sprintf("regs=%d", *regs),
		fmt.Sprintf("irq=%v", *irq || *irqBug), fmt.Sprintf("miebug=%v", *irqBug))
	if err != nil {
		return err
	}

	cfg := cosim.Config{
		ISS:                iss.FixedConfig(),
		Filter:             cosim.BlockSystemInstructions,
		InstrLimit:         *limit,
		NumSymbolicRegs:    *regs,
		SymbolicInterrupts: *irq || *irqBug,
		DUTCore:            common.Core,
	}
	if common.Core == cosim.CorePipecore {
		cfg.Pipe = pipecore.Config{Faults: faults.Of(fv...)}
	} else {
		coreCfg := microrv32.FixedConfig()
		if *shipped {
			coreCfg = microrv32.ShippedConfig()
			cfg.ISS = iss.VPConfig()
			cfg.Filter = nil
		}
		coreCfg.Faults = faults.Of(fv...)
		if *irqBug {
			coreCfg.IgnoreMIEBug = true
		}
		cfg.Core = coreCfg
	}
	if cfg.SymbolicInterrupts {
		cfg.StartPC = 0x100
	}
	opts := core.Options{
		StopOnFirstFinding: !*all,
		MaxTime:            *budget,
		Search:             strategy,
		Seed:               *seed,
	}
	if *progress {
		opts.Progress = func(s core.Stats) { fmt.Fprintf(stderr, "  ... %v\n", s) }
	}
	rep := harness.ExploreWith(cosim.RunFunc(cfg), harness.ExploreOptions{Common: common, Opts: opts})

	if *shared.jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(toReportJSON(rep)); err != nil {
			return err
		}
		return finish()
	}
	fmt.Printf("exploration: %v (exhausted=%v)\n", rep.Stats, rep.Exhausted)
	if len(rep.Findings) == 0 {
		fmt.Println("no mismatch found")
		return finish()
	}
	for i, f := range rep.Findings {
		fmt.Printf("finding %d: %v\n", i+1, f.Err)
		if len(f.Inputs) > 0 {
			fmt.Printf("  witness inputs:\n")
			for _, k := range sortedKeys(f.Inputs) {
				fmt.Printf("    %-14s = %#010x\n", k, f.Inputs[k])
			}
		}
	}
	return finish()
}

func cmdLongRun(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("longrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budget := fs.Duration("budget", 30*time.Second, "exploration budget (0 = unbounded: run until the path tree is exhausted)")
	limit := fs.Int("limit", 1, "instruction limit")
	regs := fs.Int("regs", 2, "symbolic register slice size")
	maxPaths := fs.Int("max-paths", 0, "path budget (0 = unbounded)")
	coverage := fs.Bool("coverage", false, "print test-set instruction coverage")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	common, finish, err := shared.build("longrun", stderr, "core="+shared.coreName(),
		fmt.Sprintf("limit=%d", *limit), fmt.Sprintf("regs=%d", *regs))
	if err != nil {
		return err
	}
	common.Budget = *budget
	common.MaxPaths = *maxPaths
	res := harness.LongRun(harness.LongRunOptions{Common: common, InstrLimit: *limit, NumRegs: *regs})
	if *shared.jsonOut {
		doc := struct {
			BudgetSecs float64
			Limit      int
			NumRegs    int
			Workers    int
			Report     reportJSON
		}{res.Budget.Seconds(), res.Limit, res.NumRegs, res.Workers, toReportJSON(res.Report)}
		if err := json.NewEncoder(os.Stdout).Encode(doc); err != nil {
			return err
		}
		return finish()
	}
	fmt.Print(res.Format())
	if *coverage {
		cov := harness.Coverage(harness.TestSetInputs(res.Report))
		fmt.Print(cov.Format())
	}
	return finish()
}

func cmdAblation(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ablation", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "regs", "ablation kind: regs | limit")
	budget := fs.Duration("budget", 15*time.Second, "budget per configuration point")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	if err := shared.requireMicroRV32("ablation", stderr); err != nil {
		return err
	}
	common, finish, err := shared.build("ablation", stderr, "kind="+*kind)
	if err != nil {
		return err
	}
	common.Budget = *budget
	switch *kind {
	case "regs":
		res := harness.RegAblation(harness.RegAblationOptions{Common: common})
		if *shared.jsonOut {
			if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
				return err
			}
			return finish()
		}
		fmt.Print(res.Format())
	case "limit":
		pts := harness.LimitAblation(harness.LimitAblationOptions{Common: common, Limits: []int{1, 2}})
		if *shared.jsonOut {
			if err := json.NewEncoder(os.Stdout).Encode(pts); err != nil {
				return err
			}
			return finish()
		}
		fmt.Print(harness.FormatLimitAblation(pts))
	default:
		return badUsage(stderr, "unknown ablation kind %q", *kind)
	}
	return finish()
}

func cmdBaseline(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("baseline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cellTime := fs.Duration("cell-time", 20*time.Second, "budget per cell")
	trials := fs.Int("trials", 200000, "fuzzing trial budget per cell")
	faultsArg := fs.String("faults", "", "comma-separated fault subset (default all)")
	seed := fs.Int64("seed", 1, "fuzzing seed")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	var fset []faults.Fault
	if *faultsArg != "" {
		var err error
		fset, err = parseFaults(*faultsArg)
		if err != nil {
			return badUsage(stderr, "%v", err)
		}
	}
	if err := shared.requireMicroRV32("baseline", stderr); err != nil {
		return err
	}
	common, finish, err := shared.build("baseline", stderr, "faults="+*faultsArg)
	if err != nil {
		return err
	}
	res := harness.RunBaseline(harness.BaselineOptions{
		PerCellTime: *cellTime,
		MaxTrials:   *trials,
		Faults:      fset,
		Seed:        *seed,
		Common:      common,
	})
	if *shared.jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return err
		}
		return finish()
	}
	fmt.Print(res.Format())
	fmt.Printf("campaign wall time: %s\n", res.Elapsed.Round(time.Millisecond))
	return finish()
}

func cmdReplay(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	faultArg := fs.String("fault", "", "fault to inject (E0..E14); empty = none")
	limit := fs.Int("limit", 1, "instruction limit")
	shipped := fs.Bool("shipped", false, "use the as-shipped core and VP (microrv32 only)")
	cycleTrace := fs.Bool("cycle-trace", false, "print a per-cycle execution trace")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	vector := make(smt.MapEnv)
	for _, kv := range fs.Args() {
		name, valStr, ok := strings.Cut(kv, "=")
		if !ok {
			return badUsage(stderr, "replay: want name=hexvalue, got %q", kv)
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(valStr, "0x"), 16, 64)
		if err != nil {
			return badUsage(stderr, "replay: bad value in %q: %v", kv, err)
		}
		vector[name] = v
	}
	if len(vector) == 0 {
		return badUsage(stderr, "replay: no test-vector assignments given")
	}

	var fv []faults.Fault
	if *faultArg != "" {
		var err error
		if fv, err = parseFaults(*faultArg); err != nil {
			return badUsage(stderr, "%v", err)
		}
	}
	if k, ok := cosim.ParseCoreKind(*shared.core); ok && k == cosim.CorePipecore && *shipped {
		return badUsage(stderr, "-shipped is microrv32-only (pipecore has no as-shipped variant)")
	}
	common, finish, err := shared.build("replay", stderr, "core="+shared.coreName(),
		fmt.Sprintf("shipped=%v", *shipped), "fault="+*faultArg, fmt.Sprintf("limit=%d", *limit))
	if err != nil {
		return err
	}
	cfg := cosim.Config{ISS: iss.FixedConfig(), InstrLimit: *limit, Pin: vector, DUTCore: common.Core}
	if common.Core == cosim.CorePipecore {
		cfg.Pipe = pipecore.Config{Faults: faults.Of(fv...)}
	} else {
		coreCfg := microrv32.FixedConfig()
		if *shipped {
			coreCfg = microrv32.ShippedConfig()
			cfg.ISS = iss.VPConfig()
		}
		coreCfg.Faults = faults.Of(fv...)
		cfg.Core = coreCfg
	}
	if *cycleTrace {
		cfg.Trace = os.Stdout
	}
	// A fully pinned vector collapses to one path; 16 bounds partial vectors.
	rep := harness.ExploreWith(cosim.RunFunc(cfg), harness.ExploreOptions{
		Common: common,
		Opts:   core.Options{StopOnFirstFinding: true, MaxPaths: 16},
	})
	var m *rvfi.Mismatch
	if len(rep.Findings) > 0 {
		var ok bool
		if m, ok = rep.Findings[0].Err.(*rvfi.Mismatch); !ok {
			return rep.Findings[0].Err
		}
	}
	if *shared.jsonOut {
		doc := struct {
			Reproduced bool
			Mismatch   string `json:",omitempty"`
		}{}
		if m != nil {
			doc.Reproduced = true
			doc.Mismatch = m.Error()
		}
		if err := json.NewEncoder(os.Stdout).Encode(doc); err != nil {
			return err
		}
		return finish()
	}
	if m == nil {
		fmt.Println("vector reproduces no mismatch")
		return finish()
	}
	fmt.Printf("reproduced: %v\n", m)
	return finish()
}

// cmdTrace digests a JSONL observability trace written by -trace FILE: the
// top phases by cumulative time, the duration histogram per phase, and the
// counter/gauge totals.
func cmdTrace(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 8, "show the top N phases by cumulative time (0 = all)")
	jsonOut := fs.Bool("json", false, "emit the digest as JSON instead of the tables")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return badUsage(stderr, "usage: symv trace [-top N] TRACE.jsonl")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	sum, err := obs.ReadSummary(f)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(os.Stdout).Encode(sum)
	}
	fmt.Print(sum.Format(*top))
	return nil
}

func cmdBench(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	budget := fs.Duration("budget", 10*time.Second, "throughput budget per worker count")
	huntTime := fs.Duration("hunt-time", 30*time.Second, "time-to-bug budget per fault")
	instrLimit := fs.Int("instr-limit", 1, "instruction limit for the throughput workload")
	faultsArg := fs.String("faults", "", "comma-separated time-to-bug faults (default E1,E5,E6)")
	jsonPath := fs.String("json-file", "", "also write the machine-readable report to this file")
	quick := fs.Bool("quick", false, "CI smoke mode: 2s budgets, one fault")
	ablate := fs.Bool("ablate", false, "run the cache-on/cache-off equivalence check even outside -quick")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole benchmark to this file")
	shared := sharedGroup(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	if err := shared.requireMicroRV32("bench", stderr); err != nil {
		return err
	}
	common, finish, err := shared.build("bench", stderr)
	if err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	common.Budget = *budget
	opt := harness.BenchOptions{
		Common:        common,
		HuntTime:      *huntTime,
		InstrLimit:    *instrLimit,
		CacheAblation: *ablate,
	}
	if *faultsArg != "" {
		fset, err := parseFaults(*faultsArg)
		if err != nil {
			return badUsage(stderr, "%v", err)
		}
		opt.Faults = fset
	}
	if *quick {
		opt.Budget = 2 * time.Second
		opt.HuntTime = 5 * time.Second
		if opt.Faults == nil {
			opt.Faults = []faults.Fault{faults.E6}
		}
		// CI smoke: always cross-check the cache determinism contract.
		opt.CacheAblation = true
	}
	res := harness.RunBench(opt)
	if *shared.jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Print(res.Format())
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", *jsonPath)
	}
	if err := finish(); err != nil {
		return err
	}
	if res.Ablation != nil && !res.Ablation.Match {
		return fmt.Errorf("bench: cache ablation mismatch: %s", res.Ablation.Mismatch)
	}
	if res.SolverMat != nil && !res.SolverMat.Match {
		return fmt.Errorf("bench: solver equivalence mismatch: %s", res.SolverMat.Mismatch)
	}
	return nil
}

// cmdCache is the offline maintenance interface of the persistent witness
// store (the -store DIR every exploration subcommand accepts):
//
//	symv cache stats   -store DIR [-json]   inventory per version key
//	symv cache verify  -store DIR [-json]   decode everything, exit 1 on damage
//	symv cache gc      -store DIR [-json]   compact: dedup entries, drop damage
//	symv cache distill -store DIR [-key K] [-json]
//	                                        reduce sat witnesses to a minimal
//	                                        regression corpus (greedy set
//	                                        cover), replayable via symv replay
func cmdCache(args []string, stderr io.Writer) error {
	if len(args) < 1 {
		return badUsage(stderr, "usage: symv cache <stats|verify|gc|distill> -store DIR")
	}
	op := args[0]
	fs := flag.NewFlagSet("cache "+op, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("store", "", "witness store directory (required)")
	keyArg := fs.String("key", "", "restrict distill to one version key (default all keys)")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of the report")
	switch op {
	case "stats", "verify", "gc", "distill":
	default:
		return badUsage(stderr, "cache: unknown operation %q (want stats, verify, gc or distill)", op)
	}
	if err := parseFlags(fs, args[1:]); err != nil {
		return err
	}
	if *dir == "" {
		return badUsage(stderr, "cache %s: -store DIR is required", op)
	}
	store, err := qstore.Open(*dir)
	if err != nil {
		return err
	}
	emit := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	switch op {
	case "stats":
		st, err := store.Stats()
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(st)
		}
		fmt.Print(formatStoreStats(st))
	case "verify":
		st, issues, err := store.Verify()
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := emit(struct {
				Stats  qstore.StoreStats
				Issues []qstore.Issue
			}{st, issues}); err != nil {
				return err
			}
		} else {
			fmt.Print(formatStoreStats(st))
			for _, is := range issues {
				fmt.Printf("issue: %s: %s: %s\n", is.Segment, is.Kind, is.Detail)
			}
		}
		if len(issues) > 0 {
			return fmt.Errorf("cache verify: %d issue(s) found", len(issues))
		}
		if !*jsonOut {
			fmt.Println("store verifies clean")
		}
	case "gc":
		res, err := store.GC()
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(res)
		}
		fmt.Printf("gc: %d segment(s) -> %d, %d record(s) -> %d entries (%d duplicate(s), %d corrupt dropped), %d bytes -> %d\n",
			res.SegmentsBefore, res.SegmentsAfter, res.EntriesBefore, res.EntriesAfter,
			res.DroppedDuplicates, res.DroppedCorrupt, res.BytesBefore, res.BytesAfter)
	case "distill":
		rs, err := store.Distill(*keyArg)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(rs)
		}
		if len(rs) == 0 {
			fmt.Println("no satisfiable witnesses to distill")
			return nil
		}
		for _, r := range rs {
			fmt.Printf("key %s: %d witness(es), %d constraint set(s), corpus of %d vector(s)\n",
				r.Key, r.Witnesses, r.Universe, len(r.Vectors))
			for i, v := range r.Vectors {
				fmt.Printf("  vector %d (covers %d): %s\n", i+1, v.Covers, v.ReplayArgs())
			}
		}
	}
	return nil
}

// formatStoreStats renders the offline inventory table.
func formatStoreStats(st qstore.StoreStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "store %s: %d segment(s), %d bytes", st.Dir, st.Segments, st.Bytes)
	if st.CorruptSegments > 0 {
		fmt.Fprintf(&b, ", %d corrupt segment(s)", st.CorruptSegments)
	}
	b.WriteString("\n")
	for _, k := range st.Keys {
		fmt.Fprintf(&b, "  key %s: %d segment(s), %d entr(ies) (%d distinct; %d sat, %d unsat)",
			k.Key, k.Segments, k.Entries, k.Distinct, k.Sat, k.Unsat)
		if k.CorruptRecords > 0 {
			fmt.Fprintf(&b, ", %d corrupt record(s) skipped", k.CorruptRecords)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func parseSearch(s string) (core.SearchStrategy, error) {
	switch strings.ToLower(s) {
	case "dfs", "":
		return core.SearchDFS, nil
	case "bfs":
		return core.SearchBFS, nil
	case "random", "random-path":
		return core.SearchRandom, nil
	}
	return 0, fmt.Errorf("unknown search strategy %q", s)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFaults(s string) ([]faults.Fault, error) {
	var out []faults.Fault
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.ToUpper(part))
		found := false
		for _, f := range faults.All() {
			if f.String() == part {
				out = append(out, f)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown fault %q (want E0..E14)", part)
		}
	}
	return out, nil
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// cmdLintTable statically verifies a core's decode table for the clean
// configuration and every single-fault configuration, both with and without
// the M extension. It exits non-zero on any overlap, gap, malformed row, or
// unexplained deviation; the E0–E2 mask widenings appear as intentional
// deviations in the output.
func cmdLintTable(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("lint-table", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "print the full report for every configuration")
	shared := sharedGroup(fs)
	shared.allowBothCores = true
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	_, finish, err := shared.build("lint-table", stderr,
		"core="+strings.Join(shared.lintCores(), "+"))
	if err != nil {
		return err
	}
	jsonOut := shared.jsonOut
	var reps []*decodecheck.Report
	for _, name := range shared.lintCores() {
		switch name {
		case "microrv32", "pipecore":
			reps = append(reps, decodecheck.CheckAllFor(decodecheck.CoreKind(name))...)
		default:
			return badUsage(stderr, "lint-table: unknown core %q (want microrv32, pipecore or both)", name)
		}
	}
	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(reps); err != nil {
			return err
		}
	}
	fail := 0
	for _, rep := range reps {
		if !*jsonOut {
			if *verbose || !rep.OK() || len(rep.Deviation) > 0 {
				fmt.Print(rep.Format())
			} else {
				fmt.Printf("decode-table check [%s]: OK (%d rows, %d words cross-checked)\n",
					rep.Config, rep.Rows, rep.Checked)
			}
		}
		if !rep.OK() {
			fail++
		}
	}
	if err := finish(); err != nil {
		return err
	}
	if fail > 0 {
		return fmt.Errorf("lint-table: %d configuration(s) failed", fail)
	}
	return nil
}

// cmdLintDUT runs the static transition-relation analyzer (internal/dutlint)
// over each selected core's repaired configuration: one symbolic instruction
// slot with fully-free inputs, then a pure DAG analysis for dead logic,
// unconstrained inputs, constant candidates, width/strobe discipline and
// (with -sat-probe) decode-arm selectability. Exit status is non-zero when
// any finding is not covered by the allowlist.
func cmdLintDUT(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("lint-dut", flag.ContinueOnError)
	fs.SetOutput(stderr)
	allowPath := fs.String("allowlist", "LINTDUT.allow",
		"allowlist of intentional findings (\"\" lints with no allowlist; the default is optional, an explicit file must exist)")
	satProbe := fs.Bool("sat-probe", false, "SAT-probe decode-arm selectability (bounded; off by default)")
	satConflicts := fs.Uint64("sat-conflicts", 0, "conflict budget per probe query (0 = dutlint default)")
	numRegs := fs.Int("regs", 0, "symbolic initial registers x1..xN (0 = dutlint default)")
	maxPaths := fs.Int("max-paths", 0, "path bound (0 = exhaustive; truncation downgrades the coverage analyses)")
	maxTime := fs.Duration("time", 0, "exploration wall-clock bound (0 = unlimited)")
	verbose := fs.Bool("v", false, "print the per-observable cone-of-influence breakdown")
	shared := sharedGroup(fs)
	shared.allowBothCores = true
	if err := parseFlags(fs, args); err != nil {
		return err
	}

	common, finish, err := shared.build("lint-dut", stderr,
		"core="+strings.Join(shared.lintCores(), "+"),
		fmt.Sprintf("regs=%d", *numRegs), fmt.Sprintf("satprobe=%v", *satProbe))
	if err != nil {
		return err
	}
	common.Budget = *maxTime
	common.MaxPaths = *maxPaths

	var allow *dutlint.Allowlist
	if *allowPath != "" {
		allow, err = dutlint.LoadAllowlist(*allowPath)
		if err != nil {
			explicit := false
			fs.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "allowlist" })
			if !os.IsNotExist(err) || explicit {
				return err
			}
			allow = nil // default allowlist absent: lint without one
		}
	}

	fail := 0
	for _, name := range shared.lintCores() {
		rep := harness.LintDUT(name, harness.LintDUTOptions{
			Common:            common,
			NumRegs:           *numRegs,
			SATProbe:          *satProbe,
			SATConflictBudget: *satConflicts,
			Allow:             allow,
		})
		if rep == nil {
			return fmt.Errorf("lint-dut: unknown core %q (want microrv32, pipecore or both)", name)
		}
		if *shared.jsonOut {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else {
			fmt.Print(rep.Format(*verbose))
		}
		if !rep.Clean() {
			fail++
		}
	}
	if allow != nil && !*shared.jsonOut {
		for _, e := range allow.Stale() {
			fmt.Printf("note: allowlist line %d (%s %s %s) matched nothing in this run\n",
				e.Line, e.Class, e.Core, e.Name)
		}
	}
	if err := finish(); err != nil {
		return err
	}
	if fail > 0 {
		return fmt.Errorf("lint-dut: %d core(s) failed", fail)
	}
	return nil
}
