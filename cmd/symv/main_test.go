package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symriscv/internal/qstore"
	"symriscv/internal/querycache"
)

// TestRunUsageErrors pins the unified bad-input contract across every
// subcommand: exit code 2 with an explanation on stderr, whether the problem
// is an unknown command, an unknown flag, a malformed flag value, or a
// missing operand. Every case here must fail during validation — none may
// reach an actual exploration.
func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring that must appear on stderr
	}{
		{"no command", nil, "commands:"},
		{"unknown command", []string{"frobnicate"}, "unknown command"},

		{"table1 bad flag", []string{"table1", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"table2 bad flag", []string{"table2", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"hunt bad flag", []string{"hunt", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"longrun bad flag", []string{"longrun", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"ablation bad flag", []string{"ablation", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"bench bad flag", []string{"bench", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"baseline bad flag", []string{"baseline", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"replay bad flag", []string{"replay", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"trace bad flag", []string{"trace", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"cache bad flag", []string{"cache", "stats", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"lint-table bad flag", []string{"lint-table", "-definitely-not-a-flag"}, "flag provided but not defined"},
		{"lint-dut bad flag", []string{"lint-dut", "-definitely-not-a-flag"}, "flag provided but not defined"},

		{"bad -cache toggle", []string{"hunt", "-cache", "maybe"}, "bad -cache"},
		{"bad -rewrite toggle", []string{"hunt", "-rewrite", "maybe"}, "bad -rewrite"},
		{"bad -inprocess toggle", []string{"hunt", "-inprocess", "maybe"}, "bad -inprocess"},
		{"bad -portfolio toggle", []string{"hunt", "-portfolio", "maybe"}, "bad -portfolio"},
		{"bad -workers value", []string{"hunt", "-workers", "three"}, "invalid value"},

		{"bad -core value", []string{"hunt", "-core", "bogus"}, "bad -core"},
		{"table2 unknown dut", []string{"table2", "-dut", "bogus"}, "bad -dut"},
		{"table2 dut/core conflict", []string{"table2", "-dut", "pipeline", "-core", "microrv32"}, "conflicts"},
		{"ablation is microrv32-only", []string{"ablation", "-core", "pipecore"}, "supports only -core microrv32"},
		{"hunt -shipped pipecore", []string{"hunt", "-core", "pipecore", "-shipped"}, "microrv32-only"},
		{"hunt -mie-bug pipecore", []string{"hunt", "-core", "pipecore", "-mie-bug"}, "microrv32-only"},
		{"table2 bad limits", []string{"table2", "-limits", "1,x"}, "bad -limits"},
		{"table2 unknown fault", []string{"table2", "-faults", "E99"}, "unknown fault"},
		{"hunt unknown fault", []string{"hunt", "-fault", "E99"}, "unknown fault"},
		{"hunt unknown search", []string{"hunt", "-search", "bogus"}, "unknown search strategy"},
		{"ablation unknown kind", []string{"ablation", "-kind", "bogus"}, "unknown ablation kind"},
		{"baseline unknown fault", []string{"baseline", "-faults", "E99"}, "unknown fault"},
		{"bench unknown fault", []string{"bench", "-faults", "E99"}, "unknown fault"},

		{"replay no vector", []string{"replay"}, "no test-vector assignments"},
		{"replay malformed pair", []string{"replay", "justaname"}, "want name=hexvalue"},
		{"replay bad hex", []string{"replay", "x1=zz"}, "bad value"},
		{"trace missing operand", []string{"trace"}, "usage: symv trace"},

		{"cache no op", []string{"cache"}, "usage: symv cache"},
		{"cache unknown op", []string{"cache", "frobnicate"}, "unknown operation"},
		{"cache missing store", []string{"cache", "stats"}, "-store DIR is required"},

		{"lint-table unknown core", []string{"lint-table", "-core", "bogus"}, "bad -core"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if code := run(tc.args, &buf); code != 2 {
				t.Fatalf("run(%q) = %d, want 2; stderr:\n%s", tc.args, code, buf.String())
			}
			if !strings.Contains(buf.String(), tc.want) {
				t.Fatalf("run(%q) stderr missing %q:\n%s", tc.args, tc.want, buf.String())
			}
		})
	}
}

// TestHelpExitsZero pins that asking for help is not an error.
func TestHelpExitsZero(t *testing.T) {
	for _, arg := range []string{"help", "-h", "--help"} {
		var buf bytes.Buffer
		if code := run([]string{arg}, &buf); code != 0 {
			t.Fatalf("run(%q) = %d, want 0", arg, code)
		}
		if !strings.Contains(buf.String(), "commands:") {
			t.Fatalf("run(%q) printed no usage:\n%s", arg, buf.String())
		}
	}
}

// TestPortfolioWorkerWarning pins the satellite fix: -portfolio=on with a
// single worker used to be silently ignored; now the harness flags it and
// the CLI surfaces it on stderr. The bogus -kind makes the command fail
// validation right after the warning, so no exploration runs.
func TestPortfolioWorkerWarning(t *testing.T) {
	var buf bytes.Buffer
	if code := run([]string{"ablation", "-portfolio", "on", "-workers", "1", "-kind", "bogus"}, &buf); code != 2 {
		t.Fatalf("exit %d, want 2; stderr:\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "-portfolio=on has no effect with a single worker") {
		t.Fatalf("portfolio warning missing from stderr:\n%s", buf.String())
	}

	buf.Reset()
	if code := run([]string{"ablation", "-portfolio", "on", "-workers", "2", "-kind", "bogus"}, &buf); code != 2 {
		t.Fatalf("exit %d, want 2; stderr:\n%s", code, buf.String())
	}
	if strings.Contains(buf.String(), "-portfolio=on has no effect") {
		t.Fatalf("spurious portfolio warning at workers=2:\n%s", buf.String())
	}
}

// seedStore publishes a few witnesses into a fresh store directory so the
// offline cache operations have something to chew on.
func seedStore(t *testing.T) (dir, key string) {
	t.Helper()
	dir = t.TempDir()
	key = qstore.VersionKey("cmd=test")
	st, err := qstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	es := []querycache.PortableEntry{
		{Hashes: []uint64{1, 2, 3}, Sat: true, Model: querycache.Model{"x1": 7}},
		{Hashes: []uint64{2, 3}, Sat: true, Model: querycache.Model{"x1": 7}},
		{Hashes: []uint64{9}, Sat: false},
	}
	for i := range es {
		es[i].Key = querycache.KeyOf(es[i].Hashes)
	}
	if _, err := st.Persist(key, es); err != nil {
		t.Fatal(err)
	}
	return dir, key
}

// TestCacheSubcommand smoke-tests the offline store maintenance operations
// end to end: stats and gc succeed on a healthy store, distill emits a
// replayable corpus, and verify turns damage into exit code 1.
func TestCacheSubcommand(t *testing.T) {
	dir, key := seedStore(t)

	for _, op := range []string{"stats", "verify", "gc", "distill"} {
		var buf bytes.Buffer
		if code := run([]string{"cache", op, "-store", dir}, &buf); code != 0 {
			t.Fatalf("cache %s = exit %d; stderr:\n%s", op, code, buf.String())
		}
	}
	var buf bytes.Buffer
	if code := run([]string{"cache", "distill", "-store", dir, "-key", key, "-json"}, &buf); code != 0 {
		t.Fatalf("cache distill -key = exit %d; stderr:\n%s", code, buf.String())
	}

	// Truncate the (single, post-gc) segment: verify must report the damage
	// and exit 1, stats must keep working.
	segs, err := filepath.Glob(filepath.Join(dir, "*.qseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments after gc: %v", err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if code := run([]string{"cache", "verify", "-store", dir}, &buf); code != 1 {
		t.Fatalf("cache verify on damaged store = exit %d, want 1; stderr:\n%s", code, buf.String())
	}
	buf.Reset()
	if code := run([]string{"cache", "stats", "-store", dir}, &buf); code != 0 {
		t.Fatalf("cache stats on damaged store = exit %d; stderr:\n%s", code, buf.String())
	}
}
