// Command rv32asm assembles and disassembles RV32I+Zicsr instructions, the
// helper used to inspect counterexample words from the verification flow.
//
// Usage:
//
//	rv32asm -d 0x00a5c083 0xc2001963    # disassemble words
//	rv32asm "addi x1, x2, -5"           # assemble lines
//	echo "lw a0, 8(sp)" | rv32asm       # assemble stdin, one line each
//	rv32asm -d                          # disassemble stdin words
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"symriscv/internal/riscv"
)

func main() {
	disasm := flag.Bool("d", false, "disassemble hex words instead of assembling")
	flag.Parse()

	inputs := flag.Args()
	if len(inputs) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			inputs = append(inputs, line)
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "rv32asm:", err)
			os.Exit(1)
		}
	}

	exit := 0
	for _, in := range inputs {
		if *disasm {
			w, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(in), "0x"), 16, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rv32asm: bad word %q: %v\n", in, err)
				exit = 1
				continue
			}
			fmt.Printf("0x%08x  %s\n", uint32(w), riscv.Disasm(uint32(w)))
			continue
		}
		w, err := riscv.Assemble(in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rv32asm: %v\n", err)
			exit = 1
			continue
		}
		fmt.Printf("0x%08x  %s\n", w, riscv.Disasm(w))
	}
	os.Exit(exit)
}
