// Command bvsolve is a standalone QF_BV solver speaking the SMT-LIB v2
// subset of internal/smtlib — the same decision procedure that powers the
// symbolic co-simulation, exposed for ad-hoc queries.
//
// Usage:
//
//	bvsolve file.smt2
//	echo '(declare-const x (_ BitVec 8)) (assert (bvult x #x05)) (check-sat) (get-model)' | bvsolve
package main

import (
	"fmt"
	"io"
	"os"

	"symriscv/internal/smtlib"
)

func main() {
	var src []byte
	var err error
	switch len(os.Args) {
	case 1:
		src, err = io.ReadAll(os.Stdin)
	case 2:
		src, err = os.ReadFile(os.Args[1])
	default:
		fmt.Fprintln(os.Stderr, "usage: bvsolve [file.smt2]")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bvsolve:", err)
		os.Exit(1)
	}
	in := smtlib.NewInterp(os.Stdout)
	if err := in.Run(string(src)); err != nil {
		fmt.Fprintln(os.Stderr, "bvsolve:", err)
		os.Exit(1)
	}
}
