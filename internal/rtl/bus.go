// Package rtl defines the bus-level types of the translated RTL core: the
// IBus fetch handshake and the strobe-based DBus (the write-strobe protocol
// used by AXI, Wishbone, and the PicoRV32 native interface, and by the
// MicroRV32 memory interface the paper describes). The co-simulation main
// loop speaks these protocols to connect the core to the symbolic memories.
package rtl

import "symriscv/internal/smt"

// IBusRequest is the instruction-fetch side driven by the core.
type IBusRequest struct {
	FetchEnable bool
	Address     *smt.Term // 32-bit fetch address
}

// IBusResponse is the instruction-fetch side driven by the memory.
type IBusResponse struct {
	InstructionReady bool
	Instruction      *smt.Term // 32-bit instruction word
}

// DBusRequest is the data-bus side driven by the core. A request is active
// for exactly one cycle when Enable is set; Write distinguishes stores from
// loads; WrStrobe selects the byte lanes within the addressed word.
type DBusRequest struct {
	Enable    bool
	Write     bool
	Address   *smt.Term // 32-bit byte address (word-aligned access, lanes via strobe)
	WrStrobe  Strobe
	WriteData *smt.Term // 32-bit, strobe-aligned store data
}

// DBusResponse is the data-bus side driven by the memory.
type DBusResponse struct {
	DataReady bool
	ReadData  *smt.Term // 32-bit word containing the requested lanes
}

// Strobe selects byte lanes of a 32-bit bus word (bit i = byte i, little
// endian).
type Strobe uint8

// The strobe patterns the protocol permits.
const (
	StrobeByte0 Strobe = 0b0001
	StrobeByte1 Strobe = 0b0010
	StrobeByte2 Strobe = 0b0100
	StrobeByte3 Strobe = 0b1000
	StrobeHalf0 Strobe = 0b0011
	StrobeHalf1 Strobe = 0b1100
	StrobeWord  Strobe = 0b1111
)

// Valid reports whether the strobe is one of the protocol's legal patterns.
func (s Strobe) Valid() bool {
	switch s {
	case StrobeByte0, StrobeByte1, StrobeByte2, StrobeByte3,
		StrobeHalf0, StrobeHalf1, StrobeWord:
		return true
	}
	return false
}

// Bytes returns the number of selected byte lanes.
func (s Strobe) Bytes() int {
	n := 0
	for i := 0; i < 4; i++ {
		if s>>uint(i)&1 == 1 {
			n++
		}
	}
	return n
}

// Shift returns the index of the lowest selected byte lane.
func (s Strobe) Shift() int {
	for i := 0; i < 4; i++ {
		if s>>uint(i)&1 == 1 {
			return i
		}
	}
	return 0
}

// ByteStrobe returns the strobe selecting the single byte lane addressed by
// the low two address bits.
func ByteStrobe(addrLow2 uint32) Strobe { return Strobe(1) << (addrLow2 & 3) }

// HalfStrobe returns the strobe selecting the half-word lane addressed by
// address bit 1. Misaligned half-word accesses (bit 0 set) are the caller's
// concern; the strobe protocol itself cannot express them, which is exactly
// why a core that "fully supports misaligned accesses" must split them.
func HalfStrobe(addrLow2 uint32) Strobe {
	if addrLow2&2 != 0 {
		return StrobeHalf1
	}
	return StrobeHalf0
}

// Mask returns the 32-bit data mask of the strobe.
func (s Strobe) Mask() uint32 {
	var m uint32
	for i := 0; i < 4; i++ {
		if s>>uint(i)&1 == 1 {
			m |= 0xff << uint(8*i)
		}
	}
	return m
}
