package rtl

import "testing"

func TestStrobeValid(t *testing.T) {
	valid := []Strobe{StrobeByte0, StrobeByte1, StrobeByte2, StrobeByte3, StrobeHalf0, StrobeHalf1, StrobeWord}
	for _, s := range valid {
		if !s.Valid() {
			t.Errorf("strobe %04b should be valid", s)
		}
	}
	for _, s := range []Strobe{0, 0b0101, 0b0110, 0b1010, 0b0111, 0b1110, 0b1001, 0b1011, 0b1101} {
		if s.Valid() {
			t.Errorf("strobe %04b should be invalid", s)
		}
	}
}

func TestStrobeGeometry(t *testing.T) {
	cases := []struct {
		s     Strobe
		bytes int
		shift int
		mask  uint32
	}{
		{StrobeByte0, 1, 0, 0x000000ff},
		{StrobeByte1, 1, 1, 0x0000ff00},
		{StrobeByte2, 1, 2, 0x00ff0000},
		{StrobeByte3, 1, 3, 0xff000000},
		{StrobeHalf0, 2, 0, 0x0000ffff},
		{StrobeHalf1, 2, 2, 0xffff0000},
		{StrobeWord, 4, 0, 0xffffffff},
	}
	for _, tc := range cases {
		if got := tc.s.Bytes(); got != tc.bytes {
			t.Errorf("%04b Bytes = %d, want %d", tc.s, got, tc.bytes)
		}
		if got := tc.s.Shift(); got != tc.shift {
			t.Errorf("%04b Shift = %d, want %d", tc.s, got, tc.shift)
		}
		if got := tc.s.Mask(); got != tc.mask {
			t.Errorf("%04b Mask = %#x, want %#x", tc.s, got, tc.mask)
		}
	}
}

func TestAddressToStrobe(t *testing.T) {
	for lo, want := range map[uint32]Strobe{0: StrobeByte0, 1: StrobeByte1, 2: StrobeByte2, 3: StrobeByte3} {
		if got := ByteStrobe(lo); got != want {
			t.Errorf("ByteStrobe(%d) = %04b, want %04b", lo, got, want)
		}
		// Upper address bits must be ignored.
		if got := ByteStrobe(lo + 0x1000); got != want {
			t.Errorf("ByteStrobe(%d+0x1000) = %04b, want %04b", lo, got, want)
		}
	}
	if HalfStrobe(0) != StrobeHalf0 || HalfStrobe(2) != StrobeHalf1 {
		t.Error("HalfStrobe misroutes aligned half accesses")
	}
}
