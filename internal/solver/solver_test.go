package solver

import (
	"math/rand"
	"testing"

	"symriscv/internal/smt"
)

func TestSimpleSatAndModel(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("x", 32)
	y := ctx.Var("y", 32)
	sum := ctx.Add(x, y)

	if got := s.Check(ctx.Eq(sum, ctx.BV(32, 100)), ctx.Ult(x, ctx.BV(32, 10))); got != Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	xv, yv := s.ModelValue(x), s.ModelValue(y)
	if (xv+yv)&0xffffffff != 100 || xv >= 10 {
		t.Fatalf("model x=%d y=%d does not satisfy constraints", xv, yv)
	}
}

func TestSimpleUnsat(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("x", 8)
	if got := s.Check(ctx.Ult(x, ctx.BV(8, 5)), ctx.Ugt(x, ctx.BV(8, 200))); got != Unsat {
		t.Fatalf("Check = %v, want Unsat", got)
	}
}

func TestAssertPersists(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("x", 16)
	s.Assert(ctx.Eq(x, ctx.BV(16, 0xbeef)))
	if got := s.Check(); got != Sat {
		t.Fatalf("Check = %v, want Sat", got)
	}
	if v := s.ModelValue(x); v != 0xbeef {
		t.Fatalf("x = %#x, want 0xbeef", v)
	}
	if got := s.Check(ctx.Ne(x, ctx.BV(16, 0xbeef))); got != Unsat {
		t.Fatalf("contradicting assert: got %v, want Unsat", got)
	}
	// Solver stays usable.
	if got := s.Check(); got != Sat {
		t.Fatalf("Check after Unsat = %v, want Sat", got)
	}
}

func TestModelValueOfUnencodedTerm(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("x", 32)
	s.Assert(ctx.Eq(x, ctx.BV(32, 7)))
	if s.Check() != Sat {
		t.Fatal("want Sat")
	}
	// y and x*y were never part of a query.
	y := ctx.Var("y", 32)
	prod := ctx.Mul(x, y)
	got := s.ModelValue(prod)
	want := (7 * s.ModelValue(y)) & 0xffffffff
	if got != want {
		t.Fatalf("ModelValue(x*y) = %d, want %d", got, want)
	}
}

// randTerm builds a random 32-bit term over the given variables, with depth
// bounded by d.
func randTerm(rng *rand.Rand, ctx *smt.Context, vars []*smt.Term, d int) *smt.Term {
	if d == 0 || rng.Intn(4) == 0 {
		if rng.Intn(3) == 0 {
			return ctx.BV(32, rng.Uint64())
		}
		return vars[rng.Intn(len(vars))]
	}
	a := randTerm(rng, ctx, vars, d-1)
	b := randTerm(rng, ctx, vars, d-1)
	switch rng.Intn(13) {
	case 0:
		return ctx.Add(a, b)
	case 1:
		return ctx.Sub(a, b)
	case 2:
		return ctx.Mul(a, b)
	case 3:
		return ctx.And(a, b)
	case 4:
		return ctx.Or(a, b)
	case 5:
		return ctx.Xor(a, b)
	case 6:
		return ctx.Not(a)
	case 7:
		return ctx.Neg(a)
	case 8:
		return ctx.Shl(a, b)
	case 9:
		return ctx.Lshr(a, b)
	case 10:
		return ctx.Ashr(a, b)
	case 11:
		return ctx.Ite(ctx.Ult(a, b), a, b)
	default:
		return ctx.SExt(ctx.Extract(a, 15, 0), 32)
	}
}

// TestBlastAgainstEval cross-validates the bit-blasted encoding against the
// term evaluator: for random terms e and random concrete inputs, asserting
// inputs and e != eval(e) must be Unsat, and e == eval(e) must be Sat.
func TestBlastAgainstEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		ctx := smt.NewContext()
		s := New(ctx)
		x := ctx.Var("x", 32)
		y := ctx.Var("y", 32)
		e := randTerm(rng, ctx, []*smt.Term{x, y}, 3)

		xv := rng.Uint64() & 0xffffffff
		yv := rng.Uint64() & 0xffffffff
		want, err := smt.Eval(e, smt.MapEnv{"x": xv, "y": yv})
		if err != nil {
			t.Fatalf("iter %d: eval: %v", iter, err)
		}
		fixX := ctx.Eq(x, ctx.BV(32, xv))
		fixY := ctx.Eq(y, ctx.BV(32, yv))

		if got := s.Check(fixX, fixY, ctx.Eq(e, ctx.BV(32, want))); got != Sat {
			t.Fatalf("iter %d: e == eval(e) gave %v (e=%v x=%#x y=%#x want=%#x)", iter, got, e, xv, yv, want)
		}
		if got := s.Check(fixX, fixY, ctx.Ne(e, ctx.BV(32, want))); got != Unsat {
			t.Fatalf("iter %d: e != eval(e) gave %v (e=%v x=%#x y=%#x want=%#x)", iter, got, e, xv, yv, want)
		}
	}
}

// TestComparisonEncodings checks each relational operator both ways on
// random constants via the solver.
func TestComparisonEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("cx", 32)
	y := ctx.Var("cy", 32)
	for iter := 0; iter < 40; iter++ {
		xv := rng.Uint64() & 0xffffffff
		yv := rng.Uint64() & 0xffffffff
		if iter%5 == 0 {
			yv = xv // exercise equality boundaries
		}
		fix := []*smt.Term{ctx.Eq(x, ctx.BV(32, xv)), ctx.Eq(y, ctx.BV(32, yv))}
		rels := []struct {
			term *smt.Term
			want bool
		}{
			{ctx.Eq(x, y), xv == yv},
			{ctx.Ult(x, y), xv < yv},
			{ctx.Ule(x, y), xv <= yv},
			{ctx.Slt(x, y), int32(xv) < int32(yv)},
			{ctx.Sle(x, y), int32(xv) <= int32(yv)},
		}
		for i, r := range rels {
			q := r.term
			if !r.want {
				q = ctx.BNot(q)
			}
			if got := s.Check(append(fix[:2:2], q)...); got != Sat {
				t.Fatalf("iter %d rel %d: got %v, want Sat (x=%#x y=%#x)", iter, i, got, xv, yv)
			}
			if got := s.Check(append(fix[:2:2], ctx.BNot(q))...); got != Unsat {
				t.Fatalf("iter %d rel %d negated: got %v, want Unsat (x=%#x y=%#x)", iter, i, got, xv, yv)
			}
		}
	}
}

// TestShiftEdgeCases pins the SMT shift semantics for amounts >= width.
func TestShiftEdgeCases(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("sx", 8)
	amt := ctx.Var("samt", 8)
	fixX := ctx.Eq(x, ctx.BV(8, 0x85))
	fixA := ctx.Eq(amt, ctx.BV(8, 9))

	if got := s.Check(fixX, fixA, ctx.Eq(ctx.Shl(x, amt), ctx.BV(8, 0))); got != Sat {
		t.Fatalf("shl overflow: %v", got)
	}
	if got := s.Check(fixX, fixA, ctx.Eq(ctx.Lshr(x, amt), ctx.BV(8, 0))); got != Sat {
		t.Fatalf("lshr overflow: %v", got)
	}
	if got := s.Check(fixX, fixA, ctx.Eq(ctx.Ashr(x, amt), ctx.BV(8, 0xff))); got != Sat {
		t.Fatalf("ashr overflow (negative): %v", got)
	}
	if got := s.Check(fixX, fixA, ctx.Ne(ctx.Ashr(x, amt), ctx.BV(8, 0xff))); got != Unsat {
		t.Fatalf("ashr overflow uniqueness: %v", got)
	}
}

// TestIncrementalReuse runs many related queries on one solver, mimicking the
// engine's path-constraint pattern, and checks consistency.
func TestIncrementalReuse(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	instr := ctx.Var("instr", 32)
	opcode := ctx.Extract(instr, 6, 0)

	// Walk through "decode" queries as the engine would.
	op1 := ctx.Eq(opcode, ctx.BV(7, 0x33))
	op2 := ctx.Eq(opcode, ctx.BV(7, 0x13))
	if s.Check(op1) != Sat || s.Check(op2) != Sat {
		t.Fatal("individual opcodes must be feasible")
	}
	if s.Check(op1, op2) != Unsat {
		t.Fatal("two different opcodes at once must be infeasible")
	}
	funct3 := ctx.Extract(instr, 14, 12)
	for i := uint64(0); i < 8; i++ {
		if s.Check(op1, ctx.Eq(funct3, ctx.BV(3, i))) != Sat {
			t.Fatalf("funct3=%d under op1 must be feasible", i)
		}
	}
	st := s.Stats()
	if st.Checks != 11 {
		t.Fatalf("Checks = %d, want 11", st.Checks)
	}
	if st.SatAns != 10 || st.UnsatAns != 1 {
		t.Fatalf("answers: %d sat %d unsat", st.SatAns, st.UnsatAns)
	}
}

func TestConflictBudgetUnknown(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	// A multiplication equation is hard enough to exceed one conflict.
	x := ctx.Var("hx", 32)
	y := ctx.Var("hy", 32)
	q := ctx.BAnd(
		ctx.Eq(ctx.Mul(x, y), ctx.BV(32, 0x12345679)),
		ctx.BAnd(ctx.Ugt(x, ctx.BV(32, 1)), ctx.Ugt(y, ctx.BV(32, 1))),
	)
	s.SetConflictBudget(1)
	if got := s.Check(q); got != Unknown {
		t.Skipf("instance solved within one conflict (got %v); budget path still covered elsewhere", got)
	}
	s.SetConflictBudget(0)
}

func TestBoolConnectives(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	a := ctx.Var("ba", 1)
	b := ctx.Var("bb", 1)
	pa := ctx.Eq(a, ctx.BV(1, 1))
	pb := ctx.Eq(b, ctx.BV(1, 1))

	if s.Check(ctx.BAnd(pa, ctx.BNot(pa))) != Unsat {
		t.Fatal("a && !a must be unsat")
	}
	if got := s.Check(ctx.BNot(ctx.Iff(ctx.BXor(pa, pb), ctx.BNot(ctx.Iff(pa, pb))))); got != Unsat {
		t.Fatalf("xor/iff tautology: got %v, want Unsat", got)
	}
	if got := s.Check(ctx.BNot(ctx.Implies(ctx.BAnd(pa, pb), pa))); got != Unsat {
		t.Fatalf("implication tautology: got %v, want Unsat", got)
	}
}

// TestDivisionEncodings cross-checks the restoring-divider circuit against
// the evaluator, including the division-by-zero cases.
func TestDivisionEncodings(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("dx", 16)
	y := ctx.Var("dy", 16)
	q := ctx.UDiv(x, y)
	r := ctx.URem(x, y)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 25; i++ {
		xv := rng.Uint64() & 0xffff
		yv := rng.Uint64() & 0xffff
		switch i {
		case 0:
			yv = 0
		case 1:
			xv, yv = 0, 0
		case 2:
			yv = 1
		case 3:
			yv = xv
		}
		wantQ, _ := smt.Eval(q, smt.MapEnv{"dx": xv, "dy": yv})
		wantR, _ := smt.Eval(r, smt.MapEnv{"dx": xv, "dy": yv})
		fix := []*smt.Term{ctx.Eq(x, ctx.BV(16, xv)), ctx.Eq(y, ctx.BV(16, yv))}
		if got := s.Check(fix[0], fix[1], ctx.Eq(q, ctx.BV(16, wantQ)), ctx.Eq(r, ctx.BV(16, wantR))); got != Sat {
			t.Fatalf("iter %d: div/rem equality gave %v (x=%d y=%d)", i, got, xv, yv)
		}
		if got := s.Check(fix[0], fix[1], ctx.Ne(q, ctx.BV(16, wantQ))); got != Unsat {
			t.Fatalf("iter %d: quotient not unique (x=%d y=%d want %d)", i, got, xv, yv)
		}
		if got := s.Check(fix[0], fix[1], ctx.Ne(r, ctx.BV(16, wantR))); got != Unsat {
			t.Fatalf("iter %d: remainder not unique (x=%d y=%d want %d)", i, got, xv, yv)
		}
	}
	// The fundamental division identity x = q*y + r (for y != 0, r < y)
	// must be valid. Proven at 8 bits — the multiplier/divider equivalence
	// blow-up makes wider widths a benchmark, not a unit test.
	ctx8 := smt.NewContext()
	s8 := New(ctx8)
	x8 := ctx8.Var("x", 8)
	y8 := ctx8.Var("y", 8)
	q8 := ctx8.UDiv(x8, y8)
	r8 := ctx8.URem(x8, y8)
	ident := ctx8.BAnd(
		ctx8.Eq(ctx8.Add(ctx8.Mul(q8, y8), r8), x8),
		ctx8.Ult(r8, y8),
	)
	if got := s8.Check(ctx8.Ne(y8, ctx8.BV(8, 0)), ctx8.BNot(ident)); got != Unsat {
		t.Fatalf("division identity violated: %v", got)
	}
}

// TestOddWidthEncodings exercises the barrel shifter, comparators and
// arithmetic at a non-power-of-two width (12 bits), where the shift-overflow
// handling takes its general path.
func TestOddWidthEncodings(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("ox", 12)
	y := ctx.Var("oy", 12)
	rng := rand.New(rand.NewSource(31))
	mask := uint64(0xfff)
	for i := 0; i < 30; i++ {
		xv := rng.Uint64() & mask
		yv := rng.Uint64() & mask
		if i == 0 {
			yv = 13 // shift amount > width
		}
		exprs := []*smt.Term{
			ctx.Add(x, y),
			ctx.Mul(x, y),
			ctx.Shl(x, y),
			ctx.Lshr(x, y),
			ctx.Ashr(x, y),
			ctx.UDiv(x, y),
			ctx.URem(x, y),
			ctx.Ite(ctx.Slt(x, y), ctx.Neg(x), ctx.Not(y)),
		}
		fix := []*smt.Term{ctx.Eq(x, ctx.BV(12, xv)), ctx.Eq(y, ctx.BV(12, yv))}
		for j, e := range exprs {
			want, err := smt.Eval(e, smt.MapEnv{"ox": xv, "oy": yv})
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Check(fix[0], fix[1], ctx.Ne(e, ctx.BV(12, want))); got != Unsat {
				t.Fatalf("iter %d expr %d: width-12 encoding disagrees with eval (x=%#x y=%#x want=%#x)", i, j, xv, yv, want)
			}
		}
	}
}

// TestWidthOneTerms pins the degenerate single-bit vector behaviour.
func TestWidthOneTerms(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	a := ctx.Var("w1a", 1)
	b := ctx.Var("w1b", 1)
	// a + b at width 1 is XOR.
	if got := s.Check(ctx.BNot(ctx.Iff(
		ctx.Eq(ctx.Add(a, b), ctx.BV(1, 1)),
		ctx.Eq(ctx.Xor(a, b), ctx.BV(1, 1)),
	))); got != Unsat {
		t.Fatalf("width-1 add != xor: %v", got)
	}
	// a * b at width 1 is AND.
	if got := s.Check(ctx.BNot(ctx.Iff(
		ctx.Eq(ctx.Mul(a, b), ctx.BV(1, 1)),
		ctx.Eq(ctx.And(a, b), ctx.BV(1, 1)),
	))); got != Unsat {
		t.Fatalf("width-1 mul != and: %v", got)
	}
	// udiv by itself: a/a is 1 unless a == 0 (then all-ones == 1 at width 1).
	if got := s.Check(ctx.Ne(ctx.UDiv(a, a), ctx.BV(1, 1))); got != Unsat {
		t.Fatalf("width-1 a/a must always be 1: %v", got)
	}
}

// TestModelForRestrictsToGivenVars: ModelFor must agree with Model on the
// requested variables and must not materialise anything else.
func TestModelForRestrictsToGivenVars(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	a := ctx.Var("mf_a", 16)
	b := ctx.Var("mf_b", 16)
	ctx.Var("mf_unrelated", 16) // interned but never asked for
	if got := s.Check(ctx.Eq(ctx.Add(a, b), ctx.BV(16, 0x1234)), ctx.Eq(b, ctx.BV(16, 0x34))); got != Sat {
		t.Fatalf("check = %v, want sat", got)
	}
	full := s.Model()
	part := s.ModelFor([]*smt.Term{a, b})
	if len(part) != 2 {
		t.Fatalf("ModelFor returned %d bindings, want 2: %v", len(part), part)
	}
	for _, name := range []string{"mf_a", "mf_b"} {
		if part[name] != full[name] {
			t.Fatalf("ModelFor[%s] = %#x, Model[%s] = %#x", name, part[name], name, full[name])
		}
	}
	if _, ok := part["mf_unrelated"]; ok {
		t.Fatal("ModelFor leaked a variable that was not requested")
	}
	if part["mf_a"]+part["mf_b"] != 0x1234 {
		t.Fatalf("model does not satisfy constraint: %#x + %#x", part["mf_a"], part["mf_b"])
	}
	// A variable that was never encoded reads as zero, like Model does.
	free := ctx.Var("mf_free", 8)
	if env := s.ModelFor([]*smt.Term{free}); env["mf_free"] != 0 {
		t.Fatalf("unconstrained variable = %#x, want 0", env["mf_free"])
	}
}

// TestStatsConcurrentSampling hammers Stats() from a sampler goroutine while
// the owning goroutine keeps solving — the parallel orchestrator and the
// observability layer both sample a live solver this way. The facade counters
// are atomics and the SAT-core block is a mutex-guarded snapshot, so this
// must be clean under -race and every sample must be internally consistent
// (answers never exceed checks).
func TestStatsConcurrentSampling(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("x", 32)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			st := s.Stats()
			if answered := st.SatAns + st.UnsatAns + st.UnknownAns; answered > st.Checks {
				t.Errorf("inconsistent sample: %d answers for %d checks", answered, st.Checks)
				return
			}
		}
	}()

	const rounds = 200
	for i := 0; i < rounds; i++ {
		want := Sat
		lhs := ctx.Eq(x, ctx.BV(32, uint64(i)))
		rhs := ctx.Eq(x, ctx.BV(32, uint64(i+1)))
		if i%2 == 1 {
			want = Unsat
		} else {
			rhs = lhs
		}
		if got := s.Check(lhs, rhs); got != want {
			t.Fatalf("round %d: Check = %v, want %v", i, got, want)
		}
	}
	<-done

	st := s.Stats()
	if st.Checks != rounds || st.SatAns+st.UnsatAns != rounds {
		t.Fatalf("final stats inconsistent: %+v", st)
	}
}
