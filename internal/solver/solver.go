// Package solver provides a QF_BV satisfiability solver on top of the
// bit-blaster and the CDCL SAT core.
//
// A Solver owns one growing SAT instance. Permanent facts are added with
// Assert; Check answers satisfiability of the asserted set conjoined with
// per-call assumption terms. Because the CNF encoding of every term is cached
// and assumptions map to SAT assumption literals, a long series of Check
// calls over overlapping path constraints — the access pattern of the
// symbolic execution engine — reuses all prior encoding and learned-clause
// work.
package solver

import (
	"sync"
	"sync/atomic"

	"symriscv/internal/bitblast"
	"symriscv/internal/obs"
	"symriscv/internal/sat"
	"symriscv/internal/smt"
)

// Result is the outcome of a Check call.
type Result int8

// Check outcomes.
const (
	Unknown Result = iota
	Sat
	Unsat
)

func (r Result) String() string {
	switch r {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Stats holds cumulative solver-facade counters. UnknownAns counts Check
// calls that exhausted the conflict budget without an answer; it is always
// zero when no budget is set.
type Stats struct {
	Checks     uint64
	SatAns     uint64
	UnsatAns   uint64
	UnknownAns uint64
	SAT        sat.Stats
}

// Solver decides QF_BV formulas built in one smt.Context.
//
// Solving itself is single-owner (one goroutine drives Check/CheckCore at
// a time, like the rest of a shard's context), but the facade counters are
// atomics and the SAT-core stats are snapshotted under a mutex after each
// solve, so Stats may be read concurrently by a telemetry sampler while a
// worker is mid-Check.
type Solver struct {
	ctx *smt.Context
	sat *sat.Solver
	bb  *bitblast.Blaster

	checks     atomic.Uint64
	satAns     atomic.Uint64
	unsatAns   atomic.Uint64
	unknownAns atomic.Uint64

	satMu   sync.Mutex // guards satSnap
	satSnap sat.Stats

	h *obs.Handle
}

// New returns a solver for terms of ctx, with the tuned default SAT-core
// parameters.
func New(ctx *smt.Context) *Solver {
	return NewWithOptions(ctx, sat.DefaultOptions())
}

// NewWithOptions returns a solver for terms of ctx whose SAT core runs with
// the given heuristic parameters (portfolio diversification; see
// sat.PortfolioOptions).
func NewWithOptions(ctx *smt.Context, o sat.Options) *Solver {
	s := sat.NewWith(o)
	return &Solver{
		ctx: ctx,
		sat: s,
		bb:  bitblast.New(ctx, s),
	}
}

// SetInprocessing toggles SAT-core inprocessing (ablation; default on).
func (s *Solver) SetInprocessing(on bool) { s.sat.SetInprocessing(on) }

// Context returns the term context this solver works over.
func (s *Solver) Context() *smt.Context { return s.ctx }

// SetObs attaches the owning worker's observability handle; every Check /
// CheckCore then runs under a solver-check span. A nil handle detaches.
func (s *Solver) SetObs(h *obs.Handle) { s.h = h }

// SetConflictBudget bounds the SAT effort of each Check call; 0 removes the
// bound. Exceeding the budget yields Unknown.
func (s *Solver) SetConflictBudget(n uint64) { s.sat.ConflictBudget = n }

// Assert permanently adds the Boolean term t to the solver. Constant terms
// (the usual result of the rewriter folding a path condition) are handled
// without touching the bit-blaster or allocating a clause: true is a no-op,
// false marks the instance trivially unsatisfiable. After asserting false,
// every Check answers Unsat with an empty failed-assumption set (nil core
// from CheckCore), the documented clause-set-level-conflict contract.
func (s *Solver) Assert(t *smt.Term) {
	switch t.Kind() {
	case smt.KTrue:
		return
	case smt.KFalse:
		s.sat.AddClause() // empty clause: trivially unsat
		return
	}
	s.sat.AddClause(s.bb.LitFor(t))
}

// Check reports satisfiability of the asserted facts plus the given
// assumptions. After Sat, Model and ModelValue read the witness.
func (s *Solver) Check(assumptions ...*smt.Term) Result {
	defer s.h.Start(obs.PhaseSolverCheck).End()
	lits := make([]sat.Lit, len(assumptions))
	for i, t := range assumptions {
		lits[i] = s.bb.LitFor(t)
	}
	s.checks.Add(1)
	res := s.sat.Solve(lits...)
	s.snapshotSAT()
	switch res {
	case sat.Sat:
		s.satAns.Add(1)
		return Sat
	case sat.Unsat:
		s.unsatAns.Add(1)
		return Unsat
	}
	s.unknownAns.Add(1)
	return Unknown
}

// CheckCore is Check plus, on Unsat, the subset of assumption terms the
// refutation actually used (an unsat core over the assumptions, from the
// SAT solver's failed-assumption analysis). The core is nil when it is
// unavailable (clause-set-level conflict) — callers must then fall back to
// the full assumption set. The query cache records cores instead of full
// constraint sets, which is what makes its superset-of-unsat rule fire
// across related queries.
func (s *Solver) CheckCore(assumptions ...*smt.Term) (Result, []*smt.Term) {
	defer s.h.Start(obs.PhaseSolverCheck).End()
	lits := make([]sat.Lit, len(assumptions))
	for i, t := range assumptions {
		lits[i] = s.bb.LitFor(t)
	}
	s.checks.Add(1)
	res := s.sat.Solve(lits...)
	s.snapshotSAT()
	switch res {
	case sat.Sat:
		s.satAns.Add(1)
		return Sat, nil
	case sat.Unsat:
		s.unsatAns.Add(1)
		failed := s.sat.FailedAssumptions()
		if len(failed) == 0 {
			return Unsat, nil
		}
		// FailedAssumptions holds the negations of the responsible
		// assumption literals.
		set := make(map[sat.Lit]struct{}, len(failed))
		for _, l := range failed {
			set[l] = struct{}{}
		}
		core := make([]*smt.Term, 0, len(failed))
		for i, t := range assumptions {
			if _, ok := set[lits[i].Neg()]; ok {
				core = append(core, t)
			}
		}
		return Unsat, core
	}
	s.unknownAns.Add(1)
	return Unknown, nil
}

// snapshotSAT publishes a copy of the SAT-core counters for concurrent
// Stats readers. Called by the owning goroutine after each solve; the
// copy is a handful of words, negligible next to the solve itself.
func (s *Solver) snapshotSAT() {
	st := s.sat.Stats()
	s.satMu.Lock()
	s.satSnap = st
	s.satMu.Unlock()
}

// ModelValue returns the value of t under the model of the last Sat answer.
// Terms that were not part of any checked formula are unconstrained; their
// variables read as zero. Composite terms are evaluated over the variable
// assignment, so any term of the context may be queried.
func (s *Solver) ModelValue(t *smt.Term) uint64 {
	if v, ok := s.bb.ModelValue(t); ok {
		return v
	}
	v, err := smt.Eval(t, s.Model())
	if err != nil {
		// Unreachable: Model binds every variable of the context.
		panic("solver: ModelValue: " + err.Error())
	}
	return v
}

// Model returns a complete assignment for every variable of the context,
// reading encoded variables from the SAT model and defaulting unconstrained
// ones to zero. Valid after a Sat answer.
//
// This walks every variable the context has ever interned — O(context),
// which grows with the whole exploration. New callers almost always want
// ModelFor with the variables they actually care about (a path's symbolic
// inputs, a constraint set's support); reserve Model for offline tooling
// where the context is small.
func (s *Solver) Model() smt.MapEnv {
	return s.ModelFor(s.ctx.Vars())
}

// VarValue returns the SAT-model value of a single variable after a Sat
// answer. ok is false when the variable was never encoded into the SAT
// instance (it is unconstrained; callers conventionally default it to zero).
func (s *Solver) VarValue(v *smt.Term) (uint64, bool) {
	return s.bb.ModelValue(v)
}

// ModelFor returns an assignment restricted to the given variables, reading
// encoded ones from the SAT model and defaulting unconstrained ones to zero.
// Valid after a Sat answer. Where Model walks every variable the context has
// ever interned — O(context), which grows with the whole exploration — this
// is O(len(vars)), so callers that only need the symbolic inputs of one path
// (test-vector extraction, witness filtering) should prefer it.
func (s *Solver) ModelFor(vars []*smt.Term) smt.MapEnv {
	env := make(smt.MapEnv, len(vars))
	for _, v := range vars {
		if val, ok := s.bb.ModelValue(v); ok {
			env[v.Name()] = val
		} else {
			env[v.Name()] = 0
		}
	}
	return env
}

// Stats returns cumulative counters. Safe to call from any goroutine,
// including concurrently with a Check in flight on the owning worker: the
// facade counters are atomics and the SAT block is the snapshot taken
// after the most recent completed solve.
func (s *Solver) Stats() Stats {
	st := Stats{
		Checks:     s.checks.Load(),
		SatAns:     s.satAns.Load(),
		UnsatAns:   s.unsatAns.Load(),
		UnknownAns: s.unknownAns.Load(),
	}
	s.satMu.Lock()
	st.SAT = s.satSnap
	s.satMu.Unlock()
	return st
}

// NumSATVars exposes the size of the underlying SAT instance (for reporting).
func (s *Solver) NumSATVars() int { return s.sat.NumVars() }

// NumSATClauses exposes the problem-clause count of the SAT instance.
func (s *Solver) NumSATClauses() int { return s.sat.NumClauses() }
