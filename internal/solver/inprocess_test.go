package solver

import (
	"math/rand"
	"testing"

	"symriscv/internal/sat"
	"symriscv/internal/smt"
)

// TestAssertConstantFolding pins the constant fast paths in Assert: true
// terms (the rewriter's usual verdict on redundant path conditions) must not
// reach the bit-blaster, and false terms must make the instance trivially
// unsat without corrupting failed-assumption analysis on later checks.
func TestAssertConstantFolding(t *testing.T) {
	ctx := smt.NewContext()
	s := New(ctx)
	x := ctx.Var("x", 8)

	before := s.sat.NumVars()
	s.Assert(ctx.True())
	s.Assert(ctx.Eq(ctx.BV(8, 3), ctx.BV(8, 3))) // folds to true
	if s.sat.NumVars() != before || s.sat.NumClauses() != 0 {
		t.Fatalf("true assert touched the SAT instance: %d vars %d clauses",
			s.sat.NumVars(), s.sat.NumClauses())
	}
	if s.Check() != Sat {
		t.Fatal("true asserts must keep the instance sat")
	}

	s.Assert(ctx.Eq(x, ctx.BV(8, 1)))
	if s.Check() != Sat || s.ModelValue(x) != 1 {
		t.Fatal("normal assert broken after constant asserts")
	}

	s.Assert(ctx.False())
	if s.Check() != Unsat {
		t.Fatal("false assert must make the instance unsat")
	}
	// Clause-set-level conflict: CheckCore must answer Unsat with a nil core
	// (callers fall back to the full assumption set), and stay that way.
	res, core := s.CheckCore(ctx.Eq(x, ctx.BV(8, 1)))
	if res != Unsat || core != nil {
		t.Fatalf("CheckCore after false assert: %v core=%v, want Unsat nil", res, core)
	}
	if s.Check(ctx.Eq(x, ctx.BV(8, 2))) != Unsat {
		t.Fatal("solver must stay trivially unsat")
	}
}

// randConstraint builds a random boolean constraint over the given variables.
func randConstraint(rng *rand.Rand, ctx *smt.Context, vars []*smt.Term) *smt.Term {
	a := randTerm(rng, ctx, vars, 2)
	b := randTerm(rng, ctx, vars, 2)
	switch rng.Intn(5) {
	case 0:
		return ctx.Eq(a, b)
	case 1:
		return ctx.Ne(a, b)
	case 2:
		return ctx.Ult(a, b)
	case 3:
		return ctx.Slt(a, b)
	default:
		return ctx.Ule(a, b)
	}
}

// TestInprocessDifferentialQFBV fuzzes the tuned solver against an
// inprocessing-off twin over random QF_BV constraint sets with incremental
// asserts and assumption queries. Answers must agree; Sat models are
// re-checked by the term evaluator; Unsat cores are re-verified by a fresh
// solver.
func TestInprocessDifferentialQFBV(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 20; iter++ {
		ctx := smt.NewContext()
		on := NewWithOptions(ctx, sat.DefaultOptions())
		off := New(ctx)
		off.SetInprocessing(false)
		x := ctx.Var("x", 32)
		y := ctx.Var("y", 32)
		vars := []*smt.Term{x, y}

		var asserted []*smt.Term
		for round := 0; round < 8; round++ {
			if rng.Intn(3) == 0 {
				c := randConstraint(rng, ctx, vars)
				asserted = append(asserted, c)
				on.Assert(c)
				off.Assert(c)
			}
			assumps := make([]*smt.Term, 1+rng.Intn(3))
			for i := range assumps {
				assumps[i] = randConstraint(rng, ctx, vars)
			}
			rOn, core := on.CheckCore(assumps...)
			rOff := off.Check(assumps...)
			if rOn != rOff {
				t.Fatalf("iter %d round %d: tuned=%v inprocess-off=%v (asserted %v assumps %v)",
					iter, round, rOn, rOff, asserted, assumps)
			}
			switch rOn {
			case Sat:
				env := on.Model()
				for _, c := range append(append([]*smt.Term{}, asserted...), assumps...) {
					v, err := smt.Eval(c, env)
					if err != nil {
						t.Fatalf("iter %d round %d: eval: %v", iter, round, err)
					}
					if v != 1 {
						t.Fatalf("iter %d round %d: model violates %v", iter, round, c)
					}
				}
			case Unsat:
				// Re-verify the core (or, for a clause-set-level conflict,
				// the asserted facts alone) on a fresh solver.
				chk := New(ctx)
				for _, c := range asserted {
					chk.Assert(c)
				}
				if got := chk.Check(core...); got != Unsat {
					t.Fatalf("iter %d round %d: core %v not actually unsat (%v)",
						iter, round, core, got)
				}
			default:
				t.Fatalf("iter %d round %d: unexpected %v", iter, round, rOn)
			}
		}
	}
}
