// Package decodecheck statically verifies a DUT's mask/match decode table
// (microrv32 or pipecore) against the independent internal/riscv reference
// decoder, before
// any symbolic run: every fault hunt (Table II) forks one exploration path
// per decode-table row, so a table that overlaps where semantics differ or
// deviates from the RV32 spec makes the hunt chase decode artefacts
// instead of the injected faults E0–E9.
//
// Three properties are checked per configuration (fault set × M switch):
//
//   - well-formedness: every row's match bits lie inside its mask;
//   - non-overlap: no instruction word can match two rows that decode to
//     different micro-ops (reported with a concrete 32-bit counterexample,
//     so the decode walk's first-match order is irrelevant);
//   - completeness: over a structured sweep of the encoding space plus an
//     encoder-generated catalogue, the table agrees with riscv.Decode.
//     Disagreements caused by an *active* decode fault (E0–E2 widen the
//     shift-immediate masks) are reported as intentional deviations —
//     visible in the report, not silently passed — while any other
//     disagreement is a violation.
package decodecheck

import (
	"fmt"
	"strings"

	"symriscv/internal/faults"
	"symriscv/internal/microrv32"
	"symriscv/internal/pipecore"
	"symriscv/internal/riscv"
)

// Entry is one decode-table row under verification. It aliases the
// microrv32 export (the original DUT) so historical call sites keep
// working; pipecore rows are converted by entriesFor.
type Entry = microrv32.TableEntry

// CoreKind selects which DUT's decode table a Config verifies.
type CoreKind string

// Supported cores. The zero value selects microrv32 for compatibility
// with pre-existing call sites.
const (
	CoreMicroRV32 CoreKind = "microrv32"
	CorePipecore  CoreKind = "pipecore"
)

// Config selects the decode-table build to verify.
type Config struct {
	Core    CoreKind // "" means CoreMicroRV32
	Faults  faults.Set
	EnableM bool
}

// core returns the effective core selector, defaulting to microrv32.
func (c Config) core() CoreKind {
	if c.Core == "" {
		return CoreMicroRV32
	}
	return c.Core
}

func (c Config) String() string {
	m := "rv32i"
	if c.EnableM {
		m = "rv32im"
	}
	return fmt.Sprintf("%s %s faults=%s", c.core(), m, c.Faults)
}

// entriesFor builds the decode table of the configured core.
func entriesFor(cfg Config) []Entry {
	switch cfg.core() {
	case CorePipecore:
		rows := pipecore.DecodeTableEntries(cfg.Faults, cfg.EnableM)
		out := make([]Entry, len(rows))
		for i, e := range rows {
			out[i] = Entry(e)
		}
		return out
	default:
		return microrv32.DecodeTableEntries(cfg.Faults, cfg.EnableM)
	}
}

// Overlap is a pair of rows that both match some instruction word.
type Overlap struct {
	I, J int // row indices in walk order
	A, B Entry
	Word uint32 // counterexample word matching both rows
}

func (o Overlap) String() string {
	return fmt.Sprintf("rows %d (%s mask=%#08x match=%#08x) and %d (%s mask=%#08x match=%#08x) overlap: %#08x (%s) matches both",
		o.I, o.A.Op, o.A.Mask, o.A.Match, o.J, o.B.Op, o.B.Mask, o.B.Match, o.Word, riscv.Disasm(o.Word))
}

// Gap is a word on which the table disagrees with the reference decoder
// for a reason no active fault explains.
type Gap struct {
	Word uint32
	Want string // reference decode ("illegal" when the spec rejects it)
	Got  string // table decode
}

func (g Gap) String() string {
	return fmt.Sprintf("word %#08x: table decodes %q, reference decodes %q (%s)",
		g.Word, g.Got, g.Want, riscv.Disasm(g.Word))
}

// Deviation is a word the table accepts differently from the spec because
// of a decode fault. Intentional is true when that fault is active in the
// checked configuration; an inactive attribution is a verifier-internal
// inconsistency and counts as a violation.
type Deviation struct {
	Fault       faults.Fault
	Word        uint32
	Want        string // spec decode
	Got         string // table decode under the fault
	Intentional bool
}

func (d Deviation) String() string {
	tag := "INTENTIONAL"
	if !d.Intentional {
		tag = "UNEXPLAINED"
	}
	return fmt.Sprintf("%s deviation (%s): word %#08x decodes %q instead of %q",
		tag, d.Fault, d.Word, d.Got, d.Want)
}

// Report is the verification result for one configuration.
type Report struct {
	Config    Config
	Rows      int
	Checked   int   // words cross-checked against the reference decoder
	Malformed []int // rows whose match bits fall outside their mask
	Overlaps  []Overlap
	Gaps      []Gap
	Deviation []Deviation
}

// OK reports whether the table is well-formed, overlap-free, complete and
// has only intentional (fault-explained) deviations.
func (r *Report) OK() bool {
	if len(r.Malformed) > 0 || len(r.Overlaps) > 0 || len(r.Gaps) > 0 {
		return false
	}
	for _, d := range r.Deviation {
		if !d.Intentional {
			return false
		}
	}
	return true
}

// Format renders the report.
func (r *Report) Format() string {
	var b strings.Builder
	verdict := "OK"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "decode-table check [%s]: %s (%d rows, %d words cross-checked)\n",
		r.Config, verdict, r.Rows, r.Checked)
	for _, i := range r.Malformed {
		fmt.Fprintf(&b, "  malformed: row %d has match bits outside its mask\n", i)
	}
	for _, o := range r.Overlaps {
		fmt.Fprintf(&b, "  overlap: %s\n", o)
	}
	for _, g := range r.Gaps {
		fmt.Fprintf(&b, "  gap: %s\n", g)
	}
	for _, d := range r.Deviation {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// Check verifies the decode table built for cfg.
func Check(cfg Config) *Report {
	return CheckEntries(entriesFor(cfg), cfg)
}

// FindOverlaps reports every pair of rows that both match some word: rows
// A and B overlap iff their match bits agree on the intersection of their
// masks; the union of the match bits is then a concrete witness (valid
// given well-formedness). Exposed for dutlint, which cross-checks its
// SAT-probed decode-arm reachability against this purely bitwise answer.
func FindOverlaps(entries []Entry) []Overlap {
	var overlaps []Overlap
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			a, b := entries[i], entries[j]
			if (a.Match^b.Match)&(a.Mask&b.Mask) != 0 {
				continue
			}
			overlaps = append(overlaps, Overlap{
				I: i, J: j, A: a, B: b, Word: a.Match | b.Match,
			})
		}
	}
	return overlaps
}

// CheckEntries verifies an explicit entry list (exposed so tests can
// inject deliberately broken rows).
func CheckEntries(entries []Entry, cfg Config) *Report {
	rep := &Report{Config: cfg, Rows: len(entries)}

	for i, e := range entries {
		if e.Match&^e.Mask != 0 {
			rep.Malformed = append(rep.Malformed, i)
		}
	}

	rep.Overlaps = FindOverlaps(entries)

	// Completeness/correctness sweep against the reference decoder.
	clean := entriesFor(Config{Core: cfg.Core, Faults: faults.None, EnableM: cfg.EnableM})
	for _, w := range sweepWords() {
		rep.Checked++
		want := referenceDecode(w, cfg)
		got := tableDecode(entries, w)
		if got == want {
			continue
		}
		// The clean table agreeing with the spec means the difference is
		// fault-induced; attribute it to the single active fault whose
		// lone injection reproduces it.
		if tableDecode(clean, w) == want {
			if f, ok := attributeFault(cfg, w, got); ok {
				rep.Deviation = append(rep.Deviation, Deviation{
					Fault: f, Word: w, Want: want, Got: got,
					Intentional: cfg.Faults.Has(f),
				})
				continue
			}
		}
		rep.Gaps = append(rep.Gaps, Gap{Word: w, Want: want, Got: got})
	}
	return rep
}

// tableDecode walks the entries in order, as the core's decode stage does.
func tableDecode(entries []Entry, w uint32) string {
	for _, e := range entries {
		if w&e.Mask == e.Match {
			return e.Op
		}
	}
	return "illegal"
}

// referenceDecode is the spec verdict: the independent riscv decoder,
// restricted to the configured extension set and the core's implemented
// instruction subset (pipecore raises illegal-instruction for Zicsr and
// MRET by design — see the pipecore package comment — so the reference
// must agree there, or every CSR word would be reported as a gap).
func referenceDecode(w uint32, cfg Config) string {
	in := riscv.Decode(w)
	mn := in.Mn.String()
	if !cfg.EnableM {
		switch mn {
		case "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu":
			return "illegal"
		}
	}
	if cfg.core() == CorePipecore {
		switch mn {
		case "csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci", "mret":
			return "illegal"
		}
	}
	if mn == "" || in.Mn == 0 {
		return "illegal"
	}
	return mn
}

// attributeFault finds the active fault whose lone injection makes the
// table decode w to got.
func attributeFault(cfg Config, w uint32, got string) (faults.Fault, bool) {
	for _, f := range faults.All() {
		if !cfg.Faults.Has(f) {
			continue
		}
		only := entriesFor(Config{Core: cfg.Core, Faults: faults.Only(f), EnableM: cfg.EnableM})
		if tableDecode(only, w) == got {
			return f, true
		}
	}
	return 0, false
}

// sweepWords enumerates the cross-check corpus: a structured sweep of
// opcode × funct3 × funct7 with zero register fields, the SYSTEM funct12
// space, and an encoder-generated catalogue with nonzero operands and
// boundary immediates.
func sweepWords() []uint32 {
	var words []uint32
	// funct7 values: the two defined ones (0x00, 0x20), the M-extension
	// selector (0x01), their bit-25 widenings that E0–E2 accept
	// (0x01/0x21), and two garbage patterns.
	f7s := []uint32{0x00, 0x01, 0x02, 0x20, 0x21, 0x40, 0x7f}
	for opc := uint32(0); opc < 128; opc++ {
		for f3 := uint32(0); f3 < 8; f3++ {
			for _, f7 := range f7s {
				words = append(words, f7<<25|f3<<12|opc)
			}
		}
	}
	// SYSTEM funct12 space: the four defined values, near misses, and a
	// non-zero rd/rs1 variant of each (the spec requires rd=rs1=0).
	f12s := []uint32{riscv.F12ECALL, riscv.F12EBREAK, riscv.F12WFI, riscv.F12MRET, 0x002, 0x104, 0x303}
	for _, f12 := range f12s {
		base := f12<<20 | riscv.OpSystem
		words = append(words, base, base|1<<7, base|1<<15)
	}
	words = append(words, catalogWords()...)
	return words
}

// catalogWords builds valid encodings through every internal/riscv encoder
// with a few operand samples each, so the sweep also covers nonzero
// register and immediate fields.
func catalogWords() []uint32 {
	var w []uint32
	add := func(ws ...uint32) { w = append(w, ws...) }

	add(riscv.LUI(1, 0xfffff), riscv.AUIPC(2, 1))
	add(riscv.JAL(1, 2048), riscv.JAL(0, -4))
	add(riscv.JALR(1, 2, -4), riscv.JALR(0, 31, 2047))
	add(riscv.BEQ(1, 2, -8), riscv.BNE(3, 4, 8), riscv.BLT(5, 6, 16),
		riscv.BGE(7, 8, -16), riscv.BLTU(9, 10, 32), riscv.BGEU(11, 12, -32))
	add(riscv.LB(1, 2, -1), riscv.LH(3, 4, 2), riscv.LW(5, 6, 4),
		riscv.LBU(7, 8, 1), riscv.LHU(9, 10, -2))
	add(riscv.SB(1, 2, -1), riscv.SH(3, 4, 2), riscv.SW(5, 6, 4))
	add(riscv.ADDI(1, 2, -1), riscv.SLTI(3, 4, 2047), riscv.SLTIU(5, 6, -2048),
		riscv.XORI(7, 8, 0x555), riscv.ORI(9, 10, -1), riscv.ANDI(11, 12, 0xff))
	add(riscv.SLLI(1, 2, 31), riscv.SRLI(3, 4, 1), riscv.SRAI(5, 6, 31))
	add(riscv.ADD(1, 2, 3), riscv.SUB(4, 5, 6), riscv.SLL(7, 8, 9),
		riscv.SLT(10, 11, 12), riscv.SLTU(13, 14, 15), riscv.XOR(16, 17, 18),
		riscv.SRL(19, 20, 21), riscv.SRA(22, 23, 24), riscv.OR(25, 26, 27),
		riscv.AND(28, 29, 30))
	add(riscv.MUL(1, 2, 3), riscv.MULH(4, 5, 6), riscv.MULHSU(7, 8, 9),
		riscv.MULHU(10, 11, 12), riscv.DIV(13, 14, 15), riscv.DIVU(16, 17, 18),
		riscv.REM(19, 20, 21), riscv.REMU(22, 23, 24))
	add(riscv.FENCE(), riscv.ECALL(), riscv.EBREAK(), riscv.WFI(), riscv.MRET())
	add(riscv.CSRRW(1, riscv.CSRMScratch, 2), riscv.CSRRS(3, riscv.CSRMStatus, 4),
		riscv.CSRRC(5, riscv.CSRMTvec, 6), riscv.CSRRWI(7, riscv.CSRMScratch, 31),
		riscv.CSRRSI(8, riscv.CSRMCause, 1), riscv.CSRRCI(9, riscv.CSRMEpc, 15))

	// The reserved RV32 shift-immediate encodings with bit 25 set: illegal
	// per spec, accepted as shifts by the E0–E2 widened masks.
	const bit25 = uint32(1) << 25
	add(riscv.SLLI(1, 2, 3)|bit25, riscv.SRLI(4, 5, 6)|bit25, riscv.SRAI(7, 8, 9)|bit25)
	return w
}

// CheckAll verifies the clean configuration plus every single-fault
// configuration E0–E9, for both extension sets, and returns the reports
// in that order. It covers the original microrv32 DUT; CheckAllFor runs
// the same grid for any supported core.
func CheckAll() []*Report { return CheckAllFor(CoreMicroRV32) }

// CheckAllFor verifies the full configuration grid (clean + E0–E9, with
// and without M) for the given core.
func CheckAllFor(core CoreKind) []*Report {
	var reps []*Report
	for _, enableM := range []bool{false, true} {
		reps = append(reps, Check(Config{Core: core, Faults: faults.None, EnableM: enableM}))
		for _, f := range faults.All() {
			reps = append(reps, Check(Config{Core: core, Faults: faults.Only(f), EnableM: enableM}))
		}
	}
	return reps
}
