package decodecheck

import (
	"fmt"
	"strings"
	"testing"

	"symriscv/internal/faults"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
)

// TestCleanTable proves the shipped table is well-formed, overlap-free and
// complete against the reference decoder, with and without M.
func TestCleanTable(t *testing.T) {
	for _, enableM := range []bool{false, true} {
		rep := Check(Config{Faults: faults.None, EnableM: enableM})
		if !rep.OK() {
			t.Errorf("clean table (enableM=%v) not OK:\n%s", enableM, rep.Format())
		}
		if len(rep.Deviation) != 0 {
			t.Errorf("clean table (enableM=%v) reported deviations:\n%s", enableM, rep.Format())
		}
		if rep.Checked < 7000 {
			t.Errorf("sweep too small: %d words", rep.Checked)
		}
	}
}

// TestFaultConfigs verifies all ten single-fault configurations. E0–E2
// alter the decode table and must surface as *intentional* deviations —
// present in the report, not silently passed — while E3–E9 are
// execution-stage faults that leave the table untouched.
func TestFaultConfigs(t *testing.T) {
	decodeFaults := map[faults.Fault]string{faults.E0: "slli", faults.E1: "srli", faults.E2: "srai"}
	for _, f := range faults.All() {
		rep := Check(Config{Faults: faults.Only(f), EnableM: true})
		if !rep.OK() {
			t.Errorf("fault %s: table not OK:\n%s", f, rep.Format())
		}
		op, isDecodeFault := decodeFaults[f]
		if !isDecodeFault {
			if len(rep.Deviation) != 0 {
				t.Errorf("fault %s: execution-stage fault reported decode deviations:\n%s", f, rep.Format())
			}
			continue
		}
		if len(rep.Deviation) == 0 {
			t.Errorf("fault %s: widened %s mask produced no deviation — silently passed", f, op)
			continue
		}
		for _, d := range rep.Deviation {
			if d.Fault != f || !d.Intentional {
				t.Errorf("fault %s: deviation misattributed: %s", f, d)
			}
			if d.Got != op {
				t.Errorf("fault %s: deviation decodes %q, want %q", f, d.Got, op)
			}
			if d.Want != "illegal" {
				t.Errorf("fault %s: deviation spec verdict %q, want illegal", f, d.Want)
			}
			if d.Word&(1<<25) == 0 {
				t.Errorf("fault %s: deviation word %#08x lacks bit 25", f, d.Word)
			}
		}
	}
}

// TestUnintentionalDeviation checks that a fault-widened table verified
// under the *clean* configuration fails: the deviation exists but no
// active fault explains it.
func TestUnintentionalDeviation(t *testing.T) {
	widened := microrv32.DecodeTableEntries(faults.Only(faults.E0), true)
	rep := CheckEntries(widened, Config{Faults: faults.None, EnableM: true})
	if rep.OK() {
		t.Fatalf("E0-widened table passed under clean config:\n%s", rep.Format())
	}
	if len(rep.Gaps) == 0 {
		t.Fatalf("expected unexplained gaps, got none:\n%s", rep.Format())
	}
}

// TestInjectedOverlap injects a deliberately overlapping row and asserts
// the verifier names the conflicting mask/match pair and produces a
// concrete 32-bit counterexample that matches both rows.
func TestInjectedOverlap(t *testing.T) {
	entries := microrv32.DecodeTableEntries(faults.None, true)
	// Same mask/match as ADDI (opcode 0x13, funct3 0) but a different op:
	// every ADDI encoding now matches two semantically different rows.
	bogus := microrv32.TableEntry{Mask: 0x0000707f, Match: 0x00000013, Op: "xori"}
	entries = append(entries, bogus)

	rep := CheckEntries(entries, Config{Faults: faults.None, EnableM: true})
	if rep.OK() {
		t.Fatalf("verifier accepted a table with an injected overlap")
	}
	var hit *Overlap
	for i := range rep.Overlaps {
		o := &rep.Overlaps[i]
		if o.J == len(entries)-1 && o.A.Op == "addi" {
			hit = o
			break
		}
	}
	if hit == nil {
		t.Fatalf("no overlap against the injected row reported:\n%s", rep.Format())
	}
	// The counterexample must be concrete and match both rows.
	if hit.Word&hit.A.Mask != hit.A.Match || hit.Word&hit.B.Mask != hit.B.Match {
		t.Errorf("counterexample %#08x does not match both rows", hit.Word)
	}
	// The report names both rows' mask/match pairs and the witness word.
	msg := hit.String()
	for _, want := range []string{
		"addi", "xori",
		fmt.Sprintf("mask=%#08x", bogus.Mask),
		fmt.Sprintf("match=%#08x", bogus.Match),
		fmt.Sprintf("%#08x", hit.Word),
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("overlap message missing %q: %s", want, msg)
		}
	}
	// And the witness really is an ADDI encoding per the reference decoder.
	if mn := riscv.Decode(hit.Word).Mn.String(); mn != "addi" {
		t.Errorf("counterexample decodes to %q, want addi", mn)
	}
}

// TestMalformedRow checks the well-formedness screen.
func TestMalformedRow(t *testing.T) {
	entries := []microrv32.TableEntry{{Mask: 0x7f, Match: 0xff, Op: "bogus"}}
	rep := CheckEntries(entries, Config{Faults: faults.None, EnableM: true})
	if rep.OK() || len(rep.Malformed) != 1 || rep.Malformed[0] != 0 {
		t.Fatalf("malformed row not flagged: %+v", rep.Malformed)
	}
}

// TestCheckAll exercises the symv lint-table entry point.
func TestCheckAll(t *testing.T) {
	reps := CheckAll()
	if len(reps) != 2*(1+int(faults.NumFaults)) {
		t.Fatalf("CheckAll returned %d reports", len(reps))
	}
	for _, rep := range reps {
		if !rep.OK() {
			t.Errorf("config %s failed:\n%s", rep.Config, rep.Format())
		}
	}
}

// TestPipecoreCleanTable verifies the second DUT's decode table against the
// reference decoder restricted to pipecore's implemented subset (no Zicsr,
// no MRET).
func TestPipecoreCleanTable(t *testing.T) {
	for _, enableM := range []bool{false, true} {
		rep := Check(Config{Core: CorePipecore, Faults: faults.None, EnableM: enableM})
		if !rep.OK() {
			t.Errorf("pipecore clean table (enableM=%v) not OK:\n%s", enableM, rep.Format())
		}
		if len(rep.Deviation) != 0 {
			t.Errorf("pipecore clean table (enableM=%v) reported deviations:\n%s", enableM, rep.Format())
		}
		if rep.Checked < 7000 {
			t.Errorf("sweep too small: %d words", rep.Checked)
		}
	}
}

// TestPipecoreFaultGrid runs the full configuration grid for pipecore: the
// decode faults E0–E2 must surface as intentional deviations on the widened
// shift rows, exactly as for microrv32.
func TestPipecoreFaultGrid(t *testing.T) {
	reps := CheckAllFor(CorePipecore)
	if len(reps) != 2*(1+int(faults.NumFaults)) {
		t.Fatalf("CheckAllFor returned %d reports", len(reps))
	}
	sawDecodeFault := 0
	for _, rep := range reps {
		if !rep.OK() {
			t.Errorf("pipecore config %s failed:\n%s", rep.Config, rep.Format())
		}
		if len(rep.Deviation) > 0 {
			sawDecodeFault++
			for _, d := range rep.Deviation {
				if !d.Intentional {
					t.Errorf("pipecore config %s: unintentional deviation %s", rep.Config, d)
				}
			}
		}
	}
	// E0, E1, E2 for both M settings.
	if sawDecodeFault != 6 {
		t.Errorf("expected 6 configurations with decode deviations, got %d", sawDecodeFault)
	}
}

// TestPipecoreCSRGap proves the core-specific reference restriction works
// both ways: a pipecore table that *did* accept CSR instructions would be
// flagged against the restricted reference.
func TestPipecoreCSRGap(t *testing.T) {
	entries := entriesFor(Config{Core: CorePipecore, EnableM: true})
	entries = append(entries, Entry{Mask: 0x707f, Match: 0x1073, Op: "csrrw"})
	rep := CheckEntries(entries, Config{Core: CorePipecore, Faults: faults.None, EnableM: true})
	if rep.OK() {
		t.Fatalf("pipecore table with a csrrw row passed the restricted reference")
	}
	found := false
	for _, g := range rep.Gaps {
		if g.Got == "csrrw" && g.Want == "illegal" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no csrrw gap reported:\n%s", rep.Format())
	}
}
