package cosim

import (
	"symriscv/internal/core"
	"symriscv/internal/cow"
	"symriscv/internal/iss"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// DUTSnapshotter is the optional DUT capability gating fork-point
// checkpointing: a core that can freeze its complete micro-architectural
// state and rebuild it against a fresh engine. SnapshotDUT returns a restore
// closure; irqSrc, when non-nil, is the restored interrupt source the rebuilt
// core must use (typed any so core packages need not import this one), and
// the returned value must be the restored core (asserted to DUT here). DUTs
// without this interface still work — their paths fall back to full replay.
type DUTSnapshotter interface {
	SnapshotDUT() func(eng *core.Engine, irqSrc any) any
}

// cosimSnapshot is the frozen image of a runState at a quiescent point (top
// of the cycle loop). Memories freeze as copy-on-write layers (O(1)); the DUT
// and ISS freeze as restore closures; bus latches and progress counters are
// plain values. resume rebuilds a runState around a resumed sibling's engine
// and re-enters the cycle loop mid-path.
type cosimSnapshot struct {
	cfg Config

	imem       *cow.Layer[uint32, *smt.Term]
	initBytes  *cow.Layer[uint32, *smt.Term]
	rtlOverlay *cow.Layer[uint32, *smt.Term]
	rtlWrites  []uint32
	issOverlay *cow.Layer[uint32, *smt.Term]
	issWrites  []uint32

	dut func(eng *core.Engine, irqSrc any) any
	ref func(eng *core.Engine, imem iss.InstrFetcher, dmem iss.DataMemory, irq iss.IrqSource) *iss.ISS
	irq *irqSnapshot // nil when the run has no interrupt line

	ib      rtl.IBusResponse
	db      rtl.DBusResponse
	retired int
	cycles  int
}

// capture freezes the current runState. It is only installed as the engine's
// checkpoint capture when the DUT implements DUTSnapshotter, so the type
// assertion cannot fail.
func (rs *runState) capture() core.ResumeFunc {
	s := &cosimSnapshot{
		cfg:     rs.cfg,
		imem:    rs.imem.snapshot(),
		dut:     rs.dut.(DUTSnapshotter).SnapshotDUT(),
		ref:     rs.ref.Snapshot(),
		ib:      rs.ib,
		db:      rs.db,
		retired: rs.retired,
		cycles:  rs.cycles,
	}
	s.initBytes = rs.initPool.snapshot()
	s.rtlOverlay, s.rtlWrites = rs.dmemRTL.snapshot()
	s.issOverlay, s.issWrites = rs.dmemISS.snapshot()
	if rs.irq != nil {
		s.irq = rs.irq.snapshot()
	}
	return s.resume
}

// resume rebuilds the testbench around a resumed sibling's engine and
// continues the cycle loop from the checkpointed cycle. Construction order
// mirrors the dependency order of newRunState: memories first, then the
// interrupt line, then the DUT and ISS bound to the restored instances.
func (s *cosimSnapshot) resume(eng *core.Engine) error {
	cfg := s.cfg
	rs := &runState{
		eng:     eng,
		cfg:     cfg,
		ib:      s.ib,
		db:      s.db,
		retired: s.retired,
		cycles:  s.cycles,
	}

	filter := cfg.Filter
	if cfg.Pin != nil {
		filter = Filters(pinFilter(cfg.Pin), filter)
	}
	rs.imem = resumeIMem(eng, s.imem, filter, cfg.ConcreteIMem)
	rs.initPool = resumeSharedInit(eng, s.initBytes, cfg.Pin, cfg.ConcreteMem)
	ctx := eng.Context()
	rs.dmemRTL = resumeDMem(ctx, rs.initPool, s.rtlOverlay, s.rtlWrites)
	rs.dmemISS = resumeDMem(ctx, rs.initPool, s.issOverlay, s.issWrites)

	var irqForDUT any
	var irqForISS iss.IrqSource
	if s.irq != nil {
		rs.irq = s.irq.restore(eng)
		irqForDUT = rs.irq
		irqForISS = rs.irq
	}
	rs.dut = s.dut(eng, irqForDUT).(DUT)
	rs.ref = s.ref(eng, rs.imem, rs.dmemISS, irqForISS)
	rs.checker = rvfi.NewChecker(eng)
	rs.captureFn = rs.capture
	return rs.loop()
}

// irqSnapshot freezes an interrupt line's per-slot value cache. The map is
// copied both at freeze and per restore so the original path and any number
// of resumed siblings extend their caches independently.
type irqSnapshot struct {
	pin  smt.MapEnv
	vars map[uint64]*smt.Term
}

func (l *IrqLine) snapshot() *irqSnapshot {
	return &irqSnapshot{pin: l.pin, vars: copyIrqVars(l.vars)}
}

func (s *irqSnapshot) restore(eng *core.Engine) *IrqLine {
	return &IrqLine{eng: eng, pin: s.pin, vars: copyIrqVars(s.vars)}
}

func copyIrqVars(m map[uint64]*smt.Term) map[uint64]*smt.Term {
	if m == nil {
		return nil
	}
	out := make(map[uint64]*smt.Term, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
