package cosim

import (
	"math/rand"
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

// withEngine runs fn inside a single-path exploration.
func withEngine(t *testing.T, fn func(e *core.Engine)) {
	t.Helper()
	x := core.NewExplorer(func(e *core.Engine) error {
		fn(e)
		return nil
	})
	rep := x.Explore(core.Options{})
	if rep.Stats.Paths != 1 || rep.Stats.Completed != 1 {
		t.Fatalf("expected one clean path: %v", rep.Stats)
	}
}

func TestIMemCachesAndShares(t *testing.T) {
	withEngine(t, func(e *core.Engine) {
		m := NewSymbolicIMem(e, nil)
		w1 := m.Fetch(0x100)
		w2 := m.Fetch(0x100)
		if w1 != w2 {
			t.Error("same address must return the identical cached word")
		}
		if m.Fetch(0x104) == w1 {
			t.Error("different addresses must generate different words")
		}
		if w1.Kind() != smt.KVar || w1.Width() != 32 {
			t.Errorf("instruction word should be a 32-bit symbolic variable, got %v", w1)
		}
	})
}

func TestIMemPreload(t *testing.T) {
	withEngine(t, func(e *core.Engine) {
		m := NewSymbolicIMem(e, nil)
		m.Preload(0, riscv.ADDI(1, 0, 7))
		w := m.Fetch(0)
		if !w.IsConst() || uint32(w.ConstVal()) != riscv.ADDI(1, 0, 7) {
			t.Errorf("preloaded word not returned: %v", w)
		}
	})
}

func TestIMemFilterApplies(t *testing.T) {
	// With a filter forcing opcode==OP, a generated word can never satisfy
	// opcode==LOAD under the path constraints.
	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		m := NewSymbolicIMem(e, OnlyOpcode(riscv.OpReg))
		w := m.Fetch(0)
		if _, ok := e.FindWitness(ctx.Eq(ctx.And(w, ctx.BV(32, 0x7f)), ctx.BV(32, riscv.OpLoad))); ok {
			t.Error("filter did not constrain the generated word")
		}
		return nil
	})
	x.Explore(core.Options{})
}

func TestDMemSharedInitSeparateOverlay(t *testing.T) {
	withEngine(t, func(e *core.Engine) {
		ctx := e.Context()
		pool := NewSharedInit(e)
		a := NewSymbolicDMem(ctx, pool)
		b := NewSymbolicDMem(ctx, pool)

		if a.LoadByte(50) != b.LoadByte(50) {
			t.Error("initial bytes must be shared between the two sides")
		}
		a.StoreByte(50, ctx.BV(8, 0xaa))
		if a.LoadByte(50) == b.LoadByte(50) {
			t.Error("stores must stay private to one side")
		}
		if got := a.LoadByte(50); !got.IsConst() || got.ConstVal() != 0xaa {
			t.Errorf("overlay readback: %v", got)
		}
		if a.WriteCount() != 1 || b.WriteCount() != 0 {
			t.Error("write log wrong")
		}
	})
}

func TestDMemWidthComposition(t *testing.T) {
	withEngine(t, func(e *core.Engine) {
		ctx := e.Context()
		pool := NewSharedInit(e)
		m := NewSymbolicDMem(ctx, pool)
		m.StoreWord(100, ctx.BV(32, 0xdeadbeef))
		if v := m.LoadWord(100); v.ConstVal() != 0xdeadbeef {
			t.Errorf("word readback %#x", v.ConstVal())
		}
		if v := m.LoadHalf(102); v.ConstVal() != 0xdead {
			t.Errorf("half readback %#x", v.ConstVal())
		}
		if v := m.LoadByte(101); v.ConstVal() != 0xbe {
			t.Errorf("byte readback %#x", v.ConstVal())
		}
		m.StoreHalf(102, ctx.BV(16, 0x1234))
		if v := m.LoadWord(100); v.ConstVal() != 0x1234beef {
			t.Errorf("after half store: %#x", v.ConstVal())
		}
	})
}

func TestServeDBus(t *testing.T) {
	withEngine(t, func(e *core.Engine) {
		ctx := e.Context()
		pool := NewSharedInit(e)
		m := NewSymbolicDMem(ctx, pool)

		// Write half lane 1 (bytes 2,3) then read the word back.
		resp := m.ServeDBus(rtl.DBusRequest{
			Enable:    true,
			Write:     true,
			Address:   ctx.BV(32, 100),
			WrStrobe:  rtl.StrobeHalf1,
			WriteData: ctx.BV(32, 0xabcd0000),
		})
		if !resp.DataReady {
			t.Fatal("write not acknowledged")
		}
		resp = m.ServeDBus(rtl.DBusRequest{
			Enable:   true,
			Address:  ctx.BV(32, 100),
			WrStrobe: rtl.StrobeWord,
		})
		if !resp.DataReady {
			t.Fatal("read not acknowledged")
		}
		got := ctx.Extract(resp.ReadData, 31, 16)
		if !got.IsConst() || got.ConstVal() != 0xabcd {
			t.Errorf("written lanes read back %v", got)
		}
		// Idle request does nothing.
		if r := m.ServeDBus(rtl.DBusRequest{}); r.DataReady {
			t.Error("idle bus must not respond")
		}
	})
}

// TestRandomInstructionDifferential is the central property-based test: for
// randomly drawn *valid* RV32I instruction words, the matched RTL core and
// ISS — with fully symbolic registers and memory — must never produce a
// satisfiable mismatch.
func TestRandomInstructionDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2023))
	tried := 0
	for tried < 60 {
		w := rng.Uint32()
		in := riscv.Decode(w)
		if in.Mn == riscv.InsInvalid || in.Mn.IsCSR() ||
			in.Mn == riscv.InsECALL || in.Mn == riscv.InsEBREAK ||
			in.Mn == riscv.InsWFI || in.Mn == riscv.InsMRET {
			continue
		}
		tried++
		cfg := matchedConfig()
		cfg.Filter = Filters(cfg.Filter, OnlyMasked(0xffffffff, w))
		x := core.NewExplorer(RunFunc(cfg))
		rep := x.Explore(core.Options{MaxTime: 30 * time.Second})
		if len(rep.Findings) != 0 {
			t.Fatalf("differential mismatch for %s (%#08x): %v",
				riscv.Disasm(w), w, rep.Findings[0].Err)
		}
		if rep.Stats.Completed == 0 {
			t.Fatalf("%s: no completed paths", riscv.Disasm(w))
		}
	}
}

// TestRandomInstructionDifferentialLimit2 extends the differential property
// to two-instruction traces on a per-class basis.
func TestRandomInstructionDifferentialLimit2(t *testing.T) {
	if testing.Short() {
		t.Skip("slow differential sweep")
	}
	classes := []uint32{riscv.OpImm, riscv.OpReg, riscv.OpBranch, riscv.OpLoad, riscv.OpStore, riscv.OpJAL}
	for _, opc := range classes {
		cfg := matchedConfig()
		cfg.Filter = Filters(cfg.Filter, OnlyOpcode(opc))
		cfg.InstrLimit = 2
		x := core.NewExplorer(RunFunc(cfg))
		rep := x.Explore(core.Options{MaxTime: 30 * time.Second, MaxPaths: 400})
		if len(rep.Findings) != 0 {
			t.Fatalf("opcode %#x: mismatch at limit 2: %v", opc, rep.Findings[0].Err)
		}
	}
}

// TestRV32MMatchedDifferential explores the matched configuration with the
// M extension enabled on both sides: the shared ISA-level term shapes must
// keep the voter silent over the whole MUL/DIV decode subtree.
func TestRV32MMatchedDifferential(t *testing.T) {
	cfg := matchedConfig()
	cfg.ISS.EnableM = true
	cfg.Core.EnableM = true
	// Focus generation on the M-extension encodings.
	cfg.Filter = Filters(cfg.Filter, OnlyMasked(0xfe00007f, uint32(riscv.F7MulDiv)<<25|riscv.OpReg))
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 60 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("M-extension mismatch: %v", rep.Findings[0].Err)
	}
	if !rep.Exhausted || rep.Stats.Completed == 0 {
		t.Fatalf("M sweep incomplete: %v", rep.Stats)
	}
	t.Logf("M sweep: %v", rep.Stats)
}

// TestRV32MRandomConcreteDifferential cross-checks concrete random M
// instructions between the models.
func TestRV32MRandomConcreteDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	builders := []func(rd, rs1, rs2 uint32) uint32{
		riscv.MUL, riscv.MULH, riscv.MULHSU, riscv.MULHU,
		riscv.DIV, riscv.DIVU, riscv.REM, riscv.REMU,
	}
	for i := 0; i < 24; i++ {
		w := builders[i%len(builders)](3, 1, 2)
		cfg := matchedConfig()
		cfg.ISS.EnableM = true
		cfg.Core.EnableM = true
		cfg.Filter = Filters(cfg.Filter, OnlyMasked(0xffffffff, w))
		cfg.ConcreteRegs = map[int]uint32{1: rng.Uint32(), 2: rng.Uint32()}
		x := core.NewExplorer(RunFunc(cfg))
		rep := x.Explore(core.Options{MaxTime: 30 * time.Second})
		if len(rep.Findings) != 0 {
			t.Fatalf("%s: %v", riscv.Disasm(w), rep.Findings[0].Err)
		}
	}
}
