package cosim

import (
	"fmt"
	"sort"
	"testing"

	"symriscv/internal/core"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
)

// strobeRecorder wraps the real DUT and captures every enabled DBus
// request the core emits, via the Config.NewDUT hook. Requests are keyed
// per path so the assertions below can report which exploration path broke
// the protocol.
type strobeRecorder struct {
	DUT
	reqs *[]rtl.DBusRequest
}

func (d strobeRecorder) Step(ib rtl.IBusResponse, db rtl.DBusResponse) (rtl.IBusRequest, rtl.DBusRequest) {
	ibReq, dbReq := d.DUT.Step(ib, db)
	if dbReq.Enable {
		*d.reqs = append(*d.reqs, dbReq)
	}
	return ibReq, dbReq
}

// TestDBusStrobeProtocol drives the repaired MicroRV32 core over every
// feasible load and store path and checks the DBus protocol invariant on
// each emitted request: a legal Strobe pattern (one of the seven the
// protocol permits), a concrete word-aligned address, and write data
// present exactly on stores. The shipped core's misaligned-split
// transactions violate this (see TestMisalignmentMismatch for the
// behavioural consequence); the repaired core traps instead, so every
// request it emits must be clean.
func TestDBusStrobeProtocol(t *testing.T) {
	for _, opc := range []struct {
		name   string
		opcode uint32
	}{
		{"loads", riscv.OpLoad},
		{"stores", riscv.OpStore},
	} {
		t.Run(opc.name, func(t *testing.T) {
			var reqs []rtl.DBusRequest
			cfg := matchedConfig()
			cfg.Filter = OnlyOpcode(opc.opcode)
			cfg.NewDUT = func(eng *core.Engine) DUT {
				return strobeRecorder{DUT: microrv32.New(eng, microrv32.FixedConfig()), reqs: &reqs}
			}
			rep := explore(t, cfg, core.Options{})
			if !rep.Exhausted {
				t.Fatalf("exploration truncated after %d paths", rep.Stats.Paths)
			}
			if len(reqs) == 0 {
				t.Fatalf("no DBus requests recorded across %d paths", rep.Stats.Paths)
			}
			seen := map[string]int{}
			for i, r := range reqs {
				if !r.WrStrobe.Valid() {
					t.Errorf("request %d: illegal strobe %04b", i, r.WrStrobe)
				}
				if r.Address == nil || !r.Address.IsConst() {
					t.Errorf("request %d: bus address is not concrete", i)
					continue
				}
				if addr := r.Address.ConstVal(); addr%4 != 0 {
					t.Errorf("request %d: address %#x not word-aligned", i, addr)
				}
				if r.Write && r.WriteData == nil {
					t.Errorf("request %d: store carries no write data", i)
				}
				if r.Write && r.WriteData != nil && r.WriteData.Width() != 32 {
					t.Errorf("request %d: write data width %d, want 32", i, r.WriteData.Width())
				}
				if !r.Write && r.WriteData != nil {
					t.Errorf("request %d: load carries write data", i)
				}
				seen[fmt.Sprintf("%04b", r.WrStrobe)]++
			}
			// Every aligned access width must actually occur: byte lanes 0-3,
			// both halfword lanes, and the full word.
			want := []string{"0001", "0010", "0100", "1000", "0011", "1100", "1111"}
			sort.Strings(want)
			var got []string
			for s := range seen {
				got = append(got, s)
			}
			sort.Strings(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("strobe patterns seen = %v, want all of %v", got, want)
			}
		})
	}
}
