package cosim

import (
	"errors"
	"io"
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/iss"
	"symriscv/internal/pipecore"
	"symriscv/internal/rvfi"
)

// deterministic is the slice of a Stats that the report contract pins
// independent of fork checkpointing, caching and scheduling.
type deterministic struct {
	Paths, Completed, Partial, Infeasible    int
	Instructions, Cycles                     uint64
	Branches, Concretizations, SolverQueries uint64
}

func detOf(s core.Stats) deterministic {
	return deterministic{
		Paths: s.Paths, Completed: s.Completed, Partial: s.Partial,
		Infeasible: s.Infeasible, Instructions: s.Instructions,
		Cycles: s.Cycles, Branches: s.Branches,
		Concretizations: s.Concretizations, SolverQueries: s.SolverQueries,
	}
}

// findingClass maps a finding error to its model-independent identity: the
// mismatch kind for voter findings, the full text otherwise.
func findingClass(t *testing.T, err error) string {
	t.Helper()
	var m *rvfi.Mismatch
	if errors.As(err, &m) {
		return m.Kind.String()
	}
	return err.Error()
}

// requireSameReport compares the deterministic report surface of a fork-on
// and a fork-off run of the same scenario: stats, findings (path index and
// error text) and test-vector path indices must be byte-equivalent.
func requireSameReport(t *testing.T, on, off *core.Report) {
	t.Helper()
	if d1, d2 := detOf(on.Stats), detOf(off.Stats); d1 != d2 {
		t.Fatalf("deterministic stats differ:\n fork on:  %+v\n fork off: %+v", d1, d2)
	}
	if on.Exhausted != off.Exhausted {
		t.Fatalf("exhausted differs: fork on %v, fork off %v", on.Exhausted, off.Exhausted)
	}
	if len(on.Findings) != len(off.Findings) {
		t.Fatalf("finding counts differ: fork on %d, fork off %d", len(on.Findings), len(off.Findings))
	}
	// Witness values are any-model and excluded from the contract: fork
	// changes which queries reach the SAT core, so the model-derived mismatch
	// detail may differ. Path index and mismatch class are deterministic.
	for i := range on.Findings {
		f1, f2 := on.Findings[i], off.Findings[i]
		if f1.Path != f2.Path || findingClass(t, f1.Err) != findingClass(t, f2.Err) {
			t.Fatalf("finding %d differs:\n fork on:  path=%d %v\n fork off: path=%d %v",
				i, f1.Path, f1.Err, f2.Path, f2.Err)
		}
	}
	if len(on.TestVectors) != len(off.TestVectors) {
		t.Fatalf("test-vector counts differ: fork on %d, fork off %d",
			len(on.TestVectors), len(off.TestVectors))
	}
	for i := range on.TestVectors {
		if on.TestVectors[i].Path != off.TestVectors[i].Path {
			t.Fatalf("test vector %d path differs: fork on %d, fork off %d",
				i, on.TestVectors[i].Path, off.TestVectors[i].Path)
		}
	}
}

// TestForkReplayEquivalence pins the central fork-checkpointing contract at
// the co-simulation level: for representative scenarios (both DUTs, both
// instruction limits, cache on and off, symbolic interrupts) the report is
// byte-equivalent with checkpoint-resume and with full prefix replay, and
// the fork-on leg actually resumes paths.
func TestForkReplayEquivalence(t *testing.T) {
	pipe := func() Config {
		return Config{
			ISS:    iss.FixedConfig(),
			Filter: BlockSystemInstructions,
			NewDUT: func(eng *core.Engine) DUT {
				return pipecore.New(eng, pipecore.Config{})
			},
		}
	}
	cases := []struct {
		name    string
		cfg     func() Config
		opts    core.Options
		limit   int
		noCache bool
	}{
		{name: "limit1", cfg: matchedConfig, limit: 1,
			opts: core.Options{MaxPaths: 120}},
		{name: "limit2", cfg: matchedConfig, limit: 2,
			opts: core.Options{MaxPaths: 120}},
		{name: "limit2-nocache", cfg: matchedConfig, limit: 2, noCache: true,
			opts: core.Options{MaxPaths: 80}},
		{name: "irq", cfg: func() Config {
			cfg := matchedConfig()
			cfg.SymbolicInterrupts = true
			return cfg
		}, limit: 1, opts: core.Options{MaxPaths: 80}},
		{name: "pipecore", cfg: pipe, limit: 1,
			opts: core.Options{MaxPaths: 100, GenerateTests: true}},
		// pipecore + symbolic interrupts exercises the pipeline snapshot's
		// interrupt-source rebinding on resume; the nocache twin pins the
		// same report with the query cache off.
		{name: "pipecore-irq", cfg: func() Config {
			cfg := pipe()
			cfg.SymbolicInterrupts = true
			cfg.StartPC = 0x100
			return cfg
		}, limit: 1, opts: core.Options{MaxPaths: 80}},
		{name: "pipecore-irq-nocache", cfg: func() Config {
			cfg := pipe()
			cfg.SymbolicInterrupts = true
			cfg.StartPC = 0x100
			return cfg
		}, limit: 1, noCache: true, opts: core.Options{MaxPaths: 80}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.InstrLimit = tc.limit
			run := RunFunc(cfg)
			leg := func(noFork bool) *core.Report {
				o := tc.opts
				o.MaxTime = 120 * time.Second
				o.NoQueryCache = tc.noCache
				o.NoFork = noFork
				return core.NewExplorer(run).Explore(o)
			}
			on, off := leg(false), leg(true)
			requireSameReport(t, on, off)
			if on.Stats.ForkResumes == 0 {
				t.Fatalf("fork-on leg resumed nothing: %+v", on.Stats)
			}
			// At limit 1 every fork lands in the first cycle, so the
			// checkpoint precedes all events and resumes save nothing; from
			// limit 2 up the resumed siblings must skip prefix events.
			if tc.limit >= 2 && on.Stats.ReplayEventsSaved == 0 {
				t.Fatalf("fork-on leg saved no replay events: %+v", on.Stats)
			}
			if off.Stats.ForkSnapshots != 0 || off.Stats.ForkResumes != 0 {
				t.Fatalf("fork-off leg has fork activity: %+v", off.Stats)
			}
			t.Logf("%s: paths=%d resumes=%d events-saved=%d",
				tc.name, on.Stats.Paths, on.Stats.ForkResumes, on.Stats.ReplayEventsSaved)
		})
	}
}

// TestInterruptCacheEquivalence pins the other toggle of the determinism
// contract for interrupt delivery: on both cores, the deterministic report
// surface of an interrupt-enabled run must be identical with the query cache
// on and off.
func TestInterruptCacheEquivalence(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{name: "microrv32", cfg: matchedConfig},
		{name: "pipecore", cfg: func() Config {
			return Config{
				ISS:     iss.FixedConfig(),
				Filter:  BlockSystemInstructions,
				DUTCore: CorePipecore,
			}
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cfg.SymbolicInterrupts = true
			cfg.StartPC = 0x100
			cfg.InstrLimit = 1
			run := RunFunc(cfg)
			leg := func(noCache bool) *core.Report {
				return core.NewExplorer(run).Explore(core.Options{
					MaxPaths: 60, MaxTime: 120 * time.Second, NoQueryCache: noCache,
				})
			}
			requireSameReport(t, leg(false), leg(true))
		})
	}
}

// TestForkTraceFallsBackToReplay: a per-cycle trace writer must disable
// checkpoint capture (a resumed sibling would silently omit pre-checkpoint
// cycles from its trace), falling back to full replay.
func TestForkTraceFallsBackToReplay(t *testing.T) {
	cfg := matchedConfig()
	cfg.Trace = io.Discard
	rep := core.NewExplorer(RunFunc(cfg)).Explore(core.Options{
		MaxPaths: 20, MaxTime: 60 * time.Second,
	})
	if rep.Stats.ForkSnapshots != 0 || rep.Stats.ForkResumes != 0 {
		t.Fatalf("trace mode must not checkpoint: %+v", rep.Stats)
	}
	if rep.Stats.Paths < 2 {
		t.Fatalf("suspiciously few paths: %+v", rep.Stats)
	}
}
