// Package cosim implements the symbolic co-simulation testbench of the
// paper (§IV): it instantiates the RTL core and the reference ISS over one
// engine, supplies both with identical symbolic instructions and data,
// installs the sliced symbolic registers, clocks the core while servicing
// its buses, steps the ISS at every retirement, and lets the rvfi checker
// search for satisfiable architectural differences.
package cosim

import (
	"fmt"
	"io"

	"symriscv/internal/core"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/obs"
	"symriscv/internal/pipecore"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// DUT is the device-under-test contract the testbench drives: a clocked,
// bus-accurate core model with an RVFI retirement port (the canonical
// contract lives in rvfi). internal/microrv32 (the MicroRV32 role) and
// internal/pipecore (a pipelined second core) both satisfy it.
type DUT = rvfi.Port

// CoreKind names a built-in device under test.
type CoreKind string

// Built-in cores.
const (
	// CoreMicroRV32 is the multi-cycle FSM core (the paper's case study).
	CoreMicroRV32 CoreKind = "microrv32"
	// CorePipecore is the fetch-overlapped pipelined core.
	CorePipecore CoreKind = "pipecore"
)

// ParseCoreKind maps a user-facing core name to its CoreKind. The empty
// string selects the default core (microrv32); "pipeline" is accepted as a
// legacy spelling of pipecore.
func ParseCoreKind(s string) (CoreKind, bool) {
	switch s {
	case "", "microrv32":
		return CoreMicroRV32, true
	case "pipecore", "pipeline":
		return CorePipecore, true
	}
	return "", false
}

func (k CoreKind) String() string {
	if k == "" {
		return string(CoreMicroRV32)
	}
	return string(k)
}

// Config describes one co-simulation scenario.
type Config struct {
	// ISS selects the reference-model behaviour (default: as-shipped VP).
	ISS iss.Config
	// DUTCore selects the built-in device under test (default: microrv32).
	// NewDUT, when set, overrides it.
	DUTCore CoreKind
	// Core selects the DUT behaviour (shipped bugs and/or injected faults)
	// of the MicroRV32 model; used when DUTCore selects it.
	Core microrv32.Config
	// Pipe selects the DUT behaviour (injected faults) of the pipelined
	// model; used when DUTCore is CorePipecore.
	Pipe pipecore.Config
	// NewDUT overrides the device under test (default: the DUTCore-selected
	// built-in core).
	NewDUT func(eng *core.Engine) DUT

	// NumSymbolicRegs is the size of the symbolic register slice (x1..xN
	// fully symbolic; x0 hardwired zero; the rest concrete zero). The paper
	// shows 2 suffices for RV32I (no instruction has more than two source
	// registers) while keeping the state space minimal (§IV-C.3).
	NumSymbolicRegs int

	// InstrLimit is the execution controller's retired-instruction bound
	// per path (the paper evaluates limits 1 and 2).
	InstrLimit int

	// CycleLimit bounds the total clock cycles per path; 0 derives a bound
	// from InstrLimit. Exceeding it aborts the path (partially explored).
	CycleLimit int

	// Filter constrains generated instruction words (klee_assume analogue).
	Filter InstrFilter

	// StartPC is the reset PC of both models.
	StartPC uint32

	// SymbolicInterrupts drives a symbolic machine-external-interrupt line
	// (one 1-bit input per instruction slot) into both models and makes the
	// initial mstatus and mie values symbolic shared state — the interrupt
	// extension of the methodology.
	SymbolicInterrupts bool

	// Pin fixes symbolic inputs (by MakeSymbolic name) to concrete values.
	// With every input pinned the co-simulation collapses to a single
	// concrete path — the test-vector replay mode (KLEE's ktest replay
	// analogue).
	Pin smt.MapEnv

	// Trace, when non-nil, receives a per-cycle log of bus activity and
	// retirements — the debugging view of a co-simulation run (most useful
	// together with Pin/Replay on a concrete counterexample).
	Trace io.Writer

	// ConcreteIMem, ConcreteMem and ConcreteRegs replace the symbolic
	// instruction memory, data-memory initialisation and register slice
	// with concrete values — the fully concrete execution mode used by the
	// fuzzing baseline (no symbolic state, single path, no solver traffic).
	ConcreteIMem func(addr uint32) uint32
	ConcreteMem  func(addr uint32) uint8
	ConcreteRegs map[int]uint32
}

// WithDefaults fills unset fields with the paper's defaults.
func (c Config) WithDefaults() Config {
	if c.NumSymbolicRegs == 0 {
		c.NumSymbolicRegs = 2
	}
	if c.InstrLimit == 0 {
		c.InstrLimit = 1
	}
	if c.CycleLimit == 0 {
		c.CycleLimit = 64 * c.InstrLimit
	}
	return c
}

// Run executes one co-simulation path under the engine: it is the RunFunc
// body handed to the explorer. A Mismatch is returned as the path error when
// the voter finds one.
func Run(eng *core.Engine, cfg Config) error {
	return newRunState(eng, cfg.WithDefaults()).loop()
}

// runState owns one co-simulation path's mutable testbench state. Bundling
// it in a struct (instead of Run's locals) is what makes the path
// checkpointable: a fork-point capture freezes every field and a resumed
// sibling rebuilds an equivalent runState bound to a fresh engine (see
// snapshot.go in this package).
type runState struct {
	eng      *core.Engine
	cfg      Config
	imem     *SymbolicIMem
	initPool *SharedInit
	dmemRTL  *SymbolicDMem
	dmemISS  *SymbolicDMem
	dut      DUT
	ref      *iss.ISS
	checker  *rvfi.Checker
	irq      *IrqLine

	ib      rtl.IBusResponse
	db      rtl.DBusResponse
	retired int
	cycles  int

	// captureFn, when non-nil, is handed to Engine.Checkpoint at the top of
	// every cycle (precomputed once: a method value allocates). Nil when the
	// DUT cannot snapshot or a per-cycle trace is being written (a resumed
	// trace would silently omit the pre-checkpoint cycles).
	captureFn func() core.ResumeFunc
}

func newRunState(eng *core.Engine, cfg Config) *runState {
	ctx := eng.Context()
	rs := &runState{eng: eng, cfg: cfg}

	filter := cfg.Filter
	if cfg.Pin != nil {
		filter = Filters(pinFilter(cfg.Pin), filter)
	}
	rs.imem = NewSymbolicIMem(eng, filter)
	rs.imem.concrete = cfg.ConcreteIMem
	rs.initPool = NewSharedInit(eng)
	rs.initPool.concrete = cfg.ConcreteMem
	if cfg.Pin != nil {
		rs.initPool.pin = cfg.Pin
	}
	rs.dmemRTL = NewSymbolicDMem(ctx, rs.initPool)
	rs.dmemISS = NewSymbolicDMem(ctx, rs.initPool)

	switch {
	case cfg.NewDUT != nil:
		rs.dut = cfg.NewDUT(eng)
	case cfg.DUTCore == CorePipecore:
		rs.dut = pipecore.New(eng, cfg.Pipe)
	default:
		rs.dut = microrv32.New(eng, cfg.Core)
	}
	rs.ref = iss.New(eng, rs.imem, rs.dmemISS, cfg.ISS)
	rs.dut.SetPC(cfg.StartPC)
	rs.ref.SetPC(cfg.StartPC)

	// Sliced symbolic registers: identical symbolic initial values on both
	// sides, installed on x1..xN.
	for i := 1; i <= cfg.NumSymbolicRegs; i++ {
		var v *smt.Term
		if cfg.ConcreteRegs != nil {
			v = ctx.BV(32, uint64(cfg.ConcreteRegs[i]))
		} else {
			name := fmt.Sprintf("reg_x%d", i)
			v = eng.MakeSymbolic(name, 32)
			if val, ok := cfg.Pin[name]; ok {
				eng.Assume(ctx.Eq(v, ctx.BV(32, val)))
			}
		}
		rs.dut.SetReg(i, v)
		rs.ref.SetReg(i, v)
	}

	if cfg.SymbolicInterrupts {
		rs.irq = &IrqLine{eng: eng, pin: cfg.Pin}
		if aware, ok := rs.dut.(IrqAware); ok {
			aware.SetIrqSource(rs.irq)
		}
		rs.ref.SetIrqSource(rs.irq)

		mst := makePinned(eng, cfg.Pin, "csr_mstatus", 32)
		mie := makePinned(eng, cfg.Pin, "csr_mie", 32)
		if csrInit, ok := rs.dut.(CSRInitializer); ok {
			csrInit.SetCSR(riscv.CSRMStatus, mst)
			csrInit.SetCSR(riscv.CSRMIe, mie)
		}
		rs.ref.SetCSR(riscv.CSRMStatus, mst)
		rs.ref.SetCSR(riscv.CSRMIe, mie)
	}

	rs.checker = rvfi.NewChecker(eng)
	if _, ok := rs.dut.(DUTSnapshotter); ok && cfg.Trace == nil {
		rs.captureFn = rs.capture
	}
	return rs
}

// loop clocks the core until the retired-instruction limit, servicing buses
// and stepping the ISS at every retirement. It is entered both by fresh runs
// (from cycle 0) and by resumed checkpoints (mid-path), so every iteration
// must depend only on runState fields.
func (rs *runState) loop() error {
	eng, cfg := rs.eng, rs.cfg
	h := eng.Obs()

	for ; rs.retired < cfg.InstrLimit; rs.cycles++ {
		if rs.cycles >= cfg.CycleLimit {
			eng.AbortLimitReached(fmt.Sprintf("cycle limit %d reached", cfg.CycleLimit))
		}
		if rs.captureFn != nil {
			// Quiescent point: no bus transaction or retirement is mid-flight
			// at the top of a cycle, so the whole testbench state is capturable.
			eng.Checkpoint(rs.captureFn)
		}
		cycles := rs.cycles
		sp := h.Start(obs.PhaseRTLStep)
		ibReq, dbReq := rs.dut.Step(rs.ib, rs.db)
		sp.End()

		// Service the buses; responses arrive at the next clock edge.
		rs.ib = rtl.IBusResponse{}
		rs.db = rtl.DBusResponse{}
		if ibReq.FetchEnable {
			if !ibReq.Address.IsConst() {
				panic("cosim: IBus address must be concrete on each path")
			}
			addr := uint32(ibReq.Address.ConstVal())
			rs.ib = rtl.IBusResponse{InstructionReady: true, Instruction: rs.imem.Fetch(addr)}
			if cfg.Trace != nil {
				fmt.Fprintf(cfg.Trace, "cycle %3d  ibus fetch  addr=0x%08x\n", cycles, addr)
			}
		}
		if dbReq.Enable {
			rs.db = rs.dmemRTL.ServeDBus(dbReq)
			if cfg.Trace != nil {
				dir := "load "
				if dbReq.Write {
					dir = "store"
				}
				fmt.Fprintf(cfg.Trace, "cycle %3d  dbus %s  addr=%s strobe=%04b\n",
					cycles, dir, termStr(dbReq.Address), dbReq.WrStrobe)
			}
		}

		if ret := rs.dut.Retirement(); ret.Valid {
			if cfg.Trace != nil {
				fmt.Fprintf(cfg.Trace, "cycle %3d  retire #%d  pc=%s insn=%s next=%s trap=%v\n",
					cycles, ret.Order, termStr(ret.PCRData), termStr(ret.Insn), termStr(ret.PCWData), ret.Trap)
			}
			issSp := h.Start(obs.PhaseISSStep)
			res := rs.ref.Step()
			issSp.End()
			if m := rs.checker.Compare(ret, res); m != nil {
				if cfg.Trace != nil {
					fmt.Fprintf(cfg.Trace, "cycle %3d  VOTER MISMATCH: %v\n", cycles, m)
				}
				return m
			}
			rs.retired++
		}
	}
	return nil
}

// termStr renders a term compactly for trace output: hex for constants, the
// expression otherwise.
func termStr(t *smt.Term) string {
	if t == nil {
		return "-"
	}
	if t.IsConst() {
		return fmt.Sprintf("0x%08x", t.ConstVal())
	}
	return t.String()
}

// RunFunc binds a Config into the explorer's RunFunc shape.
func RunFunc(cfg Config) core.RunFunc {
	return func(eng *core.Engine) error { return Run(eng, cfg) }
}

// IrqAware is satisfied by DUTs that model the external interrupt line.
type IrqAware interface {
	SetIrqSource(src rvfi.IrqSource)
}

// CSRInitializer is satisfied by DUTs whose CSR storage the testbench can
// pre-initialise (symbolic machine state).
type CSRInitializer interface {
	SetCSR(addr uint16, v *smt.Term)
}

// IrqLine is the symbolic external-interrupt input: one cached 1-bit
// variable per instruction slot, shared by both models.
type IrqLine struct {
	eng  *core.Engine
	pin  smt.MapEnv
	vars map[uint64]*smt.Term
}

// Line returns the (cached) interrupt-line value for an instruction slot.
func (l *IrqLine) Line(slot uint64) *smt.Term {
	if l.vars == nil {
		l.vars = make(map[uint64]*smt.Term)
	}
	if v, ok := l.vars[slot]; ok {
		return v
	}
	v := makePinned(l.eng, l.pin, fmt.Sprintf("irq_%d", slot), 1)
	l.vars[slot] = v
	return v
}

// makePinned creates a named symbolic input, honouring replay pins.
func makePinned(eng *core.Engine, pin smt.MapEnv, name string, width int) *smt.Term {
	v := eng.MakeSymbolic(name, width)
	if val, ok := pin[name]; ok {
		ctx := eng.Context()
		eng.Assume(ctx.Eq(v, ctx.BV(width, val)))
	}
	return v
}

// pinFilter constrains freshly generated instruction words to their pinned
// values, matching by the symbolic variable name the instruction memory
// assigns.
func pinFilter(pin smt.MapEnv) InstrFilter {
	return func(eng *core.Engine, word *smt.Term) {
		if val, ok := pin[word.Name()]; ok {
			ctx := eng.Context()
			eng.Assume(ctx.Eq(word, ctx.BV(32, val)))
		}
	}
}

// Replay re-executes the co-simulation with every symbolic input pinned to
// the given test vector (a Finding's Inputs or a TestVector's Inputs). It
// returns the checker's mismatch, or nil if the vector reproduces no
// difference. Inputs absent from the vector default to zero via Pin
// semantics only when they were recorded; unrecorded inputs stay free, so a
// complete vector yields exactly one path.
func Replay(cfg Config, vector smt.MapEnv) (*rvfi.Mismatch, error) {
	cfg.Pin = vector
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{StopOnFirstFinding: true, MaxPaths: 16})
	if len(rep.Findings) == 0 {
		return nil, nil
	}
	if m, ok := rep.Findings[0].Err.(*rvfi.Mismatch); ok {
		return m, nil
	}
	return nil, rep.Findings[0].Err
}
