package cosim

import (
	"fmt"

	"symriscv/internal/core"
	"symriscv/internal/cow"
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

// SharedInit is the common pool of initial symbolic data-memory bytes. The
// RTL-side and ISS-side memories are separate (stores do not cross), but
// they draw their initial contents from this pool so both sides start
// identical — preventing false mismatches (§IV-C.2). The pool is a
// copy-on-write map so fork-point checkpoints snapshot it in O(1).
type SharedInit struct {
	eng      *core.Engine
	bytes    *cow.Map[uint32, *smt.Term]
	pin      smt.MapEnv              // optional replay pins, keyed by variable name
	concrete func(addr uint32) uint8 // fuzzing mode: concrete initial bytes
}

// NewSharedInit returns an empty initial-byte pool.
func NewSharedInit(eng *core.Engine) *SharedInit {
	return &SharedInit{eng: eng, bytes: cow.New[uint32, *smt.Term]()}
}

// snapshot freezes the byte pool; resumeSharedInit rebuilds the pool over
// the frozen layer for a resumed sibling path.
func (s *SharedInit) snapshot() *cow.Layer[uint32, *smt.Term] { return s.bytes.Snapshot() }

func resumeSharedInit(eng *core.Engine, frozen *cow.Layer[uint32, *smt.Term], pin smt.MapEnv, concrete func(uint32) uint8) *SharedInit {
	return &SharedInit{eng: eng, bytes: cow.Resume(frozen), pin: pin, concrete: concrete}
}

func (s *SharedInit) byteAt(addr uint32) *smt.Term {
	if b, ok := s.bytes.Get(addr); ok {
		return b
	}
	if s.concrete != nil {
		b := s.eng.Context().BV(8, uint64(s.concrete(addr)))
		s.bytes.Set(addr, b)
		return b
	}
	name := fmt.Sprintf("dmem_%08x", addr)
	b := s.eng.MakeSymbolic(name, 8)
	if val, ok := s.pin[name]; ok {
		ctx := s.eng.Context()
		s.eng.Assume(ctx.Eq(b, ctx.BV(8, val)))
	}
	s.bytes.Set(addr, b)
	return b
}

// SymbolicDMem is one side's symbolic data memory: byte-granular, lazily
// initialised from the shared pool, with a private copy-on-write overlay
// (snapshotted in O(1) at fork-point checkpoints).
type SymbolicDMem struct {
	ctx     *smt.Context
	init    *SharedInit
	overlay *cow.Map[uint32, *smt.Term]

	// Write log for diagnostics/tests: addresses stored to, in order.
	writes []uint32
}

// NewSymbolicDMem returns a memory view over the shared initial bytes.
func NewSymbolicDMem(ctx *smt.Context, init *SharedInit) *SymbolicDMem {
	return &SymbolicDMem{ctx: ctx, init: init, overlay: cow.New[uint32, *smt.Term]()}
}

// snapshot freezes the write overlay and caps the write log (appends by
// resumed siblings reallocate); resumeDMem rebuilds the view over a restored
// shared pool.
func (m *SymbolicDMem) snapshot() (*cow.Layer[uint32, *smt.Term], []uint32) {
	return m.overlay.Snapshot(), m.writes[:len(m.writes):len(m.writes)]
}

func resumeDMem(ctx *smt.Context, init *SharedInit, overlay *cow.Layer[uint32, *smt.Term], writes []uint32) *SymbolicDMem {
	return &SymbolicDMem{ctx: ctx, init: init, overlay: cow.Resume(overlay), writes: writes}
}

func (m *SymbolicDMem) byteAt(addr uint32) *smt.Term {
	if b, ok := m.overlay.Get(addr); ok {
		return b
	}
	return m.init.byteAt(addr)
}

func (m *SymbolicDMem) setByte(addr uint32, b *smt.Term) {
	m.overlay.Set(addr, b)
	m.writes = append(m.writes, addr)
}

// LoadByte returns the 8-bit raw value at addr.
func (m *SymbolicDMem) LoadByte(addr uint32) *smt.Term { return m.byteAt(addr) }

// LoadHalf returns the 16-bit raw value at addr (little endian).
func (m *SymbolicDMem) LoadHalf(addr uint32) *smt.Term {
	return m.ctx.Concat(m.byteAt(addr+1), m.byteAt(addr))
}

// LoadWord returns the 32-bit value at addr (little endian).
func (m *SymbolicDMem) LoadWord(addr uint32) *smt.Term {
	lo := m.ctx.Concat(m.byteAt(addr+1), m.byteAt(addr))
	hi := m.ctx.Concat(m.byteAt(addr+3), m.byteAt(addr+2))
	return m.ctx.Concat(hi, lo)
}

// StoreByte writes an 8-bit value at addr.
func (m *SymbolicDMem) StoreByte(addr uint32, v *smt.Term) { m.setByte(addr, v) }

// StoreHalf writes a 16-bit value at addr (little endian).
func (m *SymbolicDMem) StoreHalf(addr uint32, v *smt.Term) {
	m.setByte(addr, m.ctx.Extract(v, 7, 0))
	m.setByte(addr+1, m.ctx.Extract(v, 15, 8))
}

// StoreWord writes a 32-bit value at addr (little endian).
func (m *SymbolicDMem) StoreWord(addr uint32, v *smt.Term) {
	for i := uint32(0); i < 4; i++ {
		m.setByte(addr+i, m.ctx.Extract(v, int(8*i+7), int(8*i)))
	}
}

// WriteCount returns the number of byte stores performed (diagnostics).
func (m *SymbolicDMem) WriteCount() int { return len(m.writes) }

// ServeDBus services one strobe-based bus request against this memory (the
// co-simulation main's DBus redirection, §IV-C.2). Read requests return the
// full aligned bus word; the core extracts and extends its lanes itself.
func (m *SymbolicDMem) ServeDBus(req rtl.DBusRequest) rtl.DBusResponse {
	if !req.Enable {
		return rtl.DBusResponse{}
	}
	if !req.Address.IsConst() {
		panic("cosim: DBus address must be concrete on each path")
	}
	base := uint32(req.Address.ConstVal()) &^ 3
	if req.Write {
		for lane := uint32(0); lane < 4; lane++ {
			if req.WrStrobe>>lane&1 == 1 {
				m.setByte(base+lane, m.ctx.Extract(req.WriteData, int(8*lane+7), int(8*lane)))
			}
		}
		return rtl.DBusResponse{DataReady: true, ReadData: m.ctx.BV(32, 0)}
	}
	return rtl.DBusResponse{DataReady: true, ReadData: m.LoadWord(base)}
}
