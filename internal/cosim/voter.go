package cosim

import (
	"fmt"

	"symriscv/internal/core"
	"symriscv/internal/iss"
	"symriscv/internal/obs"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// MismatchKind classifies what the voter saw disagree.
type MismatchKind uint8

// Mismatch kinds.
const (
	TrapMismatch  MismatchKind = iota // one side trapped, the other did not
	CauseMismatch                     // both trapped with different causes
	PCMismatch                        // next PC differs
	RdMismatch                        // destination register index or value differs
	MemMismatch                       // store effect (presence, address, size or data) differs
)

func (k MismatchKind) String() string {
	switch k {
	case TrapMismatch:
		return "trap-mismatch"
	case CauseMismatch:
		return "cause-mismatch"
	case PCMismatch:
		return "pc-mismatch"
	case RdMismatch:
		return "rd-mismatch"
	case MemMismatch:
		return "mem-mismatch"
	}
	return "mismatch"
}

// Mismatch is the voter's finding: a satisfiable functional difference
// between the RTL core and the reference ISS, with a concrete witness.
// It implements core.Witnesser so the explorer attaches the counterexample.
type Mismatch struct {
	Kind   MismatchKind
	Detail string

	// Witness assigns every symbolic input; the fields below are the
	// concrete replay of the step under that witness.
	Insn    uint32 // instruction word
	Disasm  string
	PC      uint32
	RTLNext uint32
	ISSNext uint32
	RTLTrap bool
	ISSTrap bool
	RdAddr  int
	RTLRd   uint32
	ISSRd   uint32

	Env smt.MapEnv
}

// Error implements error.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("%s at pc=%#x insn=%#08x (%s): %s", m.Kind, m.PC, m.Insn, m.Disasm, m.Detail)
}

// Witness implements core.Witnesser.
func (m *Mismatch) Witness() smt.MapEnv { return m.Env }

// Voter compares each RTL retirement against the ISS step result, raising a
// Mismatch when any architectural difference is satisfiable under the path
// constraints (§IV-D).
type Voter struct {
	eng *core.Engine
	ctx *smt.Context
}

// NewVoter returns a voter bound to the engine.
func NewVoter(eng *core.Engine) *Voter {
	return &Voter{eng: eng, ctx: eng.Context()}
}

// Compare checks one retirement pair. A nil return means no observable
// difference is satisfiable on this path.
func (v *Voter) Compare(ret *rvfi.Retirement, res iss.Result) *Mismatch {
	defer v.eng.Obs().Start(obs.PhaseVoterCompare).End()
	ctx := v.ctx

	// Trap behaviour is concrete on each path.
	if ret.Trap != res.Trap {
		return v.finish(ret, res, TrapMismatch,
			fmt.Sprintf("RTL trap=%v (cause %s), ISS trap=%v (cause %s)",
				ret.Trap, causeStr(ret), res.Trap, causeStrISS(res)), nil)
	}
	if ret.Trap && res.Trap {
		if ret.Cause != res.Cause {
			return v.finish(ret, res, CauseMismatch,
				fmt.Sprintf("RTL cause=%s, ISS cause=%s",
					riscv.ExcName(ret.Cause), riscv.ExcName(res.Cause)), nil)
		}
		// Both trapped identically: compare the trap target PC below.
	}

	// Old and next PC: hash-consing makes identical expressions
	// pointer-equal, so the solver is only consulted for syntactically
	// distinct values. The old-PC comparison catches control-flow divergence
	// that happened *between* retirements (e.g. one side taking an
	// interrupt).
	if ret.PCRData != res.PC {
		if env, ok := v.eng.FindWitness(ctx.Ne(ret.PCRData, res.PC)); ok {
			return v.finish(ret, res, PCMismatch, "executed-instruction PCs can differ", env)
		}
	}
	if ret.PCWData != res.NextPC {
		if env, ok := v.eng.FindWitness(ctx.Ne(ret.PCWData, res.NextPC)); ok {
			return v.finish(ret, res, PCMismatch, "next-PC values can differ", env)
		}
	}

	if ret.RdAddr != res.RdAddr {
		return v.finish(ret, res, RdMismatch,
			fmt.Sprintf("RTL writes x%d, ISS writes x%d", ret.RdAddr, res.RdAddr), nil)
	}
	if ret.RdAddr != 0 && ret.RdWData != res.RdValue {
		if env, ok := v.eng.FindWitness(ctx.Ne(ret.RdWData, res.RdValue)); ok {
			return v.finish(ret, res, RdMismatch,
				fmt.Sprintf("x%d values can differ", ret.RdAddr), env)
		}
	}

	// Memory-write effects (architectural store address, size and data).
	if !ret.Trap {
		rtlWrote := ret.MemWMask != 0
		if rtlWrote != res.MemWrite {
			return v.finish(ret, res, MemMismatch,
				fmt.Sprintf("RTL store=%v, ISS store=%v", rtlWrote, res.MemWrite), nil)
		}
		if rtlWrote {
			if got, want := rtl.Strobe(ret.MemWMask).Bytes(), res.MemWBytes; got != want {
				return v.finish(ret, res, MemMismatch,
					fmt.Sprintf("store width %d bytes vs %d bytes", got, want), nil)
			}
			if ret.MemAddr != res.MemAddr {
				if env, ok := v.eng.FindWitness(ctx.Ne(ret.MemAddr, res.MemAddr)); ok {
					return v.finish(ret, res, MemMismatch, "store addresses can differ", env)
				}
			}
			if ret.MemWData != nil && res.MemWData != nil && ret.MemWData != res.MemWData {
				if env, ok := v.eng.FindWitness(ctx.Ne(ret.MemWData, res.MemWData)); ok {
					return v.finish(ret, res, MemMismatch, "store data can differ", env)
				}
			}
		}
	}
	return nil
}

func causeStr(ret *rvfi.Retirement) string {
	if !ret.Trap {
		return "-"
	}
	return riscv.ExcName(ret.Cause)
}

func causeStrISS(res iss.Result) string {
	if !res.Trap {
		return "-"
	}
	return riscv.ExcName(res.Cause)
}

// finish materialises a witness (if not already provided by the deciding
// query) and evaluates both sides' behaviour under it for the report.
func (v *Voter) finish(ret *rvfi.Retirement, res iss.Result, kind MismatchKind, detail string, env smt.MapEnv) *Mismatch {
	if env == nil {
		var ok bool
		env, ok = v.eng.FindWitness(v.ctx.True())
		if !ok {
			// Unreachable: the path constraints are satisfiable by invariant.
			env = smt.MapEnv{}
		}
	}
	m := &Mismatch{
		Kind:    kind,
		Detail:  detail,
		RTLTrap: ret.Trap,
		ISSTrap: res.Trap,
		RdAddr:  ret.RdAddr,
		Env:     env,
	}
	m.Insn = uint32(evalOr0(ret.Insn, env))
	m.Disasm = riscv.Disasm(m.Insn)
	m.PC = uint32(evalOr0(ret.PCRData, env))
	m.RTLNext = uint32(evalOr0(ret.PCWData, env))
	m.ISSNext = uint32(evalOr0(res.NextPC, env))
	if ret.RdAddr != 0 {
		m.RTLRd = uint32(evalOr0(ret.RdWData, env))
	}
	if res.RdAddr != 0 {
		m.ISSRd = uint32(evalOr0(res.RdValue, env))
	}
	return m
}

func evalOr0(t *smt.Term, env smt.MapEnv) uint64 {
	if t == nil {
		return 0
	}
	v, err := smt.Eval(t, env)
	if err != nil {
		return 0
	}
	return v
}
