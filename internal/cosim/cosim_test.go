package cosim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// matchedConfig is the clean Table II baseline: fixed core, fixed ISS, both
// trapping on misalignment; SYSTEM instructions blocked.
func matchedConfig() Config {
	return Config{
		ISS:    iss.FixedConfig(),
		Core:   microrv32.FixedConfig(),
		Filter: BlockSystemInstructions,
	}
}

func explore(t *testing.T, cfg Config, opts core.Options) *core.Report {
	t.Helper()
	x := core.NewExplorer(RunFunc(cfg))
	return x.Explore(opts)
}

// TestDirectedConcreteAgreement preloads concrete instructions and checks
// that the matched models agree, path by path, on a representative program.
func TestDirectedConcreteAgreement(t *testing.T) {
	words := []uint32{
		riscv.ADDI(5, 1, 123),
		riscv.ADD(6, 1, 2),
		riscv.XOR(7, 1, 2),
		riscv.SLLI(8, 2, 7),
		riscv.LUI(9, 0xabcd1000),
		riscv.AUIPC(10, 0x1000),
		riscv.SLT(11, 1, 2),
		riscv.SLTU(12, 1, 2),
		riscv.SRA(13, 1, 2),
		riscv.JAL(1, 16),
		riscv.JALR(3, 1, 8),
		riscv.BEQ(1, 2, 16),
		riscv.BLTU(1, 2, -16),
		riscv.FENCE(),
	}
	for _, w := range words {
		w := w
		cfg := matchedConfig()
		cfg.InstrLimit = 1
		x := core.NewExplorer(func(eng *core.Engine) error {
			return runPreloaded(eng, cfg, w)
		})
		rep := x.Explore(core.Options{MaxTime: 30 * time.Second})
		if len(rep.Findings) != 0 {
			t.Errorf("%s: unexpected mismatch: %v", riscv.Disasm(w), rep.Findings[0].Err)
		}
		if rep.Stats.Completed == 0 {
			t.Errorf("%s: no completed paths (%v)", riscv.Disasm(w), rep.Stats)
		}
	}
}

// runPreloaded mirrors Run but pins the first instruction to a concrete word.
func runPreloaded(eng *core.Engine, cfg Config, word uint32) error {
	cfg.Filter = Filters(cfg.Filter, OnlyMasked(0xffffffff, word))
	return Run(eng, cfg)
}

// TestMatchedModelsAgreeOneInstruction explores the full RV32I space (SYSTEM
// blocked) at instruction limit 1 on the matched configuration: the voter
// must find nothing.
func TestMatchedModelsAgreeOneInstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space exploration")
	}
	rep := explore(t, matchedConfig(), core.Options{MaxTime: 120 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("false mismatch: %v", rep.Findings[0].Err)
	}
	if rep.Stats.Completed < 20 {
		t.Fatalf("suspiciously few completed paths: %v", rep.Stats)
	}
	t.Logf("matched exploration: %v (exhausted=%v)", rep.Stats, rep.Exhausted)
}

// TestFaultE6Found injects the BNE->BEQ fault and requires the explorer to
// produce a mismatch whose witness is a BNE instruction.
func TestFaultE6Found(t *testing.T) {
	cfg := matchedConfig()
	cfg.Core.Faults = faults.Only(faults.E6)
	rep := explore(t, cfg, core.Options{
		StopOnFirstFinding: true,
		MaxTime:            120 * time.Second,
	})
	if len(rep.Findings) != 1 {
		t.Fatalf("E6 not found: %v", rep.Stats)
	}
	var m *rvfi.Mismatch
	if !errors.As(rep.Findings[0].Err, &m) {
		t.Fatalf("finding is not a Mismatch: %v", rep.Findings[0].Err)
	}
	if riscv.Decode(m.Insn).Mn != riscv.InsBNE {
		t.Fatalf("witness %s is not a BNE", m.Disasm)
	}
	if m.Kind != rvfi.PCMismatch {
		t.Fatalf("kind = %v, want pc-mismatch", m.Kind)
	}
	t.Logf("E6 witness: %s (pc rtl=%#x iss=%#x) after %v", m.Disasm, m.RTLNext, m.ISSNext, rep.Stats)
}

// TestFaultE3Found injects the ADDI stuck-at-0 fault.
func TestFaultE3Found(t *testing.T) {
	cfg := matchedConfig()
	cfg.Core.Faults = faults.Only(faults.E3)
	rep := explore(t, cfg, core.Options{
		StopOnFirstFinding: true,
		MaxTime:            120 * time.Second,
	})
	if len(rep.Findings) != 1 {
		t.Fatalf("E3 not found: %v", rep.Stats)
	}
	var m *rvfi.Mismatch
	errors.As(rep.Findings[0].Err, &m)
	if riscv.Decode(m.Insn).Mn != riscv.InsADDI {
		t.Fatalf("witness %s is not an ADDI", m.Disasm)
	}
	if m.RTLRd&1 != 0 || m.ISSRd&1 != 1 {
		t.Fatalf("witness does not demonstrate the stuck bit: rtl=%#x iss=%#x", m.RTLRd, m.ISSRd)
	}
}

// TestMisalignmentMismatch reproduces the Table I LW row: shipped core
// supports misaligned loads, VP ISS traps.
func TestMisalignmentMismatch(t *testing.T) {
	cfg := Config{
		ISS:    iss.VPConfig(),
		Core:   microrv32.ShippedConfig(),
		Filter: OnlyMasked(0x707f, uint32(riscv.F3LW)<<12|riscv.OpLoad), // only LW
	}
	rep := explore(t, cfg, core.Options{
		StopOnFirstFinding: true,
		MaxTime:            120 * time.Second,
	})
	if len(rep.Findings) != 1 {
		t.Fatalf("misalignment mismatch not found: %v", rep.Stats)
	}
	var m *rvfi.Mismatch
	errors.As(rep.Findings[0].Err, &m)
	if m.Kind != rvfi.TrapMismatch {
		t.Fatalf("kind = %v, want trap-mismatch (%s)", m.Kind, m.Detail)
	}
	if !m.ISSTrap || m.RTLTrap {
		t.Fatalf("expected ISS-only trap, got rtl=%v iss=%v", m.RTLTrap, m.ISSTrap)
	}
	in := riscv.Decode(m.Insn)
	if in.Mn != riscv.InsLW {
		t.Fatalf("witness %s is not LW", m.Disasm)
	}
}

// TestWFIMismatch reproduces the Table I WFI row: shipped core traps on WFI,
// ISS treats it as a NOP.
func TestWFIMismatch(t *testing.T) {
	cfg := Config{
		ISS:    iss.VPConfig(),
		Core:   microrv32.ShippedConfig(),
		Filter: OnlyMasked(0xffffffff, riscv.WFI()),
	}
	rep := explore(t, cfg, core.Options{StopOnFirstFinding: true, MaxTime: 60 * time.Second})
	if len(rep.Findings) != 1 {
		t.Fatalf("WFI error not found: %v", rep.Stats)
	}
	var m *rvfi.Mismatch
	errors.As(rep.Findings[0].Err, &m)
	if m.Kind != rvfi.TrapMismatch || !m.RTLTrap || m.ISSTrap {
		t.Fatalf("expected RTL-only trap, got %v (rtl=%v iss=%v)", m.Kind, m.RTLTrap, m.ISSTrap)
	}
}

// TestReplayReproducesFinding is the ktest-replay round trip: the concrete
// witness of a hunt, pinned back into the co-simulation, must reproduce the
// same mismatch on a single path.
func TestReplayReproducesFinding(t *testing.T) {
	for _, f := range []faults.Fault{faults.E3, faults.E6, faults.E8} {
		cfg := matchedConfig()
		cfg.Core.Faults = faults.Only(f)
		rep := explore(t, cfg, core.Options{StopOnFirstFinding: true, MaxTime: 60 * time.Second})
		if len(rep.Findings) != 1 {
			t.Fatalf("%s: hunt found nothing", f)
		}
		var m *rvfi.Mismatch
		if !errors.As(rep.Findings[0].Err, &m) {
			t.Fatalf("%s: not a mismatch", f)
		}

		got, err := Replay(cfg, m.Env)
		if err != nil {
			t.Fatalf("%s: replay error: %v", f, err)
		}
		if got == nil {
			t.Fatalf("%s: replay reproduced no mismatch", f)
		}
		if got.Kind != m.Kind || got.Insn != m.Insn {
			t.Fatalf("%s: replay diverged: %v/%#x vs %v/%#x", f, got.Kind, got.Insn, m.Kind, m.Insn)
		}
	}
}

// TestReplayCleanVectorFindsNothing pins a completed path's test vector on
// the clean baseline: no mismatch may appear.
func TestReplayCleanVectorFindsNothing(t *testing.T) {
	cfg := matchedConfig()
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{MaxPaths: 10, GenerateTests: true})
	if len(rep.TestVectors) == 0 {
		t.Fatal("no test vectors generated")
	}
	m, err := Replay(cfg, rep.TestVectors[0].Inputs)
	if err != nil {
		t.Fatalf("replay error: %v", err)
	}
	if m != nil {
		t.Fatalf("clean vector reproduced a mismatch: %v", m)
	}
}

// TestCycleLimitAbortsPath drives the execution controller's cycle bound: a
// tiny limit must abort every path as partially explored, with no findings.
func TestCycleLimitAbortsPath(t *testing.T) {
	cfg := matchedConfig()
	cfg.CycleLimit = 2 // an instruction needs >= 3 cycles
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{MaxPaths: 3})
	if rep.Stats.Completed != 0 || len(rep.Findings) != 0 {
		t.Fatalf("cycle-limited run: %v findings=%d", rep.Stats, len(rep.Findings))
	}
	if rep.Stats.Partial == 0 {
		t.Fatal("expected partially explored paths")
	}
}

// TestTraceOutput checks the debugging trace contains the expected phases.
func TestTraceOutput(t *testing.T) {
	var buf strings.Builder
	cfg := matchedConfig()
	cfg.Trace = &buf
	cfg.Filter = Filters(cfg.Filter, OnlyMasked(0xffffffff, riscv.LW(1, 0, 100)))
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{MaxPaths: 1})
	if rep.Stats.Paths != 1 {
		t.Fatalf("trace run: %v", rep.Stats)
	}
	out := buf.String()
	for _, want := range []string{"ibus fetch", "dbus load", "retire #1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

// TestStartPCPropagates verifies a non-zero reset PC reaches both models.
func TestStartPCPropagates(t *testing.T) {
	cfg := matchedConfig()
	cfg.StartPC = 0x1000
	var buf strings.Builder
	cfg.Trace = &buf
	x := core.NewExplorer(RunFunc(cfg))
	x.Explore(core.Options{MaxPaths: 1})
	if !strings.Contains(buf.String(), "addr=0x00001000") {
		t.Errorf("fetch did not start at StartPC:\n%s", buf.String())
	}
}

// TestTrapBoundaryAgreement crosses a trap at instruction limit 2: both
// models must vector to mtvec (reset value 0) and agree on the instruction
// executed there.
func TestTrapBoundaryAgreement(t *testing.T) {
	cfg := matchedConfig()
	cfg.InstrLimit = 2
	// Pin instruction 0 to ECALL; instruction 1 is then fetched from the
	// trap vector (0), i.e. the same cached word — a second ECALL. Both
	// models must loop through the vector identically.
	cfg.Filter = Filters(cfg.Filter, OnlyMasked(0xffffffff, riscv.ECALL()))
	// The Table II filter blocks SYSTEM; drop it for this directed test.
	cfg.Filter = OnlyMasked(0xffffffff, riscv.ECALL())
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 30 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("trap boundary mismatch: %v", rep.Findings[0].Err)
	}
	if rep.Stats.Completed == 0 {
		t.Fatalf("no completed paths: %v", rep.Stats)
	}
}

// TestMretAfterTrapAgreement: ecall then mret must return both models to the
// faulting PC (mepc). The program starts at PC 8 with ECALL there, so the
// trap-vector fetch at 0 is a different cached word, constrained to MRET.
func TestMretAfterTrapAgreement(t *testing.T) {
	cfg2 := matchedConfig()
	cfg2.InstrLimit = 2
	cfg2.StartPC = 8
	cfg2.Filter = func(e *core.Engine, w *smt.Term) {
		ctx := e.Context()
		if w.Name() == "imem_00000008" {
			e.Assume(ctx.Eq(w, ctx.BV(32, uint64(riscv.ECALL()))))
		}
		if w.Name() == "imem_00000000" {
			e.Assume(ctx.Eq(w, ctx.BV(32, uint64(riscv.MRET()))))
		}
	}
	x2 := core.NewExplorer(RunFunc(cfg2))
	rep := x2.Explore(core.Options{MaxTime: 30 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("ecall/mret mismatch: %v", rep.Findings[0].Err)
	}
	if rep.Stats.Completed == 0 {
		t.Fatal("no completed paths")
	}
}

// interruptConfig is the matched scenario with the symbolic interrupt line
// and symbolic initial mstatus/mie enabled.
func interruptConfig() Config {
	cfg := matchedConfig()
	cfg.SymbolicInterrupts = true
	cfg.StartPC = 0x100 // keep the trap vector (0) distinct from the program
	return cfg
}

// TestSymbolicInterruptsMatched: with identical interrupt logic on both
// sides, the symbolic interrupt line must not produce any mismatch, and the
// exploration must cover both the taken and not-taken interrupt paths.
func TestSymbolicInterruptsMatched(t *testing.T) {
	cfg := interruptConfig()
	cfg.Filter = Filters(cfg.Filter, OnlyOpcode(riscv.OpImm))
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 120 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("interrupt mismatch on matched models: %v", rep.Findings[0].Err)
	}
	if !rep.Exhausted {
		t.Fatalf("not exhausted: %v", rep.Stats)
	}
	// The engine must have forked on the take-condition: with symbolic
	// mstatus/mie/irq both outcomes are feasible, roughly doubling the
	// OP-IMM path count.
	base := matchedConfig()
	base.Filter = Filters(base.Filter, OnlyOpcode(riscv.OpImm))
	baseRep := core.NewExplorer(RunFunc(base)).Explore(core.Options{MaxTime: 120 * time.Second})
	if rep.Stats.Completed < baseRep.Stats.Completed*3/2 {
		t.Fatalf("interrupt line did not fork: %d paths vs %d without interrupts",
			rep.Stats.Completed, baseRep.Stats.Completed)
	}
}

// TestInterruptMIEBugFound injects the interrupt-logic fault (MIE gate
// ignored) and requires the engine to find it: a path where the line is
// asserted and MEIE is set but MIE is clear — the RTL vectors, the ISS does
// not, and the executed-instruction PCs diverge.
func TestInterruptMIEBugFound(t *testing.T) {
	cfg := interruptConfig()
	cfg.Core.IgnoreMIEBug = true
	rep := explore(t, cfg, core.Options{StopOnFirstFinding: true, MaxTime: 120 * time.Second})
	if len(rep.Findings) != 1 {
		t.Fatalf("MIE bug not found: %v", rep.Stats)
	}
	var m *rvfi.Mismatch
	if !errors.As(rep.Findings[0].Err, &m) {
		t.Fatalf("finding type: %v", rep.Findings[0].Err)
	}
	if m.Kind != rvfi.PCMismatch {
		t.Fatalf("kind = %v (%s), want pc-mismatch", m.Kind, m.Detail)
	}
	// The witness must demonstrate the bug: irq asserted, MEIE set, MIE clear.
	if m.Env["irq_0"] != 1 {
		t.Errorf("witness irq_0 = %d, want 1", m.Env["irq_0"])
	}
	if m.Env["csr_mie"]>>11&1 != 1 {
		t.Errorf("witness mie.MEIE not set: %#x", m.Env["csr_mie"])
	}
	if m.Env["csr_mstatus"]>>3&1 != 0 {
		t.Errorf("witness mstatus.MIE set — not the buggy case: %#x", m.Env["csr_mstatus"])
	}
	t.Logf("MIE bug witness: irq=1 mie=%#x mstatus=%#x after %v", m.Env["csr_mie"], m.Env["csr_mstatus"], rep.Stats)
}

// TestInterruptEntryDirected drives a fully concrete interrupt entry.
func TestInterruptEntryDirected(t *testing.T) {
	cfg := interruptConfig()
	cfg.Pin = smt.MapEnv{
		"irq_0":         1,
		"csr_mstatus":   riscv.MstatusMIE,
		"csr_mie":       riscv.MieMEIE,
		"imem_00000000": uint64(riscv.ADDI(1, 0, 42)), // at the trap vector
		"imem_00000100": uint64(riscv.ADDI(2, 0, 7)),  // original program
		"reg_x1":        0,
		"reg_x2":        0,
	}
	var buf strings.Builder
	cfg.Trace = &buf
	x := core.NewExplorer(RunFunc(cfg))
	rep := x.Explore(core.Options{MaxPaths: 8})
	if len(rep.Findings) != 0 {
		t.Fatalf("directed interrupt entry mismatched: %v", rep.Findings[0].Err)
	}
	// The retired instruction must be the one at the vector, not at 0x100.
	if !strings.Contains(buf.String(), "pc=0x00000000 insn=") {
		t.Fatalf("interrupt did not vector:\n%s", buf.String())
	}
}
