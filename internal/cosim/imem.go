package cosim

import (
	"fmt"

	"symriscv/internal/core"
	"symriscv/internal/cow"
	"symriscv/internal/smt"
)

// InstrFilter constrains freshly generated symbolic instruction words via
// engine assumptions — the paper's klee_assume hook for steering generation
// (e.g. blocking CSR instructions in the error-injection experiments).
type InstrFilter func(eng *core.Engine, word *smt.Term)

// SymbolicIMem is the symbolic instruction memory: read-only, shared between
// the RTL core and the ISS. The word for a fetch address is generated
// symbolically on first access and cached, guaranteeing both models always
// see identical instructions (preventing false mismatches, §IV-C.1). The
// cache is a copy-on-write map so fork-point checkpoints snapshot it in
// O(1); a restored memory re-serves the already-generated words without
// re-running their filter assumptions (the checkpoint's pre-credited replay
// accounting covers them, see core/snapshot.go).
type SymbolicIMem struct {
	eng      *core.Engine
	words    *cow.Map[uint32, *smt.Term]
	filter   InstrFilter
	concrete func(addr uint32) uint32 // fuzzing mode: concrete generation
}

// NewSymbolicIMem returns an empty instruction memory. filter may be nil.
func NewSymbolicIMem(eng *core.Engine, filter InstrFilter) *SymbolicIMem {
	return &SymbolicIMem{
		eng:    eng,
		words:  cow.New[uint32, *smt.Term](),
		filter: filter,
	}
}

// snapshot freezes the word cache (O(1)); resumeIMem rebuilds a memory over
// the frozen cache for a resumed sibling path.
func (m *SymbolicIMem) snapshot() *cow.Layer[uint32, *smt.Term] { return m.words.Snapshot() }

func resumeIMem(eng *core.Engine, frozen *cow.Layer[uint32, *smt.Term], filter InstrFilter, concrete func(uint32) uint32) *SymbolicIMem {
	return &SymbolicIMem{eng: eng, words: cow.Resume(frozen), filter: filter, concrete: concrete}
}

// Fetch returns the (cached) instruction word at addr, generating a fresh
// constrained symbolic word on first access.
func (m *SymbolicIMem) Fetch(addr uint32) *smt.Term {
	if w, ok := m.words.Get(addr); ok {
		return w
	}
	if m.concrete != nil {
		w := m.eng.Context().BV(32, uint64(m.concrete(addr)))
		m.words.Set(addr, w)
		return w
	}
	w := m.eng.MakeSymbolic(fmt.Sprintf("imem_%08x", addr), 32)
	if m.filter != nil {
		m.filter(m.eng, w)
	}
	m.words.Set(addr, w)
	return w
}

// Preload pins a concrete instruction at addr (for directed co-simulation
// runs and tests).
func (m *SymbolicIMem) Preload(addr uint32, word uint32) {
	m.words.Set(addr, m.eng.Context().BV(32, uint64(word)))
}

// BlockSystemInstructions is the Table II filter: it excludes the SYSTEM
// opcode (CSR instructions, ECALL/EBREAK/WFI/MRET) from generation, which
// removes the known CSR implementation mismatches from the search space.
func BlockSystemInstructions(eng *core.Engine, word *smt.Term) {
	ctx := eng.Context()
	eng.Assume(ctx.Ne(ctx.And(word, ctx.BV(32, 0x7f)), ctx.BV(32, 0x73)))
}

// OnlyOpcode returns a filter restricting generation to one major opcode —
// the per-class sweep mode of the Table I campaign.
func OnlyOpcode(opcode uint32) InstrFilter {
	return func(eng *core.Engine, word *smt.Term) {
		ctx := eng.Context()
		eng.Assume(ctx.Eq(ctx.And(word, ctx.BV(32, 0x7f)), ctx.BV(32, uint64(opcode&0x7f))))
	}
}

// OnlyMasked returns a filter constraining (word AND mask) == match, the
// general form used to focus the exploration on an instruction subclass.
func OnlyMasked(mask, match uint32) InstrFilter {
	return func(eng *core.Engine, word *smt.Term) {
		ctx := eng.Context()
		eng.Assume(ctx.Eq(ctx.And(word, ctx.BV(32, uint64(mask))), ctx.BV(32, uint64(match))))
	}
}

// Filters composes several filters into one.
func Filters(fs ...InstrFilter) InstrFilter {
	return func(eng *core.Engine, word *smt.Term) {
		for _, f := range fs {
			if f != nil {
				f(eng, word)
			}
		}
	}
}
