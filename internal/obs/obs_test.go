package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// goldenScenario drives one deterministic single-handle trace: an explore
// root, a path with a bare solver check plus a cache probe that falls
// through to the solver, a second empty path, then counters and a gauge.
func goldenScenario(trace *bytes.Buffer) *Recorder {
	r := New(Options{Trace: trace, Label: "golden"})
	h := r.NewHandle(0)
	root := h.Start(PhaseExplore)
	p0 := h.Start(PhasePath)
	p0.SetPath(0)
	h.Start(PhaseSolverCheck).End()
	cp := h.Start(PhaseCacheProbe)
	h.Start(PhaseSolverCheck).End()
	cp.End()
	p0.End()
	p1 := h.Start(PhasePath)
	p1.SetPath(1)
	p1.End()
	root.End()
	h.Add("solver.cdcl", 2)
	h.Add("cache.queries", 1)
	h.Gauge("sat.vars", 42)
	h.Flush()
	r.Close()
	return r
}

var timingFields = regexp.MustCompile(`("t0"|"dur"|"ns"):\d+`)

// normalizeTimings zeroes the wall-time fields, which are the only
// nondeterministic parts of the schema.
func normalizeTimings(s string) string {
	return timingFields.ReplaceAllString(s, `${1}:0`)
}

// TestGoldenJSONL pins the trace schema: field order, event order, kid
// sorting and span-id assignment must all stay byte-stable (traces are
// meant to be diffable between runs and commits).
func TestGoldenJSONL(t *testing.T) {
	var buf bytes.Buffer
	goldenScenario(&buf)
	got := normalizeTimings(buf.String())
	goldenPath := filepath.Join("testdata", "trace_golden.jsonl")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Errorf("trace schema drifted from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestSpanNesting checks structural invariants on a real (unnormalized)
// trace: every parent id exists (or is 0), children are contained in the
// parent's window, and kid rollups are sorted by name.
func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	goldenScenario(&buf)
	sum, err := ReadSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSummary: %v", err)
	}
	if sum.Spans != 6 {
		t.Errorf("spans = %d, want 6", sum.Spans)
	}

	type spanEv struct{ t0, dur uint64 }
	spans := map[uint64]spanEv{}
	var events []Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if ev.Ev != "span" {
			continue
		}
		spans[ev.ID] = spanEv{ev.T0, ev.Dur}
		events = append(events, ev)
	}
	for _, ev := range events {
		if ev.Par != 0 {
			par, ok := spans[ev.Par]
			if !ok {
				t.Errorf("span %d has unknown parent %d", ev.ID, ev.Par)
				continue
			}
			if ev.T0 < par.t0 || ev.T0+ev.Dur > par.t0+par.dur {
				t.Errorf("span %d [%d,%d] escapes parent %d [%d,%d]",
					ev.ID, ev.T0, ev.T0+ev.Dur, ev.Par, par.t0, par.t0+par.dur)
			}
		}
		for i := 1; i < len(ev.Kids); i++ {
			if ev.Kids[i-1].Name >= ev.Kids[i].Name {
				t.Errorf("span %d kids not sorted: %q >= %q", ev.ID, ev.Kids[i-1].Name, ev.Kids[i].Name)
			}
		}
	}
}

// TestNilRecorderSafe exercises the disabled path: every entry point must
// be a no-op on a nil recorder.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	h := r.NewHandle(3)
	if h != nil {
		t.Fatalf("nil recorder returned live handle")
	}
	sp := h.Start(PhasePath)
	sp.SetPath(7)
	sp.End()
	h.Add("x", 1)
	h.Gauge("g", 2)
	h.Flush()
	h.SetBase(nil)
	if snap := r.Snapshot(); snap.Counters != nil || snap.Spans != 0 {
		t.Errorf("nil snapshot not zero: %+v", snap)
	}
	if err := r.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if s := r.FormatSnapshot(); s != "" {
		t.Errorf("nil FormatSnapshot = %q", s)
	}
	ran := false
	LabelWorker(nil, 0, PhaseExplore, func() { ran = true })
	if !ran {
		t.Error("LabelWorker skipped f on nil recorder")
	}
}

// TestMergeRace hammers concurrent handle flushes, span closes and
// snapshots; run under -race this checks the shard/merge synchronization.
func TestMergeRace(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Trace: &buf, Label: "race"})
	root := r.NewHandle(0).Start(PhaseExplore)
	const workers = 8
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.NewHandle(w)
			h.SetBase(root)
			for i := 0; i < 200; i++ {
				sp := h.Start(PhasePath)
				sp.SetPath(i)
				h.Start(PhaseSolverCheck).End()
				sp.End()
				h.Add("solver.cdcl", 1)
				h.Gauge("sat.vars", uint64(w*1000+i))
				if i%50 == 49 {
					h.Flush()
				}
			}
			h.Flush()
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	root.End()
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := r.Snapshot()
	if got := snap.Counters["solver.cdcl"]; got != workers*200 {
		t.Errorf("merged counter = %d, want %d", got, workers*200)
	}
	if got := snap.Gauges["sat.vars"]; got != workers*1000+199 {
		t.Errorf("merged gauge = %d, want %d (max rule)", got, workers*1000+199)
	}
	ph := snap.Phases[PhasePath]
	if ph.Count != workers*200 {
		t.Errorf("path phase count = %d, want %d", ph.Count, workers*200)
	}
	sum, err := ReadSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSummary: %v", err)
	}
	// explore root + per-worker (path + solver-check) spans.
	if want := uint64(1 + 2*workers*200); sum.Spans != want {
		t.Errorf("trace spans = %d, want %d", sum.Spans, want)
	}
}

// TestSummaryDigest checks the digest numbers and the rendered tables.
func TestSummaryDigest(t *testing.T) {
	var buf bytes.Buffer
	goldenScenario(&buf)
	sum, err := ReadSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSummary: %v", err)
	}
	if sum.Label != "golden" {
		t.Errorf("label = %q", sum.Label)
	}
	want := map[string]uint64{
		PhaseExplore: 1, PhasePath: 2, PhaseSolverCheck: 2, PhaseCacheProbe: 1,
	}
	got := map[string]uint64{}
	for _, p := range sum.Phases {
		got[p.Name] = p.Count
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("phase %s count = %d, want %d", k, got[k], v)
		}
	}
	if sum.Counters["solver.cdcl"] != 2 || sum.Counters["cache.queries"] != 1 {
		t.Errorf("counters = %v", sum.Counters)
	}
	if sum.Gauges["sat.vars"] != 42 {
		t.Errorf("gauges = %v", sum.Gauges)
	}
	out := sum.Format(0)
	for _, needle := range []string{"label=golden", "path", "solver-check", "solver.cdcl", "sat.vars", "histogram"} {
		if !strings.Contains(out, needle) {
			t.Errorf("Format missing %q in:\n%s", needle, out)
		}
	}
	if top := sum.Format(1); strings.Count(top, "\n") >= strings.Count(out, "\n") {
		t.Errorf("Format(1) did not truncate phase rows")
	}
}

// TestFormatSnapshot smoke-tests the live -metrics rendering.
func TestFormatSnapshot(t *testing.T) {
	r := New(Options{Label: "bench"})
	h := r.NewHandle(0)
	sp := h.Start(PhasePath)
	time.Sleep(time.Millisecond)
	sp.End()
	h.Add("explore.paths", 1)
	h.Flush()
	out := r.FormatSnapshot()
	for _, needle := range []string{"label=bench", "path", "explore.paths"} {
		if !strings.Contains(out, needle) {
			t.Errorf("FormatSnapshot missing %q in:\n%s", needle, out)
		}
	}
}
