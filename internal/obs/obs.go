// Package obs is the zero-dependency observability layer: hierarchical
// wall-time spans, a typed counter/gauge registry, and pluggable sinks
// (a JSONL trace writer, an aggregated per-phase table, pprof goroutine
// labels). It absorbs the scattered telemetry counters of the solver
// facade, the query cache and the walkers behind one snapshot interface.
//
// # Enable/disable contract
//
// A nil *Recorder is the disabled state. Every method on Recorder, Handle
// and Span is nil-safe, so instrumentation sites pay exactly one pointer
// check (plus an open-coded defer) when observability is off:
//
//	defer h.Start(obs.PhaseSolverCheck).End()
//
// Observability is side-channel only: it never feeds back into exploration
// decisions, so reports stay byte-identical with tracing on and off.
//
// # Concurrency contract
//
// A Recorder is shared and internally synchronized. A Handle is the
// per-goroutine (per-worker) shard: span starts/ends and counter bumps on
// a Handle are unsynchronized single-owner operations, mirroring how each
// parexplore worker owns a private querycache.Local. Handle.Flush merges
// the shard into the Recorder under one mutex and is called at the same
// hand-off points where the query cache publishes (work donation, idle,
// exploration end). Span-close trace events are written to the sink as
// they happen, under the sink mutex.
package obs

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names used by the engine instrumentation. Spans nest as
// explore → path → {solver-check, cache-probe, rtl-step, iss-step,
// voter-compare}; cache-probe additionally nests solver-check when the
// elimination pipeline falls through to the CDCL core.
const (
	PhaseExplore      = "explore"
	PhasePath         = "path"
	PhaseSolverCheck  = "solver-check"
	PhaseCacheProbe   = "cache-probe"
	PhaseRTLStep      = "rtl-step"
	PhaseISSStep      = "iss-step"
	PhaseVoterCompare = "voter-compare"
)

// Options configures a Recorder.
type Options struct {
	// Trace, when non-nil, receives the JSONL event stream (one event per
	// span close, plus header/counter/end events). Writes are buffered;
	// Close flushes.
	Trace io.Writer
	// Label tags the trace header (conventionally the symv subcommand).
	Label string
}

// PhaseStat aggregates the spans of one phase name.
type PhaseStat struct {
	Count uint64
	Nanos uint64
}

// Snapshot is a point-in-time copy of the merged registry. Only flushed
// handle shards are visible; live per-worker deltas are not.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]uint64
	Phases   map[string]PhaseStat
	Elapsed  time.Duration
	Spans    uint64
}

// Recorder is the shared root of the observability layer. The zero state
// for "disabled" is a nil pointer, not a zero-value struct.
type Recorder struct {
	start time.Time
	label string

	nextID atomic.Uint64 // span ids; 0 is "no parent"
	spans  atomic.Uint64 // closed-span count

	mu       sync.Mutex // guards counters/gauges/phases and sink writes
	counters map[string]uint64
	gauges   map[string]uint64
	phases   map[string]PhaseStat
	sink     *jsonlWriter
	closed   bool
}

// New builds an enabled Recorder and, when o.Trace is set, writes the
// trace header event.
func New(o Options) *Recorder {
	r := &Recorder{
		start:    time.Now(),
		label:    o.Label,
		counters: make(map[string]uint64),
		gauges:   make(map[string]uint64),
		phases:   make(map[string]PhaseStat),
	}
	if o.Trace != nil {
		r.sink = newJSONLWriter(o.Trace)
		r.sink.header(o.Label)
	}
	return r
}

// Enabled reports whether the recorder collects anything (i.e. is non-nil).
func (r *Recorder) Enabled() bool { return r != nil }

// NewHandle returns the single-goroutine shard for one worker. Worker 0 is
// the orchestrator / sequential explorer; parallel workers use 1..N.
func (r *Recorder) NewHandle(worker int) *Handle {
	if r == nil {
		return nil
	}
	return &Handle{
		r:        r,
		worker:   worker,
		counters: make(map[string]uint64),
		gauges:   make(map[string]uint64),
		phases:   make(map[string]PhaseStat),
	}
}

// Snapshot copies the merged registry. Safe to call concurrently with
// handle flushes; returns a zero Snapshot on a nil recorder.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]uint64, len(r.gauges)),
		Phases:   make(map[string]PhaseStat, len(r.phases)),
		Elapsed:  time.Since(r.start),
		Spans:    r.spans.Load(),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, v := range r.phases {
		s.Phases[k] = v
	}
	return s
}

// Close writes the merged counters/gauges and the end event to the trace
// sink (if any) and flushes it. Handles must be flushed first; Close is
// idempotent.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.sink == nil {
		return nil
	}
	for _, k := range sortedKeys(r.counters) {
		r.sink.counter("counter", k, r.counters[k])
	}
	for _, k := range sortedKeys(r.gauges) {
		r.sink.counter("gauge", k, r.gauges[k])
	}
	r.sink.end(uint64(time.Since(r.start)), r.spans.Load())
	return r.sink.flush()
}

// Handle is a per-goroutine view of the Recorder: a current-span stack and
// local counter/phase shards. It must not be shared between goroutines;
// hand it off only at quiescent points (like the owning worker's queue
// hand-off), after Flush.
type Handle struct {
	r      *Recorder
	worker int
	cur    *Span  // innermost open span
	baseID uint64 // parent id for this handle's top-level spans

	counters map[string]uint64
	gauges   map[string]uint64
	phases   map[string]PhaseStat
}

// SetBase makes s the parent of this handle's top-level spans, stitching a
// worker's path spans under the orchestrator's explore root. Cross-handle
// parenting is by id only: child rollups stay within the owning handle.
func (h *Handle) SetBase(s *Span) {
	if h == nil {
		return
	}
	if s != nil {
		h.baseID = s.id
	}
}

// Start opens a span named after a phase and pushes it on the handle's
// stack; spans started before End nest under it (including across package
// boundaries: a solver-check opened inside a cache probe becomes the
// probe's child automatically).
func (h *Handle) Start(name string) *Span {
	if h == nil {
		return nil
	}
	s := &Span{
		h:      h,
		prev:   h.cur,
		id:     h.r.nextID.Add(1),
		name:   name,
		t0:     time.Since(h.r.start),
		pathID: -1,
	}
	h.cur = s
	return s
}

// Add bumps a named counter on the local shard.
func (h *Handle) Add(name string, n uint64) {
	if h == nil || n == 0 {
		return
	}
	h.counters[name] += n
}

// Gauge records a level value on the local shard. Gauges merge by maximum
// (they report sizes — term count, SAT variables — where the high-water
// mark across workers is the interesting number).
func (h *Handle) Gauge(name string, v uint64) {
	if h == nil {
		return
	}
	if v > h.gauges[name] {
		h.gauges[name] = v
	}
}

// Flush merges the local counter/gauge/phase shards into the Recorder and
// clears them. Call at hand-off points and at the end of exploration;
// open spans are unaffected.
func (h *Handle) Flush() {
	if h == nil {
		return
	}
	r := h.r
	r.mu.Lock()
	for k, v := range h.counters {
		r.counters[k] += v
	}
	for k, v := range h.gauges {
		if v > r.gauges[k] {
			r.gauges[k] = v
		}
	}
	for k, v := range h.phases {
		p := r.phases[k]
		p.Count += v.Count
		p.Nanos += v.Nanos
		r.phases[k] = p
	}
	r.mu.Unlock()
	clear(h.counters)
	clear(h.gauges)
	clear(h.phases)
}

// kid is a child-phase rollup accumulated on an open span.
type kid struct {
	name string
	n    uint64
	ns   uint64
}

// Span is one timed region. Spans are created by Handle.Start and closed
// exactly once by End; they are owned by the handle's goroutine.
type Span struct {
	h      *Handle
	prev   *Span
	id     uint64
	name   string
	t0     time.Duration
	pathID int64
	kids   []kid // child rollups, few distinct names; linear scan
}

// SetPath tags the span with a deterministic path index (walker order).
func (s *Span) SetPath(idx int) {
	if s == nil {
		return
	}
	s.pathID = int64(idx)
}

// End closes the span: computes its duration, rolls it up into the parent
// span (same handle) and the handle's per-phase shard, and emits one JSONL
// event when tracing is on.
func (s *Span) End() {
	if s == nil {
		return
	}
	h := s.h
	r := h.r
	dur := time.Since(r.start) - s.t0
	if h.cur == s {
		h.cur = s.prev
	}
	if s.prev != nil {
		s.prev.addKid(s.name, uint64(dur))
	}
	p := h.phases[s.name]
	p.Count++
	p.Nanos += uint64(dur)
	h.phases[s.name] = p
	r.spans.Add(1)
	if r.sink == nil {
		return
	}
	par := s.baseParent()
	sort.Slice(s.kids, func(i, j int) bool { return s.kids[i].name < s.kids[j].name })
	r.mu.Lock()
	r.sink.span(s.id, par, h.worker, s.name, s.pathID, uint64(s.t0), uint64(dur), s.kids)
	r.mu.Unlock()
}

func (s *Span) baseParent() uint64 {
	if s.prev != nil {
		return s.prev.id
	}
	return s.h.baseID
}

func (s *Span) addKid(name string, ns uint64) {
	for i := range s.kids {
		if s.kids[i].name == name {
			s.kids[i].n++
			s.kids[i].ns += ns
			return
		}
	}
	s.kids = append(s.kids, kid{name: name, n: 1, ns: ns})
}

func sortedKeys(m map[string]uint64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
