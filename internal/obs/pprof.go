package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// LabelWorker runs f with pprof goroutine labels identifying the phase and
// worker index, so CPU profiles taken during exploration attribute samples
// per worker and per phase. With a nil recorder, f runs unlabeled.
func LabelWorker(r *Recorder, worker int, phase string, f func()) {
	if r == nil {
		f()
		return
	}
	pprof.Do(context.Background(),
		pprof.Labels("obs.phase", phase, "obs.worker", strconv.Itoa(worker)),
		func(context.Context) { f() })
}
