package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Event is one decoded JSONL trace line. Reading uses encoding/json (the
// hand-rolled encoder only matters for writing stable output).
type Event struct {
	Ev    string     `json:"ev"`
	V     uint64     `json:"v"`
	Label string     `json:"label"`
	ID    uint64     `json:"id"`
	Par   uint64     `json:"par"`
	W     int        `json:"w"`
	Name  string     `json:"name"`
	T0    uint64     `json:"t0"`
	Dur   uint64     `json:"dur"`
	Path  *int64     `json:"path"`
	Kids  []KidEvent `json:"kids"`
	Spans uint64     `json:"spans"`
}

// KidEvent is a child rollup inside a span event.
type KidEvent struct {
	Name string `json:"name"`
	N    uint64 `json:"n"`
	NS   uint64 `json:"ns"`
}

// histBuckets are the per-phase duration histogram boundaries (decade
// buckets; the last bucket is unbounded).
var histBuckets = []time.Duration{
	time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	time.Second,
}

var histLabels = []string{"<1µs", "<10µs", "<100µs", "<1ms", "<10ms", "<100ms", "<1s", "≥1s"}

// PhaseSummary aggregates the spans of one name across a trace.
type PhaseSummary struct {
	Name  string
	Count uint64
	Total time.Duration
	Max   time.Duration
	Hist  [8]uint64 // indexed like histLabels
}

// Summary is the digest of one JSONL trace file.
type Summary struct {
	Label    string
	Wall     time.Duration // from the end event; falls back to max span end
	Spans    uint64
	Phases   []PhaseSummary // sorted by cumulative time, descending
	Counters map[string]uint64
	Gauges   map[string]uint64
}

// ReadSummary digests a JSONL trace stream. Unknown event kinds and extra
// fields are ignored so the schema can grow.
func ReadSummary(r io.Reader) (*Summary, error) {
	s := &Summary{Counters: map[string]uint64{}, Gauges: map[string]uint64{}}
	phases := map[string]*PhaseSummary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	var maxEnd uint64
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		switch ev.Ev {
		case "trace":
			s.Label = ev.Label
		case "span":
			p := phases[ev.Name]
			if p == nil {
				p = &PhaseSummary{Name: ev.Name}
				phases[ev.Name] = p
			}
			d := time.Duration(ev.Dur)
			p.Count++
			p.Total += d
			if d > p.Max {
				p.Max = d
			}
			p.Hist[histBucket(d)]++
			if end := ev.T0 + ev.Dur; end > maxEnd {
				maxEnd = end
			}
		case "counter":
			s.Counters[ev.Name] += ev.V
		case "gauge":
			if ev.V > s.Gauges[ev.Name] {
				s.Gauges[ev.Name] = ev.V
			}
		case "end":
			s.Wall = time.Duration(ev.Dur)
			s.Spans = ev.Spans
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.Wall == 0 {
		s.Wall = time.Duration(maxEnd)
	}
	var seen uint64
	for _, p := range phases {
		s.Phases = append(s.Phases, *p)
		seen += p.Count
	}
	if s.Spans == 0 {
		// Truncated trace without an end event: report what we saw.
		s.Spans = seen
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].Total != s.Phases[j].Total {
			return s.Phases[i].Total > s.Phases[j].Total
		}
		return s.Phases[i].Name < s.Phases[j].Name
	})
	return s, nil
}

func histBucket(d time.Duration) int {
	for i, b := range histBuckets {
		if d < b {
			return i
		}
	}
	return len(histBuckets)
}

// Format renders the digest: top phases by cumulative time, counter and
// gauge totals, and the per-phase duration histogram. top bounds the
// number of phase rows (0 = all).
func (s *Summary) Format(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: label=%s spans=%d wall=%s\n", orDash(s.Label), s.Spans, fmtNS(s.Wall))
	phases := s.Phases
	if top > 0 && top < len(phases) {
		phases = phases[:top]
	}
	if len(phases) > 0 {
		fmt.Fprintf(&b, "\n%-14s %10s %12s %12s %12s %7s\n", "phase", "count", "total", "avg", "max", "%wall")
		for _, p := range phases {
			pct := 0.0
			if s.Wall > 0 {
				pct = 100 * float64(p.Total) / float64(s.Wall)
			}
			avg := time.Duration(0)
			if p.Count > 0 {
				avg = p.Total / time.Duration(p.Count)
			}
			fmt.Fprintf(&b, "%-14s %10d %12s %12s %12s %7.1f\n",
				p.Name, p.Count, fmtNS(p.Total), fmtNS(avg), fmtNS(p.Max), pct)
		}
		fmt.Fprintf(&b, "\n%-14s", "histogram")
		for _, l := range histLabels {
			fmt.Fprintf(&b, " %7s", l)
		}
		b.WriteByte('\n')
		for _, p := range phases {
			fmt.Fprintf(&b, "%-14s", p.Name)
			for _, n := range p.Hist {
				fmt.Fprintf(&b, " %7d", n)
			}
			b.WriteByte('\n')
		}
	}
	writeKV(&b, "counters", s.Counters)
	writeKV(&b, "gauges", s.Gauges)
	return b.String()
}

// FormatSnapshot renders the merged registry of a live Recorder as the
// same per-phase table (the -metrics sink). Returns "" when disabled.
func (r *Recorder) FormatSnapshot() string {
	if r == nil {
		return ""
	}
	snap := r.Snapshot()
	s := &Summary{
		Label:    r.label,
		Wall:     snap.Elapsed,
		Spans:    snap.Spans,
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
	}
	for name, p := range snap.Phases {
		avgOnly := PhaseSummary{Name: name, Count: p.Count, Total: time.Duration(p.Nanos)}
		s.Phases = append(s.Phases, avgOnly)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].Total != s.Phases[j].Total {
			return s.Phases[i].Total > s.Phases[j].Total
		}
		return s.Phases[i].Name < s.Phases[j].Name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: label=%s spans=%d wall=%s\n", orDash(s.Label), s.Spans, fmtNS(s.Wall))
	if len(s.Phases) > 0 {
		fmt.Fprintf(&b, "\n%-14s %10s %12s %12s %7s\n", "phase", "count", "total", "avg", "%wall")
		for _, p := range s.Phases {
			pct := 0.0
			if s.Wall > 0 {
				pct = 100 * float64(p.Total) / float64(s.Wall)
			}
			avg := time.Duration(0)
			if p.Count > 0 {
				avg = p.Total / time.Duration(p.Count)
			}
			fmt.Fprintf(&b, "%-14s %10d %12s %12s %7.1f\n", p.Name, p.Count, fmtNS(p.Total), fmtNS(avg), pct)
		}
	}
	writeKV(&b, "counters", s.Counters)
	writeKV(&b, "gauges", s.Gauges)
	return b.String()
}

func writeKV(b *strings.Builder, title string, m map[string]uint64) {
	if len(m) == 0 {
		return
	}
	fmt.Fprintf(b, "\n%s:\n", title)
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(b, "  %-28s %12d\n", k, m[k])
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// fmtNS renders a duration rounded for tables.
func fmtNS(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(10 * time.Nanosecond).String()
	}
	return d.String()
}
