package obs

import (
	"bufio"
	"io"
	"strconv"
)

// jsonlWriter emits the trace event stream. Events are hand-encoded so the
// field order is fixed (diffable traces, golden-testable schema) instead of
// depending on encoding/json struct ordering rules:
//
//	{"ev":"trace","v":1,"label":"bench"}
//	{"ev":"span","id":2,"par":1,"w":0,"name":"path","t0":1200,"dur":88000,
//	 "path":3,"kids":[{"name":"solver-check","n":4,"ns":61000}]}
//	{"ev":"counter","name":"solver.cdcl","v":812}
//	{"ev":"gauge","name":"sat.vars","v":120034}
//	{"ev":"end","dur":2000000000,"spans":451}
//
// Times are nanoseconds; t0 is the offset from the trace start. "path" is
// present only on spans tagged with a path index, "kids" only when child
// rollups exist (sorted by name). Callers hold the recorder mutex around
// each event.
type jsonlWriter struct {
	w   *bufio.Writer
	buf []byte
}

func newJSONLWriter(w io.Writer) *jsonlWriter {
	return &jsonlWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (j *jsonlWriter) header(label string) {
	j.buf = j.buf[:0]
	j.buf = append(j.buf, `{"ev":"trace","v":1,"label":`...)
	j.buf = strconv.AppendQuote(j.buf, label)
	j.line()
}

func (j *jsonlWriter) span(id, par uint64, worker int, name string, path int64, t0, dur uint64, kids []kid) {
	j.buf = j.buf[:0]
	j.buf = append(j.buf, `{"ev":"span","id":`...)
	j.buf = strconv.AppendUint(j.buf, id, 10)
	j.buf = append(j.buf, `,"par":`...)
	j.buf = strconv.AppendUint(j.buf, par, 10)
	j.buf = append(j.buf, `,"w":`...)
	j.buf = strconv.AppendInt(j.buf, int64(worker), 10)
	j.buf = append(j.buf, `,"name":`...)
	j.buf = strconv.AppendQuote(j.buf, name)
	j.buf = append(j.buf, `,"t0":`...)
	j.buf = strconv.AppendUint(j.buf, t0, 10)
	j.buf = append(j.buf, `,"dur":`...)
	j.buf = strconv.AppendUint(j.buf, dur, 10)
	if path >= 0 {
		j.buf = append(j.buf, `,"path":`...)
		j.buf = strconv.AppendInt(j.buf, path, 10)
	}
	if len(kids) > 0 {
		j.buf = append(j.buf, `,"kids":[`...)
		for i, k := range kids {
			if i > 0 {
				j.buf = append(j.buf, ',')
			}
			j.buf = append(j.buf, `{"name":`...)
			j.buf = strconv.AppendQuote(j.buf, k.name)
			j.buf = append(j.buf, `,"n":`...)
			j.buf = strconv.AppendUint(j.buf, k.n, 10)
			j.buf = append(j.buf, `,"ns":`...)
			j.buf = strconv.AppendUint(j.buf, k.ns, 10)
			j.buf = append(j.buf, '}')
		}
		j.buf = append(j.buf, ']')
	}
	j.line()
}

// counter writes a counter or gauge total ("counter" / "gauge" event kind).
func (j *jsonlWriter) counter(ev, name string, v uint64) {
	j.buf = j.buf[:0]
	j.buf = append(j.buf, `{"ev":`...)
	j.buf = strconv.AppendQuote(j.buf, ev)
	j.buf = append(j.buf, `,"name":`...)
	j.buf = strconv.AppendQuote(j.buf, name)
	j.buf = append(j.buf, `,"v":`...)
	j.buf = strconv.AppendUint(j.buf, v, 10)
	j.line()
}

func (j *jsonlWriter) end(dur, spans uint64) {
	j.buf = j.buf[:0]
	j.buf = append(j.buf, `{"ev":"end","dur":`...)
	j.buf = strconv.AppendUint(j.buf, dur, 10)
	j.buf = append(j.buf, `,"spans":`...)
	j.buf = strconv.AppendUint(j.buf, spans, 10)
	j.line()
}

func (j *jsonlWriter) line() {
	j.buf = append(j.buf, '}', '\n')
	j.w.Write(j.buf)
}

func (j *jsonlWriter) flush() error { return j.w.Flush() }
