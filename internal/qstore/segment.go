package qstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"symriscv/internal/querycache"
)

// Segment layout. A segment is immutable once published: it is written to a
// temp file and atomically renamed into place, and its name is derived from
// its content hash, so a half-written or torn file can never carry a final
// segment name unless the crash happened inside rename itself — which is
// exactly what the per-record checksums and the truncation-tolerant reader
// are for.
//
//	magic    8 bytes  "SYQS0001" (store format version 1)
//	keyLen   uint32 BE
//	key      keyLen bytes (the version key, a UTF-8 string)
//	records, each:
//	  recLen uint32 BE  (payload length)
//	  crc    uint32 BE  (CRC-32/IEEE of the payload)
//	  payload:
//	    nHashes  uvarint
//	    hashes   nHashes * 8 bytes BE, sorted ascending, deduplicated
//	    flags    1 byte (bit 0: sat)
//	    if sat:  nVars uvarint, then per variable (sorted by name):
//	             nameLen uvarint, name bytes, value uvarint
//
// EOF terminates the record stream. A record that fails its CRC is skipped
// (framing is intact, the reader advances to the next record); a record cut
// short by truncation or with an implausible length ends the segment with
// one skipped-record count, because framing cannot be trusted past it.
const (
	segMagic   = "SYQS0001"
	segSuffix  = ".qseg"
	maxKeyLen  = 1 << 16
	maxRecLen  = 1 << 26
	maxModelSz = 1 << 20
)

// appendRecord serialises one entry as a framed, checksummed record.
func appendRecord(buf []byte, pe querycache.PortableEntry) []byte {
	payload := make([]byte, 0, 16+8*len(pe.Hashes)+16*len(pe.Model))
	payload = binary.AppendUvarint(payload, uint64(len(pe.Hashes)))
	for _, h := range pe.Hashes {
		payload = binary.BigEndian.AppendUint64(payload, h)
	}
	var flags byte
	if pe.Sat {
		flags |= 1
	}
	payload = append(payload, flags)
	if pe.Sat {
		names := make([]string, 0, len(pe.Model))
		for name := range pe.Model {
			names = append(names, name)
		}
		sort.Strings(names)
		payload = binary.AppendUvarint(payload, uint64(len(names)))
		for _, name := range names {
			payload = binary.AppendUvarint(payload, uint64(len(name)))
			payload = append(payload, name...)
			payload = binary.AppendUvarint(payload, pe.Model[name])
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// encodeSegment serialises a whole segment (header plus records). Entries
// are written in the caller's order; Snapshot order (sorted by entry key)
// makes the bytes — and with them the content-derived segment name — a
// deterministic function of the entry set.
func encodeSegment(key string, es []querycache.PortableEntry) []byte {
	buf := make([]byte, 0, len(segMagic)+4+len(key)+64*len(es))
	buf = append(buf, segMagic...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	for _, pe := range es {
		buf = appendRecord(buf, pe)
	}
	return buf
}

// decodeEntry parses one record payload. The returned entry's Key is filled
// in, and the structural invariants (sorted deduplicated hashes, sat implies
// model) are verified here so a checksum collision on garbage still cannot
// smuggle a malformed entry into the cache.
func decodeEntry(payload []byte) (querycache.PortableEntry, error) {
	var pe querycache.PortableEntry
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload)/8) {
		return pe, fmt.Errorf("bad hash count")
	}
	payload = payload[sz:]
	if uint64(len(payload)) < 8*n+1 {
		return pe, fmt.Errorf("short hash block")
	}
	pe.Hashes = make([]uint64, n)
	for i := range pe.Hashes {
		pe.Hashes[i] = binary.BigEndian.Uint64(payload[8*i:])
		if i > 0 && pe.Hashes[i] <= pe.Hashes[i-1] {
			return pe, fmt.Errorf("hashes not strictly ascending")
		}
	}
	payload = payload[8*n:]
	flags := payload[0]
	payload = payload[1:]
	pe.Sat = flags&1 != 0
	if pe.Sat {
		nv, sz := binary.Uvarint(payload)
		if sz <= 0 || nv > maxModelSz {
			return pe, fmt.Errorf("bad model size")
		}
		payload = payload[sz:]
		pe.Model = make(querycache.Model, nv)
		for i := uint64(0); i < nv; i++ {
			nl, sz := binary.Uvarint(payload)
			if sz <= 0 || nl > uint64(len(payload[sz:])) {
				return pe, fmt.Errorf("bad name length")
			}
			payload = payload[sz:]
			name := string(payload[:nl])
			payload = payload[nl:]
			v, sz := binary.Uvarint(payload)
			if sz <= 0 {
				return pe, fmt.Errorf("bad value")
			}
			payload = payload[sz:]
			pe.Model[name] = v
		}
	}
	if len(payload) != 0 {
		return pe, fmt.Errorf("%d trailing bytes", len(payload))
	}
	pe.Key = querycache.KeyOf(pe.Hashes)
	return pe, nil
}

// segmentHeader reads and validates the magic and version key.
func segmentHeader(r *bufio.Reader) (key string, err error) {
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return "", fmt.Errorf("short magic: %w", err)
	}
	if string(magic) != segMagic {
		return "", fmt.Errorf("bad magic %q", magic)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return "", fmt.Errorf("short key length: %w", err)
	}
	keyLen := binary.BigEndian.Uint32(lenBuf[:])
	if keyLen > maxKeyLen {
		return "", fmt.Errorf("implausible key length %d", keyLen)
	}
	kb := make([]byte, keyLen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return "", fmt.Errorf("short key: %w", err)
	}
	return string(kb), nil
}

// readSegment decodes every intact record of one segment stream, counting
// rather than failing on damage. When wantKey is non-empty and the header's
// version key differs, the records are not decoded at all (entries written
// under an incompatible configuration never reach the cache). The onEntry
// callback receives each valid entry; corruptRecords counts CRC failures,
// undecodable payloads and the final truncated record when the stream ends
// mid-frame.
func readSegment(r io.Reader, wantKey string, onEntry func(querycache.PortableEntry)) (key string, records, corruptRecords int, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	key, err = segmentHeader(br)
	if err != nil {
		return "", 0, 0, err
	}
	if wantKey != "" && key != wantKey {
		return key, 0, 0, nil
	}
	var frame [8]byte
	for {
		_, ferr := io.ReadFull(br, frame[:])
		if ferr == io.EOF {
			return key, records, corruptRecords, nil // clean end
		}
		if ferr != nil {
			return key, records, corruptRecords + 1, nil // torn frame: truncated write
		}
		recLen := binary.BigEndian.Uint32(frame[:4])
		crc := binary.BigEndian.Uint32(frame[4:])
		if recLen == 0 || recLen > maxRecLen {
			// Framing cannot be trusted past a garbage length.
			return key, records, corruptRecords + 1, nil
		}
		payload := make([]byte, recLen)
		if _, perr := io.ReadFull(br, payload); perr != nil {
			return key, records, corruptRecords + 1, nil // truncated mid-record
		}
		if crc32.ChecksumIEEE(payload) != crc {
			corruptRecords++ // damaged in place; framing is still good
			continue
		}
		pe, derr := decodeEntry(payload)
		if derr != nil {
			corruptRecords++
			continue
		}
		records++
		if onEntry != nil {
			onEntry(pe)
		}
	}
}
