package qstore

import (
	"fmt"
	"sync"

	"symriscv/internal/obs"
	"symriscv/internal/querycache"
)

// Registry names for the store counters published into internal/obs.
const (
	CtrLoaded          = "store.loaded"
	CtrPersisted       = "store.persisted"
	CtrSegments        = "store.segments"
	CtrCorruptRecords  = "store.corrupt_records"
	CtrCorruptSegments = "store.corrupt_segments"
)

// Session binds one campaign to the store: it loads the version key's
// persisted entries into a querycache.Shared at open, and persists the
// entries the campaign creates back to disk at checkpoint boundaries — the
// same hand-off points where workers flush into the Shared store.
//
// A Session is safe for concurrent use (parallel table cells checkpoint
// from their own goroutines). Persist failures are recorded, not raised:
// losing a checkpoint degrades the next campaign's warm-up, never this
// campaign's results.
type Session struct {
	store  *Store
	key    string
	shared *querycache.Shared

	mu        sync.Mutex
	seen      map[string]struct{} // entry keys already on disk (loaded or persisted)
	load      LoadStats
	persisted int
	segments  int
	err       error // first persist failure, surfaced by Close
}

// OpenSession opens (creating if needed) the store at dir and loads every
// entry persisted under the version key into a fresh querycache.Shared.
// Corrupt segments and records degrade the load (counted in Stats), they do
// not fail it; the returned error means the directory itself is unusable,
// in which case callers should warn and run cold.
func OpenSession(dir, key string) (*Session, error) {
	store, err := Open(dir)
	if err != nil {
		return nil, err
	}
	es, ls, err := store.Load(key)
	if err != nil {
		return nil, err
	}
	shared := querycache.NewShared()
	imported := shared.Import(es)
	seen := make(map[string]struct{}, len(es))
	for _, pe := range es {
		seen[pe.Key] = struct{}{}
	}
	ls.Entries = imported
	return &Session{store: store, key: key, shared: shared, seen: seen, load: ls}, nil
}

// Shared returns the store-backed cross-worker cache. Every exploration of
// the campaign attaches to this one instance, so entries flow between
// explorations in-process and to disk at checkpoints.
func (s *Session) Shared() *querycache.Shared { return s.shared }

// Key returns the session's version key.
func (s *Session) Key() string { return s.key }

// Dir returns the underlying store directory.
func (s *Session) Dir() string { return s.store.Dir() }

// Checkpoint persists every entry the campaign has created since the last
// checkpoint as one new segment. Called at exploration hand-off boundaries
// (after each exploration merges, alongside the final FlushCache). Failures
// are recorded and surfaced by Close; the campaign itself never fails on a
// persist error.
func (s *Session) Checkpoint() {
	if s == nil {
		return
	}
	snap := s.shared.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	fresh := make([]querycache.PortableEntry, 0, len(snap))
	for _, pe := range snap {
		if _, ok := s.seen[pe.Key]; ok {
			continue
		}
		fresh = append(fresh, pe)
	}
	if len(fresh) == 0 {
		return
	}
	if _, err := s.store.Persist(s.key, fresh); err != nil {
		if s.err == nil {
			s.err = err
		}
		return
	}
	for _, pe := range fresh {
		s.seen[pe.Key] = struct{}{}
	}
	s.persisted += len(fresh)
	s.segments++
}

// Close takes a final checkpoint and returns the first persist error of the
// session, if any. The session remains usable for Stats afterwards.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.Checkpoint()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// SessionStats is the session's telemetry: what the load found (and
// skipped) and what the campaign persisted.
type SessionStats struct {
	Loaded          int // entries loaded into the shared cache at open
	LoadedSegments  int // segments the load decoded
	OtherSegments   int // segments under other version keys, skipped
	CorruptSegments int // unreadable segments, skipped
	CorruptRecords  int // damaged/truncated records, skipped
	Persisted       int // new entries written this session
	Segments        int // segments written this session
}

// Stats returns the session counters.
func (s *Session) Stats() SessionStats {
	if s == nil {
		return SessionStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		Loaded:          s.load.Entries,
		LoadedSegments:  s.load.Segments,
		OtherSegments:   s.load.OtherSegments,
		CorruptSegments: s.load.CorruptSegments,
		CorruptRecords:  s.load.CorruptRecords,
		Persisted:       s.persisted,
		Segments:        s.segments,
	}
}

// Summary renders the one-line stderr digest the CLI prints after a
// campaign ran with -store.
func (st SessionStats) Summary() string {
	msg := fmt.Sprintf("store: loaded %d entries from %d segment(s), persisted %d new in %d segment(s)",
		st.Loaded, st.LoadedSegments, st.Persisted, st.Segments)
	if st.CorruptRecords > 0 || st.CorruptSegments > 0 {
		msg += fmt.Sprintf(" [skipped %d corrupt record(s), %d corrupt segment(s)]",
			st.CorruptRecords, st.CorruptSegments)
	}
	return msg
}

// PublishObs absorbs the session counters into the observability registry
// (worker 0, the orchestrator's shard). Call once, after the campaign.
func (s *Session) PublishObs(r *obs.Recorder) {
	if s == nil || r == nil {
		return
	}
	st := s.Stats()
	h := r.NewHandle(0)
	h.Add(CtrLoaded, uint64(st.Loaded))
	h.Add(CtrPersisted, uint64(st.Persisted))
	h.Add(CtrSegments, uint64(st.LoadedSegments+st.Segments))
	h.Add(CtrCorruptRecords, uint64(st.CorruptRecords))
	h.Add(CtrCorruptSegments, uint64(st.CorruptSegments))
	h.Flush()
}
