package qstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"symriscv/internal/querycache"
)

func entry(sat bool, model querycache.Model, hs ...uint64) querycache.PortableEntry {
	return querycache.PortableEntry{Key: querycache.KeyOf(hs), Hashes: hs, Sat: sat, Model: model}
}

func testEntries() []querycache.PortableEntry {
	return []querycache.PortableEntry{
		entry(true, querycache.Model{"rs1": 0xdeadbeef, "rs2": 7}, 10, 20, 30),
		entry(false, nil, 11, 21),
		entry(true, querycache.Model{}, 5),
		entry(false, nil, 99, 100, 101, 102),
	}
}

func TestVersionKeyIncludesSchema(t *testing.T) {
	k := VersionKey("core=shipped", "faults=E1")
	want := "cache-schema=2;core=shipped;faults=E1"
	if querycache.SchemaVersion == 2 && k != want {
		t.Fatalf("VersionKey = %q, want %q", k, want)
	}
}

func TestPersistLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := VersionKey("core=a")
	es := testEntries()
	name, err := s.Persist(key, es)
	if err != nil {
		t.Fatal(err)
	}
	if name == "" {
		t.Fatal("expected a segment name")
	}
	// Identical content republished converges on the same file.
	name2, err := s.Persist(key, es)
	if err != nil {
		t.Fatal(err)
	}
	if name2 != name {
		t.Fatalf("republish produced %q, want %q", name2, name)
	}
	got, ls, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Segments != 1 || ls.CorruptRecords != 0 || ls.CorruptSegments != 0 {
		t.Fatalf("load stats %+v", ls)
	}
	if len(got) != len(es) {
		t.Fatalf("loaded %d entries, want %d", len(got), len(es))
	}
	byKey := map[string]querycache.PortableEntry{}
	for _, pe := range got {
		byKey[pe.Key] = pe
	}
	for _, want := range es {
		g, ok := byKey[want.Key]
		if !ok {
			t.Fatalf("entry %x missing after roundtrip", want.Hashes)
		}
		if g.Sat != want.Sat || !reflect.DeepEqual(g.Hashes, want.Hashes) {
			t.Fatalf("entry mismatch: got %+v want %+v", g, want)
		}
		if want.Sat && len(want.Model) > 0 && !reflect.DeepEqual(g.Model, want.Model) {
			t.Fatalf("model mismatch: got %v want %v", g.Model, want.Model)
		}
	}
}

func TestLoadFiltersVersionKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(VersionKey("core=a"), testEntries()[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(VersionKey("core=b"), testEntries()[2:]); err != nil {
		t.Fatal(err)
	}
	got, ls, err := s.Load(VersionKey("core=a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || ls.Segments != 1 || ls.OtherSegments != 1 {
		t.Fatalf("got %d entries, stats %+v", len(got), ls)
	}
	for _, pe := range got {
		if pe.Key != querycache.KeyOf([]uint64{10, 20, 30}) && pe.Key != querycache.KeyOf([]uint64{11, 21}) {
			t.Fatalf("entry %x leaked from the wrong key", pe.Hashes)
		}
	}
}

// corruptSegment flips one byte inside the first record's payload.
func corruptSegment(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Header: magic(8) + keyLen(4) + key; then recLen(4)+crc(4)+payload.
	keyLen := int(uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11]))
	off := 8 + 4 + keyLen + 8 // first payload byte
	b[off] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func segPath(t *testing.T, dir string) string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*"+segSuffix))
	if err != nil || len(m) == 0 {
		t.Fatalf("no segment found: %v", err)
	}
	return m[0]
}

func TestCorruptRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := VersionKey("core=a")
	es := testEntries()
	if _, err := s.Persist(key, es); err != nil {
		t.Fatal(err)
	}
	corruptSegment(t, segPath(t, dir))
	got, ls, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if ls.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1 (stats %+v)", ls.CorruptRecords, ls)
	}
	if len(got) != len(es)-1 {
		t.Fatalf("loaded %d entries, want %d", len(got), len(es)-1)
	}
}

func TestTruncatedTailSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := VersionKey("core=a")
	if _, err := s.Persist(key, testEntries()); err != nil {
		t.Fatal(err)
	}
	path := segPath(t, dir)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	got, ls, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if ls.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", ls.CorruptRecords)
	}
	if len(got) != len(testEntries())-1 {
		t.Fatalf("loaded %d entries, want %d", len(got), len(testEntries())-1)
	}
}

func TestBadHeaderSkipsSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-junk"+segSuffix), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ls, err := s.Load(VersionKey("core=a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || ls.CorruptSegments != 1 {
		t.Fatalf("got %d entries, stats %+v", len(got), ls)
	}
}

func TestSessionWarmLoadAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	key := VersionKey("core=a")

	// First session: starts cold, creates entries, checkpoints.
	s1, err := OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if n := s1.Stats().Loaded; n != 0 {
		t.Fatalf("cold session loaded %d entries", n)
	}
	if n := s1.Shared().Import(testEntries()); n != len(testEntries()) {
		t.Fatalf("imported %d, want %d", n, len(testEntries()))
	}
	s1.Checkpoint()
	s1.Checkpoint() // idempotent: nothing new since last checkpoint
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	st := s1.Stats()
	if st.Persisted != len(testEntries()) || st.Segments != 1 {
		t.Fatalf("session stats %+v", st)
	}

	// Second session: warm.
	s2, err := OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.Loaded != len(testEntries()) || st2.LoadedSegments != 1 {
		t.Fatalf("warm session stats %+v", st2)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Persisted != 0 {
		t.Fatalf("warm session persisted %d entries with nothing new", st.Persisted)
	}

	// A different version key sees nothing.
	s3, err := OpenSession(dir, VersionKey("core=b"))
	if err != nil {
		t.Fatal(err)
	}
	if st := s3.Stats(); st.Loaded != 0 || st.OtherSegments != 1 {
		t.Fatalf("cross-key session stats %+v", st)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionConcurrentCheckpoints(t *testing.T) {
	dir := t.TempDir()
	key := VersionKey("core=a")
	s, err := OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				h := uint64(w*1000 + i + 1)
				s.Shared().Import([]querycache.PortableEntry{entry(false, nil, h, h+10000)})
				s.Checkpoint()
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := (&Store{dir: dir}).Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 64 {
		t.Fatalf("loaded %d entries, want 64", len(got))
	}
}

func TestStatsAndVerify(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	keyA, keyB := VersionKey("core=a"), VersionKey("core=b")
	if _, err := s.Persist(keyA, testEntries()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(keyB, testEntries()[:1]); err != nil {
		t.Fatal(err)
	}
	st, issues, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 0 {
		t.Fatalf("clean store reported issues: %+v", issues)
	}
	if st.Segments != 2 || len(st.Keys) != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Keys[0].Key != keyA || st.Keys[1].Key != keyB {
		t.Fatalf("keys not sorted: %+v", st.Keys)
	}
	if st.Keys[0].Entries != 4 || st.Keys[0].Sat != 2 || st.Keys[0].Unsat != 2 || st.Keys[0].Distinct != 4 {
		t.Fatalf("keyA stats %+v", st.Keys[0])
	}

	corruptSegment(t, segPath(t, dir))
	_, issues, err = s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(issues) != 1 || issues[0].Kind != "corrupt-records" {
		t.Fatalf("issues after corruption: %+v", issues)
	}
}

func TestGCCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := VersionKey("core=a")
	es := testEntries()
	// Three overlapping segments: es[0:2], es[1:3], es[2:4] → 6 records, 4 distinct.
	for i := 0; i+2 <= len(es); i++ {
		if _, err := s.Persist(key, es[i:i+2]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentsBefore != 3 || res.SegmentsAfter != 1 {
		t.Fatalf("gc result %+v", res)
	}
	if res.EntriesBefore != 6 || res.EntriesAfter != 4 || res.DroppedDuplicates != 2 {
		t.Fatalf("gc result %+v", res)
	}
	got, ls, err := s.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || ls.Segments != 1 {
		t.Fatalf("post-gc load: %d entries, stats %+v", len(got), ls)
	}
	// GC drops damaged records for good.
	corruptSegment(t, segPath(t, dir))
	res, err = s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedCorrupt != 1 || res.EntriesAfter != 3 {
		t.Fatalf("gc after corruption: %+v", res)
	}
	if _, ls, _ := s.Load(key); ls.CorruptRecords != 0 {
		t.Fatalf("corruption survived gc: %+v", ls)
	}
}

func TestDistillDeterministicCover(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := VersionKey("core=a")
	es := []querycache.PortableEntry{
		entry(true, querycache.Model{"a": 1}, 1, 2, 3),     // covers 3
		entry(true, querycache.Model{"b": 2}, 2, 3),        // subset of the first: redundant
		entry(true, querycache.Model{"c": 3}, 4, 5),        // covers 2 more
		entry(false, nil, 6, 7, 8, 9),                      // unsat: not a witness
		entry(true, querycache.Model{"d": 4, "rs1": 9}, 5), // subset: redundant
	}
	if _, err := s.Persist(key, es); err != nil {
		t.Fatal(err)
	}
	run := func() []DistillResult {
		out, err := s.Distill(key)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := run()
	if len(first) != 1 {
		t.Fatalf("distilled %d keys, want 1", len(first))
	}
	r := first[0]
	if r.Witnesses != 4 || r.Universe != 5 {
		t.Fatalf("distill result %+v", r)
	}
	if len(r.Vectors) != 2 {
		t.Fatalf("cover has %d vectors, want 2: %+v", len(r.Vectors), r.Vectors)
	}
	if r.Vectors[0].Covers != 3 || r.Vectors[1].Covers != 2 {
		t.Fatalf("cover gains %d,%d want 3,2", r.Vectors[0].Covers, r.Vectors[1].Covers)
	}
	for i := 0; i < 5; i++ {
		if again := run(); !reflect.DeepEqual(again, first) {
			t.Fatalf("distill not deterministic:\n%+v\nvs\n%+v", again, first)
		}
	}
	if got := (DistilledVector{Inputs: map[string]uint64{"rs2": 7, "rs1": 0xde}}).ReplayArgs(); got != "rs1=0xde rs2=0x7" {
		t.Fatalf("ReplayArgs = %q", got)
	}
}

func TestSegmentEncodingDeterministic(t *testing.T) {
	key := VersionKey("core=a")
	a := encodeSegment(key, testEntries())
	b := encodeSegment(key, testEntries())
	if !bytes.Equal(a, b) {
		t.Fatal("encodeSegment is not deterministic")
	}
}
