// Package qstore is the persistent cross-campaign witness store: it
// promotes the query-elimination layer's cache entries (sat models
// restricted to their slice's support, unsat cores, structural-hash
// fingerprints — context-independent by design, see internal/querycache) to
// a disk-backed, content-addressed store shared across processes and
// campaigns.
//
// # Layout and robustness
//
// A store is a directory of immutable segment files (see segment.go for the
// record format) plus a LOCK file. Writers publish a segment by writing a
// temp file, fsyncing and renaming it to its content-derived name, under an
// exclusive flock on LOCK — so there is exactly one writer at a time, a
// crash mid-write leaves only a temp file (ignored by readers and removed
// by GC), and two checkpoints of the same entry set converge on the same
// file. Readers take no lock at all: segments are immutable and appear
// atomically, and a segment GC'd away mid-scan is simply skipped.
//
// Damage is never fatal. Every record carries a CRC; a failed checksum
// skips that record, a truncated tail ends that segment, an unreadable
// header skips that segment — each counted and surfaced (store.corrupt_*
// counters, symv cache stats), with the run degrading toward cold-cache
// behaviour rather than failing.
//
// # Version keys
//
// Every segment header names the version key it was written under —
// composed from the cache schema version (querycache.SchemaVersion) and the
// campaign's compatibility surface (DUT config, fault set, workload shape;
// see VersionKey). Load filters on exact key match, so entries can never
// leak between incompatible runs: they are not even decoded.
package qstore

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"

	"symriscv/internal/querycache"
)

// VersionKey composes a store compatibility key from the cache schema
// version and the caller's campaign descriptors (DUT config, fault set,
// workload shape). Descriptors are joined verbatim; callers pass stable
// strings like "core=shipped", "faults=E1,E5,E6", "limit=1".
func VersionKey(parts ...string) string {
	return fmt.Sprintf("cache-schema=%d;%s", querycache.SchemaVersion, strings.Join(parts, ";"))
}

// Store is a handle on one store directory. All methods are safe for
// concurrent use; cross-process mutual exclusion for writers comes from the
// LOCK file.
type Store struct {
	dir string
}

// Open returns a store over dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("qstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// LoadStats describes one Load's outcome, including the damage it skipped.
type LoadStats struct {
	Segments        int // segments with the requested key, decoded
	OtherSegments   int // segments under a different version key (not decoded)
	CorruptSegments int // unreadable magic/header/open failure
	CorruptRecords  int // CRC-failed, undecodable or truncated records
	Entries         int // valid entries returned
}

// Load reads every segment written under the given version key and returns
// its valid entries (first occurrence wins on duplicate entry keys).
// Corruption is counted, never fatal; the only error is failing to list the
// directory itself.
func (s *Store) Load(key string) ([]querycache.PortableEntry, LoadStats, error) {
	var ls LoadStats
	segs, err := s.segments()
	if err != nil {
		return nil, ls, err
	}
	var out []querycache.PortableEntry
	seen := make(map[string]struct{})
	for _, name := range segs {
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			if os.IsNotExist(err) {
				continue // GC'd between list and open
			}
			ls.CorruptSegments++
			continue
		}
		segKey, _, corrupt, err := readSegment(f, key, func(pe querycache.PortableEntry) {
			if _, dup := seen[pe.Key]; dup {
				return
			}
			seen[pe.Key] = struct{}{}
			out = append(out, pe)
		})
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		switch {
		case err != nil:
			ls.CorruptSegments++
		case segKey != key:
			ls.OtherSegments++
		default:
			ls.Segments++
			ls.CorruptRecords += corrupt
		}
	}
	ls.Entries = len(out)
	return out, ls, nil
}

// segments lists the store's segment files, sorted by name for
// deterministic processing order.
func (s *Store) segments() ([]string, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("qstore: %w", err)
	}
	var out []string
	for _, de := range des {
		if de.Type().IsRegular() && strings.HasSuffix(de.Name(), segSuffix) {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Persist atomically publishes a new segment holding the given entries
// under the version key. Entries should be in deterministic order (Snapshot
// order) so identical entry sets produce identical segments. Returns the
// published file name; an empty entry set publishes nothing.
func (s *Store) Persist(key string, es []querycache.PortableEntry) (string, error) {
	if len(es) == 0 {
		return "", nil
	}
	lock, err := s.lock()
	if err != nil {
		return "", err
	}
	defer lock.unlock()
	return s.persistLocked(key, es)
}

// persistLocked is Persist's body for callers already holding the write lock.
func (s *Store) persistLocked(key string, es []querycache.PortableEntry) (string, error) {
	buf := encodeSegment(key, es)
	sum := sha256.Sum256(buf)
	name := fmt.Sprintf("seg-%x%s", sum[:12], segSuffix)
	final := filepath.Join(s.dir, name)
	if _, err := os.Stat(final); err == nil {
		return name, nil // identical content already published
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-seg-*")
	if err != nil {
		return "", fmt.Errorf("qstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("qstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("qstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("qstore: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("qstore: %w", err)
	}
	return name, nil
}

// dirLock is the store's single-writer exclusion: an exclusive flock on the
// LOCK file. Readers never take it — segments are immutable and appear
// atomically — so concurrent readers are always allowed.
type dirLock struct {
	f *os.File
}

// lock blocks until the exclusive write lock is held.
func (s *Store) lock() (*dirLock, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("qstore: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("qstore: flock: %w", err)
	}
	return &dirLock{f: f}, nil
}

// unlock releases the write lock.
func (l *dirLock) unlock() {
	// Closing the descriptor drops the flock; an explicit unlock first makes
	// the intent visible and surfaces EBADF-style bugs in tests.
	if err := syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN); err != nil {
		l.f.Close()
		return
	}
	if err := l.f.Close(); err != nil {
		return
	}
}
