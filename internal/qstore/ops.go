package qstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"symriscv/internal/querycache"
)

// KeyStats aggregates one version key's share of the store.
type KeyStats struct {
	Key            string
	Segments       int
	Entries        int // valid records (duplicates across segments included)
	Distinct       int // distinct entry keys
	Sat            int
	Unsat          int
	CorruptRecords int
}

// StoreStats is the offline inventory behind symv cache stats.
type StoreStats struct {
	Dir             string
	Segments        int
	Bytes           int64
	CorruptSegments int
	Keys            []KeyStats // sorted by version key
}

// Issue describes one piece of damage or noteworthy state found by Verify.
type Issue struct {
	Segment string
	Kind    string // "corrupt-segment" | "corrupt-records"
	Detail  string
}

// scan walks every segment once, aggregating per-key statistics and
// reporting issues. It is the shared engine of Stats and Verify.
func (s *Store) scan(onIssue func(Issue)) (StoreStats, error) {
	st := StoreStats{Dir: s.dir}
	segs, err := s.segments()
	if err != nil {
		return st, err
	}
	type keyAgg struct {
		ks       KeyStats
		distinct map[string]struct{}
	}
	byKey := make(map[string]*keyAgg)
	keys := []string{}
	for _, name := range segs {
		path := filepath.Join(s.dir, name)
		fi, err := os.Stat(path)
		if err == nil {
			st.Bytes += fi.Size()
		}
		f, err := os.Open(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			st.CorruptSegments++
			if onIssue != nil {
				onIssue(Issue{Segment: name, Kind: "corrupt-segment", Detail: err.Error()})
			}
			continue
		}
		var sat, unsat int
		var segKeys []string
		key, records, corrupt, rerr := readSegment(f, "", func(pe querycache.PortableEntry) {
			if pe.Sat {
				sat++
			} else {
				unsat++
			}
			segKeys = append(segKeys, pe.Key)
		})
		if cerr := f.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			st.CorruptSegments++
			if onIssue != nil {
				onIssue(Issue{Segment: name, Kind: "corrupt-segment", Detail: rerr.Error()})
			}
			continue
		}
		st.Segments++
		agg := byKey[key]
		if agg == nil {
			agg = &keyAgg{ks: KeyStats{Key: key}, distinct: make(map[string]struct{})}
			byKey[key] = agg
			keys = append(keys, key)
		}
		agg.ks.Segments++
		agg.ks.Entries += records
		agg.ks.Sat += sat
		agg.ks.Unsat += unsat
		agg.ks.CorruptRecords += corrupt
		for _, ek := range segKeys {
			agg.distinct[ek] = struct{}{}
		}
		if corrupt > 0 && onIssue != nil {
			onIssue(Issue{Segment: name, Kind: "corrupt-records",
				Detail: fmt.Sprintf("%d damaged or truncated record(s) skipped", corrupt)})
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		agg := byKey[k]
		agg.ks.Distinct = len(agg.distinct)
		st.Keys = append(st.Keys, agg.ks)
	}
	return st, nil
}

// Stats inventories the store without modifying it.
func (s *Store) Stats() (StoreStats, error) {
	return s.scan(nil)
}

// Verify inventories the store and returns every integrity issue found.
// An empty issue list means every segment decoded end to end with every
// checksum passing.
func (s *Store) Verify() (StoreStats, []Issue, error) {
	var issues []Issue
	st, err := s.scan(func(is Issue) { issues = append(issues, is) })
	return st, issues, err
}

// GCResult describes one compaction.
type GCResult struct {
	SegmentsBefore    int
	SegmentsAfter     int
	EntriesBefore     int // valid records read (duplicates included)
	EntriesAfter      int // distinct entries kept
	DroppedCorrupt    int // damaged records left behind
	DroppedDuplicates int
	BytesBefore       int64
	BytesAfter        int64
}

// GC compacts the store: for each version key, every valid entry is
// collected, deduplicated, and rewritten as one segment; old segments (and
// any damage inside them) are removed. Runs under the exclusive write lock.
func (s *Store) GC() (GCResult, error) {
	var res GCResult
	lock, err := s.lock()
	if err != nil {
		return res, err
	}
	defer lock.unlock()

	segs, err := s.segments()
	if err != nil {
		return res, err
	}
	res.SegmentsBefore = len(segs)

	// Pass 1: collect every valid entry, deduplicated per version key.
	byKey := make(map[string][]querycache.PortableEntry)
	seen := make(map[string]struct{}) // key + "\x00" + entryKey
	keys := []string{}
	for _, name := range segs {
		path := filepath.Join(s.dir, name)
		if fi, err := os.Stat(path); err == nil {
			res.BytesBefore += fi.Size()
		}
		f, err := os.Open(path)
		if err != nil {
			continue // unreadable: removed below with everything else
		}
		var segEntries []querycache.PortableEntry
		key, records, corrupt, rerr := readSegment(f, "", func(pe querycache.PortableEntry) {
			segEntries = append(segEntries, pe)
		})
		if cerr := f.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
		if rerr != nil {
			continue // whole segment unreadable: its records are lost anyway
		}
		res.EntriesBefore += records
		res.DroppedCorrupt += corrupt
		if _, ok := byKey[key]; !ok {
			keys = append(keys, key)
			byKey[key] = nil
		}
		for _, pe := range segEntries {
			sk := key + "\x00" + pe.Key
			if _, dup := seen[sk]; dup {
				res.DroppedDuplicates++
				continue
			}
			seen[sk] = struct{}{}
			byKey[key] = append(byKey[key], pe)
		}
	}
	sort.Strings(keys)

	// Pass 2: publish one compacted segment per key, then remove everything
	// that isn't one of the new segments (old segments, temp leftovers).
	// persistLocked skips the flock — we already hold it.
	keep := make(map[string]struct{})
	for _, key := range keys {
		es := byKey[key]
		if len(es) == 0 {
			continue
		}
		sort.Slice(es, func(i, j int) bool { return es[i].Key < es[j].Key })
		name, err := s.persistLocked(key, es)
		if err != nil {
			return res, err
		}
		keep[name] = struct{}{}
		res.EntriesAfter += len(es)
	}
	for _, name := range segs {
		if _, ok := keep[name]; ok {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
			return res, fmt.Errorf("qstore: gc: %w", err)
		}
	}
	des, err := os.ReadDir(s.dir)
	if err == nil {
		for _, de := range des {
			if strings.HasPrefix(de.Name(), "tmp-seg-") {
				if err := os.Remove(filepath.Join(s.dir, de.Name())); err != nil && !os.IsNotExist(err) {
					return res, fmt.Errorf("qstore: gc: %w", err)
				}
			}
		}
	}
	res.SegmentsAfter = len(keep)
	for name := range keep {
		if fi, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
			res.BytesAfter += fi.Size()
		}
	}
	return res, nil
}

// DistilledVector is one selected witness of the regression corpus: a
// concrete input assignment and how many previously uncovered constraint
// sets it added when the greedy cover selected it.
type DistilledVector struct {
	Inputs map[string]uint64
	Covers int
}

// ReplayArgs renders the vector as symv replay arguments (name=0xVALUE,
// sorted by name).
func (v DistilledVector) ReplayArgs() string {
	names := make([]string, 0, len(v.Inputs))
	for n := range v.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=0x%x", n, v.Inputs[n])
	}
	return strings.Join(parts, " ")
}

// DistillResult is one version key's distilled corpus.
type DistillResult struct {
	Key       string
	Witnesses int // sat entries considered
	Universe  int // distinct satisfiable constraint-set fingerprints
	Vectors   []DistilledVector
}

// Distill reduces each version key's witnesses to a minimal regression
// corpus: the smallest greedy set of sat models such that every constraint
// set the campaign proved satisfiable is witnessed by at least one selected
// model. Selection is a deterministic greedy set cover over entry
// fingerprints — largest uncovered contribution first, ties broken by entry
// key — so the corpus is a pure function of the store contents. When
// onlyKey is non-empty, other version keys are skipped.
func (s *Store) Distill(onlyKey string) ([]DistillResult, error) {
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	type witness struct {
		entryKey string
		hashes   []uint64
		model    querycache.Model
	}
	byKey := make(map[string][]witness)
	seen := make(map[string]struct{})
	keys := []string{}
	for _, name := range segs {
		f, err := os.Open(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var segWitnesses []witness
		key, _, _, rerr := readSegment(f, onlyKey, func(pe querycache.PortableEntry) {
			if !pe.Sat {
				return
			}
			segWitnesses = append(segWitnesses, witness{entryKey: pe.Key, hashes: pe.Hashes, model: pe.Model})
		})
		if cerr := f.Close(); cerr != nil && rerr == nil {
			rerr = cerr
		}
		if rerr != nil || (onlyKey != "" && key != onlyKey) {
			continue
		}
		if _, ok := byKey[key]; !ok && len(segWitnesses) > 0 {
			keys = append(keys, key)
		}
		for _, w := range segWitnesses {
			if _, dup := seen[key+"\x00"+w.entryKey]; dup {
				continue
			}
			seen[key+"\x00"+w.entryKey] = struct{}{}
			byKey[key] = append(byKey[key], w)
		}
	}
	sort.Strings(keys)

	var out []DistillResult
	for _, key := range keys {
		ws := byKey[key]
		sort.Slice(ws, func(i, j int) bool { return ws[i].entryKey < ws[j].entryKey })
		res := DistillResult{Key: key, Witnesses: len(ws)}
		uncovered := make(map[uint64]struct{})
		for _, w := range ws {
			for _, h := range w.hashes {
				uncovered[h] = struct{}{}
			}
		}
		res.Universe = len(uncovered)
		remaining := append([]witness(nil), ws...)
		for len(uncovered) > 0 && len(remaining) > 0 {
			best, bestGain := -1, 0
			for i, w := range remaining {
				gain := 0
				for _, h := range w.hashes {
					if _, ok := uncovered[h]; ok {
						gain++
					}
				}
				// Strict > keeps the earliest (smallest entry key) on ties:
				// remaining stays sorted by entry key throughout.
				if gain > bestGain {
					best, bestGain = i, gain
				}
			}
			if best < 0 {
				break // every remaining witness is redundant
			}
			w := remaining[best]
			for _, h := range w.hashes {
				delete(uncovered, h)
			}
			remaining = append(remaining[:best], remaining[best+1:]...)
			inputs := make(map[string]uint64, len(w.model))
			for k, v := range w.model {
				inputs[k] = v
			}
			res.Vectors = append(res.Vectors, DistilledVector{Inputs: inputs, Covers: bestGain})
		}
		out = append(out, res)
	}
	return out, nil
}
