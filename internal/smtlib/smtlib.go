// Package smtlib implements a small SMT-LIB v2 front-end for the QF_BV
// solver: declarations, assertions, check-sat and model queries over the
// bit-vector operators the engine uses. It powers the bvsolve command and
// doubles as an end-to-end exerciser of the term/bit-blast/SAT stack.
package smtlib

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// sexp is either an atom (Atom != "") or a list.
type sexp struct {
	Atom string
	List []*sexp
}

func (s *sexp) isList() bool { return s.Atom == "" }

// tokenize splits SMT-LIB input into parens and atoms, dropping ; comments.
func tokenize(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		default:
			j := i
			for j < len(src) && !strings.ContainsRune("() \t\n\r;", rune(src[j])) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks
}

func parseAll(src string) ([]*sexp, error) {
	toks := tokenize(src)
	var out []*sexp
	pos := 0
	for pos < len(toks) {
		e, next, err := parseOne(toks, pos)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		pos = next
	}
	return out, nil
}

func parseOne(toks []string, pos int) (*sexp, int, error) {
	if pos >= len(toks) {
		return nil, pos, fmt.Errorf("smtlib: unexpected end of input")
	}
	switch toks[pos] {
	case "(":
		e := &sexp{}
		pos++
		for pos < len(toks) && toks[pos] != ")" {
			child, next, err := parseOne(toks, pos)
			if err != nil {
				return nil, pos, err
			}
			e.List = append(e.List, child)
			pos = next
		}
		if pos >= len(toks) {
			return nil, pos, fmt.Errorf("smtlib: missing closing paren")
		}
		return e, pos + 1, nil
	case ")":
		return nil, pos, fmt.Errorf("smtlib: unexpected )")
	default:
		return &sexp{Atom: toks[pos]}, pos + 1, nil
	}
}

// Interp executes SMT-LIB commands against one solver instance.
type Interp struct {
	ctx  *smt.Context
	sol  *solver.Solver
	vars map[string]*smt.Term
	// declared lists the var names in declaration order, so get-model never
	// depends on map iteration order.
	declared []string
	lets     []map[string]*smt.Term // let-binding scopes, innermost last
	out      io.Writer

	// Assertion stack for push/pop. The underlying solver's asserts are
	// permanent, so pop rebuilds a fresh solver from the surviving levels.
	levels [][]*smt.Term

	lastResult solver.Result
	checked    bool
}

// NewInterp returns an interpreter writing answers to out.
func NewInterp(out io.Writer) *Interp {
	ctx := smt.NewContext()
	return &Interp{
		ctx:    ctx,
		sol:    solver.New(ctx),
		vars:   make(map[string]*smt.Term),
		out:    out,
		levels: [][]*smt.Term{nil},
	}
}

// Run parses and executes a script. Execution stops at the first error or at
// (exit).
func (in *Interp) Run(src string) error {
	cmds, err := parseAll(src)
	if err != nil {
		return err
	}
	for _, cmd := range cmds {
		stop, err := in.exec(cmd)
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

func (in *Interp) exec(cmd *sexp) (stop bool, err error) {
	if !cmd.isList() || len(cmd.List) == 0 || cmd.List[0].isList() {
		return false, fmt.Errorf("smtlib: malformed command")
	}
	head := cmd.List[0].Atom
	args := cmd.List[1:]
	switch head {
	case "set-logic", "set-option", "set-info":
		return false, nil
	case "exit":
		return true, nil

	case "declare-const":
		if len(args) != 2 {
			return false, fmt.Errorf("smtlib: declare-const wants 2 arguments")
		}
		return false, in.declare(args[0], args[1])

	case "declare-fun":
		if len(args) != 3 || !args[1].isList() || len(args[1].List) != 0 {
			return false, fmt.Errorf("smtlib: only nullary declare-fun is supported")
		}
		return false, in.declare(args[0], args[2])

	case "assert":
		if len(args) != 1 {
			return false, fmt.Errorf("smtlib: assert wants 1 argument")
		}
		t, err := in.term(args[0])
		if err != nil {
			return false, err
		}
		if !t.IsBool() {
			return false, fmt.Errorf("smtlib: assert needs a Boolean term")
		}
		in.sol.Assert(t)
		top := len(in.levels) - 1
		in.levels[top] = append(in.levels[top], t)
		return false, nil

	case "push":
		in.levels = append(in.levels, nil)
		return false, nil

	case "pop":
		if len(in.levels) == 1 {
			return false, fmt.Errorf("smtlib: pop without matching push")
		}
		in.levels = in.levels[:len(in.levels)-1]
		// Rebuild the solver with the surviving assertions (terms are
		// interned in the shared context, so re-encoding is cheap).
		in.sol = solver.New(in.ctx)
		for _, level := range in.levels {
			for _, t := range level {
				in.sol.Assert(t)
			}
		}
		in.checked = false
		return false, nil

	case "check-sat":
		in.lastResult = in.sol.Check()
		in.checked = true
		fmt.Fprintln(in.out, in.lastResult)
		return false, nil

	case "get-model":
		if !in.checked || in.lastResult != solver.Sat {
			return false, fmt.Errorf("smtlib: get-model without a sat answer")
		}
		names := append([]string(nil), in.declared...)
		sort.Strings(names)
		fmt.Fprintln(in.out, "(")
		for _, n := range names {
			v := in.vars[n]
			val := in.sol.ModelValue(v)
			if v.IsBool() {
				fmt.Fprintf(in.out, "  (define-fun %s () Bool %v)\n", n, val != 0)
			} else {
				fmt.Fprintf(in.out, "  (define-fun %s () (_ BitVec %d) #x%0*x)\n",
					n, v.Width(), (v.Width()+3)/4, val)
			}
		}
		fmt.Fprintln(in.out, ")")
		return false, nil

	case "get-value":
		if !in.checked || in.lastResult != solver.Sat {
			return false, fmt.Errorf("smtlib: get-value without a sat answer")
		}
		if len(args) != 1 || !args[0].isList() {
			return false, fmt.Errorf("smtlib: get-value wants a term list")
		}
		fmt.Fprint(in.out, "(")
		for i, te := range args[0].List {
			t, err := in.term(te)
			if err != nil {
				return false, err
			}
			if i > 0 {
				fmt.Fprint(in.out, " ")
			}
			val := in.sol.ModelValue(t)
			if t.IsBool() {
				fmt.Fprintf(in.out, "(%s %v)", render(te), val != 0)
			} else {
				fmt.Fprintf(in.out, "(%s #x%0*x)", render(te), (t.Width()+3)/4, val)
			}
		}
		fmt.Fprintln(in.out, ")")
		return false, nil
	}
	return false, fmt.Errorf("smtlib: unsupported command %q", head)
}

func (in *Interp) declare(name, sortExp *sexp) error {
	if name.isList() {
		return fmt.Errorf("smtlib: bad declaration name")
	}
	if _, exists := in.vars[name.Atom]; exists {
		return fmt.Errorf("smtlib: %q already declared", name.Atom)
	}
	w, err := parseSort(sortExp)
	if err != nil {
		return err
	}
	if w == 0 {
		// Model Booleans as 1-bit vectors compared against 1.
		v := in.ctx.Var("bool!"+name.Atom, 1)
		in.vars[name.Atom] = in.ctx.Eq(v, in.ctx.BV(1, 1))
	} else {
		in.vars[name.Atom] = in.ctx.Var(name.Atom, w)
	}
	in.declared = append(in.declared, name.Atom)
	return nil
}

// parseSort returns the width of a (_ BitVec n) sort, or 0 for Bool.
func parseSort(e *sexp) (int, error) {
	if !e.isList() {
		if e.Atom == "Bool" {
			return 0, nil
		}
		return 0, fmt.Errorf("smtlib: unsupported sort %q", e.Atom)
	}
	if len(e.List) == 3 && e.List[0].Atom == "_" && e.List[1].Atom == "BitVec" {
		w, err := strconv.Atoi(e.List[2].Atom)
		if err != nil || w < 1 || w > smt.MaxWidth {
			return 0, fmt.Errorf("smtlib: bad bit-vector width")
		}
		return w, nil
	}
	return 0, fmt.Errorf("smtlib: unsupported sort")
}

func render(e *sexp) string {
	if !e.isList() {
		return e.Atom
	}
	parts := make([]string, len(e.List))
	for i, c := range e.List {
		parts[i] = render(c)
	}
	return "(" + strings.Join(parts, " ") + ")"
}

// term builds the smt term for an expression.
func (in *Interp) term(e *sexp) (*smt.Term, error) {
	ctx := in.ctx
	if !e.isList() {
		a := e.Atom
		switch {
		case a == "true":
			return ctx.True(), nil
		case a == "false":
			return ctx.False(), nil
		case strings.HasPrefix(a, "#x"):
			v, err := strconv.ParseUint(a[2:], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("smtlib: bad hex literal %q", a)
			}
			return ctx.BV(4*len(a[2:]), v), nil
		case strings.HasPrefix(a, "#b"):
			v, err := strconv.ParseUint(a[2:], 2, 64)
			if err != nil {
				return nil, fmt.Errorf("smtlib: bad binary literal %q", a)
			}
			return ctx.BV(len(a[2:]), v), nil
		default:
			for i := len(in.lets) - 1; i >= 0; i-- {
				if t, ok := in.lets[i][a]; ok {
					return t, nil
				}
			}
			if t, ok := in.vars[a]; ok {
				return t, nil
			}
			return nil, fmt.Errorf("smtlib: unknown symbol %q", a)
		}
	}

	if len(e.List) == 0 {
		return nil, fmt.Errorf("smtlib: empty expression")
	}

	// (let ((name expr) ...) body): bindings evaluate in the outer scope and
	// are visible only in the body.
	if e.List[0].Atom == "let" {
		if len(e.List) != 3 || !e.List[1].isList() {
			return nil, fmt.Errorf("smtlib: let wants a binding list and a body")
		}
		scope := make(map[string]*smt.Term)
		for _, b := range e.List[1].List {
			if !b.isList() || len(b.List) != 2 || b.List[0].isList() {
				return nil, fmt.Errorf("smtlib: malformed let binding")
			}
			t, err := in.term(b.List[1])
			if err != nil {
				return nil, err
			}
			scope[b.List[0].Atom] = t
		}
		in.lets = append(in.lets, scope)
		body, err := in.term(e.List[2])
		in.lets = in.lets[:len(in.lets)-1]
		return body, err
	}

	// (_ bvN w) literal.
	if e.List[0].Atom == "_" && len(e.List) == 3 && strings.HasPrefix(e.List[1].Atom, "bv") {
		v, err1 := strconv.ParseUint(e.List[1].Atom[2:], 10, 64)
		w, err2 := strconv.Atoi(e.List[2].Atom)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("smtlib: bad (_ bvN w) literal")
		}
		return ctx.BV(w, v), nil
	}

	// Indexed operators: ((_ extract hi lo) x) etc.
	if e.List[0].isList() && len(e.List[0].List) > 0 && e.List[0].List[0].Atom == "_" {
		idx := e.List[0].List
		if len(e.List) != 2 {
			return nil, fmt.Errorf("smtlib: indexed operator wants 1 argument")
		}
		x, err := in.term(e.List[1])
		if err != nil {
			return nil, err
		}
		switch idx[1].Atom {
		case "extract":
			hi, err1 := strconv.Atoi(idx[2].Atom)
			lo, err2 := strconv.Atoi(idx[3].Atom)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("smtlib: bad extract indices")
			}
			return ctx.Extract(x, hi, lo), nil
		case "zero_extend":
			n, err := strconv.Atoi(idx[2].Atom)
			if err != nil {
				return nil, err
			}
			return ctx.ZExt(x, x.Width()+n), nil
		case "sign_extend":
			n, err := strconv.Atoi(idx[2].Atom)
			if err != nil {
				return nil, err
			}
			return ctx.SExt(x, x.Width()+n), nil
		}
		return nil, fmt.Errorf("smtlib: unsupported indexed operator %q", idx[1].Atom)
	}

	op := e.List[0].Atom
	args := make([]*smt.Term, len(e.List)-1)
	for i, a := range e.List[1:] {
		t, err := in.term(a)
		if err != nil {
			return nil, err
		}
		args[i] = t
	}

	bin := func(f func(a, b *smt.Term) *smt.Term) (*smt.Term, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("smtlib: %s wants >= 2 arguments", op)
		}
		t := args[0]
		for _, a := range args[1:] {
			t = f(t, a)
		}
		return t, nil
	}
	un := func(f func(a *smt.Term) *smt.Term) (*smt.Term, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("smtlib: %s wants 1 argument", op)
		}
		return f(args[0]), nil
	}

	switch op {
	case "bvadd":
		return bin(ctx.Add)
	case "bvsub":
		return bin(ctx.Sub)
	case "bvmul":
		return bin(ctx.Mul)
	case "bvneg":
		return un(ctx.Neg)
	case "bvudiv":
		return bin2(args, op, ctx.UDiv)
	case "bvurem":
		return bin2(args, op, ctx.URem)
	case "bvand":
		return bin(ctx.And)
	case "bvor":
		return bin(ctx.Or)
	case "bvxor":
		return bin(ctx.Xor)
	case "bvnot":
		return un(ctx.Not)
	case "bvshl":
		return bin(ctx.Shl)
	case "bvlshr":
		return bin(ctx.Lshr)
	case "bvashr":
		return bin(ctx.Ashr)
	case "concat":
		return bin(ctx.Concat)
	case "=":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: = wants 2 arguments")
		}
		if args[0].IsBool() && args[1].IsBool() {
			return ctx.Iff(args[0], args[1]), nil
		}
		return ctx.Eq(args[0], args[1]), nil
	case "distinct":
		if len(args) != 2 {
			return nil, fmt.Errorf("smtlib: distinct wants 2 arguments")
		}
		return ctx.Ne(args[0], args[1]), nil
	case "bvult":
		return bin2(args, op, ctx.Ult)
	case "bvule":
		return bin2(args, op, ctx.Ule)
	case "bvugt":
		return bin2(args, op, ctx.Ugt)
	case "bvuge":
		return bin2(args, op, ctx.Uge)
	case "bvslt":
		return bin2(args, op, ctx.Slt)
	case "bvsle":
		return bin2(args, op, ctx.Sle)
	case "bvsgt":
		return bin2(args, op, ctx.Sgt)
	case "bvsge":
		return bin2(args, op, ctx.Sge)
	case "and":
		return bin(ctx.BAnd)
	case "or":
		return bin(ctx.BOr)
	case "xor":
		return bin(ctx.BXor)
	case "not":
		return un(ctx.BNot)
	case "=>":
		return bin2(args, op, ctx.Implies)
	case "ite":
		if len(args) != 3 {
			return nil, fmt.Errorf("smtlib: ite wants 3 arguments")
		}
		return ctx.Ite(args[0], args[1], args[2]), nil
	}
	return nil, fmt.Errorf("smtlib: unsupported operator %q", op)
}

func bin2(args []*smt.Term, op string, f func(a, b *smt.Term) *smt.Term) (*smt.Term, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("smtlib: %s wants 2 arguments", op)
	}
	return f(args[0], args[1]), nil
}
