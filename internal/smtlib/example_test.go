package smtlib_test

import (
	"os"

	"symriscv/internal/smtlib"
)

// Example solves a small bit-vector constraint system from SMT-LIB text.
func Example() {
	in := smtlib.NewInterp(os.Stdout)
	err := in.Run(`
		(set-logic QF_BV)
		(declare-const x (_ BitVec 8))
		(assert (= (bvmul x #x03) #x2d))
		(check-sat)
		(get-value (x))
	`)
	if err != nil {
		panic(err)
	}
	// Output:
	// sat
	// ((x #x0f))
}
