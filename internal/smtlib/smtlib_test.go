package smtlib

import (
	"strings"
	"testing"
)

func runScript(t *testing.T, src string) string {
	t.Helper()
	var out strings.Builder
	in := NewInterp(&out)
	if err := in.Run(src); err != nil {
		t.Fatalf("script failed: %v\noutput so far:\n%s", err, out.String())
	}
	return out.String()
}

func TestSatWithModel(t *testing.T) {
	out := runScript(t, `
		(set-logic QF_BV)
		(declare-const x (_ BitVec 8))
		(declare-const y (_ BitVec 8))
		(assert (= (bvadd x y) #x64))
		(assert (bvult x #x0a))
		(check-sat)
		(get-model)
	`)
	if !strings.Contains(out, "sat") {
		t.Fatalf("expected sat:\n%s", out)
	}
	if !strings.Contains(out, "define-fun x () (_ BitVec 8)") {
		t.Fatalf("missing model for x:\n%s", out)
	}
}

func TestUnsat(t *testing.T) {
	out := runScript(t, `
		(declare-const x (_ BitVec 16))
		(assert (bvult x (_ bv5 16)))
		(assert (bvugt x (_ bv200 16)))
		(check-sat)
	`)
	if strings.TrimSpace(out) != "unsat" {
		t.Fatalf("expected unsat, got %q", out)
	}
}

func TestOperatorsEndToEnd(t *testing.T) {
	// A handful of identities that must be valid (their negation unsat).
	identities := []string{
		"(= (bvadd x y) (bvadd y x))",
		"(= (bvand x x) x)",
		"(= (bvxor x x) #x00000000)",
		"(= (bvsub x y) (bvadd x (bvneg y)))",
		"(= (bvshl x (_ bv1 32)) (bvadd x x))",
		"(= ((_ zero_extend 16) ((_ extract 15 0) x)) (bvand x #x0000ffff))",
		"(= (bvnot x) (bvxor x #xffffffff))",
		"(=> (bvult x y) (bvule x y))",
		"(= (ite (bvult x y) x y) (ite (bvuge x y) y x))",
		"(= (concat ((_ extract 31 16) x) ((_ extract 15 0) x)) x)",
	}
	for _, id := range identities {
		out := runScript(t, `
			(declare-const x (_ BitVec 32))
			(declare-const y (_ BitVec 32))
			(assert (not `+id+`))
			(check-sat)
		`)
		if strings.TrimSpace(out) != "unsat" {
			t.Errorf("identity %s: got %q", id, out)
		}
	}
}

func TestSignedComparisons(t *testing.T) {
	out := runScript(t, `
		(declare-const x (_ BitVec 8))
		(assert (bvslt x #x00))
		(assert (bvsgt x #x80))
		(check-sat)
		(get-value (x))
	`)
	if !strings.Contains(out, "sat") || !strings.Contains(out, "(x #x") {
		t.Fatalf("signed range query failed:\n%s", out)
	}
}

func TestBoolDeclarations(t *testing.T) {
	out := runScript(t, `
		(declare-const p Bool)
		(declare-const q Bool)
		(assert (and p (not q)))
		(check-sat)
		(get-model)
	`)
	if !strings.Contains(out, "sat") {
		t.Fatalf("bool script failed:\n%s", out)
	}
	if !strings.Contains(out, "(define-fun p () Bool true)") ||
		!strings.Contains(out, "(define-fun q () Bool false)") {
		t.Fatalf("bool model wrong:\n%s", out)
	}
}

func TestIncrementalAsserts(t *testing.T) {
	var out strings.Builder
	in := NewInterp(&out)
	if err := in.Run(`
		(declare-const x (_ BitVec 8))
		(assert (bvugt x #x10))
		(check-sat)
		(assert (bvult x #x05))
		(check-sat)
	`); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(out.String())
	if len(lines) != 2 || lines[0] != "sat" || lines[1] != "unsat" {
		t.Fatalf("incremental answers = %v", lines)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"(assert",
		"(frobnicate x)",
		"(assert (bvadd x))",
		"(declare-const x (_ BitVec 99))",
		"(declare-const x (_ BitVec 8)) (declare-const x (_ BitVec 8))",
		"(assert (= x y))",
		"(get-model)",
	} {
		var out strings.Builder
		if err := NewInterp(&out).Run(src); err == nil {
			t.Errorf("script %q should fail", src)
		}
	}
}

func TestComments(t *testing.T) {
	out := runScript(t, `
		; a comment
		(declare-const x (_ BitVec 4)) ; trailing
		(assert (= x #b1010))
		(check-sat)
		(get-value (x))
	`)
	if !strings.Contains(out, "(x #xa)") {
		t.Fatalf("binary literal/comment handling broken:\n%s", out)
	}
}

func TestExitStopsExecution(t *testing.T) {
	out := runScript(t, `
		(declare-const x (_ BitVec 8))
		(check-sat)
		(exit)
		(frobnicate)
	`)
	if !strings.Contains(out, "sat") {
		t.Fatal("check-sat before exit did not run")
	}
}

func TestDivisionOperators(t *testing.T) {
	out := runScript(t, `
		(declare-const x (_ BitVec 8))
		(assert (= (bvudiv x #x03) #x14))
		(assert (= (bvurem x #x03) #x02))
		(check-sat)
		(get-value (x))
	`)
	if !strings.Contains(out, "sat") || !strings.Contains(out, "(x #x3e)") {
		t.Fatalf("division query failed:\n%s", out) // 0x3e = 62 = 3*20+2
	}
	out = runScript(t, `
		(declare-const x (_ BitVec 8))
		(assert (distinct (bvudiv x #x00) #xff))
		(check-sat)
	`)
	if strings.TrimSpace(out) != "unsat" {
		t.Fatalf("division-by-zero semantics: got %q", out)
	}
}

func TestLetBindings(t *testing.T) {
	out := runScript(t, `
		(declare-const x (_ BitVec 8))
		(assert (let ((y (bvadd x #x01)) (z #x02))
		          (= (bvmul y z) #x0a)))
		(check-sat)
		(get-value (x))
	`)
	if !strings.Contains(out, "(x #x04)") { // (4+1)*2 = 10
		t.Fatalf("let evaluation wrong:\n%s", out)
	}
	// Shadowing: inner binding wins, outer restored afterwards.
	out = runScript(t, `
		(declare-const x (_ BitVec 8))
		(assert (= (let ((x #x05)) (let ((x (bvadd x #x01))) x)) #x06))
		(check-sat)
	`)
	if !strings.Contains(out, "sat") {
		t.Fatalf("let shadowing broken:\n%s", out)
	}
	// Malformed lets fail.
	var sink strings.Builder
	if err := NewInterp(&sink).Run(`(assert (let ((x)) true))`); err == nil {
		t.Error("malformed let should fail")
	}
}

func TestPushPop(t *testing.T) {
	out := runScript(t, `
		(declare-const x (_ BitVec 8))
		(assert (bvugt x #x10))
		(push)
		(assert (bvult x #x05))
		(check-sat)
		(pop)
		(check-sat)
	`)
	answers := strings.Fields(out)
	if len(answers) != 2 || answers[0] != "unsat" || answers[1] != "sat" {
		t.Fatalf("push/pop answers = %v", answers)
	}
	var sink strings.Builder
	if err := NewInterp(&sink).Run(`(pop)`); err == nil {
		t.Error("pop without push should fail")
	}
}
