package smt

import "fmt"

// Env supplies concrete values for variables during evaluation.
type Env interface {
	// Lookup returns the value of the named variable at the given width.
	Lookup(name string, width int) (uint64, bool)
}

// MapEnv is an Env backed by a map from variable name to value.
type MapEnv map[string]uint64

// Lookup implements Env.
func (m MapEnv) Lookup(name string, _ int) (uint64, bool) {
	v, ok := m[name]
	return v, ok
}

// Eval computes the concrete value of t under env. Bit-vector results are in
// the low Width() bits; Boolean results are 0 or 1. It returns an error if a
// variable has no binding.
//
// Eval is used by property-based tests to cross-check the bit-blaster and by
// the verification harness to confirm counterexamples by concrete replay.
func Eval(t *Term, env Env) (uint64, error) {
	cache := make(map[*Term]uint64)
	return eval(t, env, cache)
}

func eval(t *Term, env Env, cache map[*Term]uint64) (uint64, error) {
	if v, ok := cache[t]; ok {
		return v, nil
	}
	var args [3]uint64
	for i := 0; i < t.NumArgs(); i++ {
		v, err := eval(t.Arg(i), env, cache)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	w := t.Width()
	var v uint64
	switch t.Kind() {
	case KConst:
		v = t.val
	case KVar:
		x, ok := env.Lookup(t.name, w)
		if !ok {
			return 0, fmt.Errorf("smt: eval: unbound variable %q", t.name)
		}
		v = x & mask(w)
	case KAdd:
		v = (args[0] + args[1]) & mask(w)
	case KSub:
		v = (args[0] - args[1]) & mask(w)
	case KMul:
		v = (args[0] * args[1]) & mask(w)
	case KNeg:
		v = (-args[0]) & mask(w)
	case KUDiv:
		v = udivVals(args[0], args[1], w)
	case KURem:
		v = uremVals(args[0], args[1])
	case KAnd:
		v = args[0] & args[1]
	case KOr:
		v = args[0] | args[1]
	case KXor:
		v = args[0] ^ args[1]
	case KNot:
		v = ^args[0] & mask(w)
	case KShl:
		if args[1] >= uint64(w) {
			v = 0
		} else {
			v = (args[0] << args[1]) & mask(w)
		}
	case KLshr:
		if args[1] >= uint64(w) {
			v = 0
		} else {
			v = args[0] >> args[1]
		}
	case KAshr:
		sh := args[1]
		if sh >= uint64(w) {
			if SignBit(args[0], w) {
				v = mask(w)
			} else {
				v = 0
			}
		} else {
			v = (SignExt(args[0], w) >> sh) & mask(w)
		}
	case KConcat:
		v = args[0]<<uint(t.Arg(1).Width()) | args[1]
	case KExtract:
		_, lo := t.ExtractBounds()
		v = (args[0] >> uint(lo)) & mask(w)
	case KZExt:
		v = args[0]
	case KSExt:
		v = SignExt(args[0], t.Arg(0).Width()) & mask(w)
	case KIte:
		if args[0] != 0 {
			v = args[1]
		} else {
			v = args[2]
		}
	case KTrue:
		v = 1
	case KFalse:
		v = 0
	case KEq:
		v = b2u(args[0] == args[1])
	case KUlt:
		v = b2u(args[0] < args[1])
	case KUle:
		v = b2u(args[0] <= args[1])
	case KSlt:
		aw := t.Arg(0).Width()
		v = b2u(int64(SignExt(args[0], aw)) < int64(SignExt(args[1], aw)))
	case KSle:
		aw := t.Arg(0).Width()
		v = b2u(int64(SignExt(args[0], aw)) <= int64(SignExt(args[1], aw)))
	case KBAnd:
		v = args[0] & args[1]
	case KBOr:
		v = args[0] | args[1]
	case KBXor:
		v = args[0] ^ args[1]
	case KBNot:
		v = args[0] ^ 1
	default:
		return 0, fmt.Errorf("smt: eval: unsupported kind %v", t.Kind())
	}
	cache[t] = v
	return v, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Evaluator evaluates many terms under one fixed environment, keeping the
// per-term value cache alive between calls. Terms along one exploration path
// share most of their DAG, so evaluating a stream of path constraints with
// an Evaluator costs each DAG node once, where repeated Eval calls would
// re-walk the shared structure every time. The environment must not change
// behind the Evaluator's back.
type Evaluator struct {
	env   Env
	cache map[*Term]uint64
}

// NewEvaluator returns an evaluator over the fixed environment env.
func NewEvaluator(env Env) *Evaluator {
	return &Evaluator{env: env, cache: make(map[*Term]uint64, 64)}
}

// Eval computes the concrete value of t, memoized across calls.
func (e *Evaluator) Eval(t *Term) (uint64, error) {
	return eval(t, e.env, e.cache)
}

// EvalBool evaluates a Boolean term, memoized across calls.
func (e *Evaluator) EvalBool(t *Term) (bool, error) {
	if !t.IsBool() {
		return false, fmt.Errorf("smt: EvalBool on bit-vector term")
	}
	v, err := eval(t, e.env, e.cache)
	return v != 0, err
}

// EvalBool evaluates a Boolean term under env.
func EvalBool(t *Term, env Env) (bool, error) {
	if !t.IsBool() {
		return false, fmt.Errorf("smt: EvalBool on bit-vector term")
	}
	v, err := Eval(t, env)
	return v != 0, err
}
