package smt

import (
	"testing"
	"testing/quick"
)

func TestHashConsing(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 32)
	y := c.Var("y", 32)
	if c.Var("x", 32) != x {
		t.Fatal("same variable not interned")
	}
	if c.Add(x, y) != c.Add(x, y) {
		t.Fatal("identical terms not interned")
	}
	if c.Add(x, y) != c.Add(y, x) {
		t.Fatal("commutative operands not canonicalised")
	}
	if c.BV(8, 0x1ff).ConstVal() != 0xff {
		t.Fatal("constant not masked to width")
	}
	if c.Sub(x, y) == c.Sub(y, x) {
		t.Fatal("non-commutative operands wrongly merged")
	}
}

func TestVarRedeclarePanics(t *testing.T) {
	c := NewContext()
	c.Var("v", 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width-changing redeclaration")
		}
	}()
	c.Var("v", 16)
}

func TestWidthMismatchPanics(t *testing.T) {
	c := NewContext()
	a := c.Var("a", 8)
	b := c.Var("b", 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width mismatch")
		}
	}()
	c.Add(a, b)
}

func TestConstantFolding(t *testing.T) {
	c := NewContext()
	cases := []struct {
		got  *Term
		want uint64
	}{
		{c.Add(c.BV(8, 200), c.BV(8, 100)), 44},
		{c.Sub(c.BV(8, 1), c.BV(8, 2)), 255},
		{c.Mul(c.BV(8, 16), c.BV(8, 17)), 16},
		{c.Neg(c.BV(8, 1)), 255},
		{c.And(c.BV(8, 0xf0), c.BV(8, 0x3c)), 0x30},
		{c.Or(c.BV(8, 0xf0), c.BV(8, 0x0c)), 0xfc},
		{c.Xor(c.BV(8, 0xff), c.BV(8, 0x0f)), 0xf0},
		{c.Not(c.BV(8, 0x0f)), 0xf0},
		{c.Shl(c.BV(8, 1), c.BV(8, 7)), 0x80},
		{c.Shl(c.BV(8, 1), c.BV(8, 8)), 0},
		{c.Lshr(c.BV(8, 0x80), c.BV(8, 7)), 1},
		{c.Ashr(c.BV(8, 0x80), c.BV(8, 7)), 0xff},
		{c.Ashr(c.BV(8, 0x40), c.BV(8, 7)), 0},
		{c.Ashr(c.BV(8, 0x80), c.BV(8, 200)), 0xff},
		{c.Concat(c.BV(8, 0xab), c.BV(8, 0xcd)), 0xabcd},
		{c.Extract(c.BV(16, 0xabcd), 11, 4), 0xbc},
		{c.ZExt(c.BV(8, 0x80), 16), 0x80},
		{c.SExt(c.BV(8, 0x80), 16), 0xff80},
		{c.SExt(c.BV(8, 0x7f), 16), 0x7f},
	}
	for i, tc := range cases {
		if !tc.got.IsConst() {
			t.Errorf("case %d: got non-constant %v", i, tc.got)
			continue
		}
		if tc.got.ConstVal() != tc.want {
			t.Errorf("case %d: got %#x want %#x", i, tc.got.ConstVal(), tc.want)
		}
	}
}

func TestBoolFolding(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 32)
	y := c.Var("y", 32)
	p := c.Ult(x, y)

	if c.Eq(x, x) != c.True() {
		t.Error("Eq(x,x) != true")
	}
	if c.Ult(x, x) != c.False() {
		t.Error("Ult(x,x) != false")
	}
	if c.Ult(x, c.BV(32, 0)) != c.False() {
		t.Error("Ult(x,0) != false")
	}
	if c.Ule(c.BV(32, 0), x) != c.True() {
		t.Error("Ule(0,x) != true")
	}
	if c.BAnd(p, c.BNot(p)) != c.False() {
		t.Error("p && !p != false")
	}
	if c.BOr(p, c.BNot(p)) != c.True() {
		t.Error("p || !p != true")
	}
	if c.BNot(c.BNot(p)) != p {
		t.Error("double negation not removed")
	}
	if c.Ite(c.True(), x, y) != x || c.Ite(c.False(), x, y) != y {
		t.Error("ite on constant condition not folded")
	}
	if c.Ite(p, x, x) != x {
		t.Error("ite with equal branches not folded")
	}
	if c.Ite(p, c.True(), c.False()) != p {
		t.Error("boolean ite(p,true,false) != p")
	}
	if c.Ite(p, c.False(), c.True()) != c.BNot(p) {
		t.Error("boolean ite(p,false,true) != !p")
	}
}

func TestExtractSimplifications(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 32)
	y := c.Var("y", 8)

	if c.Extract(x, 31, 0) != x {
		t.Error("full-width extract should be identity")
	}
	// Nested extract composition.
	inner := c.Extract(x, 23, 8) // 16 bits
	if got, want := c.Extract(inner, 11, 4), c.Extract(x, 19, 12); got != want {
		t.Errorf("nested extract: got %v want %v", got, want)
	}
	// Extract within one side of a concat.
	cc := c.Concat(y, c.Extract(x, 15, 0))
	if got, want := c.Extract(cc, 7, 0), c.Extract(x, 7, 0); got != want {
		t.Errorf("extract low of concat: got %v want %v", got, want)
	}
	if got, want := c.Extract(cc, 23, 16), y; got != want {
		t.Errorf("extract high of concat: got %v want %v", got, want)
	}
	// Extract inside padding of zext is zero.
	z := c.ZExt(y, 32)
	if got := c.Extract(z, 31, 8); !got.IsConst() || got.ConstVal() != 0 {
		t.Errorf("extract of zext padding: got %v", got)
	}
	if got, want := c.Extract(z, 7, 0), y; got != want {
		t.Errorf("extract of zext body: got %v want %v", got, want)
	}
}

// evalBin builds op(x,y) at width 32 over fresh variables and evaluates it.
func evalBin(t *testing.T, build func(c *Context, x, y *Term) *Term, xv, yv uint64) uint64 {
	t.Helper()
	c := NewContext()
	x := c.Var("x", 32)
	y := c.Var("y", 32)
	term := build(c, x, y)
	got, err := Eval(term, MapEnv{"x": xv, "y": yv})
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return got
}

func TestEvalMatchesGoSemantics(t *testing.T) {
	type binCase struct {
		name  string
		build func(c *Context, x, y *Term) *Term
		gold  func(x, y uint32) uint32
	}
	cases := []binCase{
		{"add", func(c *Context, x, y *Term) *Term { return c.Add(x, y) }, func(x, y uint32) uint32 { return x + y }},
		{"sub", func(c *Context, x, y *Term) *Term { return c.Sub(x, y) }, func(x, y uint32) uint32 { return x - y }},
		{"mul", func(c *Context, x, y *Term) *Term { return c.Mul(x, y) }, func(x, y uint32) uint32 { return x * y }},
		{"and", func(c *Context, x, y *Term) *Term { return c.And(x, y) }, func(x, y uint32) uint32 { return x & y }},
		{"or", func(c *Context, x, y *Term) *Term { return c.Or(x, y) }, func(x, y uint32) uint32 { return x | y }},
		{"xor", func(c *Context, x, y *Term) *Term { return c.Xor(x, y) }, func(x, y uint32) uint32 { return x ^ y }},
		{"shl", func(c *Context, x, y *Term) *Term { return c.Shl(x, c.And(y, c.BV(32, 31))) },
			func(x, y uint32) uint32 { return x << (y & 31) }},
		{"lshr", func(c *Context, x, y *Term) *Term { return c.Lshr(x, c.And(y, c.BV(32, 31))) },
			func(x, y uint32) uint32 { return x >> (y & 31) }},
		{"ashr", func(c *Context, x, y *Term) *Term { return c.Ashr(x, c.And(y, c.BV(32, 31))) },
			func(x, y uint32) uint32 { return uint32(int32(x) >> (y & 31)) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := func(x, y uint32) bool {
				got := evalBin(t, tc.build, uint64(x), uint64(y))
				return got == uint64(tc.gold(x, y))
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEvalComparisons(t *testing.T) {
	f := func(x, y uint32) bool {
		c := NewContext()
		tx := c.Var("x", 32)
		ty := c.Var("y", 32)
		env := MapEnv{"x": uint64(x), "y": uint64(y)}
		checks := []struct {
			term *Term
			want bool
		}{
			{c.Eq(tx, ty), x == y},
			{c.Ult(tx, ty), x < y},
			{c.Ule(tx, ty), x <= y},
			{c.Slt(tx, ty), int32(x) < int32(y)},
			{c.Sle(tx, ty), int32(x) <= int32(y)},
			{c.Ugt(tx, ty), x > y},
			{c.Sge(tx, ty), int32(x) >= int32(y)},
		}
		for _, ch := range checks {
			got, err := EvalBool(ch.term, env)
			if err != nil || got != ch.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSimplifierSoundness checks that aggressive constructor rewrites never
// change the meaning of a composed expression, by evaluating a randomly
// parameterised deep expression against a straightforward Go computation.
func TestSimplifierSoundness(t *testing.T) {
	f := func(x, y, z uint32, k uint8) bool {
		c := NewContext()
		tx, ty, tz := c.Var("x", 32), c.Var("y", 32), c.Var("z", 32)
		kc := c.BV(32, uint64(k&31))

		// ((x + y) ^ (z << k)) - (x & ~y), compared via Slt against z.
		e := c.Sub(
			c.Xor(c.Add(tx, ty), c.Shl(tz, kc)),
			c.And(tx, c.Not(ty)),
		)
		cond := c.Slt(e, tz)

		env := MapEnv{"x": uint64(x), "y": uint64(y), "z": uint64(z)}
		got, err := EvalBool(cond, env)
		if err != nil {
			return false
		}
		gold := int32((x+y)^(z<<(k&31))-(x & ^y)) < int32(z)
		return got == gold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEvalUnboundVariable(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 32)
	if _, err := Eval(x, MapEnv{}); err == nil {
		t.Fatal("expected error for unbound variable")
	}
}

func TestStringOutput(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	got := c.Add(x, c.BV(8, 0xff)).String()
	want := "(bvadd x #xff)"
	if got != want {
		t.Errorf("String: got %q want %q", got, want)
	}
	if s := c.Extract(x, 6, 2).String(); s != "((_ extract 6 2) x)" {
		t.Errorf("extract String: got %q", s)
	}
	if s := c.True().String(); s != "true" {
		t.Errorf("true String: got %q", s)
	}
}

func TestFreshVarUnique(t *testing.T) {
	c := NewContext()
	a := c.FreshVar("tmp", 8)
	b := c.FreshVar("tmp", 8)
	if a == b {
		t.Fatal("FreshVar returned the same variable twice")
	}
	if len(c.Vars()) != 2 {
		t.Fatalf("Vars: got %d want 2", len(c.Vars()))
	}
}

func TestBoolToBV(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 32)
	y := c.Var("y", 32)
	b := c.BoolToBV(c.Ult(x, y))
	v, err := Eval(b, MapEnv{"x": 1, "y": 2})
	if err != nil || v != 1 {
		t.Fatalf("BoolToBV true case: %d, %v", v, err)
	}
	v, err = Eval(b, MapEnv{"x": 2, "y": 1})
	if err != nil || v != 0 {
		t.Fatalf("BoolToBV false case: %d, %v", v, err)
	}
}

func TestUDivURemSemantics(t *testing.T) {
	f := func(x, y uint32) bool {
		c := NewContext()
		tx := c.Var("x", 32)
		ty := c.Var("y", 32)
		env := MapEnv{"x": uint64(x), "y": uint64(y)}
		q, err1 := Eval(c.UDiv(tx, ty), env)
		r, err2 := Eval(c.URem(tx, ty), env)
		if err1 != nil || err2 != nil {
			return false
		}
		if y == 0 {
			return q == 0xffffffff && r == uint64(x)
		}
		return q == uint64(x/y) && r == uint64(x%y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Constant folding.
	c := NewContext()
	if got := c.UDiv(c.BV(8, 200), c.BV(8, 0)); got.ConstVal() != 0xff {
		t.Errorf("udiv by zero folds to %#x", got.ConstVal())
	}
	if got := c.URem(c.BV(8, 200), c.BV(8, 0)); got.ConstVal() != 200 {
		t.Errorf("urem by zero folds to %d", got.ConstVal())
	}
	if got := c.UDiv(c.Var("z", 8), c.BV(8, 1)); got != c.Var("z", 8) {
		t.Error("x / 1 should fold to x")
	}
	if got := c.URem(c.Var("z", 8), c.BV(8, 1)); !got.IsConst() || got.ConstVal() != 0 {
		t.Error("x % 1 should fold to 0")
	}
}

func TestConstantChainFolding(t *testing.T) {
	c := NewContext()
	x := c.Var("ccx", 32)

	// (x + 4) + 8 folds to x + 12.
	got := c.Add(c.Add(x, c.BV(32, 4)), c.BV(32, 8))
	want := c.Add(x, c.BV(32, 12))
	if got != want {
		t.Errorf("add chain: %v vs %v", got, want)
	}
	// (x + 4) - 8 folds to x + (-4).
	got = c.Sub(c.Add(x, c.BV(32, 4)), c.BV(32, 8))
	want = c.Add(x, c.BV(32, 0xfffffffc))
	if got != want {
		t.Errorf("sub chain: %v vs %v", got, want)
	}
	// (x + 4) == 12 folds to x == 8.
	gotB := c.Eq(c.Add(x, c.BV(32, 4)), c.BV(32, 12))
	wantB := c.Eq(x, c.BV(32, 8))
	if gotB != wantB {
		t.Errorf("eq shift: %v vs %v", gotB, wantB)
	}
}

// TestChainFoldingSoundness re-validates the new rewrites against concrete
// evaluation on random inputs.
func TestChainFoldingSoundness(t *testing.T) {
	f := func(x, c1, c2 uint32) bool {
		c := NewContext()
		tx := c.Var("x", 32)
		env := MapEnv{"x": uint64(x)}
		e1 := c.Add(c.Add(tx, c.BV(32, uint64(c1))), c.BV(32, uint64(c2)))
		v1, err1 := Eval(e1, env)
		e2 := c.Sub(c.Add(tx, c.BV(32, uint64(c1))), c.BV(32, uint64(c2)))
		v2, err2 := Eval(e2, env)
		eq := c.Eq(c.Add(tx, c.BV(32, uint64(c1))), c.BV(32, uint64(c2)))
		b, err3 := EvalBool(eq, env)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return v1 == uint64(x+c1+c2) && v2 == uint64(x+c1-c2) && b == (x+c1 == c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
