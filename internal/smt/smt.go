// Package smt implements a hash-consed term language for the quantifier-free
// theory of fixed-width bit-vectors (QF_BV) plus Booleans.
//
// Terms are immutable and interned per Context: structurally equal terms are
// pointer-equal, so syntactic equality checks are O(1) pointer compares and
// downstream consumers (the bit-blaster, the symbolic execution engine) can
// cache per-term results by identity.
//
// A Context is not safe for concurrent use; each symbolic exploration owns
// one Context.
package smt

import "fmt"

// Kind identifies the operator of a Term.
type Kind uint8

// Term kinds. Bit-vector terms have width >= 1; Boolean terms have width 0.
const (
	KInvalid Kind = iota

	// Leaves.
	KConst // bit-vector constant (Val holds the value)
	KVar   // named bit-vector variable

	// Bit-vector arithmetic.
	KAdd
	KSub
	KMul
	KNeg
	KUDiv // SMT-LIB semantics: x / 0 = all-ones
	KURem // SMT-LIB semantics: x % 0 = x

	// Bit-vector bitwise.
	KAnd
	KOr
	KXor
	KNot

	// Shifts. The shift amount is the second argument, same width.
	KShl
	KLshr
	KAshr

	// Structural.
	KConcat  // args[0] is the high part, args[1] the low part
	KExtract // bits hi..lo of args[0]; Val packs hi<<8|lo
	KZExt    // zero-extend args[0] to width
	KSExt    // sign-extend args[0] to width
	KIte     // args[0] Bool condition, args[1]/args[2] same-width results

	// Boolean leaves.
	KTrue
	KFalse

	// Atoms (bit-vector relations producing Bool).
	KEq
	KUlt
	KUle
	KSlt
	KSle

	// Boolean connectives.
	KBAnd
	KBOr
	KBXor
	KBNot
)

var kindNames = [...]string{
	KInvalid: "invalid",
	KConst:   "const", KVar: "var",
	KAdd: "bvadd", KSub: "bvsub", KMul: "bvmul", KNeg: "bvneg",
	KUDiv: "bvudiv", KURem: "bvurem",
	KAnd: "bvand", KOr: "bvor", KXor: "bvxor", KNot: "bvnot",
	KShl: "bvshl", KLshr: "bvlshr", KAshr: "bvashr",
	KConcat: "concat", KExtract: "extract", KZExt: "zext", KSExt: "sext",
	KIte:  "ite",
	KTrue: "true", KFalse: "false",
	KEq: "=", KUlt: "bvult", KUle: "bvule", KSlt: "bvslt", KSle: "bvsle",
	KBAnd: "and", KBOr: "or", KBXor: "xor", KBNot: "not",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MaxWidth is the largest supported bit-vector width.
const MaxWidth = 64

// Term is an immutable, interned bit-vector or Boolean expression.
type Term struct {
	id    uint32
	kind  Kind
	width uint8 // 0 for Bool terms
	val   uint64
	name  string
	args  [3]*Term
	nargs uint8
}

// ID returns the Context-unique identifier of the term. IDs are dense and
// start at 1, which makes them convenient slice indices for caches.
func (t *Term) ID() uint32 { return t.id }

// Kind returns the operator kind.
func (t *Term) Kind() Kind { return t.kind }

// Width returns the bit-vector width, or 0 for a Boolean term.
func (t *Term) Width() int { return int(t.width) }

// IsBool reports whether the term has Boolean sort.
func (t *Term) IsBool() bool { return t.width == 0 }

// NumArgs returns the number of operand terms.
func (t *Term) NumArgs() int { return int(t.nargs) }

// Arg returns the i-th operand term.
func (t *Term) Arg(i int) *Term { return t.args[i] }

// Name returns the variable name; it is empty for non-variable terms.
func (t *Term) Name() string { return t.name }

// IsConst reports whether the term is a bit-vector constant.
func (t *Term) IsConst() bool { return t.kind == KConst }

// ConstVal returns the value of a KConst term. It panics on other kinds.
func (t *Term) ConstVal() uint64 {
	if t.kind != KConst {
		panic("smt: ConstVal on non-constant term")
	}
	return t.val
}

// IsBoolConst reports whether the term is the constant true or false,
// returning its value in the second result.
func (t *Term) IsBoolConst() (val, ok bool) {
	switch t.kind {
	case KTrue:
		return true, true
	case KFalse:
		return false, true
	}
	return false, false
}

// ExtractBounds returns the hi and lo bit positions of a KExtract term.
func (t *Term) ExtractBounds() (hi, lo int) {
	if t.kind != KExtract {
		panic("smt: ExtractBounds on non-extract term")
	}
	return int(t.val >> 8), int(t.val & 0xff)
}

type key struct {
	kind       Kind
	width      uint8
	val        uint64
	name       string
	a0, a1, a2 uint32
}

// Context owns and interns terms.
type Context struct {
	table      map[key]*Term
	terms      []*Term // index = id-1
	tTrue      *Term
	tFalse     *Term
	fresh      uint64 // counter for FreshVar names
	vars       []*Term
	varsByName map[string]*Term

	noExtRewrites bool     // disables the extended rules in rewrite.go
	rewriteHits   uint64   // extended rewrite rule applications
	hashMemo      []uint64 // StructuralHash memo, indexed by term ID-1
}

// NewContext returns an empty term context.
func NewContext() *Context {
	c := &Context{
		table:      make(map[key]*Term, 1024),
		varsByName: make(map[string]*Term),
	}
	c.tTrue = c.mk(key{kind: KTrue}, nil)
	c.tFalse = c.mk(key{kind: KFalse}, nil)
	return c
}

// NumTerms returns the number of distinct terms interned so far.
func (c *Context) NumTerms() int { return len(c.terms) }

// TermByID returns the term with the given ID (1-based), or nil.
func (c *Context) TermByID(id uint32) *Term {
	if id == 0 || int(id) > len(c.terms) {
		return nil
	}
	return c.terms[id-1]
}

// Vars returns all variable terms created in this context, in creation order.
func (c *Context) Vars() []*Term { return c.vars }

func (c *Context) mk(k key, args []*Term) *Term {
	if t, ok := c.table[k]; ok {
		return t
	}
	t := &Term{
		id:    uint32(len(c.terms) + 1),
		kind:  k.kind,
		width: k.width,
		val:   k.val,
		name:  k.name,
		nargs: uint8(len(args)),
	}
	copy(t.args[:], args)
	c.table[k] = t
	c.terms = append(c.terms, t)
	if k.kind == KVar {
		c.vars = append(c.vars, t)
		c.varsByName[k.name] = t
	}
	return t
}

func (c *Context) mk0(kind Kind, width int, val uint64) *Term {
	return c.mk(key{kind: kind, width: uint8(width), val: val}, nil)
}

func (c *Context) mk1(kind Kind, width int, val uint64, a *Term) *Term {
	return c.mk(key{kind: kind, width: uint8(width), val: val, a0: a.id}, []*Term{a})
}

func (c *Context) mk2(kind Kind, width int, a, b *Term) *Term {
	return c.mk(key{kind: kind, width: uint8(width), a0: a.id, a1: b.id}, []*Term{a, b})
}

func (c *Context) mk3(kind Kind, width int, a, b, d *Term) *Term {
	return c.mk(key{kind: kind, width: uint8(width), a0: a.id, a1: b.id, a2: d.id}, []*Term{a, b, d})
}

// mask returns a bitmask with the low w bits set.
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// SignBit reports whether the sign bit of v is set when interpreted at width w.
func SignBit(v uint64, w int) bool { return (v>>(uint(w)-1))&1 == 1 }

// SignExt sign-extends the width-w value v to 64 bits.
func SignExt(v uint64, w int) uint64 {
	if w >= 64 || !SignBit(v, w) {
		return v
	}
	return v | ^mask(w)
}

// BuildError describes a term-construction discipline violation: a width out
// of range, a width mismatch between operands, or a sort confusion (Boolean
// where bit-vector expected, or vice versa). Builders panic with *BuildError
// so that analysis tools driving untrusted transition functions — dutlint in
// particular — can recover at the cycle boundary and convert the violation
// into a reported finding instead of crashing, while ordinary callers still
// fail loudly on programmer error.
type BuildError struct {
	Op  string // builder operation, e.g. "bvadd", "extract"
	Msg string // human-readable description of the violation
}

func (e *BuildError) Error() string {
	if e.Op == "" {
		return "smt: " + e.Msg
	}
	return "smt: " + e.Op + ": " + e.Msg
}

func buildPanic(op, format string, args ...interface{}) {
	panic(&BuildError{Op: op, Msg: fmt.Sprintf(format, args...)})
}

func checkWidth(w int) {
	if w < 1 || w > MaxWidth {
		buildPanic("", "invalid bit-vector width %d", w)
	}
}

func checkSameBV(op string, a, b *Term) {
	if a.width == 0 || b.width == 0 {
		buildPanic(op, "Boolean operand where bit-vector expected")
	}
	if a.width != b.width {
		buildPanic(op, "width mismatch %d vs %d", a.width, b.width)
	}
}

func checkBool(op string, a *Term) {
	if a.width != 0 {
		buildPanic(op, "bit-vector operand where Boolean expected")
	}
}
