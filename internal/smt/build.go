package smt

import "fmt"

// BV returns the bit-vector constant v of the given width. Bits of v above
// the width are masked off.
func (c *Context) BV(width int, v uint64) *Term {
	checkWidth(width)
	return c.mk0(KConst, width, v&mask(width))
}

// Var returns the named bit-vector variable, creating it on first use.
// Asking for the same name at a different width is an error.
func (c *Context) Var(name string, width int) *Term {
	checkWidth(width)
	if prev, ok := c.varsByName[name]; ok {
		if prev.Width() != width {
			buildPanic("var", "variable %q redeclared at width %d (was %d)", name, width, prev.Width())
		}
		return prev
	}
	return c.mk(key{kind: KVar, width: uint8(width), name: name}, nil)
}

// FreshVar returns a variable with a unique generated name carrying the
// given prefix.
func (c *Context) FreshVar(prefix string, width int) *Term {
	c.fresh++
	return c.Var(fmt.Sprintf("%s!%d", prefix, c.fresh), width)
}

// True returns the Boolean constant true.
func (c *Context) True() *Term { return c.tTrue }

// False returns the Boolean constant false.
func (c *Context) False() *Term { return c.tFalse }

// Bool returns the Boolean constant for b.
func (c *Context) Bool(b bool) *Term {
	if b {
		return c.tTrue
	}
	return c.tFalse
}

// orderComm sorts the two operands of a commutative operator by ID so that
// op(a,b) and op(b,a) intern to the same term.
func orderComm(a, b *Term) (*Term, *Term) {
	if a.id > b.id {
		return b, a
	}
	return a, b
}

// addConst splits t into (base, constant) when t is a constant-offset sum,
// enabling constant-chain folding across Add/Sub compositions.
func addConst(t *Term) (base *Term, off uint64, ok bool) {
	if t.kind != KAdd {
		return nil, 0, false
	}
	if t.args[0].IsConst() {
		return t.args[1], t.args[0].val, true
	}
	if t.args[1].IsConst() {
		return t.args[0], t.args[1].val, true
	}
	return nil, 0, false
}

// Add returns a + b (modular). Constant chains fold:
// (x + c1) + c2 == x + (c1+c2).
func (c *Context) Add(a, b *Term) *Term {
	checkSameBV("bvadd", a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.BV(w, a.val+b.val)
	}
	if a.IsConst() && a.val == 0 {
		return b
	}
	if b.IsConst() && b.val == 0 {
		return a
	}
	// Fold constant chains. Only one operand can be constant here.
	if a.IsConst() || b.IsConst() {
		cst, other := a, b
		if b.IsConst() {
			cst, other = b, a
		}
		if base, off, ok := addConst(other); ok {
			return c.Add(base, c.BV(w, off+cst.val))
		}
	}
	a, b = orderComm(a, b)
	return c.mk2(KAdd, w, a, b)
}

// Sub returns a - b (modular). Subtracting a constant canonicalises to an
// addition so constant chains keep folding.
func (c *Context) Sub(a, b *Term) *Term {
	checkSameBV("bvsub", a, b)
	w := a.Width()
	if a == b {
		return c.BV(w, 0)
	}
	if a.IsConst() && b.IsConst() {
		return c.BV(w, a.val-b.val)
	}
	if b.IsConst() {
		return c.Add(a, c.BV(w, -b.val))
	}
	return c.mk2(KSub, w, a, b)
}

// Mul returns a * b (modular).
func (c *Context) Mul(a, b *Term) *Term {
	checkSameBV("bvmul", a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.BV(w, a.val*b.val)
	}
	if a.IsConst() {
		switch a.val {
		case 0:
			return c.BV(w, 0)
		case 1:
			return b
		}
	}
	if b.IsConst() {
		switch b.val {
		case 0:
			return c.BV(w, 0)
		case 1:
			return a
		}
	}
	a, b = orderComm(a, b)
	return c.mk2(KMul, w, a, b)
}

// udivVals computes SMT-LIB bvudiv on width-w values.
func udivVals(a, b uint64, w int) uint64 {
	if b == 0 {
		return mask(w)
	}
	return a / b
}

// uremVals computes SMT-LIB bvurem on width-w values.
func uremVals(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

// UDiv returns the unsigned quotient a / b, with a/0 = all-ones (SMT-LIB).
func (c *Context) UDiv(a, b *Term) *Term {
	checkSameBV("bvudiv", a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.BV(w, udivVals(a.val, b.val, w))
	}
	if b.IsConst() && b.val == 1 {
		return a
	}
	return c.mk2(KUDiv, w, a, b)
}

// URem returns the unsigned remainder a % b, with a%0 = a (SMT-LIB).
func (c *Context) URem(a, b *Term) *Term {
	checkSameBV("bvurem", a, b)
	w := a.Width()
	if a.IsConst() && b.IsConst() {
		return c.BV(w, uremVals(a.val, b.val))
	}
	if b.IsConst() && b.val == 1 {
		return c.BV(w, 0)
	}
	return c.mk2(KURem, w, a, b)
}

// Neg returns -a (two's complement).
func (c *Context) Neg(a *Term) *Term {
	if a.width == 0 {
		buildPanic("bvneg", "Boolean operand where bit-vector expected")
	}
	w := a.Width()
	if a.IsConst() {
		return c.BV(w, -a.val)
	}
	if a.kind == KNeg {
		return a.args[0]
	}
	return c.mk1(KNeg, w, 0, a)
}

// And returns the bitwise AND of a and b.
func (c *Context) And(a, b *Term) *Term {
	checkSameBV("bvand", a, b)
	w := a.Width()
	if a == b {
		return a
	}
	if a.IsConst() && b.IsConst() {
		return c.BV(w, a.val&b.val)
	}
	for _, pair := range [2][2]*Term{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		if x.IsConst() {
			if x.val == 0 {
				return c.BV(w, 0)
			}
			if x.val == mask(w) {
				return y
			}
		}
	}
	a, b = orderComm(a, b)
	return c.mk2(KAnd, w, a, b)
}

// Or returns the bitwise OR of a and b.
func (c *Context) Or(a, b *Term) *Term {
	checkSameBV("bvor", a, b)
	w := a.Width()
	if a == b {
		return a
	}
	if a.IsConst() && b.IsConst() {
		return c.BV(w, a.val|b.val)
	}
	for _, pair := range [2][2]*Term{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		if x.IsConst() {
			if x.val == 0 {
				return y
			}
			if x.val == mask(w) {
				return c.BV(w, mask(w))
			}
		}
	}
	a, b = orderComm(a, b)
	return c.mk2(KOr, w, a, b)
}

// Xor returns the bitwise XOR of a and b.
func (c *Context) Xor(a, b *Term) *Term {
	checkSameBV("bvxor", a, b)
	w := a.Width()
	if a == b {
		return c.BV(w, 0)
	}
	if a.IsConst() && b.IsConst() {
		return c.BV(w, a.val^b.val)
	}
	for _, pair := range [2][2]*Term{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		if x.IsConst() {
			if x.val == 0 {
				return y
			}
			if x.val == mask(w) {
				return c.Not(y)
			}
		}
	}
	a, b = orderComm(a, b)
	return c.mk2(KXor, w, a, b)
}

// Not returns the bitwise complement of a.
func (c *Context) Not(a *Term) *Term {
	if a.width == 0 {
		buildPanic("bvnot", "Boolean operand where bit-vector expected")
	}
	w := a.Width()
	if a.IsConst() {
		return c.BV(w, ^a.val)
	}
	if a.kind == KNot {
		return a.args[0]
	}
	return c.mk1(KNot, w, 0, a)
}

// Shl returns a << b. Shift amounts >= width yield zero.
func (c *Context) Shl(a, b *Term) *Term {
	checkSameBV("bvshl", a, b)
	w := a.Width()
	if b.IsConst() {
		if b.val == 0 {
			return a
		}
		if b.val >= uint64(w) {
			return c.BV(w, 0)
		}
		if a.IsConst() {
			return c.BV(w, a.val<<b.val)
		}
	}
	if a.IsConst() && a.val == 0 {
		return a
	}
	// Constant shift chains fuse; the recursive call folds sums >= width.
	if !c.noExtRewrites && b.IsConst() && a.kind == KShl && a.args[1].IsConst() {
		c.rewriteHits++
		return c.Shl(a.args[0], c.BV(w, a.args[1].val+b.val))
	}
	return c.mk2(KShl, w, a, b)
}

// Lshr returns the logical right shift a >> b. Amounts >= width yield zero.
func (c *Context) Lshr(a, b *Term) *Term {
	checkSameBV("bvlshr", a, b)
	w := a.Width()
	if b.IsConst() {
		if b.val == 0 {
			return a
		}
		if b.val >= uint64(w) {
			return c.BV(w, 0)
		}
		if a.IsConst() {
			return c.BV(w, a.val>>b.val)
		}
	}
	if a.IsConst() && a.val == 0 {
		return a
	}
	// Constant shift chains fuse; the recursive call folds sums >= width.
	if !c.noExtRewrites && b.IsConst() && a.kind == KLshr && a.args[1].IsConst() {
		c.rewriteHits++
		return c.Lshr(a.args[0], c.BV(w, a.args[1].val+b.val))
	}
	return c.mk2(KLshr, w, a, b)
}

// Ashr returns the arithmetic right shift a >> b. Amounts >= width yield the
// sign-bit replication.
func (c *Context) Ashr(a, b *Term) *Term {
	checkSameBV("bvashr", a, b)
	w := a.Width()
	if b.IsConst() {
		if b.val == 0 {
			return a
		}
		if a.IsConst() {
			sh := b.val
			if sh > uint64(w) {
				sh = uint64(w)
			}
			v := SignExt(a.val, w) >> sh
			if sh >= uint64(w) {
				if SignBit(a.val, w) {
					v = mask(w)
				} else {
					v = 0
				}
			}
			return c.BV(w, v)
		}
	}
	// Arithmetic shift fixed points: zero and all-ones replicate their sign
	// bit, so any shift amount leaves them unchanged.
	if a.IsConst() && (a.val == 0 || a.val == mask(w)) {
		return a
	}
	return c.mk2(KAshr, w, a, b)
}

// Concat returns the concatenation hi ++ lo, with hi in the upper bits.
func (c *Context) Concat(hi, lo *Term) *Term {
	if hi.width == 0 || lo.width == 0 {
		buildPanic("concat", "Boolean operand where bit-vector expected")
	}
	w := hi.Width() + lo.Width()
	if w > MaxWidth {
		buildPanic("concat", "result width %d exceeds %d", w, MaxWidth)
	}
	if hi.IsConst() && lo.IsConst() {
		return c.BV(w, hi.val<<uint(lo.Width())|lo.val)
	}
	if !c.noExtRewrites {
		// A zero high part is a zero extension; canonicalising to zext
		// feeds the comparison-narrowing rules.
		if hi.IsConst() && hi.val == 0 {
			c.rewriteHits++
			return c.ZExt(lo, w)
		}
		// Adjacent extracts of the same term fuse back into one extract.
		if hi.kind == KExtract && lo.kind == KExtract && hi.args[0] == lo.args[0] {
			h1, l1 := hi.ExtractBounds()
			h2, l2 := lo.ExtractBounds()
			if l1 == h2+1 {
				c.rewriteHits++
				return c.Extract(hi.args[0], h1, l2)
			}
		}
	}
	return c.mk2(KConcat, w, hi, lo)
}

// Extract returns bits hi..lo (inclusive, 0-based) of a.
func (c *Context) Extract(a *Term, hi, lo int) *Term {
	if a.width == 0 {
		buildPanic("extract", "Boolean operand where bit-vector expected")
	}
	if lo < 0 || hi < lo || hi >= a.Width() {
		buildPanic("extract", "[%d:%d] out of range for width %d", hi, lo, a.Width())
	}
	w := hi - lo + 1
	if w == a.Width() {
		return a
	}
	if a.IsConst() {
		return c.BV(w, a.val>>uint(lo))
	}
	// extract(extract(x, h2, l2), hi, lo) = extract(x, l2+hi, l2+lo)
	if a.kind == KExtract {
		_, l2 := a.ExtractBounds()
		return c.Extract(a.args[0], l2+hi, l2+lo)
	}
	// extract of concat that falls entirely within one side.
	if a.kind == KConcat {
		lw := a.args[1].Width()
		if hi < lw {
			return c.Extract(a.args[1], hi, lo)
		}
		if lo >= lw {
			return c.Extract(a.args[0], hi-lw, lo-lw)
		}
	}
	// extract of zext that falls entirely within the original or the padding.
	if a.kind == KZExt {
		ow := a.args[0].Width()
		if hi < ow {
			return c.Extract(a.args[0], hi, lo)
		}
		if lo >= ow {
			return c.BV(w, 0)
		}
	}
	if !c.noExtRewrites {
		switch a.kind {
		case KLshr:
			// Constant logical right shift: shift the window instead.
			if sh := a.args[1]; sh.IsConst() {
				s := int(sh.val) // 0 < s < width by the Lshr folds
				aw := a.Width()
				c.rewriteHits++
				switch {
				case lo+s >= aw: // window entirely in the zero padding
					return c.BV(w, 0)
				case hi+s < aw: // window entirely within the shifted bits
					return c.Extract(a.args[0], hi+s, lo+s)
				default: // window straddles the padding boundary
					return c.ZExt(c.Extract(a.args[0], aw-1, lo+s), w)
				}
			}
		case KShl:
			// Constant left shift: shift the window the other way.
			if sh := a.args[1]; sh.IsConst() {
				s := int(sh.val) // 0 < s < width by the Shl folds
				c.rewriteHits++
				switch {
				case hi < s: // window entirely in the inserted zeros
					return c.BV(w, 0)
				case lo >= s: // window entirely within the shifted bits
					return c.Extract(a.args[0], hi-s, lo-s)
				default: // low part zeros, high part from the operand
					return c.Concat(c.Extract(a.args[0], hi-s, 0), c.BV(s-lo, 0))
				}
			}
		case KSExt:
			// extract of sext below the original width reads original bits.
			if ow := a.args[0].Width(); hi < ow {
				c.rewriteHits++
				return c.Extract(a.args[0], hi, lo)
			}
		case KIte:
			// extract distributes over constant arms, keeping the ite
			// exposed to the comparison-vs-constant-arms rules.
			if p, q, ok := constArms(a); ok {
				c.rewriteHits++
				return c.Ite(a.args[0], c.BV(w, p>>uint(lo)), c.BV(w, q>>uint(lo)))
			}
		}
	}
	return c.mk1(KExtract, w, uint64(hi)<<8|uint64(lo), a)
}

// ZExt zero-extends a to the given width.
func (c *Context) ZExt(a *Term, width int) *Term {
	if a.width == 0 {
		buildPanic("zext", "Boolean operand where bit-vector expected")
	}
	checkWidth(width)
	if width < a.Width() {
		buildPanic("zext", "target width %d < operand width %d", width, a.Width())
	}
	if width == a.Width() {
		return a
	}
	if a.IsConst() {
		return c.BV(width, a.val)
	}
	if a.kind == KZExt {
		return c.ZExt(a.args[0], width)
	}
	return c.mk1(KZExt, width, 0, a)
}

// SExt sign-extends a to the given width.
func (c *Context) SExt(a *Term, width int) *Term {
	if a.width == 0 {
		buildPanic("sext", "Boolean operand where bit-vector expected")
	}
	checkWidth(width)
	if width < a.Width() {
		buildPanic("sext", "target width %d < operand width %d", width, a.Width())
	}
	if width == a.Width() {
		return a
	}
	if a.IsConst() {
		return c.BV(width, SignExt(a.val, a.Width()))
	}
	if a.kind == KSExt {
		return c.SExt(a.args[0], width)
	}
	return c.mk1(KSExt, width, 0, a)
}

// Ite returns if cond then a else b, for bit-vector or Boolean a/b.
func (c *Context) Ite(cond, a, b *Term) *Term {
	checkBool("ite", cond)
	if a.width != b.width {
		buildPanic("ite", "branch width mismatch %d vs %d", a.width, b.width)
	}
	if v, ok := cond.IsBoolConst(); ok {
		if v {
			return a
		}
		return b
	}
	if a == b {
		return a
	}
	if a.width == 0 {
		// Boolean ite: fold the common encodings.
		av, aok := a.IsBoolConst()
		bv, bok := b.IsBoolConst()
		switch {
		case aok && bok: // a != b here since a != b term-wise
			if av && !bv {
				return cond
			}
			return c.BNot(cond)
		case aok && av:
			return c.BOr(cond, b)
		case aok && !av:
			return c.BAnd(c.BNot(cond), b)
		case bok && bv:
			return c.BOr(c.BNot(cond), a)
		case bok && !bv:
			return c.BAnd(cond, a)
		}
	}
	return c.mk3(KIte, int(a.width), cond, a, b)
}

// Eq returns the Boolean a == b over same-width bit-vectors. Constant-offset
// sums shift their constant onto the other side ((x+c1) == c2 becomes
// x == c2-c1), a pattern arising constantly in PC and address chains.
func (c *Context) Eq(a, b *Term) *Term {
	checkSameBV("=", a, b)
	if a == b {
		return c.tTrue
	}
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.val == b.val)
	}
	if a.IsConst() || b.IsConst() {
		cst, other := a, b
		if b.IsConst() {
			cst, other = b, a
		}
		if base, off, ok := addConst(other); ok {
			return c.Eq(base, c.BV(other.Width(), cst.val-off))
		}
		if !c.noExtRewrites {
			if t, ok := c.rewriteEqConst(other, cst); ok {
				return t
			}
		}
	}
	if !c.noExtRewrites {
		if t, ok := c.rewriteEq(a, b); ok {
			return t
		}
	}
	a, b = orderComm(a, b)
	return c.mk2(KEq, 0, a, b)
}

// Ne returns the Boolean a != b.
func (c *Context) Ne(a, b *Term) *Term { return c.BNot(c.Eq(a, b)) }

// Ult returns the Boolean unsigned a < b.
func (c *Context) Ult(a, b *Term) *Term {
	checkSameBV("bvult", a, b)
	if a == b {
		return c.tFalse
	}
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.val < b.val)
	}
	if b.IsConst() && b.val == 0 {
		return c.tFalse
	}
	if a.IsConst() && a.val == mask(a.Width()) {
		return c.tFalse
	}
	if !c.noExtRewrites {
		if t, ok := c.rewriteUlt(a, b); ok {
			return t
		}
	}
	return c.mk2(KUlt, 0, a, b)
}

// Ule returns the Boolean unsigned a <= b.
func (c *Context) Ule(a, b *Term) *Term {
	checkSameBV("bvule", a, b)
	if a == b {
		return c.tTrue
	}
	if a.IsConst() && b.IsConst() {
		return c.Bool(a.val <= b.val)
	}
	if a.IsConst() && a.val == 0 {
		return c.tTrue
	}
	if b.IsConst() && b.val == mask(b.Width()) {
		return c.tTrue
	}
	if !c.noExtRewrites {
		if t, ok := c.rewriteUle(a, b); ok {
			return t
		}
	}
	return c.mk2(KUle, 0, a, b)
}

// Ugt returns the Boolean unsigned a > b.
func (c *Context) Ugt(a, b *Term) *Term { return c.Ult(b, a) }

// Uge returns the Boolean unsigned a >= b.
func (c *Context) Uge(a, b *Term) *Term { return c.Ule(b, a) }

// Slt returns the Boolean signed a < b.
func (c *Context) Slt(a, b *Term) *Term {
	checkSameBV("bvslt", a, b)
	if a == b {
		return c.tFalse
	}
	if a.IsConst() && b.IsConst() {
		w := a.Width()
		return c.Bool(int64(SignExt(a.val, w)) < int64(SignExt(b.val, w)))
	}
	if !c.noExtRewrites {
		if t, ok := c.rewriteSCmp(a, b, true); ok {
			return t
		}
	}
	return c.mk2(KSlt, 0, a, b)
}

// Sle returns the Boolean signed a <= b.
func (c *Context) Sle(a, b *Term) *Term {
	checkSameBV("bvsle", a, b)
	if a == b {
		return c.tTrue
	}
	if a.IsConst() && b.IsConst() {
		w := a.Width()
		return c.Bool(int64(SignExt(a.val, w)) <= int64(SignExt(b.val, w)))
	}
	if !c.noExtRewrites {
		if t, ok := c.rewriteSCmp(a, b, false); ok {
			return t
		}
	}
	return c.mk2(KSle, 0, a, b)
}

// Sgt returns the Boolean signed a > b.
func (c *Context) Sgt(a, b *Term) *Term { return c.Slt(b, a) }

// Sge returns the Boolean signed a >= b.
func (c *Context) Sge(a, b *Term) *Term { return c.Sle(b, a) }

// BAnd returns the Boolean conjunction of a and b.
func (c *Context) BAnd(a, b *Term) *Term {
	checkBool("and", a)
	checkBool("and", b)
	if a == b {
		return a
	}
	for _, pair := range [2][2]*Term{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		if v, ok := x.IsBoolConst(); ok {
			if v {
				return y
			}
			return c.tFalse
		}
	}
	if a.kind == KBNot && a.args[0] == b || b.kind == KBNot && b.args[0] == a {
		return c.tFalse
	}
	a, b = orderComm(a, b)
	return c.mk2(KBAnd, 0, a, b)
}

// BOr returns the Boolean disjunction of a and b.
func (c *Context) BOr(a, b *Term) *Term {
	checkBool("or", a)
	checkBool("or", b)
	if a == b {
		return a
	}
	for _, pair := range [2][2]*Term{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		if v, ok := x.IsBoolConst(); ok {
			if v {
				return c.tTrue
			}
			return y
		}
	}
	if a.kind == KBNot && a.args[0] == b || b.kind == KBNot && b.args[0] == a {
		return c.tTrue
	}
	a, b = orderComm(a, b)
	return c.mk2(KBOr, 0, a, b)
}

// BXor returns the Boolean exclusive-or of a and b.
func (c *Context) BXor(a, b *Term) *Term {
	checkBool("xor", a)
	checkBool("xor", b)
	if a == b {
		return c.tFalse
	}
	for _, pair := range [2][2]*Term{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		if v, ok := x.IsBoolConst(); ok {
			if v {
				return c.BNot(y)
			}
			return y
		}
	}
	a, b = orderComm(a, b)
	return c.mk2(KBXor, 0, a, b)
}

// BNot returns the Boolean negation of a.
func (c *Context) BNot(a *Term) *Term {
	checkBool("not", a)
	if v, ok := a.IsBoolConst(); ok {
		return c.Bool(!v)
	}
	if a.kind == KBNot {
		return a.args[0]
	}
	return c.mk1(KBNot, 0, 0, a)
}

// Implies returns a -> b.
func (c *Context) Implies(a, b *Term) *Term { return c.BOr(c.BNot(a), b) }

// Iff returns a <-> b.
func (c *Context) Iff(a, b *Term) *Term { return c.BNot(c.BXor(a, b)) }

// BoolToBV returns a width-1 bit-vector that is 1 when cond holds.
func (c *Context) BoolToBV(cond *Term) *Term {
	return c.Ite(cond, c.BV(1, 1), c.BV(1, 0))
}
