package smt

// Structural hashing gives every term a 64-bit fingerprint that depends only
// on the term's structure — kinds, widths, constants, variable names and
// operand order — not on the Context that interned it or on term-creation
// order. Two Contexts building the same expression therefore produce the
// same hash, which makes the hashes usable as cross-worker cache keys
// (internal/querycache fingerprints constraint sets with them).

// splitmix64 finalizer constants.
const (
	hashSeed uint64 = 0x9e3779b97f4a7c15
	hashMulA uint64 = 0xbf58476d1ce4e5b9
	hashMulB uint64 = 0x94d049bb133111eb
)

// mix64 is the splitmix64 finalizer: a cheap bijective 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= hashMulA
	x ^= x >> 27
	x *= hashMulB
	x ^= x >> 31
	return x
}

// hashCombine folds v into the running hash h, order-sensitively.
func hashCombine(h, v uint64) uint64 {
	return mix64(h ^ (v + hashSeed + h<<6 + h>>2))
}

// StructuralHash returns the context-independent fingerprint of t. Results
// are memoized per Context in a dense slice indexed by term ID, so amortized
// cost per term is O(1) after the first computation. The hash is never 0.
func (c *Context) StructuralHash(t *Term) uint64 {
	if int(t.id) > len(c.hashMemo) {
		memo := make([]uint64, len(c.terms))
		copy(memo, c.hashMemo)
		c.hashMemo = memo
	}
	if h := c.hashMemo[t.id-1]; h != 0 {
		return h
	}
	h := hashCombine(hashSeed, uint64(t.kind))
	h = hashCombine(h, uint64(t.width))
	h = hashCombine(h, t.val)
	for i := 0; i < len(t.name); i++ {
		h = hashCombine(h, uint64(t.name[i]))
	}
	for i := 0; i < int(t.nargs); i++ {
		h = hashCombine(h, c.StructuralHash(t.args[i]))
	}
	if h == 0 {
		h = 1
	}
	c.hashMemo[t.id-1] = h
	return h
}
