package smt

import "testing"

// testRNG is a seeded splitmix64 generator, keeping math/rand out of the
// deterministic kernel's test surface and stable across Go releases.
type testRNG struct{ s uint64 }

func (r *testRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// buildBV builds a random 32-bit term. Control flow depends only on the PRNG
// stream and static arguments — never on term contents — so two identically
// seeded builds in different contexts construct the same term spec even when
// one context rewrites subterms into different shapes.
func buildBV(r *testRNG, c *Context, vars []*Term, d int) *Term {
	if d == 0 || r.intn(4) == 0 {
		if r.intn(3) == 0 {
			return c.BV(32, r.next())
		}
		return vars[r.intn(len(vars))]
	}
	a := buildBV(r, c, vars, d-1)
	switch r.intn(14) {
	case 0:
		return c.Add(a, buildBV(r, c, vars, d-1))
	case 1:
		return c.Sub(a, buildBV(r, c, vars, d-1))
	case 2:
		return c.And(a, buildBV(r, c, vars, d-1))
	case 3:
		return c.Or(a, buildBV(r, c, vars, d-1))
	case 4:
		return c.Xor(a, buildBV(r, c, vars, d-1))
	case 5:
		return c.Not(a)
	case 6:
		return c.Neg(a)
	case 7:
		// Constant shifts compose the shift-chain and extract-of-shift rules.
		return c.Shl(a, c.BV(32, uint64(r.intn(33))))
	case 8:
		return c.Lshr(a, c.BV(32, uint64(r.intn(33))))
	case 9:
		// Narrow and widen: extract / zext / sext chains.
		w := 8 + r.intn(9)
		lo := r.intn(33 - w)
		sub := c.Extract(a, lo+w-1, lo)
		if r.intn(2) == 0 {
			return c.ZExt(sub, 32)
		}
		return c.SExt(sub, 32)
	case 10:
		// Concat of two extracts (adjacent with probability ~1/2, so the
		// fusion rule fires on some specimens).
		cut := 8 + r.intn(16)
		hi := c.Extract(a, 31, cut)
		var lo *Term
		if r.intn(2) == 0 {
			lo = c.Extract(a, cut-1, 0)
		} else {
			lo = c.Extract(buildBV(r, c, vars, d-1), cut-1, 0)
		}
		return c.Concat(hi, lo)
	case 11:
		// Zero-concat triggers the concat→zext rule.
		return c.Concat(c.BV(16, 0), c.Extract(a, 15, 0))
	case 12:
		return c.Ite(buildBool(r, c, vars, d-1), a, buildBV(r, c, vars, d-1))
	default:
		// Const-armed ite feeds the compare-vs-ite collapse rules.
		return c.Ite(buildBool(r, c, vars, d-1), c.BV(32, r.next()), c.BV(32, r.next()))
	}
}

// buildBool builds a random Boolean term exercising the comparison rewrites.
func buildBool(r *testRNG, c *Context, vars []*Term, d int) *Term {
	if d == 0 {
		return c.Bool(r.intn(2) == 0)
	}
	a := buildBV(r, c, vars, d-1)
	var b *Term
	if r.intn(3) == 0 {
		b = c.BV(32, r.next()>>uint(r.intn(33))) // biased toward small consts
	} else {
		b = buildBV(r, c, vars, d-1)
	}
	switch r.intn(8) {
	case 0:
		return c.Eq(a, b)
	case 1:
		return c.Ult(a, b)
	case 2:
		return c.Ule(a, b)
	case 3:
		return c.Slt(a, b)
	case 4:
		return c.Sle(a, b)
	case 5:
		// Narrowed equality: Eq(ZExt/SExt(x), const) rules.
		n := c.Extract(a, 7, 0)
		if r.intn(2) == 0 {
			return c.Eq(c.ZExt(n, 32), b)
		}
		return c.Eq(c.SExt(n, 32), b)
	case 6:
		return c.BNot(buildBool(r, c, vars, d-1))
	default:
		return c.BAnd(buildBool(r, c, vars, d-1), buildBool(r, c, vars, d-1))
	}
}

// TestRewriteSoundnessRandomized is the property test behind the extended
// rewriter: for randomized term specs built identically in a rewrites-on and
// a rewrites-off context, evaluation agrees under randomized environments —
// Eval(rewrite(t), env) == Eval(t, env). The seed is fixed, so failures
// reproduce exactly.
func TestRewriteSoundnessRandomized(t *testing.T) {
	const terms = 300
	const envs = 12
	envRNG := &testRNG{s: 0xabcdef12345}
	edge := []uint64{0, 1, 0x7fffffff, 0x80000000, 0xffffffff}

	var hits uint64
	for iter := 0; iter < terms; iter++ {
		seed := uint64(iter)*0x9e3779b9 + 1
		on := NewContext()
		off := NewContext()
		off.SetExtendedRewrites(false)
		mkVars := func(c *Context) []*Term {
			return []*Term{c.Var("x", 32), c.Var("y", 32), c.Var("z", 32)}
		}
		tOn := buildBool(&testRNG{s: seed}, on, mkVars(on), 4)
		tOff := buildBool(&testRNG{s: seed}, off, mkVars(off), 4)
		hits += on.RewriteHits()

		for e := 0; e < envs; e++ {
			var env MapEnv
			if e < len(edge) {
				env = MapEnv{"x": edge[e], "y": edge[len(edge)-1-e], "z": edge[e/2]}
			} else {
				env = MapEnv{"x": envRNG.next(), "y": envRNG.next(), "z": envRNG.next()}
			}
			got, err1 := EvalBool(tOn, env)
			want, err2 := EvalBool(tOff, env)
			if err1 != nil || err2 != nil {
				t.Fatalf("iter %d env %v: eval errors %v / %v", iter, env, err1, err2)
			}
			if got != want {
				t.Fatalf("iter %d (seed %#x) env %v: rewritten term evaluates to %v, original to %v",
					iter, seed, env, got, want)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no extended rewrites fired over the whole run; the property test exercises nothing")
	}
}

// TestRewriteTogglePerContext checks the ablation switch: a context with
// extended rewrites off reports no hits, and the default context state is on.
func TestRewriteTogglePerContext(t *testing.T) {
	off := NewContext()
	off.SetExtendedRewrites(false)
	if off.ExtendedRewrites() {
		t.Fatal("SetExtendedRewrites(false) did not stick")
	}
	x := off.Var("x", 32)
	off.Eq(off.ZExt(off.Extract(x, 7, 0), 32), off.BV(32, 0x1ff))
	if off.RewriteHits() != 0 {
		t.Fatal("rewrites fired with the switch off")
	}

	on := NewContext()
	if !on.ExtendedRewrites() {
		t.Fatal("extended rewrites are not on by default")
	}
	y := on.Var("y", 32)
	// ZExt(y8) == 0x1ff is unsatisfiable at the term level: folds to false.
	if got := on.Eq(on.ZExt(on.Extract(y, 7, 0), 32), on.BV(32, 0x1ff)); got != on.False() {
		t.Fatalf("out-of-range zext equality did not fold to false: %v", got)
	}
	if on.RewriteHits() == 0 {
		t.Fatal("no rewrite hit recorded")
	}
}
