package smt

// Extended rewrite rules. The constructors in build.go always perform the
// cheap canonicalisations (constant folding, operand ordering, neutral
// elements); the rules in this file are the deeper, KLEE-style
// simplifications that shrink solver queries: comparison narrowing through
// zero/sign extension, equality splitting over concatenation, solving
// invertible operations against constants, and comparisons against
// constant-armed ites collapsing to the ite condition. They run at term
// build time, behind the hash-consing, and can be switched off per Context
// for ablation (symv -rewrite=off).
//
// Every rule application increments the Context's rewrite-hit counter,
// surfaced through symv bench as the "rewrite reductions" statistic.

// SetExtendedRewrites enables or disables the extended rewrite rules for
// terms built from now on. Rules are on by default. Already-interned terms
// are immutable and unaffected.
func (c *Context) SetExtendedRewrites(on bool) { c.noExtRewrites = !on }

// ExtendedRewrites reports whether the extended rewrite rules are enabled.
func (c *Context) ExtendedRewrites() bool { return !c.noExtRewrites }

// RewriteHits returns the number of extended rewrite rule applications.
func (c *Context) RewriteHits() uint64 { return c.rewriteHits }

// constArms returns the two arm values of an ite over bit-vector constants.
func constArms(t *Term) (p, q uint64, ok bool) {
	if t.kind != KIte || !t.args[1].IsConst() || !t.args[2].IsConst() {
		return 0, 0, false
	}
	return t.args[1].val, t.args[2].val, true
}

// rewriteCmpIte collapses a comparison against a constant-armed ite by
// evaluating the predicate on both arms: ite(c,p,q) OP k becomes true, false,
// c or not(c).
func (c *Context) rewriteCmpIte(ite *Term, pred func(arm uint64) bool) (*Term, bool) {
	p, q, ok := constArms(ite)
	if !ok {
		return nil, false
	}
	pv, qv := pred(p), pred(q)
	c.rewriteHits++
	switch {
	case pv && qv:
		return c.tTrue, true
	case pv:
		return ite.args[0], true
	case qv:
		return c.BNot(ite.args[0]), true
	}
	return c.tFalse, true
}

// rewriteEqConst simplifies other == cst where cst is a constant and other is
// a composite term with an invertible or narrowing head operator.
func (c *Context) rewriteEqConst(other, cst *Term) (*Term, bool) {
	w := other.Width()
	switch other.kind {
	case KZExt:
		// zext(x) == k: out-of-range k is false, else compare at x's width.
		x := other.args[0]
		if cst.val > mask(x.Width()) {
			c.rewriteHits++
			return c.tFalse, true
		}
		c.rewriteHits++
		return c.Eq(x, c.BV(x.Width(), cst.val)), true
	case KSExt:
		// sext(x) == k: k must be the sign extension of its low bits.
		x := other.args[0]
		xw := x.Width()
		low := cst.val & mask(xw)
		if SignExt(low, xw)&mask(w) != cst.val {
			c.rewriteHits++
			return c.tFalse, true
		}
		c.rewriteHits++
		return c.Eq(x, c.BV(xw, low)), true
	case KNot:
		c.rewriteHits++
		return c.Eq(other.args[0], c.BV(w, ^cst.val)), true
	case KNeg:
		c.rewriteHits++
		return c.Eq(other.args[0], c.BV(w, -cst.val)), true
	case KXor:
		// (x ^ k1) == k: xor is self-inverse, solve for x.
		for i := 0; i < 2; i++ {
			if other.args[i].IsConst() {
				c.rewriteHits++
				return c.Eq(other.args[1-i], c.BV(w, cst.val^other.args[i].val)), true
			}
		}
	case KConcat:
		// concat(hi,lo) == k splits into two independent narrower equalities.
		hi, lo := other.args[0], other.args[1]
		lw := lo.Width()
		c.rewriteHits++
		return c.BAnd(
			c.Eq(hi, c.BV(hi.Width(), cst.val>>uint(lw))),
			c.Eq(lo, c.BV(lw, cst.val&mask(lw)))), true
	case KIte:
		k := cst.val
		return c.rewriteCmpIte(other, func(arm uint64) bool { return arm == k })
	}
	return nil, false
}

// rewriteEq simplifies equalities whose operands share a head operator that
// can be peeled (same-width extensions).
func (c *Context) rewriteEq(a, b *Term) (*Term, bool) {
	if a.kind == b.kind && (a.kind == KZExt || a.kind == KSExt) &&
		a.args[0].Width() == b.args[0].Width() {
		c.rewriteHits++
		return c.Eq(a.args[0], b.args[0]), true
	}
	return nil, false
}

// rewriteUlt simplifies unsigned a < b through zero extension and
// constant-armed ites.
func (c *Context) rewriteUlt(a, b *Term) (*Term, bool) {
	if a.kind == KZExt && b.kind == KZExt && a.args[0].Width() == b.args[0].Width() {
		c.rewriteHits++
		return c.Ult(a.args[0], b.args[0]), true
	}
	if b.IsConst() {
		k := b.val
		if a.kind == KZExt {
			x := a.args[0]
			if k > mask(x.Width()) {
				c.rewriteHits++
				return c.tTrue, true
			}
			c.rewriteHits++
			return c.Ult(x, c.BV(x.Width(), k)), true
		}
		if t, ok := c.rewriteCmpIte(a, func(arm uint64) bool { return arm < k }); ok {
			return t, ok
		}
	}
	if a.IsConst() {
		k := a.val
		if b.kind == KZExt {
			x := b.args[0]
			if k >= mask(x.Width()) {
				c.rewriteHits++
				return c.tFalse, true
			}
			c.rewriteHits++
			return c.Ult(c.BV(x.Width(), k), x), true
		}
		if t, ok := c.rewriteCmpIte(b, func(arm uint64) bool { return k < arm }); ok {
			return t, ok
		}
	}
	return nil, false
}

// rewriteUle simplifies unsigned a <= b through zero extension and
// constant-armed ites.
func (c *Context) rewriteUle(a, b *Term) (*Term, bool) {
	if a.kind == KZExt && b.kind == KZExt && a.args[0].Width() == b.args[0].Width() {
		c.rewriteHits++
		return c.Ule(a.args[0], b.args[0]), true
	}
	if b.IsConst() {
		k := b.val
		if a.kind == KZExt {
			x := a.args[0]
			if k >= mask(x.Width()) {
				c.rewriteHits++
				return c.tTrue, true
			}
			c.rewriteHits++
			return c.Ule(x, c.BV(x.Width(), k)), true
		}
		if t, ok := c.rewriteCmpIte(a, func(arm uint64) bool { return arm <= k }); ok {
			return t, ok
		}
	}
	if a.IsConst() {
		k := a.val
		if b.kind == KZExt {
			x := b.args[0]
			if k > mask(x.Width()) {
				c.rewriteHits++
				return c.tFalse, true
			}
			c.rewriteHits++
			return c.Ule(c.BV(x.Width(), k), x), true
		}
		if t, ok := c.rewriteCmpIte(b, func(arm uint64) bool { return k <= arm }); ok {
			return t, ok
		}
	}
	return nil, false
}

// rewriteSCmp simplifies a signed comparison with one constant side against a
// constant-armed ite. lt selects strict (slt) versus non-strict (sle).
func (c *Context) rewriteSCmp(a, b *Term, lt bool) (*Term, bool) {
	w := a.Width()
	cmp := func(x, y uint64) bool {
		sx, sy := int64(SignExt(x, w)), int64(SignExt(y, w))
		if lt {
			return sx < sy
		}
		return sx <= sy
	}
	if b.IsConst() {
		k := b.val
		if t, ok := c.rewriteCmpIte(a, func(arm uint64) bool { return cmp(arm, k) }); ok {
			return t, ok
		}
	}
	if a.IsConst() {
		k := a.val
		if t, ok := c.rewriteCmpIte(b, func(arm uint64) bool { return cmp(k, arm) }); ok {
			return t, ok
		}
	}
	return nil, false
}
