package smt

import (
	"fmt"
	"strings"
)

// String renders the term in an SMT-LIB-flavoured prefix syntax. Shared
// sub-terms are printed in full (no let-binding), so use it for small terms
// and debugging.
func (t *Term) String() string {
	var b strings.Builder
	writeTerm(&b, t, 0)
	return b.String()
}

const printDepthLimit = 64

func writeTerm(b *strings.Builder, t *Term, depth int) {
	if depth > printDepthLimit {
		b.WriteString("...")
		return
	}
	switch t.Kind() {
	case KConst:
		fmt.Fprintf(b, "#x%0*x", (t.Width()+3)/4, t.val)
	case KVar:
		b.WriteString(t.name)
	case KTrue:
		b.WriteString("true")
	case KFalse:
		b.WriteString("false")
	case KExtract:
		hi, lo := t.ExtractBounds()
		fmt.Fprintf(b, "((_ extract %d %d) ", hi, lo)
		writeTerm(b, t.Arg(0), depth+1)
		b.WriteByte(')')
	case KZExt:
		fmt.Fprintf(b, "((_ zero_extend %d) ", t.Width()-t.Arg(0).Width())
		writeTerm(b, t.Arg(0), depth+1)
		b.WriteByte(')')
	case KSExt:
		fmt.Fprintf(b, "((_ sign_extend %d) ", t.Width()-t.Arg(0).Width())
		writeTerm(b, t.Arg(0), depth+1)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(t.Kind().String())
		for i := 0; i < t.NumArgs(); i++ {
			b.WriteByte(' ')
			writeTerm(b, t.Arg(i), depth+1)
		}
		b.WriteByte(')')
	}
}
