package smt

import (
	"strings"
	"testing"
)

func TestStringAllKinds(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	y := c.Var("y", 8)
	p := c.Ult(x, y)
	q := c.Slt(x, y)

	cases := []struct {
		term *Term
		want string
	}{
		{c.Add(x, y), "(bvadd x y)"},
		{c.Sub(x, y), "(bvsub x y)"},
		{c.Mul(x, y), "(bvmul x y)"},
		{c.Neg(x), "(bvneg x)"},
		{c.UDiv(x, y), "(bvudiv x y)"},
		{c.URem(x, y), "(bvurem x y)"},
		{c.And(x, y), "(bvand x y)"},
		{c.Or(x, y), "(bvor x y)"},
		{c.Xor(x, y), "(bvxor x y)"},
		{c.Not(x), "(bvnot x)"},
		{c.Shl(x, y), "(bvshl x y)"},
		{c.Lshr(x, y), "(bvlshr x y)"},
		{c.Ashr(x, y), "(bvashr x y)"},
		{c.Concat(x, y), "(concat x y)"},
		{c.ZExt(x, 16), "((_ zero_extend 8) x)"},
		{c.SExt(x, 16), "((_ sign_extend 8) x)"},
		{c.Ite(p, x, y), "(ite (bvult x y) x y)"},
		{c.Eq(x, y), "(= x y)"},
		{c.Ule(x, y), "(bvule x y)"},
		{q, "(bvslt x y)"},
		{c.Sle(x, y), "(bvsle x y)"},
		{c.BAnd(p, q), "(and (bvult x y) (bvslt x y))"},
		{c.BOr(p, q), "(or (bvult x y) (bvslt x y))"},
		{c.BXor(p, q), "(xor (bvult x y) (bvslt x y))"},
		{c.BNot(p), "(not (bvult x y))"},
		{c.False(), "false"},
		{c.BV(4, 0xa), "#xa"},
		{c.BV(12, 0xabc), "#xabc"},
	}
	for _, tc := range cases {
		if got := tc.term.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestDeepTermPrintsTruncated(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	t1 := x
	for i := 0; i < 100; i++ {
		t1 = c.Add(t1, c.Var("y", 8))
	}
	s := t1.String()
	if !strings.Contains(s, "...") {
		t.Error("deep term should truncate")
	}
}

func TestKindString(t *testing.T) {
	if KAdd.String() != "bvadd" || KInvalid.String() != "invalid" {
		t.Error("Kind.String broken")
	}
	if !strings.Contains(Kind(200).String(), "kind(") {
		t.Error("out-of-range kind should fall back")
	}
}

func TestContextAccessors(t *testing.T) {
	c := NewContext()
	n0 := c.NumTerms()
	x := c.Var("x", 8)
	if c.NumTerms() != n0+1 {
		t.Error("NumTerms did not grow")
	}
	if c.TermByID(x.ID()) != x {
		t.Error("TermByID lookup failed")
	}
	if c.TermByID(0) != nil || c.TermByID(99999) != nil {
		t.Error("TermByID out-of-range should be nil")
	}
	if x.NumArgs() != 0 || x.Name() != "x" {
		t.Error("leaf accessors broken")
	}
	sum := c.Add(x, c.Var("y", 8))
	if sum.NumArgs() != 2 || sum.Arg(0).Kind() != KVar {
		t.Error("arg accessors broken")
	}
}

func TestPanicGuards(t *testing.T) {
	c := NewContext()
	x := c.Var("x", 8)
	p := c.Ult(x, x) // false constant — need a non-const bool:
	p = c.Ult(x, c.Var("y", 8))

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("width 0", func() { c.BV(0, 1) })
	mustPanic("width 65", func() { c.BV(65, 1) })
	mustPanic("bool operand to Add", func() { c.Add(p, p) })
	mustPanic("bv operand to BAnd", func() { c.BAnd(x, x) })
	mustPanic("Neg of bool", func() { c.Neg(p) })
	mustPanic("Not of bool", func() { c.Not(p) })
	mustPanic("BNot of bv", func() { c.BNot(x) })
	mustPanic("extract out of range", func() { c.Extract(x, 8, 0) })
	mustPanic("extract reversed", func() { c.Extract(x, 1, 3) })
	mustPanic("zext shrink", func() { c.ZExt(x, 4) })
	mustPanic("sext shrink", func() { c.SExt(x, 4) })
	mustPanic("concat too wide", func() { c.Concat(c.Var("a", 40), c.Var("b", 40)) })
	mustPanic("ite width mismatch", func() { c.Ite(p, x, c.Var("w16", 16)) })
	mustPanic("ite non-bool cond", func() { c.Ite(x, x, x) })
	mustPanic("ConstVal on var", func() { x.ConstVal() })
	mustPanic("ExtractBounds on var", func() { x.ExtractBounds() })
}

func TestSignHelpers(t *testing.T) {
	if !SignBit(0x80, 8) || SignBit(0x40, 8) {
		t.Error("SignBit broken")
	}
	if SignExt(0x80, 8) != 0xffffffffffffff80 {
		t.Error("SignExt broken")
	}
	if SignExt(0x7f, 8) != 0x7f {
		t.Error("SignExt of positive broken")
	}
	if SignExt(0xdeadbeef, 64) != 0xdeadbeef {
		t.Error("SignExt at full width should be identity")
	}
}

func TestEvalBoolOnBVErrors(t *testing.T) {
	c := NewContext()
	if _, err := EvalBool(c.BV(8, 1), MapEnv{}); err == nil {
		t.Error("EvalBool on a bit-vector should error")
	}
}
