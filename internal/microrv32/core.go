// Package microrv32 models the Device Under Test: a MicroRV32-style
// RV32I + Zicsr processor as a cycle-level, bus-accurate FSM — the Go
// equivalent of the verilated SpinalHDL core the paper co-simulates. The
// model exposes exactly what the verification method observes: the IBus
// fetch handshake, the strobe-based DBus, and an RVFI retirement port.
//
// Two behaviour dimensions are configurable:
//
//   - the shipped-bug set of the real MicroRV32 found in Table I (missing
//     WFI, missing illegal-CSR traps, missing read-only-CSR write traps,
//     spurious traps on counter writes, full misaligned access support where
//     the reference ISS traps), and
//   - the injected faults E0–E9 of the paper's §V-B performance evaluation.
package microrv32

import (
	"symriscv/internal/core"
	"symriscv/internal/faults"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// Config selects the core behaviour variant.
type Config struct {
	// NoMisalignedCheck makes the core fully support misaligned loads and
	// stores (splitting them into multiple bus transactions) instead of
	// trapping — the shipped MicroRV32 behaviour that mismatches the VP.
	NoMisalignedCheck bool
	// NoWFI makes WFI raise an illegal-instruction trap (shipped bug).
	NoWFI bool
	// NoIllegalCSRTrap makes accesses to unimplemented CSRs read zero and
	// ignore writes instead of trapping (shipped bug).
	NoIllegalCSRTrap bool
	// NoReadonlyWriteTrap makes writes to the read-only ID registers
	// (mvendorid, marchid, mhartid, mimpid) be silently ignored (shipped bug).
	NoReadonlyWriteTrap bool
	// TrapOnCounterWrite makes writes to mip, mcycle, minstret, mcycleh and
	// minstreth raise a trap (shipped bug).
	TrapOnCounterWrite bool

	// EnableM adds the RV32M multiply/divide extension (off by default: the
	// paper's case study targets RV32I+Zicsr).
	EnableM bool

	// IgnoreMIEBug injects an interrupt-logic fault: the core takes machine
	// external interrupts even when mstatus.MIE is clear (extension study).
	IgnoreMIEBug bool

	// Faults is the set of injected errors (E0–E9).
	Faults faults.Set
}

// ShippedConfig reproduces the as-shipped MicroRV32 with the Table I bugs.
func ShippedConfig() Config {
	return Config{
		NoMisalignedCheck:   true,
		NoWFI:               true,
		NoIllegalCSRTrap:    true,
		NoReadonlyWriteTrap: true,
		TrapOnCounterWrite:  true,
	}
}

// FixedConfig is the repaired, ISS-matched core used as the clean baseline
// of the error-injection experiments (Table II).
func FixedConfig() Config { return Config{} }

type fsmState uint8

const (
	stFetch fsmState = iota
	stFetchWait
	stExec
	stMem
)

// memPlan describes an in-flight load/store, possibly split over two bus
// transactions (misaligned support).
type memPlan struct {
	op      opKind
	isStore bool
	rd      int
	addr    uint32 // effective byte address (lane-adjusted under E7)

	reqAddr   [2]uint32
	reqStrobe [2]rtl.Strobe
	reqData   [2]*smt.Term
	nreq      int
	phase     int

	words    [2]*smt.Term // response words
	ea       *smt.Term    // architectural effective address (for RVFI)
	storeVal *smt.Term    // architectural store value, LSB-aligned (for RVFI)
}

// Core is the RTL core model.
type Core struct {
	cfg Config
	eng *core.Engine
	ctx *smt.Context

	table []decodeEntry

	pc          uint32
	regs        [32]*smt.Term
	interesting []int

	csr     map[uint16]*smt.Term
	cycle   uint64
	instret uint64
	order   uint64

	state fsmState
	insn  *smt.Term
	mem   memPlan

	irq            IrqSource
	irqCheckedSlot uint64

	ret rvfi.Retirement
}

// IrqSource supplies the (symbolic) machine-external-interrupt line, one
// 1-bit term per instruction slot (the canonical contract lives in rvfi).
type IrqSource = rvfi.IrqSource

// New returns a core at reset (PC 0, registers zero).
func New(eng *core.Engine, cfg Config) *Core {
	ctx := eng.Context()
	c := &Core{
		cfg:   cfg,
		eng:   eng,
		ctx:   ctx,
		table: buildDecodeTable(cfg.Faults, cfg.EnableM),
		csr:   make(map[uint16]*smt.Term),
	}
	zero := ctx.BV(32, 0)
	for i := range c.regs {
		c.regs[i] = zero
	}
	c.interesting = []int{0}
	return c
}

// SetPC sets the reset program counter.
func (c *Core) SetPC(pc uint32) { c.pc = pc }

// SetIrqSource connects the external interrupt line (testbench hook).
func (c *Core) SetIrqSource(src IrqSource) {
	c.irq = src
	c.irqCheckedSlot = ^uint64(0)
}

// SetCSR initialises a CSR's storage (testbench hook for symbolic initial
// machine state).
func (c *Core) SetCSR(addr uint16, v *smt.Term) { c.csr[addr] = v }

// SetReg initialises register i (testbench hook for the sliced symbolic
// registers). Writes to x0 are ignored.
func (c *Core) SetReg(i int, v *smt.Term) {
	if i == 0 {
		return
	}
	c.regs[i] = v
	c.markInteresting(i)
}

// Reg returns the current value of register i.
func (c *Core) Reg(i int) *smt.Term { return c.regs[i] }

// CSR returns the architectural storage term of the given CSR, or nil when
// the CSR has never been initialised or written. It exists for analysis
// tooling (dutlint collects CSR next-state roots); the core itself reads CSRs
// through csrStored, which substitutes the architectural reset value.
func (c *Core) CSR(addr uint16) *smt.Term { return c.csr[addr] }

// Cycles returns the clock-cycle count since reset.
func (c *Core) Cycles() uint64 { return c.cycle }

// Instret returns the retired-instruction count.
func (c *Core) Instret() uint64 { return c.instret }

// Retirement returns the RVFI record; Valid is set only during the Step in
// which an instruction retired.
func (c *Core) Retirement() *rvfi.Retirement { return &c.ret }

func (c *Core) markInteresting(i int) {
	for p, x := range c.interesting {
		if x == i {
			return
		}
		if x > i {
			c.interesting = append(c.interesting, 0)
			copy(c.interesting[p+1:], c.interesting[p:])
			c.interesting[p] = i
			return
		}
	}
	c.interesting = append(c.interesting, i)
}

func (c *Core) writeReg(i int, v *smt.Term) {
	if i == 0 {
		return
	}
	c.regs[i] = v
	c.markInteresting(i)
}

func (c *Core) chooseReg(field *smt.Term) int {
	for _, i := range c.interesting {
		if c.eng.BranchEq(field, c.ctx.BV(5, uint64(i))) {
			return i
		}
	}
	return int(c.eng.Concretize(field))
}

func (c *Core) bv(v uint32) *smt.Term { return c.ctx.BV(32, uint64(v)) }

// Step advances the core by one clock cycle. Bus responses produced by the
// memory for the previous cycle's requests arrive via ib/db; the returned
// requests become visible to the memory in this cycle.
func (c *Core) Step(ib rtl.IBusResponse, db rtl.DBusResponse) (ibReq rtl.IBusRequest, dbReq rtl.DBusRequest) {
	c.cycle++
	c.eng.CountCycle(1)
	c.ret.Valid = false

	switch c.state {
	case stFetch:
		// One interrupt opportunity per instruction slot, sampled before the
		// fetch — the architectural point where both models agree to look.
		if c.irq != nil && c.irqCheckedSlot != c.order {
			c.irqCheckedSlot = c.order
			line := c.irq.Line(c.order)
			var taken *smt.Term
			if c.cfg.IgnoreMIEBug {
				// Fault: the global MIE gate is missing from the condition.
				meie := c.ctx.Eq(c.ctx.Extract(c.csrStored(riscv.CSRMIe), 11, 11), c.ctx.BV(1, 1))
				taken = c.ctx.BAnd(c.ctx.Eq(line, c.ctx.BV(1, 1)), meie)
			} else {
				taken = riscv.SymInterruptTaken(c.ctx, line, c.csrStored(riscv.CSRMStatus), c.csrStored(riscv.CSRMIe))
			}
			if c.eng.Branch(taken) {
				c.csr[riscv.CSRMEpc] = c.bv(c.pc)
				c.csr[riscv.CSRMCause] = c.bv(riscv.CauseMachineExternalIRQ)
				c.pc = uint32(c.eng.Concretize(c.csrStored(riscv.CSRMTvec)))
			}
		}
		ibReq = rtl.IBusRequest{FetchEnable: true, Address: c.bv(c.pc)}
		c.state = stFetchWait

	case stFetchWait:
		if ib.InstructionReady {
			c.insn = ib.Instruction
			c.state = stExec
		} else {
			// Keep the request asserted until the memory answers.
			ibReq = rtl.IBusRequest{FetchEnable: true, Address: c.bv(c.pc)}
		}

	case stExec:
		dbReq = c.execute()

	case stMem:
		if db.DataReady {
			c.mem.words[c.mem.phase] = db.ReadData
			c.mem.phase++
			if c.mem.phase < c.mem.nreq {
				dbReq = c.memRequest(c.mem.phase)
			} else {
				c.finishMem()
			}
		}
	}
	return ibReq, dbReq
}

// retire publishes the RVFI record and moves to the next fetch.
func (c *Core) retire(nextPC *smt.Term, rdAddr int, rdVal *smt.Term, trap bool, cause uint32) {
	c.order++
	c.ret = rvfi.Retirement{
		Valid:   true,
		Order:   c.order,
		Insn:    c.insn,
		Trap:    trap,
		Cause:   cause,
		PCRData: c.bv(c.pc),
		PCWData: nextPC,
		RdAddr:  rdAddr,
		RdWData: rdVal,
	}
	if c.mem.ea != nil {
		c.ret.MemAddr = c.mem.ea
		if c.mem.isStore {
			c.ret.MemWData = c.mem.storeVal
			c.ret.MemWMask = uint8(c.mem.reqStrobe[0])
		} else {
			c.ret.MemRMask = uint8(c.mem.reqStrobe[0])
		}
	}
	if !trap {
		c.instret++
	}
	// The next PC is concrete on this path (control state must be concrete).
	c.pc = uint32(c.eng.Concretize(nextPC))
	c.insn = nil
	c.mem = memPlan{}
	c.state = stFetch
	c.eng.CountInstruction(1)
}

func (c *Core) trap(cause uint32) {
	c.csr[riscv.CSRMEpc] = c.bv(c.pc)
	c.csr[riscv.CSRMCause] = c.bv(cause)
	c.retire(c.csrStored(riscv.CSRMTvec), 0, nil, true, cause)
}

func (c *Core) csrStored(addr uint16) *smt.Term {
	if v, ok := c.csr[addr]; ok {
		return v
	}
	return c.bv(0)
}

// execute decodes and executes the latched instruction; loads/stores issue
// their first bus request and park in stMem.
func (c *Core) execute() (dbReq rtl.DBusRequest) {
	ctx := c.ctx
	insn := c.insn
	pc := c.bv(c.pc)
	pcPlus4 := c.bv(c.pc + 4)

	op := c.decode(insn)
	f := c.cfg.Faults

	switch op {
	case opIllegal:
		c.trap(riscv.ExcIllegalInstruction)

	case opLUI:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		c.retireALU(rd, riscv.SymImmU(ctx, insn), pcPlus4)

	case opAUIPC:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		c.retireALU(rd, ctx.Add(pc, riscv.SymImmU(ctx, insn)), pcPlus4)

	case opJAL:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		next := ctx.Add(pc, riscv.SymImmJ(ctx, insn))
		if f.Has(faults.E5) {
			next = pcPlus4 // E5: JAL fails to change the PC
		}
		c.retireALU(rd, pcPlus4, next)

	case opJALR:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
		next := ctx.And(ctx.Add(c.regs[rs1], riscv.SymImmI(ctx, insn)), c.bv(0xfffffffe))
		c.retireALU(rd, pcPlus4, next)

	case opBEQ, opBNE, opBLT, opBGE, opBLTU, opBGEU:
		c.branch(op, insn, pc, pcPlus4)

	case opLB, opLH, opLW, opLBU, opLHU, opSB, opSH, opSW:
		dbReq = c.startMem(op, insn)

	case opADDI, opSLTI, opSLTIU, opXORI, opORI, opANDI, opSLLI, opSRLI, opSRAI:
		c.aluImm(op, insn, pcPlus4)

	case opADD, opSUB, opSLL, opSLT, opSLTU, opXOR, opSRL, opSRA, opOR, opAND,
		opMUL, opMULH, opMULHSU, opMULHU, opDIV, opDIVU, opREM, opREMU:
		c.aluReg(op, insn, pcPlus4)

	case opFENCE:
		c.retire(pcPlus4, 0, nil, false, 0)

	case opECALL:
		c.trap(riscv.ExcEnvCallFromM)

	case opEBREAK:
		c.trap(riscv.ExcBreakpoint)

	case opWFI:
		if c.cfg.NoWFI {
			// Shipped bug: WFI is not implemented and traps.
			c.trap(riscv.ExcIllegalInstruction)
		} else {
			c.retire(pcPlus4, 0, nil, false, 0)
		}

	case opMRET:
		c.retire(c.csrStored(riscv.CSRMEpc), 0, nil, false, 0)

	case opCSRRW, opCSRRS, opCSRRC, opCSRRWI, opCSRRSI, opCSRRCI:
		c.csrOp(op, insn, pcPlus4)

	default:
		c.trap(riscv.ExcIllegalInstruction)
	}
	return dbReq
}

func (c *Core) retireALU(rd int, val, next *smt.Term) {
	c.writeReg(rd, val)
	if rd == 0 {
		c.retire(next, 0, nil, false, 0)
	} else {
		c.retire(next, rd, val, false, 0)
	}
}

func (c *Core) branch(op opKind, insn, pc, pcPlus4 *smt.Term) {
	ctx := c.ctx
	rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
	rs2 := c.chooseReg(riscv.FieldRs2(ctx, insn))
	a, b := c.regs[rs1], c.regs[rs2]

	var cond *smt.Term
	switch op {
	case opBEQ:
		cond = ctx.Eq(a, b)
	case opBNE:
		if c.cfg.Faults.Has(faults.E6) {
			cond = ctx.Eq(a, b) // E6: BNE behaves like BEQ
		} else {
			cond = ctx.Ne(a, b)
		}
	case opBLT:
		cond = ctx.Slt(a, b)
	case opBGE:
		cond = ctx.Sge(a, b)
	case opBLTU:
		cond = ctx.Ult(a, b)
	case opBGEU:
		cond = ctx.Uge(a, b)
	}
	next := pcPlus4
	if c.eng.Branch(cond) {
		next = ctx.Add(pc, riscv.SymImmB(ctx, insn))
	}
	c.retire(next, 0, nil, false, 0)
}

func (c *Core) aluImm(op opKind, insn, pcPlus4 *smt.Term) {
	ctx := c.ctx
	rd := c.chooseReg(riscv.FieldRd(ctx, insn))
	rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
	a := c.regs[rs1]
	imm := riscv.SymImmI(ctx, insn)
	shamt := ctx.ZExt(riscv.FieldShamt(ctx, insn), 32)
	f := c.cfg.Faults

	var res *smt.Term
	switch op {
	case opADDI:
		res = ctx.Add(a, imm)
		if f.Has(faults.E3) {
			res = ctx.And(res, c.bv(0xfffffffe)) // E3: result bit 0 stuck at 0
		}
	case opSLTI:
		res = ctx.ZExt(ctx.BoolToBV(ctx.Slt(a, imm)), 32)
	case opSLTIU:
		res = ctx.ZExt(ctx.BoolToBV(ctx.Ult(a, imm)), 32)
	case opXORI:
		res = ctx.Xor(a, imm)
	case opORI:
		res = ctx.Or(a, imm)
	case opANDI:
		res = ctx.And(a, imm)
	case opSLLI:
		res = ctx.Shl(a, shamt)
	case opSRLI:
		res = ctx.Lshr(a, shamt)
	case opSRAI:
		res = ctx.Ashr(a, shamt)
	}
	c.retireALU(rd, res, pcPlus4)
}

func (c *Core) aluReg(op opKind, insn, pcPlus4 *smt.Term) {
	ctx := c.ctx
	rd := c.chooseReg(riscv.FieldRd(ctx, insn))
	rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
	rs2 := c.chooseReg(riscv.FieldRs2(ctx, insn))
	a, b := c.regs[rs1], c.regs[rs2]
	shamt := ctx.And(b, c.bv(31))
	f := c.cfg.Faults

	var res *smt.Term
	switch op {
	case opADD:
		res = ctx.Add(a, b)
	case opSUB:
		res = ctx.Sub(a, b)
		if f.Has(faults.E4) {
			res = ctx.And(res, c.bv(0x7fffffff)) // E4: result bit 31 stuck at 0
		}
	case opSLL:
		res = ctx.Shl(a, shamt)
	case opSLT:
		res = ctx.ZExt(ctx.BoolToBV(ctx.Slt(a, b)), 32)
	case opSLTU:
		res = ctx.ZExt(ctx.BoolToBV(ctx.Ult(a, b)), 32)
	case opXOR:
		res = ctx.Xor(a, b)
	case opSRL:
		res = ctx.Lshr(a, shamt)
	case opSRA:
		res = ctx.Ashr(a, shamt)
	case opOR:
		res = ctx.Or(a, b)
	case opAND:
		res = ctx.And(a, b)
	case opMUL:
		res = riscv.SymMul(ctx, a, b)
	case opMULH:
		res = riscv.SymMulH(ctx, a, b)
	case opMULHSU:
		res = riscv.SymMulHSU(ctx, a, b)
	case opMULHU:
		res = riscv.SymMulHU(ctx, a, b)
	case opDIV:
		res = riscv.SymDiv(ctx, a, b)
	case opDIVU:
		res = riscv.SymDivU(ctx, a, b)
	case opREM:
		res = riscv.SymRem(ctx, a, b)
	case opREMU:
		res = riscv.SymRemU(ctx, a, b)
	}
	c.retireALU(rd, res, pcPlus4)
}
