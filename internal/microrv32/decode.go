package microrv32

import (
	"symriscv/internal/faults"
	"symriscv/internal/riscv"
	"symriscv/internal/smt"
)

// opKind is the core's internal micro-op selector, the output of the decode
// table.
type opKind uint8

const (
	opIllegal opKind = iota
	opLUI
	opAUIPC
	opJAL
	opJALR
	opBEQ
	opBNE
	opBLT
	opBGE
	opBLTU
	opBGEU
	opLB
	opLH
	opLW
	opLBU
	opLHU
	opSB
	opSH
	opSW
	opADDI
	opSLTI
	opSLTIU
	opXORI
	opORI
	opANDI
	opSLLI
	opSRLI
	opSRAI
	opADD
	opSUB
	opSLL
	opSLT
	opSLTU
	opXOR
	opSRL
	opSRA
	opOR
	opAND
	opMUL
	opMULH
	opMULHSU
	opMULHU
	opDIV
	opDIVU
	opREM
	opREMU
	opFENCE
	opECALL
	opEBREAK
	opWFI
	opMRET
	opCSRRW
	opCSRRS
	opCSRRC
	opCSRRWI
	opCSRRSI
	opCSRRCI
)

// decodeEntry is one row of the SpinalHDL-style decode table: the
// instruction matches when (insn AND mask) == match.
type decodeEntry struct {
	mask, match uint32
	op          opKind
}

// bit25 is the RV64 shamt extension bit, reserved in RV32 shift-immediate
// encodings; the decode faults E0–E2 turn it into a don't-care.
const bit25 = uint32(1) << 25

// buildDecodeTable assembles the decode table, applying the decode-stage
// faults by clearing mask bits (don't-cares) and appending the M-extension
// rows when enabled.
func buildDecodeTable(f faults.Set, enableM bool) []decodeEntry {
	slliMask := uint32(0xfe00707f)
	srliMask := uint32(0xfe00707f)
	sraiMask := uint32(0xfe00707f)
	if f.Has(faults.E0) {
		slliMask &^= bit25
	}
	if f.Has(faults.E1) {
		srliMask &^= bit25
	}
	if f.Has(faults.E2) {
		sraiMask &^= bit25
	}

	table := []decodeEntry{
		{0x7f, riscv.OpLUI, opLUI},
		{0x7f, riscv.OpAUIPC, opAUIPC},
		{0x7f, riscv.OpJAL, opJAL},
		{0x707f, riscv.OpJALR, opJALR},

		{0x707f, riscv.F3BEQ<<12 | riscv.OpBranch, opBEQ},
		{0x707f, riscv.F3BNE<<12 | riscv.OpBranch, opBNE},
		{0x707f, riscv.F3BLT<<12 | riscv.OpBranch, opBLT},
		{0x707f, riscv.F3BGE<<12 | riscv.OpBranch, opBGE},
		{0x707f, riscv.F3BLTU<<12 | riscv.OpBranch, opBLTU},
		{0x707f, riscv.F3BGEU<<12 | riscv.OpBranch, opBGEU},

		{0x707f, riscv.F3LB<<12 | riscv.OpLoad, opLB},
		{0x707f, riscv.F3LH<<12 | riscv.OpLoad, opLH},
		{0x707f, riscv.F3LW<<12 | riscv.OpLoad, opLW},
		{0x707f, riscv.F3LBU<<12 | riscv.OpLoad, opLBU},
		{0x707f, riscv.F3LHU<<12 | riscv.OpLoad, opLHU},

		{0x707f, riscv.F3SB<<12 | riscv.OpStore, opSB},
		{0x707f, riscv.F3SH<<12 | riscv.OpStore, opSH},
		{0x707f, riscv.F3SW<<12 | riscv.OpStore, opSW},

		{0x707f, riscv.F3ADDSUB<<12 | riscv.OpImm, opADDI},
		{0x707f, riscv.F3SLT<<12 | riscv.OpImm, opSLTI},
		{0x707f, riscv.F3SLTU<<12 | riscv.OpImm, opSLTIU},
		{0x707f, riscv.F3XOR<<12 | riscv.OpImm, opXORI},
		{0x707f, riscv.F3OR<<12 | riscv.OpImm, opORI},
		{0x707f, riscv.F3AND<<12 | riscv.OpImm, opANDI},
		{slliMask, riscv.F3SLL<<12 | riscv.OpImm, opSLLI},
		{srliMask, riscv.F3SRL<<12 | riscv.OpImm, opSRLI},
		{sraiMask, 0x40000000 | riscv.F3SRL<<12 | riscv.OpImm, opSRAI},

		{0xfe00707f, riscv.F3ADDSUB<<12 | riscv.OpReg, opADD},
		{0xfe00707f, 0x40000000 | riscv.F3ADDSUB<<12 | riscv.OpReg, opSUB},
		{0xfe00707f, riscv.F3SLL<<12 | riscv.OpReg, opSLL},
		{0xfe00707f, riscv.F3SLT<<12 | riscv.OpReg, opSLT},
		{0xfe00707f, riscv.F3SLTU<<12 | riscv.OpReg, opSLTU},
		{0xfe00707f, riscv.F3XOR<<12 | riscv.OpReg, opXOR},
		{0xfe00707f, riscv.F3SRL<<12 | riscv.OpReg, opSRL},
		{0xfe00707f, 0x40000000 | riscv.F3SRL<<12 | riscv.OpReg, opSRA},
		{0xfe00707f, riscv.F3OR<<12 | riscv.OpReg, opOR},
		{0xfe00707f, riscv.F3AND<<12 | riscv.OpReg, opAND},

		{0x707f, riscv.OpMisc, opFENCE},

		{0xffffffff, riscv.F12ECALL<<20 | riscv.OpSystem, opECALL},
		{0xffffffff, riscv.F12EBREAK<<20 | riscv.OpSystem, opEBREAK},
		{0xffffffff, riscv.F12WFI<<20 | riscv.OpSystem, opWFI},
		{0xffffffff, riscv.F12MRET<<20 | riscv.OpSystem, opMRET},

		{0x707f, uint32(riscv.F3CSRRW)<<12 | riscv.OpSystem, opCSRRW},
		{0x707f, uint32(riscv.F3CSRRS)<<12 | riscv.OpSystem, opCSRRS},
		{0x707f, uint32(riscv.F3CSRRC)<<12 | riscv.OpSystem, opCSRRC},
		{0x707f, uint32(riscv.F3CSRRWI)<<12 | riscv.OpSystem, opCSRRWI},
		{0x707f, uint32(riscv.F3CSRRSI)<<12 | riscv.OpSystem, opCSRRSI},
		{0x707f, uint32(riscv.F3CSRRCI)<<12 | riscv.OpSystem, opCSRRCI},
	}
	if enableM {
		// Fixed order: the decode walk must be identical on every path of an
		// exploration (replay determinism).
		mRows := []struct {
			f3 uint32
			op opKind
		}{
			{riscv.F3MUL, opMUL}, {riscv.F3MULH, opMULH},
			{riscv.F3MULHSU, opMULHSU}, {riscv.F3MULHU, opMULHU},
			{riscv.F3DIV, opDIV}, {riscv.F3DIVU, opDIVU},
			{riscv.F3REM, opREM}, {riscv.F3REMU, opREMU},
		}
		for _, r := range mRows {
			table = append(table, decodeEntry{0xfe00707f, riscv.F7MulDiv<<25 | r.f3<<12 | riscv.OpReg, r.op})
		}
	}
	return table
}

// decode walks the decode table, forking the exploration over the matching
// entries; no match decodes to opIllegal.
func (c *Core) decode(insn *smt.Term) opKind {
	ctx := c.ctx
	for _, e := range c.table {
		cond := ctx.Eq(ctx.And(insn, c.bv(e.mask)), c.bv(e.match))
		if c.eng.Branch(cond) {
			return e.op
		}
	}
	return opIllegal
}
