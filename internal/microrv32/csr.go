package microrv32

import (
	"symriscv/internal/riscv"
	"symriscv/internal/smt"
)

// The CSR surface the RTL core implements (deterministic resolution order).
// Compared with the reference ISS, the core lacks mscratch, mcounteren, the
// whole hpm counter/event files and the unprivileged counter views — the
// source of the "unimpl. CSR" mismatch rows of Table I.
var rtlCSRs = []uint16{
	riscv.CSRMStatus, riscv.CSRMIsa, riscv.CSRMIe, riscv.CSRMTvec,
	riscv.CSRMEpc, riscv.CSRMCause, riscv.CSRMTval,
	riscv.CSRMIdeleg, riscv.CSRMEdeleg, riscv.CSRMIp,
	riscv.CSRMCycle, riscv.CSRMInstret, riscv.CSRMCycleH, riscv.CSRMInstretH,
	riscv.CSRMVendorID, riscv.CSRMArchID, riscv.CSRMImpID, riscv.CSRMHartID,
}

// counterWriteTrapSet lists the CSRs whose writes spuriously trap in the
// shipped core (Table I "Trap at write access" rows).
func counterWriteTrap(addr uint16) bool {
	switch addr {
	case riscv.CSRMIp, riscv.CSRMCycle, riscv.CSRMInstret, riscv.CSRMCycleH, riscv.CSRMInstretH:
		return true
	}
	return false
}

// chooseCSR resolves the symbolic CSR address against the implemented set.
// Unimplemented addresses stay symbolic (known == false): the core treats
// them uniformly, so one path covers the whole class.
func (c *Core) chooseCSR(field *smt.Term) (addr uint16, known bool) {
	for _, a := range rtlCSRs {
		if c.eng.BranchEq(field, c.ctx.BV(12, uint64(a))) {
			return a, true
		}
	}
	return 0, false
}

// csrRead returns the hardware view of an implemented CSR. The cycle and
// instret counters read the core's real cycle-accurate counts — the source
// of the "Cycle Count Mismatch" rows against the ISS's abstract timing.
func (c *Core) csrRead(addr uint16) *smt.Term {
	if v, ok := c.csr[addr]; ok {
		return v
	}
	switch addr {
	case riscv.CSRMIsa:
		if c.cfg.EnableM {
			return c.bv(riscv.MisaRV32IM)
		}
		return c.bv(riscv.MisaRV32I)
	case riscv.CSRMCycle:
		return c.bv(uint32(c.cycle))
	case riscv.CSRMCycleH:
		return c.bv(uint32(c.cycle >> 32))
	case riscv.CSRMInstret:
		return c.bv(uint32(c.instret))
	case riscv.CSRMInstretH:
		return c.bv(uint32(c.instret >> 32))
	}
	return c.bv(0)
}

// csrWrite commits a CSR write; ok == false demands an illegal-instruction
// trap.
func (c *Core) csrWrite(addr uint16, v *smt.Term) (ok bool) {
	if riscv.CSRReadOnly(addr) {
		// The ID registers: the architecture demands a trap; the shipped
		// core silently ignores the write.
		return c.cfg.NoReadonlyWriteTrap
	}
	if counterWriteTrap(addr) && c.cfg.TrapOnCounterWrite {
		return false // shipped bug: spurious trap on counter/mip writes
	}
	if addr == riscv.CSRMIsa {
		return true // WARL: write ignored
	}
	c.csr[addr] = v
	return true
}

// csrOp executes one Zicsr instruction in the RTL CSR unit.
func (c *Core) csrOp(op opKind, insn, pcPlus4 *smt.Term) {
	ctx := c.ctx

	immForm := op == opCSRRWI || op == opCSRRSI || op == opCSRRCI
	rd := c.chooseReg(riscv.FieldRd(ctx, insn))

	var src *smt.Term
	var wantWrite bool
	switch {
	case immForm:
		src = riscv.SymZimm(ctx, insn)
		if op == opCSRRWI {
			wantWrite = true
		} else {
			wantWrite = !c.eng.BranchEq(riscv.FieldRs1(ctx, insn), ctx.BV(5, 0))
		}
	default:
		rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
		src = c.regs[rs1]
		wantWrite = op == opCSRRW || rs1 != 0
	}
	isRW := op == opCSRRW || op == opCSRRWI
	wantRead := !isRW || rd != 0

	addr, known := c.chooseCSR(riscv.FieldCSR(ctx, insn))
	if !known {
		if !c.cfg.NoIllegalCSRTrap {
			c.trap(riscv.ExcIllegalInstruction)
			return
		}
		// Shipped bug: unimplemented CSRs read as zero, writes vanish.
		if wantRead {
			c.retireALU(rd, c.bv(0), pcPlus4)
		} else {
			c.retire(pcPlus4, 0, nil, false, 0)
		}
		return
	}

	var old *smt.Term
	if wantRead {
		old = c.csrRead(addr)
	}
	if wantWrite {
		var nv *smt.Term
		switch {
		case isRW:
			nv = src
		case op == opCSRRS || op == opCSRRSI:
			nv = ctx.Or(old, src)
		default:
			nv = ctx.And(old, ctx.Not(src))
		}
		if !c.csrWrite(addr, nv) {
			c.trap(riscv.ExcIllegalInstruction)
			return
		}
	}
	if wantRead {
		c.retireALU(rd, old, pcPlus4)
	} else {
		c.retire(pcPlus4, 0, nil, false, 0)
	}
}

// ImplementsCSR reports whether the RTL core implements the CSR address.
func ImplementsCSR(addr uint16) bool {
	for _, a := range rtlCSRs {
		if a == addr {
			return true
		}
	}
	return false
}
