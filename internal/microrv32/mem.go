package microrv32

import (
	"symriscv/internal/faults"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

func memOpSize(op opKind) uint32 {
	switch op {
	case opLB, opLBU, opSB:
		return 1
	case opLH, opLHU, opSH:
		return 2
	default:
		return 4
	}
}

// startMem executes the address phase of a load/store: effective-address
// computation, the (configurable) alignment check, transaction planning —
// one aligned bus word, or two when the core's full misaligned support has
// to split the access — and the first bus request.
func (c *Core) startMem(op opKind, insn *smt.Term) rtl.DBusRequest {
	ctx := c.ctx
	isStore := op == opSB || op == opSH || op == opSW

	var rd, rs2 int
	rs1 := 0
	if isStore {
		rs1 = c.chooseReg(riscv.FieldRs1(ctx, insn))
		rs2 = c.chooseReg(riscv.FieldRs2(ctx, insn))
	} else {
		rd = c.chooseReg(riscv.FieldRd(ctx, insn))
		rs1 = c.chooseReg(riscv.FieldRs1(ctx, insn))
	}

	var ea *smt.Term
	if isStore {
		ea = ctx.Add(c.regs[rs1], riscv.SymImmS(ctx, insn))
	} else {
		ea = ctx.Add(c.regs[rs1], riscv.SymImmI(ctx, insn))
	}

	size := memOpSize(op)
	if !c.cfg.NoMisalignedCheck && size > 1 {
		cond := ctx.Ne(ctx.And(ea, c.bv(size-1)), c.bv(0))
		if c.eng.Branch(cond) {
			if isStore {
				c.trap(riscv.ExcStoreAddrMisaligned)
			} else {
				c.trap(riscv.ExcLoadAddrMisaligned)
			}
			return rtl.DBusRequest{}
		}
	}

	// The strobe generator is a mux over the low address bits: resolving it
	// forks the exploration across the byte lanes (and, with misaligned
	// support, across the aligned/misaligned classes) *before* the address
	// is concretized — this is what lets the voter reach the misaligned
	// paths where the reference ISS traps.
	lane2 := ctx.Extract(ea, 1, 0)
	for i := uint64(0); i < 4; i++ {
		if c.eng.BranchEq(lane2, ctx.BV(2, i)) {
			break
		}
	}

	addr := uint32(c.eng.Concretize(ea))
	if op == opLBU && c.cfg.Faults.Has(faults.E7) {
		addr ^= 3 // E7: byte-lane endianness flip on LBU
	}

	plan := memPlan{op: op, isStore: isStore, rd: rd, addr: addr, ea: ea}

	base := addr &^ 3
	span := addr&3 + size
	plan.nreq = 1
	if span > 4 {
		plan.nreq = 2
	}
	plan.reqAddr[0] = base
	plan.reqAddr[1] = base + 4

	if isStore {
		val := c.regs[rs2]
		if size < 4 {
			plan.storeVal = ctx.ZExt(ctx.Extract(val, int(8*size-1), 0), 32)
		} else {
			plan.storeVal = val
		}
		var words [2][4]*smt.Term
		var strobes [2]rtl.Strobe
		for i := uint32(0); i < size; i++ {
			g := addr + i
			w := (g - base) / 4
			lane := g & 3
			words[w][lane] = ctx.Extract(val, int(8*i+7), int(8*i))
			strobes[w] |= rtl.Strobe(1) << lane
		}
		zero8 := ctx.BV(8, 0)
		for w := 0; w < plan.nreq; w++ {
			lanes := words[w]
			for l := range lanes {
				if lanes[l] == nil {
					lanes[l] = zero8
				}
			}
			word := ctx.Concat(lanes[3], ctx.Concat(lanes[2], ctx.Concat(lanes[1], lanes[0])))
			plan.reqData[w] = word
			plan.reqStrobe[w] = strobes[w]
		}
	} else {
		var strobes [2]rtl.Strobe
		for i := uint32(0); i < size; i++ {
			g := addr + i
			strobes[(g-base)/4] |= rtl.Strobe(1) << (g & 3)
		}
		plan.reqStrobe[0] = strobes[0]
		plan.reqStrobe[1] = strobes[1]
	}

	c.mem = plan
	c.state = stMem
	return c.memRequest(0)
}

// memRequest builds the bus request for transaction phase i.
func (c *Core) memRequest(i int) rtl.DBusRequest {
	return rtl.DBusRequest{
		Enable:    true,
		Write:     c.mem.isStore,
		Address:   c.bv(c.mem.reqAddr[i]),
		WrStrobe:  c.mem.reqStrobe[i],
		WriteData: c.mem.reqData[i],
	}
}

// finishMem runs after the last bus response: loads assemble and extend
// their value (the fault hooks E8/E9 live here), then the instruction
// retires.
func (c *Core) finishMem() {
	ctx := c.ctx
	pcPlus4 := c.bv(c.pc + 4)
	m := &c.mem

	if m.isStore {
		c.retire(pcPlus4, 0, nil, false, 0)
		return
	}

	size := memOpSize(m.op)
	base := m.addr &^ 3
	bytes := make([]*smt.Term, size)
	for i := uint32(0); i < size; i++ {
		g := m.addr + i
		w := (g - base) / 4
		lane := g & 3
		bytes[i] = ctx.Extract(m.words[w], int(8*lane+7), int(8*lane))
	}

	f := c.cfg.Faults
	var val *smt.Term
	switch m.op {
	case opLB:
		if f.Has(faults.E8) {
			val = ctx.ZExt(bytes[0], 32) // E8: sign extension missing
		} else {
			val = ctx.SExt(bytes[0], 32)
		}
	case opLBU:
		val = ctx.ZExt(bytes[0], 32)
	case opLH:
		val = ctx.SExt(ctx.Concat(bytes[1], bytes[0]), 32)
	case opLHU:
		val = ctx.ZExt(ctx.Concat(bytes[1], bytes[0]), 32)
	case opLW:
		word := ctx.Concat(bytes[3], ctx.Concat(bytes[2], ctx.Concat(bytes[1], bytes[0])))
		if f.Has(faults.E9) {
			val = ctx.ZExt(ctx.Extract(word, 15, 0), 32) // E9: upper half not loaded
		} else {
			val = word
		}
	}
	c.retireALU(m.rd, val, pcPlus4)
}
