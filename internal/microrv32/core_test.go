package microrv32_test

import (
	"testing"

	"symriscv/internal/core"
	"symriscv/internal/faults"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// busTrace records the DBus transactions the core issued.
type busTrace struct {
	reads  []rtl.DBusRequest
	writes []rtl.DBusRequest
}

type fixture struct {
	rets   []rvfi.Retirement
	trace  busTrace
	mem    map[uint32]uint8
	cycles uint64
}

// run clocks the core over a concrete program with a concrete byte memory,
// servicing both buses, until n instructions retired.
func run(t *testing.T, cfg microrv32.Config, words []uint32, regs map[int]uint32, n int, preMem map[uint32]uint8) fixture {
	t.Helper()
	var fx fixture
	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		c := microrv32.New(e, cfg)
		for i, v := range regs {
			c.SetReg(i, ctx.BV(32, uint64(v)))
		}
		mem := map[uint32]uint8{}
		for a, v := range preMem {
			mem[a] = v
		}
		fx = fixture{mem: mem}

		var ib rtl.IBusResponse
		var db rtl.DBusResponse
		for cycles := 0; len(fx.rets) < n; cycles++ {
			if cycles > 64*n {
				t.Errorf("core hung after %d cycles", cycles)
				return nil
			}
			ibReq, dbReq := c.Step(ib, db)
			ib, db = rtl.IBusResponse{}, rtl.DBusResponse{}
			if ibReq.FetchEnable {
				addr := uint32(ibReq.Address.ConstVal())
				w := uint32(riscv.ADDI(0, 0, 0))
				if int(addr/4) < len(words) && addr%4 == 0 {
					w = words[addr/4]
				}
				ib = rtl.IBusResponse{InstructionReady: true, Instruction: ctx.BV(32, uint64(w))}
			}
			if dbReq.Enable {
				base := uint32(dbReq.Address.ConstVal()) &^ 3
				if dbReq.Write {
					fx.trace.writes = append(fx.trace.writes, dbReq)
					for lane := uint32(0); lane < 4; lane++ {
						if dbReq.WrStrobe>>lane&1 == 1 {
							mem[base+lane] = uint8(dbReq.WriteData.ConstVal() >> (8 * lane))
						}
					}
					db = rtl.DBusResponse{DataReady: true, ReadData: ctx.BV(32, 0)}
				} else {
					fx.trace.reads = append(fx.trace.reads, dbReq)
					var v uint64
					for lane := uint32(0); lane < 4; lane++ {
						v |= uint64(mem[base+lane]) << (8 * lane)
					}
					db = rtl.DBusResponse{DataReady: true, ReadData: ctx.BV(32, v)}
				}
			}
			if ret := c.Retirement(); ret.Valid {
				fx.rets = append(fx.rets, *ret)
			}
		}
		fx.cycles = c.Cycles()
		return nil
	})
	rep := x.Explore(core.Options{})
	if rep.Stats.Completed != 1 || rep.Stats.Paths != 1 {
		t.Fatalf("concrete program should run on one path: %v", rep.Stats)
	}
	return fx
}

func cval(t *testing.T, term *smt.Term) uint32 {
	t.Helper()
	if term == nil || !term.IsConst() {
		t.Fatalf("term not concrete: %v", term)
	}
	return uint32(term.ConstVal())
}

func TestALURetirement(t *testing.T) {
	regs := map[int]uint32{1: 0xfffffff6, 2: 7}
	cases := []struct {
		word uint32
		want uint32
	}{
		{riscv.ADD(3, 1, 2), 0xfffffffd},
		{riscv.SUB(3, 1, 2), 0xffffffef},
		{riscv.SRA(3, 1, 2), 0xffffffff},
		{riscv.ADDI(3, 1, -5), 0xfffffff1},
		{riscv.SLLI(3, 2, 4), 0x70},
		{riscv.LUI(3, 0xabcde000), 0xabcde000},
	}
	for _, tc := range cases {
		fx := run(t, microrv32.FixedConfig(), []uint32{tc.word}, regs, 1, nil)
		ret := fx.rets[0]
		if ret.Trap {
			t.Errorf("%s trapped", riscv.Disasm(tc.word))
			continue
		}
		if ret.RdAddr != 3 || cval(t, ret.RdWData) != tc.want {
			t.Errorf("%s: x%d = %#x, want x3 = %#x", riscv.Disasm(tc.word), ret.RdAddr, cval(t, ret.RdWData), tc.want)
		}
		if cval(t, ret.PCWData) != 4 {
			t.Errorf("%s: pc_wdata = %#x", riscv.Disasm(tc.word), cval(t, ret.PCWData))
		}
	}
}

func TestMultiCycleTiming(t *testing.T) {
	// Fetch (2 cycles: request + wait) + execute = 3 cycles for an ALU op.
	fx := run(t, microrv32.FixedConfig(), []uint32{riscv.ADDI(1, 0, 1)}, nil, 1, nil)
	if fx.cycles != 3 {
		t.Errorf("ALU instruction took %d cycles, want 3", fx.cycles)
	}
	// A load adds the DBus access cycle.
	fx = run(t, microrv32.FixedConfig(), []uint32{riscv.LW(1, 0, 100)}, nil, 1, nil)
	if fx.cycles != 4 {
		t.Errorf("load took %d cycles, want 4", fx.cycles)
	}
}

func TestRVFIOrderAndInsn(t *testing.T) {
	prog := []uint32{riscv.ADDI(1, 0, 1), riscv.ADDI(2, 0, 2)}
	fx := run(t, microrv32.FixedConfig(), prog, nil, 2, nil)
	if fx.rets[0].Order != 1 || fx.rets[1].Order != 2 {
		t.Error("rvfi_order must count retirements")
	}
	if cval(t, fx.rets[1].Insn) != prog[1] {
		t.Error("rvfi_insn mismatch")
	}
	if cval(t, fx.rets[1].PCRData) != 4 {
		t.Error("second instruction pc_rdata must be 4")
	}
}

func TestLoadLaneExtraction(t *testing.T) {
	mem := map[uint32]uint8{100: 0x80, 101: 0x91, 102: 0x22, 103: 0x13}
	regs := map[int]uint32{1: 100}
	cases := []struct {
		word   uint32
		want   uint32
		strobe rtl.Strobe
	}{
		{riscv.LB(3, 1, 0), 0xffffff80, rtl.StrobeByte0},
		{riscv.LBU(3, 1, 1), 0x91, rtl.StrobeByte1},
		{riscv.LBU(3, 1, 3), 0x13, rtl.StrobeByte3},
		{riscv.LH(3, 1, 0), 0xffff9180, rtl.StrobeHalf0},
		{riscv.LHU(3, 1, 2), 0x1322, rtl.StrobeHalf1},
		{riscv.LW(3, 1, 0), 0x13229180, rtl.StrobeWord},
	}
	for _, tc := range cases {
		fx := run(t, microrv32.FixedConfig(), []uint32{tc.word}, regs, 1, mem)
		if got := cval(t, fx.rets[0].RdWData); got != tc.want {
			t.Errorf("%s: got %#x, want %#x", riscv.Disasm(tc.word), got, tc.want)
		}
		if len(fx.trace.reads) != 1 || fx.trace.reads[0].WrStrobe != tc.strobe {
			t.Errorf("%s: strobe %04b, want %04b", riscv.Disasm(tc.word), fx.trace.reads[0].WrStrobe, tc.strobe)
		}
	}
}

func TestStoreStrobes(t *testing.T) {
	regs := map[int]uint32{1: 100, 2: 0xdeadbeef}
	fx := run(t, microrv32.FixedConfig(), []uint32{riscv.SH(1, 2, 2)}, regs, 1, nil)
	w := fx.trace.writes
	if len(w) != 1 || w[0].WrStrobe != rtl.StrobeHalf1 {
		t.Fatalf("sh strobe wrong: %+v", w)
	}
	if fx.mem[102] != 0xef || fx.mem[103] != 0xbe {
		t.Errorf("sh stored %#x %#x", fx.mem[102], fx.mem[103])
	}
	if _, ok := fx.mem[100]; ok {
		t.Error("sh touched unselected lanes")
	}
}

func TestMisalignedSupportSplitsTransactions(t *testing.T) {
	// Shipped core: misaligned LW at 102 must issue two word reads and
	// assemble the straddling bytes.
	mem := map[uint32]uint8{102: 0x11, 103: 0x22, 104: 0x33, 105: 0x44}
	regs := map[int]uint32{1: 102}
	cfg := microrv32.ShippedConfig()
	fx := run(t, cfg, []uint32{riscv.LW(3, 1, 0)}, regs, 1, mem)
	if len(fx.trace.reads) != 2 {
		t.Fatalf("misaligned LW issued %d transactions, want 2", len(fx.trace.reads))
	}
	if got := cval(t, fx.rets[0].RdWData); got != 0x44332211 {
		t.Errorf("misaligned LW = %#x, want 0x44332211", got)
	}
	// Misaligned store splits too.
	fx = run(t, cfg, []uint32{riscv.SW(1, 2, 1)}, map[int]uint32{1: 102, 2: 0xa1b2c3d4}, 1, nil)
	if len(fx.trace.writes) != 2 {
		t.Fatalf("misaligned SW issued %d transactions, want 2", len(fx.trace.writes))
	}
	for i, want := range []uint8{0xd4, 0xc3, 0xb2, 0xa1} {
		if got := fx.mem[103+uint32(i)]; got != want {
			t.Errorf("mem[%d] = %#x, want %#x", 103+i, got, want)
		}
	}
}

func TestFixedCoreTrapsOnMisaligned(t *testing.T) {
	regs := map[int]uint32{1: 101}
	fx := run(t, microrv32.FixedConfig(), []uint32{riscv.LW(3, 1, 0)}, regs, 1, nil)
	ret := fx.rets[0]
	if !ret.Trap || ret.Cause != riscv.ExcLoadAddrMisaligned {
		t.Errorf("fixed core must trap misaligned LW: trap=%v cause=%d", ret.Trap, ret.Cause)
	}
	if len(fx.trace.reads) != 0 {
		t.Error("trapped access must not touch the bus")
	}
}

func TestWFIBehaviour(t *testing.T) {
	fx := run(t, microrv32.ShippedConfig(), []uint32{riscv.WFI()}, nil, 1, nil)
	if !fx.rets[0].Trap {
		t.Error("shipped core must trap on WFI")
	}
	fx = run(t, microrv32.FixedConfig(), []uint32{riscv.WFI()}, nil, 1, nil)
	if fx.rets[0].Trap {
		t.Error("fixed core must execute WFI as NOP")
	}
}

func TestShippedCSRBugs(t *testing.T) {
	shipped := microrv32.ShippedConfig()
	// Unknown CSR: no trap, reads zero.
	fx := run(t, shipped, []uint32{riscv.CSRRW(1, 0x400, 0)}, nil, 1, nil)
	if fx.rets[0].Trap {
		t.Error("shipped core must not trap on unknown CSR")
	}
	if cval(t, fx.rets[0].RdWData) != 0 {
		t.Error("unknown CSR must read zero")
	}
	// Read-only ID write: silently ignored.
	fx = run(t, shipped, []uint32{riscv.CSRRW(0, riscv.CSRMArchID, 1)}, map[int]uint32{1: 1}, 1, nil)
	if fx.rets[0].Trap {
		t.Error("shipped core must not trap writing marchid")
	}
	// Counter write: spurious trap.
	for _, csr := range []uint16{riscv.CSRMIp, riscv.CSRMCycle, riscv.CSRMInstret, riscv.CSRMCycleH, riscv.CSRMInstretH} {
		fx = run(t, shipped, []uint32{riscv.CSRRW(0, uint32(csr), 0)}, nil, 1, nil)
		if !fx.rets[0].Trap {
			t.Errorf("shipped core must trap writing %s", riscv.CSRName(csr))
		}
	}
}

func TestFixedCSRBehaviour(t *testing.T) {
	fixed := microrv32.FixedConfig()
	// Unknown CSR traps.
	fx := run(t, fixed, []uint32{riscv.CSRRW(1, 0x400, 0)}, nil, 1, nil)
	if !fx.rets[0].Trap {
		t.Error("fixed core must trap on unknown CSR")
	}
	// Read-only write traps.
	fx = run(t, fixed, []uint32{riscv.CSRRW(0, riscv.CSRMArchID, 1)}, map[int]uint32{1: 1}, 1, nil)
	if !fx.rets[0].Trap {
		t.Error("fixed core must trap writing marchid")
	}
	// Counter write succeeds and reads back.
	prog := []uint32{
		riscv.CSRRW(0, riscv.CSRMCycle, 1),
		riscv.CSRRS(2, riscv.CSRMCycle, 0),
	}
	fx = run(t, fixed, prog, map[int]uint32{1: 0x777}, 2, nil)
	if fx.rets[0].Trap || fx.rets[1].Trap {
		t.Fatal("fixed counter write trapped")
	}
	if got := cval(t, fx.rets[1].RdWData); got != 0x777 {
		t.Errorf("mcycle read-back = %#x, want 0x777", got)
	}
}

func TestHardwareCounters(t *testing.T) {
	// mcycle reads the real cycle counter; minstret the retired count.
	prog := []uint32{
		riscv.ADDI(0, 0, 0),
		riscv.CSRRS(1, riscv.CSRMInstret, 0),
		riscv.CSRRS(2, riscv.CSRMCycle, 0),
	}
	fx := run(t, microrv32.FixedConfig(), prog, nil, 3, nil)
	if got := cval(t, fx.rets[1].RdWData); got != 1 {
		t.Errorf("minstret during 2nd instruction = %d, want 1", got)
	}
	if got := cval(t, fx.rets[2].RdWData); got < 6 {
		t.Errorf("mcycle = %d, want >= 6", got)
	}
}

func TestDecodeFaultsAcceptReserved(t *testing.T) {
	reserved := riscv.SLLI(3, 1, 4) | 1<<25
	regs := map[int]uint32{1: 2}

	fx := run(t, microrv32.FixedConfig(), []uint32{reserved}, regs, 1, nil)
	if !fx.rets[0].Trap {
		t.Fatal("clean core must trap on the reserved shift encoding")
	}
	cfg := microrv32.FixedConfig()
	cfg.Faults = faults.Only(faults.E0)
	fx = run(t, cfg, []uint32{reserved}, regs, 1, nil)
	if fx.rets[0].Trap {
		t.Fatal("E0 core must decode the reserved encoding as SLLI")
	}
	if got := cval(t, fx.rets[0].RdWData); got != 2<<4 {
		t.Errorf("E0 SLLI result = %#x, want %#x", got, 2<<4)
	}
}

func TestDataPathFaults(t *testing.T) {
	regs := map[int]uint32{1: 3, 2: 1}

	cfg := microrv32.FixedConfig()
	cfg.Faults = faults.Only(faults.E3)
	fx := run(t, cfg, []uint32{riscv.ADDI(3, 1, 2)}, regs, 1, nil)
	if got := cval(t, fx.rets[0].RdWData); got != 4 {
		t.Errorf("E3: addi 3+2 = %d, want 4 (bit0 stuck)", got)
	}

	cfg.Faults = faults.Only(faults.E4)
	fx = run(t, cfg, []uint32{riscv.SUB(3, 2, 1)}, regs, 1, nil)
	if got := cval(t, fx.rets[0].RdWData); got != 0x7ffffffe {
		t.Errorf("E4: 1-3 = %#x, want 0x7ffffffe", got)
	}

	cfg.Faults = faults.Only(faults.E5)
	fx = run(t, cfg, []uint32{riscv.JAL(1, 64)}, nil, 1, nil)
	if got := cval(t, fx.rets[0].PCWData); got != 4 {
		t.Errorf("E5: jal next pc = %d, want 4", got)
	}

	cfg.Faults = faults.Only(faults.E6)
	fx = run(t, cfg, []uint32{riscv.BNE(1, 1, 64)}, regs, 1, nil)
	if got := cval(t, fx.rets[0].PCWData); got != 64 {
		t.Errorf("E6: bne on equal regs must branch (beq behaviour), got pc %d", got)
	}

	mem := map[uint32]uint8{100: 0x80, 101: 0x01, 102: 0x02, 103: 0x03}
	cfg.Faults = faults.Only(faults.E7)
	fx = run(t, cfg, []uint32{riscv.LBU(3, 1, 97)}, regs, 1, mem) // x1=3 -> addr 100
	if got := cval(t, fx.rets[0].RdWData); got != 0x03 {
		t.Errorf("E7: lbu lane flip: got %#x, want 0x03 (lane 3)", got)
	}

	cfg.Faults = faults.Only(faults.E8)
	fx = run(t, cfg, []uint32{riscv.LB(3, 1, 97)}, regs, 1, mem)
	if got := cval(t, fx.rets[0].RdWData); got != 0x80 {
		t.Errorf("E8: lb without sign extension: got %#x, want 0x80", got)
	}

	cfg.Faults = faults.Only(faults.E9)
	fx = run(t, cfg, []uint32{riscv.LW(3, 1, 97)}, regs, 1, mem)
	if got := cval(t, fx.rets[0].RdWData); got != 0x0180 {
		t.Errorf("E9: lw lower half only: got %#x, want 0x0180", got)
	}
}

func TestImplementsCSR(t *testing.T) {
	if !microrv32.ImplementsCSR(riscv.CSRMCycle) || !microrv32.ImplementsCSR(riscv.CSRMIdeleg) {
		t.Error("core should implement mcycle/mideleg")
	}
	for _, addr := range []uint16{riscv.CSRMScratch, riscv.CSRMCounteren, riscv.CSRCycle, riscv.CSRMHpmCounterBase + 3} {
		if microrv32.ImplementsCSR(addr) {
			t.Errorf("core should not implement %s", riscv.CSRName(addr))
		}
	}
}

func TestMExtensionSemantics(t *testing.T) {
	cfg := microrv32.FixedConfig()
	cfg.EnableM = true
	regs := map[int]uint32{1: 0xfffffff6, 2: 7} // x1 = -10, x2 = 7
	cases := []struct {
		word uint32
		want uint32
	}{
		{riscv.MUL(3, 1, 2), 0xffffffba},    // -70
		{riscv.MULH(3, 1, 2), 0xffffffff},   // high of -70
		{riscv.MULHU(3, 1, 2), 6},           // high of 0xfffffff6 * 7
		{riscv.MULHSU(3, 1, 2), 0xffffffff}, // signed * unsigned
		{riscv.DIV(3, 1, 2), 0xffffffff},    // -10 / 7 = -1
		{riscv.DIVU(3, 1, 2), 0x24924923},   // 0xfffffff6 / 7
		{riscv.REM(3, 1, 2), 0xfffffffd},    // -10 % 7 = -3
		{riscv.REMU(3, 1, 2), 0xfffffff6 % 7},
	}
	for _, tc := range cases {
		fx := run(t, cfg, []uint32{tc.word}, regs, 1, nil)
		if fx.rets[0].Trap {
			t.Errorf("%s trapped", riscv.Disasm(tc.word))
			continue
		}
		if got := cval(t, fx.rets[0].RdWData); got != tc.want {
			t.Errorf("%s: got %#x, want %#x", riscv.Disasm(tc.word), got, tc.want)
		}
	}
}

func TestMExtensionEdgeCases(t *testing.T) {
	cfg := microrv32.FixedConfig()
	cfg.EnableM = true
	intMin := uint32(0x80000000)
	cases := []struct {
		word uint32
		x1   uint32
		x2   uint32
		want uint32
	}{
		{riscv.DIV(3, 1, 2), 100, 0, 0xffffffff},         // div by zero -> -1
		{riscv.DIVU(3, 1, 2), 100, 0, 0xffffffff},        // divu by zero -> 2^32-1
		{riscv.REM(3, 1, 2), 100, 0, 100},                // rem by zero -> dividend
		{riscv.REMU(3, 1, 2), 100, 0, 100},               // remu by zero -> dividend
		{riscv.DIV(3, 1, 2), intMin, 0xffffffff, intMin}, // overflow -> INT_MIN
		{riscv.REM(3, 1, 2), intMin, 0xffffffff, 0},      // overflow -> 0
		{riscv.DIV(3, 1, 2), 0xfffffff6, 0xfffffffe, 5},  // -10 / -2 = 5
		{riscv.REM(3, 1, 2), 7, 0xfffffffe, 1},           // 7 % -2 = 1
	}
	for _, tc := range cases {
		fx := run(t, cfg, []uint32{tc.word}, map[int]uint32{1: tc.x1, 2: tc.x2}, 1, nil)
		if got := cval(t, fx.rets[0].RdWData); got != tc.want {
			t.Errorf("%s x1=%#x x2=%#x: got %#x, want %#x",
				riscv.Disasm(tc.word), tc.x1, tc.x2, got, tc.want)
		}
	}
	// Without EnableM, the same encodings trap.
	fx := run(t, microrv32.FixedConfig(), []uint32{riscv.MUL(3, 1, 2)}, map[int]uint32{1: 2, 2: 3}, 1, nil)
	if !fx.rets[0].Trap {
		t.Error("M encoding must trap when the extension is disabled")
	}
}
