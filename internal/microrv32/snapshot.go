package microrv32

import (
	"symriscv/internal/core"
	"symriscv/internal/smt"
)

// SnapshotDUT freezes the core's complete micro-architectural state and
// returns a restore closure rebuilding an equivalent core bound to a fresh
// engine (fork-point checkpointing). Register values, the in-flight
// instruction and the memory plan carry hash-consed *smt.Term pointers that
// are shared as-is; the CSR map and interesting-register slice are copied per
// restore so resumed siblings stay isolated; the immutable decode table is
// shared. irqSrc, when non-nil, must be the restored interrupt source
// (asserted to IrqSource); it replaces the frozen one without disturbing
// irqCheckedSlot, unlike the SetIrqSource testbench hook. The result is the
// restored *Core (typed any to keep this package independent of the
// co-simulation harness).
func (c *Core) SnapshotDUT() func(eng *core.Engine, irqSrc any) any {
	frozen := *c
	csr := copyCSRMap(c.csr)
	interesting := append([]int(nil), c.interesting...)
	return func(eng *core.Engine, irqSrc any) any {
		n := frozen
		n.eng = eng
		n.csr = copyCSRMap(csr)
		n.interesting = append([]int(nil), interesting...)
		if irqSrc != nil {
			n.irq = irqSrc.(IrqSource)
		}
		return &n
	}
}

func copyCSRMap(m map[uint16]*smt.Term) map[uint16]*smt.Term {
	out := make(map[uint16]*smt.Term, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
