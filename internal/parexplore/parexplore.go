// Package parexplore shards one symbolic exploration's decision tree across
// worker goroutines, each owning a private term context, solver and model
// pair (a core.Shard). The deterministic kernel stays goroutine-free — all
// concurrency lives here, above it, as the symlint determinism analyzer
// mandates.
//
// # Why sharding is cheap
//
// Replay-based forking makes a path a self-contained decision prefix, so the
// hand-off unit between workers is just a []core.Step — no engine or solver
// state is cloned or shared. Deterministic symbolic-variable naming means
// every worker independently rebuilds identical terms, so per-worker
// hash-consing and CNF caches stay hot with zero cross-worker traffic.
//
// # Why the result is deterministic
//
// Every explored path carries a canonical signature (core.Sig) whose
// lexicographic order equals sequential depth-first discovery order and is
// independent of which worker explored the path. The merge sorts all path
// records by signature and applies every budget as a canonical cut over that
// order: StopOnFirstFinding keeps everything up to the minimum-signature
// finding, MaxPaths keeps the MaxPaths smallest signatures, MaxInstructions
// keeps the longest signature-ordered prefix whose cumulative instruction
// count stays under the budget. Workers prune scheduled work ordered after
// the current cut bound; because the bound only ever shrinks toward its
// final value, nothing ordered at or before the final cut is ever pruned, so
// the kept set — findings, test vectors, path numbering and all statistic
// totals — is bit-for-bit independent of scheduling and worker count. (Only
// MaxTime expiry is inherently wall-clock dependent; runs that exhaust the
// tree or stop on another budget are exactly reproducible.)
//
// Witness and test-vector values are solver models and may vary with a
// worker's query history; their satisfying property, count and canonical
// numbering are deterministic, the concrete values are any-model.
package parexplore

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/obs"
	"symriscv/internal/querycache"
	"symriscv/internal/sat"
)

// unit is one subtree hand-off: a portable decision prefix plus its
// canonical signature.
type unit struct {
	prefix []core.Step
	sig    core.Sig
}

// queue distributes subtree roots among workers. It closes itself when every
// participant is blocked waiting and no items remain — the frontier of the
// whole exploration has drained.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []unit
	waiting int
	workers int
	closed  bool
}

func newQueue(workers int) *queue {
	q := &queue{workers: workers}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) put(u unit) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, u)
	q.cond.Signal()
}

// get blocks until a unit is available or the exploration is over.
func (q *queue) get() (unit, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) > 0 {
			u := q.items[0]
			q.items = q.items[1:]
			return u, true
		}
		if q.closed {
			return unit{}, false
		}
		if q.waiting+1 == q.workers {
			// Everyone else is already waiting: the tree is explored.
			q.closed = true
			q.cond.Broadcast()
			return unit{}, false
		}
		q.waiting++
		q.cond.Wait()
		q.waiting--
	}
}

// hungry reports whether some worker is starved — the donation signal.
func (q *queue) hungry() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting > 0 && len(q.items) == 0
}

// stop shuts the queue down early (budget expiry).
func (q *queue) stop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// coord accumulates path records from all workers and maintains the shrinking
// canonical cut bound the workers prune against.
type coord struct {
	mu    sync.Mutex
	opts  core.Options
	start time.Time

	records []core.PathRecord
	ordered []int // record indices sorted by Sig (when a sig-cut budget is set)
	running core.Stats

	hasStop    bool
	minStop    core.Sig
	hasFinding bool
	minFinding core.Sig

	curBound core.Sig
	hasBound bool
	stopped  bool // MaxTime expired mid-run

	progressEvery int
}

func newCoord(opts core.Options, start time.Time) *coord {
	every := opts.ProgressEvery
	if every <= 0 {
		every = 256
	}
	return &coord{opts: opts, start: start, progressEvery: every}
}

// needOrder reports whether a budget requires the incremental sig ordering.
func (c *coord) needOrder() bool {
	return c.opts.MaxPaths > 0 || c.opts.MaxInstructions > 0
}

// shouldStop reports whether the wall-clock budget has expired.
func (c *coord) shouldStop() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return true
	}
	if c.opts.MaxTime > 0 && time.Since(c.start) >= c.opts.MaxTime {
		c.stopped = true
		return true
	}
	return false
}

// bound returns the current canonical cut bound.
func (c *coord) bound() (core.Sig, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBound, c.hasBound
}

// record registers one explored path and refreshes the cut bound.
func (c *coord) record(rec core.PathRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()

	idx := len(c.records)
	c.records = append(c.records, rec)
	if c.needOrder() {
		i := sort.Search(len(c.ordered), func(k int) bool {
			return c.records[c.ordered[k]].Sig > rec.Sig
		})
		c.ordered = append(c.ordered, 0)
		copy(c.ordered[i+1:], c.ordered[i:])
		c.ordered[i] = idx
	}
	if rec.Kind == core.PathStopped && (!c.hasStop || rec.Sig < c.minStop) {
		c.hasStop, c.minStop = true, rec.Sig
	}
	if c.opts.StopOnFirstFinding && rec.Kind == core.PathFinding &&
		(!c.hasFinding || rec.Sig < c.minFinding) {
		c.hasFinding, c.minFinding = true, rec.Sig
	}
	c.refreshBound()

	accumulate(&c.running, rec)
	c.running.Paths++
	if c.opts.Progress != nil && c.running.Paths%c.progressEvery == 0 {
		snap := c.running
		snap.Elapsed = time.Since(c.start)
		c.opts.Progress(snap)
	}
}

// refreshBound recomputes the cut bound from every active source. Each
// source's bound is non-increasing as records accumulate, so pruning against
// it never discards a path ordered at or before the final cut.
func (c *coord) refreshBound() {
	var b core.Sig
	has := false
	apply := func(s core.Sig) {
		if !has || s < b {
			b, has = s, true
		}
	}
	if c.hasStop {
		apply(c.minStop)
	}
	if c.hasFinding {
		apply(c.minFinding)
	}
	if c.opts.MaxPaths > 0 && len(c.ordered) >= c.opts.MaxPaths {
		apply(c.records[c.ordered[c.opts.MaxPaths-1]].Sig)
	}
	if c.opts.MaxInstructions > 0 {
		var sum uint64
		var last core.Sig
		for _, ri := range c.ordered {
			if sum >= c.opts.MaxInstructions {
				break
			}
			last = c.records[ri].Sig
			sum += c.records[ri].Instructions
		}
		if sum >= c.opts.MaxInstructions {
			apply(last)
		}
	}
	c.curBound, c.hasBound = b, has
}

// accumulate folds one record's statistic deltas into st (kind counters and
// Paths are the caller's).
func accumulate(st *core.Stats, r core.PathRecord) {
	st.Instructions += r.Instructions
	st.Cycles += r.Cycles
	st.Branches += r.Branches
	st.Concretizations += r.Concretizations
	st.SolverQueries += r.SolverQueries
	switch r.Kind {
	case core.PathCompleted, core.PathStopped:
		st.Completed++
	case core.PathInfeasible:
		st.Infeasible++
	default:
		st.Partial++
	}
}

// merge sorts all records canonically, applies every budget as a cut over
// that order, and builds the report.
func (c *coord) merge(shards []*core.Shard) *core.Report {
	c.mu.Lock()
	defer c.mu.Unlock()

	recs := c.records
	sort.Slice(recs, func(i, j int) bool { return recs[i].Sig < recs[j].Sig })

	cut := len(recs)
	minStopIdx, minFindIdx := -1, -1
	for i, r := range recs {
		if r.Kind == core.PathStopped && minStopIdx < 0 {
			minStopIdx = i
		}
		if r.Kind == core.PathFinding && minFindIdx < 0 {
			minFindIdx = i
		}
	}
	if minStopIdx >= 0 && minStopIdx+1 < cut {
		cut = minStopIdx + 1
	}
	if c.opts.StopOnFirstFinding && minFindIdx >= 0 && minFindIdx+1 < cut {
		cut = minFindIdx + 1
	}
	if c.opts.MaxPaths > 0 && c.opts.MaxPaths < cut {
		cut = c.opts.MaxPaths
	}
	if c.opts.MaxInstructions > 0 {
		var sum uint64
		for k, r := range recs[:cut] {
			if sum >= c.opts.MaxInstructions {
				cut = k
				break
			}
			sum += r.Instructions
		}
	}

	rep := &core.Report{}
	for i, r := range recs[:cut] {
		accumulate(&rep.Stats, r)
		switch r.Kind {
		case core.PathFinding:
			rep.Findings = append(rep.Findings, core.Finding{Err: r.Err, Inputs: r.Inputs, Path: i})
		case core.PathCompleted:
			if r.HasTest {
				rep.TestVectors = append(rep.TestVectors, core.TestVector{Path: i, Inputs: r.TestInputs})
			}
		}
	}
	rep.Stats.Paths = cut

	pruned := false
	for _, sh := range shards {
		if sh.Pruned() {
			pruned = true
		}
		terms, satVars := sh.Sizes()
		if terms > rep.Stats.TermCount {
			rep.Stats.TermCount = terms
		}
		if satVars > rep.Stats.SATVars {
			rep.Stats.SATVars = satVars
		}
		// Telemetry (cache- and scheduling-dependent, excluded from the
		// deterministic report contract): summed over all workers, including
		// work beyond the canonical cut.
		ss := sh.SolverStats()
		rep.Stats.CDCLQueries += ss.Checks
		rep.Stats.SolverUnknowns += ss.UnknownAns
		rep.Stats.SAT.Add(ss.SAT)
		rep.Stats.RewriteHits += sh.RewriteHits()
		rep.Stats.Cache.Add(sh.CacheStats())
		snaps, resumes, saved := sh.ForkStats()
		rep.Stats.ForkSnapshots += snaps
		rep.Stats.ForkResumes += resumes
		rep.Stats.ReplayEventsSaved += saved
	}

	// Exhausted mirrors the sequential explorer: false whenever a budget,
	// stop return or finding return ended the exploration before the
	// frontier drained on its own.
	earlyReturn := (minStopIdx >= 0 && minStopIdx < cut) ||
		(c.opts.StopOnFirstFinding && minFindIdx >= 0 && minFindIdx < cut)
	rep.Exhausted = !c.stopped && !pruned && cut == len(recs) && !earlyReturn
	rep.Stats.Elapsed = time.Since(c.start)
	return rep
}

// seedTarget is the frontier width the breadth-first seed phase aims for
// before splitting work across the queue.
func seedTarget(workers int) int {
	t := 4 * workers
	if t < 32 {
		t = 32
	}
	return t
}

// Explore runs the program over the whole feasible path tree like
// core.Explorer.Explore, sharded across the given number of worker
// goroutines (default GOMAXPROCS when workers <= 0). Budgets are applied as
// canonical cuts (see the package comment), so the report is identical for
// every worker count; with the depth-first strategy it also matches the
// sequential explorer path for path.
func Explore(run core.RunFunc, opts core.Options, workers int) *core.Report {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	c := newCoord(opts, start)

	// The orchestrator's handle (worker 0) owns the explore root span;
	// shard handles (workers 1..N) stitch their path spans under it.
	oh := opts.Obs.NewHandle(0)
	root := oh.Start(obs.PhaseExplore)

	shardOpts := core.ShardOptions{
		Search:                opts.Search,
		SolverConflictBudget:  opts.SolverConflictBudget,
		NoBranchOptimizations: opts.NoBranchOptimizations,
		GenerateTests:         opts.GenerateTests,
		NoQueryCache:          opts.NoQueryCache,
		NoTermRewrites:        opts.NoTermRewrites,
		NoInprocessing:        opts.NoInprocessing,
		NoFork:                opts.NoFork,
		Obs:                   opts.Obs,
	}
	// One read-mostly cache store spans all workers; each shard buffers its
	// new entries locally and publishes them at hand-off points, so cache
	// traffic never serialises the hot path. A caller-provided store
	// (opts.SharedCache, e.g. the persistent qstore session's) is reused so
	// entries survive beyond this exploration.
	store := opts.SharedCache
	if store == nil && !opts.NoQueryCache {
		store = querycache.NewShared()
	}
	if opts.NoQueryCache {
		store = nil
	}
	shards := make([]*core.Shard, workers)
	for i := range shards {
		so := shardOpts
		so.Seed = opts.Seed + int64(i)
		so.ObsWorker = i + 1
		if opts.Portfolio && workers >= 2 {
			// Deterministic per-worker solver diversification: worker 0
			// keeps the tuned defaults, the rest cycle through presets.
			// Answers (and therefore reports) are unaffected — only the
			// search order inside each SAT solve changes.
			po := sat.PortfolioOptions(i)
			so.SATOptions = &po
		}
		shards[i] = core.NewShard(run, so)
		if store != nil {
			shards[i].AttachSharedCache(store)
		}
		shards[i].ObsHandle().SetBase(root)
	}

	// Seed phase: worker 0's shard explores breadth-first until the frontier
	// is wide enough to split (or the tree, a budget or a bound ends it),
	// then every frontier node is exported to the shared queue.
	seed := shards[0]
	seed.SeedRoot()
	for seed.Pending() > 0 && seed.Pending() < seedTarget(workers) {
		if c.shouldStop() {
			break
		}
		if b, ok := c.bound(); ok {
			seed.SetBound(b)
		}
		rec, ok := seed.Step(core.SearchBFS)
		if !ok {
			break
		}
		c.record(rec)
	}
	q := newQueue(workers)
	for {
		prefix, sig, ok := seed.Handoff()
		if !ok {
			break
		}
		q.put(unit{prefix: prefix, sig: sig})
	}
	// Publish the seed phase's cache entries before workers start, so every
	// worker begins with the shared decode-prefix answers.
	seed.FlushCache()
	seed.FlushObs()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int, sh *core.Shard) {
			defer wg.Done()
			// pprof labels attribute CPU samples per worker and phase.
			obs.LabelWorker(opts.Obs, i+1, obs.PhaseExplore, func() {
				workerLoop(sh, q, c, opts.Search)
			})
		}(i, shards[i])
	}
	wg.Wait()

	rep := c.merge(shards)
	if opts.Obs != nil {
		for _, sh := range shards {
			sh.PublishObsCounters()
		}
		core.PublishExploreObs(oh, rep.Stats)
		root.End()
		oh.Flush()
	}
	return rep
}

// workerLoop pulls subtree roots off the queue and explores them, donating
// frontier nodes whenever another worker is starved.
func workerLoop(sh *core.Shard, q *queue, c *coord, search core.SearchStrategy) {
	for {
		u, ok := q.get()
		if !ok {
			return
		}
		sh.AddPrefix(u.prefix, u.sig)
		for sh.Pending() > 0 {
			if c.shouldStop() {
				q.stop()
				return
			}
			if b, ok := c.bound(); ok {
				sh.SetBound(b)
			}
			rec, ok := sh.Step(search)
			if !ok {
				break // frontier drained or fully pruned
			}
			c.record(rec)
			if sh.Pending() > 1 && q.hungry() {
				if prefix, sig, ok := sh.Handoff(); ok {
					// The donated subtree's cached answers travel with it;
					// counter/phase shards merge at the same hand-off point.
					sh.FlushCache()
					sh.FlushObs()
					q.put(unit{prefix: prefix, sig: sig})
				}
			}
		}
		// Subtree done: publish its cache entries and counter shards before
		// going idle.
		sh.FlushCache()
		sh.FlushObs()
	}
}
