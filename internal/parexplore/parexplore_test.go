package parexplore_test

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/harness"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/obs"
	"symriscv/internal/parexplore"
	"symriscv/internal/rvfi"
)

// findingTree enumerates 2^bits paths over one symbolic byte and reports a
// distinct finding for every third bit pattern, so finding sets can be
// compared across explorations.
func findingTree(bits int) core.RunFunc {
	return func(e *core.Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		var pat uint64
		for bit := 0; bit < bits; bit++ {
			if e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1))) {
				pat |= 1 << bit
			}
		}
		e.CountInstruction(uint64(bits))
		if pat%3 == 0 {
			return fmt.Errorf("bad pattern %d", pat)
		}
		return nil
	}
}

func findingSet(t *testing.T, rep *core.Report) map[string]int {
	t.Helper()
	set := map[string]int{}
	for _, f := range rep.Findings {
		set[f.Err.Error()]++
	}
	return set
}

func sameStats(a, b core.Stats) bool {
	return a.Paths == b.Paths && a.Completed == b.Completed &&
		a.Partial == b.Partial && a.Infeasible == b.Infeasible &&
		a.Instructions == b.Instructions && a.Cycles == b.Cycles &&
		a.Branches == b.Branches && a.Concretizations == b.Concretizations &&
		a.SolverQueries == b.SolverQueries
}

// TestEquivalenceSweep checks the tentpole property over the synthetic tree:
// for every worker count and search strategy, the parallel exploration of
// the full tree reports the same statistic totals, finding set and test
// vector count as the sequential explorer.
func TestEquivalenceSweep(t *testing.T) {
	const bits = 5
	searches := []core.SearchStrategy{core.SearchDFS, core.SearchBFS, core.SearchRandom}
	for _, search := range searches {
		seqOpts := core.Options{Search: search, Seed: 7, GenerateTests: true}
		seq := core.NewExplorer(findingTree(bits)).Explore(seqOpts)
		if seq.Stats.Paths != 1<<bits {
			t.Fatalf("%v: sequential paths = %d, want %d", search, seq.Stats.Paths, 1<<bits)
		}
		wantFindings := findingSet(t, &core.Report{Findings: seq.Findings})
		for _, workers := range []int{1, 2, 4} {
			par := parexplore.Explore(findingTree(bits), seqOpts, workers)
			if !sameStats(seq.Stats, par.Stats) {
				t.Errorf("%v/%d workers: stats diverge\nseq: %+v\npar: %+v",
					search, workers, seq.Stats, par.Stats)
			}
			got := findingSet(t, par)
			if len(got) != len(wantFindings) {
				t.Errorf("%v/%d workers: findings %v, want %v", search, workers, got, wantFindings)
			}
			for k := range wantFindings {
				if got[k] != wantFindings[k] {
					t.Errorf("%v/%d workers: finding %q count %d, want %d",
						search, workers, k, got[k], wantFindings[k])
				}
			}
			if len(par.TestVectors) != len(seq.TestVectors) {
				t.Errorf("%v/%d workers: %d test vectors, want %d",
					search, workers, len(par.TestVectors), len(seq.TestVectors))
			}
			if par.Exhausted != seq.Exhausted {
				t.Errorf("%v/%d workers: exhausted=%v, want %v",
					search, workers, par.Exhausted, seq.Exhausted)
			}
		}
	}
}

// TestWorkerCountByteIdentical checks the stronger per-field claim: reports
// at different worker counts are identical including canonical path indices
// (everything except wall-clock and per-context size fields).
func TestWorkerCountByteIdentical(t *testing.T) {
	opts := core.Options{Search: core.SearchDFS, GenerateTests: true}
	ref := parexplore.Explore(findingTree(6), opts, 1)
	for _, workers := range []int{2, 4} {
		rep := parexplore.Explore(findingTree(6), opts, workers)
		if !sameStats(ref.Stats, rep.Stats) {
			t.Fatalf("%d workers: stats diverge: %+v vs %+v", workers, ref.Stats, rep.Stats)
		}
		if len(rep.Findings) != len(ref.Findings) {
			t.Fatalf("%d workers: %d findings, want %d", workers, len(rep.Findings), len(ref.Findings))
		}
		for i := range ref.Findings {
			if rep.Findings[i].Err.Error() != ref.Findings[i].Err.Error() ||
				rep.Findings[i].Path != ref.Findings[i].Path {
				t.Errorf("%d workers: finding %d = (%v, path %d), want (%v, path %d)",
					workers, i, rep.Findings[i].Err, rep.Findings[i].Path,
					ref.Findings[i].Err, ref.Findings[i].Path)
			}
		}
		for i := range ref.TestVectors {
			if rep.TestVectors[i].Path != ref.TestVectors[i].Path {
				t.Errorf("%d workers: test vector %d path %d, want %d",
					workers, i, rep.TestVectors[i].Path, ref.TestVectors[i].Path)
			}
		}
	}
}

// TestDFSMatchesSequentialOrder checks canonical numbering against the
// sequential depth-first explorer: DFS discovery order equals canonical
// signature order, so finding path indices must agree exactly.
func TestDFSMatchesSequentialOrder(t *testing.T) {
	opts := core.Options{Search: core.SearchDFS}
	seq := core.NewExplorer(findingTree(5)).Explore(opts)
	for _, workers := range []int{1, 3} {
		par := parexplore.Explore(findingTree(5), opts, workers)
		if len(par.Findings) != len(seq.Findings) {
			t.Fatalf("%d workers: %d findings, want %d", workers, len(par.Findings), len(seq.Findings))
		}
		for i := range seq.Findings {
			if par.Findings[i].Path != seq.Findings[i].Path ||
				par.Findings[i].Err.Error() != seq.Findings[i].Err.Error() {
				t.Errorf("%d workers: finding %d = (path %d, %v), want (path %d, %v)",
					workers, i, par.Findings[i].Path, par.Findings[i].Err,
					seq.Findings[i].Path, seq.Findings[i].Err)
			}
		}
	}
}

// TestMaxPathsMatchesSequentialDFS checks the canonical MaxPaths cut: the
// parallel exploration keeps exactly the MaxPaths smallest-signature paths,
// which under DFS is the same set the sequential explorer visits.
func TestMaxPathsMatchesSequentialDFS(t *testing.T) {
	opts := core.Options{Search: core.SearchDFS, MaxPaths: 9}
	seq := core.NewExplorer(findingTree(5)).Explore(opts)
	if seq.Stats.Paths != 9 || seq.Exhausted {
		t.Fatalf("sequential: paths=%d exhausted=%v", seq.Stats.Paths, seq.Exhausted)
	}
	for _, workers := range []int{1, 2, 4} {
		par := parexplore.Explore(findingTree(5), opts, workers)
		if !sameStats(seq.Stats, par.Stats) {
			t.Errorf("%d workers: stats diverge\nseq: %+v\npar: %+v", workers, seq.Stats, par.Stats)
		}
		if par.Exhausted {
			t.Errorf("%d workers: truncated run reported as exhausted", workers)
		}
	}
}

// TestMaxInstructionsMatchesSequentialDFS checks the canonical cumulative
// instruction cut against the sequential explorer.
func TestMaxInstructionsMatchesSequentialDFS(t *testing.T) {
	// Each path retires 5 instructions; a budget of 23 admits 5 paths
	// (cumulative 0,5,10,15,20 all under budget; the sixth starts at 25).
	opts := core.Options{Search: core.SearchDFS, MaxInstructions: 23}
	seq := core.NewExplorer(findingTree(5)).Explore(opts)
	if seq.Stats.Paths != 5 {
		t.Fatalf("sequential paths = %d, want 5", seq.Stats.Paths)
	}
	for _, workers := range []int{1, 2, 4} {
		par := parexplore.Explore(findingTree(5), opts, workers)
		if !sameStats(seq.Stats, par.Stats) {
			t.Errorf("%d workers: stats diverge\nseq: %+v\npar: %+v", workers, seq.Stats, par.Stats)
		}
	}
}

// TestStopOnFirstFindingCanonical checks StopOnFirstFinding returns the
// minimum-signature finding — the one sequential DFS reports — for every
// worker count and search strategy.
func TestStopOnFirstFindingCanonical(t *testing.T) {
	seqOpts := core.Options{Search: core.SearchDFS, StopOnFirstFinding: true}
	seq := core.NewExplorer(findingTree(5)).Explore(seqOpts)
	if len(seq.Findings) != 1 {
		t.Fatalf("sequential findings = %d, want 1", len(seq.Findings))
	}
	want := seq.Findings[0].Err.Error()
	for _, search := range []core.SearchStrategy{core.SearchDFS, core.SearchBFS, core.SearchRandom} {
		for _, workers := range []int{1, 2, 4} {
			opts := core.Options{Search: search, Seed: 3, StopOnFirstFinding: true}
			par := parexplore.Explore(findingTree(5), opts, workers)
			if len(par.Findings) != 1 {
				t.Fatalf("%v/%d workers: findings = %d, want 1", search, workers, len(par.Findings))
			}
			if got := par.Findings[0].Err.Error(); got != want {
				t.Errorf("%v/%d workers: finding %q, want canonical %q", search, workers, got, want)
			}
			if par.Exhausted {
				t.Errorf("%v/%d workers: stop-on-first run reported exhausted", search, workers)
			}
		}
	}
	// Under DFS the full stop-on-first report matches sequential exactly.
	par := parexplore.Explore(findingTree(5), seqOpts, 2)
	if !sameStats(seq.Stats, par.Stats) {
		t.Errorf("DFS/2 workers: stats diverge\nseq: %+v\npar: %+v", seq.Stats, par.Stats)
	}
}

// TestErrStopExplorationCanonical checks a RunFunc stop return truncates the
// exploration at its canonical position, like the sequential explorer.
func TestErrStopExplorationCanonical(t *testing.T) {
	run := func(e *core.Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		var pat uint64
		for bit := 0; bit < 4; bit++ {
			if e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1))) {
				pat |= 1 << bit
			}
		}
		if pat == 2 {
			return core.ErrStopExploration
		}
		return nil
	}
	seq := core.NewExplorer(run).Explore(core.Options{Search: core.SearchDFS})
	for _, workers := range []int{1, 2, 4} {
		par := parexplore.Explore(run, core.Options{Search: core.SearchDFS}, workers)
		if !sameStats(seq.Stats, par.Stats) {
			t.Errorf("%d workers: stats diverge\nseq: %+v\npar: %+v", workers, seq.Stats, par.Stats)
		}
		if par.Exhausted {
			t.Errorf("%d workers: stopped run reported exhausted", workers)
		}
	}
}

// TestNoOptEquivalence runs the ablation mode (lazy sibling validation, so
// infeasible paths actually occur) through the same sweep.
func TestNoOptEquivalence(t *testing.T) {
	run := func(e *core.Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		// Dependent conditions make some flipped siblings infeasible.
		e.Branch(ctx.Ult(v, ctx.BV(8, 10)))
		e.Branch(ctx.Ult(v, ctx.BV(8, 5)))
		e.Branch(ctx.Ult(v, ctx.BV(8, 200)))
		return nil
	}
	opts := core.Options{Search: core.SearchDFS, NoBranchOptimizations: true}
	seq := core.NewExplorer(run).Explore(opts)
	if seq.Stats.Infeasible == 0 {
		t.Fatal("ablation workload produced no infeasible paths")
	}
	for _, workers := range []int{1, 2, 4} {
		par := parexplore.Explore(run, opts, workers)
		if !sameStats(seq.Stats, par.Stats) {
			t.Errorf("%d workers: stats diverge\nseq: %+v\npar: %+v", workers, seq.Stats, par.Stats)
		}
	}
}

// TestProgressCallbackFires checks the merged progress hook runs without
// racing (the callback mutates shared state; -race guards it).
func TestProgressCallbackFires(t *testing.T) {
	var calls int
	var last core.Stats
	opts := core.Options{
		Search:        core.SearchDFS,
		ProgressEvery: 4,
		Progress: func(s core.Stats) {
			calls++
			last = s
		},
	}
	parexplore.Explore(findingTree(5), opts, 2)
	if calls != 8 {
		t.Errorf("progress calls = %d, want 8 (32 paths / every 4)", calls)
	}
	if last.Paths == 0 {
		t.Error("progress snapshot empty")
	}
}

// TestNoGoroutineLeak checks every worker exits after a stop-on-first-finding
// cancellation, with no goroutine left behind.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		rep := parexplore.Explore(findingTree(7), core.Options{
			Search:             core.SearchDFS,
			StopOnFirstFinding: true,
		}, 4)
		if len(rep.Findings) != 1 {
			t.Fatalf("findings = %d, want 1", len(rep.Findings))
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCosimFaultEquivalence runs real co-simulation hunts (the Table II cell
// recipe) for a fault sample and checks the parallel explorer finds the same
// mismatch class with the same deterministic statistics at every worker
// count. Witness values are any-model, so the comparison uses the mismatch
// classification key, not the rendered error.
func TestCosimFaultEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cosim campaign test")
	}
	sample := []faults.Fault{faults.E1, faults.E5, faults.E6}
	for _, f := range sample {
		coreCfg := microrv32.FixedConfig()
		coreCfg.Faults = faults.Only(f)
		cfg := cosim.Config{
			ISS:        iss.FixedConfig(),
			Core:       coreCfg,
			Filter:     cosim.BlockSystemInstructions,
			InstrLimit: 1,
		}
		opts := core.Options{StopOnFirstFinding: true, MaxTime: 120 * time.Second}
		seq := core.NewExplorer(cosim.RunFunc(cfg)).Explore(opts)
		if len(seq.Findings) != 1 {
			t.Fatalf("%s: sequential findings = %d, want 1", f, len(seq.Findings))
		}
		wantKey := classifyKey(t, seq.Findings[0].Err)
		for _, workers := range []int{1, 2} {
			par := parexplore.Explore(cosim.RunFunc(cfg), opts, workers)
			if len(par.Findings) != 1 {
				t.Fatalf("%s/%d workers: findings = %d, want 1", f, workers, len(par.Findings))
			}
			if got := classifyKey(t, par.Findings[0].Err); got != wantKey {
				t.Errorf("%s/%d workers: mismatch class %q, want %q", f, workers, got, wantKey)
			}
			if !sameStats(seq.Stats, par.Stats) {
				t.Errorf("%s/%d workers: stats diverge\nseq: %+v\npar: %+v",
					f, workers, seq.Stats, par.Stats)
			}
		}
	}
}

func classifyKey(t *testing.T, err error) string {
	t.Helper()
	var m *rvfi.Mismatch
	if !errors.As(err, &m) {
		t.Fatalf("finding is not a mismatch: %v", err)
	}
	return harness.Classify(m).Key()
}

// TestCacheAblationEquivalence checks the query-elimination layer's
// determinism contract: the deterministic report fields (statistic totals,
// finding error strings and canonical path indices, test-vector counts) are
// byte-identical with the cache on and off, sequentially and at every worker
// count. Witness values are any-model and excluded; cache and CDCL counters
// are telemetry and excluded.
func TestCacheAblationEquivalence(t *testing.T) {
	run := findingTree(6)
	base := core.Options{Search: core.SearchDFS, GenerateTests: true}
	offOpts := base
	offOpts.NoQueryCache = true
	offOpts.NoTermRewrites = true
	ref := core.NewExplorer(run).Explore(offOpts)

	check := func(name string, rep *core.Report) {
		t.Helper()
		if !sameStats(ref.Stats, rep.Stats) {
			t.Errorf("%s: stats diverge\noff: %+v\ngot: %+v", name, ref.Stats, rep.Stats)
		}
		if len(rep.Findings) != len(ref.Findings) {
			t.Fatalf("%s: %d findings, want %d", name, len(rep.Findings), len(ref.Findings))
		}
		for i := range ref.Findings {
			if rep.Findings[i].Err.Error() != ref.Findings[i].Err.Error() ||
				rep.Findings[i].Path != ref.Findings[i].Path {
				t.Errorf("%s: finding %d = (%v, path %d), want (%v, path %d)",
					name, i, rep.Findings[i].Err, rep.Findings[i].Path,
					ref.Findings[i].Err, ref.Findings[i].Path)
			}
		}
		if len(rep.TestVectors) != len(ref.TestVectors) {
			t.Errorf("%s: %d test vectors, want %d", name, len(rep.TestVectors), len(ref.TestVectors))
		}
		if rep.Exhausted != ref.Exhausted {
			t.Errorf("%s: exhausted=%v, want %v", name, rep.Exhausted, ref.Exhausted)
		}
	}

	check("seq cache on", core.NewExplorer(run).Explore(base))
	for _, workers := range []int{1, 2, 4} {
		check(fmt.Sprintf("par cache on/%d workers", workers), parexplore.Explore(run, base, workers))
		check(fmt.Sprintf("par cache off/%d workers", workers), parexplore.Explore(run, offOpts, workers))
	}
}

// TestCosimCacheAblation runs one real co-simulation hunt with the cache on
// and off and checks the finding's mismatch classification and the
// deterministic statistics agree (the Table II discipline for ablations).
func TestCosimCacheAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("cosim campaign test")
	}
	coreCfg := microrv32.FixedConfig()
	coreCfg.Faults = faults.Only(faults.E1)
	cfg := cosim.Config{
		ISS:        iss.FixedConfig(),
		Core:       coreCfg,
		Filter:     cosim.BlockSystemInstructions,
		InstrLimit: 1,
	}
	opts := core.Options{StopOnFirstFinding: true, MaxTime: 120 * time.Second}
	offOpts := opts
	offOpts.NoQueryCache = true
	ref := core.NewExplorer(cosim.RunFunc(cfg)).Explore(offOpts)
	if len(ref.Findings) != 1 {
		t.Fatalf("cache off: findings = %d, want 1", len(ref.Findings))
	}
	wantKey := classifyKey(t, ref.Findings[0].Err)
	for _, workers := range []int{1, 2} {
		par := parexplore.Explore(cosim.RunFunc(cfg), opts, workers)
		if len(par.Findings) != 1 {
			t.Fatalf("cache on/%d workers: findings = %d, want 1", workers, len(par.Findings))
		}
		if got := classifyKey(t, par.Findings[0].Err); got != wantKey {
			t.Errorf("cache on/%d workers: mismatch class %q, want %q", workers, got, wantKey)
		}
		if !sameStats(ref.Stats, par.Stats) {
			t.Errorf("cache on/%d workers: stats diverge\noff: %+v\non: %+v",
				workers, ref.Stats, par.Stats)
		}
	}
}

// TestSigOrderIsFirstComeStable documents the canonical-order invariant the
// merge relies on (sorted findings are in ascending path-index order).
func TestSigOrderIsFirstComeStable(t *testing.T) {
	rep := parexplore.Explore(findingTree(5), core.Options{Search: core.SearchBFS}, 3)
	idx := make([]int, len(rep.Findings))
	for i, f := range rep.Findings {
		idx[i] = f.Path
	}
	if !sort.IntsAreSorted(idx) {
		t.Errorf("finding path indices not canonical: %v", idx)
	}
}

// TestObsEquivalence checks the observability layer's side-channel contract:
// attaching a recorder with a live JSONL trace sink changes nothing in the
// report — statistic totals, finding errors, canonical path indices and the
// witness/test-vector input values are byte-identical to the untraced run,
// sequentially and sharded (the -trace on/off analogue of the cache
// ablation equivalence). The merged counter registry must also agree with
// the report it shadowed.
func TestObsEquivalence(t *testing.T) {
	run := findingTree(6)
	base := core.Options{Search: core.SearchDFS, GenerateTests: true}
	ref := core.NewExplorer(run).Explore(base)

	sameEnv := func(a, b map[string]uint64) bool {
		if len(a) != len(b) {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}

	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		rec := obs.New(obs.Options{Trace: &buf, Label: "obs-equivalence"})
		opts := base
		opts.Obs = rec
		var rep *core.Report
		if workers > 1 {
			rep = parexplore.Explore(run, opts, workers)
		} else {
			rep = core.NewExplorer(run).Explore(opts)
		}
		snap := rec.Snapshot()
		rec.Close()

		if !sameStats(ref.Stats, rep.Stats) {
			t.Errorf("%d workers: stats diverge under tracing\noff: %+v\non:  %+v",
				workers, ref.Stats, rep.Stats)
		}
		if rep.Exhausted != ref.Exhausted {
			t.Errorf("%d workers: exhausted=%v, want %v", workers, rep.Exhausted, ref.Exhausted)
		}
		if len(rep.Findings) != len(ref.Findings) {
			t.Fatalf("%d workers: %d findings, want %d", workers, len(rep.Findings), len(ref.Findings))
		}
		for i := range ref.Findings {
			if rep.Findings[i].Err.Error() != ref.Findings[i].Err.Error() ||
				rep.Findings[i].Path != ref.Findings[i].Path ||
				!sameEnv(rep.Findings[i].Inputs, ref.Findings[i].Inputs) {
				t.Errorf("%d workers: finding %d = (%v, path %d, %v), want (%v, path %d, %v)",
					workers, i, rep.Findings[i].Err, rep.Findings[i].Path, rep.Findings[i].Inputs,
					ref.Findings[i].Err, ref.Findings[i].Path, ref.Findings[i].Inputs)
			}
		}
		if len(rep.TestVectors) != len(ref.TestVectors) {
			t.Fatalf("%d workers: %d test vectors, want %d",
				workers, len(rep.TestVectors), len(ref.TestVectors))
		}
		for i := range ref.TestVectors {
			if rep.TestVectors[i].Path != ref.TestVectors[i].Path ||
				!sameEnv(rep.TestVectors[i].Inputs, ref.TestVectors[i].Inputs) {
				t.Errorf("%d workers: test vector %d diverges under tracing", workers, i)
			}
		}

		// The registry shadowed the same exploration: its explore.* counters
		// must equal the deterministic report totals, and the trace sink must
		// have seen one span per path plus the explore root.
		if got := snap.Counters[core.CtrPaths]; got != uint64(rep.Stats.Paths) {
			t.Errorf("%d workers: counter %s = %d, want %d", workers, core.CtrPaths, got, rep.Stats.Paths)
		}
		if got := snap.Counters[core.CtrQueries]; got != rep.Stats.SolverQueries {
			t.Errorf("%d workers: counter %s = %d, want %d", workers, core.CtrQueries, got, rep.Stats.SolverQueries)
		}
		if want := uint64(rep.Stats.Paths); snap.Phases[obs.PhasePath].Count != want {
			t.Errorf("%d workers: phase %s count = %d, want %d",
				workers, obs.PhasePath, snap.Phases[obs.PhasePath].Count, want)
		}
		if buf.Len() == 0 {
			t.Errorf("%d workers: trace sink stayed empty", workers)
		}
	}
}

// TestPortfolioEquivalence checks that the deterministic per-worker SAT
// portfolio never changes the report: at every worker count, the portfolio
// run matches the defaults run on statistics, finding set and path indices.
// (At workers = 1 the portfolio is a no-op by construction.)
func TestPortfolioEquivalence(t *testing.T) {
	opts := core.Options{Search: core.SearchDFS, GenerateTests: true}
	ref := parexplore.Explore(findingTree(6), opts, 1)
	pOpts := opts
	pOpts.Portfolio = true
	for _, workers := range []int{1, 2, 4} {
		rep := parexplore.Explore(findingTree(6), pOpts, workers)
		if !sameStats(ref.Stats, rep.Stats) {
			t.Fatalf("portfolio %d workers: stats diverge: %+v vs %+v", workers, ref.Stats, rep.Stats)
		}
		if len(rep.Findings) != len(ref.Findings) {
			t.Fatalf("portfolio %d workers: %d findings, want %d", workers, len(rep.Findings), len(ref.Findings))
		}
		for i := range ref.Findings {
			if rep.Findings[i].Err.Error() != ref.Findings[i].Err.Error() ||
				rep.Findings[i].Path != ref.Findings[i].Path {
				t.Errorf("portfolio %d workers: finding %d = (%v, path %d), want (%v, path %d)",
					workers, i, rep.Findings[i].Err, rep.Findings[i].Path,
					ref.Findings[i].Err, ref.Findings[i].Path)
			}
		}
	}
}

// TestInprocessingEquivalence checks the inprocessing toggle against the same
// contract: identical reports on and off, sequentially and sharded.
func TestInprocessingEquivalence(t *testing.T) {
	opts := core.Options{Search: core.SearchDFS}
	ref := parexplore.Explore(findingTree(6), opts, 1)
	nOpts := opts
	nOpts.NoInprocessing = true
	for _, workers := range []int{1, 4} {
		rep := parexplore.Explore(findingTree(6), nOpts, workers)
		if !sameStats(ref.Stats, rep.Stats) {
			t.Fatalf("inprocess-off %d workers: stats diverge: %+v vs %+v", workers, ref.Stats, rep.Stats)
		}
		if len(rep.Findings) != len(ref.Findings) {
			t.Fatalf("inprocess-off %d workers: %d findings, want %d", workers, len(rep.Findings), len(ref.Findings))
		}
	}
}
