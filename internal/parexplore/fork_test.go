package parexplore_test

import (
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/parexplore"
	"symriscv/internal/smt"
)

// TestForkEquivalenceAcrossWorkers pins fork-point checkpointing against the
// sharded orchestrator: on a real co-simulation workload, every worker count
// produces the same report with checkpoint-resume as with full prefix
// replay, and both match the sequential fork-off reference. Run under -race
// in CI: resumed engines share checkpoint state (capped slices, COW layers)
// across sibling paths, and hand-offs must drop fork points cleanly.
func TestForkEquivalenceAcrossWorkers(t *testing.T) {
	cfg := cosim.Config{
		ISS:        iss.FixedConfig(),
		Core:       microrv32.FixedConfig(),
		Filter:     cosim.BlockSystemInstructions,
		InstrLimit: 2,
	}
	opts := core.Options{
		Search:   core.SearchDFS,
		MaxPaths: 60,
		MaxTime:  120 * time.Second,
	}
	seqOpts := opts
	seqOpts.NoFork = true
	ref := core.NewExplorer(cosim.RunFunc(cfg)).Explore(seqOpts)
	if ref.Stats.Paths == 0 {
		t.Fatal("reference exploration ran no paths")
	}
	wantFindings := findingSet(t, ref)
	for _, workers := range []int{1, 2, 4} {
		for _, noFork := range []bool{false, true} {
			o := opts
			o.NoFork = noFork
			rep := parexplore.Explore(cosim.RunFunc(cfg), o, workers)
			if !sameStats(ref.Stats, rep.Stats) {
				t.Errorf("workers=%d noFork=%v: stats diverge\nref: %+v\ngot: %+v",
					workers, noFork, ref.Stats, rep.Stats)
			}
			got := findingSet(t, rep)
			if len(got) != len(wantFindings) {
				t.Errorf("workers=%d noFork=%v: findings %v, want %v",
					workers, noFork, got, wantFindings)
			}
			for k := range wantFindings {
				if got[k] != wantFindings[k] {
					t.Errorf("workers=%d noFork=%v: finding %q count %d, want %d",
						workers, noFork, k, got[k], wantFindings[k])
				}
			}
			if noFork && (rep.Stats.ForkSnapshots != 0 || rep.Stats.ForkResumes != 0) {
				t.Errorf("workers=%d: fork-off run has fork activity: %+v", workers, rep.Stats)
			}
			if !noFork && rep.Stats.ForkResumes == 0 {
				t.Errorf("workers=%d: fork-on run resumed nothing: %+v", workers, rep.Stats)
			}
		}
	}
}

// TestForkHandoffFallsBackToReplay forces tiny hand-off batches on the
// synthetic tree so prefixes cross workers constantly; stats must still
// match the sequential reference exactly (handed-off nodes drop their fork
// points and replay).
func TestForkHandoffFallsBackToReplay(t *testing.T) {
	run := checkpointTree(6)
	seq := core.NewExplorer(run).Explore(core.Options{Search: core.SearchDFS, NoFork: true})
	if seq.Stats.Paths != 1<<6 {
		t.Fatalf("sequential paths = %d, want %d", seq.Stats.Paths, 1<<6)
	}
	for _, workers := range []int{2, 4} {
		rep := parexplore.Explore(run, core.Options{Search: core.SearchDFS}, workers)
		if !sameStats(seq.Stats, rep.Stats) {
			t.Errorf("workers=%d: stats diverge\nseq: %+v\npar: %+v",
				workers, seq.Stats, rep.Stats)
		}
	}
}

// checkpointTree is findingTree with a quiescent checkpoint before every
// branch, exercising the engine-level fork machinery without the cosim
// testbench on top.
func checkpointTree(bits int) core.RunFunc {
	var loop func(e *core.Engine, v *smt.Term, bit int, pat uint64) error
	loop = func(e *core.Engine, v *smt.Term, bit int, pat uint64) error {
		ctx := e.Context()
		for ; bit < bits; bit++ {
			b, p := bit, pat
			e.Checkpoint(func() core.ResumeFunc {
				return func(e2 *core.Engine) error { return loop(e2, v, b, p) }
			})
			if e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1))) {
				pat |= 1 << bit
			}
		}
		e.CountInstruction(uint64(bits))
		return nil
	}
	return func(e *core.Engine) error {
		return loop(e, e.MakeSymbolic("v", 8), 0, 0)
	}
}
