// Package fuzz implements the randomized-testing baseline the paper
// contrasts symbolic execution against (§I: "even a state-of-the-art
// fuzzing-based approach is still susceptible to miss corner case bugs").
// It drives the very same RTL-vs-ISS co-simulation, but with fully concrete
// random inputs — no symbolic state, one path per trial, zero solver
// traffic — in two flavours:
//
//   - StrategyUniform draws raw 32-bit instruction words (classic random
//     instruction-stream generation), and
//   - StrategyValid draws well-formed RV32I instructions with small register
//     indices (constrained-random generation in the riscv-dv spirit).
//
// The constrained generator, by construction, never emits the reserved
// encodings that the decode faults E0–E2 mis-accept, so it can run forever
// without finding them — the corner-case argument for symbolic execution.
package fuzz

import (
	"math/rand"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

// Strategy selects the input generator.
type Strategy uint8

// Generation strategies.
const (
	// StrategyUniform draws uniformly random 32-bit instruction words.
	StrategyUniform Strategy = iota
	// StrategyValid draws decode-valid RV32I (non-SYSTEM) instructions with
	// register indices biased to x0..x3.
	StrategyValid
)

func (s Strategy) String() string {
	if s == StrategyValid {
		return "constrained-valid"
	}
	return "uniform-random"
}

// Campaign is one fuzzing run configuration.
type Campaign struct {
	Seed     int64
	Strategy Strategy
	// Base is the co-simulation scenario (models, faults, instruction
	// limit). Its symbolic-input fields are overridden per trial.
	Base cosim.Config
}

// Result summarises a fuzzing campaign.
type Result struct {
	Found    bool
	Trials   int
	Instr    uint64 // executed instructions across all trials
	Elapsed  time.Duration
	Mismatch *rvfi.Mismatch
}

// validMnemonics lists the generator's instruction constructors for
// StrategyValid (RV32I without SYSTEM, mirroring the Table II filter).
var validBuilders = []func(r *rand.Rand) uint32{
	func(r *rand.Rand) uint32 { return riscv.LUI(reg(r), r.Uint32()) },
	func(r *rand.Rand) uint32 { return riscv.AUIPC(reg(r), r.Uint32()) },
	func(r *rand.Rand) uint32 { return riscv.JAL(reg(r), imm21(r)) },
	func(r *rand.Rand) uint32 { return riscv.JALR(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.BEQ(reg(r), reg(r), imm13(r)) },
	func(r *rand.Rand) uint32 { return riscv.BNE(reg(r), reg(r), imm13(r)) },
	func(r *rand.Rand) uint32 { return riscv.BLT(reg(r), reg(r), imm13(r)) },
	func(r *rand.Rand) uint32 { return riscv.BGE(reg(r), reg(r), imm13(r)) },
	func(r *rand.Rand) uint32 { return riscv.BLTU(reg(r), reg(r), imm13(r)) },
	func(r *rand.Rand) uint32 { return riscv.BGEU(reg(r), reg(r), imm13(r)) },
	func(r *rand.Rand) uint32 { return riscv.LB(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.LH(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.LW(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.LBU(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.LHU(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.SB(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.SH(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.SW(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.ADDI(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.SLTI(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.SLTIU(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.XORI(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.ORI(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.ANDI(reg(r), reg(r), imm12(r)) },
	func(r *rand.Rand) uint32 { return riscv.SLLI(reg(r), reg(r), r.Uint32()%32) },
	func(r *rand.Rand) uint32 { return riscv.SRLI(reg(r), reg(r), r.Uint32()%32) },
	func(r *rand.Rand) uint32 { return riscv.SRAI(reg(r), reg(r), r.Uint32()%32) },
	func(r *rand.Rand) uint32 { return riscv.ADD(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.SUB(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.SLL(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.SLT(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.SLTU(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.XOR(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.SRL(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.SRA(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.OR(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.AND(reg(r), reg(r), reg(r)) },
	func(r *rand.Rand) uint32 { return riscv.FENCE() },
}

// reg biases register choice to the low indices the testbench initialises,
// as constrained-random flows do.
func reg(r *rand.Rand) uint32 { return r.Uint32() % 4 }

func imm12(r *rand.Rand) int32 { return int32(r.Uint32()) << 20 >> 20 }
func imm13(r *rand.Rand) int32 { return int32(r.Uint32()) << 19 >> 19 &^ 1 }
func imm21(r *rand.Rand) int32 { return int32(r.Uint32()) << 11 >> 11 &^ 1 }

func (c *Campaign) word(r *rand.Rand) uint32 {
	switch c.Strategy {
	case StrategyValid:
		return validBuilders[r.Intn(len(validBuilders))](r)
	default:
		for {
			w := r.Uint32()
			// Mirror the Table II assumption filter: SYSTEM instructions
			// excluded so the known CSR mismatches cannot surface.
			if w&0x7f != riscv.OpSystem {
				return w
			}
		}
	}
}

// Run fuzzes until a mismatch is found, the trial budget is exhausted, or
// the wall budget expires.
func (c *Campaign) Run(maxTrials int, budget time.Duration) Result {
	rng := rand.New(rand.NewSource(c.Seed))
	start := time.Now()
	res := Result{}

	for res.Trials < maxTrials && time.Since(start) < budget {
		res.Trials++

		// Per-trial concrete inputs: instruction stream, registers, memory.
		trialSeed := rng.Int63()
		regs := map[int]uint32{1: rng.Uint32(), 2: rng.Uint32()}
		memSeed := rng.Uint32()

		cfg := c.Base
		cfg.ConcreteIMem = func(addr uint32) uint32 {
			// Deterministic per (trial, addr) so jumps fetch stable words.
			wr := rand.New(rand.NewSource(trialSeed ^ int64(addr)*0x9e3779b9))
			return c.word(wr)
		}
		cfg.ConcreteMem = func(addr uint32) uint8 {
			return uint8(addr*0x01000193 ^ memSeed ^ addr>>13)
		}
		cfg.ConcreteRegs = regs

		x := core.NewExplorer(cosim.RunFunc(cfg))
		rep := x.Explore(core.Options{StopOnFirstFinding: true, MaxPaths: 4})
		res.Instr += rep.Stats.Instructions
		if len(rep.Findings) > 0 {
			res.Found = true
			if m, ok := rep.Findings[0].Err.(*rvfi.Mismatch); ok {
				res.Mismatch = m
			}
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
