package fuzz

import (
	"math/rand"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

// MutationCampaign is the coverage-guided fuzzing baseline in the spirit of
// the authors' own prior work (GLSVLSI'22, cited as [10]): it keeps a corpus
// of inputs that reached new instruction-decode coverage and mutates corpus
// entries by bit flips and havoc, so — unlike the constrained-valid
// generator — it *can* stumble into reserved encodings by flipping bits of
// valid instructions. It remains incomplete: time-to-corner-case is
// probabilistic, which is the paper's argument for symbolic execution.
type MutationCampaign struct {
	Seed int64
	// Base is the co-simulation scenario; symbolic-input fields are
	// overridden per trial.
	Base cosim.Config
}

// corpusEntry is one saved input: the first instruction word plus the two
// register seeds.
type corpusEntry struct {
	word   uint32
	r1, r2 uint32
}

// coverageKey classifies what a trial exercised: the decoded mnemonic class
// of the first instruction (the illegal class collapses onto one key).
func coverageKey(word uint32) uint32 {
	return uint32(riscv.Decode(word).Mn)
}

// Run fuzzes with coverage feedback until a mismatch is found or a budget
// expires.
func (c *MutationCampaign) Run(maxTrials int, budget time.Duration) Result {
	rng := rand.New(rand.NewSource(c.Seed))
	start := time.Now()
	res := Result{}

	seed := &Campaign{Seed: c.Seed, Strategy: StrategyValid}
	corpus := []corpusEntry{{word: seed.word(rng), r1: rng.Uint32(), r2: rng.Uint32()}}
	covered := map[uint32]bool{}

	for res.Trials < maxTrials && time.Since(start) < budget {
		res.Trials++

		// Pick a parent and mutate, or occasionally inject a fresh valid
		// instruction to keep exploring the decode space.
		var e corpusEntry
		switch rng.Intn(4) {
		case 0:
			e = corpusEntry{word: seed.word(rng), r1: rng.Uint32(), r2: rng.Uint32()}
		default:
			e = corpus[rng.Intn(len(corpus))]
			e = mutate(rng, e)
		}

		cfg := c.Base
		word := e.word
		cfg.ConcreteIMem = func(addr uint32) uint32 {
			if addr == cfg.StartPC {
				return word
			}
			return riscv.ADDI(0, 0, 0)
		}
		r1, r2 := e.r1, e.r2
		cfg.ConcreteMem = func(addr uint32) uint8 { return uint8(addr ^ r1) }
		cfg.ConcreteRegs = map[int]uint32{1: r1, 2: r2}

		x := core.NewExplorer(cosim.RunFunc(cfg))
		rep := x.Explore(core.Options{StopOnFirstFinding: true, MaxPaths: 4})
		res.Instr += rep.Stats.Instructions
		if len(rep.Findings) > 0 {
			res.Found = true
			if m, ok := rep.Findings[0].Err.(*rvfi.Mismatch); ok {
				res.Mismatch = m
			}
			break
		}

		// Coverage feedback: a trial that exercised a new mnemonic class
		// joins the corpus.
		key := coverageKey(e.word)
		if !covered[key] {
			covered[key] = true
			corpus = append(corpus, e)
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// mutate applies one of the classic mutation operators.
func mutate(rng *rand.Rand, e corpusEntry) corpusEntry {
	switch rng.Intn(5) {
	case 0: // single bit flip in the instruction — can create reserved encodings
		e.word ^= 1 << uint(rng.Intn(32))
	case 1: // byte havoc in the instruction
		e.word ^= uint32(rng.Intn(256)) << uint(8*rng.Intn(4))
	case 2: // register value bit flip
		e.r1 ^= 1 << uint(rng.Intn(32))
	case 3: // register havoc
		e.r2 = rng.Uint32()
	default: // interesting-value substitution
		vals := []uint32{0, 1, 0x7fffffff, 0x80000000, 0xffffffff}
		e.r1 = vals[rng.Intn(len(vals))]
	}
	return e
}
