package fuzz

import (
	"math/rand"
	"testing"
	"time"

	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
)

func baseCfg(f faults.Fault) cosim.Config {
	coreCfg := microrv32.FixedConfig()
	coreCfg.Faults = faults.Only(f)
	return cosim.Config{
		ISS:        iss.FixedConfig(),
		Core:       coreCfg,
		InstrLimit: 1,
	}
}

func TestValidGeneratorEmitsOnlyDecodableWords(t *testing.T) {
	c := &Campaign{Strategy: StrategyValid}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		w := c.word(rng)
		in := riscv.Decode(w)
		if in.Mn == riscv.InsInvalid {
			t.Fatalf("valid generator emitted invalid word %#08x", w)
		}
		if w&0x7f == riscv.OpSystem {
			t.Fatalf("valid generator emitted SYSTEM instruction %#08x", w)
		}
	}
}

func TestUniformGeneratorBlocksSystem(t *testing.T) {
	c := &Campaign{Strategy: StrategyUniform}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		if c.word(rng)&0x7f == riscv.OpSystem {
			t.Fatal("uniform generator emitted SYSTEM instruction")
		}
	}
}

// TestFuzzFindsEasyFault: E6 (BNE behaves like BEQ) triggers whenever a BNE
// compares a register with itself — well within reach of constrained-random
// generation.
func TestFuzzFindsEasyFault(t *testing.T) {
	c := &Campaign{Seed: 1, Strategy: StrategyValid, Base: baseCfg(faults.E6)}
	res := c.Run(200000, 30*time.Second)
	if !res.Found {
		t.Fatalf("constrained fuzzing failed to find E6 in %d trials", res.Trials)
	}
	if res.Mismatch == nil {
		t.Fatal("missing mismatch detail")
	}
	if riscv.Decode(res.Mismatch.Insn).Mn != riscv.InsBNE {
		t.Fatalf("witness %s is not BNE", res.Mismatch.Disasm)
	}
	t.Logf("E6 found after %d trials (%s)", res.Trials, res.Elapsed.Round(time.Millisecond))
}

// TestConstrainedFuzzingMissesDecodeFault is the corner-case argument: the
// valid-instruction generator can never produce the reserved encoding that
// E0 mis-decodes, so the fault stays hidden no matter the budget.
func TestConstrainedFuzzingMissesDecodeFault(t *testing.T) {
	c := &Campaign{Seed: 2, Strategy: StrategyValid, Base: baseCfg(faults.E0)}
	res := c.Run(3000, 10*time.Second)
	if res.Found {
		t.Fatalf("valid-only fuzzing cannot trigger E0, but reported %v", res.Mismatch)
	}
	if res.Trials < 100 {
		t.Fatalf("campaign barely ran: %d trials", res.Trials)
	}
}

// TestFuzzCampaignDeterministic: same seed, same outcome.
func TestFuzzCampaignDeterministic(t *testing.T) {
	a := (&Campaign{Seed: 7, Strategy: StrategyValid, Base: baseCfg(faults.E3)}).Run(2000, 20*time.Second)
	b := (&Campaign{Seed: 7, Strategy: StrategyValid, Base: baseCfg(faults.E3)}).Run(2000, 20*time.Second)
	if a.Found != b.Found || a.Trials != b.Trials {
		t.Fatalf("campaign not deterministic: %+v vs %+v", a, b)
	}
}

// TestConcreteTrialIsSinglePath: a fuzz trial must not fork.
func TestConcreteTrialIsSinglePath(t *testing.T) {
	c := &Campaign{Seed: 9, Strategy: StrategyValid, Base: baseCfg(faults.E6)}
	res := c.Run(50, 10*time.Second)
	// 1 instruction per trial, 2 models: exactly 2 executed instructions per
	// trial (unless the finding trial ended early).
	maxInstr := uint64(res.Trials * 2)
	if res.Instr > maxInstr {
		t.Fatalf("trials forked: %d instructions for %d trials", res.Instr, res.Trials)
	}
}

// TestMutationFuzzingReachesReservedEncodings: unlike valid-only generation,
// the coverage-guided mutation fuzzer can flip bit 25 of a valid shift and
// trigger the decode fault E0 — the behaviour of the paper's own prior
// fuzzing work.
func TestMutationFuzzingReachesReservedEncodings(t *testing.T) {
	c := &MutationCampaign{Seed: 5, Base: baseCfg(faults.E0)}
	res := c.Run(400000, 60*time.Second)
	if !res.Found {
		t.Skipf("mutation fuzzing did not hit E0 within budget (%d trials) — probabilistic, not a failure", res.Trials)
	}
	if res.Mismatch == nil || res.Mismatch.Insn>>25&1 != 1 {
		t.Fatalf("witness %v does not carry the reserved bit", res.Mismatch)
	}
	t.Logf("E0 found by mutation after %d trials (%s)", res.Trials, res.Elapsed.Round(time.Millisecond))
}

func TestMutationFuzzingFindsEasyFault(t *testing.T) {
	c := &MutationCampaign{Seed: 3, Base: baseCfg(faults.E6)}
	res := c.Run(100000, 30*time.Second)
	if !res.Found {
		t.Fatalf("mutation fuzzing failed to find E6 in %d trials", res.Trials)
	}
}

func TestMutationDeterministic(t *testing.T) {
	a := (&MutationCampaign{Seed: 9, Base: baseCfg(faults.E3)}).Run(3000, 20*time.Second)
	b := (&MutationCampaign{Seed: 9, Base: baseCfg(faults.E3)}).Run(3000, 20*time.Second)
	if a.Found != b.Found || a.Trials != b.Trials {
		t.Fatalf("not deterministic: %+v vs %+v", a, b)
	}
}
