package riscv

import "symriscv/internal/smt"

// RV32M semantics over 32-bit terms. Like the immediate codecs, these are
// ISA-level definitions shared by the processor models: both sides intern
// the *same* term shapes, so the voter's pointer-equality fast path applies
// and no (expensive) multiplier/divider equivalence proof is ever needed in
// a matched configuration. The RISC-V-mandated division edge cases
// (division by zero, signed overflow) are encoded explicitly.

// SymMul returns the low 32 bits of a*b (MUL).
func SymMul(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	return ctx.Mul(a, b)
}

// SymMulH returns the high 32 bits of the signed×signed product (MULH).
func SymMulH(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	p := ctx.Mul(ctx.SExt(a, 64), ctx.SExt(b, 64))
	return ctx.Extract(p, 63, 32)
}

// SymMulHSU returns the high 32 bits of the signed×unsigned product (MULHSU).
func SymMulHSU(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	p := ctx.Mul(ctx.SExt(a, 64), ctx.ZExt(b, 64))
	return ctx.Extract(p, 63, 32)
}

// SymMulHU returns the high 32 bits of the unsigned×unsigned product (MULHU).
func SymMulHU(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	p := ctx.Mul(ctx.ZExt(a, 64), ctx.ZExt(b, 64))
	return ctx.Extract(p, 63, 32)
}

// SymDivU returns DIVU: unsigned division with x/0 = 2^32-1 (which is the
// SMT-LIB bvudiv convention, so no special case is needed).
func SymDivU(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	return ctx.UDiv(a, b)
}

// SymRemU returns REMU: unsigned remainder with x%0 = x (the SMT-LIB bvurem
// convention).
func SymRemU(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	return ctx.URem(a, b)
}

func symAbs(ctx *smt.Context, x *smt.Term) *smt.Term {
	zero := ctx.BV(32, 0)
	return ctx.Ite(ctx.Slt(x, zero), ctx.Neg(x), x)
}

// SymDiv returns DIV: signed division via unsigned magnitudes, with the
// RISC-V edge cases: x/0 = -1, and INT_MIN / -1 = INT_MIN (which the
// magnitude construction already yields).
func SymDiv(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	zero := ctx.BV(32, 0)
	qmag := ctx.UDiv(symAbs(ctx, a), symAbs(ctx, b))
	diffSign := ctx.BXor(ctx.Slt(a, zero), ctx.Slt(b, zero))
	q := ctx.Ite(diffSign, ctx.Neg(qmag), qmag)
	return ctx.Ite(ctx.Eq(b, zero), ctx.BV(32, 0xffffffff), q)
}

// SymRem returns REM: signed remainder (sign follows the dividend), with
// x%0 = x; INT_MIN % -1 = 0 falls out of the magnitude construction.
func SymRem(ctx *smt.Context, a, b *smt.Term) *smt.Term {
	zero := ctx.BV(32, 0)
	rmag := ctx.URem(symAbs(ctx, a), symAbs(ctx, b))
	r := ctx.Ite(ctx.Slt(a, zero), ctx.Neg(rmag), rmag)
	return ctx.Ite(ctx.Eq(b, zero), a, r)
}
