package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// abiNames maps ABI register names to indices.
var abiNames = map[string]uint32{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7,
	"s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"s8": 24, "s9": 25, "s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

func parseReg(s string) (uint32, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if n, ok := abiNames[s]; ok {
		return n, nil
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < 32 {
			return uint32(n), nil
		}
	}
	return 0, fmt.Errorf("riscv: bad register %q", s)
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "+"), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("riscv: bad immediate %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func parseCSR(s string) (uint32, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if addr, ok := CSRByName(s); ok {
		return uint32(addr), nil
	}
	v, err := parseImm(s)
	if err != nil || v < 0 || v > 0xfff {
		return 0, fmt.Errorf("riscv: bad CSR %q", s)
	}
	return uint32(v), nil
}

// parseMem parses "off(reg)" operands.
func parseMem(s string) (off int64, reg uint32, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("riscv: bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	reg, err = parseReg(s[open+1 : len(s)-1])
	return off, reg, err
}

// Assemble translates one assembler line (the same syntax Disasm emits,
// plus ABI register names and ".word") into an instruction word.
func Assemble(line string) (uint32, error) {
	line = strings.TrimSpace(line)
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	if line == "" {
		return 0, fmt.Errorf("riscv: empty line")
	}
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToLower(fields[0])
	var ops []string
	if len(fields) == 2 {
		for _, o := range strings.Split(fields[1], ",") {
			ops = append(ops, strings.TrimSpace(o))
		}
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("riscv: %s needs %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	switch mn {
	case ".word":
		if err := need(1); err != nil {
			return 0, err
		}
		v, err := parseImm(ops[0])
		if err != nil {
			return 0, err
		}
		return uint32(v), nil

	case "fence":
		return FENCE(), nil
	case "ecall":
		return ECALL(), nil
	case "ebreak":
		return EBREAK(), nil
	case "wfi":
		return WFI(), nil
	case "mret":
		return MRET(), nil
	case "nop":
		return ADDI(0, 0, 0), nil

	case "lui", "auipc":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return 0, err
		}
		if mn == "lui" {
			return LUI(rd, uint32(imm)<<12), nil
		}
		return AUIPC(rd, uint32(imm)<<12), nil

	case "jal":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		off, err := parseImm(ops[1])
		if err != nil {
			return 0, err
		}
		return JAL(rd, int32(off)), nil

	case "jalr":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMem(ops[1])
		if err != nil {
			return 0, err
		}
		return JALR(rd, rs1, int32(off)), nil

	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		if err := need(3); err != nil {
			return 0, err
		}
		rs1, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs2, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		off, err := parseImm(ops[2])
		if err != nil {
			return 0, err
		}
		f := map[string]func(uint32, uint32, int32) uint32{
			"beq": BEQ, "bne": BNE, "blt": BLT, "bge": BGE, "bltu": BLTU, "bgeu": BGEU,
		}[mn]
		return f(rs1, rs2, int32(off)), nil

	case "lb", "lh", "lw", "lbu", "lhu":
		if err := need(2); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMem(ops[1])
		if err != nil {
			return 0, err
		}
		f := map[string]func(uint32, uint32, int32) uint32{
			"lb": LB, "lh": LH, "lw": LW, "lbu": LBU, "lhu": LHU,
		}[mn]
		return f(rd, rs1, int32(off)), nil

	case "sb", "sh", "sw":
		if err := need(2); err != nil {
			return 0, err
		}
		rs2, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		off, rs1, err := parseMem(ops[1])
		if err != nil {
			return 0, err
		}
		f := map[string]func(uint32, uint32, int32) uint32{
			"sb": SB, "sh": SH, "sw": SW,
		}[mn]
		return f(rs1, rs2, int32(off)), nil

	case "addi", "slti", "sltiu", "xori", "ori", "andi":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return 0, err
		}
		f := map[string]func(uint32, uint32, int32) uint32{
			"addi": ADDI, "slti": SLTI, "sltiu": SLTIU, "xori": XORI, "ori": ORI, "andi": ANDI,
		}[mn]
		return f(rd, rs1, int32(imm)), nil

	case "slli", "srli", "srai":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		sh, err := parseImm(ops[2])
		if err != nil || sh < 0 || sh > 31 {
			return 0, fmt.Errorf("riscv: bad shift amount %q", ops[2])
		}
		f := map[string]func(uint32, uint32, uint32) uint32{
			"slli": SLLI, "srli": SRLI, "srai": SRAI,
		}[mn]
		return f(rd, rs1, uint32(sh)), nil

	case "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
		"mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(ops[1])
		if err != nil {
			return 0, err
		}
		rs2, err := parseReg(ops[2])
		if err != nil {
			return 0, err
		}
		f := map[string]func(uint32, uint32, uint32) uint32{
			"add": ADD, "sub": SUB, "sll": SLL, "slt": SLT, "sltu": SLTU,
			"xor": XOR, "srl": SRL, "sra": SRA, "or": OR, "and": AND,
			"mul": MUL, "mulh": MULH, "mulhsu": MULHSU, "mulhu": MULHU,
			"div": DIV, "divu": DIVU, "rem": REM, "remu": REMU,
		}[mn]
		return f(rd, rs1, rs2), nil

	case "csrrw", "csrrs", "csrrc":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		csr, err := parseCSR(ops[1])
		if err != nil {
			return 0, err
		}
		rs1, err := parseReg(ops[2])
		if err != nil {
			return 0, err
		}
		f := map[string]func(uint32, uint32, uint32) uint32{
			"csrrw": CSRRW, "csrrs": CSRRS, "csrrc": CSRRC,
		}[mn]
		return f(rd, csr, rs1), nil

	case "csrrwi", "csrrsi", "csrrci":
		if err := need(3); err != nil {
			return 0, err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return 0, err
		}
		csr, err := parseCSR(ops[1])
		if err != nil {
			return 0, err
		}
		z, err := parseImm(ops[2])
		if err != nil || z < 0 || z > 31 {
			return 0, fmt.Errorf("riscv: bad zimm %q", ops[2])
		}
		f := map[string]func(uint32, uint32, uint32) uint32{
			"csrrwi": CSRRWI, "csrrsi": CSRRSI, "csrrci": CSRRCI,
		}[mn]
		return f(rd, csr, uint32(z)), nil
	}
	return 0, fmt.Errorf("riscv: unknown mnemonic %q", mn)
}
