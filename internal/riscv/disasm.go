package riscv

import "fmt"

// Disasm renders an instruction word in assembler syntax, used to print the
// example column of the Table I reproduction and counterexample reports.
func Disasm(w uint32) string {
	in := Decode(w)
	switch {
	case in.Mn == InsInvalid:
		return fmt.Sprintf(".word 0x%08x", w)
	case in.Mn == InsLUI || in.Mn == InsAUIPC:
		return fmt.Sprintf("%s x%d, 0x%x", in.Mn, in.Rd, uint32(in.Imm)>>12)
	case in.Mn == InsJAL:
		return fmt.Sprintf("jal x%d, %d", in.Rd, in.Imm)
	case in.Mn == InsJALR:
		return fmt.Sprintf("jalr x%d, %d(x%d)", in.Rd, in.Imm, in.Rs1)
	case in.Mn.IsBranch():
		return fmt.Sprintf("%s x%d, x%d, %d", in.Mn, in.Rs1, in.Rs2, in.Imm)
	case in.Mn.IsLoad():
		return fmt.Sprintf("%s x%d, %d(x%d)", in.Mn, in.Rd, in.Imm, in.Rs1)
	case in.Mn.IsStore():
		return fmt.Sprintf("%s x%d, %d(x%d)", in.Mn, in.Rs2, in.Imm, in.Rs1)
	case in.Mn == InsSLLI || in.Mn == InsSRLI || in.Mn == InsSRAI:
		return fmt.Sprintf("%s x%d, x%d, %d", in.Mn, in.Rd, in.Rs1, in.Imm)
	case in.Mn >= InsADDI && in.Mn <= InsANDI:
		return fmt.Sprintf("%s x%d, x%d, %d", in.Mn, in.Rd, in.Rs1, in.Imm)
	case in.Mn >= InsADD && in.Mn <= InsAND, in.Mn.IsMExt():
		return fmt.Sprintf("%s x%d, x%d, x%d", in.Mn, in.Rd, in.Rs1, in.Rs2)
	case in.Mn == InsCSRRW || in.Mn == InsCSRRS || in.Mn == InsCSRRC:
		return fmt.Sprintf("%s x%d, %s, x%d", in.Mn, in.Rd, CSRName(in.CSR), in.Rs1)
	case in.Mn == InsCSRRWI || in.Mn == InsCSRRSI || in.Mn == InsCSRRCI:
		return fmt.Sprintf("%s x%d, %s, %d", in.Mn, in.Rd, CSRName(in.CSR), in.Zimm)
	default: // fence/ecall/ebreak/wfi/mret
		return in.Mn.String()
	}
}
