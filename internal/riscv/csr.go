package riscv

import "fmt"

// Machine-mode and unprivileged CSR addresses (RV32, privileged spec v1.11 —
// the generation MicroRV32 and the RISC-V VP target).
const (
	CSRMStatus    = 0x300
	CSRMIsa       = 0x301
	CSRMEdeleg    = 0x302
	CSRMIdeleg    = 0x303
	CSRMIe        = 0x304
	CSRMTvec      = 0x305
	CSRMCounteren = 0x306
	CSRMScratch   = 0x340
	CSRMEpc       = 0x341
	CSRMCause     = 0x342
	CSRMTval      = 0x343
	CSRMIp        = 0x344

	CSRMCycle    = 0xB00
	CSRMInstret  = 0xB02
	CSRMCycleH   = 0xB80
	CSRMInstretH = 0xB82

	// mhpmcounter3..31 at 0xB03..0xB1F; mhpmcounter3h..31h at 0xB83..0xB9F;
	// mhpmevent3..31 at 0x323..0x33F.
	CSRMHpmCounterBase  = 0xB00
	CSRMHpmCounterHBase = 0xB80
	CSRMHpmEventBase    = 0x320

	CSRCycle    = 0xC00
	CSRTime     = 0xC01
	CSRInstret  = 0xC02
	CSRCycleH   = 0xC80
	CSRTimeH    = 0xC81
	CSRInstretH = 0xC82

	CSRMVendorID = 0xF11
	CSRMArchID   = 0xF12
	CSRMImpID    = 0xF13
	CSRMHartID   = 0xF14
)

// MisaRV32I is the misa value of an RV32 core with only the I extension.
const MisaRV32I = 0x40000100

// MisaRV32IM is the misa value of an RV32 core with the I and M extensions.
const MisaRV32IM = MisaRV32I | 1<<12

// CSRReadOnly reports whether the CSR address is architecturally read-only
// (top two address bits both set).
func CSRReadOnly(addr uint16) bool { return addr>>10&3 == 3 }

var csrNames = map[uint16]string{
	CSRMStatus: "mstatus", CSRMIsa: "misa", CSRMEdeleg: "medeleg", CSRMIdeleg: "mideleg",
	CSRMIe: "mie", CSRMTvec: "mtvec", CSRMCounteren: "mcounteren", CSRMScratch: "mscratch",
	CSRMEpc: "mepc", CSRMCause: "mcause", CSRMTval: "mtval", CSRMIp: "mip",
	CSRMCycle: "mcycle", CSRMInstret: "minstret", CSRMCycleH: "mcycleh", CSRMInstretH: "minstreth",
	CSRCycle: "cycle", CSRTime: "time", CSRInstret: "instret",
	CSRCycleH: "cycleh", CSRTimeH: "timeh", CSRInstretH: "instreth",
	CSRMVendorID: "mvendorid", CSRMArchID: "marchid", CSRMImpID: "mimpid", CSRMHartID: "mhartid",
}

// CSRName returns the architectural name of a CSR address, synthesising
// hpm counter/event names and falling back to a hex form.
func CSRName(addr uint16) string {
	if n, ok := csrNames[addr]; ok {
		return n
	}
	switch {
	case addr >= CSRMHpmCounterBase+3 && addr <= CSRMHpmCounterBase+31:
		return fmt.Sprintf("mhpmcounter%d", addr-CSRMHpmCounterBase)
	case addr >= CSRMHpmCounterHBase+3 && addr <= CSRMHpmCounterHBase+31:
		return fmt.Sprintf("mhpmcounter%dh", addr-CSRMHpmCounterHBase)
	case addr >= CSRMHpmEventBase+3 && addr <= CSRMHpmEventBase+31:
		return fmt.Sprintf("mhpmevent%d", addr-CSRMHpmEventBase)
	case addr >= CSRCycle+3 && addr <= CSRCycle+31:
		return fmt.Sprintf("hpmcounter%d", addr-CSRCycle)
	case addr >= CSRCycleH+3 && addr <= CSRCycleH+31:
		return fmt.Sprintf("hpmcounter%dh", addr-CSRCycleH)
	}
	return fmt.Sprintf("0x%03x", addr)
}

// csrAddrs is the reverse of csrNames; a precomputed map keeps the lookup
// independent of map iteration order (the names are unique, so the reverse
// mapping is well defined).
var csrAddrs = func() map[string]uint16 {
	rev := make(map[string]uint16, len(csrNames))
	for addr, n := range csrNames {
		rev[n] = addr
	}
	return rev
}()

// CSRByName resolves an architectural CSR name to its address.
func CSRByName(name string) (uint16, bool) {
	if addr, ok := csrAddrs[name]; ok {
		return addr, true
	}
	var idx int
	if _, err := fmt.Sscanf(name, "mhpmcounter%dh", &idx); err == nil && name == fmt.Sprintf("mhpmcounter%dh", idx) {
		if idx >= 3 && idx <= 31 {
			return uint16(CSRMHpmCounterHBase + idx), true
		}
		return 0, false
	}
	if _, err := fmt.Sscanf(name, "mhpmcounter%d", &idx); err == nil && idx >= 3 && idx <= 31 {
		return uint16(CSRMHpmCounterBase + idx), true
	}
	if _, err := fmt.Sscanf(name, "mhpmevent%d", &idx); err == nil && idx >= 3 && idx <= 31 {
		return uint16(CSRMHpmEventBase + idx), true
	}
	return 0, false
}
