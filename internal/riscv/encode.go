package riscv

// Instruction-format encoders. Register indices are masked to 5 bits;
// immediates take their format's canonical bit slices, so callers may pass
// sign-extended 32-bit immediates.

// EncodeR builds an R-type word.
func EncodeR(opcode, rd, funct3, rs1, rs2, funct7 uint32) uint32 {
	return opcode&0x7f | (rd&0x1f)<<7 | (funct3&7)<<12 | (rs1&0x1f)<<15 | (rs2&0x1f)<<20 | (funct7&0x7f)<<25
}

// EncodeI builds an I-type word with a 12-bit immediate.
func EncodeI(opcode, rd, funct3, rs1 uint32, imm int32) uint32 {
	return opcode&0x7f | (rd&0x1f)<<7 | (funct3&7)<<12 | (rs1&0x1f)<<15 | uint32(imm&0xfff)<<20
}

// EncodeS builds an S-type word with a 12-bit immediate.
func EncodeS(opcode, funct3, rs1, rs2 uint32, imm int32) uint32 {
	u := uint32(imm & 0xfff)
	return opcode&0x7f | (u&0x1f)<<7 | (funct3&7)<<12 | (rs1&0x1f)<<15 | (rs2&0x1f)<<20 | (u>>5)<<25
}

// EncodeB builds a B-type word; the immediate is a byte offset (bit 0 ignored).
func EncodeB(opcode, funct3, rs1, rs2 uint32, imm int32) uint32 {
	u := uint32(imm)
	return opcode&0x7f |
		(u>>11&1)<<7 | (u>>1&0xf)<<8 |
		(funct3&7)<<12 | (rs1&0x1f)<<15 | (rs2&0x1f)<<20 |
		(u>>5&0x3f)<<25 | (u>>12&1)<<31
}

// EncodeU builds a U-type word; imm supplies bits 31..12.
func EncodeU(opcode, rd uint32, imm uint32) uint32 {
	return opcode&0x7f | (rd&0x1f)<<7 | imm&0xfffff000
}

// EncodeJ builds a J-type word; the immediate is a byte offset (bit 0 ignored).
func EncodeJ(opcode, rd uint32, imm int32) uint32 {
	u := uint32(imm)
	return opcode&0x7f | (rd&0x1f)<<7 |
		(u>>12&0xff)<<12 | (u>>11&1)<<20 | (u>>1&0x3ff)<<21 | (u>>20&1)<<31
}

// Mnemonic builders for every RV32I + Zicsr instruction.

// LUI encodes lui rd, imm[31:12].
func LUI(rd uint32, imm uint32) uint32 { return EncodeU(OpLUI, rd, imm) }

// AUIPC encodes auipc rd, imm[31:12].
func AUIPC(rd uint32, imm uint32) uint32 { return EncodeU(OpAUIPC, rd, imm) }

// JAL encodes jal rd, offset.
func JAL(rd uint32, offset int32) uint32 { return EncodeJ(OpJAL, rd, offset) }

// JALR encodes jalr rd, rs1, offset.
func JALR(rd, rs1 uint32, offset int32) uint32 { return EncodeI(OpJALR, rd, 0, rs1, offset) }

// BEQ encodes beq rs1, rs2, offset.
func BEQ(rs1, rs2 uint32, offset int32) uint32 { return EncodeB(OpBranch, F3BEQ, rs1, rs2, offset) }

// BNE encodes bne rs1, rs2, offset.
func BNE(rs1, rs2 uint32, offset int32) uint32 { return EncodeB(OpBranch, F3BNE, rs1, rs2, offset) }

// BLT encodes blt rs1, rs2, offset.
func BLT(rs1, rs2 uint32, offset int32) uint32 { return EncodeB(OpBranch, F3BLT, rs1, rs2, offset) }

// BGE encodes bge rs1, rs2, offset.
func BGE(rs1, rs2 uint32, offset int32) uint32 { return EncodeB(OpBranch, F3BGE, rs1, rs2, offset) }

// BLTU encodes bltu rs1, rs2, offset.
func BLTU(rs1, rs2 uint32, offset int32) uint32 { return EncodeB(OpBranch, F3BLTU, rs1, rs2, offset) }

// BGEU encodes bgeu rs1, rs2, offset.
func BGEU(rs1, rs2 uint32, offset int32) uint32 { return EncodeB(OpBranch, F3BGEU, rs1, rs2, offset) }

// LB encodes lb rd, offset(rs1).
func LB(rd, rs1 uint32, offset int32) uint32 { return EncodeI(OpLoad, rd, F3LB, rs1, offset) }

// LH encodes lh rd, offset(rs1).
func LH(rd, rs1 uint32, offset int32) uint32 { return EncodeI(OpLoad, rd, F3LH, rs1, offset) }

// LW encodes lw rd, offset(rs1).
func LW(rd, rs1 uint32, offset int32) uint32 { return EncodeI(OpLoad, rd, F3LW, rs1, offset) }

// LBU encodes lbu rd, offset(rs1).
func LBU(rd, rs1 uint32, offset int32) uint32 { return EncodeI(OpLoad, rd, F3LBU, rs1, offset) }

// LHU encodes lhu rd, offset(rs1).
func LHU(rd, rs1 uint32, offset int32) uint32 { return EncodeI(OpLoad, rd, F3LHU, rs1, offset) }

// SB encodes sb rs2, offset(rs1).
func SB(rs1, rs2 uint32, offset int32) uint32 { return EncodeS(OpStore, F3SB, rs1, rs2, offset) }

// SH encodes sh rs2, offset(rs1).
func SH(rs1, rs2 uint32, offset int32) uint32 { return EncodeS(OpStore, F3SH, rs1, rs2, offset) }

// SW encodes sw rs2, offset(rs1).
func SW(rs1, rs2 uint32, offset int32) uint32 { return EncodeS(OpStore, F3SW, rs1, rs2, offset) }

// ADDI encodes addi rd, rs1, imm.
func ADDI(rd, rs1 uint32, imm int32) uint32 { return EncodeI(OpImm, rd, F3ADDSUB, rs1, imm) }

// SLTI encodes slti rd, rs1, imm.
func SLTI(rd, rs1 uint32, imm int32) uint32 { return EncodeI(OpImm, rd, F3SLT, rs1, imm) }

// SLTIU encodes sltiu rd, rs1, imm.
func SLTIU(rd, rs1 uint32, imm int32) uint32 { return EncodeI(OpImm, rd, F3SLTU, rs1, imm) }

// XORI encodes xori rd, rs1, imm.
func XORI(rd, rs1 uint32, imm int32) uint32 { return EncodeI(OpImm, rd, F3XOR, rs1, imm) }

// ORI encodes ori rd, rs1, imm.
func ORI(rd, rs1 uint32, imm int32) uint32 { return EncodeI(OpImm, rd, F3OR, rs1, imm) }

// ANDI encodes andi rd, rs1, imm.
func ANDI(rd, rs1 uint32, imm int32) uint32 { return EncodeI(OpImm, rd, F3AND, rs1, imm) }

// SLLI encodes slli rd, rs1, shamt.
func SLLI(rd, rs1, shamt uint32) uint32 { return EncodeR(OpImm, rd, F3SLL, rs1, shamt, 0) }

// SRLI encodes srli rd, rs1, shamt.
func SRLI(rd, rs1, shamt uint32) uint32 { return EncodeR(OpImm, rd, F3SRL, rs1, shamt, 0) }

// SRAI encodes srai rd, rs1, shamt.
func SRAI(rd, rs1, shamt uint32) uint32 { return EncodeR(OpImm, rd, F3SRL, rs1, shamt, 0x20) }

// ADD encodes add rd, rs1, rs2.
func ADD(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3ADDSUB, rs1, rs2, 0) }

// SUB encodes sub rd, rs1, rs2.
func SUB(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3ADDSUB, rs1, rs2, 0x20) }

// SLL encodes sll rd, rs1, rs2.
func SLL(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3SLL, rs1, rs2, 0) }

// SLT encodes slt rd, rs1, rs2.
func SLT(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3SLT, rs1, rs2, 0) }

// SLTU encodes sltu rd, rs1, rs2.
func SLTU(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3SLTU, rs1, rs2, 0) }

// XOR encodes xor rd, rs1, rs2.
func XOR(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3XOR, rs1, rs2, 0) }

// SRL encodes srl rd, rs1, rs2.
func SRL(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3SRL, rs1, rs2, 0) }

// SRA encodes sra rd, rs1, rs2.
func SRA(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3SRL, rs1, rs2, 0x20) }

// OR encodes or rd, rs1, rs2.
func OR(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3OR, rs1, rs2, 0) }

// AND encodes and rd, rs1, rs2.
func AND(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3AND, rs1, rs2, 0) }

// MUL encodes mul rd, rs1, rs2.
func MUL(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3MUL, rs1, rs2, F7MulDiv) }

// MULH encodes mulh rd, rs1, rs2.
func MULH(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3MULH, rs1, rs2, F7MulDiv) }

// MULHSU encodes mulhsu rd, rs1, rs2.
func MULHSU(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3MULHSU, rs1, rs2, F7MulDiv) }

// MULHU encodes mulhu rd, rs1, rs2.
func MULHU(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3MULHU, rs1, rs2, F7MulDiv) }

// DIV encodes div rd, rs1, rs2.
func DIV(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3DIV, rs1, rs2, F7MulDiv) }

// DIVU encodes divu rd, rs1, rs2.
func DIVU(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3DIVU, rs1, rs2, F7MulDiv) }

// REM encodes rem rd, rs1, rs2.
func REM(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3REM, rs1, rs2, F7MulDiv) }

// REMU encodes remu rd, rs1, rs2.
func REMU(rd, rs1, rs2 uint32) uint32 { return EncodeR(OpReg, rd, F3REMU, rs1, rs2, F7MulDiv) }

// FENCE encodes fence (pred/succ all).
func FENCE() uint32 { return EncodeI(OpMisc, 0, 0, 0, 0x0ff) }

// ECALL encodes ecall.
func ECALL() uint32 { return EncodeI(OpSystem, 0, F3PRIV, 0, F12ECALL) }

// EBREAK encodes ebreak.
func EBREAK() uint32 { return EncodeI(OpSystem, 0, F3PRIV, 0, F12EBREAK) }

// WFI encodes wfi.
func WFI() uint32 { return EncodeI(OpSystem, 0, F3PRIV, 0, F12WFI) }

// MRET encodes mret.
func MRET() uint32 { return EncodeI(OpSystem, 0, F3PRIV, 0, F12MRET) }

// CSRRW encodes csrrw rd, csr, rs1.
func CSRRW(rd, csr, rs1 uint32) uint32 { return EncodeI(OpSystem, rd, F3CSRRW, rs1, int32(csr)) }

// CSRRS encodes csrrs rd, csr, rs1.
func CSRRS(rd, csr, rs1 uint32) uint32 { return EncodeI(OpSystem, rd, F3CSRRS, rs1, int32(csr)) }

// CSRRC encodes csrrc rd, csr, rs1.
func CSRRC(rd, csr, rs1 uint32) uint32 { return EncodeI(OpSystem, rd, F3CSRRC, rs1, int32(csr)) }

// CSRRWI encodes csrrwi rd, csr, zimm.
func CSRRWI(rd, csr, zimm uint32) uint32 { return EncodeI(OpSystem, rd, F3CSRRWI, zimm, int32(csr)) }

// CSRRSI encodes csrrsi rd, csr, zimm.
func CSRRSI(rd, csr, zimm uint32) uint32 { return EncodeI(OpSystem, rd, F3CSRRSI, zimm, int32(csr)) }

// CSRRCI encodes csrrci rd, csr, zimm.
func CSRRCI(rd, csr, zimm uint32) uint32 { return EncodeI(OpSystem, rd, F3CSRRCI, zimm, int32(csr)) }
