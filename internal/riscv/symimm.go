package riscv

import "symriscv/internal/smt"

// Symbolic field and immediate extractors over a 32-bit instruction term.
// These encode the ISA's format definitions; both processor models build
// their data paths from them (the decode *tables* remain per-model — that is
// where the injected decode faults live).

// FieldRd extracts the rd register field (5 bits).
func FieldRd(ctx *smt.Context, insn *smt.Term) *smt.Term { return ctx.Extract(insn, 11, 7) }

// FieldRs1 extracts the rs1 register field (5 bits).
func FieldRs1(ctx *smt.Context, insn *smt.Term) *smt.Term { return ctx.Extract(insn, 19, 15) }

// FieldRs2 extracts the rs2 register field (5 bits).
func FieldRs2(ctx *smt.Context, insn *smt.Term) *smt.Term { return ctx.Extract(insn, 24, 20) }

// FieldCSR extracts the CSR address field (12 bits).
func FieldCSR(ctx *smt.Context, insn *smt.Term) *smt.Term { return ctx.Extract(insn, 31, 20) }

// FieldShamt extracts the shift amount of the shift-immediate formats (5 bits).
func FieldShamt(ctx *smt.Context, insn *smt.Term) *smt.Term { return ctx.Extract(insn, 24, 20) }

// SymImmI builds the sign-extended I-type immediate.
func SymImmI(ctx *smt.Context, insn *smt.Term) *smt.Term {
	return ctx.SExt(ctx.Extract(insn, 31, 20), 32)
}

// SymImmS builds the sign-extended S-type immediate.
func SymImmS(ctx *smt.Context, insn *smt.Term) *smt.Term {
	return ctx.SExt(ctx.Concat(ctx.Extract(insn, 31, 25), ctx.Extract(insn, 11, 7)), 32)
}

// SymImmB builds the sign-extended B-type immediate (byte offset).
func SymImmB(ctx *smt.Context, insn *smt.Term) *smt.Term {
	imm := ctx.Concat(ctx.Extract(insn, 31, 31), // imm[12]
		ctx.Concat(ctx.Extract(insn, 7, 7), // imm[11]
			ctx.Concat(ctx.Extract(insn, 30, 25), // imm[10:5]
				ctx.Concat(ctx.Extract(insn, 11, 8), ctx.BV(1, 0))))) // imm[4:1], 0
	return ctx.SExt(imm, 32)
}

// SymImmU builds the U-type immediate (bits 31..12, low bits zero).
func SymImmU(ctx *smt.Context, insn *smt.Term) *smt.Term {
	return ctx.Concat(ctx.Extract(insn, 31, 12), ctx.BV(12, 0))
}

// SymImmJ builds the sign-extended J-type immediate (byte offset).
func SymImmJ(ctx *smt.Context, insn *smt.Term) *smt.Term {
	imm := ctx.Concat(ctx.Extract(insn, 31, 31), // imm[20]
		ctx.Concat(ctx.Extract(insn, 19, 12), // imm[19:12]
			ctx.Concat(ctx.Extract(insn, 20, 20), // imm[11]
				ctx.Concat(ctx.Extract(insn, 30, 21), ctx.BV(1, 0))))) // imm[10:1], 0
	return ctx.SExt(imm, 32)
}

// SymZimm builds the zero-extended CSR immediate (uimm field).
func SymZimm(ctx *smt.Context, insn *smt.Term) *smt.Term {
	return ctx.ZExt(ctx.Extract(insn, 19, 15), 32)
}
