// Package riscv holds the RV32I + Zicsr instruction-set tables shared by the
// reference ISS, the RTL core model, the assembler helpers, and the
// disassembler that renders counterexamples: opcodes, instruction formats,
// immediate codecs, and the CSR catalogue.
package riscv

import "fmt"

// Major opcodes (instruction bits 6..0).
const (
	OpLUI    = 0x37
	OpAUIPC  = 0x17
	OpJAL    = 0x6F
	OpJALR   = 0x67
	OpBranch = 0x63
	OpLoad   = 0x03
	OpStore  = 0x23
	OpImm    = 0x13
	OpReg    = 0x33
	OpMisc   = 0x0F // FENCE
	OpSystem = 0x73 // ECALL/EBREAK/CSR*/WFI/MRET
)

// funct3 values for BRANCH.
const (
	F3BEQ  = 0
	F3BNE  = 1
	F3BLT  = 4
	F3BGE  = 5
	F3BLTU = 6
	F3BGEU = 7
)

// funct3 values for LOAD.
const (
	F3LB  = 0
	F3LH  = 1
	F3LW  = 2
	F3LBU = 4
	F3LHU = 5
)

// funct3 values for STORE.
const (
	F3SB = 0
	F3SH = 1
	F3SW = 2
)

// funct3 values for OP/OP-IMM.
const (
	F3ADDSUB = 0
	F3SLL    = 1
	F3SLT    = 2
	F3SLTU   = 3
	F3XOR    = 4
	F3SRL    = 5 // also SRA, selected by bit 30
	F3OR     = 6
	F3AND    = 7
)

// funct3 values for SYSTEM.
const (
	F3PRIV   = 0 // ECALL/EBREAK/WFI/MRET
	F3CSRRW  = 1
	F3CSRRS  = 2
	F3CSRRC  = 3
	F3CSRRWI = 5
	F3CSRRSI = 6
	F3CSRRCI = 7
)

// funct7 value selecting the M extension within the OP opcode.
const F7MulDiv = 0x01

// funct3 values for OP when funct7 == F7MulDiv.
const (
	F3MUL    = 0
	F3MULH   = 1
	F3MULHSU = 2
	F3MULHU  = 3
	F3DIV    = 4
	F3DIVU   = 5
	F3REM    = 6
	F3REMU   = 7
)

// SYSTEM funct12 values (bits 31..20) for the privileged instructions.
const (
	F12ECALL  = 0x000
	F12EBREAK = 0x001
	F12MRET   = 0x302
	F12WFI    = 0x105
)

// Mnemonic identifies one architectural instruction.
type Mnemonic uint8

// RV32I + Zicsr mnemonics.
const (
	InsInvalid Mnemonic = iota
	InsLUI
	InsAUIPC
	InsJAL
	InsJALR
	InsBEQ
	InsBNE
	InsBLT
	InsBGE
	InsBLTU
	InsBGEU
	InsLB
	InsLH
	InsLW
	InsLBU
	InsLHU
	InsSB
	InsSH
	InsSW
	InsADDI
	InsSLTI
	InsSLTIU
	InsXORI
	InsORI
	InsANDI
	InsSLLI
	InsSRLI
	InsSRAI
	InsADD
	InsSUB
	InsSLL
	InsSLT
	InsSLTU
	InsXOR
	InsSRL
	InsSRA
	InsOR
	InsAND
	InsMUL
	InsMULH
	InsMULHSU
	InsMULHU
	InsDIV
	InsDIVU
	InsREM
	InsREMU
	InsFENCE
	InsECALL
	InsEBREAK
	InsWFI
	InsMRET
	InsCSRRW
	InsCSRRS
	InsCSRRC
	InsCSRRWI
	InsCSRRSI
	InsCSRRCI
	numMnemonics
)

var mnemonicNames = [numMnemonics]string{
	InsInvalid: "invalid",
	InsLUI:     "lui", InsAUIPC: "auipc", InsJAL: "jal", InsJALR: "jalr",
	InsBEQ: "beq", InsBNE: "bne", InsBLT: "blt", InsBGE: "bge", InsBLTU: "bltu", InsBGEU: "bgeu",
	InsLB: "lb", InsLH: "lh", InsLW: "lw", InsLBU: "lbu", InsLHU: "lhu",
	InsSB: "sb", InsSH: "sh", InsSW: "sw",
	InsADDI: "addi", InsSLTI: "slti", InsSLTIU: "sltiu", InsXORI: "xori", InsORI: "ori", InsANDI: "andi",
	InsSLLI: "slli", InsSRLI: "srli", InsSRAI: "srai",
	InsADD: "add", InsSUB: "sub", InsSLL: "sll", InsSLT: "slt", InsSLTU: "sltu",
	InsXOR: "xor", InsSRL: "srl", InsSRA: "sra", InsOR: "or", InsAND: "and",
	InsMUL: "mul", InsMULH: "mulh", InsMULHSU: "mulhsu", InsMULHU: "mulhu",
	InsDIV: "div", InsDIVU: "divu", InsREM: "rem", InsREMU: "remu",
	InsFENCE: "fence", InsECALL: "ecall", InsEBREAK: "ebreak", InsWFI: "wfi", InsMRET: "mret",
	InsCSRRW: "csrrw", InsCSRRS: "csrrs", InsCSRRC: "csrrc",
	InsCSRRWI: "csrrwi", InsCSRRSI: "csrrsi", InsCSRRCI: "csrrci",
}

func (m Mnemonic) String() string {
	if m < numMnemonics {
		return mnemonicNames[m]
	}
	return fmt.Sprintf("mnemonic(%d)", uint8(m))
}

// IsLoad reports whether the mnemonic is a load instruction.
func (m Mnemonic) IsLoad() bool { return m >= InsLB && m <= InsLHU }

// IsStore reports whether the mnemonic is a store instruction.
func (m Mnemonic) IsStore() bool { return m >= InsSB && m <= InsSW }

// IsBranch reports whether the mnemonic is a conditional branch.
func (m Mnemonic) IsBranch() bool { return m >= InsBEQ && m <= InsBGEU }

// IsCSR reports whether the mnemonic is a Zicsr instruction.
func (m Mnemonic) IsCSR() bool { return m >= InsCSRRW && m <= InsCSRRCI }

// IsMExt reports whether the mnemonic belongs to the M extension.
func (m Mnemonic) IsMExt() bool { return m >= InsMUL && m <= InsREMU }

// RegName returns the xN name of an architectural register index.
func RegName(r int) string { return fmt.Sprintf("x%d", r) }

// Exception cause codes (mcause values) used by both models.
const (
	ExcInstrAddrMisaligned = 0
	ExcIllegalInstruction  = 2
	ExcBreakpoint          = 3
	ExcLoadAddrMisaligned  = 4
	ExcStoreAddrMisaligned = 6
	ExcEnvCallFromM        = 11
)

// ExcName returns a readable name for an exception cause code.
func ExcName(cause uint32) string {
	switch cause {
	case ExcInstrAddrMisaligned:
		return "instruction-address-misaligned"
	case ExcIllegalInstruction:
		return "illegal-instruction"
	case ExcBreakpoint:
		return "breakpoint"
	case ExcLoadAddrMisaligned:
		return "load-address-misaligned"
	case ExcStoreAddrMisaligned:
		return "store-address-misaligned"
	case ExcEnvCallFromM:
		return "ecall-from-M"
	}
	return fmt.Sprintf("cause(%d)", cause)
}
