package riscv

import (
	"math/rand"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		word string
		w    uint32
		want Inst
	}{
		{"lui", LUI(5, 0xdead0000), Inst{Mn: InsLUI, Rd: 5, Imm: int32(-559087616)}}, // 0xdead0000
		{"auipc", AUIPC(1, 0x1000), Inst{Mn: InsAUIPC, Rd: 1, Imm: 0x1000}},
		{"jal", JAL(1, -2048), Inst{Mn: InsJAL, Rd: 1, Imm: -2048}},
		{"jalr", JALR(1, 2, 16), Inst{Mn: InsJALR, Rd: 1, Rs1: 2, Imm: 16}},
		{"beq", BEQ(1, 2, -4), Inst{Mn: InsBEQ, Rs1: 1, Rs2: 2, Imm: -4}},
		{"bne", BNE(3, 4, 4094), Inst{Mn: InsBNE, Rs1: 3, Rs2: 4, Imm: 4094}},
		{"bge", BGE(3, 4, -4096), Inst{Mn: InsBGE, Rs1: 3, Rs2: 4, Imm: -4096}},
		{"lb", LB(1, 2, -1), Inst{Mn: InsLB, Rd: 1, Rs1: 2, Imm: -1}},
		{"lhu", LHU(1, 2, 2047), Inst{Mn: InsLHU, Rd: 1, Rs1: 2, Imm: 2047}},
		{"sw", SW(2, 3, -2048), Inst{Mn: InsSW, Rs1: 2, Rs2: 3, Imm: -2048}},
		{"addi", ADDI(1, 0, 42), Inst{Mn: InsADDI, Rd: 1, Imm: 42}},
		{"slli", SLLI(1, 2, 31), Inst{Mn: InsSLLI, Rd: 1, Rs1: 2, Rs2: 31, Imm: 31}},
		{"srai", SRAI(1, 2, 7), Inst{Mn: InsSRAI, Rd: 1, Rs1: 2, Rs2: 7, Imm: 7}},
		{"sub", SUB(3, 4, 5), Inst{Mn: InsSUB, Rd: 3, Rs1: 4, Rs2: 5}},
		{"sra", SRA(3, 4, 5), Inst{Mn: InsSRA, Rd: 3, Rs1: 4, Rs2: 5}},
		{"csrrw", CSRRW(1, CSRMScratch, 2), Inst{Mn: InsCSRRW, Rd: 1, Rs1: 2, CSR: CSRMScratch}},
		{"csrrsi", CSRRSI(2, CSRCycle, 5), Inst{Mn: InsCSRRSI, Rd: 2, Rs1: 5, CSR: CSRCycle, Zimm: 5}},
	}
	for _, tc := range cases {
		got := Decode(tc.w)
		if got.Mn != tc.want.Mn {
			t.Errorf("%s: mnemonic %v, want %v", tc.word, got.Mn, tc.want.Mn)
			continue
		}
		if got.Rd != tc.want.Rd && hasRd(tc.want.Mn) {
			t.Errorf("%s: rd=%d want %d", tc.word, got.Rd, tc.want.Rd)
		}
		if got.Imm != tc.want.Imm && tc.want.Imm != 0 {
			t.Errorf("%s: imm=%d want %d", tc.word, got.Imm, tc.want.Imm)
		}
		if tc.want.CSR != 0 && got.CSR != tc.want.CSR {
			t.Errorf("%s: csr=%#x want %#x", tc.word, got.CSR, tc.want.CSR)
		}
	}
}

func hasRd(m Mnemonic) bool { return !m.IsBranch() && !m.IsStore() }

func TestPrivDecodes(t *testing.T) {
	for _, tc := range []struct {
		w    uint32
		want Mnemonic
	}{
		{ECALL(), InsECALL},
		{EBREAK(), InsEBREAK},
		{WFI(), InsWFI},
		{MRET(), InsMRET},
		{FENCE(), InsFENCE},
	} {
		if got := Decode(tc.w).Mn; got != tc.want {
			t.Errorf("Decode(%#x) = %v, want %v", tc.w, got, tc.want)
		}
	}
}

func TestReservedEncodingsInvalid(t *testing.T) {
	cases := []uint32{
		SLLI(1, 2, 3) | 1<<25,                   // RV64 shamt bit set: reserved in RV32
		SRLI(1, 2, 3) | 1<<25,                   // ditto
		EncodeR(OpReg, 1, F3ADDSUB, 2, 3, 0x02), // bogus funct7
		EncodeR(OpReg, 1, F3XOR, 2, 3, 0x20),    // funct7=0x20 only for sub/sra
		EncodeI(OpJALR, 1, 1, 2, 0) | 1<<12,     // jalr funct3 != 0
		EncodeB(OpBranch, 2, 1, 2, 4),           // branch funct3=2 reserved
		EncodeI(OpLoad, 1, 3, 2, 0),             // load funct3=3 reserved
		EncodeS(OpStore, 3, 1, 2, 0),            // store funct3=3 reserved
		0x00000000,
		0xffffffff,
	}
	for _, w := range cases {
		if got := Decode(w).Mn; got != InsInvalid {
			t.Errorf("Decode(%#08x) = %v, want invalid", w, got)
		}
	}
}

func TestImmCodecsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		immI := int32(rng.Intn(4096) - 2048)
		if got := ImmI(EncodeI(OpImm, 0, 0, 0, immI)); got != immI {
			t.Fatalf("ImmI roundtrip: %d -> %d", immI, got)
		}
		if got := ImmS(EncodeS(OpStore, 0, 0, 0, immI)); got != immI {
			t.Fatalf("ImmS roundtrip: %d -> %d", immI, got)
		}
		immB := int32(rng.Intn(8192)-4096) &^ 1
		if got := ImmB(EncodeB(OpBranch, 0, 0, 0, immB)); got != immB {
			t.Fatalf("ImmB roundtrip: %d -> %d", immB, got)
		}
		immJ := int32(rng.Intn(1<<21)-(1<<20)) &^ 1
		if got := ImmJ(EncodeJ(OpJAL, 0, immJ)); got != immJ {
			t.Fatalf("ImmJ roundtrip: %d -> %d", immJ, got)
		}
		immU := int32(uint32(rng.Uint32()) & 0xfffff000)
		if got := ImmU(EncodeU(OpLUI, 0, uint32(immU))); got != immU {
			t.Fatalf("ImmU roundtrip: %#x -> %#x", immU, got)
		}
	}
}

func TestDecodeIgnoresNoMnemonicFields(t *testing.T) {
	// Every decodable word re-encoded from its fields must decode to the
	// same mnemonic (field-extraction consistency under fuzzing).
	rng := rand.New(rand.NewSource(77))
	n := 0
	for i := 0; i < 20000; i++ {
		w := rng.Uint32()
		in := Decode(w)
		if in.Mn == InsInvalid {
			continue
		}
		n++
		if in.Raw != w {
			t.Fatalf("Raw not preserved for %#x", w)
		}
	}
	if n == 0 {
		t.Fatal("fuzz never hit a valid encoding")
	}
}

func TestCSRCatalog(t *testing.T) {
	if !CSRReadOnly(CSRMVendorID) || !CSRReadOnly(CSRCycle) {
		t.Error("mvendorid/cycle must be read-only")
	}
	if CSRReadOnly(CSRMScratch) || CSRReadOnly(CSRMCycle) {
		t.Error("mscratch/mcycle must be writable")
	}
	names := map[uint16]string{
		CSRMArchID:              "marchid",
		CSRMIdeleg:              "mideleg",
		CSRMHpmCounterBase + 16: "mhpmcounter16",
		CSRMHpmCounterHBase + 3: "mhpmcounter3h",
		CSRMHpmEventBase + 16:   "mhpmevent16",
		CSRTimeH:                "timeh",
		0x7C0:                   "0x7c0",
	}
	for addr, want := range names {
		if got := CSRName(addr); got != want {
			t.Errorf("CSRName(%#x) = %q, want %q", addr, got, want)
		}
	}
	for _, name := range []string{"mscratch", "mhpmcounter16", "mhpmcounter3h", "mhpmevent16", "mcycle", "timeh"} {
		addr, ok := CSRByName(name)
		if !ok {
			t.Errorf("CSRByName(%q) not found", name)
			continue
		}
		if got := CSRName(addr); got != name {
			t.Errorf("CSRByName(%q) = %#x which names back to %q", name, addr, got)
		}
	}
	if _, ok := CSRByName("mhpmcounter2"); ok {
		t.Error("mhpmcounter2 must not resolve")
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		w    uint32
		want string
	}{
		{ADDI(1, 2, -5), "addi x1, x2, -5"},
		{LW(0, 0, 1), "lw x0, 1(x0)"},
		{SW(0, 0, 1), "sw x0, 1(x0)"},
		{BNE(1, 2, 8), "bne x1, x2, 8"},
		{JAL(1, 16), "jal x1, 16"},
		{JALR(1, 2, 4), "jalr x1, 4(x2)"},
		{LUI(3, 0xabcde000), "lui x3, 0xabcde"},
		{SLLI(1, 2, 5), "slli x1, x2, 5"},
		{ADD(1, 2, 3), "add x1, x2, x3"},
		{WFI(), "wfi"},
		{CSRRW(0, CSRMVendorID, 0), "csrrw x0, mvendorid, x0"},
		{CSRRCI(1, CSRMArchID, 1), "csrrci x1, marchid, 1"},
		{CSRRSI(2, CSRTime, 0), "csrrsi x2, time, 0"},
		{0x0000006b, ".word 0x0000006b"},
	}
	for _, tc := range cases {
		if got := Disasm(tc.w); got != tc.want {
			t.Errorf("Disasm(%#08x) = %q, want %q", tc.w, got, tc.want)
		}
	}
}

func TestMnemonicClasses(t *testing.T) {
	if !InsLW.IsLoad() || InsSW.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !InsSB.IsStore() || InsLB.IsStore() {
		t.Error("IsStore misclassifies")
	}
	if !InsBGEU.IsBranch() || InsJAL.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	if !InsCSRRCI.IsCSR() || InsECALL.IsCSR() {
		t.Error("IsCSR misclassifies")
	}
}

func TestNameHelpers(t *testing.T) {
	if RegName(5) != "x5" {
		t.Error("RegName broken")
	}
	for cause, want := range map[uint32]string{
		ExcInstrAddrMisaligned: "instruction-address-misaligned",
		ExcIllegalInstruction:  "illegal-instruction",
		ExcBreakpoint:          "breakpoint",
		ExcLoadAddrMisaligned:  "load-address-misaligned",
		ExcStoreAddrMisaligned: "store-address-misaligned",
		ExcEnvCallFromM:        "ecall-from-M",
		99:                     "cause(99)",
	} {
		if got := ExcName(cause); got != want {
			t.Errorf("ExcName(%d) = %q, want %q", cause, got, want)
		}
	}
	if Mnemonic(250).String() == "" {
		t.Error("out-of-range mnemonic should still render")
	}
}

func TestDecodeFuzzMatchesDisasmAssemble(t *testing.T) {
	// Spot-check a few decoded CSR words render with names.
	w := CSRRW(2, CSRMCycle, 3)
	if got := Disasm(w); got != "csrrw x2, mcycle, x3" {
		t.Errorf("csr disasm: %q", got)
	}
	w = CSRRWI(2, 0x7C0, 9)
	if got := Disasm(w); got != "csrrwi x2, 0x7c0, 9" {
		t.Errorf("unknown csr disasm: %q", got)
	}
	if _, err := Assemble(Disasm(w)); err != nil {
		t.Errorf("hex CSR round trip failed: %v", err)
	}
}
