package riscv

// Immediate extractors (sign-extended where the format requires it).

// ImmI extracts the I-type immediate.
func ImmI(w uint32) int32 { return int32(w) >> 20 }

// ImmS extracts the S-type immediate.
func ImmS(w uint32) int32 { return int32(w)>>25<<5 | int32(w>>7&0x1f) }

// ImmB extracts the B-type immediate (a byte offset).
func ImmB(w uint32) int32 {
	return int32(w)>>31<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3f)<<5 | int32(w>>8&0xf)<<1
}

// ImmU extracts the U-type immediate (already shifted into bits 31..12).
func ImmU(w uint32) int32 { return int32(w & 0xfffff000) }

// ImmJ extracts the J-type immediate (a byte offset).
func ImmJ(w uint32) int32 {
	return int32(w)>>31<<20 | int32(w>>12&0xff)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3ff)<<1
}

// Inst is a decoded instruction.
type Inst struct {
	Mn   Mnemonic
	Rd   int
	Rs1  int
	Rs2  int
	Imm  int32  // format immediate (shamt for shift-immediates)
	CSR  uint16 // CSR address for Zicsr instructions
	Zimm uint32 // zero-extended rs1 field for CSR*I instructions
	Raw  uint32
}

// Decode decodes one RV32I+Zicsr instruction word. Unrecognised encodings
// decode to Mn == InsInvalid (with Raw preserved).
func Decode(w uint32) Inst {
	in := Inst{
		Rd:  int(w >> 7 & 0x1f),
		Rs1: int(w >> 15 & 0x1f),
		Rs2: int(w >> 20 & 0x1f),
		Raw: w,
	}
	f3 := w >> 12 & 7
	f7 := w >> 25

	switch w & 0x7f {
	case OpLUI:
		in.Mn, in.Imm = InsLUI, ImmU(w)
	case OpAUIPC:
		in.Mn, in.Imm = InsAUIPC, ImmU(w)
	case OpJAL:
		in.Mn, in.Imm = InsJAL, ImmJ(w)
	case OpJALR:
		if f3 == 0 {
			in.Mn, in.Imm = InsJALR, ImmI(w)
		}
	case OpBranch:
		in.Imm = ImmB(w)
		switch f3 {
		case F3BEQ:
			in.Mn = InsBEQ
		case F3BNE:
			in.Mn = InsBNE
		case F3BLT:
			in.Mn = InsBLT
		case F3BGE:
			in.Mn = InsBGE
		case F3BLTU:
			in.Mn = InsBLTU
		case F3BGEU:
			in.Mn = InsBGEU
		}
	case OpLoad:
		in.Imm = ImmI(w)
		switch f3 {
		case F3LB:
			in.Mn = InsLB
		case F3LH:
			in.Mn = InsLH
		case F3LW:
			in.Mn = InsLW
		case F3LBU:
			in.Mn = InsLBU
		case F3LHU:
			in.Mn = InsLHU
		}
	case OpStore:
		in.Imm = ImmS(w)
		switch f3 {
		case F3SB:
			in.Mn = InsSB
		case F3SH:
			in.Mn = InsSH
		case F3SW:
			in.Mn = InsSW
		}
	case OpImm:
		in.Imm = ImmI(w)
		switch f3 {
		case F3ADDSUB:
			in.Mn = InsADDI
		case F3SLT:
			in.Mn = InsSLTI
		case F3SLTU:
			in.Mn = InsSLTIU
		case F3XOR:
			in.Mn = InsXORI
		case F3OR:
			in.Mn = InsORI
		case F3AND:
			in.Mn = InsANDI
		case F3SLL:
			if f7 == 0 {
				in.Mn, in.Imm = InsSLLI, int32(in.Rs2)
			}
		case F3SRL:
			switch f7 {
			case 0:
				in.Mn, in.Imm = InsSRLI, int32(in.Rs2)
			case 0x20:
				in.Mn, in.Imm = InsSRAI, int32(in.Rs2)
			}
		}
	case OpReg:
		switch {
		case f7 == 0:
			switch f3 {
			case F3ADDSUB:
				in.Mn = InsADD
			case F3SLL:
				in.Mn = InsSLL
			case F3SLT:
				in.Mn = InsSLT
			case F3SLTU:
				in.Mn = InsSLTU
			case F3XOR:
				in.Mn = InsXOR
			case F3SRL:
				in.Mn = InsSRL
			case F3OR:
				in.Mn = InsOR
			case F3AND:
				in.Mn = InsAND
			}
		case f7 == 0x20:
			switch f3 {
			case F3ADDSUB:
				in.Mn = InsSUB
			case F3SRL:
				in.Mn = InsSRA
			}
		case f7 == F7MulDiv:
			in.Mn = [8]Mnemonic{InsMUL, InsMULH, InsMULHSU, InsMULHU, InsDIV, InsDIVU, InsREM, InsREMU}[f3]
		}
	case OpMisc:
		if f3 == 0 {
			in.Mn = InsFENCE
		}
	case OpSystem:
		in.CSR = uint16(w >> 20)
		in.Zimm = w >> 15 & 0x1f
		switch f3 {
		case F3PRIV:
			if in.Rd == 0 && in.Rs1 == 0 {
				switch w >> 20 {
				case F12ECALL:
					in.Mn = InsECALL
				case F12EBREAK:
					in.Mn = InsEBREAK
				case F12WFI:
					in.Mn = InsWFI
				case F12MRET:
					in.Mn = InsMRET
				}
			}
		case F3CSRRW:
			in.Mn = InsCSRRW
		case F3CSRRS:
			in.Mn = InsCSRRS
		case F3CSRRC:
			in.Mn = InsCSRRC
		case F3CSRRWI:
			in.Mn = InsCSRRWI
		case F3CSRRSI:
			in.Mn = InsCSRRSI
		case F3CSRRCI:
			in.Mn = InsCSRRCI
		}
	}
	return in
}
