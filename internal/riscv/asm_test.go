package riscv

import (
	"math/rand"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	cases := []struct {
		line string
		want uint32
	}{
		{"addi x1, x2, -5", ADDI(1, 2, -5)},
		{"addi ra, sp, 16", ADDI(1, 2, 16)},
		{"nop", ADDI(0, 0, 0)},
		{"lw a0, 8(sp)", LW(10, 2, 8)},
		{"sw a0, -4(s0)", SW(8, 10, -4)},
		{"beq t0, t1, 32", BEQ(5, 6, 32)},
		{"bgeu x1, x2, -4096", BGEU(1, 2, -4096)},
		{"jal ra, 2048", JAL(1, 2048)},
		{"jalr zero, 0(ra)", JALR(0, 1, 0)},
		{"lui x3, 0xabcde", LUI(3, 0xabcde000)},
		{"auipc x3, 1", AUIPC(3, 0x1000)},
		{"slli x1, x2, 31", SLLI(1, 2, 31)},
		{"srai x1, x2, 1", SRAI(1, 2, 1)},
		{"and x1, x2, x3", AND(1, 2, 3)},
		{"sub t3, t4, t5", SUB(28, 29, 30)},
		{"csrrw x1, mscratch, x2", CSRRW(1, CSRMScratch, 2)},
		{"csrrw x1, 0x340, x2", CSRRW(1, CSRMScratch, 2)},
		{"csrrsi x2, time, 0", CSRRSI(2, CSRTime, 0)},
		{"csrrci x1, marchid, 1", CSRRCI(1, CSRMArchID, 1)},
		{"wfi", WFI()},
		{"mret", MRET()},
		{"ecall", ECALL()},
		{"fence", FENCE()},
		{".word 0x12345678", 0x12345678},
		{"addi x1, x2, 5 # trailing comment", ADDI(1, 2, 5)},
	}
	for _, tc := range cases {
		got, err := Assemble(tc.line)
		if err != nil {
			t.Errorf("Assemble(%q): %v", tc.line, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Assemble(%q) = %#08x, want %#08x", tc.line, got, tc.want)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	for _, line := range []string{
		"",
		"bogus x1, x2",
		"addi x1, x2",
		"addi x32, x2, 1",
		"lw x1, 8[x2]",
		"csrrw x1, nosuchcsr, x2",
		"slli x1, x2, 33",
		"csrrwi x1, mscratch, 32",
	} {
		if _, err := Assemble(line); err == nil {
			t.Errorf("Assemble(%q) should fail", line)
		}
	}
}

// TestAssembleDisasmRoundTrip fuzzes: every valid decoded word must
// re-assemble from its own disassembly to the same word (modulo don't-care
// fields, which Disasm does not print — so compare decoded fields instead).
func TestAssembleDisasmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 0
	for i := 0; i < 30000 && n < 400; i++ {
		w := rng.Uint32()
		in := Decode(w)
		if in.Mn == InsInvalid || in.Mn == InsFENCE {
			continue // FENCE prints without its pred/succ fields
		}
		n++
		line := Disasm(w)
		w2, err := Assemble(line)
		if err != nil {
			t.Fatalf("Assemble(Disasm(%#08x) = %q): %v", w, line, err)
		}
		in2 := Decode(w2)
		if in.Mn != in2.Mn || in.Rd != in2.Rd || in.Rs1 != in2.Rs1 ||
			in.Imm != in2.Imm || in.CSR != in2.CSR {
			t.Fatalf("round trip changed %q: %#08x -> %#08x", line, w, w2)
		}
		if in.Mn.IsBranch() || in.Mn.IsStore() || (in.Mn >= InsADD && in.Mn <= InsAND) {
			if in.Rs2 != in2.Rs2 {
				t.Fatalf("round trip changed rs2 in %q", line)
			}
		}
	}
	if n < 100 {
		t.Fatalf("too few round-trip samples: %d", n)
	}
}
