package riscv

import "symriscv/internal/smt"

// Machine-interrupt architectural constants.
const (
	// MstatusMIE is the global machine-interrupt-enable bit of mstatus.
	MstatusMIE = 1 << 3
	// MieMEIE is the machine-external-interrupt-enable bit of mie.
	MieMEIE = 1 << 11
	// CauseMachineExternalIRQ is the mcause value of a machine external
	// interrupt (interrupt bit set).
	CauseMachineExternalIRQ = 0x8000000B
)

// SymInterruptTaken builds the architectural take-condition for a machine
// external interrupt: the external line is asserted, mstatus.MIE is set and
// mie.MEIE is set. Both processor models build this same term, so matched
// configurations resolve it with a single engine fork.
func SymInterruptTaken(ctx *smt.Context, irq, mstatus, mie *smt.Term) *smt.Term {
	mieBit := ctx.Eq(ctx.Extract(mstatus, 3, 3), ctx.BV(1, 1))
	meie := ctx.Eq(ctx.Extract(mie, 11, 11), ctx.BV(1, 1))
	line := ctx.Eq(irq, ctx.BV(1, 1))
	return ctx.BAnd(line, ctx.BAnd(mieBit, meie))
}
