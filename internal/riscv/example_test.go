package riscv_test

import (
	"fmt"

	"symriscv/internal/riscv"
)

// ExampleAssemble round-trips an instruction through the assembler and
// disassembler.
func ExampleAssemble() {
	word, err := riscv.Assemble("addi a0, sp, -16")
	if err != nil {
		panic(err)
	}
	fmt.Printf("0x%08x\n", word)
	fmt.Println(riscv.Disasm(word))
	// Output:
	// 0xff010513
	// addi x10, x2, -16
}

// ExampleDecode inspects the fields of an instruction word.
func ExampleDecode() {
	in := riscv.Decode(riscv.BNE(1, 2, -3022))
	fmt.Println(in.Mn, in.Rs1, in.Rs2, in.Imm)
	// Output:
	// bne 1 2 -3022
}
