// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// in the MiniSat lineage: two-literal watching with blocker literals, first-UIP
// conflict analysis, VSIDS variable activity with phase saving, Luby restarts,
// and LBD-guided learnt-clause database reduction.
//
// The solver is incremental: variables and clauses may be added between calls
// to Solve, and Solve accepts assumption literals that hold only for that
// call. This is the backend of the bit-vector solver in internal/solver.
package sat

import (
	"fmt"
	"io"
	"sort"
)

// Var is a propositional variable index, starting at 0.
type Var int32

// Lit is a literal: variable times two, plus one if negated.
type Lit int32

// MkLit constructs a literal for v, negated if neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// String renders the literal as v3 or ~v3.
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

type clause struct {
	lits   []Lit
	act    float32
	lbd    uint32
	learnt bool
}

type watcher struct {
	c       *clause
	blocker Lit
}

// Status is the result of a Solve call.
type Status int8

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Stats holds cumulative solver counters.
type Stats struct {
	Conflicts    uint64
	Decisions    uint64
	Propagations uint64
	Restarts     uint64
	Learnt       uint64
	Removed      uint64
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause
	learnts []*clause

	watches [][]watcher // indexed by Lit

	assigns  []lbool // indexed by Var
	level    []int32
	reason   []*clause
	phase    []bool
	activity []float64

	trail    []Lit
	trailLim []int32
	qhead    int

	order  varHeap
	varInc float64
	claInc float64

	seen       []bool
	analyzeTmp []Lit

	ok bool // false once the clause set is unsat at level 0

	conflictAssumps []Lit // failed assumptions after an Unsat answer

	stats Stats

	// Budget limits one Solve call; 0 means unlimited.
	ConflictBudget uint64
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc: 1,
		claInc: 1,
		ok:     true,
	}
	s.order.activity = &s.activity
	return s
}

// Stats returns cumulative counters.
func (s *Solver) Stats() Stats { return s.stats }

// NumVars returns the number of variables created.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently stored.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar creates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, false)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v)
	return v
}

func (s *Solver) value(l Lit) lbool {
	a := s.assigns[l.Var()]
	if a == lUndef {
		return lUndef
	}
	if l.Sign() {
		if a == lTrue {
			return lFalse
		}
		return lTrue
	}
	return a
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// AddClause adds a problem clause. It returns false if the clause set became
// trivially unsatisfiable. Adding clauses is only legal between Solve calls
// (the solver backtracks to level 0 automatically).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)

	// Sort-free simplification: drop duplicate and false literals, detect
	// tautologies and satisfied clauses.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // cannot help
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}

	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{c, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{c, l0})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = boolToLbool(!l.Sign())
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.phase[v] = !l.Sign()
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++

		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, w)
				continue
			}
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.c
			// Ensure the false literal (¬p) is at position 1.
			np := p.Neg()
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], np
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Neg()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				continue
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) varDecay() { s.varInc /= 0.95 }

func (s *Solver) claBump(c *clause) {
	c.act += float32(s.claInc)
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= 0.999 }

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) (learnt []Lit, btLevel int32) {
	learnt = append(s.analyzeTmp[:0], 0) // reserve slot 0 for the asserting literal
	seenCount := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if confl.learnt {
			s.claBump(confl)
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.varBump(v)
			if s.level[v] >= s.decisionLevel() {
				seenCount++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal on the trail that participates.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		seenCount--
		if seenCount == 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = p.Neg()

	// Remember every flagged literal so the seen flags can be cleared even
	// for literals removed by minimisation below.
	toClear := append([]Lit(nil), learnt[1:]...)

	// Minimise: drop literals implied by the rest of the clause (local check).
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		if r == nil {
			learnt[j] = learnt[i]
			j++
			continue
		}
		redundant := true
		for _, q := range r.lits[1:] {
			if !s.seen[q.Var()] && s.level[q.Var()] > 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Clear seen flags for kept literals and compute the backtrack level.
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, q := range toClear {
		s.seen[q.Var()] = false
	}
	s.analyzeTmp = learnt
	return learnt, btLevel
}

// computeLBD returns the number of distinct decision levels in the clause.
func (s *Solver) computeLBD(lits []Lit) uint32 {
	levels := make(map[int32]struct{}, len(lits))
	for _, l := range lits {
		levels[s.level[l.Var()]] = struct{}{}
	}
	return uint32(len(levels))
}

// analyzeFinal collects the subset of assumptions responsible for forcing
// the complement of p, storing them in conflictAssumps.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictAssumps = s.conflictAssumps[:0]
	s.conflictAssumps = append(s.conflictAssumps, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			if s.level[v] > 0 {
				s.conflictAssumps = append(s.conflictAssumps, s.trail[i].Neg())
			}
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.removeMax()
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef {
			return MkLit(v, !s.phase[v])
		}
	}
}

// luby computes the Luby restart sequence value for 0-based index i:
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(i uint64) uint64 {
	// Find the finite subsequence containing index i and its size.
	var size uint64 = 1
	var seq uint
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i %= size
	}
	return uint64(1) << seq
}

// reduceDB removes roughly the worst half of the learnt clauses, never
// removing reason ("locked") clauses, binary clauses, or glue (lbd <= 2).
func (s *Solver) reduceDB() {
	ls := s.learnts
	if len(ls) < 100 {
		return
	}
	sort.Slice(ls, func(i, j int) bool { return worse(ls[i], ls[j]) })
	target := len(ls) / 2
	keep := ls[:0]
	for i, c := range ls {
		if i < target && c.lbd > 2 && len(c.lits) > 2 && !s.locked(c) {
			s.detach(c)
			s.stats.Removed++
			continue
		}
		keep = append(keep, c)
	}
	s.learnts = keep
}

// worse orders clauses so that less valuable clauses come first.
func worse(a, b *clause) bool {
	if a.lbd != b.lbd {
		return a.lbd > b.lbd
	}
	return a.act < b.act
}

func (s *Solver) locked(c *clause) bool {
	return s.reason[c.lits[0].Var()] == c
}

func (s *Solver) detach(c *clause) {
	for _, l := range []Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
		ws := s.watches[l]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve determines satisfiability of the clause set conjoined with the given
// assumption literals. On Sat, Model/ValueOf are valid; on Unsat,
// FailedAssumptions reports an inconsistent assumption subset. Unknown is
// returned only when ConflictBudget is exhausted.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		s.conflictAssumps = s.conflictAssumps[:0]
		return Unsat
	}
	s.cancelUntil(0)
	s.conflictAssumps = s.conflictAssumps[:0]

	conflictsAtStart := s.stats.Conflicts
	var restartSeq uint64
	restartBudget := luby(restartSeq) * 100
	var conflictsSinceRestart uint64
	maxLearnts := 4000 + len(s.clauses)/2

	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: append([]Lit(nil), learnt...), learnt: true}
				c.lbd = s.computeLBD(c.lits)
				s.learnts = append(s.learnts, c)
				s.stats.Learnt++
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varDecay()
			s.claDecay()
			if s.ConflictBudget > 0 && s.stats.Conflicts-conflictsAtStart > s.ConflictBudget {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}

		if conflictsSinceRestart >= restartBudget {
			conflictsSinceRestart = 0
			restartSeq++
			restartBudget = luby(restartSeq) * 100
			s.stats.Restarts++
			s.cancelUntil(0)
			continue
		}
		if len(s.learnts) > maxLearnts {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}

		// Enqueue pending assumptions, one decision level each.
		next := Lit(-1)
		for int(s.decisionLevel()) < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Dummy level so indices line up.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				s.analyzeFinal(p.Neg())
				s.cancelUntil(0)
				return Unsat
			default:
				next = p
			}
			if next != -1 {
				break
			}
		}
		if next == -1 {
			s.stats.Decisions++
			next = s.pickBranchLit()
			if next == -1 {
				return Sat // all variables assigned
			}
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(next, nil)
	}
}

// ValueOf returns the model value of v after a Sat answer. Unassigned
// variables (possible after simplification) read as false.
func (s *Solver) ValueOf(v Var) bool {
	return s.assigns[v] == lTrue
}

// LitValue returns the model value of literal l after a Sat answer.
func (s *Solver) LitValue(l Lit) bool {
	if l.Sign() {
		return !s.ValueOf(l.Var())
	}
	return s.ValueOf(l.Var())
}

// FailedAssumptions returns (a superset-minimised subset of) the assumptions
// that made the last Solve call Unsat. Empty when the clause set itself is
// unsatisfiable.
func (s *Solver) FailedAssumptions() []Lit {
	out := make([]Lit, len(s.conflictAssumps))
	copy(out, s.conflictAssumps)
	return out
}

// varHeap is an indexed max-heap ordered by variable activity.
type varHeap struct {
	heap     []Var
	indices  []int32 // position+1 in heap; 0 = absent
	activity *[]float64
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

func (h *varHeap) insert(v Var) {
	for int(v) >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = int32(len(h.heap))
	h.up(len(h.heap) - 1)
}

func (h *varHeap) update(v Var) {
	if int(v) < len(h.indices) && h.indices[v] != 0 {
		h.up(int(h.indices[v]) - 1)
	}
}

func (h *varHeap) removeMax() (Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 1
	h.heap = h.heap[:last]
	h.indices[v] = 0
	if last > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = int32(i + 1)
		i = p
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && h.less(h.heap[c+1], h.heap[c]) {
			c++
		}
		if !h.less(h.heap[c], v) {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = int32(i + 1)
		i = c
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}

// WriteDIMACS dumps the problem clauses (not learnt clauses) plus the
// current level-0 unit assignments in DIMACS CNF format, for interoperating
// with external SAT tooling.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	s.cancelUntil(0)
	units := len(s.trail)
	if !s.ok {
		// Canonical unsatisfiable instance.
		_, err := fmt.Fprintf(w, "p cnf 1 2\n1 0\n-1 0\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", len(s.assigns), len(s.clauses)+units); err != nil {
		return err
	}
	dimacs := func(l Lit) int {
		v := int(l.Var()) + 1
		if l.Sign() {
			return -v
		}
		return v
	}
	for _, l := range s.trail {
		if _, err := fmt.Fprintf(w, "%d 0\n", dimacs(l)); err != nil {
			return err
		}
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			if _, err := fmt.Fprintf(w, "%d ", dimacs(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "0"); err != nil {
			return err
		}
	}
	return nil
}
