// Package sat implements a CDCL (conflict-driven clause learning) SAT solver
// in the MiniSat lineage: two-literal watching with blocker literals and a
// dedicated binary-clause fast path, first-UIP conflict analysis, VSIDS
// variable activity with phase saving and target phasing, switchable
// Luby/LBD-EMA restarts, LBD-tiered learnt-clause retention, and clause
// inprocessing (subsumption, self-subsuming resolution, bounded variable
// elimination — see inprocess.go).
//
// The solver is incremental: variables and clauses may be added between calls
// to Solve, and Solve accepts assumption literals that hold only for that
// call. Consecutive Solve calls sharing an assumption prefix reuse the
// propagation work of the common prefix (trail reuse). This is the backend of
// the bit-vector solver in internal/solver.
package sat

import (
	"fmt"
	"io"
	"sort"
)

// Var is a propositional variable index, starting at 0.
type Var int32

// Lit is a literal: variable times two, plus one if negated.
type Lit int32

// MkLit constructs a literal for v, negated if neg is true.
func MkLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// String renders the literal as v3 or ~v3.
func (l Lit) String() string {
	if l.Sign() {
		return fmt.Sprintf("~v%d", l.Var())
	}
	return fmt.Sprintf("v%d", l.Var())
}

// lbool is a three-valued assignment in the xor encoding: the stored value
// for a variable is 0 (true), 1 (false) or lUndef, and the value of a
// literal is the stored value xor the literal's sign bit — one branch-free
// load in the propagation inner loop. Anything >= lUndef reads as
// unassigned (xor can produce lUndef or lUndef+1).
type lbool uint8

const (
	lTrue  lbool = 0
	lFalse lbool = 1
	lUndef lbool = 2
)

type clause struct {
	lits   []Lit
	act    float32
	lbd    uint32
	sig    uint64 // occurrence abstraction, maintained during inprocessing only
	used   uint8  // tier2 retention window: refreshed on use, decayed by reduceDB
	learnt bool
	dead   bool // removed by inprocessing; compacted out before search resumes
}

type watcher struct {
	c       *clause
	blocker Lit
	bin     bool // binary clause: blocker is the only other literal
}

// Status is the result of a Solve call.
type Status int8

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Stats holds cumulative solver counters.
type Stats struct {
	Conflicts    uint64
	Decisions    uint64
	Propagations uint64
	Restarts     uint64
	Learnt       uint64 // learnt clauses created
	Removed      uint64 // learnt clauses deleted (reduceDB + inprocessing)
	Subsumed     uint64 // problem clauses removed by subsumption
	Strengthened uint64 // literals removed by self-subsuming resolution
	Eliminated   uint64 // variables removed by bounded variable elimination
	Restored     uint64 // eliminated variables brought back by reuse
}

// Add accumulates o into s field by field (for merging per-worker solvers).
func (s *Stats) Add(o Stats) {
	s.Conflicts += o.Conflicts
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Restarts += o.Restarts
	s.Learnt += o.Learnt
	s.Removed += o.Removed
	s.Subsumed += o.Subsumed
	s.Strengthened += o.Strengthened
	s.Eliminated += o.Eliminated
	s.Restored += o.Restored
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	opts Options

	clauses []*clause
	learnts []*clause

	watches [][]watcher // indexed by Lit

	assigns  []uint8 // indexed by Var: 0 true, 1 false, >= lUndef unassigned
	level    []int32
	reason   []*clause
	phase    []uint8 // saved polarity: 0 positive, 1 negative
	activity []float64

	targetPhase []uint8 // best-trail polarity of the current Solve call
	targetStamp []uint64
	solveTick   uint64

	trail    []Lit
	trailLim []int32
	qhead    int

	order  varHeap
	varInc float64
	claInc float64

	seen       []bool
	analyzeTmp []Lit

	levelStamp []uint64 // computeLBD scratch, indexed by decision level
	lbdTick    uint64

	lbdFast float64 // short-term LBD EMA (RestartEMA)
	lbdSlow float64 // long-term LBD EMA

	lastAssumps []Lit // assumption prefix of the previous Solve (trail reuse)

	ok bool // false once the clause set is unsat at level 0

	conflictAssumps []Lit // failed assumptions after an Unsat answer

	// Inprocessing state (see inprocess.go).
	elimIdx         []int32 // per var: 1+index into elimStack when eliminated
	elimStack       []elimEntry
	frozen          []bool   // per var: protected from elimination this round
	litStamp        []uint64 // per Lit: subset-check scratch
	stampTick       uint64
	clausesAtSimp   int
	conflictsAtSimp uint64

	stats Stats

	// Budget limits one Solve call; 0 means unlimited.
	ConflictBudget uint64
}

// New returns an empty solver with the tuned default options.
func New() *Solver {
	return NewWith(DefaultOptions())
}

// NewWith returns an empty solver with the given heuristic parameters.
func NewWith(o Options) *Solver {
	return &Solver{
		opts:       o,
		varInc:     1,
		claInc:     1,
		ok:         true,
		levelStamp: make([]uint64, 1),
	}
}

// SetInprocessing toggles clause-database inprocessing. Turning it off never
// undoes past simplification; it only stops future rounds.
func (s *Solver) SetInprocessing(on bool) { s.opts.Inprocess = on }

// Stats returns cumulative counters.
func (s *Solver) Stats() Stats { return s.stats }

// NumVars returns the number of variables created.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses currently stored.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar creates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	p := uint8(1)
	if s.opts.PhaseSeed != 0 {
		st := s.opts.PhaseSeed + uint64(v)
		p = uint8(splitmix64(&st) & 1)
	} else if s.opts.InitPhase {
		p = 0
	}
	s.assigns = append(s.assigns, uint8(lUndef))
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.phase = append(s.phase, p)
	s.activity = append(s.activity, 0)
	s.targetPhase = append(s.targetPhase, 0)
	s.targetStamp = append(s.targetStamp, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.levelStamp = append(s.levelStamp, 0)
	s.elimIdx = append(s.elimIdx, 0)
	s.frozen = append(s.frozen, false)
	s.litStamp = append(s.litStamp, 0, 0)
	s.order.insert(v, s.activity)
	return v
}

func (s *Solver) value(l Lit) lbool {
	return lbool(s.assigns[l>>1] ^ uint8(l&1))
}

func (s *Solver) decisionLevel() int32 { return int32(len(s.trailLim)) }

// AddClause adds a problem clause. It returns false if the clause set became
// trivially unsatisfiable. Adding clauses is only legal between Solve calls
// (the solver backtracks to level 0 automatically).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	for _, l := range lits {
		if int(l.Var()) >= len(s.assigns) {
			panic(fmt.Sprintf("sat: literal %v references unknown variable", l))
		}
		// An eliminated variable reappearing in a new clause gets its
		// original clauses restored first, so the instance keeps meaning
		// exactly what the caller asserted.
		if s.elimIdx[l.Var()] != 0 {
			s.restoreVar(l.Var())
		}
	}
	if !s.ok {
		return false
	}
	return s.addClauseInternal(lits)
}

// addClauseInternal is AddClause after eliminated-variable restoration.
func (s *Solver) addClauseInternal(lits []Lit) bool {
	// Fast path: attach the clause without disturbing the current trail.
	// Incremental callers interleave encoding and solving, and backtracking
	// to level 0 on every added clause would throw away (and then redo) the
	// propagation of the whole assumption prefix on every check.
	if s.decisionLevel() > 0 && s.attachLive(lits) {
		return s.ok
	}
	s.cancelUntil(0)

	// Sort-free simplification: drop duplicate and false literals, detect
	// tautologies and satisfied clauses.
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // cannot help
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Neg() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}

	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// attachLive adds a clause while a trail is active, without backtracking.
// It reports success; false sends the caller to the level-0 path (empty or
// unit after simplification, or falsified by the current trail).
//
// Correctness: at attach time at most one watch is false, and when it is,
// the other watched literal is made true (late implication) or already is.
// From then on the standard invariant holds — a watch can only become false
// through a propagate step that processes the clause — so no conflict or
// model error can hide. A backtrack past the implication can leave the
// clause unit without a pending trigger, which delays (never loses) the
// implication: the solver cannot answer Sat with an unassigned variable,
// and assigning the watched literal false processes the clause.
func (s *Solver) attachLive(lits []Lit) bool {
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if s.level[l.Var()] == 0 {
			switch s.value(l) {
			case lTrue:
				return true // satisfied forever
			case lFalse:
				continue // can never help
			}
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l^1 {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	if len(out) < 2 {
		return false // empty or unit: take the level-0 path
	}
	// Find up to two literals not currently false.
	w0, w1 := -1, -1
	for i, l := range out {
		if s.value(l) != lFalse {
			if w0 < 0 {
				w0 = i
			} else {
				w1 = i
				break
			}
		}
	}
	if w0 < 0 {
		return false // falsified by the trail: backtrack and re-add
	}
	if w1 < 0 {
		// Unit under the current trail: watch the deepest false literal, so
		// backtracking unassigns it as early as possible.
		for i, l := range out {
			if i != w0 && (w1 < 0 || s.level[l.Var()] > s.level[out[w1].Var()]) {
				w1 = i
			}
		}
	}
	out[0], out[w0] = out[w0], out[0]
	if w1 == 0 {
		w1 = w0
	}
	out[1], out[w1] = out[w1], out[1]
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	if s.value(out[1]) == lFalse && s.value(out[0]) >= lUndef {
		// Late implication; the next propagate call picks it up from qhead.
		s.uncheckedEnqueue(out[0], c)
	}
	return true
}

func (s *Solver) attach(c *clause) {
	bin := len(c.lits) == 2
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0^1] = append(s.watches[l0^1], watcher{c, l1, bin})
	s.watches[l1^1] = append(s.watches[l1^1], watcher{c, l0, bin})
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	s.assigns[v] = uint8(l) & 1
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.phase[v] = uint8(l) & 1
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	assigns := s.assigns
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++

		ws := s.watches[p]
		kept := ws[:0]
		var confl *clause
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if confl != nil {
				kept = append(kept, w)
				continue
			}
			bv := lbool(assigns[w.blocker>>1] ^ uint8(w.blocker&1))
			if bv == lTrue {
				kept = append(kept, w)
				continue
			}
			if w.bin {
				// Binary fast path: the blocker is the only other literal,
				// so no watch ever moves — conflict or enqueue directly.
				kept = append(kept, w)
				c := w.c
				if bv == lFalse {
					confl = c
					s.qhead = len(s.trail)
					continue
				}
				// Reason clauses keep the implied literal at position 0.
				if c.lits[0] != w.blocker {
					c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
				}
				s.uncheckedEnqueue(w.blocker, c)
				continue
			}
			c := w.c
			// Ensure the false literal (¬p) is at position 1.
			np := p ^ 1
			if c.lits[0] == np {
				c.lits[0], c.lits[1] = c.lits[1], np
			}
			first := c.lits[0]
			if first != w.blocker && lbool(assigns[first>>1]^uint8(first&1)) == lTrue {
				kept = append(kept, watcher{c, first, false})
				continue
			}
			// Look for a new literal to watch.
			lits := c.lits
			for k := 2; k < len(lits); k++ {
				if lbool(assigns[lits[k]>>1]^uint8(lits[k]&1)) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nw := lits[1] ^ 1
					s.watches[nw] = append(s.watches[nw], watcher{c, first, false})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first, false})
			if lbool(assigns[first>>1]^uint8(first&1)) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				continue
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = kept
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int32) {
	if s.decisionLevel() <= lvl {
		return
	}
	bound := s.trailLim[lvl]
	act := s.activity
	for i := len(s.trail) - 1; i >= int(bound); i-- {
		v := s.trail[i].Var()
		s.assigns[v] = uint8(lUndef)
		s.reason[v] = nil
		s.order.insert(v, act)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *Solver) varBump(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v, s.activity)
}

func (s *Solver) varDecay() { s.varInc /= s.opts.VarDecay }

func (s *Solver) claBump(c *clause) {
	c.act += float32(s.claInc)
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) claDecay() { s.claInc /= s.opts.ClauseDecay }

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) (learnt []Lit, btLevel int32) {
	learnt = append(s.analyzeTmp[:0], 0) // reserve slot 0 for the asserting literal
	seenCount := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if confl.learnt {
			s.claBump(confl)
			confl.used = 2
			// Dynamic LBD: a clause that participates in conflicts with a
			// better level profile is promoted toward the core tier.
			if nl := s.computeLBD(confl.lits); nl < confl.lbd {
				confl.lbd = nl
			}
		}
		start := 0
		if p != -1 {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.Var()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.varBump(v)
			if s.level[v] >= s.decisionLevel() {
				seenCount++
			} else {
				learnt = append(learnt, q)
			}
		}
		// Find the next literal on the trail that participates.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		seenCount--
		if seenCount == 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = p.Neg()

	// Remember every flagged literal so the seen flags can be cleared even
	// for literals removed by minimisation below.
	toClear := append([]Lit(nil), learnt[1:]...)

	// Minimise: drop literals implied by the rest of the clause (local check).
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reason[v]
		if r == nil {
			learnt[j] = learnt[i]
			j++
			continue
		}
		redundant := true
		for _, q := range r.lits[1:] {
			if !s.seen[q.Var()] && s.level[q.Var()] > 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	// Clear seen flags for kept literals and compute the backtrack level.
	btLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = s.level[learnt[1].Var()]
	}
	for _, q := range toClear {
		s.seen[q.Var()] = false
	}
	s.analyzeTmp = learnt
	return learnt, btLevel
}

// computeLBD returns the number of distinct decision levels in the clause,
// via a per-level stamp array (no allocation).
func (s *Solver) computeLBD(lits []Lit) uint32 {
	s.lbdTick++
	t := s.lbdTick
	var n uint32
	for _, l := range lits {
		lv := s.level[l>>1]
		if s.levelStamp[lv] != t {
			s.levelStamp[lv] = t
			n++
		}
	}
	return n
}

// analyzeFinal collects the subset of assumptions responsible for forcing
// the complement of p, storing them in conflictAssumps.
func (s *Solver) analyzeFinal(p Lit) {
	s.conflictAssumps = s.conflictAssumps[:0]
	s.conflictAssumps = append(s.conflictAssumps, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = true
	for i := len(s.trail) - 1; i >= int(s.trailLim[0]); i-- {
		v := s.trail[i].Var()
		if !s.seen[v] {
			continue
		}
		if s.reason[v] == nil {
			if s.level[v] > 0 {
				s.conflictAssumps = append(s.conflictAssumps, s.trail[i].Neg())
			}
		} else {
			for _, q := range s.reason[v].lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.Var()] = false
}

func (s *Solver) pickBranchLit(useTarget bool) Lit {
	act := s.activity
	for {
		v, ok := s.order.removeMax(act)
		if !ok {
			return -1
		}
		if s.assigns[v] >= uint8(lUndef) {
			pol := s.phase[v]
			if useTarget && s.targetStamp[v] == s.solveTick {
				pol = s.targetPhase[v]
			}
			return Lit(v)<<1 | Lit(pol)
		}
	}
}

// luby computes the Luby restart sequence value for 0-based index i:
// 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
func luby(i uint64) uint64 {
	// Find the finite subsequence containing index i and its size.
	var size uint64 = 1
	var seq uint
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i %= size
	}
	return uint64(1) << seq
}

// restartDue applies the configured restart policy.
func (s *Solver) restartDue(sinceRestart, lubyBudget uint64) bool {
	if s.opts.Restart == RestartEMA {
		return sinceRestart >= s.opts.EMAMinInterval &&
			s.lbdFast > s.opts.EMAFactor*s.lbdSlow
	}
	return sinceRestart >= lubyBudget
}

// reduceDB trims the learnt-clause database by tier: core clauses (binary or
// lbd <= CoreLBD) are kept forever, tier2 clauses (lbd <= Tier2LBD) survive
// while their recent-use window is open, and the local tier is halved by
// activity. Reason ("locked") clauses are never removed.
func (s *Solver) reduceDB() {
	ls := s.learnts
	if len(ls) < 100 {
		return
	}
	keep := ls[:0]
	var local []*clause
	for _, c := range ls {
		switch {
		case len(c.lits) <= 2 || c.lbd <= s.opts.CoreLBD:
			keep = append(keep, c)
		case c.lbd <= s.opts.Tier2LBD && c.used > 0:
			c.used--
			keep = append(keep, c)
		default:
			local = append(local, c)
		}
	}
	if len(local) > 0 {
		sort.Slice(local, func(i, j int) bool { return worse(local[i], local[j]) })
		target := len(local) / 2
		for i, c := range local {
			if i < target && !s.locked(c) {
				s.detach(c)
				s.stats.Removed++
				continue
			}
			keep = append(keep, c)
		}
	}
	s.learnts = keep
}

// worse orders clauses so that less valuable clauses come first.
func worse(a, b *clause) bool {
	if a.lbd != b.lbd {
		return a.lbd > b.lbd
	}
	return a.act < b.act
}

func (s *Solver) locked(c *clause) bool {
	return s.reason[c.lits[0].Var()] == c
}

func (s *Solver) detach(c *clause) {
	for _, l := range []Lit{c.lits[0].Neg(), c.lits[1].Neg()} {
		ws := s.watches[l]
		for i, w := range ws {
			if w.c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[l] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// Solve determines satisfiability of the clause set conjoined with the given
// assumption literals. On Sat, Model/ValueOf are valid; on Unsat,
// FailedAssumptions reports an inconsistent assumption subset. Unknown is
// returned only when ConflictBudget is exhausted.
func (s *Solver) Solve(assumptions ...Lit) Status {
	s.conflictAssumps = s.conflictAssumps[:0]
	if !s.ok {
		return Unsat
	}
	// Assumptions over eliminated variables bring the original clauses back
	// before search, so failed-assumption analysis sees the real instance.
	for _, p := range assumptions {
		if int(p.Var()) >= len(s.assigns) {
			panic(fmt.Sprintf("sat: assumption %v references unknown variable", p))
		}
		if s.elimIdx[p.Var()] != 0 {
			s.restoreVar(p.Var())
		}
	}
	if !s.ok {
		return Unsat
	}
	s.solveTick++

	if s.opts.Inprocess && s.inprocessDue() {
		s.cancelUntil(0)
		s.simplify(assumptions)
		if !s.ok {
			return Unsat
		}
	}

	// Trail reuse: consecutive calls usually share a long assumption prefix
	// (the engine's path constraints grow incrementally), and decision
	// levels 1..k correspond one-to-one to assumptions 0..k-1, so keeping
	// the common prefix skips re-propagating it from scratch.
	keep := 0
	maxKeep := int(s.decisionLevel())
	if len(assumptions) < maxKeep {
		maxKeep = len(assumptions)
	}
	if len(s.lastAssumps) < maxKeep {
		maxKeep = len(s.lastAssumps)
	}
	for keep < maxKeep && s.lastAssumps[keep] == assumptions[keep] {
		keep++
	}
	s.cancelUntil(int32(keep))
	s.lastAssumps = append(s.lastAssumps[:0], assumptions...)

	conflictsAtStart := s.stats.Conflicts
	var restartSeq uint64
	restartBudget := luby(restartSeq) * s.opts.LubyUnit
	var conflictsSinceRestart uint64
	restarted := false
	bestTrail := 0
	maxLearnts := 4000 + len(s.clauses)/2

	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			var lbd uint32
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
				lbd = 1
			} else {
				c := &clause{lits: append([]Lit(nil), learnt...), learnt: true, used: 2}
				c.lbd = s.computeLBD(c.lits)
				lbd = c.lbd
				s.learnts = append(s.learnts, c)
				s.stats.Learnt++
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.lbdFast += (float64(lbd) - s.lbdFast) / 32
			s.lbdSlow += (float64(lbd) - s.lbdSlow) / 4096
			s.varDecay()
			s.claDecay()
			if s.ConflictBudget > 0 && s.stats.Conflicts-conflictsAtStart > s.ConflictBudget {
				s.cancelUntil(0)
				s.lastAssumps = s.lastAssumps[:0]
				return Unknown
			}
			continue
		}

		// Target phasing: after the first restart of this call, remember the
		// polarities of the deepest conflict-free trail seen, and steer
		// decisions back toward it.
		if s.opts.TargetPhase && restarted && len(s.trail) > bestTrail {
			bestTrail = len(s.trail)
			for _, l := range s.trail {
				v := l.Var()
				s.targetPhase[v] = uint8(l) & 1
				s.targetStamp[v] = s.solveTick
			}
		}

		if s.restartDue(conflictsSinceRestart, restartBudget) {
			conflictsSinceRestart = 0
			restartSeq++
			restartBudget = luby(restartSeq) * s.opts.LubyUnit
			restarted = true
			s.stats.Restarts++
			s.lbdFast = s.lbdSlow
			if s.opts.Inprocess && s.inprocessDue() {
				// Inprocessing needs level 0; assumption levels are
				// re-established by the loop below afterwards.
				s.cancelUntil(0)
				s.simplify(assumptions)
				if !s.ok {
					return Unsat
				}
			} else {
				// Restart the search but keep the assumption prefix: levels
				// 1..len(assumptions) are assumption levels by construction.
				al := int32(len(assumptions))
				if dl := s.decisionLevel(); dl < al {
					al = dl
				}
				s.cancelUntil(al)
			}
			continue
		}
		if len(s.learnts) > maxLearnts {
			s.reduceDB()
			maxLearnts += maxLearnts / 10
		}

		// Enqueue pending assumptions, one decision level each.
		next := Lit(-1)
		for int(s.decisionLevel()) < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				// Dummy level so indices line up.
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				s.analyzeFinal(p.Neg())
				s.cancelUntil(0)
				s.lastAssumps = s.lastAssumps[:0]
				return Unsat
			default:
				next = p
			}
			if next != -1 {
				break
			}
		}
		if next == -1 {
			s.stats.Decisions++
			next = s.pickBranchLit(s.opts.TargetPhase && restarted)
			if next == -1 {
				s.extendModel()
				return Sat // all variables assigned
			}
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(next, nil)
	}
}

// ValueOf returns the model value of v after a Sat answer. Unassigned
// variables (possible after simplification) read as false; eliminated
// variables read their model-extension value (see extendModel).
func (s *Solver) ValueOf(v Var) bool {
	return s.assigns[v] == uint8(lTrue)
}

// LitValue returns the model value of literal l after a Sat answer.
func (s *Solver) LitValue(l Lit) bool {
	if l.Sign() {
		return !s.ValueOf(l.Var())
	}
	return s.ValueOf(l.Var())
}

// FailedAssumptions returns the negations of (a subset of) the assumptions
// that made the last Solve call Unsat — the conflict clause, in MiniSat
// convention. Empty when the clause set itself is unsatisfiable.
func (s *Solver) FailedAssumptions() []Lit {
	out := make([]Lit, len(s.conflictAssumps))
	copy(out, s.conflictAssumps)
	return out
}

// varHeap is an indexed max-heap ordered by variable activity. The activity
// slice is passed into each operation so the hot comparison needs no pointer
// chase.
type varHeap struct {
	heap    []Var
	indices []int32 // position+1 in heap; 0 = absent
}

func (h *varHeap) insert(v Var, act []float64) {
	for int(v) >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = int32(len(h.heap))
	h.up(len(h.heap)-1, act)
}

func (h *varHeap) update(v Var, act []float64) {
	if int(v) < len(h.indices) && h.indices[v] != 0 {
		h.up(int(h.indices[v])-1, act)
	}
}

func (h *varHeap) removeMax(act []float64) (Var, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 1
	h.heap = h.heap[:last]
	h.indices[v] = 0
	if last > 0 {
		h.down(0, act)
	}
	return v, true
}

// remove deletes v from the heap (used when a variable is eliminated).
func (h *varHeap) remove(v Var, act []float64) {
	if int(v) >= len(h.indices) || h.indices[v] == 0 {
		return
	}
	i := int(h.indices[v]) - 1
	h.indices[v] = 0
	last := len(h.heap) - 1
	if i == last {
		h.heap = h.heap[:last]
		return
	}
	w := h.heap[last]
	h.heap = h.heap[:last]
	h.heap[i] = w
	h.indices[w] = int32(i + 1)
	h.down(i, act)
	h.up(int(h.indices[w])-1, act)
}

func (h *varHeap) up(i int, act []float64) {
	v := h.heap[i]
	av := act[v]
	for i > 0 {
		p := (i - 1) / 2
		if av <= act[h.heap[p]] {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[i]] = int32(i + 1)
		i = p
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}

func (h *varHeap) down(i int, act []float64) {
	v := h.heap[i]
	av := act[v]
	n := len(h.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && act[h.heap[c+1]] > act[h.heap[c]] {
			c++
		}
		if act[h.heap[c]] <= av {
			break
		}
		h.heap[i] = h.heap[c]
		h.indices[h.heap[i]] = int32(i + 1)
		i = c
	}
	h.heap[i] = v
	h.indices[v] = int32(i + 1)
}

// WriteDIMACS dumps the problem clauses (not learnt clauses) plus the
// current level-0 unit assignments in DIMACS CNF format, for interoperating
// with external SAT tooling. Eliminated variables are restored first so the
// dump is equivalent to the instance as asserted.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	s.cancelUntil(0)
	s.restoreAll()
	s.cancelUntil(0)
	units := len(s.trail)
	if !s.ok {
		// Canonical unsatisfiable instance.
		_, err := fmt.Fprintf(w, "p cnf 1 2\n1 0\n-1 0\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", len(s.assigns), len(s.clauses)+units); err != nil {
		return err
	}
	dimacs := func(l Lit) int {
		v := int(l.Var()) + 1
		if l.Sign() {
			return -v
		}
		return v
	}
	for _, l := range s.trail {
		if _, err := fmt.Fprintf(w, "%d 0\n", dimacs(l)); err != nil {
			return err
		}
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			if _, err := fmt.Fprintf(w, "%d ", dimacs(l)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "0"); err != nil {
			return err
		}
	}
	return nil
}
