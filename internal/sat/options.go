package sat

// RestartPolicy selects the restart schedule of the CDCL search loop.
type RestartPolicy uint8

// Restart policies. RestartLuby follows the Luby sequence scaled by
// LubyUnit conflicts; RestartEMA is the glucose-style dynamic policy that
// restarts when the short-term LBD average exceeds the long-term average
// by EMAFactor (search is producing worse clauses than its history, so a
// different prefix is likely cheaper).
const (
	RestartLuby RestartPolicy = iota
	RestartEMA
)

func (p RestartPolicy) String() string {
	if p == RestartEMA {
		return "ema"
	}
	return "luby"
}

// Options are the heuristic parameters of a Solver. They are fixed at
// construction (NewWith); the zero value is NOT the default — use
// DefaultOptions. All parameters are deterministic: two solvers built with
// equal Options, fed the same clauses and Solve calls, produce identical
// answers, models and statistics.
type Options struct {
	// Restart selects the restart schedule.
	Restart RestartPolicy
	// LubyUnit scales the Luby sequence (conflicts per unit).
	LubyUnit uint64
	// EMAMinInterval is the minimum number of conflicts between EMA
	// restarts.
	EMAMinInterval uint64
	// EMAFactor triggers an EMA restart when fastLBD > EMAFactor*slowLBD.
	EMAFactor float64
	// VarDecay is the VSIDS activity decay factor (activity increments grow
	// by 1/VarDecay per conflict).
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay factor.
	ClauseDecay float64
	// InitPhase is the initial saved phase of fresh variables (true =
	// decide positive first). Ignored for variables covered by PhaseSeed.
	InitPhase bool
	// PhaseSeed, when nonzero, initialises each fresh variable's saved
	// phase from a splitmix64 stream seeded with it — deterministic
	// per-variable pseudo-random phases for portfolio diversity.
	PhaseSeed uint64
	// TargetPhase enables best-trail target phasing: once a Solve call has
	// restarted, decisions prefer the polarity each variable held on the
	// deepest trail seen in this call, falling back to the saved phase.
	TargetPhase bool
	// Inprocess enables clause-database inprocessing (subsumption,
	// self-subsuming resolution, bounded variable elimination) between
	// conflicts at restart boundaries and at Solve entry.
	Inprocess bool
	// CoreLBD is the learnt-clause tier bound below or at which a clause is
	// kept forever; Tier2LBD the bound for the mid tier that survives while
	// recently used. Everything above lives in the activity-sorted local
	// tier that reduceDB halves.
	CoreLBD  uint32
	Tier2LBD uint32
}

// DefaultOptions returns the tuned default parameters (see EXPERIMENTS.md
// for the sweep that picked them).
func DefaultOptions() Options {
	return Options{
		Restart:        RestartLuby,
		LubyUnit:       100,
		EMAMinInterval: 50,
		EMAFactor:      1.25,
		VarDecay:       0.99,
		ClauseDecay:    0.999,
		InitPhase:      false,
		PhaseSeed:      0,
		TargetPhase:    true,
		Inprocess:      true,
		CoreLBD:        3,
		Tier2LBD:       6,
	}
}

// splitmix64 advances the splitmix64 PRNG state and returns the next value.
// Used for PhaseSeed phase initialisation; keeps math/rand out of the
// deterministic kernel and is stable across Go releases.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PortfolioOptions returns the deterministic per-worker parameter preset
// for a solver portfolio: worker 0 (and any negative index) runs the tuned
// defaults, higher indices cycle through presets that diversify the restart
// schedule, activity decay and phase initialisation. Each worker still
// decides every query exactly (no approximation is involved), so diversity
// changes only how fast answers arrive, never which answers — the property
// parexplore's byte-identical-report contract relies on.
func PortfolioOptions(worker int) Options {
	o := DefaultOptions()
	if worker <= 0 {
		return o
	}
	switch (worker - 1) % 6 {
	case 0:
		o.Restart = RestartEMA
	case 1:
		o.VarDecay = 0.85
		o.LubyUnit = 50
	case 2:
		o.InitPhase = true
		o.VarDecay = 0.95
	case 3:
		o.Restart = RestartEMA
		o.PhaseSeed = 0x9e3779b97f4a7c15 * uint64(worker)
	case 4:
		o.PhaseSeed = 0xbf58476d1ce4e5b9 * uint64(worker)
		o.LubyUnit = 200
	default:
		o.Restart = RestartEMA
		o.VarDecay = 0.92
		o.EMAFactor = 1.15
	}
	return o
}
