package sat

import "sort"

// Inprocessing: between searches (Solve entry and restart boundaries, always
// at decision level 0) the solver simplifies its clause database with the
// classic SatELite trio — subsumption, self-subsuming resolution
// (strengthening) and bounded variable elimination (BVE).
//
// Incrementality makes this subtle: callers keep adding clauses and keep
// issuing assumptions over literals handed out earlier, so no variable is
// ever gone for good. Three rules keep the incremental semantics exact:
//
//  1. The current call's assumption variables are frozen for the round, so
//     failed-assumption cores (CheckCore) are computed on an instance where
//     every assumption literal still means what the caller asserted.
//  2. Any later mention of an eliminated variable — in AddClause or as a
//     Solve assumption — restores the variable first: its original clauses
//     (saved on elimStack) are re-added, transitively, before the mention is
//     processed. The solver therefore always answers queries about exactly
//     the instance the caller built.
//  3. Models are extended over eliminated variables (extendModel) before Sat
//     is returned, so ValueOf stays total and model re-checking in
//     internal/solver keeps working unchanged.
//
// Learnt clauses mentioning an eliminated variable are deleted rather than
// resolved: they are consequences of the original clause set, so dropping
// them never loses soundness, only a bit of learning.

// Inprocessing limits. Conservative by design: the symbolic-execution
// workload issues thousands of easy incremental solves over a clause set
// that grows by bit-blasting (not by conflict), and a simplification round
// costs a full database pass plus, via variable elimination, a
// restore-on-reuse cycle when the bit-blaster's cached gate literals
// reappear. Rounds are therefore gated on *search effort* (conflicts), not
// on clause growth alone: an instance that keeps answering in a handful of
// conflicts never pays for simplification it does not need, while a
// conflict-heavy instance is simplified repeatedly.
const (
	// simpMinGrowth: a round additionally requires this much clause growth
	// since the previous round (simplifying an unchanged database is free
	// the first time and useless the second).
	simpMinGrowth = 500
	// simpConflictGap: conflicts since the last round required before the
	// next round is due.
	simpConflictGap = 3000
	// subsumeBudget bounds the total literal-comparison work of one
	// subsumption pass.
	subsumeBudget = 4 << 20
	// elimMaxOcc: BVE skips variables occurring more often than this in
	// either polarity, or more than elimMaxTotal in total.
	elimMaxOcc   = 10
	elimMaxTotal = 16
	// elimMaxResolventLen: resolvents longer than this veto the elimination.
	elimMaxResolventLen = 16
)

// elimEntry records one eliminated variable and the original clauses that
// mentioned it (each stored with the v-literal first), for restoration and
// model extension.
type elimEntry struct {
	v        Var
	clauses  [][]Lit
	restored bool
}

// inprocessDue reports whether a simplification round should run now.
func (s *Solver) inprocessDue() bool {
	return s.stats.Conflicts-s.conflictsAtSimp >= simpConflictGap &&
		len(s.clauses)-s.clausesAtSimp >= simpMinGrowth
}

// simplify runs one inprocessing round. Precondition: decision level 0.
// The given assumptions (of the in-flight Solve call) are frozen against
// elimination. On exit the watch lists are rebuilt and level-0 propagation
// has run to completion; s.ok is false if the instance became unsat.
func (s *Solver) simplify(assumptions []Lit) {
	if !s.ok {
		return
	}
	if s.propagate() != nil {
		s.ok = false
		return
	}
	// Level-0 facts need no reasons; clearing them means no reason pointer
	// can dangle into a clause removed below. (analyze never looks at
	// level-0 reasons, analyzeFinal checks level > 0.)
	for _, l := range s.trail {
		s.reason[l.Var()] = nil
	}
	for _, p := range assumptions {
		s.frozen[p.Var()] = true
	}

	s.sweepSatisfied()
	if s.ok {
		occ := s.buildOcc()
		s.subsumePass(occ)
		if s.ok {
			s.eliminatePass(occ)
		}
	}
	s.dropDeadLearnts()
	s.compact()
	s.rebuildWatches()
	s.qhead = 0
	if s.ok && s.propagate() != nil {
		s.ok = false
	}

	for _, p := range assumptions {
		s.frozen[p.Var()] = false
	}
	s.clausesAtSimp = len(s.clauses)
	s.conflictsAtSimp = s.stats.Conflicts
}

// enqueueSimpUnit records a unit derived during surgery. Watches are stale at
// this point, so propagation is deferred to the rebuild at the end of
// simplify; the assignment itself is visible immediately.
func (s *Solver) enqueueSimpUnit(l Lit) {
	switch s.value(l) {
	case lTrue:
		return
	case lFalse:
		s.ok = false
		return
	}
	s.uncheckedEnqueue(l, nil)
}

// sweepSatisfied removes level-0 satisfied clauses and strips false literals
// from the rest, over both problem and learnt clauses.
func (s *Solver) sweepSatisfied() {
	sweep := func(cs []*clause) {
		for _, c := range cs {
			if c.dead {
				continue
			}
			sat := false
			j := 0
			for _, l := range c.lits {
				switch s.value(l) {
				case lTrue:
					sat = true
				case lFalse:
					continue
				default:
					c.lits[j] = l
					j++
				}
				if sat {
					break
				}
			}
			if sat {
				c.dead = true
				continue
			}
			c.lits = c.lits[:j]
			switch j {
			case 0:
				s.ok = false
				return
			case 1:
				s.enqueueSimpUnit(c.lits[0])
				c.dead = true
				if !s.ok {
					return
				}
			}
		}
	}
	sweep(s.clauses)
	if s.ok {
		sweep(s.learnts)
	}
}

// clauseSig computes the 64-bit occurrence abstraction of a clause: bit
// (var mod 64) per literal. sig(c) &^ sig(d) != 0 proves c ⊄ d.
func clauseSig(lits []Lit) uint64 {
	var sig uint64
	for _, l := range lits {
		sig |= 1 << (uint(l.Var()) & 63)
	}
	return sig
}

// buildOcc builds occurrence lists (live problem clauses per literal) and
// stamps every live clause with its signature. Learnt clauses are excluded:
// they are redundant, so simplifying them buys little and risks much.
func (s *Solver) buildOcc() [][]*clause {
	occ := make([][]*clause, len(s.watches))
	for _, c := range s.clauses {
		if c.dead {
			continue
		}
		c.sig = clauseSig(c.lits)
		for _, l := range c.lits {
			occ[l] = append(occ[l], c)
		}
	}
	return occ
}

// subsumePass runs combined subsumption + self-subsuming resolution over the
// live problem clauses, smallest clauses first (small clauses subsume most).
// Occurrence lists are left stale after strengthening — consumers re-check
// membership — and the whole pass is bounded by subsumeBudget.
func (s *Solver) subsumePass(occ [][]*clause) {
	live := make([]*clause, 0, len(s.clauses))
	for _, c := range s.clauses {
		if !c.dead {
			live = append(live, c)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return len(live[i].lits) < len(live[j].lits) })

	budget := subsumeBudget
	for _, c := range live {
		if budget <= 0 || !s.ok {
			break
		}
		if c.dead || len(c.lits) == 0 {
			continue
		}
		// Scan the occurrence list of c's rarest literal: every clause c
		// subsumes or strengthens via that literal (or its negation for the
		// self-subsuming case on the pivot itself) is in one of the two lists.
		min := c.lits[0]
		for _, l := range c.lits[1:] {
			if len(occ[l]) < len(occ[min]) {
				min = l
			}
		}
		s.backwardSubsume(c, occ[min], &budget)
		if !c.dead && s.ok {
			s.backwardSubsume(c, occ[min.Neg()], &budget)
		}
	}
}

// backwardSubsume checks c against every candidate clause in cands: if c's
// literals all occur in d, d is subsumed; if all but exactly one occur and
// that one occurs negated, d is strengthened by removing the negation
// (self-subsuming resolution).
func (s *Solver) backwardSubsume(c *clause, cands []*clause, budget *int) {
	for _, d := range cands {
		if !s.ok || *budget <= 0 {
			return
		}
		if d == c || d.dead || len(d.lits) < len(c.lits) {
			continue
		}
		if c.sig&^d.sig != 0 {
			continue
		}
		*budget -= len(d.lits) + len(c.lits)

		s.stampTick++
		t := s.stampTick
		for _, l := range d.lits {
			s.litStamp[l] = t
		}
		flipped := Lit(-1)
		ok := true
		for _, l := range c.lits {
			if s.litStamp[l] == t {
				continue
			}
			if s.litStamp[l.Neg()] == t && flipped == -1 {
				flipped = l
				continue
			}
			ok = false
			break
		}
		if !ok {
			continue
		}
		if flipped == -1 {
			d.dead = true
			s.stats.Subsumed++
			continue
		}
		// Strengthen d: drop flipped.Neg().
		rm := flipped.Neg()
		j := 0
		for _, l := range d.lits {
			if l != rm {
				d.lits[j] = l
				j++
			}
		}
		d.lits = d.lits[:j]
		d.sig = clauseSig(d.lits)
		s.stats.Strengthened++
		switch j {
		case 0:
			s.ok = false
			return
		case 1:
			s.enqueueSimpUnit(d.lits[0])
			d.dead = true
		}
	}
}

// eliminatePass performs bounded variable elimination: a variable with few
// occurrences is removed by replacing its clauses with all non-tautological
// resolvents, when that does not grow the database. Frozen (assumption) and
// level-0-assigned variables are skipped; the removed original clauses go
// onto elimStack for restoration and model extension.
func (s *Solver) eliminatePass(occ [][]*clause) {
	for vi := range s.assigns {
		v := Var(vi)
		if !s.ok {
			return
		}
		if s.frozen[v] || s.elimIdx[v] != 0 || s.assigns[v] < uint8(lUndef) {
			continue
		}
		pl, nl := MkLit(v, false), MkLit(v, true)
		pos := liveWith(occ[pl], pl)
		neg := liveWith(occ[nl], nl)
		if len(pos)+len(neg) == 0 {
			continue
		}
		if len(pos) > elimMaxOcc || len(neg) > elimMaxOcc || len(pos)+len(neg) > elimMaxTotal {
			continue
		}

		// Gather resolvents; veto if they outnumber the removed clauses or
		// any grows past the length cap.
		var resolvents [][]Lit
		feasible := true
		for _, a := range pos {
			for _, b := range neg {
				r, tauto := s.resolve(a, b, v)
				if tauto {
					continue
				}
				if len(r) > elimMaxResolventLen || len(resolvents) >= len(pos)+len(neg) {
					feasible = false
					break
				}
				resolvents = append(resolvents, r)
			}
			if !feasible {
				break
			}
		}
		if !feasible {
			continue
		}

		// Commit: store originals (v-literal first), kill them, add resolvents.
		entry := elimEntry{v: v}
		for _, c := range append(append([]*clause(nil), pos...), neg...) {
			saved := make([]Lit, 0, len(c.lits))
			saved = append(saved, MkLit(v, s.litSignIn(c, v)))
			for _, l := range c.lits {
				if l.Var() != v {
					saved = append(saved, l)
				}
			}
			entry.clauses = append(entry.clauses, saved)
			c.dead = true
		}
		s.elimStack = append(s.elimStack, entry)
		s.elimIdx[v] = int32(len(s.elimStack))
		s.stats.Eliminated++
		s.order.remove(v, s.activity)

		for _, r := range resolvents {
			s.addSimpClause(r, occ)
			if !s.ok {
				return
			}
		}
	}
}

// liveWith filters an occurrence list to live clauses actually containing l
// (lists go stale after strengthening).
func liveWith(cands []*clause, l Lit) []*clause {
	var out []*clause
	for _, c := range cands {
		if c.dead {
			continue
		}
		for _, cl := range c.lits {
			if cl == l {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// litSignIn reports the sign with which v occurs in c (c must contain v).
func (s *Solver) litSignIn(c *clause, v Var) bool {
	for _, l := range c.lits {
		if l.Var() == v {
			return l.Sign()
		}
	}
	panic("sat: pivot variable not in clause")
}

// resolve computes the resolvent of a (containing v) and b (containing ¬v)
// on pivot v, deduplicated; tauto reports a tautological resolvent. Literals
// already false at level 0 are dropped, already-true ones make the resolvent
// tautological in effect (it is satisfied, so it is skipped the same way).
func (s *Solver) resolve(a, b *clause, v Var) (out []Lit, tauto bool) {
	s.stampTick++
	t := s.stampTick
	add := func(lits []Lit) bool {
		for _, l := range lits {
			if l.Var() == v {
				continue
			}
			switch s.value(l) {
			case lTrue:
				return false // resolvent satisfied at level 0
			case lFalse:
				continue
			}
			if s.litStamp[l] == t {
				continue
			}
			if s.litStamp[l.Neg()] == t {
				return false // tautology
			}
			s.litStamp[l] = t
			out = append(out, l)
		}
		return true
	}
	if !add(a.lits) || !add(b.lits) {
		return nil, true
	}
	return out, false
}

// addSimpClause installs a resolvent produced during elimination: it becomes
// a regular problem clause, entered into the occurrence lists so later
// eliminations see it. Watches are attached later by rebuildWatches.
func (s *Solver) addSimpClause(lits []Lit, occ [][]*clause) {
	switch len(lits) {
	case 0:
		s.ok = false
		return
	case 1:
		s.enqueueSimpUnit(lits[0])
		return
	}
	c := &clause{lits: lits, sig: clauseSig(lits)}
	s.clauses = append(s.clauses, c)
	for _, l := range lits {
		occ[l] = append(occ[l], c)
	}
}

// dropDeadLearnts deletes learnt clauses that mention an eliminated
// variable. They are implied by the original instance, so removal is sound;
// keeping them would let search assign variables that no longer exist in the
// problem clauses.
func (s *Solver) dropDeadLearnts() {
	for _, c := range s.learnts {
		if c.dead {
			continue
		}
		for _, l := range c.lits {
			if s.elimIdx[l.Var()] != 0 {
				c.dead = true
				s.stats.Removed++
				break
			}
		}
	}
}

// compact drops dead clauses from both databases.
func (s *Solver) compact() {
	s.clauses = compactLive(s.clauses)
	s.learnts = compactLive(s.learnts)
}

func compactLive(cs []*clause) []*clause {
	out := cs[:0]
	for _, c := range cs {
		if !c.dead {
			out = append(out, c)
		}
	}
	// Zero the tail so removed clauses can be collected.
	for i := len(out); i < len(cs); i++ {
		cs[i] = nil
	}
	return out
}

// rebuildWatches reconstructs every watch list from the live clause
// databases (clause surgery invalidates watch positions wholesale; a full
// rebuild is simpler and no slower than repair).
func (s *Solver) rebuildWatches() {
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	for _, c := range s.clauses {
		s.attach(c)
	}
	for _, c := range s.learnts {
		s.attach(c)
	}
}

// restoreVar undoes the elimination of v (and, transitively, of any
// eliminated variable mentioned in the restored clauses): the saved original
// clauses are re-added and v becomes a normal decision variable again.
// Called when an eliminated variable reappears in AddClause or as a Solve
// assumption.
func (s *Solver) restoreVar(v Var) {
	if s.elimIdx[v] == 0 {
		return
	}
	// Phase 1: collect the transitive closure, clearing model-extension
	// values before any clause is re-added (a stale extension value would
	// make addClauseInternal treat the clause as level-0 satisfied).
	var entries []*elimEntry
	work := []Var{v}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		idx := s.elimIdx[u]
		if idx == 0 {
			continue
		}
		e := &s.elimStack[idx-1]
		s.elimIdx[u] = 0
		e.restored = true
		s.assigns[u] = uint8(lUndef)
		s.order.insert(u, s.activity)
		s.stats.Restored++
		entries = append(entries, e)
		for _, cl := range e.clauses {
			for _, l := range cl {
				if s.elimIdx[l.Var()] != 0 {
					work = append(work, l.Var())
				}
			}
		}
	}
	// Phase 2: re-add the original clauses.
	for _, e := range entries {
		for _, cl := range e.clauses {
			if !s.addClauseInternal(cl) {
				return
			}
		}
	}
}

// restoreAll restores every eliminated variable (used by WriteDIMACS so the
// dump reflects the instance as asserted).
func (s *Solver) restoreAll() {
	for i := range s.elimStack {
		e := &s.elimStack[i]
		if !e.restored {
			s.restoreVar(e.v)
		}
	}
}

// extendModel assigns eliminated variables so every removed original clause
// is satisfied, walking the elimination stack newest-first (an entry's saved
// clauses only mention variables eliminated later — earlier-eliminated
// variables had no live clauses left — which this order has already
// assigned). Values are written into assigns directly: eliminated variables
// occur in no live clause and are out of the decision heap, and restoreVar
// resets them, so the extension can never leak into search.
func (s *Solver) extendModel() {
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		e := &s.elimStack[i]
		if e.restored {
			continue
		}
		val := uint8(lFalse)
		for _, cl := range e.clauses {
			if cl[0].Sign() {
				continue // contains ¬v: satisfied by v=false
			}
			sat := false
			for _, l := range cl[1:] {
				if s.value(l) == lTrue {
					sat = true
					break
				}
			}
			if !sat {
				val = uint8(lTrue)
				break
			}
		}
		s.assigns[e.v] = val
	}
}
