package sat

import (
	"math/rand"
	"strings"
	"testing"
)

// forceSimplify runs one inprocessing round from a test, regardless of the
// conflict/growth trigger. simplify requires decision level 0; after a Solve
// the trail may still hold reused assumption levels.
func forceSimplify(s *Solver, frozen ...Lit) {
	s.cancelUntil(0)
	s.simplify(frozen)
}

func TestSimplifySubsumption(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	a, b, c := vs[0], vs[1], vs[2]
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, false))
	// Freeze every variable so elimination cannot hide the subsumption.
	forceSimplify(s, MkLit(a, false), MkLit(b, false), MkLit(c, false))
	if s.stats.Subsumed != 1 {
		t.Fatalf("Subsumed = %d, want 1", s.stats.Subsumed)
	}
	if s.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1", s.NumClauses())
	}
	if s.Solve() != Sat {
		t.Fatal("instance should stay sat")
	}
	if !s.ValueOf(a) && !s.ValueOf(b) {
		t.Fatal("model violates surviving clause")
	}
}

func TestSimplifyStrengthen(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	a, b, c := vs[0], vs[1], vs[2]
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(c, false))
	// Self-subsuming resolution on a strengthens the second clause to (b, c).
	forceSimplify(s, MkLit(a, false), MkLit(b, false), MkLit(c, false))
	if s.stats.Strengthened != 1 {
		t.Fatalf("Strengthened = %d, want 1", s.stats.Strengthened)
	}
	// (b or c) must now hold on its own: force both false alongside a.
	if got := s.Solve(MkLit(a, false), MkLit(b, true), MkLit(c, true)); got != Unsat {
		t.Fatalf("strengthened clause lost: got %v, want Unsat", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("instance should stay sat, got %v", got)
	}
}

// gateCNF adds t <-> (a AND b) and returns the three clauses for model checks.
func gateCNF(s *Solver, tt, a, b Var) [][]Lit {
	cls := [][]Lit{
		{MkLit(tt, true), MkLit(a, false)},
		{MkLit(tt, true), MkLit(b, false)},
		{MkLit(tt, false), MkLit(a, true), MkLit(b, true)},
	}
	for _, cl := range cls {
		s.AddClause(cl...)
	}
	return cls
}

func TestSimplifyEliminateAndExtendModel(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	tt, a, b := vs[0], vs[1], vs[2]
	cls := gateCNF(s, tt, a, b)
	// Freeze a and b; the definition variable t is eliminable (all resolvents
	// are tautologies).
	forceSimplify(s, MkLit(a, false), MkLit(b, false))
	if s.stats.Eliminated != 1 {
		t.Fatalf("Eliminated = %d, want 1", s.stats.Eliminated)
	}
	if s.Solve() != Sat {
		t.Fatal("should be sat")
	}
	// extendModel must give the eliminated t a value consistent with the
	// original clauses.
	for _, cl := range cls {
		ok := false
		for _, l := range cl {
			if s.LitValue(l) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("extended model violates original clause %v", cl)
		}
	}
}

func TestEliminatedVarRestoredOnReuse(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	tt, a, b := vs[0], vs[1], vs[2]
	gateCNF(s, tt, a, b)
	forceSimplify(s, MkLit(a, false), MkLit(b, false))
	if s.stats.Eliminated != 1 {
		t.Fatal("setup: t not eliminated")
	}

	// A new clause mentioning t must transparently restore its definition.
	s.AddClause(MkLit(tt, false)) // assert t
	if s.stats.Restored != 1 {
		t.Fatalf("Restored = %d, want 1", s.stats.Restored)
	}
	if s.Solve() != Sat {
		t.Fatal("should be sat with t asserted")
	}
	if !s.ValueOf(a) || !s.ValueOf(b) {
		t.Fatal("t -> a AND b lost across elimination/restore")
	}
	s.AddClause(MkLit(a, true), MkLit(b, true))
	if got := s.Solve(); got != Unsat {
		t.Fatalf("t AND (t -> a AND b) AND (~a OR ~b): got %v, want Unsat", got)
	}
}

func TestEliminatedVarRestoredByAssumption(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	tt, a, b := vs[0], vs[1], vs[2]
	gateCNF(s, tt, a, b)
	forceSimplify(s, MkLit(a, false), MkLit(b, false))
	if s.stats.Eliminated != 1 {
		t.Fatal("setup: t not eliminated")
	}
	// Assuming the eliminated variable must restore it and honour its
	// definition, including in the failed-assumption core.
	if got := s.Solve(MkLit(tt, false), MkLit(a, true)); got != Unsat {
		t.Fatalf("t with ~a: got %v, want Unsat", got)
	}
	if len(s.FailedAssumptions()) == 0 {
		t.Fatal("expected a failed-assumption core")
	}
	if got := s.Solve(MkLit(tt, false)); got != Sat {
		t.Fatalf("t alone: got %v, want Sat", got)
	}
	if !s.ValueOf(a) || !s.ValueOf(b) {
		t.Fatal("definition lost after restore")
	}
}

func TestWriteDIMACSAfterElimination(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	tt, a, b := vs[0], vs[1], vs[2]
	gateCNF(s, tt, a, b)
	forceSimplify(s, MkLit(a, false), MkLit(b, false))
	if s.stats.Eliminated != 1 {
		t.Fatal("setup: t not eliminated")
	}
	var buf strings.Builder
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	// The dump must restore the eliminated definition: all three gate clauses
	// reappear (possibly reordered within each clause).
	out := buf.String()
	if !strings.HasPrefix(out, "p cnf 3 3\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	// The solver must remain usable after the dump's restoreAll.
	s.AddClause(MkLit(tt, false))
	if s.Solve() != Sat || !s.ValueOf(a) || !s.ValueOf(b) {
		t.Fatal("solver inconsistent after WriteDIMACS restore")
	}
}

// bruteForceWith checks satisfiability of cnf plus extra unit literals.
func bruteForceWith(n int, cnf [][]Lit, units []Lit) bool {
	all := make([][]Lit, 0, len(cnf)+len(units))
	all = append(all, cnf...)
	for _, u := range units {
		all = append(all, []Lit{u})
	}
	return bruteForce(n, all)
}

func randomCNF(rng *rand.Rand, n, m int) [][]Lit {
	cnf := make([][]Lit, 0, m)
	for i := 0; i < m; i++ {
		k := 1 + rng.Intn(3)
		cl := make([]Lit, 0, k)
		for j := 0; j < k; j++ {
			cl = append(cl, MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1))
		}
		cnf = append(cnf, cl)
	}
	return cnf
}

// TestRandomSimplifyDifferential cross-checks an aggressively inprocessed
// solver against an inprocessing-off solver and brute force, on incremental
// workloads with assumption queries — the usage pattern of the bit-blasting
// layer above. Sat models are validated against the original clauses and
// Unsat assumption cores are re-verified by enumeration.
func TestRandomSimplifyDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		n := 5 + rng.Intn(8) // 5..12 vars
		m := 3 + rng.Intn(5*n)
		cnf := randomCNF(rng, n, m)

		s := New()
		off := New()
		off.SetInprocessing(false)
		newVars(s, n)
		newVars(off, n)

		half := len(cnf) / 2
		for _, cl := range cnf[:half] {
			s.AddClause(cl...)
			off.AddClause(cl...)
		}
		s.Solve() // seed learnt clauses so simplify sees a mixed database
		forceSimplify(s)
		for _, cl := range cnf[half:] {
			s.AddClause(cl...)
			off.AddClause(cl...)
		}
		forceSimplify(s)

		want := bruteForce(n, cnf)
		got, gotOff := s.Solve(), off.Solve()
		if (got == Sat) != want || (gotOff == Sat) != want {
			t.Fatalf("iter %d: inproc=%v off=%v bruteforce=%v cnf=%v", iter, got, gotOff, want, cnf)
		}
		if got == Sat {
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.LitValue(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model violates original clause %v", iter, cl)
				}
			}
		}

		// Assumption query over the same incremental instance.
		assumps := []Lit{
			MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
			MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1),
		}
		wantA := bruteForceWith(n, cnf, assumps)
		gotA, gotOffA := s.Solve(assumps...), off.Solve(assumps...)
		if (gotA == Sat) != wantA || (gotOffA == Sat) != wantA {
			t.Fatalf("iter %d: assumptions %v: inproc=%v off=%v bruteforce=%v cnf=%v",
				iter, assumps, gotA, gotOffA, wantA, cnf)
		}
		if gotA == Unsat && want {
			// The core must be a genuinely unsatisfiable subset (the clause
			// set alone is sat, so the core cannot be empty).
			failed := s.FailedAssumptions()
			if len(failed) == 0 {
				t.Fatalf("iter %d: empty core for sat clause set", iter)
			}
			// FailedAssumptions holds the negations of the responsible
			// assumptions; the core itself is their complement.
			core := make([]Lit, len(failed))
			for i, l := range failed {
				core[i] = l.Neg()
			}
			if bruteForceWith(n, cnf, core) {
				t.Fatalf("iter %d: core %v not actually unsat", iter, core)
			}
		}
	}
}

// TestPortfolioPresetsAgree runs every portfolio preset over random instances
// and checks each answers exactly as brute force — diversified heuristics may
// change the search order, never the answer.
func TestPortfolioPresetsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		n := 5 + rng.Intn(6)
		m := 3 + rng.Intn(5*n)
		cnf := randomCNF(rng, n, m)
		want := bruteForce(n, cnf)
		for worker := 0; worker <= 7; worker++ {
			s := NewWith(PortfolioOptions(worker))
			newVars(s, n)
			for _, cl := range cnf {
				s.AddClause(cl...)
			}
			if got := s.Solve(); (got == Sat) != want {
				t.Fatalf("iter %d worker %d: got %v, bruteforce=%v cnf=%v",
					iter, worker, got, want, cnf)
			}
			if want {
				for _, cl := range cnf {
					ok := false
					for _, l := range cl {
						if s.LitValue(l) {
							ok = true
							break
						}
					}
					if !ok {
						t.Fatalf("iter %d worker %d: model violates %v", iter, worker, cl)
					}
				}
			}
		}
	}
}

// TestEMARestartPolicy exercises the glucose-style restart path end to end on
// a learning-heavy unsat instance.
func TestEMARestartPolicy(t *testing.T) {
	o := DefaultOptions()
	o.Restart = RestartEMA
	s := NewWith(o)
	const p, h = 7, 6
	vs := make([][]Var, p)
	for i := range vs {
		vs[i] = newVars(s, h)
	}
	for i := 0; i < p; i++ {
		cl := make([]Lit, h)
		for j := 0; j < h; j++ {
			cl[j] = MkLit(vs[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < h; j++ {
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				s.AddClause(MkLit(vs[i][j], true), MkLit(vs[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole 7/6 under EMA restarts: got %v, want Unsat", got)
	}
}
