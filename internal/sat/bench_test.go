package sat

import (
	"math/rand"
	"testing"
)

// propagationChain builds n implication chains of length depth fanning out
// from one root variable: asserting the root floods the trail with unit
// propagations and never conflicts. Returns the root.
func propagationChain(s *Solver, chains, depth int) Var {
	root := s.NewVar()
	for c := 0; c < chains; c++ {
		prev := root
		for d := 0; d < depth; d++ {
			v := s.NewVar()
			s.AddClause(MkLit(prev, true), MkLit(v, false)) // prev -> v
			prev = v
		}
	}
	return root
}

// BenchmarkPropagationHeavy measures the watched-literal propagation loop:
// each iteration asserts/retracts the chain root via assumptions, walking
// ~chains*depth implications with no conflicts — the dominant operation in
// the bit-blasted exploration workload.
func BenchmarkPropagationHeavy(b *testing.B) {
	s := New()
	root := propagationChain(s, 50, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Solve(MkLit(root, false)) != Sat {
			b.Fatal("chain should be sat")
		}
		if s.Solve(MkLit(root, true)) != Sat {
			b.Fatal("negated root should be sat")
		}
	}
}

func addPigeonhole(s *Solver, p, h int) {
	vs := make([][]Var, p)
	for i := range vs {
		vs[i] = newVars(s, h)
	}
	for i := 0; i < p; i++ {
		cl := make([]Lit, h)
		for j := 0; j < h; j++ {
			cl[j] = MkLit(vs[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < h; j++ {
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				s.AddClause(MkLit(vs[i][j], true), MkLit(vs[k][j], true))
			}
		}
	}
}

// BenchmarkConflictHeavy measures conflict analysis, learning and restarts on
// a fresh pigeonhole instance per iteration (learnt clauses from one run must
// not subsidise the next).
func BenchmarkConflictHeavy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		addPigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("pigeonhole should be unsat")
		}
	}
}

// BenchmarkEliminationFriendly measures one inprocessing round over a CNF
// built from AND-gate definitions (every gate output is eliminable) plus
// random ternary clauses over the inputs (subsumption/strengthening fodder).
func BenchmarkEliminationFriendly(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const inputs, gates, extra = 60, 300, 400
	type inst struct {
		s *Solver
	}
	build := func() *Solver {
		s := New()
		ins := newVars(s, inputs)
		for g := 0; g < gates; g++ {
			a := ins[rng.Intn(inputs)]
			c := ins[rng.Intn(inputs)]
			o := s.NewVar()
			s.AddClause(MkLit(o, true), MkLit(a, false))
			s.AddClause(MkLit(o, true), MkLit(c, false))
			s.AddClause(MkLit(o, false), MkLit(a, true), MkLit(c, true))
		}
		for e := 0; e < extra; e++ {
			s.AddClause(
				MkLit(ins[rng.Intn(inputs)], rng.Intn(2) == 1),
				MkLit(ins[rng.Intn(inputs)], rng.Intn(2) == 1),
				MkLit(ins[rng.Intn(inputs)], rng.Intn(2) == 1))
		}
		return s
	}
	instances := make([]inst, b.N)
	for i := range instances {
		instances[i] = inst{s: build()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := instances[i].s
		s.simplify(nil)
		if !s.ok {
			b.Fatal("instance became unsat during simplification")
		}
	}
}
