package sat

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func lit(v int, neg bool) Lit { return MkLit(Var(v), neg) }

func newVars(s *Solver, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestLitBasics(t *testing.T) {
	l := MkLit(3, false)
	if l.Var() != 3 || l.Sign() {
		t.Fatalf("MkLit(3,false) = %v", l)
	}
	n := l.Neg()
	if n.Var() != 3 || !n.Sign() || n.Neg() != l {
		t.Fatalf("negation broken: %v", n)
	}
	if l.String() != "v3" || n.String() != "~v3" {
		t.Fatalf("String: %q %q", l, n)
	}
}

func TestTrivialSat(t *testing.T) {
	s := New()
	v := newVars(s, 2)
	s.AddClause(lit(int(v[0]), false))
	s.AddClause(lit(int(v[1]), true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v, want Sat", got)
	}
	if !s.ValueOf(v[0]) || s.ValueOf(v[1]) {
		t.Fatal("model does not satisfy unit clauses")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(MkLit(v, false))
	if ok := s.AddClause(MkLit(v, true)); ok {
		t.Fatal("AddClause should report inconsistency")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v, want Unsat", got)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if ok := s.AddClause(); ok {
		t.Fatal("empty clause should be unsat")
	}
	if s.Solve() != Unsat {
		t.Fatal("Solve should be Unsat after empty clause")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	v := s.NewVar()
	if !s.AddClause(MkLit(v, false), MkLit(v, true)) {
		t.Fatal("tautology rejected")
	}
	if s.NumClauses() != 0 {
		t.Fatal("tautology stored")
	}
	if s.Solve() != Sat {
		t.Fatal("should be sat")
	}
}

// xorClauses adds clauses forcing a ^ b = c.
func xorClauses(s *Solver, a, b, c Var) {
	s.AddClause(MkLit(a, true), MkLit(b, true), MkLit(c, true))
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, true))
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(c, false))
	s.AddClause(MkLit(a, false), MkLit(b, true), MkLit(c, false))
}

func TestXorChain(t *testing.T) {
	// x0 ^ x1 = y0, y0 ^ x2 = y1, ..., and force the final parity; check the
	// model has the right parity.
	const n = 20
	s := New()
	xs := newVars(s, n)
	ys := newVars(s, n-1)
	xorClauses(s, xs[0], xs[1], ys[0])
	for i := 2; i < n; i++ {
		xorClauses(s, ys[i-2], xs[i], ys[i-1])
	}
	s.AddClause(MkLit(ys[n-2], false)) // parity must be 1
	if s.Solve() != Sat {
		t.Fatal("xor chain should be sat")
	}
	parity := false
	for _, x := range xs {
		if s.ValueOf(x) {
			parity = !parity
		}
	}
	if !parity {
		t.Fatal("model parity wrong")
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	// 4 pigeons, 3 holes: classic small UNSAT instance exercising learning.
	const p, h = 4, 3
	s := New()
	vs := make([][]Var, p)
	for i := range vs {
		vs[i] = newVars(s, h)
	}
	for i := 0; i < p; i++ {
		cl := make([]Lit, h)
		for j := 0; j < h; j++ {
			cl[j] = MkLit(vs[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < h; j++ {
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				s.AddClause(MkLit(vs[i][j], true), MkLit(vs[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole: got %v, want Unsat", got)
	}
}

func TestPigeonhole65(t *testing.T) {
	const p, h = 6, 5
	s := New()
	vs := make([][]Var, p)
	for i := range vs {
		vs[i] = newVars(s, h)
	}
	for i := 0; i < p; i++ {
		cl := make([]Lit, h)
		for j := 0; j < h; j++ {
			cl[j] = MkLit(vs[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < h; j++ {
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				s.AddClause(MkLit(vs[i][j], true), MkLit(vs[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole 6/5: got %v, want Unsat", got)
	}
	if s.Stats().Conflicts == 0 {
		t.Fatal("expected conflicts to be recorded")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a -> b

	if got := s.Solve(MkLit(a, false), MkLit(b, true)); got != Unsat {
		t.Fatalf("assuming a and ~b: got %v, want Unsat", got)
	}
	failed := s.FailedAssumptions()
	if len(failed) == 0 {
		t.Fatal("expected failed assumptions")
	}
	// Solver must remain usable and consistent afterwards.
	if got := s.Solve(MkLit(a, false)); got != Sat {
		t.Fatalf("assuming a: got %v, want Sat", got)
	}
	if !s.ValueOf(a) || !s.ValueOf(b) {
		t.Fatal("model must satisfy a and a->b")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("no assumptions: got %v, want Sat", got)
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	s.AddClause(MkLit(vs[0], false), MkLit(vs[1], false))
	if s.Solve() != Sat {
		t.Fatal("phase 1 should be sat")
	}
	s.AddClause(MkLit(vs[0], true))
	s.AddClause(MkLit(vs[1], true), MkLit(vs[2], false))
	if s.Solve() != Sat {
		t.Fatal("phase 2 should be sat")
	}
	if s.ValueOf(vs[0]) {
		t.Fatal("v0 must be false")
	}
	s.AddClause(MkLit(vs[1], true))
	if s.Solve() != Unsat {
		t.Fatal("phase 3 should be unsat")
	}
}

// bruteForce checks satisfiability of a CNF over n variables by enumeration.
func bruteForce(n int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(n); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				val := m>>uint(l.Var())&1 == 1
				if l.Sign() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce cross-checks the CDCL answer against
// exhaustive enumeration on random small instances, and validates returned
// models.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 4 + rng.Intn(7)   // 4..10 vars
		m := 2 + rng.Intn(5*n) // up to ~5n clauses
		cnf := make([][]Lit, 0, m)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1))
			}
			cnf = append(cnf, cl)
		}
		s := New()
		newVars(s, n)
		consistent := true
		for _, cl := range cnf {
			if !s.AddClause(cl...) {
				consistent = false
			}
		}
		got := s.Solve()
		want := bruteForce(n, cnf)
		if (got == Sat) != want {
			t.Fatalf("iter %d: solver=%v bruteforce=%v cnf=%v", iter, got, want, cnf)
		}
		if !consistent && got == Sat {
			t.Fatalf("iter %d: AddClause said unsat but Solve said Sat", iter)
		}
		if got == Sat {
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.LitValue(l) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, cl)
				}
			}
		}
	}
}

// TestAssumptionEquivalence checks that solving under assumptions answers the
// same as solving with those assumptions added as unit clauses.
func TestAssumptionEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		m := 2 + rng.Intn(4*n)
		cnf := make([][]Lit, 0, m)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(3)
			cl := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				cl = append(cl, MkLit(Var(rng.Intn(n)), rng.Intn(2) == 1))
			}
			cnf = append(cnf, cl)
		}
		nAssump := rng.Intn(3)
		assumps := make([]Lit, 0, nAssump)
		seen := map[Var]bool{}
		for len(assumps) < nAssump {
			v := Var(rng.Intn(n))
			if seen[v] {
				break
			}
			seen[v] = true
			assumps = append(assumps, MkLit(v, rng.Intn(2) == 1))
		}

		s1 := New()
		newVars(s1, n)
		ok1 := true
		for _, cl := range cnf {
			ok1 = s1.AddClause(cl...) && ok1
		}
		got1 := s1.Solve(assumps...)

		s2 := New()
		newVars(s2, n)
		for _, cl := range cnf {
			s2.AddClause(cl...)
		}
		for _, a := range assumps {
			s2.AddClause(a)
		}
		got2 := s2.Solve()

		return (got1 == Sat) == (got2 == Sat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLuby(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestConflictBudgetUnknown(t *testing.T) {
	// A hard instance with a tiny budget must return Unknown, then solve
	// fine with the budget lifted.
	const p, h = 7, 6
	s := New()
	vs := make([][]Var, p)
	for i := range vs {
		vs[i] = newVars(s, h)
	}
	for i := 0; i < p; i++ {
		cl := make([]Lit, h)
		for j := 0; j < h; j++ {
			cl[j] = MkLit(vs[i][j], false)
		}
		s.AddClause(cl...)
	}
	for j := 0; j < h; j++ {
		for i := 0; i < p; i++ {
			for k := i + 1; k < p; k++ {
				s.AddClause(MkLit(vs[i][j], true), MkLit(vs[k][j], true))
			}
		}
	}
	s.ConflictBudget = 5
	if got := s.Solve(); got != Unknown {
		t.Fatalf("tiny budget: got %v, want Unknown", got)
	}
	s.ConflictBudget = 0
	if got := s.Solve(); got != Unsat {
		t.Fatalf("no budget: got %v, want Unsat", got)
	}
}

func TestManySolveCallsReuseLearning(t *testing.T) {
	// Repeated assumption queries against one instance must stay consistent.
	s := New()
	vs := newVars(s, 10)
	for i := 0; i+2 < len(vs); i++ {
		s.AddClause(MkLit(vs[i], true), MkLit(vs[i+1], false), MkLit(vs[i+2], false))
	}
	for i := 0; i < 50; i++ {
		a := MkLit(vs[i%len(vs)], i%2 == 0)
		got := s.Solve(a)
		if got != Sat {
			t.Fatalf("query %d: got %v", i, got)
		}
		if !s.LitValue(a) {
			t.Fatalf("query %d: assumption not honoured in model", i)
		}
	}
}

func TestWriteDIMACS(t *testing.T) {
	s := New()
	vs := newVars(s, 3)
	s.AddClause(MkLit(vs[0], false), MkLit(vs[1], true))
	s.AddClause(MkLit(vs[1], false), MkLit(vs[2], false))
	s.AddClause(MkLit(vs[0], true)) // unit: lands on the trail

	var buf strings.Builder
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The unit clause propagates at level 0 (-1 forces -2 forces 3), so the
	// dump carries three units plus the two stored clauses.
	if !strings.HasPrefix(out, "p cnf 3 5\n") {
		t.Fatalf("header wrong:\n%s", out)
	}
	for _, unit := range []string{"-1 0\n", "-2 0\n", "3 0\n"} {
		if !strings.Contains(out, unit) {
			t.Fatalf("unit %q missing:\n%s", unit, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Fatalf("line count = %d:\n%s", lines, out)
	}

	// Unsat instance dumps the canonical contradiction.
	u := New()
	v := u.NewVar()
	u.AddClause(MkLit(v, false))
	u.AddClause(MkLit(v, true))
	buf.Reset()
	if err := u.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p cnf 1 2") {
		t.Fatalf("unsat dump wrong:\n%s", buf.String())
	}
}
