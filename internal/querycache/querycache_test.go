package querycache

import (
	"testing"

	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

func newLocal(t *testing.T, shared *Shared) (*Local, *smt.Context, *solver.Solver) {
	t.Helper()
	ctx := smt.NewContext()
	sol := solver.New(ctx)
	return NewLocal(ctx, sol, shared), ctx, sol
}

// TestStackSeedAndObserve: a seeded model answers queries it satisfies with
// no solver work, survives trusted replay unconditionally, and is dropped by
// an untrusted constraint it fails.
func TestStackSeedAndObserve(t *testing.T) {
	l, ctx, sol := newLocal(t, nil)
	a := ctx.Var("a", 8)

	l.BeginPath(Model{"a": 5})
	c1 := ctx.Ult(a, ctx.BV(8, 10)) // a < 10: model says true
	if res := l.CheckFeasible([]*smt.Term{}, c1); res != solver.Sat {
		t.Fatalf("CheckFeasible = %v, want Sat", res)
	}
	if l.Stats().StackHits != 1 || l.Stats().CDCL != 0 {
		t.Fatalf("stats = %+v, want one stack hit, no CDCL", l.Stats())
	}
	l.Observe(c1, false)

	// The seed survives a trusted constraint it does not satisfy (replay
	// contract: the caller vouches for it)...
	bad := ctx.Ult(ctx.BV(8, 200), a)
	l.Observe(bad, true)
	if res := l.CheckFeasible([]*smt.Term{c1, bad}, nil); res != solver.Unsat {
		// The flip-check form (nil query, pivot = last pc) must consult the
		// solver here: the seed fails the pivot.
		t.Fatalf("flip check = %v, want Unsat", res)
	}
	// ...and is dropped by the same constraint when untrusted.
	l.Observe(bad, false)
	pcs := []*smt.Term{c1}
	if res := l.CheckFeasible(pcs, c1); res != solver.Sat {
		t.Fatalf("after drop: CheckFeasible = %v, want Sat", res)
	}
	if got := sol.Stats().Checks; got == 0 {
		t.Fatal("expected the post-drop query to reach the solver")
	}
}

// TestIndependenceSlicing: a pivot sharing no variables with the rest of the
// constraint set is solved on its own component only.
func TestIndependenceSlicing(t *testing.T) {
	l, ctx, _ := newLocal(t, nil)
	a := ctx.Var("a", 8)
	b := ctx.Var("b", 8)
	l.BeginPath(nil)

	pcs := []*smt.Term{ctx.Ult(a, ctx.BV(8, 10)), ctx.Ult(ctx.BV(8, 3), a)}
	pivot := ctx.Eq(b, ctx.BV(8, 7))
	if res := l.CheckFeasible(pcs, pivot); res != solver.Sat {
		t.Fatalf("CheckFeasible = %v, want Sat", res)
	}
	st := l.Stats()
	if st.SlicedQueries != 1 || st.SlicedDropped != 2 {
		t.Fatalf("stats = %+v, want 1 sliced query dropping 2 constraints", st)
	}
}

// TestSliceConnectsTransitively: components are closed under shared
// variables, so a chain a~b, b~c all lands in the pivot's slice.
func TestSliceConnectsTransitively(t *testing.T) {
	l, ctx, _ := newLocal(t, nil)
	a, b, c := ctx.Var("a", 8), ctx.Var("b", 8), ctx.Var("c", 8)
	d := ctx.Var("d", 8)
	all := []*smt.Term{
		ctx.Ult(a, b),
		ctx.Ult(b, c),
		ctx.Ult(d, ctx.BV(8, 5)), // independent
	}
	pivot := ctx.Ult(c, ctx.BV(8, 9))
	slice, dropped := l.slice(append(all, pivot), pivot)
	if len(slice) != 3 || dropped != 1 {
		t.Fatalf("slice = %d terms, dropped = %d; want 3 and 1", len(slice), dropped)
	}
}

// TestFingerprintStableAcrossContexts: structurally identical constraint
// sets built in different contexts (and listed in different orders) key
// identically — the property cross-worker sharing rests on.
func TestFingerprintStableAcrossContexts(t *testing.T) {
	l1, ctx1, _ := newLocal(t, nil)
	l2, ctx2, _ := newLocal(t, nil)

	mk := func(ctx *smt.Context) (x, y *smt.Term) {
		v := ctx.Var("v", 32)
		w := ctx.Var("w", 32)
		return ctx.Eq(ctx.Extract(v, 6, 0), ctx.BV(7, 0x13)), ctx.Ult(w, v)
	}
	x1, y1 := mk(ctx1)
	x2, y2 := mk(ctx2)

	k1, _ := l1.fingerprint([]*smt.Term{x1, y1})
	k2, _ := l2.fingerprint([]*smt.Term{y2, x2})
	if k1 != k2 {
		t.Fatal("fingerprints differ across contexts / orders")
	}
	k3, _ := l2.fingerprint([]*smt.Term{x2})
	if k1 == k3 {
		t.Fatal("distinct sets share a fingerprint")
	}
	// A twice-asserted constraint keys like a once-asserted one.
	k4, _ := l1.fingerprint([]*smt.Term{x1, y1, x1})
	if k4 != k1 {
		t.Fatal("duplicate constraint changed the fingerprint")
	}
}

// TestExactHit: repeating a query answers from the entry map without a
// second solver call.
func TestExactHit(t *testing.T) {
	l, ctx, sol := newLocal(t, nil)
	a := ctx.Var("a", 8)
	l.BeginPath(nil)
	q := []*smt.Term{ctx.Ult(a, ctx.BV(8, 10)), ctx.Ult(ctx.BV(8, 20), a)}
	if res := l.CheckFeasible(q[:1], q[1]); res != solver.Unsat {
		t.Fatalf("first = %v, want Unsat", res)
	}
	checks := sol.Stats().Checks
	if res := l.CheckFeasible(q[:1], q[1]); res != solver.Unsat {
		t.Fatalf("second = %v, want Unsat", res)
	}
	if sol.Stats().Checks != checks {
		t.Fatal("repeat query reached the solver")
	}
	st := l.Stats()
	if st.ExactHits+st.SupersetUnsat != 1 {
		t.Fatalf("stats = %+v, want the repeat answered by the cache", st)
	}
}

// TestSupersetUnsat: once a set is known unsat, any superset is answered
// unsat without the solver — including across unrelated extra constraints,
// via the unsat core.
func TestSupersetUnsat(t *testing.T) {
	l, ctx, sol := newLocal(t, nil)
	a := ctx.Var("a", 8)
	b := ctx.Var("b", 8)
	l.BeginPath(nil)

	lo := ctx.Ult(a, ctx.BV(8, 10))
	hi := ctx.Ult(ctx.BV(8, 20), a)
	if res := l.CheckFeasible([]*smt.Term{lo}, hi); res != solver.Unsat {
		t.Fatalf("core query = %v, want Unsat", res)
	}
	checks := sol.Stats().Checks

	// Superset with an extra constraint over the same variable (so slicing
	// cannot remove it): still answered by the unsat subset.
	extra := ctx.Ult(a, b)
	if res := l.CheckFeasible([]*smt.Term{lo, extra}, hi); res != solver.Unsat {
		t.Fatalf("superset query = %v, want Unsat", res)
	}
	if sol.Stats().Checks != checks {
		t.Fatal("superset query reached the solver")
	}
	if l.Stats().SupersetUnsat != 1 {
		t.Fatalf("stats = %+v, want one superset hit", l.Stats())
	}
}

// TestModelRevalidation: a cached sat model answers a weaker query over the
// same variables (the subset-of-known-sat rule).
func TestModelRevalidation(t *testing.T) {
	l, ctx, sol := newLocal(t, nil)
	a := ctx.Var("a", 8)
	l.BeginPath(nil)

	strict := ctx.Ult(a, ctx.BV(8, 5))
	if res := l.CheckFeasible(nil, strict); res != solver.Sat {
		t.Fatalf("first = %v, want Sat", res)
	}
	// New path: the stack is reset, so the weaker query cannot stack-hit;
	// the recorded model must answer it.
	l.BeginPath(nil)
	checks := sol.Stats().Checks
	weak := ctx.Ult(a, ctx.BV(8, 50))
	if res := l.CheckFeasible(nil, weak); res != solver.Sat {
		t.Fatalf("weaker = %v, want Sat", res)
	}
	if sol.Stats().Checks != checks {
		t.Fatal("weaker query reached the solver")
	}
	if l.Stats().SubsetSat != 1 {
		t.Fatalf("stats = %+v, want one model-revalidation hit", l.Stats())
	}
}

// TestSharedFlushAndAdopt: entries published by one worker answer another
// worker's queries across distinct term contexts.
func TestSharedFlushAndAdopt(t *testing.T) {
	store := NewShared()
	l1, ctx1, _ := newLocal(t, store)
	l1.BeginPath(nil)
	a1 := ctx1.Var("a", 8)
	if res := l1.CheckFeasible([]*smt.Term{ctx1.Ult(a1, ctx1.BV(8, 10))}, ctx1.Ult(ctx1.BV(8, 20), a1)); res != solver.Unsat {
		t.Fatalf("worker 1 = %v, want Unsat", res)
	}
	if store.Len() != 0 {
		t.Fatal("entry published before Flush")
	}
	l1.Flush()
	if store.Len() == 0 {
		t.Fatal("Flush published nothing")
	}

	l2, ctx2, sol2 := newLocal(t, store)
	l2.BeginPath(nil)
	a2 := ctx2.Var("a", 8)
	if res := l2.CheckFeasible([]*smt.Term{ctx2.Ult(a2, ctx2.BV(8, 10))}, ctx2.Ult(ctx2.BV(8, 20), a2)); res != solver.Unsat {
		t.Fatalf("worker 2 = %v, want Unsat", res)
	}
	if sol2.Stats().Checks != 0 {
		t.Fatal("worker 2 re-solved a shared answer")
	}
	if l2.Stats().ExactHits != 1 {
		t.Fatalf("worker 2 stats = %+v, want one exact hit", l2.Stats())
	}
}

// TestCheckModelPassThrough: model-bearing queries always reach the solver,
// even when a cached answer exists, so engine-visible model values never
// depend on cache state.
func TestCheckModelPassThrough(t *testing.T) {
	l, ctx, sol := newLocal(t, nil)
	a := ctx.Var("a", 8)
	l.BeginPath(Model{"a": 3})
	c := ctx.Ult(a, ctx.BV(8, 10))
	if res := l.CheckModel([]*smt.Term{}, c); res != solver.Sat {
		t.Fatalf("CheckModel = %v, want Sat", res)
	}
	if sol.Stats().Checks != 1 {
		t.Fatalf("solver checks = %d, want 1 (pass-through)", sol.Stats().Checks)
	}
	if l.Stats().ModelQueries != 1 || l.Stats().StackHits != 0 {
		t.Fatalf("stats = %+v, want a model pass-through, no stack hit", l.Stats())
	}
}

// TestCheckWitnessCompleteModel: a witness answered from the cache carries a
// model that satisfies the entire constraint set.
func TestCheckWitnessCompleteModel(t *testing.T) {
	l, ctx, _ := newLocal(t, nil)
	a := ctx.Var("a", 8)
	l.BeginPath(Model{"a": 4})
	pcs := []*smt.Term{ctx.Ult(a, ctx.BV(8, 10))}
	l.Observe(pcs[0], false)
	cond := ctx.Ult(ctx.BV(8, 2), a)
	res, m := l.CheckWitness(pcs, cond)
	if res != solver.Sat || m == nil {
		t.Fatalf("CheckWitness = (%v, %v), want Sat with a model", res, m)
	}
	for _, tm := range append(pcs, cond) {
		v, err := smt.EvalBool(tm, m)
		if err != nil || !v {
			t.Fatalf("witness fails constraint %v", tm)
		}
	}
}

// TestSubsetSatMergeKeepsValidatedZeros: a stage-5 hit validates the cached
// model with zero defaults for slice variables the model lacks; merging over
// the stack base must preserve those validated zeros rather than inherit the
// base's values (base {x:2}, cached model {y:1}, query x==0 must not yield
// the non-witness {x:2, y:1}).
func TestSubsetSatMergeKeepsValidatedZeros(t *testing.T) {
	l, ctx, _ := newLocal(t, nil)
	x := ctx.Var("x", 8)
	y := ctx.Var("y", 8)

	// Seed the recent-entry ring with a sat entry whose model binds only y.
	l.BeginPath(nil)
	if res := l.CheckFeasible(nil, ctx.Ult(ctx.BV(8, 0), y)); res != solver.Sat {
		t.Fatalf("seed query = %v, want Sat", res)
	}

	// New path: constraint x < 10, stacked model {x:2}.
	pcs := []*smt.Term{ctx.Ult(x, ctx.BV(8, 10))}
	l.BeginPath(Model{"x": 2})
	l.Observe(pcs[0], false)

	// Sibling query x == 0: the stack model fails it; the cached y-model
	// satisfies the slice only under its zero default for x. The returned
	// seed must still be a genuine witness of pcs ∧ query.
	q := ctx.Eq(x, ctx.BV(8, 0))
	res, m := l.CheckSibling(pcs, q)
	if res != solver.Sat {
		t.Fatalf("CheckSibling = %v, want Sat", res)
	}
	if st := l.Stats(); st.SubsetSat != 1 {
		t.Fatalf("stats = %+v, want the sibling answered by model revalidation", st)
	}
	if m == nil {
		t.Fatal("CheckSibling returned no seed model")
	}
	for _, tm := range append(pcs, q) {
		if v, err := smt.EvalBool(tm, m); err != nil || !v {
			t.Fatalf("seed model %v fails constraint %v", m, tm)
		}
	}
	if _, ok := m["y"]; ok {
		t.Fatalf("seed model %v leaks the cached entry's binding for y, outside the slice support", m)
	}
}

// TestWitnessFallbackAccounting: the full-witness re-derivation after a
// partial-model answer is counted in ModelQueries only, so the identity
// Queries = Eliminated + CDCL still reconciles on the fallback path.
func TestWitnessFallbackAccounting(t *testing.T) {
	l, ctx, sol := newLocal(t, nil)
	a := ctx.Var("a", 8)
	b := ctx.Var("b", 8)
	l.BeginPath(nil)

	// The pivot's slice excludes the a-constraint and no stack model exists,
	// so check() answers Sat with a partial model and CheckWitness must
	// re-derive the full witness from the solver.
	pcs := []*smt.Term{ctx.Ult(a, ctx.BV(8, 10))}
	cond := ctx.Ult(b, ctx.BV(8, 5))
	res, _ := l.CheckWitness(pcs, cond)
	if res != solver.Sat {
		t.Fatalf("CheckWitness = %v, want Sat", res)
	}
	st := l.Stats()
	if st.Queries != st.Eliminated()+st.CDCL {
		t.Fatalf("stats = %+v: Queries != Eliminated + CDCL", st)
	}
	if st.ModelQueries != 1 || st.CDCL != 1 {
		t.Fatalf("stats = %+v, want one model pass-through and one CDCL query", st)
	}
	if got := sol.Stats().Checks; got != 2 {
		t.Fatalf("solver checks = %d, want 2 (sliced feasibility + full witness)", got)
	}
}

// TestSiblingModelNotPushed: CheckSibling must not leave the sibling's model
// on this path's stack (the path asserts the opposite direction next).
func TestSiblingModelNotPushed(t *testing.T) {
	l, ctx, _ := newLocal(t, nil)
	a := ctx.Var("a", 8)
	l.BeginPath(nil)
	cond := ctx.Ult(a, ctx.BV(8, 10))
	res, m := l.CheckSibling(nil, ctx.BNot(cond))
	if res != solver.Sat || m == nil {
		t.Fatalf("CheckSibling = (%v, %v), want Sat with a complete model", res, m)
	}
	if len(l.stack) != 0 {
		t.Fatalf("stack depth = %d after sibling check, want 0", len(l.stack))
	}
}

// TestModelLookupZeroDefault pins the documented total-assignment contract
// of Model.Lookup: a name absent from the map reads as zero with ok=true,
// never (0, false). Subset-sat model revalidation (stage 5) and
// mergeWithStack's validated-zero bookkeeping both rely on evaluation under
// a Model being total; a future "missing name returns false" change would
// silently break them, so the contract is a regression test, not just a
// doc comment.
func TestModelLookupZeroDefault(t *testing.T) {
	m := Model{"present": 7}
	if v, ok := m.Lookup("present", 32); v != 7 || !ok {
		t.Fatalf("Lookup(present) = (%d, %v), want (7, true)", v, ok)
	}
	if v, ok := m.Lookup("absent", 32); v != 0 || !ok {
		t.Fatalf("Lookup(absent) = (%d, %v), want (0, true) — the zero default is load-bearing", v, ok)
	}
	var nilModel Model
	if v, ok := nilModel.Lookup("anything", 8); v != 0 || !ok {
		t.Fatalf("nil Model Lookup = (%d, %v), want (0, true)", v, ok)
	}
}

// TestSnapshotImportRoundtrip: entries published by one worker, snapshotted,
// and imported into a fresh Shared answer the same queries, and the hits are
// attributed to the store.
func TestSnapshotImportRoundtrip(t *testing.T) {
	shared := NewShared()
	l, ctx, _ := newLocal(t, shared)
	a := ctx.Var("a", 8)
	l.BeginPath(nil)
	sat := ctx.Ult(a, ctx.BV(8, 10))
	unsat := ctx.Ult(ctx.BV(8, 200), ctx.BV(8, 100))
	if res := l.CheckFeasible(nil, sat); res != solver.Sat {
		t.Fatalf("sat probe = %v", res)
	}
	if res := l.CheckFeasible(nil, unsat); res != solver.Unsat {
		t.Fatalf("unsat probe = %v", res)
	}
	l.Flush()

	snap := shared.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	for i, pe := range snap {
		if pe.Key != KeyOf(pe.Hashes) {
			t.Fatalf("entry %d: Key != KeyOf(Hashes)", i)
		}
		if i > 0 && snap[i-1].Key >= pe.Key {
			t.Fatalf("snapshot not sorted by key")
		}
		if pe.Sat && pe.Model == nil {
			t.Fatalf("entry %d: sat entry without model", i)
		}
	}

	warm := NewShared()
	if n := warm.Import(snap); n != 2 {
		t.Fatalf("Import = %d, want 2", n)
	}
	if n := warm.Import(snap); n != 0 {
		t.Fatalf("re-Import = %d, want 0 (first writer wins)", n)
	}

	// A fresh context rebuilds structurally identical terms, so the imported
	// entries must answer the same queries without the solver.
	l2, ctx2, sol2 := newLocal(t, warm)
	a2 := ctx2.Var("a", 8)
	l2.BeginPath(nil)
	sat2 := ctx2.Ult(a2, ctx2.BV(8, 10))
	unsat2 := ctx2.Ult(ctx2.BV(8, 200), ctx2.BV(8, 100))
	if res := l2.CheckFeasible(nil, sat2); res != solver.Sat {
		t.Fatalf("warm sat probe = %v", res)
	}
	if res := l2.CheckFeasible(nil, unsat2); res != solver.Unsat {
		t.Fatalf("warm unsat probe = %v", res)
	}
	st := l2.Stats()
	if st.ExactHits != 2 || st.StoreHits != 2 {
		t.Fatalf("stats = %+v, want 2 exact hits attributed to the store", st)
	}
	if got := sol2.Stats().Checks; got != 0 {
		t.Fatalf("warm probes reached the solver %d times, want 0", got)
	}
}

// TestImportRejectsMalformed: schema-drifted entries are dropped, not
// trusted.
func TestImportRejectsMalformed(t *testing.T) {
	s := NewShared()
	bad := []PortableEntry{
		{Hashes: nil, Sat: false},                       // empty set
		{Hashes: []uint64{3, 2}, Sat: false},            // unsorted
		{Hashes: []uint64{2, 2}, Sat: false},            // duplicated
		{Hashes: []uint64{1, 2}, Sat: true, Model: nil}, // sat without model
	}
	if n := s.Import(bad); n != 0 {
		t.Fatalf("Import accepted %d malformed entries", n)
	}
	good := []PortableEntry{{Hashes: []uint64{1, 2}, Sat: true, Model: Model{"x": 1}}}
	if n := s.Import(good); n != 1 {
		t.Fatalf("Import rejected a valid entry")
	}
}

// TestSharedConcurrentAccess hammers the Shared store from three sides at
// once — worker-style get/put batches, store-load-style Import, and
// persist-style Snapshot — mirroring what happens when parexplore hand-off
// flushes race a qstore session checkpoint. Run under -race in CI.
func TestSharedConcurrentAccess(t *testing.T) {
	s := NewShared()
	const workers = 4
	const rounds = 200
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < rounds; i++ {
				h := uint64(w*rounds + i + 1)
				key := KeyOf([]uint64{h})
				batch := []*entry{{key: key, hs: []uint64{h}, bloom: bloomOf([]uint64{h}), sat: false}}
				s.put(batch)
				if e := s.get(key); e == nil {
					t.Errorf("worker %d: just-put entry %d missing", w, i)
					return
				}
			}
		}(w)
	}
	go func() {
		defer func() { done <- struct{}{} }()
		for i := 0; i < rounds; i++ {
			h := uint64(1<<32) + uint64(i)
			s.Import([]PortableEntry{{Hashes: []uint64{h}, Sat: true, Model: Model{"v": uint64(i)}}})
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		for i := 0; i < rounds/4; i++ {
			snap := s.Snapshot()
			for j := 1; j < len(snap); j++ {
				if snap[j-1].Key >= snap[j].Key {
					t.Errorf("snapshot %d unsorted", i)
					return
				}
			}
		}
	}()
	for i := 0; i < workers+2; i++ {
		<-done
	}
	if s.Len() == 0 {
		t.Fatal("store empty after concurrent traffic")
	}
}
