// Package querycache is the query-elimination layer between the symbolic
// execution engine (internal/core) and the QF_BV solver (internal/solver).
// It answers as many path-feasibility queries as possible without touching
// the SAT core, using the three classic KLEE techniques plus per-path model
// stacking:
//
//  1. Stack caching: every satisfying assignment discovered on the current
//     path is kept (and eagerly revalidated as constraints are added, via
//     smt.Eval); a branch condition that evaluates to true under a stacked
//     model is satisfiable together with the whole constraint set, with no
//     solver work at all. Sibling scheduling seeds the stack of the child
//     path with the model that proved the sibling feasible.
//
//  2. Constraint independence: the constraint set is partitioned into
//     connected components of the "shares a variable" relation, and only the
//     component connected to the queried condition is sent to the solver.
//     Because the engine maintains the invariant that the path constraints
//     are always satisfiable, and distinct components share no variables,
//     the sliced answer equals the full answer.
//
//  3. Counterexample caching: answers are cached under a canonical
//     fingerprint of the sliced constraint set (sorted context-independent
//     structural hashes, so entries are valid across solver contexts and
//     parexplore workers), with subset/superset reasoning — a superset of a
//     known-unsat set is unsat, and a set whose constraints all evaluate to
//     true under a previously cached model is sat.
//
// Determinism: the layer never changes a Sat/Unsat answer — hits are either
// witnessed by a concrete model (checked with smt.Eval, the ground truth) or
// follow from the two sound set arguments above. Model-bearing queries
// (concretization, witness extraction, test vectors) always pass through to
// the solver unsliced so the values the engine reads never depend on cache
// state. The one observable difference is under a finite solver conflict
// budget: a cache hit can answer a query whose fresh CDCL run would have
// been abandoned as Unknown. Unknown answers are never cached.
//
// A Local is single-goroutine (one per core.Shard); a Shared is the
// read-mostly cross-worker store, written in batches at handoff points.
package querycache

import (
	"encoding/binary"
	"sort"
	"sync"

	"symriscv/internal/obs"
	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// SchemaVersion identifies the semantics of cache entries — what a
// fingerprint hashes, and the restricted-and-total model invariant sat
// entries carry. Any change to either MUST bump it: the persistent store
// (internal/qstore) folds it into every segment's version key, which is how
// entries written under old semantics are prevented from answering queries
// under new ones. Version 2 is the post-review contract: models restricted
// to — and total over — their slice's support, with explicit zeros.
const SchemaVersion = 2

// Model is a concrete variable assignment by name. Variables absent from the
// map read as zero, matching the solver's treatment of unconstrained
// variables, so a Model is a total assignment and evaluation under it never
// fails.
type Model map[string]uint64

// Lookup implements smt.Env with a zero default.
func (m Model) Lookup(name string, _ int) (uint64, bool) { return m[name], true }

// Stats counts pipeline outcomes. Queries is the number of feasibility
// queries entering the pipeline; CDCL is how many of them reached the SAT
// core; the difference is the hit counters, so Queries = Eliminated() + CDCL
// always reconciles. ModelQueries counts the model-bearing solver calls that
// always pass through (CheckModel, and CheckWitness's full-witness
// re-derivation after a partial-model cache answer); those calls appear only
// here, never in Queries or CDCL. On the re-derivation path one engine query
// is counted once in Queries (the pipeline run that produced the partial
// answer) and once in ModelQueries (the pass-through that recovers the full
// witness) — the total solver work is CDCL + ModelQueries.
type Stats struct {
	Queries       uint64 // feasibility queries entering the pipeline
	StackHits     uint64 // answered sat by a stacked path model
	ExactHits     uint64 // answered by an exact fingerprint match
	SubsetSat     uint64 // answered sat by revalidating another entry's model
	SupersetUnsat uint64 // answered unsat as superset of a known-unsat set
	CDCL          uint64 // feasibility queries that reached the SAT core
	CDCLSat       uint64 // ... of which answered Sat
	CDCLUnsat     uint64 // ... of which answered Unsat
	ModelQueries  uint64 // model-bearing pass-through queries
	SlicedQueries uint64 // CDCL queries shrunk by independence slicing
	SlicedDropped uint64 // independent constraints dropped from CDCL queries
	// StoreHits counts the eliminated queries whose answering entry was
	// loaded from the persistent cross-campaign store (internal/qstore)
	// rather than created during this run. Always <= Eliminated(); purely
	// telemetry, like every counter that depends on cache state.
	StoreHits uint64
}

// Eliminated returns the number of feasibility queries answered without the
// SAT core.
func (s Stats) Eliminated() uint64 {
	return s.StackHits + s.ExactHits + s.SubsetSat + s.SupersetUnsat
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.StackHits += o.StackHits
	s.ExactHits += o.ExactHits
	s.SubsetSat += o.SubsetSat
	s.SupersetUnsat += o.SupersetUnsat
	s.CDCL += o.CDCL
	s.CDCLSat += o.CDCLSat
	s.CDCLUnsat += o.CDCLUnsat
	s.ModelQueries += o.ModelQueries
	s.SlicedQueries += o.SlicedQueries
	s.SlicedDropped += o.SlicedDropped
	s.StoreHits += o.StoreHits
}

// entry is one cached feasibility answer. The key is the canonical
// fingerprint of the constraint set the answer is for; hs is the sorted,
// deduplicated structural-hash multiset behind the key; model is a witness
// restricted to — and total over — the set's support variables, with
// explicit zeros for variables the solver left unconstrained (sat entries
// only). Totality is what lets mergeWithStack overlay the model onto a stack
// base without the base's values leaking into the validated assignment.
// Entries are immutable once created, which is what makes sharing them
// across workers race-free.
type entry struct {
	key   string
	hs    []uint64
	bloom uint64 // OR of 1<<(h&63) over hs; quick subset rejection
	sat   bool
	model Model
	store bool // loaded from the persistent store, not created this run
}

// sharedLimit bounds the cross-worker store (entries, not bytes).
const sharedLimit = 1 << 20

// Shared is the cross-worker cache store: a read-mostly map from canonical
// fingerprint to entry. Workers look entries up lock-cheaply (RLock) on
// every local miss and publish their locally created entries in batches at
// handoff points (Local.Flush). First writer wins; since any entry for a key
// is a sound answer for that key, the race on who publishes first never
// changes an answer.
type Shared struct {
	mu sync.RWMutex
	m  map[string]*entry
}

// NewShared returns an empty cross-worker store.
func NewShared() *Shared {
	return &Shared{m: make(map[string]*entry, 1024)}
}

// get returns the entry for key, or nil.
func (s *Shared) get(key string) *entry {
	s.mu.RLock()
	e := s.m[key]
	s.mu.RUnlock()
	return e
}

// put publishes a batch of entries, keeping the first entry per key.
func (s *Shared) put(batch []*entry) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	for _, e := range batch {
		if len(s.m) >= sharedLimit {
			break
		}
		if _, ok := s.m[e.key]; !ok {
			s.m[e.key] = e
		}
	}
	s.mu.Unlock()
}

// Len returns the number of stored entries (for telemetry).
func (s *Shared) Len() int {
	s.mu.RLock()
	n := len(s.m)
	s.mu.RUnlock()
	return n
}

// PortableEntry is the context-free, serialisable view of one cache entry:
// the sorted, deduplicated structural-hash fingerprint of the constraint
// set, the answer, and (sat entries only) the witnessing model restricted
// to — and total over — the set's support variables. It carries everything
// internal/qstore needs to persist an answer and everything Import needs to
// reconstruct it in another process.
type PortableEntry struct {
	Key    string // canonical key; always KeyOf(Hashes)
	Hashes []uint64
	Sat    bool
	Model  Model // nil for unsat entries
}

// KeyOf returns the canonical map key of a sorted, deduplicated hash set:
// each hash serialised big-endian, concatenated. It is the exported twin of
// Local.fingerprint's key construction.
func KeyOf(hs []uint64) string {
	buf := make([]byte, 8*len(hs))
	for i, h := range hs {
		binary.BigEndian.PutUint64(buf[i*8:], h)
	}
	return string(buf)
}

// Snapshot returns a portable copy of every stored entry, sorted by key so
// the output is deterministic for a given entry set. The hash slices and
// models alias the immutable entries and must be treated as read-only.
func (s *Shared) Snapshot() []PortableEntry {
	s.mu.RLock()
	keys := make([]string, len(s.m))
	i := 0
	for k := range s.m {
		keys[i] = k
		i++
	}
	sort.Strings(keys)
	out := make([]PortableEntry, 0, len(keys))
	for _, k := range keys {
		e := s.m[k]
		out = append(out, PortableEntry{Key: k, Hashes: e.hs, Sat: e.sat, Model: e.model})
	}
	s.mu.RUnlock()
	return out
}

// Import publishes externally loaded entries (the persistent store's load
// path), marking them store-originated so cache hits they answer can be
// attributed. Malformed entries (unsorted or duplicated hashes, empty sets,
// sat entries without a model) are rejected rather than trusted — the store
// layer's checksums catch corruption, this catches schema drift. First
// writer wins, as with put. Returns the number of entries accepted.
func (s *Shared) Import(es []PortableEntry) int {
	n := 0
	s.mu.Lock()
	for _, pe := range es {
		if !validPortable(pe) {
			continue
		}
		if len(s.m) >= sharedLimit {
			break
		}
		key := KeyOf(pe.Hashes)
		if _, ok := s.m[key]; ok {
			continue
		}
		hs := make([]uint64, len(pe.Hashes))
		copy(hs, pe.Hashes)
		s.m[key] = &entry{key: key, hs: hs, bloom: bloomOf(hs), sat: pe.Sat, model: pe.Model, store: true}
		n++
	}
	s.mu.Unlock()
	return n
}

// validPortable checks the structural invariants Import relies on.
func validPortable(pe PortableEntry) bool {
	if len(pe.Hashes) == 0 {
		return false
	}
	for i := 1; i < len(pe.Hashes); i++ {
		if pe.Hashes[i] <= pe.Hashes[i-1] {
			return false
		}
	}
	if pe.Sat && pe.Model == nil {
		return false
	}
	return true
}

// stackModel is one satisfying assignment of the current path's constraint
// set. seed marks the model inherited from the run that scheduled this path:
// it is known to satisfy every replayed constraint (program determinism), so
// revalidation is skipped during replay. ev is the model's persistent
// evaluator: path constraints share most of their term DAG, so keeping the
// evaluation cache alive across Observe calls costs each DAG node once per
// model per path instead of once per constraint.
type stackModel struct {
	env  Model
	ev   *smt.Evaluator
	seed bool
}

// maxStack bounds the per-path model stack.
const maxStack = 4

// maxRecent bounds the ring of recent sat entries probed for model
// revalidation (the subset-of-known-sat rule).
const maxRecent = 8

// Local is one worker's view of the query-elimination layer. It owns the
// per-path model stack, the per-term support memo, and a private entry map;
// misses fall back to the Shared store when attached. Not safe for
// concurrent use.
type Local struct {
	ctx    *smt.Context
	sol    *solver.Solver
	shared *Shared

	entries    map[string]*entry
	unsatByMin map[uint64][]*entry // local unsat entries indexed by smallest hash
	recent     [maxRecent]*entry   // ring of recent sat entries
	recentEv   [maxRecent]*smt.Evaluator
	recentPos  int
	pending    []*entry // locally created entries not yet flushed

	support map[uint32][]uint32 // term ID -> sorted support variable IDs

	stack []stackModel // models of the current path's constraint set

	// Reusable per-query buffers (valid only within one pipeline call).
	scratch  []*smt.Term // query assembly buffer
	inComp   map[uint32]struct{}
	usedBuf  []bool
	sliceBuf []*smt.Term
	hsBuf    []uint64
	keyBuf   []byte
	seenVar  map[uint32]struct{}
	stats    Stats

	h *obs.Handle
}

// NewLocal returns a query-elimination layer over the given context and
// solver. shared may be nil (sequential exploration).
func NewLocal(ctx *smt.Context, sol *solver.Solver, shared *Shared) *Local {
	return &Local{
		ctx:        ctx,
		sol:        sol,
		shared:     shared,
		entries:    make(map[string]*entry, 256),
		unsatByMin: make(map[uint64][]*entry, 64),
		support:    make(map[uint32][]uint32, 256),
		inComp:     make(map[uint32]struct{}, 64),
		seenVar:    make(map[uint32]struct{}, 64),
	}
}

// AttachShared connects the cross-worker store. Must be called before any
// queries.
func (l *Local) AttachShared(s *Shared) { l.shared = s }

// SetObs attaches the owning worker's observability handle; each pipeline
// probe then runs under a cache-probe span (with solver fall-throughs
// nesting their own solver-check spans inside it).
func (l *Local) SetObs(h *obs.Handle) { l.h = h }

// Stats returns the accumulated counters.
func (l *Local) Stats() Stats { return l.stats }

// BeginPath resets the per-path model stack for a new path. seed, when
// non-nil, is a model known to satisfy the path's replayed constraint prefix
// (captured when the sibling was proven feasible).
func (l *Local) BeginPath(seed Model) {
	l.stack = l.stack[:0]
	if seed != nil {
		l.stack = append(l.stack, stackModel{env: seed, ev: smt.NewEvaluator(seed), seed: true})
	}
}

// Observe tells the layer a constraint was appended to the path. trusted
// marks replayed constraints, which the seed model is known to satisfy
// (program determinism); all other models are revalidated by evaluation and
// dropped when they no longer satisfy the constraint set.
func (l *Local) Observe(t *smt.Term, trusted bool) {
	keep := l.stack[:0]
	for _, m := range l.stack {
		if trusted && m.seed {
			keep = append(keep, m)
			continue
		}
		if v, err := m.ev.EvalBool(t); err == nil && v {
			keep = append(keep, m)
		}
	}
	l.stack = keep
}

// Flush publishes locally created cache entries to the Shared store. Called
// at work handoff points by the parallel orchestrator; a no-op without an
// attached store.
func (l *Local) Flush() {
	if l.shared != nil {
		l.shared.put(l.pending)
	}
	l.pending = l.pending[:0]
}

// CheckFeasible answers satisfiability of pcs plus the optional query
// condition through the full elimination pipeline. A nil query makes the
// last element of pcs the pivot (the engine's flip check).
func (l *Local) CheckFeasible(pcs []*smt.Term, query *smt.Term) solver.Result {
	res, _, _ := l.check(pcs, query, true)
	return res
}

// CheckSibling is CheckFeasible for the engine's eager sibling-feasibility
// query. On Sat it additionally returns a model of pcs ∧ query when one is
// available in full (nil otherwise), for seeding the sibling path's stack.
// Sibling models are not pushed onto this path's stack: the path is about to
// assert the negation of the query, which the model fails by construction.
func (l *Local) CheckSibling(pcs []*smt.Term, query *smt.Term) (solver.Result, Model) {
	res, env, complete := l.check(pcs, query, false)
	if res != solver.Sat || !complete {
		return res, nil
	}
	return res, env
}

// CheckWitness answers the engine's witness query (pcs ∧ cond) and, when the
// answer is Sat, returns the witnessing model. A nil model with a Sat result
// means the query passed through to the solver, whose model state holds the
// witness. Cache hits only short-circuit when their model covers the whole
// constraint set, so a returned model is always a genuine witness.
func (l *Local) CheckWitness(pcs []*smt.Term, query *smt.Term) (solver.Result, Model) {
	res, env, complete := l.check(pcs, query, true)
	if res == solver.Sat && env != nil && complete {
		return res, env
	}
	if env == nil && res != solver.Unsat && res != solver.Unknown {
		// Answered by the solver directly: its model state is current.
		return res, nil
	}
	if res == solver.Sat {
		// Sat via a partial-model cache answer: re-derive a full witness from
		// the solver. This is a model-bearing pass-through, counted in
		// ModelQueries only — the feasibility query itself was already
		// accounted (Queries plus a hit counter or CDCL) by check().
		l.stats.ModelQueries++
		full := append(l.scratch[:0], pcs...)
		if query != nil {
			full = append(full, query)
		}
		l.scratch = full
		if r := l.sol.Check(full...); r != solver.Sat {
			return r, nil
		}
		l.pushSolverModel(full)
		return solver.Sat, nil
	}
	return res, nil
}

// CheckModel answers satisfiability of pcs plus the optional query with a
// guaranteed pass-through to the solver, so the engine can read model values
// afterwards (concretization, test vectors). The model is also pushed onto
// the path's stack for later stack hits.
func (l *Local) CheckModel(pcs []*smt.Term, query *smt.Term) solver.Result {
	l.stats.ModelQueries++
	full := append(l.scratch[:0], pcs...)
	if query != nil {
		full = append(full, query)
	}
	l.scratch = full
	res := l.sol.Check(full...)
	if res == solver.Sat {
		l.pushSolverModel(full)
	}
	return res
}

// check runs the elimination pipeline. It returns the answer, a model
// witnessing a Sat answer when one is known (possibly restricted to the
// sliced component), and whether that model covers the entire constraint
// set. push allows a freshly derived full-set model onto the path stack;
// callers about to assert the pivot's negation pass false.
func (l *Local) check(pcs []*smt.Term, query *smt.Term, push bool) (solver.Result, Model, bool) {
	defer l.h.Start(obs.PhaseCacheProbe).End()
	l.stats.Queries++

	all := append(l.scratch[:0], pcs...)
	if query != nil {
		all = append(all, query)
	}
	l.scratch = all
	if len(all) == 0 {
		l.stats.CDCL++
		return l.sol.Check(), nil, false
	}
	pivot := all[len(all)-1]

	// Stage 1: stack models. Every stacked model satisfies all observed
	// constraints — exactly all minus an unobserved pivot — so evaluating
	// the pivot alone decides the whole conjunction.
	for i := len(l.stack) - 1; i >= 0; i-- {
		if v, err := l.stack[i].ev.EvalBool(pivot); err == nil && v {
			l.stats.StackHits++
			return solver.Sat, l.stack[i].env, true
		}
	}

	// Stage 2: independence slicing.
	slice, dropped := l.slice(all, pivot)

	// Stage 3: exact fingerprint lookup (local map, then shared store).
	key, hs := l.fingerprint(slice)
	if e := l.lookup(key); e != nil {
		l.stats.ExactHits++
		if e.store {
			l.stats.StoreHits++
		}
		return l.hitResult(e, dropped, push)
	}

	// Stage 4: superset-of-unsat. Any known-unsat subset proves this set
	// unsat.
	if e := l.supersetUnsat(hs); e != nil {
		l.stats.SupersetUnsat++
		if e.store {
			l.stats.StoreHits++
		}
		return solver.Unsat, nil, false
	}

	// Stage 5: model revalidation against recent sat entries (the
	// subset-of-known-sat rule, generalised: any cached model that satisfies
	// every sliced constraint is a witness).
	for i := 0; i < maxRecent; i++ {
		e := l.recent[i]
		if e == nil {
			continue
		}
		if l.recentEv[i] == nil {
			l.recentEv[i] = smt.NewEvaluator(e.model)
		}
		if modelSatisfies(l.recentEv[i], slice) {
			l.stats.SubsetSat++
			if e.store {
				l.stats.StoreHits++
			}
			// The validation read zero for every slice variable absent from
			// e.model; restrict the model to the slice's support with those
			// zeros made explicit, so the recorded witness is exactly the
			// validated assignment and a later mergeWithStack can neither
			// clobber it with stack-base values nor leak e.model's bindings
			// for unrelated variables over the base.
			ne := l.record(key, hs, true, l.restrictToSupport(slice, e.model))
			return l.hitResult(ne, dropped, push)
		}
	}

	// Stage 6: the SAT core, on the slice only.
	l.stats.CDCL++
	if dropped > 0 {
		l.stats.SlicedQueries++
		l.stats.SlicedDropped += uint64(dropped)
	}
	res, core := l.sol.CheckCore(slice...)
	switch res {
	case solver.Sat:
		l.stats.CDCLSat++
		env := l.captureModel(slice)
		l.record(key, hs, true, env)
		merged, complete := l.mergeWithStack(env, dropped == 0)
		if complete && push {
			l.push(merged)
		}
		return solver.Sat, merged, complete
	case solver.Unsat:
		l.stats.CDCLUnsat++
		if len(core) > 0 && len(core) < len(slice) {
			// Record the unsat core rather than the whole set: every future
			// superset of the core — the same forced branch under different
			// unrelated constraints — is answered by the superset rule.
			ckey, chs := l.fingerprint(core)
			l.record(ckey, chs, false, nil)
		} else {
			l.record(key, hs, false, nil)
		}
		return solver.Unsat, nil, false
	}
	return solver.Unknown, nil, false
}

// hitResult converts a cache entry into a pipeline answer, merging sat
// models over the current stack to recover a full-set witness when possible.
func (l *Local) hitResult(e *entry, dropped int, push bool) (solver.Result, Model, bool) {
	if !e.sat {
		return solver.Unsat, nil, false
	}
	merged, complete := l.mergeWithStack(e.model, dropped == 0)
	if complete && push {
		l.push(merged)
	}
	return solver.Sat, merged, complete
}

// mergeWithStack overlays a slice model onto the newest stacked model. env
// must be restricted to and total over the slice's support (the invariant
// record and captureModel maintain): restricted, so overlaying cannot
// disturb the base's values outside the slice — the slice is a union of
// whole variable-sharing components, disjoint from the remaining
// constraints' variables; total, so the base cannot supply a value for a
// slice variable that env's validation read as zero. The result covers the
// entire constraint set when a base exists or when the slice was the whole
// set (sliceIsAll).
func (l *Local) mergeWithStack(env Model, sliceIsAll bool) (Model, bool) {
	if n := len(l.stack); n > 0 {
		base := l.stack[n-1].env
		merged := make(Model, len(base)+len(env))
		for k, v := range base {
			merged[k] = v
		}
		for k, v := range env {
			merged[k] = v
		}
		return merged, true
	}
	return env, sliceIsAll
}

// push adds a full-set model to the path stack, evicting the oldest
// non-seed model when full.
func (l *Local) push(env Model) {
	m := stackModel{env: env, ev: smt.NewEvaluator(env)}
	if len(l.stack) < maxStack {
		l.stack = append(l.stack, m)
		return
	}
	i := 0
	if l.stack[0].seed {
		i = 1
	}
	copy(l.stack[i:], l.stack[i+1:])
	l.stack[len(l.stack)-1] = m
}

// pushSolverModel captures the solver's current model over the support of
// the given constraints and pushes it as a full-set stack model.
func (l *Local) pushSolverModel(full []*smt.Term) {
	l.push(l.captureModel(full))
}

// captureModel reads the solver model restricted to — and total over — the
// support variables of the given constraints. Variables the solver never
// encoded read zero and are recorded explicitly, so the model stays a valid
// witness after mergeWithStack overlays it onto a stack base.
func (l *Local) captureModel(ts []*smt.Term) Model {
	seen := l.seenVar
	clear(seen)
	env := make(Model, 32)
	for _, t := range ts {
		for _, id := range l.supportOf(t) {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			v := l.ctx.TermByID(id)
			mv, _ := l.sol.VarValue(v)
			env[v.Name()] = mv
		}
	}
	return env
}

// restrictToSupport returns a copy of env restricted to — and made total
// over — the support of ts: every support variable gets an explicit value,
// env's when present and zero otherwise, matching the zero default the
// stage-5 validation evaluated absent variables under.
func (l *Local) restrictToSupport(ts []*smt.Term, env Model) Model {
	seen := l.seenVar
	clear(seen)
	out := make(Model, len(env))
	for _, t := range ts {
		for _, id := range l.supportOf(t) {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			name := l.ctx.TermByID(id).Name()
			out[name] = env[name]
		}
	}
	return out
}

// record creates, indexes and schedules for publication a new cache entry.
// hs is copied: fingerprint returns a reused buffer, entries are immutable.
func (l *Local) record(key string, hs []uint64, sat bool, model Model) *entry {
	owned := make([]uint64, len(hs))
	copy(owned, hs)
	e := &entry{key: key, hs: owned, bloom: bloomOf(owned), sat: sat, model: model}
	l.entries[key] = e
	l.pending = append(l.pending, e)
	l.index(e)
	return e
}

// index adds an entry to the local derived indexes.
func (l *Local) index(e *entry) {
	if e.sat {
		l.recent[l.recentPos] = e
		l.recentEv[l.recentPos] = nil // evaluator is built lazily on first probe
		l.recentPos = (l.recentPos + 1) % maxRecent
		return
	}
	if len(e.hs) > 0 {
		min := e.hs[0]
		l.unsatByMin[min] = append(l.unsatByMin[min], e)
	}
}

// lookup finds an entry by key in the local map, falling back to the shared
// store; shared finds are adopted locally (and indexed, so shared unsat
// entries join the local superset reasoning).
func (l *Local) lookup(key string) *entry {
	if e, ok := l.entries[key]; ok {
		return e
	}
	if l.shared == nil {
		return nil
	}
	e := l.shared.get(key)
	if e != nil {
		l.entries[key] = e
		l.index(e)
	}
	return e
}

// bloomOf folds a hash set into a 64-bit membership signature.
func bloomOf(hs []uint64) uint64 {
	var b uint64
	for _, h := range hs {
		b |= 1 << (h & 63)
	}
	return b
}

// supersetUnsat returns a known-unsat subset entry of the sorted hash set
// hs, or nil. Candidates are the local unsat entries whose smallest hash
// occurs in hs (a necessary condition for subset-hood); the bloom signature
// and the size comparison reject almost all of them before the element-wise
// scan.
func (l *Local) supersetUnsat(hs []uint64) *entry {
	q := bloomOf(hs)
	for _, h := range hs {
		for _, e := range l.unsatByMin[h] {
			if e.bloom&^q == 0 && len(e.hs) <= len(hs) && isSubset(e.hs, hs) {
				return e
			}
		}
	}
	return nil
}

// isSubset reports whether sorted slice sub is a subset of sorted slice sup.
func isSubset(sub, sup []uint64) bool {
	i := 0
	for _, h := range sub {
		for i < len(sup) && sup[i] < h {
			i++
		}
		if i >= len(sup) || sup[i] != h {
			return false
		}
		i++
	}
	return true
}

// slice returns the members of all connected to pivot under the shares-a-
// variable relation (always including pivot itself), deduplicated, plus the
// number of constraints left out. The returned slice aliases a reusable
// buffer valid until the next call.
func (l *Local) slice(all []*smt.Term, pivot *smt.Term) ([]*smt.Term, int) {
	inComp := l.inComp
	clear(inComp)
	for _, id := range l.supportOf(pivot) {
		inComp[id] = struct{}{}
	}
	if cap(l.usedBuf) < len(all) {
		l.usedBuf = make([]bool, len(all))
	}
	used := l.usedBuf[:len(all)]
	for i := range used {
		used[i] = false
	}
	for changed := true; changed; {
		changed = false
		for i, t := range all {
			if used[i] {
				continue
			}
			if t == pivot {
				used[i] = true
				changed = true
				continue
			}
			sup := l.supportOf(t)
			touch := false
			for _, id := range sup {
				if _, ok := inComp[id]; ok {
					touch = true
					break
				}
			}
			if !touch {
				continue
			}
			used[i] = true
			changed = true
			for _, id := range sup {
				inComp[id] = struct{}{}
			}
		}
	}
	// Duplicate terms (a condition asserted twice) are kept: the fingerprint
	// deduplicates their hashes, and the solver tolerates repeated conjuncts.
	slice := l.sliceBuf[:0]
	dropped := 0
	for i, t := range all {
		if !used[i] {
			dropped++
			continue
		}
		slice = append(slice, t)
	}
	l.sliceBuf = slice
	return slice, dropped
}

// fingerprint returns the canonical key of a constraint set: the sorted,
// deduplicated context-independent structural hashes of its members,
// serialised big-endian. Identical sets built in different contexts (or
// discovered in different orders) produce identical keys.
func (l *Local) fingerprint(ts []*smt.Term) (string, []uint64) {
	hs := l.hsBuf[:0]
	for _, t := range ts {
		hs = append(hs, l.ctx.StructuralHash(t))
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	// Deduplicate equal hashes so a twice-asserted condition keys the same
	// set as a once-asserted one (collisions between distinct terms are
	// astronomically unlikely and harmless to keep once).
	out := hs[:0]
	var prev uint64
	for i, h := range hs {
		if i > 0 && h == prev {
			continue
		}
		out = append(out, h)
		prev = h
	}
	hs = out
	l.hsBuf = hs
	if cap(l.keyBuf) < 8*len(hs) {
		l.keyBuf = make([]byte, 8*len(hs))
	}
	buf := l.keyBuf[:8*len(hs)]
	for i, h := range hs {
		binary.BigEndian.PutUint64(buf[i*8:], h)
	}
	return string(buf), hs
}

// supportOf returns the sorted variable IDs occurring in t, memoized per
// term.
func (l *Local) supportOf(t *smt.Term) []uint32 {
	if s, ok := l.support[t.ID()]; ok {
		return s
	}
	var s []uint32
	switch {
	case t.Kind() == smt.KVar:
		s = []uint32{t.ID()}
	case t.NumArgs() == 0:
		s = []uint32{}
	default:
		s = l.supportOf(t.Arg(0))
		for i := 1; i < t.NumArgs(); i++ {
			s = mergeSorted(s, l.supportOf(t.Arg(i)))
		}
	}
	l.support[t.ID()] = s
	return s
}

// mergeSorted returns the sorted union of two sorted ID slices.
func mergeSorted(a, b []uint32) []uint32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// modelSatisfies reports whether every constraint evaluates to true under
// the evaluator's model. Model's zero default makes evaluation total; the
// only error Eval can then return is an unsupported kind, which would be a
// construction bug — treat it as unsatisfied so the pipeline falls through
// to the solver.
func modelSatisfies(ev *smt.Evaluator, ts []*smt.Term) bool {
	for _, t := range ts {
		v, err := ev.EvalBool(t)
		if err != nil || !v {
			return false
		}
	}
	return true
}
