package harness

import (
	"fmt"
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/pipecore"
)

// LongRunResult reproduces the paper's exemplary comprehensive exploration
// statistics (§V-A prose): runtime, executed instructions, completely and
// partially explored paths, and generated test cases.
type LongRunResult struct {
	Report  *core.Report
	Budget  time.Duration
	Limit   int
	NumRegs int
	Workers int
}

// LongRunOptions configure the comprehensive exploration. Common.Budget
// bounds the run; 0 means unbounded (explore until the path tree is
// exhausted), the same zero-value contract every other campaign follows —
// the 30s default lives on the symv longrun -budget flag, not here.
type LongRunOptions struct {
	Common
	// InstrLimit / NumRegs fix the workload (defaults 1 and 2).
	InstrLimit int
	NumRegs    int
}

// LongRun performs a budgeted comprehensive exploration, generating a test
// vector per completed path. On microrv32 it explores the shipped
// configuration (all instructions, VP reference); on pipecore — which has no
// as-shipped variant — it explores the clean core against the fixed ISS with
// SYSTEM opcodes blocked (no CSR file), so findings stay at zero and the
// statistics measure exploration, not the known Zicsr gap.
func LongRun(opt LongRunOptions) *LongRunResult {
	if opt.InstrLimit == 0 {
		opt.InstrLimit = 1
	}
	if opt.NumRegs == 0 {
		opt.NumRegs = 2
	}
	cfg := cosim.Config{
		InstrLimit:      opt.InstrLimit,
		NumSymbolicRegs: opt.NumRegs,
		DUTCore:         opt.Common.Core,
	}
	if opt.Common.Core == cosim.CorePipecore {
		cfg.ISS = iss.FixedConfig()
		cfg.Pipe = pipecore.Config{}
		cfg.Filter = cosim.BlockSystemInstructions
	} else {
		cfg.ISS = iss.VPConfig()
		cfg.Core = microrv32.ShippedConfig()
	}
	rep := opt.explore(cosim.RunFunc(cfg), core.Options{GenerateTests: true})
	return &LongRunResult{Report: rep, Budget: opt.Budget, Limit: opt.InstrLimit, NumRegs: opt.NumRegs, Workers: opt.Workers}
}

// Format renders the long-run statistics paragraph.
func (r *LongRunResult) Format() string {
	var b strings.Builder
	s := r.Report.Stats
	budget := r.Budget.String()
	if r.Budget == 0 {
		budget = "unbounded"
	}
	fmt.Fprintf(&b, "Exemplary comprehensive exploration (budget %s, instruction limit %d, %d symbolic registers):\n",
		budget, r.Limit, r.NumRegs)
	fmt.Fprintf(&b, "  runtime            %s\n", s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  executed instrs    %d\n", s.Instructions)
	fmt.Fprintf(&b, "  paths (complete)   %d\n", s.Completed)
	fmt.Fprintf(&b, "  paths (partial)    %d\n", s.Partial)
	fmt.Fprintf(&b, "  test cases         %d\n", len(r.Report.TestVectors)+len(r.Report.Findings))
	fmt.Fprintf(&b, "  findings           %d\n", len(r.Report.Findings))
	fmt.Fprintf(&b, "  solver queries     %d\n", s.SolverQueries)
	fmt.Fprintf(&b, "  SAT-core queries   %d\n", s.CDCLQueries)
	fmt.Fprintf(&b, "  cache eliminated   %d (stack %d, exact %d, subset %d, superset %d)\n",
		s.Cache.Eliminated(), s.Cache.StackHits, s.Cache.ExactHits, s.Cache.SubsetSat, s.Cache.SupersetUnsat)
	fmt.Fprintf(&b, "  sliced queries     %d (%d constraints dropped)\n", s.Cache.SlicedQueries, s.Cache.SlicedDropped)
	fmt.Fprintf(&b, "  rewrite hits       %d\n", s.RewriteHits)
	fmt.Fprintf(&b, "  solver unknowns    %d\n", s.SolverUnknowns)
	fmt.Fprintf(&b, "  exhausted          %v\n", r.Report.Exhausted)
	return b.String()
}
