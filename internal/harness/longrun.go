package harness

import (
	"fmt"
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
)

// LongRunResult reproduces the paper's exemplary comprehensive exploration
// statistics (§V-A prose): runtime, executed instructions, completely and
// partially explored paths, and generated test cases.
type LongRunResult struct {
	Report  *core.Report
	Budget  time.Duration
	Limit   int
	NumRegs int
	Workers int
}

// RunLongRun performs a budgeted comprehensive exploration of the shipped
// configuration (all instructions, VP reference), generating a test vector
// per completed path. Workers > 1 shards the path tree across that many
// solver contexts (see internal/parexplore); ab carries the ablation toggles
// (-cache=off, -rewrite=off).
func RunLongRun(budget time.Duration, instrLimit, numRegs, workers int, ab Ablate) *LongRunResult {
	cfg := cosim.Config{
		ISS:             iss.VPConfig(),
		Core:            microrv32.ShippedConfig(),
		InstrLimit:      instrLimit,
		NumSymbolicRegs: numRegs,
	}
	rep := Explore(cosim.RunFunc(cfg), ab.apply(core.Options{
		MaxTime:       budget,
		GenerateTests: true,
	}), workers)
	return &LongRunResult{Report: rep, Budget: budget, Limit: instrLimit, NumRegs: numRegs, Workers: workers}
}

// Format renders the long-run statistics paragraph.
func (r *LongRunResult) Format() string {
	var b strings.Builder
	s := r.Report.Stats
	fmt.Fprintf(&b, "Exemplary comprehensive exploration (budget %s, instruction limit %d, %d symbolic registers):\n",
		r.Budget, r.Limit, r.NumRegs)
	fmt.Fprintf(&b, "  runtime            %s\n", s.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  executed instrs    %d\n", s.Instructions)
	fmt.Fprintf(&b, "  paths (complete)   %d\n", s.Completed)
	fmt.Fprintf(&b, "  paths (partial)    %d\n", s.Partial)
	fmt.Fprintf(&b, "  test cases         %d\n", len(r.Report.TestVectors)+len(r.Report.Findings))
	fmt.Fprintf(&b, "  findings           %d\n", len(r.Report.Findings))
	fmt.Fprintf(&b, "  solver queries     %d\n", s.SolverQueries)
	fmt.Fprintf(&b, "  SAT-core queries   %d\n", s.CDCLQueries)
	fmt.Fprintf(&b, "  cache eliminated   %d (stack %d, exact %d, subset %d, superset %d)\n",
		s.Cache.Eliminated(), s.Cache.StackHits, s.Cache.ExactHits, s.Cache.SubsetSat, s.Cache.SupersetUnsat)
	fmt.Fprintf(&b, "  sliced queries     %d (%d constraints dropped)\n", s.Cache.SlicedQueries, s.Cache.SlicedDropped)
	fmt.Fprintf(&b, "  rewrite hits       %d\n", s.RewriteHits)
	fmt.Fprintf(&b, "  solver unknowns    %d\n", s.SolverUnknowns)
	fmt.Fprintf(&b, "  exhausted          %v\n", r.Report.Exhausted)
	return b.String()
}
