// Package harness regenerates the paper's evaluation artefacts: the Table I
// mismatch/error catalogue, the Table II error-injection study, the
// exemplary long-run statistics, and the sliced-register ablation. Each
// runner returns structured results plus a text rendering in the paper's
// table layout.
package harness

import (
	"strings"

	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

// Verdict is the R column of Table I.
type Verdict string

// Verdicts: error in the RTL core, error in the ISS, implementation
// mismatch.
const (
	VerdictRTLError Verdict = "E"
	VerdictISSError Verdict = "E*"
	VerdictMismatch Verdict = "M"
)

// RowClass is the classified identity of one Table I row.
type RowClass struct {
	Subject string  // instruction or CSR name ("LW", "mcycle", "unimpl. CSRs")
	Desc    string  // short description ("Missing alignment check")
	R       Verdict // classification
}

// Key returns a dedupe key for the row.
func (rc RowClass) Key() string { return rc.Subject + "|" + rc.Desc }

// Classify maps a checker mismatch onto its Table I row identity for the
// default microrv32 core, using the witness instruction and both models'
// trap behaviour.
func Classify(m *rvfi.Mismatch) RowClass { return ClassifyFor(cosim.CoreMicroRV32, m) }

// ClassifyFor maps a checker mismatch onto its Table I row identity for the
// given core. The row vocabulary is core-aware where the cores' feature sets
// differ: the pipelined core implements no Zicsr or MRET, so its CSR and
// MRET mismatches classify as missing-feature rows rather than per-CSR
// behaviour bugs.
func ClassifyFor(kind cosim.CoreKind, m *rvfi.Mismatch) RowClass {
	in := riscv.Decode(m.Insn)

	switch {
	case in.Mn.IsLoad() || in.Mn.IsStore():
		if m.Kind == rvfi.TrapMismatch && m.ISSTrap && !m.RTLTrap {
			return RowClass{strings.ToUpper(in.Mn.String()), "Missing alignment check", VerdictMismatch}
		}
		return RowClass{strings.ToUpper(in.Mn.String()), "Load/store result mismatch", VerdictMismatch}

	case in.Mn == riscv.InsWFI:
		return RowClass{"WFI", "Missing WFI instruction", VerdictRTLError}

	case in.Mn == riscv.InsMRET && kind == cosim.CorePipecore:
		return RowClass{"MRET", "Missing MRET instruction", VerdictRTLError}

	case in.Mn.IsCSR():
		return classifyCSR(kind, m, in)
	}
	return RowClass{strings.ToUpper(in.Mn.String()), m.Kind.String(), VerdictMismatch}
}

func classifyCSR(kind cosim.CoreKind, m *rvfi.Mismatch, in riscv.Inst) RowClass {
	addr := in.CSR
	name := riscv.CSRName(addr)
	issHas := iss.ImplementsCSR(addr)
	rtlHas := rtlImplementsCSR(kind, addr)

	// Collapse the hpm register files into the paper's range rows.
	switch {
	case addr >= riscv.CSRMHpmCounterBase+3 && addr <= riscv.CSRMHpmCounterBase+31:
		name = "mhpmcounter3-31"
	case addr >= riscv.CSRMHpmCounterHBase+3 && addr <= riscv.CSRMHpmCounterHBase+31:
		name = "mhpmcounter3-31h"
	case addr >= riscv.CSRMHpmEventBase+3 && addr <= riscv.CSRMHpmEventBase+31:
		name = "mhpmevent3-31"
	}

	if kind == cosim.CorePipecore {
		// The pipelined core implements no Zicsr at all: every CSR access
		// traps as illegal regardless of the address, so each probed CSR
		// classifies as the same missing feature.
		return RowClass{name, "unimpl. Zicsr (no CSR file)", VerdictMismatch}
	}

	switch {
	case m.RTLTrap && !m.ISSTrap:
		// The shipped core's spurious traps on counter/mip writes.
		return RowClass{name, "Trap at write access", VerdictRTLError}

	case m.ISSTrap && !m.RTLTrap:
		switch {
		case addr == riscv.CSRMIdeleg:
			return RowClass{"mideleg", "VP traps at mideleg read", VerdictISSError}
		case addr == riscv.CSRMEdeleg:
			return RowClass{"medeleg", "VP traps at medeleg read", VerdictISSError}
		case !issHas:
			// Unknown to the reference too: the RTL misses the mandatory
			// illegal-instruction trap for non-existent CSRs.
			return RowClass{"unimpl. CSRs", "Missing trap at access", VerdictRTLError}
		case !rtlHas && addr >= 0xC00:
			// The ISS trapped for its own architectural reason (write to a
			// read-only user counter); the root cause reported by the paper
			// is that the core does not implement the CSR at all.
			return RowClass{name, "unimpl. Unprivileged CSR", VerdictMismatch}
		case !rtlHas:
			return RowClass{name, "unimpl. Privileged CSR", VerdictMismatch}
		case riscv.CSRReadOnly(addr):
			return RowClass{name, "Missing trap at write", VerdictRTLError}
		default:
			return RowClass{name, "Missing trap", VerdictRTLError}
		}

	default: // value mismatch without trap disagreement
		switch {
		case addr == riscv.CSRMCycle || addr == riscv.CSRMInstret ||
			addr == riscv.CSRMCycleH || addr == riscv.CSRMInstretH:
			return RowClass{name, "Cycle Count Mismatch", VerdictMismatch}
		case !rtlHas && addr >= 0xC00:
			return RowClass{name, "unimpl. Unprivileged CSR", VerdictMismatch}
		case !rtlHas:
			return RowClass{name, "unimpl. Privileged CSR", VerdictMismatch}
		default:
			return RowClass{name, "CSR value mismatch", VerdictMismatch}
		}
	}
}

// rtlImplementsCSR reports whether the selected core implements the CSR.
// The pipelined core has no CSR file; the microrv32 model answers from its
// implemented set.
func rtlImplementsCSR(kind cosim.CoreKind, addr uint16) bool {
	if kind == cosim.CorePipecore {
		return false
	}
	return microrv32.ImplementsCSR(addr)
}
