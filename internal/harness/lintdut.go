package harness

import (
	"symriscv/internal/dutlint"
	"symriscv/internal/microrv32"
	"symriscv/internal/pipecore"
)

// LintDUTOptions configure one static DUT lint (symv lint-dut). The shared
// Common block supplies the ablation toggles, budget and observability
// sink; exploration is always sequential here (the lint's collector unions
// observables across paths in walk order, and a full lint of either core
// runs in well under a second).
type LintDUTOptions struct {
	Common
	// NumRegs is the number of symbolic initial registers handed to the
	// adapters (0 selects dutlint.DefaultNumRegs).
	NumRegs int
	// SATProbe enables the bounded decode-arm reachability probe.
	SATProbe bool
	// SATConflictBudget bounds each probe query (0 = the dutlint default).
	SATConflictBudget uint64
	// Allow is the parsed allowlist, or nil.
	Allow *dutlint.Allowlist
}

// dutlintOptions maps the harness options onto the analyzer's own.
func (o LintDUTOptions) dutlintOptions() dutlint.Options {
	return dutlint.Options{
		MaxPaths:          o.MaxPaths,
		MaxTime:           o.Budget,
		NoQueryCache:      o.Cache.Disabled(),
		NoTermRewrites:    o.Rewrite.Disabled(),
		Obs:               o.Obs,
		SATProbe:          o.SATProbe,
		SATConflictBudget: o.SATConflictBudget,
	}
}

// LintDUT lints one core by name ("microrv32" or "pipecore"), using each
// core's repaired configuration — the pre-flight question is "is the
// translated model structurally sound", so the known-buggy shipped
// configuration is not the default subject. Unknown names return nil.
func LintDUT(name string, o LintDUTOptions) *dutlint.Report {
	var dut dutlint.DUT
	switch name {
	case "microrv32":
		dut = dutlint.MicroRV32(microrv32.FixedConfig(), o.NumRegs)
	case "pipecore":
		dut = dutlint.Pipecore(pipecore.Config{}, o.NumRegs)
	default:
		return nil
	}
	return dutlint.Run(dut, o.dutlintOptions(), o.Allow)
}

// LintDUTCores resolves a -core flag value to the core list to lint:
// "both" (or "") expands to every supported core.
func LintDUTCores(flag string) []string {
	switch flag {
	case "", "both", "all":
		return []string{"microrv32", "pipecore"}
	default:
		return []string{flag}
	}
}
