package harness

import (
	"fmt"
	"sort"
	"strings"

	"symriscv/internal/core"
	"symriscv/internal/riscv"
	"symriscv/internal/smt"
)

// CoverageReport summarises which instructions a generated test set
// exercises — the paper's "high coverage test set" claim made measurable.
type CoverageReport struct {
	ByMnemonic map[string]int // mnemonic -> number of vectors containing it
	Vectors    int
	Distinct   int
}

// Coverage decodes every instruction word of every test vector (the
// imem_* inputs) and tallies mnemonic coverage. Findings can be included by
// converting them with FindingInputs.
func Coverage(vectors []smt.MapEnv) *CoverageReport {
	rep := &CoverageReport{ByMnemonic: make(map[string]int)}
	for _, v := range vectors {
		rep.Vectors++
		seen := map[string]bool{}
		for name, val := range v {
			if !strings.HasPrefix(name, "imem_") {
				continue
			}
			mn := riscv.Decode(uint32(val)).Mn.String()
			if !seen[mn] {
				seen[mn] = true
				rep.ByMnemonic[mn]++
			}
		}
	}
	rep.Distinct = len(rep.ByMnemonic)
	return rep
}

// TestSetInputs extracts the input environments from an exploration report
// (test vectors plus findings), ready for Coverage.
func TestSetInputs(rep *core.Report) []smt.MapEnv {
	out := make([]smt.MapEnv, 0, len(rep.TestVectors)+len(rep.Findings))
	for _, tv := range rep.TestVectors {
		out = append(out, tv.Inputs)
	}
	for _, f := range rep.Findings {
		if f.Inputs != nil {
			out = append(out, f.Inputs)
		}
	}
	return out
}

// Format renders the coverage table, most-covered first.
func (r *CoverageReport) Format() string {
	type entry struct {
		mn string
		n  int
	}
	entries := make([]entry, 0, len(r.ByMnemonic))
	for mn, n := range r.ByMnemonic {
		entries = append(entries, entry{mn, n})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].n != entries[j].n {
			return entries[i].n > entries[j].n
		}
		return entries[i].mn < entries[j].mn
	})
	var b strings.Builder
	fmt.Fprintf(&b, "Test-set instruction coverage: %d vectors, %d distinct mnemonics\n", r.Vectors, r.Distinct)
	for _, e := range entries {
		fmt.Fprintf(&b, "  %-10s %6d\n", e.mn, e.n)
	}
	return b.String()
}
