package harness

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
)

// TestTable1Reproduces checks that the Table I campaign regenerates every
// expected row (the paper's table minus the documented typo rows).
func TestTable1Reproduces(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	res := RunTable1(Table1Options{PerProbeTime: 90 * time.Second})
	got := make(map[string]Table1Row, len(res.Rows))
	for _, row := range res.Rows {
		got[row.Class.Key()] = row
	}
	for _, want := range ExpectedRowKeys() {
		if _, ok := got[want]; !ok {
			t.Errorf("missing Table I row: %s", want)
		}
	}
	t.Logf("\n%s", res.Format())
}

// TestTable2AllFaultsFoundLimit1 checks the headline Table II result: every
// injected error is found at instruction limit 1.
func TestTable2AllFaultsFoundLimit1(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	res := RunTable2(Table2Options{
		PerCellTime: 120 * time.Second,
		Limits:      []int{1},
	})
	for _, row := range res.Rows {
		c := row.Cells[1]
		if !c.Found {
			t.Errorf("%s not found at limit 1 (%d paths, %s)", row.Fault, c.Paths+c.Partial, c.Time)
		}
	}
	t.Logf("\n%s", res.Format())
}

// TestTable2SubsetBothLimits runs a fast subset at both limits to cover the
// two-limit plumbing and the Sum/Median rows.
func TestTable2SubsetBothLimits(t *testing.T) {
	res := RunTable2(Table2Options{
		PerCellTime: 60 * time.Second,
		Faults:      []faults.Fault{faults.E0, faults.E3, faults.E6},
	})
	for _, row := range res.Rows {
		for _, l := range res.Limits {
			if !row.Cells[l].Found {
				t.Errorf("%s not found at limit %d", row.Fault, l)
			}
		}
	}
	found, sum := res.Sum(1)
	if found != 3 || sum.Instr == 0 {
		t.Errorf("sum row broken: found=%d instr=%d", found, sum.Instr)
	}
	med := res.Median(1)
	if med.Instr == 0 {
		t.Error("median row broken")
	}
	out := res.Format()
	if !strings.Contains(out, "Sum:") || !strings.Contains(out, "Median:") {
		t.Error("format missing summary rows")
	}
}

func TestClassifierRowOrderCovers(t *testing.T) {
	// Every expected key must have a rank inside the paper order list.
	for _, k := range ExpectedRowKeys() {
		found := false
		for _, o := range paperRowOrder {
			if o == k {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected key %s missing from paper order", k)
		}
	}
}

func TestLongRunSmoke(t *testing.T) {
	res := LongRun(LongRunOptions{Common: Common{Workers: 1, Budget: 2 * time.Second}, InstrLimit: 1, NumRegs: 2})
	if res.Report.Stats.Paths == 0 {
		t.Fatal("long run explored no paths")
	}
	out := res.Format()
	if !strings.Contains(out, "paths (complete)") {
		t.Error("format broken")
	}
}

func TestLimitAblationSmoke(t *testing.T) {
	pts := LimitAblation(LimitAblationOptions{Common: Common{Workers: 1, Budget: 5 * time.Second, MaxPaths: 200}, Limits: []int{1}})
	if len(pts) != 1 || pts[0].Paths == 0 {
		t.Fatalf("limit ablation broken: %+v", pts)
	}
}

// TestBaselineComparison runs the symbolic-vs-fuzzing study on a fast fault
// subset and checks its qualitative shape: symbolic finds everything;
// constrained fuzzing misses the decode fault E0.
func TestBaselineComparison(t *testing.T) {
	res := RunBaseline(BaselineOptions{
		PerCellTime: 30 * time.Second,
		MaxTrials:   5000,
		Faults:      []faults.Fault{faults.E0, faults.E6},
		Seed:        11,
	})
	byFault := map[faults.Fault]BaselineRow{}
	for _, row := range res.Rows {
		byFault[row.Fault] = row
	}
	for _, f := range []faults.Fault{faults.E0, faults.E6} {
		if !byFault[f].SymFound {
			t.Errorf("symbolic execution must find %s", f)
		}
	}
	if byFault[faults.E0].ValidFound {
		t.Error("constrained fuzzing cannot trigger E0 (reserved encoding)")
	}
	if !byFault[faults.E6].ValidFound {
		t.Error("constrained fuzzing should find E6 quickly")
	}
	out := res.Format()
	if !strings.Contains(out, "NOT FOUND") {
		t.Error("format should show the missed fault")
	}
	t.Logf("\n%s", out)
}

// TestLongRunCoverage verifies the "high coverage test set" claim: an
// exhaustive one-instruction exploration must generate test vectors covering
// (nearly) every RV32I+Zicsr mnemonic plus the illegal class.
func TestLongRunCoverage(t *testing.T) {
	res := LongRun(LongRunOptions{Common: Common{Workers: 1, Budget: 60 * time.Second}, InstrLimit: 1, NumRegs: 2})
	if !res.Report.Exhausted {
		t.Skip("exploration not exhausted within budget; coverage claim not assessable")
	}
	cov := Coverage(TestSetInputs(res.Report))
	if cov.Vectors == 0 {
		t.Fatal("no vectors")
	}
	// Expect every executable mnemonic to appear (47 incl. "invalid").
	if cov.Distinct < 44 {
		t.Fatalf("coverage too low: %d distinct mnemonics\n%s", cov.Distinct, cov.Format())
	}
	for _, must := range []string{"add", "sub", "lw", "sw", "beq", "jal", "jalr", "csrrw", "wfi", "ecall", "invalid", "slli"} {
		if cov.ByMnemonic[must] == 0 {
			t.Errorf("mnemonic %s not covered", must)
		}
	}
	t.Logf("coverage: %d vectors, %d distinct mnemonics", cov.Vectors, cov.Distinct)
}

func TestRegSliceAblationSmoke(t *testing.T) {
	res := RegAblation(RegAblationOptions{Common: Common{Workers: 1, Budget: 10 * time.Second, MaxPaths: 400}, RegCounts: []int{2, 4}})
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Points[0].Paths == 0 || !res.Points[0].FoundE6 {
		t.Fatalf("2-register point broken: %+v", res.Points[0])
	}
	if res.Points[1].Paths <= res.Points[0].Paths {
		t.Errorf("path count should grow with the symbolic slice: %d vs %d",
			res.Points[1].Paths, res.Points[0].Paths)
	}
	if !strings.Contains(res.Format(), "SymbolicRegs") {
		t.Error("format broken")
	}
}

func TestTable2JSONRoundTrip(t *testing.T) {
	res := RunTable2(Table2Options{
		PerCellTime: 30 * time.Second,
		Limits:      []int{1},
		Faults:      []faults.Fault{faults.E6},
	})
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Table2Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || !back.Rows[0].Cells[1].Found {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestTable2ParallelMatchesSequential(t *testing.T) {
	opts := Table2Options{
		PerCellTime: 60 * time.Second,
		Limits:      []int{1},
		Faults:      []faults.Fault{faults.E5, faults.E6},
	}
	seq := RunTable2(opts)
	opts.Parallel = 2
	par := RunTable2(opts)
	for i := range seq.Rows {
		s, p := seq.Rows[i].Cells[1], par.Rows[i].Cells[1]
		if s.Found != p.Found || s.Instr != p.Instr || s.Paths != p.Paths {
			t.Errorf("%s: parallel diverges: %+v vs %+v", seq.Rows[i].Fault, s, p)
		}
	}
}

// TestTable1FixedConfigIsClean is the regression view of Table I: with every
// shipped bug repaired (fixed core, fixed VP) and CSR generation excluded —
// the paper's own recipe for filtering the inherent CSR-surface and timing
// mismatches (§V-B) — the probe campaign must produce zero rows.
func TestTable1FixedConfigIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	issCfg := iss.FixedConfig()
	coreCfg := microrv32.FixedConfig()
	res := RunTable1(Table1Options{
		PerProbeTime: 60 * time.Second,
		ISSConfig:    &issCfg,
		CoreConfig:   &coreCfg,
		Probes: []Probe{
			{Name: "loads", Filter: cosim.OnlyOpcode(riscv.OpLoad), Limit: 1},
			{Name: "stores", Filter: cosim.OnlyOpcode(riscv.OpStore), Limit: 1},
			{Name: "all-no-system", Filter: cosim.BlockSystemInstructions, Limit: 1},
			{Name: "all-no-system-l2", Filter: cosim.BlockSystemInstructions, Limit: 2},
		},
		PerProbeMaxPaths: 2000,
	})
	if len(res.Rows) != 0 {
		t.Fatalf("fixed configuration still yields %d rows:\n%s", len(res.Rows), res.Format())
	}
}

// TestTable1CSRMismatchesAreInherent documents the complement: even on the
// fixed pair, the CSR probes still surface the implementation differences
// the paper classifies as mismatches by design (abstract-vs-cycle-accurate
// counters, the VP's larger CSR surface).
func TestTable1CSRMismatchesAreInherent(t *testing.T) {
	issCfg := iss.FixedConfig()
	coreCfg := microrv32.FixedConfig()
	res := RunTable1(Table1Options{
		PerProbeTime: 60 * time.Second,
		ISSConfig:    &issCfg,
		CoreConfig:   &coreCfg,
		Probes:       []Probe{{Name: "system", Filter: cosim.OnlyOpcode(riscv.OpSystem), Limit: 1}},
	})
	found := map[string]bool{}
	for _, row := range res.Rows {
		found[row.Class.Key()] = true
	}
	for _, want := range []string{
		"mcycle|Cycle Count Mismatch",
		"minstret|Cycle Count Mismatch",
	} {
		if !found[want] {
			t.Errorf("inherent mismatch %s not surfaced:\n%s", want, res.Format())
		}
	}
}
