package harness

import (
	"fmt"
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/fuzz"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
)

// BaselineRow compares time-to-bug of the symbolic exploration against the
// two fuzzing strategies for one injected fault.
type BaselineRow struct {
	Fault faults.Fault

	SymTime  time.Duration
	SymFound bool

	ValidTrials int
	ValidTime   time.Duration
	ValidFound  bool

	UniformTrials int
	UniformTime   time.Duration
	UniformFound  bool

	MutTrials int
	MutTime   time.Duration
	MutFound  bool
}

// BaselineResult is the symbolic-vs-fuzzing comparison study — the paper's
// §I motivation ("fuzzing is susceptible to miss corner case bugs") made
// measurable on the same co-simulation substrate.
type BaselineResult struct {
	Rows    []BaselineRow
	Budget  time.Duration
	Trials  int
	Elapsed time.Duration
}

// BaselineOptions configure the comparison.
type BaselineOptions struct {
	// Common carries the shared options for the symbolic hunts (the fuzzing
	// campaigns are concrete and single-threaded by construction).
	// Common.Budget provides the per-cell default when PerCellTime is zero.
	Common
	// PerCellTime bounds each hunt (default 20s).
	PerCellTime time.Duration
	// MaxTrials bounds each fuzzing campaign (default 200000).
	MaxTrials int
	// Faults selects the injected errors (default all).
	Faults []faults.Fault
	// Seed seeds the fuzzing campaigns.
	Seed int64
}

// RunBaseline runs the comparison.
func RunBaseline(opt BaselineOptions) *BaselineResult {
	if opt.PerCellTime == 0 {
		opt.PerCellTime = opt.Budget
	}
	if opt.PerCellTime == 0 {
		opt.PerCellTime = 20 * time.Second
	}
	if opt.MaxTrials == 0 {
		opt.MaxTrials = 200000
	}
	if opt.Faults == nil {
		opt.Faults = faults.All()
	}
	start := time.Now()
	res := &BaselineResult{Budget: opt.PerCellTime, Trials: opt.MaxTrials}

	for _, f := range opt.Faults {
		coreCfg := microrv32.FixedConfig()
		coreCfg.Faults = faults.Only(f)
		base := cosim.Config{
			ISS:        iss.FixedConfig(),
			Core:       coreCfg,
			InstrLimit: 1,
		}

		row := BaselineRow{Fault: f}

		symCfg := base
		symCfg.Filter = cosim.BlockSystemInstructions
		t0 := time.Now()
		rep := opt.explore(cosim.RunFunc(symCfg), core.Options{StopOnFirstFinding: true, MaxTime: opt.PerCellTime})
		row.SymFound = len(rep.Findings) > 0
		row.SymTime = time.Since(t0)

		vc := fuzz.Campaign{Seed: opt.Seed + int64(f), Strategy: fuzz.StrategyValid, Base: base}
		vr := vc.Run(opt.MaxTrials, opt.PerCellTime)
		row.ValidFound, row.ValidTrials, row.ValidTime = vr.Found, vr.Trials, vr.Elapsed

		uc := fuzz.Campaign{Seed: opt.Seed + 1000 + int64(f), Strategy: fuzz.StrategyUniform, Base: base}
		ur := uc.Run(opt.MaxTrials, opt.PerCellTime)
		row.UniformFound, row.UniformTrials, row.UniformTime = ur.Found, ur.Trials, ur.Elapsed

		mc := fuzz.MutationCampaign{Seed: opt.Seed + 2000 + int64(f), Base: base}
		mr := mc.Run(opt.MaxTrials, opt.PerCellTime)
		row.MutFound, row.MutTrials, row.MutTime = mr.Found, mr.Trials, mr.Elapsed

		res.Rows = append(res.Rows, row)
	}
	res.Elapsed = time.Since(start)
	return res
}

// Format renders the comparison table.
func (r *BaselineResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Symbolic execution vs fuzzing baselines (budget %s or %d trials per cell)\n",
		r.Budget, r.Trials)
	fmt.Fprintf(&b, "%-6s | %-14s | %-26s | %-26s | %-26s\n", "Error", "symbolic", "constrained-valid fuzzing", "uniform-random fuzzing", "coverage-guided mutation")
	fmt.Fprintf(&b, "%-6s | %-14s | %-26s | %-26s | %-26s\n", "", "time-to-bug", "trials / time", "trials / time", "trials / time")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 110))
	cell := func(found bool, trials int, d time.Duration) string {
		if !found {
			return fmt.Sprintf("NOT FOUND (%d trials)", trials)
		}
		return fmt.Sprintf("%d / %s", trials, fmtDur(d))
	}
	for _, row := range r.Rows {
		sym := "NOT FOUND"
		if row.SymFound {
			sym = fmtDur(row.SymTime)
		}
		fmt.Fprintf(&b, "%-6s | %-14s | %-26s | %-26s | %-26s\n",
			row.Fault, sym,
			cell(row.ValidFound, row.ValidTrials, row.ValidTime),
			cell(row.UniformFound, row.UniformTrials, row.UniformTime),
			cell(row.MutFound, row.MutTrials, row.MutTime))
	}
	return b.String()
}
