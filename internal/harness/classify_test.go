package harness

import (
	"testing"

	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

func TestClassifyRows(t *testing.T) {
	cases := []struct {
		name string
		m    rvfi.Mismatch
		want RowClass
	}{
		{
			"misaligned load",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, ISSTrap: true, Insn: riscv.LW(0, 0, 1)},
			RowClass{"LW", "Missing alignment check", VerdictMismatch},
		},
		{
			"misaligned store",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, ISSTrap: true, Insn: riscv.SH(0, 0, 1)},
			RowClass{"SH", "Missing alignment check", VerdictMismatch},
		},
		{
			"wfi",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, RTLTrap: true, Insn: riscv.WFI()},
			RowClass{"WFI", "Missing WFI instruction", VerdictRTLError},
		},
		{
			"unknown csr",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, ISSTrap: true, Insn: riscv.CSRRW(0, 0x400, 0)},
			RowClass{"unimpl. CSRs", "Missing trap at access", VerdictRTLError},
		},
		{
			"readonly id write",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, ISSTrap: true, Insn: riscv.CSRRW(0, riscv.CSRMArchID, 1)},
			RowClass{"marchid", "Missing trap at write", VerdictRTLError},
		},
		{
			"vp mideleg read",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, ISSTrap: true, Insn: riscv.CSRRS(1, riscv.CSRMIdeleg, 0)},
			RowClass{"mideleg", "VP traps at mideleg read", VerdictISSError},
		},
		{
			"counter write trap",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, RTLTrap: true, Insn: riscv.CSRRW(0, riscv.CSRMCycle, 0)},
			RowClass{"mcycle", "Trap at write access", VerdictRTLError},
		},
		{
			"cycle count",
			rvfi.Mismatch{Kind: rvfi.RdMismatch, Insn: riscv.CSRRS(1, riscv.CSRMInstret, 0)},
			RowClass{"minstret", "Cycle Count Mismatch", VerdictMismatch},
		},
		{
			"unprivileged counter",
			rvfi.Mismatch{Kind: rvfi.RdMismatch, Insn: riscv.CSRRS(1, riscv.CSRTime, 0)},
			RowClass{"time", "unimpl. Unprivileged CSR", VerdictMismatch},
		},
		{
			"unprivileged counter via write trap",
			rvfi.Mismatch{Kind: rvfi.TrapMismatch, ISSTrap: true, Insn: riscv.CSRRW(0, riscv.CSRTimeH, 1)},
			RowClass{"timeh", "unimpl. Unprivileged CSR", VerdictMismatch},
		},
		{
			"hpm range",
			rvfi.Mismatch{Kind: rvfi.RdMismatch, Insn: riscv.CSRRW(1, riscv.CSRMHpmCounterBase+16, 2)},
			RowClass{"mhpmcounter3-31", "unimpl. Privileged CSR", VerdictMismatch},
		},
		{
			"hpm high range",
			rvfi.Mismatch{Kind: rvfi.RdMismatch, Insn: riscv.CSRRW(1, riscv.CSRMHpmCounterHBase+3, 2)},
			RowClass{"mhpmcounter3-31h", "unimpl. Privileged CSR", VerdictMismatch},
		},
		{
			"hpm event range",
			rvfi.Mismatch{Kind: rvfi.RdMismatch, Insn: riscv.CSRRW(1, riscv.CSRMHpmEventBase+16, 2)},
			RowClass{"mhpmevent3-31", "unimpl. Privileged CSR", VerdictMismatch},
		},
		{
			"mscratch",
			rvfi.Mismatch{Kind: rvfi.RdMismatch, Insn: riscv.CSRRW(1, riscv.CSRMScratch, 2)},
			RowClass{"mscratch", "unimpl. Privileged CSR", VerdictMismatch},
		},
		{
			"generic alu fallback",
			rvfi.Mismatch{Kind: rvfi.RdMismatch, Insn: riscv.ADDI(1, 1, 1)},
			RowClass{"ADDI", "rd-mismatch", VerdictMismatch},
		},
	}
	for _, tc := range cases {
		got := Classify(&tc.m)
		if got != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestRowRankOrdering(t *testing.T) {
	lw := RowClass{"LW", "Missing alignment check", VerdictMismatch}
	wfi := RowClass{"WFI", "Missing WFI instruction", VerdictRTLError}
	unknown := RowClass{"something", "else", VerdictMismatch}
	if rowRank(lw) >= rowRank(wfi) {
		t.Error("LW must sort before WFI (paper order)")
	}
	if rowRank(unknown) != len(paperRowOrder) {
		t.Error("unknown rows must sort last")
	}
}
