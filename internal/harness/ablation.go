package harness

import (
	"fmt"
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
)

// AblationPoint is one configuration of the register-slicing ablation: the
// paper notes the non-optimised (fully symbolic) register file pushes the
// exploration beyond 30 days, motivating the sliced design (§IV-C.3).
type AblationPoint struct {
	SymbolicRegs int
	Paths        int
	Instr        uint64
	Time         time.Duration
	Exhausted    bool
	FoundE6In    time.Duration // time-to-bug for an injected E6, same config
	FoundE6      bool
}

// AblationResult is the sliced-register ablation study.
type AblationResult struct {
	Points []AblationPoint
	Budget time.Duration
}

// RegAblationOptions configure the sliced-register ablation study.
type RegAblationOptions struct {
	Common
	// RegCounts are the symbolic-register slice sizes to sweep (default
	// 2, 4, 8, 16, 31). Budget bounds each point (default 30s); MaxPaths
	// bounds each sweep (default 3000).
	RegCounts []int
}

// RegAblation measures exploration cost as a function of the
// symbolic-register slice size on a fixed scenario (the OP-IMM class at
// instruction limit 1), plus the time to find an injected E6 bug.
func RegAblation(opt RegAblationOptions) *AblationResult {
	if opt.RegCounts == nil {
		opt.RegCounts = []int{2, 4, 8, 16, 31}
	}
	if opt.Budget == 0 {
		opt.Budget = 30 * time.Second
	}
	if opt.MaxPaths == 0 {
		opt.MaxPaths = 3000
	}
	// The E6 hunt stops on the first finding; only the time budget applies.
	hunt := opt.Common
	hunt.MaxPaths = 0
	res := &AblationResult{Budget: opt.Budget}

	for _, n := range opt.RegCounts {
		pt := AblationPoint{SymbolicRegs: n}

		// Exhaustive-ish sweep of the OP-IMM class.
		cfg := cosim.Config{
			ISS:             iss.FixedConfig(),
			Core:            microrv32.FixedConfig(),
			Filter:          cosim.OnlyOpcode(riscv.OpImm),
			NumSymbolicRegs: n,
			InstrLimit:      1,
		}
		rep := opt.explore(cosim.RunFunc(cfg), core.Options{})
		pt.Paths = rep.Stats.Paths
		pt.Instr = rep.Stats.Instructions
		pt.Time = rep.Stats.Elapsed
		pt.Exhausted = rep.Exhausted

		// Time-to-bug for E6 under the same slicing.
		coreCfg := microrv32.FixedConfig()
		coreCfg.Faults = faults.Only(faults.E6)
		huntCfg := cosim.Config{
			ISS:             iss.FixedConfig(),
			Core:            coreCfg,
			Filter:          cosim.BlockSystemInstructions,
			NumSymbolicRegs: n,
			InstrLimit:      1,
		}
		t0 := time.Now()
		hrep := hunt.explore(cosim.RunFunc(huntCfg), core.Options{StopOnFirstFinding: true})
		pt.FoundE6 = len(hrep.Findings) > 0
		pt.FoundE6In = time.Since(t0)

		res.Points = append(res.Points, pt)
	}
	return res
}

// Format renders the ablation table.
func (r *AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sliced symbolic registers ablation (OP-IMM class, instruction limit 1, budget %s/point)\n", r.Budget)
	fmt.Fprintf(&b, "%-14s %8s %12s %10s %10s %12s\n", "SymbolicRegs", "Paths", "Instr", "Time", "Exhausted", "E6 found in")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 72))
	for _, p := range r.Points {
		e6 := "not found"
		if p.FoundE6 {
			e6 = fmtDur(p.FoundE6In)
		}
		fmt.Fprintf(&b, "%-14d %8d %12d %10s %10v %12s\n",
			p.SymbolicRegs, p.Paths, p.Instr, fmtDur(p.Time), p.Exhausted, e6)
	}
	return b.String()
}

// LimitAblationPoint measures exploration growth with the instruction limit.
type LimitAblationPoint struct {
	Limit     int
	Paths     int
	Instr     uint64
	Time      time.Duration
	Exhausted bool
}

// LimitAblationOptions configure the instruction-limit ablation study.
type LimitAblationOptions struct {
	Common
	// Limits are the instruction limits to sweep (default 1, 2). Budget
	// bounds each point (default 30s); MaxPaths bounds each sweep
	// (default 3000).
	Limits []int
}

// LimitAblation quantifies the state-space growth from instruction limit
// 1 to higher limits on the matched baseline (Table II discussion: "the
// instruction limit should be set as low as possible").
func LimitAblation(opt LimitAblationOptions) []LimitAblationPoint {
	if opt.Limits == nil {
		opt.Limits = []int{1, 2}
	}
	if opt.Budget == 0 {
		opt.Budget = 30 * time.Second
	}
	if opt.MaxPaths == 0 {
		opt.MaxPaths = 3000
	}
	var out []LimitAblationPoint
	for _, l := range opt.Limits {
		cfg := cosim.Config{
			ISS:        iss.FixedConfig(),
			Core:       microrv32.FixedConfig(),
			Filter:     cosim.Filters(cosim.BlockSystemInstructions, cosim.OnlyOpcode(riscv.OpReg)),
			InstrLimit: l,
		}
		rep := opt.explore(cosim.RunFunc(cfg), core.Options{})
		out = append(out, LimitAblationPoint{
			Limit:     l,
			Paths:     rep.Stats.Paths,
			Instr:     rep.Stats.Instructions,
			Time:      rep.Stats.Elapsed,
			Exhausted: rep.Exhausted,
		})
	}
	return out
}

// FormatLimitAblation renders the instruction-limit ablation table.
func FormatLimitAblation(points []LimitAblationPoint) string {
	var b strings.Builder
	b.WriteString("Instruction-limit ablation (OP class, matched baseline)\n")
	fmt.Fprintf(&b, "%-7s %8s %12s %10s %10s\n", "Limit", "Paths", "Instr", "Time", "Exhausted")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 52))
	for _, p := range points {
		fmt.Fprintf(&b, "%-7d %8d %12d %10s %10v\n", p.Limit, p.Paths, p.Instr, fmtDur(p.Time), p.Exhausted)
	}
	return b.String()
}
