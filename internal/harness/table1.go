package harness

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/pipecore"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

// Probe is one constrained exploration scenario of the Table I campaign —
// the paper's "depending on the test scenario, klee_assume is used to
// constrain the instruction generation".
type Probe struct {
	Name   string
	Filter cosim.InstrFilter
	Limit  int // instruction limit (trace length)
}

// csrProbe constrains generation to CSRRW on one specific CSR; with a trace
// length of 2 this is the write-then-read-back probe that exposes CSRs the
// ISS implements as storage but the RTL core lacks.
func csrProbe(name string, addr uint16) Probe {
	return Probe{
		Name:   name,
		Filter: cosim.OnlyMasked(0xfff0707f, uint32(addr)<<20|uint32(riscv.F3CSRRW)<<12|riscv.OpSystem),
		Limit:  2,
	}
}

// DefaultProbesFor returns the scenario list for the selected core: the full
// CSR write/read-back catalogue for microrv32, and the opcode-class probes
// for the pipelined core — pipecore has no CSR file, every SYSTEM access
// traps at decode, so the storage read-back probes collapse into the system
// scenario.
func DefaultProbesFor(kind cosim.CoreKind) []Probe {
	if kind == cosim.CorePipecore {
		return []Probe{
			{Name: "loads", Filter: cosim.OnlyOpcode(riscv.OpLoad), Limit: 1},
			{Name: "stores", Filter: cosim.OnlyOpcode(riscv.OpStore), Limit: 1},
			{Name: "system", Filter: cosim.OnlyOpcode(riscv.OpSystem), Limit: 1},
		}
	}
	return DefaultProbes()
}

// DefaultProbes is the scenario list of the microrv32 Table I campaign.
func DefaultProbes() []Probe {
	return []Probe{
		{Name: "loads", Filter: cosim.OnlyOpcode(riscv.OpLoad), Limit: 1},
		{Name: "stores", Filter: cosim.OnlyOpcode(riscv.OpStore), Limit: 1},
		{Name: "system", Filter: cosim.OnlyOpcode(riscv.OpSystem), Limit: 1},
		csrProbe("mscratch", riscv.CSRMScratch),
		csrProbe("mcounteren", riscv.CSRMCounteren),
		csrProbe("mhpmcounter16", riscv.CSRMHpmCounterBase+16),
		csrProbe("mhpmcounter3h", riscv.CSRMHpmCounterHBase+3),
		csrProbe("mhpmevent16", riscv.CSRMHpmEventBase+16),
	}
}

// Table1Row is one regenerated row of Table I.
type Table1Row struct {
	Class   RowClass
	Example string // disassembled concrete witness
	Word    uint32
	Probe   string
}

// Table1Result is the regenerated Table I plus campaign statistics.
type Table1Result struct {
	Rows    []Table1Row
	Stats   core.Stats
	Elapsed time.Duration
}

// Table1Options configure the campaign budgets.
type Table1Options struct {
	// PerProbeTime bounds each probe's exploration (default 60s).
	PerProbeTime time.Duration
	// PerProbeMaxPaths bounds each probe's path count (default 5000).
	PerProbeMaxPaths int
	// Probes overrides the default scenario list.
	Probes []Probe
	// ISSConfig / CoreConfig override the model behaviours (defaults: the
	// as-shipped VP and MicroRV32 — the paper's case study). Passing the
	// fixed configurations turns the campaign into a regression check that
	// must produce zero rows.
	ISSConfig  *iss.Config
	CoreConfig *microrv32.Config
	// Common carries the shared campaign options (workers, ablation
	// toggles, observability). Common.Budget / Common.MaxPaths provide the
	// per-probe defaults when the fields above are zero.
	Common
}

func (o Table1Options) withDefaults() Table1Options {
	if o.PerProbeTime == 0 {
		o.PerProbeTime = o.Budget
	}
	if o.PerProbeTime == 0 {
		o.PerProbeTime = 60 * time.Second
	}
	if o.PerProbeMaxPaths == 0 {
		o.PerProbeMaxPaths = o.MaxPaths
	}
	if o.PerProbeMaxPaths == 0 {
		o.PerProbeMaxPaths = 5000
	}
	if o.Probes == nil {
		o.Probes = DefaultProbesFor(o.Common.Core)
	}
	return o
}

// RunTable1 regenerates Table I: it explores each probe scenario on the
// selected device under test and classifies every checker mismatch into its
// table row, deduplicating per row identity. On microrv32 the campaign
// reproduces the paper's setup — the as-shipped core against the as-shipped
// VP ISS; on pipecore — which has no as-shipped variant — the clean core runs
// against the fixed ISS, so the rows catalogue the pipelined core's genuine
// spec gaps (Zicsr, WFI, MRET) rather than VP idiosyncrasies.
func RunTable1(opt Table1Options) *Table1Result {
	opt = opt.withDefaults()
	start := time.Now()
	res := &Table1Result{}
	seen := make(map[string]bool)

	issCfg := iss.VPConfig()
	if opt.Common.Core == cosim.CorePipecore {
		issCfg = iss.FixedConfig()
	}
	if opt.ISSConfig != nil {
		issCfg = *opt.ISSConfig
	}
	coreCfg := microrv32.ShippedConfig()
	if opt.CoreConfig != nil {
		coreCfg = *opt.CoreConfig
	}
	for _, probe := range opt.Probes {
		cfg := cosim.Config{
			ISS:        issCfg,
			Filter:     probe.Filter,
			InstrLimit: probe.Limit,
			DUTCore:    opt.Common.Core,
		}
		if opt.Common.Core == cosim.CorePipecore {
			cfg.Pipe = pipecore.Config{}
		} else {
			cfg.Core = coreCfg
		}
		rep := opt.explore(cosim.RunFunc(cfg), core.Options{
			MaxTime:  opt.PerProbeTime,
			MaxPaths: opt.PerProbeMaxPaths,
		})
		res.Stats.Paths += rep.Stats.Paths
		res.Stats.Completed += rep.Stats.Completed
		res.Stats.Partial += rep.Stats.Partial
		res.Stats.Infeasible += rep.Stats.Infeasible
		res.Stats.Instructions += rep.Stats.Instructions
		res.Stats.SolverQueries += rep.Stats.SolverQueries

		for _, f := range rep.Findings {
			var m *rvfi.Mismatch
			if !errors.As(f.Err, &m) {
				continue
			}
			class := ClassifyFor(opt.Common.Core, m)
			if seen[class.Key()] {
				continue
			}
			seen[class.Key()] = true
			res.Rows = append(res.Rows, Table1Row{
				Class:   class,
				Example: m.Disasm,
				Word:    m.Insn,
				Probe:   probe.Name,
			})
		}
	}

	sort.SliceStable(res.Rows, func(i, j int) bool {
		ri, rj := rowRank(res.Rows[i].Class), rowRank(res.Rows[j].Class)
		if ri != rj {
			return ri < rj
		}
		// Rows beyond the paper's catalogue all share the sentinel rank;
		// order them by class key so the table does not depend on probe
		// discovery order.
		return res.Rows[i].Class.Key() < res.Rows[j].Class.Key()
	})
	res.Elapsed = time.Since(start)
	return res
}

// paperRowOrder fixes the rendering order to the paper's Table I sequence.
var paperRowOrder = []string{
	"LW|Missing alignment check",
	"LH|Missing alignment check",
	"LHU|Missing alignment check",
	"SW|Missing alignment check",
	"SH|Missing alignment check",
	"SB|Missing alignment check",
	"WFI|Missing WFI instruction",
	"unimpl. CSRs|Missing trap at access",
	"marchid|Missing trap at write",
	"mvendorid|Missing trap at write",
	"mhartid|Missing trap at write",
	"mimpid|Missing trap at write",
	"mideleg|VP traps at mideleg read",
	"medeleg|VP traps at medeleg read",
	"mip|Trap at write access",
	"mcycle|Trap at write access",
	"mcycle|Cycle Count Mismatch",
	"minstret|Trap at write access",
	"minstret|Cycle Count Mismatch",
	"mcycleh|Trap at write access",
	"minstreth|Trap at write access",
	"cycle|unimpl. Unprivileged CSR",
	"cycleh|unimpl. Unprivileged CSR",
	"instret|unimpl. Unprivileged CSR",
	"instreth|unimpl. Unprivileged CSR",
	"time|unimpl. Unprivileged CSR",
	"timeh|unimpl. Unprivileged CSR",
	"mhpmcounter3-31|unimpl. Privileged CSR",
	"mhpmcounter3-31h|unimpl. Privileged CSR",
	"mhpmevent3-31|unimpl. Privileged CSR",
	"mscratch|unimpl. Privileged CSR",
	"mcounteren|unimpl. Privileged CSR",
}

func rowRank(rc RowClass) int {
	key := rc.Key()
	for i, k := range paperRowOrder {
		if k == key {
			return i
		}
	}
	return len(paperRowOrder)
}

// ExpectedRowKeys returns the row identities this reproduction is expected
// to regenerate (the paper's Table I minus the "SHU" typo row — see
// DESIGN.md).
func ExpectedRowKeys() []string {
	out := make([]string, 0, len(paperRowOrder))
	for _, k := range paperRowOrder {
		switch k {
		case "SB|Missing alignment check", "mimpid|Missing trap at write":
			// SB cannot be misaligned; mimpid is not listed in the paper.
			continue
		}
		out = append(out, k)
	}
	return out
}

// Format renders the regenerated table in the paper's column layout.
func (r *Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — co-simulation results: errors (E) and mismatches (M) in MicroRV32 and the VP (E*)\n")
	fmt.Fprintf(&b, "%-18s %-34s %-28s %s\n", "Instruction & CSR", "Example", "Description", "R")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 86))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %-34s %-28s %s\n", row.Class.Subject, row.Example, row.Class.Desc, row.Class.R)
	}
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 86))
	fmt.Fprintf(&b, "rows=%d  %v\n", len(r.Rows), r.Stats)
	return b.String()
}
