package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/pipecore"
)

// Table2Cell is one (fault, instruction-limit) experiment outcome.
type Table2Cell struct {
	Found   bool
	Instr   uint64 // executed instructions until the error was found
	Time    time.Duration
	Partial int // partially explored paths
	Paths   int // completely explored paths
}

// Table2Row is one injected error across both instruction limits.
type Table2Row struct {
	Fault faults.Fault
	Cells map[int]Table2Cell // keyed by instruction limit
}

// Table2Result is the regenerated Table II.
type Table2Result struct {
	Limits  []int
	Rows    []Table2Row
	Elapsed time.Duration
}

// Table2Options configure the error-injection campaign.
type Table2Options struct {
	// PerCellTime is the exploration budget per (fault, limit) cell — the
	// paper used 24 hours on a Xeon server; seconds suffice here (default 60s).
	PerCellTime time.Duration
	// Limits are the instruction limits to evaluate (default 1 and 2).
	Limits []int
	// Faults selects the injected errors. The default is core-dependent:
	// E0–E9 for microrv32, E0–E14 for the pipelined core (which additionally
	// implements the hazard/forwarding/control series).
	Faults []faults.Fault
	// Search selects the exploration strategy (default DFS). The paper's
	// per-fault effort ordering is searcher-dependent; random-path makes
	// that visible.
	Search core.SearchStrategy
	// Seed seeds the random-path strategy.
	Seed int64
	// Parallel runs up to this many (fault, limit) cells concurrently; each
	// cell owns its explorer, term context and solver, so cells are fully
	// independent. 0 or 1 runs sequentially.
	Parallel int
	// Common carries the shared campaign options. Common.Core selects the
	// device under test; Common.Workers splits within a cell — orthogonal to
	// Parallel, which spreads cells — and also helps when a single slow cell
	// dominates the campaign. Common.Budget provides the per-cell default
	// when PerCellTime is zero.
	Common
}

func (o Table2Options) withDefaults() Table2Options {
	if o.PerCellTime == 0 {
		o.PerCellTime = o.Budget
	}
	if o.PerCellTime == 0 {
		o.PerCellTime = 60 * time.Second
	}
	if o.Limits == nil {
		o.Limits = []int{1, 2}
	}
	if o.Faults == nil {
		if o.Common.Core == cosim.CorePipecore {
			o.Faults = faults.All()
		} else {
			o.Faults = faults.Base()
		}
	}
	return o
}

// RunTable2 regenerates Table II: for each injected error and instruction
// limit it explores the clean matched baseline plus that single fault, with
// SYSTEM-opcode generation blocked (the paper's assumption filtering of the
// known CSR mismatches), until the voter reports the first mismatch.
func RunTable2(opt Table2Options) *Table2Result {
	opt = opt.withDefaults()
	start := time.Now()
	res := &Table2Result{Limits: opt.Limits}

	type cellKey struct {
		fault faults.Fault
		limit int
	}
	type job struct {
		key cellKey
	}
	workers := opt.Parallel
	if workers < 1 {
		workers = 1
	}

	jobs := make(chan job)
	results := make(map[cellKey]Table2Cell, len(opt.Faults)*len(opt.Limits))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cell := runTable2Cell(j.key.fault, j.key.limit, opt)
				mu.Lock()
				results[j.key] = cell
				mu.Unlock()
			}
		}()
	}
	for _, f := range opt.Faults {
		for _, limit := range opt.Limits {
			jobs <- job{cellKey{f, limit}}
		}
	}
	close(jobs)
	wg.Wait()

	for _, f := range opt.Faults {
		row := Table2Row{Fault: f, Cells: make(map[int]Table2Cell, len(opt.Limits))}
		for _, limit := range opt.Limits {
			row.Cells[limit] = results[cellKey{f, limit}]
		}
		res.Rows = append(res.Rows, row)
	}
	res.Elapsed = time.Since(start)
	return res
}

func runTable2Cell(f faults.Fault, limit int, opt Table2Options) Table2Cell {
	cfg := cosim.Config{
		ISS:        iss.FixedConfig(),
		Filter:     cosim.BlockSystemInstructions,
		InstrLimit: limit,
		DUTCore:    opt.Common.Core,
	}
	if opt.Common.Core == cosim.CorePipecore {
		cfg.Pipe = pipecore.Config{Faults: faults.Only(f)}
	} else {
		coreCfg := microrv32.FixedConfig()
		coreCfg.Faults = faults.Only(f)
		cfg.Core = coreCfg
	}
	t0 := time.Now()
	rep := opt.explore(cosim.RunFunc(cfg), core.Options{
		StopOnFirstFinding: true,
		MaxTime:            opt.PerCellTime,
		Search:             opt.Search,
		Seed:               opt.Seed,
	})
	return Table2Cell{
		Found:   len(rep.Findings) > 0,
		Instr:   rep.Stats.Instructions,
		Time:    time.Since(t0),
		Partial: rep.Stats.Partial,
		Paths:   rep.Stats.Completed,
	}
}

// Sum aggregates the found/instr/time/path columns for one limit, as in the
// paper's Sum row.
func (r *Table2Result) Sum(limit int) (found int, cell Table2Cell) {
	for _, row := range r.Rows {
		c := row.Cells[limit]
		if c.Found {
			found++
		}
		cell.Instr += c.Instr
		cell.Time += c.Time
		cell.Partial += c.Partial
		cell.Paths += c.Paths
	}
	cell.Found = found == len(r.Rows)
	return found, cell
}

// Median computes the per-column medians for one limit, as in the paper's
// Median row.
func (r *Table2Result) Median(limit int) Table2Cell {
	n := len(r.Rows)
	if n == 0 {
		return Table2Cell{}
	}
	instr := make([]uint64, 0, n)
	times := make([]time.Duration, 0, n)
	partials := make([]int, 0, n)
	paths := make([]int, 0, n)
	for _, row := range r.Rows {
		c := row.Cells[limit]
		instr = append(instr, c.Instr)
		times = append(times, c.Time)
		partials = append(partials, c.Partial)
		paths = append(paths, c.Paths)
	}
	sort.Slice(instr, func(i, j int) bool { return instr[i] < instr[j] })
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	sort.Ints(partials)
	sort.Ints(paths)
	return Table2Cell{
		Instr:   medianU64(instr),
		Time:    time.Duration(medianU64(asU64(times))),
		Partial: int(medianU64(intsU64(partials))),
		Paths:   int(medianU64(intsU64(paths))),
	}
}

func asU64(d []time.Duration) []uint64 {
	out := make([]uint64, len(d))
	for i, v := range d {
		out[i] = uint64(v)
	}
	return out
}

func intsU64(d []int) []uint64 {
	out := make([]uint64, len(d))
	for i, v := range d {
		out[i] = uint64(v)
	}
	return out
}

func medianU64(v []uint64) uint64 {
	n := len(v)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// Format renders the table in the paper's layout (result, executed
// instructions, time, partial paths, complete paths per instruction limit,
// plus Sum and Median rows).
func (r *Table2Result) Format() string {
	var b strings.Builder
	b.WriteString("Table II — injected error results\n")
	fmt.Fprintf(&b, "%-7s", "Error")
	for _, l := range r.Limits {
		fmt.Fprintf(&b, " | %-52s", fmt.Sprintf("Instruction Limit: %d", l))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-7s", "")
	for range r.Limits {
		fmt.Fprintf(&b, " | %-5s %12s %9s %10s %8s", "Found", "#Exec.Instr.", "Time", "Part.Paths", "Paths")
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 7+len(r.Limits)*56) + "\n")

	writeCell := func(c Table2Cell, foundStr string) string {
		return fmt.Sprintf(" | %-5s %12d %9s %10d %8d",
			foundStr, c.Instr, fmtDur(c.Time), c.Partial, c.Paths)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-7s", row.Fault)
		for _, l := range r.Limits {
			c := row.Cells[l]
			fs := "no"
			if c.Found {
				fs = "yes"
			}
			b.WriteString(writeCell(c, fs))
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("-", 7+len(r.Limits)*56) + "\n")
	fmt.Fprintf(&b, "%-7s", "Sum:")
	for _, l := range r.Limits {
		found, sum := r.Sum(l)
		b.WriteString(writeCell(sum, fmt.Sprintf("%d/%d", found, len(r.Rows))))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-7s", "Median:")
	for _, l := range r.Limits {
		b.WriteString(writeCell(r.Median(l), "-"))
	}
	b.WriteByte('\n')
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
