package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/qstore"
)

// storeWorkload is the bounded exploration used by the store equivalence
// tests: small enough to be quick, big enough to populate the cache.
func storeWorkload() (core.RunFunc, core.Options) {
	cfg := cosim.Config{
		ISS:             iss.VPConfig(),
		Core:            microrv32.ShippedConfig(),
		InstrLimit:      1,
		NumSymbolicRegs: 1,
	}
	return cosim.RunFunc(cfg), core.Options{MaxPaths: 120}
}

// deterministicKey flattens a report's deterministic fields — the contract
// that must not move with store state (absent, cold, warm, corrupted).
func deterministicKey(t *testing.T, r *core.Report) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, "paths=%d completed=%d partial=%d infeasible=%d queries=%d exhausted=%v\n",
		r.Stats.Paths, r.Stats.Completed, r.Stats.Partial, r.Stats.Infeasible,
		r.Stats.SolverQueries, r.Exhausted)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "finding path=%d class=%s\n", f.Path, findingClass(f.Err))
	}
	return b.String()
}

// TestStoreEquivalence pins the tentpole contract: the same bounded
// exploration reports byte-identical deterministic fields with no store, a
// cold store, a warm store, and a corrupted store — while the warm run
// answers part of its queries from disk (StoreHits > 0, fewer SAT-core
// queries than the cold run).
func TestStoreEquivalence(t *testing.T) {
	run, opts := storeWorkload()
	dir := t.TempDir()
	key := qstore.VersionKey("test=store-equivalence")

	// A: no store at all.
	a := ExploreWith(run, ExploreOptions{Common: Common{Workers: 1}, Opts: opts})
	wantKey := deterministicKey(t, a)

	// B: cold store — populates it.
	sessB, err := qstore.OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	b := ExploreWith(run, ExploreOptions{Common: Common{Workers: 1, Store: sessB}, Opts: opts})
	if err := sessB.Close(); err != nil {
		t.Fatal(err)
	}
	if got := deterministicKey(t, b); got != wantKey {
		t.Fatalf("cold-store report diverged:\n%s\nvs\n%s", got, wantKey)
	}
	if st := sessB.Stats(); st.Persisted == 0 {
		t.Fatalf("cold run persisted nothing: %+v", st)
	}

	// C: warm store — must hit it and skip SAT-core work.
	sessC, err := qstore.OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if st := sessC.Stats(); st.Loaded == 0 {
		t.Fatalf("warm session loaded nothing: %+v", st)
	}
	c := ExploreWith(run, ExploreOptions{Common: Common{Workers: 1, Store: sessC}, Opts: opts})
	if err := sessC.Close(); err != nil {
		t.Fatal(err)
	}
	if got := deterministicKey(t, c); got != wantKey {
		t.Fatalf("warm-store report diverged:\n%s\nvs\n%s", got, wantKey)
	}
	if c.Stats.Cache.StoreHits == 0 {
		t.Fatal("warm run reported no store hits")
	}
	if c.Stats.CDCLQueries >= a.Stats.CDCLQueries {
		t.Fatalf("warm run did not reduce SAT-core queries: warm %d, cold %d",
			c.Stats.CDCLQueries, a.Stats.CDCLQueries)
	}

	// D: corrupted store — damage is skipped and counted, never fatal, and
	// the report still does not move.
	segs, err := filepath.Glob(filepath.Join(dir, "*.qseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to corrupt: %v", err)
	}
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	sessD, err := qstore.OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if st := sessD.Stats(); st.CorruptRecords == 0 {
		t.Fatalf("truncated segment not counted: %+v", st)
	}
	d := ExploreWith(run, ExploreOptions{Common: Common{Workers: 1, Store: sessD}, Opts: opts})
	if err := sessD.Close(); err != nil {
		t.Fatal(err)
	}
	if got := deterministicKey(t, d); got != wantKey {
		t.Fatalf("corrupted-store report diverged:\n%s\nvs\n%s", got, wantKey)
	}
}

// TestStoreParallelEquivalence checks that the persistent store composes
// with the sharded orchestrator: a warm parallel run reports the same
// deterministic fields as the sequential baseline and still hits the store.
func TestStoreParallelEquivalence(t *testing.T) {
	run, opts := storeWorkload()
	dir := t.TempDir()
	key := qstore.VersionKey("test=store-parallel")

	seq := ExploreWith(run, ExploreOptions{Common: Common{Workers: 1}, Opts: opts})
	wantKey := deterministicKey(t, seq)

	sess, err := qstore.OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	warmup := ExploreWith(run, ExploreOptions{Common: Common{Workers: 1, Store: sess}, Opts: opts})
	if got := deterministicKey(t, warmup); got != wantKey {
		t.Fatalf("store warmup diverged:\n%s\nvs\n%s", got, wantKey)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	sess2, err := qstore.OpenSession(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	par := ExploreWith(run, ExploreOptions{Common: Common{Workers: 3, Store: sess2}, Opts: opts})
	if err := sess2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := deterministicKey(t, par); got != wantKey {
		t.Fatalf("warm parallel report diverged:\n%s\nvs\n%s", got, wantKey)
	}
	if par.Stats.Cache.StoreHits == 0 {
		t.Fatal("warm parallel run reported no store hits")
	}
}

// pipeStoreWorkload is the pipecore twin of storeWorkload.
func pipeStoreWorkload() (core.RunFunc, core.Options) {
	cfg := cosim.Config{
		ISS:             iss.FixedConfig(),
		Filter:          cosim.BlockSystemInstructions,
		DUTCore:         cosim.CorePipecore,
		InstrLimit:      1,
		NumSymbolicRegs: 1,
	}
	return cosim.RunFunc(cfg), core.Options{MaxPaths: 120}
}

// TestStoreCoreSeparation pins the version-key contract of the -core flag:
// store entries persisted for one DUT must never answer queries for the
// other (the cores build different formulas, so a cross-core hit would be a
// silent soundness hole). A directory warmed by a microrv32 campaign yields
// zero store hits and an unchanged report for pipecore; reopening under the
// microrv32 key still reuses the original entries.
func TestStoreCoreSeparation(t *testing.T) {
	microRun, microOpts := storeWorkload()
	pipeRun, pipeOpts := pipeStoreWorkload()
	dir := t.TempDir()
	microKey := qstore.VersionKey("test=core-separation", "core=microrv32")
	pipeKey := qstore.VersionKey("test=core-separation", "core=pipecore")

	wantPipe := deterministicKey(t, ExploreWith(pipeRun,
		ExploreOptions{Common: Common{Workers: 1}, Opts: pipeOpts}))
	wantMicro := deterministicKey(t, ExploreWith(microRun,
		ExploreOptions{Common: Common{Workers: 1}, Opts: microOpts}))

	// Warm the shared directory from the microrv32 campaign.
	warm, err := qstore.OpenSession(dir, microKey)
	if err != nil {
		t.Fatal(err)
	}
	ExploreWith(microRun, ExploreOptions{Common: Common{Workers: 1, Store: warm}, Opts: microOpts})
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Persisted == 0 {
		t.Fatalf("microrv32 warmup persisted nothing: %+v", st)
	}

	// The pipecore campaign over the same directory must skip those segments
	// entirely: nothing loaded, nothing hit, report identical to store-less.
	cross, err := qstore.OpenSession(dir, pipeKey)
	if err != nil {
		t.Fatal(err)
	}
	if st := cross.Stats(); st.Loaded != 0 || st.OtherSegments == 0 {
		t.Fatalf("pipecore session sees microrv32 entries: %+v", st)
	}
	rep := ExploreWith(pipeRun, ExploreOptions{Common: Common{Workers: 1, Store: cross}, Opts: pipeOpts})
	if err := cross.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Cache.StoreHits != 0 {
		t.Fatalf("pipecore run hit microrv32 store entries %d times", rep.Stats.Cache.StoreHits)
	}
	if got := deterministicKey(t, rep); got != wantPipe {
		t.Fatalf("cross-core store changed the pipecore report:\n%s\nvs\n%s", got, wantPipe)
	}

	// Same-core reuse must still work beside the foreign segments.
	again, err := qstore.OpenSession(dir, microKey)
	if err != nil {
		t.Fatal(err)
	}
	if st := again.Stats(); st.Loaded == 0 {
		t.Fatalf("microrv32 session no longer loads its own entries: %+v", st)
	}
	rep = ExploreWith(microRun, ExploreOptions{Common: Common{Workers: 1, Store: again}, Opts: microOpts})
	if err := again.Close(); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Cache.StoreHits == 0 {
		t.Fatal("warm microrv32 run reported no store hits")
	}
	if got := deterministicKey(t, rep); got != wantMicro {
		t.Fatalf("warm microrv32 report diverged:\n%s\nvs\n%s", got, wantMicro)
	}
}

// TestLongRunUnboundedBudget pins the normalized zero-value contract:
// Budget 0 means unbounded (the exploration is stopped by other bounds or
// exhaustion), not a silent 30-second default.
func TestLongRunUnboundedBudget(t *testing.T) {
	res := LongRun(LongRunOptions{
		Common:     Common{Workers: 1, Budget: 0, MaxPaths: 5},
		InstrLimit: 1,
		NumRegs:    1,
	})
	if res.Budget != 0 {
		t.Fatalf("LongRun rewrote Budget 0 to %v", res.Budget)
	}
	if res.Report.Stats.Paths != 5 {
		t.Fatalf("path bound ignored: explored %d paths", res.Report.Stats.Paths)
	}
	if out := res.Format(); !strings.Contains(out, "budget unbounded") {
		t.Fatalf("Format does not render the unbounded budget:\n%s", out)
	}
}

// TestCommonWarnings pins the portfolio/workers interaction note.
func TestCommonWarnings(t *testing.T) {
	if ws := (Common{Workers: 1, Portfolio: On}).Warnings(); len(ws) != 1 ||
		!strings.Contains(ws[0], "-portfolio") {
		t.Fatalf("want one portfolio warning, got %q", ws)
	}
	for _, c := range []Common{
		{Workers: 2, Portfolio: On},
		{Workers: 1},
		{Workers: 1, Portfolio: Off},
	} {
		if ws := c.Warnings(); len(ws) != 0 {
			t.Fatalf("unexpected warnings for %+v: %q", c, ws)
		}
	}
}
