package harness

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/qstore"
	"symriscv/internal/rvfi"
	"symriscv/internal/sat"
)

// BenchOptions configure the exploration benchmark (symv bench).
type BenchOptions struct {
	// Common carries the shared options. Workers is the parallel column
	// compared against workers=1 (defaults to GOMAXPROCS, floored at 2 so
	// the sharded orchestrator is always exercised even on a single-core
	// host); Budget bounds each throughput measurement (default 10s); the
	// Cache / Rewrite toggles apply to every measurement (symv bench
	// -cache=off -rewrite=off).
	Common
	// HuntTime bounds each per-fault time-to-bug measurement (default 30s).
	HuntTime time.Duration
	// Faults are the time-to-bug targets (default E1, E5, E6 — a cheap, a
	// mid-cost and an expensive bug per Table II).
	Faults []faults.Fault
	// InstrLimit / NumRegs fix the throughput workload (defaults 1 and 2,
	// the longrun configuration).
	InstrLimit int
	NumRegs    int
	// CacheAblation additionally runs the bounded cache-on/cache-off
	// equivalence check (always on under symv bench -quick): the same
	// path-bounded workload must report identical paths, engine queries and
	// findings with the elimination layer on and off.
	CacheAblation bool
	// AblationMaxPaths bounds the equivalence workload (default 400 paths).
	AblationMaxPaths int
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Workers <= 1 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.Budget == 0 {
		o.Budget = 10 * time.Second
	}
	if o.HuntTime == 0 {
		o.HuntTime = 30 * time.Second
	}
	if o.Faults == nil {
		o.Faults = []faults.Fault{faults.E1, faults.E5, faults.E6}
	}
	if o.InstrLimit == 0 {
		o.InstrLimit = 1
	}
	if o.NumRegs == 0 {
		o.NumRegs = 2
	}
	if o.AblationMaxPaths == 0 {
		o.AblationMaxPaths = 400
	}
	return o
}

// BenchThroughput is one budgeted comprehensive-exploration measurement.
type BenchThroughput struct {
	Workers int
	// InstrLimit is this row's workload depth; Fork records whether fork-point
	// checkpointing was active for the row.
	InstrLimit     int
	Fork           bool
	Paths          int
	Completed      int
	Instructions   uint64
	SolverQueries  uint64
	ElapsedSeconds float64
	PathsPerSec    float64
	QueriesPerSec  float64
	// Speedup is this row's paths/sec relative to the same-limit workers=1
	// row with the same fork setting (the parallel-scaling column).
	Speedup float64
	// ForkSpeedup is this row's paths/sec relative to the same-limit
	// same-workers fork-off row (what checkpointing buys); 0 when no such
	// row was measured.
	ForkSpeedup float64

	// Fork-point checkpointing telemetry: snapshots captured, sibling paths
	// resumed from one, and prefix events those resumes did not replay.
	ForkSnapshots     uint64
	ForkResumes       uint64
	ReplayEventsSaved uint64

	// Query-elimination telemetry: how many engine queries reached the SAT
	// core and how the rest were answered (see internal/querycache).
	CDCLQueries    uint64
	Eliminated     uint64
	StackHits      uint64
	ExactHits      uint64
	SubsetSat      uint64
	SupersetUnsat  uint64
	SlicedQueries  uint64
	SlicedDropped  uint64
	RewriteHits    uint64
	SolverUnknowns uint64
	// StoreHits counts eliminations answered by entries that came from the
	// persistent store (symv -store); zero without one or on a cold store.
	StoreHits uint64

	// SAT-core internals (summed over all workers' solvers): how much work
	// the CDCL search itself did, and what inprocessing removed.
	SAT sat.Stats
}

// fillTelemetry copies the query-elimination counters out of a report.
func (t *BenchThroughput) fillTelemetry(s core.Stats) {
	t.CDCLQueries = s.CDCLQueries
	t.Eliminated = s.Cache.Eliminated()
	t.StackHits = s.Cache.StackHits
	t.ExactHits = s.Cache.ExactHits
	t.SubsetSat = s.Cache.SubsetSat
	t.SupersetUnsat = s.Cache.SupersetUnsat
	t.SlicedQueries = s.Cache.SlicedQueries
	t.SlicedDropped = s.Cache.SlicedDropped
	t.RewriteHits = s.RewriteHits
	t.SolverUnknowns = s.SolverUnknowns
	t.StoreHits = s.Cache.StoreHits
	t.SAT = s.SAT
	t.ForkSnapshots = s.ForkSnapshots
	t.ForkResumes = s.ForkResumes
	t.ReplayEventsSaved = s.ReplayEventsSaved
}

// BenchHunt is one per-fault time-to-bug measurement.
type BenchHunt struct {
	Fault         string
	Workers       int
	Found         bool
	TimeToBugSecs float64
	Paths         int
	SolverQueries uint64
	CDCLQueries   uint64
	Eliminated    uint64
}

// BenchAblation is the bounded cache-on/cache-off equivalence check: the same
// MaxPaths-bounded workload, explored sequentially with and without the
// query-elimination layer, must report identical paths, engine queries and
// findings (the determinism contract), while the CDCL counts quantify what
// the layer removes.
type BenchAblation struct {
	MaxPaths int
	Match    bool
	Mismatch string `json:",omitempty"`

	Paths         int
	Completed     int
	Findings      int
	SolverQueries uint64
	CDCLOn        uint64
	CDCLOff       uint64
	// ReductionPct is the share of SAT-core queries the layer removed.
	ReductionPct float64
	// StoreHits counts cache-on eliminations answered from the persistent
	// store. On a warm store the bounded cache-on run re-answers prior
	// campaigns' queries without the SAT core, so CDCLOn drops below a cold
	// run's while every deterministic field stays identical.
	StoreHits uint64
}

// BenchSolverConfig is one row of the solver-equivalence matrix: the same
// bounded workload explored under one SAT-core configuration.
type BenchSolverConfig struct {
	Name      string
	Workers   int
	Inprocess bool
	Portfolio bool
	Fork      bool

	Paths         int
	Completed     int
	Infeasible    int
	Findings      int
	SolverQueries uint64
	CDCLQueries   uint64
	SAT           sat.Stats
}

// BenchSolverAblation is the solver-configuration equivalence check: the
// bounded workload must report identical deterministic fields (paths, engine
// queries, findings) whether inprocessing is on or off, with or without the
// portfolio, at workers 1, 2 and 4 — the SAT core only ever changes how fast
// answers arrive, never which answers.
type BenchSolverAblation struct {
	MaxPaths int
	Match    bool
	Mismatch string `json:",omitempty"`
	Configs  []BenchSolverConfig
}

// BenchReport is the JSON document emitted by symv bench.
type BenchReport struct {
	GOMAXPROCS int
	NumCPU     int
	BudgetSecs float64
	InstrLimit int
	NumRegs    int
	// CacheOff / RewriteOff record the ablation state the measurements ran
	// under (symv bench -cache=off -rewrite=off).
	CacheOff   bool `json:",omitempty"`
	RewriteOff bool `json:",omitempty"`
	Throughput []BenchThroughput
	Hunts      []BenchHunt
	Ablation   *BenchAblation       `json:",omitempty"`
	SolverMat  *BenchSolverAblation `json:",omitempty"`
	// Store summarises the persistent witness store session (symv bench
	// -store DIR): entries loaded/persisted and damage skipped. Telemetry
	// only — never part of determinism comparisons.
	Store *qstore.SessionStats `json:",omitempty"`
}

// RunBench measures exploration throughput (paths/sec, solver queries/sec on
// the longrun workload) and per-fault time-to-bug (the Table II cell) at
// workers=1 and workers=N, quantifying what the sharded orchestrator buys on
// this machine.
func RunBench(opt BenchOptions) *BenchReport {
	opt = opt.withDefaults()
	rep := &BenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BudgetSecs: opt.Budget.Seconds(),
		InstrLimit: opt.InstrLimit,
		NumRegs:    opt.NumRegs,
		CacheOff:   opt.Cache.Disabled(),
		RewriteOff: opt.Rewrite.Disabled(),
	}

	// Throughput matrix: per instruction limit, a workers=1 fork-off row, a
	// workers=1 fork-on row (ForkSpeedup = what checkpointing buys at equal
	// parallelism) and a workers=N fork-on row (Speedup = parallel scaling on
	// top). Limit 2 always rides along when the base limit is shallower: the
	// replayed prefixes are longest there, so it is where checkpointing shows.
	limits := []int{opt.InstrLimit}
	if opt.InstrLimit != 2 {
		limits = append(limits, 2)
	}
	for _, limit := range limits {
		type leg struct {
			workers int
			forkOff bool
		}
		for _, l := range []leg{{1, true}, {1, false}, {opt.Workers, false}} {
			cfg := cosim.Config{
				ISS:             iss.VPConfig(),
				Core:            microrv32.ShippedConfig(),
				InstrLimit:      limit,
				NumSymbolicRegs: opt.NumRegs,
			}
			c := opt.Common
			c.Workers = l.workers
			if l.forkOff {
				c.Fork = Off
			}
			r := c.explore(cosim.RunFunc(cfg), core.Options{MaxTime: opt.Budget})
			row := BenchThroughput{
				Workers:        l.workers,
				InstrLimit:     limit,
				Fork:           !(l.forkOff || c.Fork.Disabled()),
				Paths:          r.Stats.Paths,
				Completed:      r.Stats.Completed,
				Instructions:   r.Stats.Instructions,
				SolverQueries:  r.Stats.SolverQueries,
				ElapsedSeconds: r.Stats.Elapsed.Seconds(),
			}
			row.fillTelemetry(r.Stats)
			if row.ElapsedSeconds > 0 {
				row.PathsPerSec = float64(row.Paths) / row.ElapsedSeconds
				row.QueriesPerSec = float64(row.SolverQueries) / row.ElapsedSeconds
			}
			row.Speedup = 1
			if base := findThroughput(rep.Throughput, limit, 1, row.Fork); base != nil && base.PathsPerSec > 0 {
				row.Speedup = row.PathsPerSec / base.PathsPerSec
			}
			if base := findThroughput(rep.Throughput, limit, row.Workers, false); base != nil && base.PathsPerSec > 0 && row.Fork {
				row.ForkSpeedup = row.PathsPerSec / base.PathsPerSec
			}
			rep.Throughput = append(rep.Throughput, row)
		}
	}

	for _, f := range opt.Faults {
		for _, w := range []int{1, opt.Workers} {
			coreCfg := microrv32.FixedConfig()
			coreCfg.Faults = faults.Only(f)
			cfg := cosim.Config{
				ISS:        iss.FixedConfig(),
				Core:       coreCfg,
				Filter:     cosim.BlockSystemInstructions,
				InstrLimit: opt.InstrLimit,
			}
			c := opt.Common
			c.Workers = w
			t0 := time.Now()
			r := c.explore(cosim.RunFunc(cfg), core.Options{
				StopOnFirstFinding: true,
				MaxTime:            opt.HuntTime,
			})
			rep.Hunts = append(rep.Hunts, BenchHunt{
				Fault:         f.String(),
				Workers:       w,
				Found:         len(r.Findings) > 0,
				TimeToBugSecs: time.Since(t0).Seconds(),
				Paths:         r.Stats.Paths,
				SolverQueries: r.Stats.SolverQueries,
				CDCLQueries:   r.Stats.CDCLQueries,
				Eliminated:    r.Stats.Cache.Eliminated(),
			})
		}
	}

	if opt.CacheAblation {
		rep.Ablation = runCacheAblation(opt)
		rep.SolverMat = runSolverAblation(opt)
	}
	if opt.Store != nil {
		st := opt.Store.Stats()
		rep.Store = &st
	}
	return rep
}

// runSolverAblation explores the bounded equivalence workload under every
// interesting SAT-core configuration and cross-checks the deterministic
// report contract against the defaults (same comparison set as the cache
// ablation: path counts, engine query counts, findings by path and class).
func runSolverAblation(opt BenchOptions) *BenchSolverAblation {
	cfg := cosim.Config{
		ISS:             iss.VPConfig(),
		Core:            microrv32.ShippedConfig(),
		InstrLimit:      opt.InstrLimit,
		NumSymbolicRegs: opt.NumRegs,
	}
	bounded := core.Options{MaxPaths: opt.AblationMaxPaths, Obs: opt.Obs}
	if opt.Store != nil {
		bounded.SharedCache = opt.Store.Shared()
	}

	type variant struct {
		name      string
		workers   int
		inprocess bool
		portfolio bool
		noFork    bool
	}
	// The fork-off rows double as the in-process fork-checkpointing
	// equivalence check: the same bounded workload must report identical
	// deterministic fields whether siblings resume from snapshots or replay
	// their full decision prefix, sequentially and sharded.
	variants := []variant{
		{"defaults w1", 1, true, false, false},
		{"inprocess-off w1", 1, false, false, false},
		{"portfolio w2", 2, true, true, false},
		{"portfolio w4", 4, true, true, false},
		{"fork-off w1", 1, true, false, true},
		{"fork-off w2", 2, true, false, true},
		{"fork-off w4", 4, true, false, true},
	}

	mat := &BenchSolverAblation{MaxPaths: opt.AblationMaxPaths, Match: true}
	fail := func(format string, args ...any) {
		mat.Match = false
		if mat.Mismatch == "" {
			mat.Mismatch = fmt.Sprintf(format, args...)
		}
	}
	var base *core.Report
	var baseFindings []string
	for _, v := range variants {
		o := bounded
		o.NoInprocessing = !v.inprocess
		o.Portfolio = v.portfolio
		// A global -fork off pins every row to replay (the fork-off rows then
		// check plain worker-count equivalence instead of resume-vs-replay).
		o.NoFork = v.noFork || opt.Fork.Disabled()
		r := exploreWorkers(cosim.RunFunc(cfg), o, v.workers)
		mat.Configs = append(mat.Configs, BenchSolverConfig{
			Name:          v.name,
			Workers:       v.workers,
			Inprocess:     v.inprocess,
			Portfolio:     v.portfolio,
			Fork:          !o.NoFork,
			Paths:         r.Stats.Paths,
			Completed:     r.Stats.Completed,
			Infeasible:    r.Stats.Infeasible,
			Findings:      len(r.Findings),
			SolverQueries: r.Stats.SolverQueries,
			CDCLQueries:   r.Stats.CDCLQueries,
			SAT:           r.Stats.SAT,
		})
		keys := make([]string, len(r.Findings))
		for i, f := range r.Findings {
			keys[i] = fmt.Sprintf("path %d: %s", f.Path, findingClass(f.Err))
		}
		opt.Store.Checkpoint()
		if base == nil {
			base, baseFindings = r, keys
			continue
		}
		if r.Stats.Paths != base.Stats.Paths {
			fail("%s: paths differ: %d vs %d", v.name, r.Stats.Paths, base.Stats.Paths)
		}
		if r.Stats.Completed != base.Stats.Completed {
			fail("%s: completed paths differ: %d vs %d", v.name, r.Stats.Completed, base.Stats.Completed)
		}
		if r.Stats.Infeasible != base.Stats.Infeasible {
			fail("%s: infeasible counts differ: %d vs %d", v.name, r.Stats.Infeasible, base.Stats.Infeasible)
		}
		if r.Stats.SolverQueries != base.Stats.SolverQueries {
			fail("%s: engine query counts differ: %d vs %d", v.name, r.Stats.SolverQueries, base.Stats.SolverQueries)
		}
		if len(keys) != len(baseFindings) {
			fail("%s: finding counts differ: %d vs %d", v.name, len(keys), len(baseFindings))
			continue
		}
		for i := range keys {
			if keys[i] != baseFindings[i] {
				fail("%s: finding %d differs: %s vs %s", v.name, i, keys[i], baseFindings[i])
				break
			}
		}
	}
	return mat
}

// runCacheAblation runs the bounded equivalence workload twice (elimination
// layer on, then off) and cross-checks the deterministic report contract.
// The shared Cache toggle and Budget deliberately do not apply: the check is
// about the on/off pair, and a wall-time bound would make the two bounded
// workloads diverge on a loaded machine.
func runCacheAblation(opt BenchOptions) *BenchAblation {
	cfg := cosim.Config{
		ISS:             iss.VPConfig(),
		Core:            microrv32.ShippedConfig(),
		InstrLimit:      opt.InstrLimit,
		NumSymbolicRegs: opt.NumRegs,
	}
	bounded := core.Options{MaxPaths: opt.AblationMaxPaths, Obs: opt.Obs}
	onOpts := bounded
	if opt.Store != nil {
		// The cache-on leg attaches to the persistent store: on a warm store
		// it re-answers prior campaigns' queries without the SAT core, which
		// is exactly what CDCLOn measures. The cache-off leg never touches it.
		onOpts.SharedCache = opt.Store.Shared()
	}
	on := exploreWorkers(cosim.RunFunc(cfg), onOpts, 1)
	opt.Store.Checkpoint()
	offOpts := bounded
	offOpts.NoQueryCache = true
	off := exploreWorkers(cosim.RunFunc(cfg), offOpts, 1)

	ab := &BenchAblation{
		MaxPaths:      opt.AblationMaxPaths,
		Match:         true,
		Paths:         on.Stats.Paths,
		Completed:     on.Stats.Completed,
		Findings:      len(on.Findings),
		SolverQueries: on.Stats.SolverQueries,
		CDCLOn:        on.Stats.CDCLQueries,
		CDCLOff:       off.Stats.CDCLQueries,
		StoreHits:     on.Stats.Cache.StoreHits,
	}
	if ab.CDCLOff > 0 {
		ab.ReductionPct = 100 * float64(ab.CDCLOff-ab.CDCLOn) / float64(ab.CDCLOff)
	}

	fail := func(format string, args ...any) {
		ab.Match = false
		if ab.Mismatch == "" {
			ab.Mismatch = fmt.Sprintf(format, args...)
		}
	}
	if on.Stats.Paths != off.Stats.Paths {
		fail("paths differ: cache-on %d, cache-off %d", on.Stats.Paths, off.Stats.Paths)
	}
	if on.Stats.Completed != off.Stats.Completed {
		fail("completed paths differ: cache-on %d, cache-off %d", on.Stats.Completed, off.Stats.Completed)
	}
	if on.Stats.Infeasible != off.Stats.Infeasible {
		fail("infeasible counts differ: cache-on %d, cache-off %d", on.Stats.Infeasible, off.Stats.Infeasible)
	}
	if on.Stats.SolverQueries != off.Stats.SolverQueries {
		fail("engine query counts differ: cache-on %d, cache-off %d", on.Stats.SolverQueries, off.Stats.SolverQueries)
	}
	if len(on.Findings) != len(off.Findings) {
		fail("finding counts differ: cache-on %d, cache-off %d", len(on.Findings), len(off.Findings))
	} else {
		for i := range on.Findings {
			a, b := on.Findings[i], off.Findings[i]
			// Witness values are any-model (they depend on solver internals,
			// not cache state), so findings compare by path index and mismatch
			// class — the same contract the parexplore equivalence tests use.
			if a.Path != b.Path || findingClass(a.Err) != findingClass(b.Err) {
				fail("finding %d differs: cache-on (path %d) %s, cache-off (path %d) %s",
					i, a.Path, findingClass(a.Err), b.Path, findingClass(b.Err))
				break
			}
		}
	}
	return ab
}

// findingClass maps a finding to its deterministic comparison key: the
// mismatch classification for co-simulation voter findings, the rendered
// error otherwise.
func findingClass(err error) string {
	var m *rvfi.Mismatch
	if errors.As(err, &m) {
		return Classify(m).Key()
	}
	return err.Error()
}

// findThroughput returns the already-measured row for (limit, workers, fork)
// — the speedup baselines of the throughput matrix — or nil.
func findThroughput(rows []BenchThroughput, limit, workers int, fork bool) *BenchThroughput {
	for i := range rows {
		r := &rows[i]
		if r.InstrLimit == limit && r.Workers == workers && r.Fork == fork {
			return r
		}
	}
	return nil
}

// Format renders the benchmark report as a human-readable table.
func (r *BenchReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Exploration benchmark (GOMAXPROCS=%d, %d CPU, longrun workload: limit %d, %d symbolic regs, %.0fs/point)\n",
		r.GOMAXPROCS, r.NumCPU, r.InstrLimit, r.NumRegs, r.BudgetSecs)
	if r.CacheOff || r.RewriteOff {
		fmt.Fprintf(&b, "ablation: cache=%s rewrite=%s\n", onOff(!r.CacheOff), onOff(!r.RewriteOff))
	}
	fmt.Fprintf(&b, "%-6s %-5s %-5s %8s %10s %12s %10s %10s %12s %8s %8s\n",
		"Limit", "Work", "Fork", "Paths", "Complete", "Queries", "CDCL", "Elim", "Paths/s", "Speedup", "ForkSpd")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 104))
	for _, t := range r.Throughput {
		forkSpd := "      -"
		if t.ForkSpeedup > 0 {
			forkSpd = fmt.Sprintf("%7.2fx", t.ForkSpeedup)
		}
		fmt.Fprintf(&b, "%-6d %-5d %-5s %8d %10d %12d %10d %10d %12.1f %7.2fx %s\n",
			t.InstrLimit, t.Workers, onOff(t.Fork), t.Paths, t.Completed, t.SolverQueries,
			t.CDCLQueries, t.Eliminated, t.PathsPerSec, t.Speedup, forkSpd)
	}
	for _, t := range r.Throughput {
		fmt.Fprintf(&b, "  cache l=%d w=%d fork=%s: stack=%d exact=%d subset=%d superset=%d sliced=%d(-%d) rewrites=%d unknowns=%d store=%d\n",
			t.InstrLimit, t.Workers, onOff(t.Fork), t.StackHits, t.ExactHits, t.SubsetSat, t.SupersetUnsat,
			t.SlicedQueries, t.SlicedDropped, t.RewriteHits, t.SolverUnknowns, t.StoreHits)
	}
	for _, t := range r.Throughput {
		s := t.SAT
		fmt.Fprintf(&b, "  sat   l=%d w=%d fork=%s: props=%d conflicts=%d decisions=%d restarts=%d learnt=%d(-%d) subsumed=%d strengthened=%d elim=%d(+%d back)\n",
			t.InstrLimit, t.Workers, onOff(t.Fork), s.Propagations, s.Conflicts, s.Decisions, s.Restarts,
			s.Learnt, s.Removed, s.Subsumed, s.Strengthened, s.Eliminated, s.Restored)
	}
	for _, t := range r.Throughput {
		if t.ForkSnapshots == 0 && t.ForkResumes == 0 {
			continue
		}
		fmt.Fprintf(&b, "  fork  l=%d w=%d: snapshots=%d resumes=%d replay-events-saved=%d\n",
			t.InstrLimit, t.Workers, t.ForkSnapshots, t.ForkResumes, t.ReplayEventsSaved)
	}
	if len(r.Hunts) > 0 {
		b.WriteString("\nTime-to-bug (matched baseline + injected fault, stop on first finding)\n")
		fmt.Fprintf(&b, "%-7s %-8s %-6s %12s %8s %12s %10s %10s\n",
			"Fault", "Workers", "Found", "Time", "Paths", "Queries", "CDCL", "Elim")
		fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 80))
		for _, h := range r.Hunts {
			found := "no"
			if h.Found {
				found = "yes"
			}
			fmt.Fprintf(&b, "%-7s %-8d %-6s %11.2fs %8d %12d %10d %10d\n",
				h.Fault, h.Workers, found, h.TimeToBugSecs, h.Paths, h.SolverQueries, h.CDCLQueries, h.Eliminated)
		}
	}
	if a := r.Ablation; a != nil {
		verdict := "MATCH"
		if !a.Match {
			verdict = "MISMATCH: " + a.Mismatch
		}
		fmt.Fprintf(&b, "\nCache ablation (MaxPaths=%d, workers=1): %s\n", a.MaxPaths, verdict)
		fmt.Fprintf(&b, "  paths=%d completed=%d findings=%d engine queries=%d\n",
			a.Paths, a.Completed, a.Findings, a.SolverQueries)
		fmt.Fprintf(&b, "  SAT-core queries: %d (cache off) -> %d (cache on), %.1f%% eliminated\n",
			a.CDCLOff, a.CDCLOn, a.ReductionPct)
		if a.StoreHits > 0 {
			fmt.Fprintf(&b, "  store hits: %d\n", a.StoreHits)
		}
	}
	if m := r.SolverMat; m != nil {
		verdict := "MATCH"
		if !m.Match {
			verdict = "MISMATCH: " + m.Mismatch
		}
		fmt.Fprintf(&b, "\nSolver equivalence matrix (MaxPaths=%d): %s\n", m.MaxPaths, verdict)
		for _, c := range m.Configs {
			fmt.Fprintf(&b, "  %-18s w=%d inprocess=%s portfolio=%s fork=%s: paths=%d completed=%d findings=%d queries=%d cdcl=%d conflicts=%d\n",
				c.Name, c.Workers, onOff(c.Inprocess), onOff(c.Portfolio), onOff(c.Fork),
				c.Paths, c.Completed, c.Findings, c.SolverQueries, c.CDCLQueries, c.SAT.Conflicts)
		}
	}
	if r.Store != nil {
		fmt.Fprintf(&b, "\n%s\n", r.Store.Summary())
	}
	return b.String()
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}
