package harness

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
)

// BenchOptions configure the exploration benchmark (symv bench).
type BenchOptions struct {
	// Workers is the parallel column compared against workers=1; defaults
	// to GOMAXPROCS, floored at 2 so the sharded orchestrator is always
	// exercised even on a single-core host.
	Workers int
	// Budget bounds each throughput measurement (default 10s).
	Budget time.Duration
	// HuntTime bounds each per-fault time-to-bug measurement (default 30s).
	HuntTime time.Duration
	// Faults are the time-to-bug targets (default E1, E5, E6 — a cheap, a
	// mid-cost and an expensive bug per Table II).
	Faults []faults.Fault
	// InstrLimit / NumRegs fix the throughput workload (defaults 1 and 2,
	// the longrun configuration).
	InstrLimit int
	NumRegs    int
}

func (o BenchOptions) withDefaults() BenchOptions {
	if o.Workers <= 1 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.Budget == 0 {
		o.Budget = 10 * time.Second
	}
	if o.HuntTime == 0 {
		o.HuntTime = 30 * time.Second
	}
	if o.Faults == nil {
		o.Faults = []faults.Fault{faults.E1, faults.E5, faults.E6}
	}
	if o.InstrLimit == 0 {
		o.InstrLimit = 1
	}
	if o.NumRegs == 0 {
		o.NumRegs = 2
	}
	return o
}

// BenchThroughput is one budgeted comprehensive-exploration measurement.
type BenchThroughput struct {
	Workers        int
	Paths          int
	Completed      int
	Instructions   uint64
	SolverQueries  uint64
	ElapsedSeconds float64
	PathsPerSec    float64
	QueriesPerSec  float64
	// Speedup is this row's paths/sec relative to the workers=1 row.
	Speedup float64
}

// BenchHunt is one per-fault time-to-bug measurement.
type BenchHunt struct {
	Fault         string
	Workers       int
	Found         bool
	TimeToBugSecs float64
	Paths         int
	SolverQueries uint64
}

// BenchReport is the JSON document emitted by symv bench.
type BenchReport struct {
	GOMAXPROCS int
	NumCPU     int
	BudgetSecs float64
	InstrLimit int
	NumRegs    int
	Throughput []BenchThroughput
	Hunts      []BenchHunt
}

// RunBench measures exploration throughput (paths/sec, solver queries/sec on
// the longrun workload) and per-fault time-to-bug (the Table II cell) at
// workers=1 and workers=N, quantifying what the sharded orchestrator buys on
// this machine.
func RunBench(opt BenchOptions) *BenchReport {
	opt = opt.withDefaults()
	rep := &BenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		BudgetSecs: opt.Budget.Seconds(),
		InstrLimit: opt.InstrLimit,
		NumRegs:    opt.NumRegs,
	}

	for _, w := range []int{1, opt.Workers} {
		cfg := cosim.Config{
			ISS:             iss.VPConfig(),
			Core:            microrv32.ShippedConfig(),
			InstrLimit:      opt.InstrLimit,
			NumSymbolicRegs: opt.NumRegs,
		}
		r := Explore(cosim.RunFunc(cfg), core.Options{MaxTime: opt.Budget}, w)
		row := BenchThroughput{
			Workers:        w,
			Paths:          r.Stats.Paths,
			Completed:      r.Stats.Completed,
			Instructions:   r.Stats.Instructions,
			SolverQueries:  r.Stats.SolverQueries,
			ElapsedSeconds: r.Stats.Elapsed.Seconds(),
		}
		if row.ElapsedSeconds > 0 {
			row.PathsPerSec = float64(row.Paths) / row.ElapsedSeconds
			row.QueriesPerSec = float64(row.SolverQueries) / row.ElapsedSeconds
		}
		if base := firstThroughput(rep.Throughput); base != nil && base.PathsPerSec > 0 {
			row.Speedup = row.PathsPerSec / base.PathsPerSec
		} else {
			row.Speedup = 1
		}
		rep.Throughput = append(rep.Throughput, row)
	}

	for _, f := range opt.Faults {
		for _, w := range []int{1, opt.Workers} {
			coreCfg := microrv32.FixedConfig()
			coreCfg.Faults = faults.Only(f)
			cfg := cosim.Config{
				ISS:        iss.FixedConfig(),
				Core:       coreCfg,
				Filter:     cosim.BlockSystemInstructions,
				InstrLimit: opt.InstrLimit,
			}
			t0 := time.Now()
			r := Explore(cosim.RunFunc(cfg), core.Options{
				StopOnFirstFinding: true,
				MaxTime:            opt.HuntTime,
			}, w)
			rep.Hunts = append(rep.Hunts, BenchHunt{
				Fault:         f.String(),
				Workers:       w,
				Found:         len(r.Findings) > 0,
				TimeToBugSecs: time.Since(t0).Seconds(),
				Paths:         r.Stats.Paths,
				SolverQueries: r.Stats.SolverQueries,
			})
		}
	}
	return rep
}

func firstThroughput(rows []BenchThroughput) *BenchThroughput {
	if len(rows) == 0 {
		return nil
	}
	return &rows[0]
}

// Format renders the benchmark report as a human-readable table.
func (r *BenchReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Exploration benchmark (GOMAXPROCS=%d, %d CPU, longrun workload: limit %d, %d symbolic regs, %.0fs/point)\n",
		r.GOMAXPROCS, r.NumCPU, r.InstrLimit, r.NumRegs, r.BudgetSecs)
	fmt.Fprintf(&b, "%-8s %8s %10s %12s %12s %12s %8s\n",
		"Workers", "Paths", "Complete", "Queries", "Paths/s", "Queries/s", "Speedup")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 76))
	for _, t := range r.Throughput {
		fmt.Fprintf(&b, "%-8d %8d %10d %12d %12.1f %12.1f %7.2fx\n",
			t.Workers, t.Paths, t.Completed, t.SolverQueries, t.PathsPerSec, t.QueriesPerSec, t.Speedup)
	}
	if len(r.Hunts) > 0 {
		b.WriteString("\nTime-to-bug (matched baseline + injected fault, stop on first finding)\n")
		fmt.Fprintf(&b, "%-7s %-8s %-6s %12s %8s %12s\n", "Fault", "Workers", "Found", "Time", "Paths", "Queries")
		fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 58))
		for _, h := range r.Hunts {
			found := "no"
			if h.Found {
				found = "yes"
			}
			fmt.Fprintf(&b, "%-7s %-8d %-6s %11.2fs %8d %12d\n",
				h.Fault, h.Workers, found, h.TimeToBugSecs, h.Paths, h.SolverQueries)
		}
	}
	return b.String()
}
