package harness

import (
	"symriscv/internal/core"
)

// Explore routes one exploration to the sequential explorer (workers <= 1)
// or to the sharded parallel orchestrator.
//
// Deprecated: use ExploreWith, which takes the shared Common options (and
// with them the ablation toggles and the observability sink) as one struct.
func Explore(run core.RunFunc, opts core.Options, workers int) *core.Report {
	return exploreWorkers(run, opts, workers)
}
