package harness

import (
	"symriscv/internal/core"
	"symriscv/internal/parexplore"
)

// Explore routes one exploration to the sequential explorer (workers <= 1)
// or to the sharded parallel orchestrator. Both produce the same Report for
// the same options — parexplore's canonical merge numbers paths in sequential
// depth-first order — so callers choose a worker count purely on hardware
// grounds.
func Explore(run core.RunFunc, opts core.Options, workers int) *core.Report {
	if workers > 1 {
		return parexplore.Explore(run, opts, workers)
	}
	return core.NewExplorer(run).Explore(opts)
}
