package harness

import (
	"strings"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/obs"
	"symriscv/internal/parexplore"
	"symriscv/internal/qstore"
)

// Toggle is a tri-state ablation switch as it appears on the command line:
// the zero value and "on" leave the feature enabled, "off" disables it.
// Toggles exist to measure what a layer buys — reports are identical on and
// off by construction (see internal/querycache).
type Toggle string

// Toggle states.
const (
	On  Toggle = "on"
	Off Toggle = "off"
)

// Disabled reports whether the toggle turns its feature off.
func (t Toggle) Disabled() bool { return t == Off }

// ParseToggle maps a flag value to a Toggle; ok is false for anything other
// than "", "on" or "off" (case-insensitive).
func ParseToggle(v string) (Toggle, bool) {
	switch strings.ToLower(v) {
	case "", "on":
		return On, true
	case "off":
		return Off, true
	}
	return "", false
}

// Common is the option set shared by every harness campaign. Per-command
// option structs embed it, so the symv flag group (-workers, -cache,
// -rewrite, -trace, -metrics) maps onto one place regardless of command.
type Common struct {
	// Workers shards each exploration's path tree across this many solver
	// contexts (see internal/parexplore); <= 1 explores sequentially.
	// Reports are worker-count independent by construction.
	Workers int
	// Core selects the device under test for campaigns that support more
	// than one ("" = the campaign's default, microrv32). It is the single
	// core selector shared by every command (-core on the CLI).
	Core cosim.CoreKind
	// DeprecatedFlags lists deprecated command-line spellings used on this
	// invocation (e.g. table2's -dut); Warnings surfaces one note per entry.
	DeprecatedFlags []string
	// Cache toggles the query-elimination layer (stack models, independence
	// slicing, feasibility caching); Rewrite the extended term rewrites;
	// Inprocess the SAT-core clause-database simplification.
	Cache     Toggle
	Rewrite   Toggle
	Inprocess Toggle
	// Portfolio is opt-in (enabled only when explicitly "on"): at
	// workers >= 2 each worker's SAT core runs deterministic diversified
	// heuristics (sat.PortfolioOptions). Reports stay byte-identical — the
	// portfolio changes how fast each solve answers, never the answer.
	Portfolio Toggle
	// Fork toggles fork-point state checkpointing (internal/core/snapshot.go):
	// sibling paths resume from a copy-on-write snapshot instead of replaying
	// the whole decision prefix from cycle 0. Reports are identical on and
	// off by construction; off measures what checkpointing buys.
	Fork Toggle
	// Obs, when non-nil, attaches every exploration to the observability
	// layer (spans, counters, JSONL traces). Strictly a side channel:
	// reports are byte-identical with and without it.
	Obs *obs.Recorder
	// Store, when non-nil, is the persistent cross-campaign witness store
	// session (symv -store DIR): every exploration attaches to its shared
	// cache, and new entries are checkpointed to disk after each exploration
	// — the same hand-off boundary where workers flush into the shared
	// cache. Like Obs it is strictly a side channel: reports are
	// byte-identical with and without it, warm or cold.
	Store *qstore.Session
	// Budget bounds each exploration's wall time when the command does not
	// override it with a more specific budget (PerProbeTime, PerCellTime...).
	// 0 means unbounded for every campaign — commands that want a default
	// budget declare it on their flag, never by reinterpreting the zero
	// value (LongRun used to silently turn 0 into 30s; it no longer does).
	Budget time.Duration
	// MaxPaths bounds each exploration's path count (0 = unbounded unless
	// the command sets its own default).
	MaxPaths int
}

// apply copies the shared options onto one exploration's core options.
// Command-specific settings win: already-set bounds are kept, and the
// ablation toggles only ever disable (they never re-enable a layer an
// explicit option turned off).
func (c Common) apply(o core.Options) core.Options {
	o.NoQueryCache = o.NoQueryCache || c.Cache.Disabled()
	o.NoFork = o.NoFork || c.Fork.Disabled()
	o.NoTermRewrites = o.NoTermRewrites || c.Rewrite.Disabled()
	o.NoInprocessing = o.NoInprocessing || c.Inprocess.Disabled()
	o.Portfolio = o.Portfolio || c.Portfolio == On
	if o.Obs == nil {
		o.Obs = c.Obs
	}
	if o.MaxTime == 0 {
		o.MaxTime = c.Budget
	}
	if o.MaxPaths == 0 {
		o.MaxPaths = c.MaxPaths
	}
	if o.SharedCache == nil && c.Store != nil {
		o.SharedCache = c.Store.Shared()
	}
	return o
}

// explore runs one exploration under the shared options, checkpointing the
// persistent store (when one is attached) at the exploration boundary.
func (c Common) explore(run core.RunFunc, o core.Options) *core.Report {
	rep := exploreWorkers(run, c.apply(o), c.Workers)
	c.Store.Checkpoint()
	return rep
}

// Warnings returns non-fatal notes about option combinations that silently
// do nothing, for the CLI to surface on stderr. Kept advisory on purpose:
// none of these change any report.
func (c Common) Warnings() []string {
	var ws []string
	for _, f := range c.DeprecatedFlags {
		ws = append(ws, f)
	}
	if c.Portfolio == On && c.Workers <= 1 {
		ws = append(ws, "-portfolio=on has no effect with a single worker; set -workers=2 or more to diversify SAT heuristics")
	}
	return ws
}

// exploreWorkers routes one exploration to the sequential explorer
// (workers <= 1) or to the sharded parallel orchestrator. Both produce the
// same Report for the same options — parexplore's canonical merge numbers
// paths in sequential depth-first order — so callers choose a worker count
// purely on hardware grounds.
func exploreWorkers(run core.RunFunc, opts core.Options, workers int) *core.Report {
	if workers > 1 {
		return parexplore.Explore(run, opts, workers)
	}
	return core.NewExplorer(run).Explore(opts)
}

// ExploreOptions configure one direct exploration (symv hunt / replay).
type ExploreOptions struct {
	Common
	// Opts carries the exploration-specific options; the shared toggles,
	// budgets and observability sink are layered on top by Common.
	Opts core.Options
}

// ExploreWith runs one exploration under a single options struct.
func ExploreWith(run core.RunFunc, o ExploreOptions) *core.Report {
	return o.explore(run, o.Opts)
}
