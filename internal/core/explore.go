package core

import (
	"errors"
	"fmt"
	"time"

	"symriscv/internal/obs"
	"symriscv/internal/querycache"
	"symriscv/internal/sat"
	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// wallNow is the single wall-clock read of the deterministic kernel, used
// only for the MaxTime budget and the Elapsed statistic. Budget expiry
// changes how many paths are explored, never any decision inside a path,
// so replay determinism is preserved.
func wallNow() time.Time {
	return time.Now() //symlint:allow determinism -- budget/telemetry only; never feeds terms or branch decisions
}

// pathRNG is a splitmix64 PRNG for the random-path searcher. A local
// generator keeps math/rand out of the deterministic kernel and, unlike
// math/rand's default source, has output that is stable across Go
// releases, so a recorded exploration replays identically forever.
type pathRNG struct{ state uint64 }

func (r *pathRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n) for n > 0.
func (r *pathRNG) intn(n int) int {
	return int(r.next() % uint64(n))
}

// SearchStrategy selects the order in which scheduled paths are explored.
type SearchStrategy uint8

// Search strategies. DFS dives along one decode chain; BFS sweeps the
// decision tree level by level; RandomPath picks uniformly from the frontier
// (the spirit of KLEE's random-path searcher, deterministic via Options.Seed).
const (
	SearchDFS SearchStrategy = iota
	SearchBFS
	SearchRandom
)

func (s SearchStrategy) String() string {
	switch s {
	case SearchBFS:
		return "bfs"
	case SearchRandom:
		return "random-path"
	}
	return "dfs"
}

// RunFunc is one deterministic execution of the program under exploration
// (for processor verification: one co-simulation run). A nil return completes
// the path; a non-nil error is recorded as a finding (e.g. a voter mismatch).
type RunFunc func(*Engine) error

// Options configure an exploration.
type Options struct {
	// MaxPaths bounds the number of paths started; 0 means unlimited.
	MaxPaths int
	// MaxTime bounds the wall-clock exploration time; 0 means unlimited.
	MaxTime time.Duration
	// MaxInstructions bounds the cumulative retired-instruction count
	// across all paths; 0 means unlimited.
	MaxInstructions uint64
	// StopOnFirstFinding ends the exploration at the first finding.
	StopOnFirstFinding bool
	// GenerateTests records a concrete test vector for every completed path
	// (KLEE's .ktest analogue).
	GenerateTests bool
	// Search selects the exploration order (default depth-first).
	Search SearchStrategy
	// Seed seeds the random-path strategy; ignored otherwise.
	Seed int64
	// SolverConflictBudget bounds each SAT query; 0 means unlimited.
	// Exhausted queries abort their path as AbortUnknown.
	SolverConflictBudget uint64
	// Progress, when set, receives a statistics snapshot every
	// ProgressEvery started paths (default 256).
	Progress func(Stats)
	// ProgressEvery sets the Progress callback period in paths.
	ProgressEvery int
	// NoBranchOptimizations disables the engine's implication shortcut and
	// eager sibling-feasibility checks (ablation mode): siblings are
	// scheduled optimistically and validated lazily on replay.
	NoBranchOptimizations bool
	// NoQueryCache disables the query-elimination layer (stack models,
	// independence slicing, feasibility caching): every engine query goes
	// straight to the SAT core. Ablation mode (symv -cache=off).
	NoQueryCache bool
	// SharedCache, when non-nil, is the cross-worker (and, via
	// internal/qstore, cross-campaign) feasibility store the exploration
	// attaches to. Entries flow in at startup and out at hand-off points.
	// Ignored when NoQueryCache is set. Like every cache layer it is
	// answer-preserving: reports are byte-identical with and without it.
	SharedCache *querycache.Shared
	// NoTermRewrites disables the extended term rewrite rules, leaving only
	// the basic constant folds. Ablation mode (symv -rewrite=off).
	NoTermRewrites bool
	// NoInprocessing disables SAT-core inprocessing (subsumption,
	// strengthening, variable elimination). Ablation mode (symv
	// -inprocess=off).
	NoInprocessing bool
	// Portfolio seeds each parallel worker's SAT core with diverse but
	// deterministic heuristic parameters (sat.PortfolioOptions). Only
	// meaningful at workers >= 2; ignored by the sequential explorer.
	Portfolio bool
	// NoFork disables fork-point state checkpointing: every scheduled path
	// replays from the start instead of resuming from its divergence-point
	// snapshot. Ablation mode (symv -fork=off); reports are byte-identical
	// either way (fork-resume ≡ replay, see snapshot.go).
	NoFork bool
	// Obs, when non-nil, receives spans and counters for this exploration.
	// Observability is side-channel only: it never influences exploration
	// decisions, so reports are byte-identical with and without it.
	Obs *obs.Recorder
}

// Stats aggregates exploration counters. The instruction and cycle counts
// are whatever the program reported via CountInstruction/CountCycle — for
// the co-simulation, retired instructions summed over both models and all
// paths (see EXPERIMENTS.md for how this maps to the paper's counts).
type Stats struct {
	Paths        int // paths started
	Completed    int // RunFunc returned nil
	Partial      int // findings, limits, solver-unknown aborts
	Infeasible   int // flipped branches that turned out unsatisfiable
	Instructions uint64
	Cycles       uint64

	Branches        uint64
	Concretizations uint64
	// SolverQueries counts engine-issued queries. It is independent of the
	// query-elimination layer (a cache hit still counts), so it is part of
	// the deterministic report contract.
	SolverQueries uint64
	Elapsed       time.Duration
	TermCount     int
	SATVars       int

	// Telemetry below: like TermCount/SATVars/Elapsed these depend on cache
	// and scheduling state and are excluded from determinism comparisons.

	// CDCLQueries counts queries that reached the SAT core (the cost the
	// elimination layer removes; equals SolverQueries with the cache off).
	CDCLQueries uint64
	// SolverUnknowns counts conflict-budget-exhausted answers.
	SolverUnknowns uint64
	// RewriteHits counts extended term-rewrite applications.
	RewriteHits uint64
	// Cache breaks eliminated queries down by hit kind.
	Cache querycache.Stats
	// SAT holds the CDCL core's own counters (propagations, conflicts,
	// restarts, learnt/deleted clauses, inprocessing tallies), summed over
	// all workers' solvers.
	SAT sat.Stats
	// ForkSnapshots counts quiescent-point state captures (fork-point
	// checkpointing); ForkResumes counts scheduled paths that resumed from a
	// checkpoint instead of replaying; ReplayEventsSaved counts the prefix
	// events those resumes did not re-execute. Scheduling-dependent (worker
	// hand-offs drop checkpoints), hence telemetry.
	ForkSnapshots     uint64
	ForkResumes       uint64
	ReplayEventsSaved uint64
}

// Finding is a path that ended in an error (for the co-simulation: a voter
// mismatch), together with a concrete witness restricted to that path's
// symbolic inputs.
type Finding struct {
	Err    error
	Inputs smt.MapEnv
	Path   int // index of the path (in start order) that produced it
}

// TestVector is the concrete input assignment of a completed path.
type TestVector struct {
	Path   int
	Inputs smt.MapEnv
}

// Report is the result of an exploration.
type Report struct {
	Stats       Stats
	Findings    []Finding
	TestVectors []TestVector
	// Exhausted is true when the whole path tree was explored (the frontier
	// emptied) rather than a budget expiring.
	Exhausted bool
}

// Witnesser lets error values carry their own counterexample model;
// the co-simulation voter's mismatch error implements it.
type Witnesser interface {
	Witness() smt.MapEnv
}

// Explorer drives repeated executions of a program over one shared term
// context and solver.
type Explorer struct {
	ctx *smt.Context
	sol *solver.Solver
	run RunFunc
	qc  *querycache.Local
}

// NewExplorer returns an explorer for the program run.
func NewExplorer(run RunFunc) *Explorer {
	ctx := smt.NewContext()
	return &Explorer{ctx: ctx, sol: solver.New(ctx), run: run}
}

// Context exposes the shared term context (for tests and tooling).
func (x *Explorer) Context() *smt.Context { return x.ctx }

// Explore runs the program over the whole feasible path tree, subject to the
// option budgets.
func (x *Explorer) Explore(opts Options) *Report {
	start := wallNow()
	x.sol.SetConflictBudget(opts.SolverConflictBudget)
	x.sol.SetInprocessing(!opts.NoInprocessing)
	x.ctx.SetExtendedRewrites(!opts.NoTermRewrites)
	if opts.NoQueryCache {
		x.qc = nil
	} else if x.qc == nil {
		x.qc = querycache.NewLocal(x.ctx, x.sol, nil)
	}
	if x.qc != nil && opts.SharedCache != nil {
		x.qc.AttachShared(opts.SharedCache)
	}

	h := opts.Obs.NewHandle(0)
	x.sol.SetObs(h)
	if x.qc != nil {
		x.qc.SetObs(h)
	}
	root := h.Start(obs.PhaseExplore)

	rep := &Report{}
	wk := &walker{}
	wk.addRoot()
	rng := &pathRNG{state: uint64(opts.Seed)}
	progressEvery := opts.ProgressEvery
	if progressEvery <= 0 {
		progressEvery = 256
	}

	for wk.pending() > 0 {
		if opts.MaxPaths > 0 && rep.Stats.Paths >= opts.MaxPaths {
			break
		}
		if opts.MaxTime > 0 && wallNow().Sub(start) >= opts.MaxTime {
			break
		}
		if opts.MaxInstructions > 0 && rep.Stats.Instructions >= opts.MaxInstructions {
			break
		}

		n := wk.pop(opts.Search, rng)
		pathID := rep.Stats.Paths
		rep.Stats.Paths++
		if opts.Progress != nil && rep.Stats.Paths%progressEvery == 0 {
			snap := rep.Stats
			snap.Elapsed = wallNow().Sub(start)
			opts.Progress(snap)
		}

		sp := h.Start(obs.PhasePath)
		sp.SetPath(pathID)
		run := x.run
		var eng *Engine
		if resumable(n, opts.NoFork, x.qc, opts.SolverConflictBudget) {
			eng = newResumedEngine(x.ctx, x.sol, n.fork, &rep.Stats, x.qc)
			run = n.fork.cp.resume
			rep.Stats.ForkResumes++
			rep.Stats.ReplayEventsSaved += uint64(n.depth - len(n.fork.tail))
		} else {
			eng = newEngine(x.ctx, x.sol, wk.materialize(n), &rep.Stats, x.qc)
		}
		eng.forks = !opts.NoFork
		eng.noOpt = opts.NoBranchOptimizations
		eng.h = h
		err, abort := runOne(run, eng)
		rep.Stats.ForkSnapshots += eng.snaps

		rep.Stats.Instructions += eng.instrRetired
		rep.Stats.Cycles += eng.cycles

		switch {
		case abort != nil && abort.reason == AbortInfeasible:
			rep.Stats.Infeasible++
			sp.End()
			continue // no fresh decisions to fork from
		case abort != nil:
			rep.Stats.Partial++
		case errors.Is(err, ErrStopExploration):
			rep.Stats.Completed++
			sp.End()
			return x.finish(rep, start, root, h)
		case err != nil:
			rep.Stats.Partial++
			f := Finding{Err: err, Path: pathID}
			if w, ok := err.(Witnesser); ok {
				f.Inputs = filterInputs(w.Witness(), eng.symbolic)
			} else if m, ok := eng.PathModel(); ok {
				f.Inputs = filterInputs(m, eng.symbolic)
			}
			rep.Findings = append(rep.Findings, f)
			if opts.StopOnFirstFinding {
				sp.End()
				return x.finish(rep, start, root, h)
			}
		default:
			rep.Stats.Completed++
			if opts.GenerateTests {
				if m, ok := eng.PathModel(); ok {
					rep.TestVectors = append(rep.TestVectors, TestVector{
						Path:   pathID,
						Inputs: filterInputs(m, eng.symbolic),
					})
				}
			}
		}

		// Schedule the unexplored sibling of every fresh branch decision.
		wk.schedule(n, eng.fresh)
		sp.End()
	}

	rep.Exhausted = wk.pending() == 0
	return x.finish(rep, start, root, h)
}

// finish stamps the elapsed time and size/telemetry fields, then closes
// out observability: the explore root span ends, the absorbed counters are
// published, and the handle's shards merge into the recorder.
func (x *Explorer) finish(rep *Report, start time.Time, root *obs.Span, h *obs.Handle) *Report {
	rep.Stats.Elapsed = wallNow().Sub(start)
	if x.qc != nil {
		// Publish locally created entries to the shared store (no-op without
		// one) — the sequential explorer's hand-off boundary is completion.
		x.qc.Flush()
	}
	x.fillSizes(rep)
	root.End()
	publishObs(h, rep.Stats, x.sol.Stats())
	h.Flush()
	return rep
}

func (x *Explorer) fillSizes(rep *Report) {
	rep.Stats.TermCount = x.ctx.NumTerms()
	rep.Stats.SATVars = x.sol.NumSATVars()
	ss := x.sol.Stats()
	rep.Stats.CDCLQueries = ss.Checks
	rep.Stats.SolverUnknowns = ss.UnknownAns
	rep.Stats.SAT = ss.SAT
	rep.Stats.RewriteHits = x.ctx.RewriteHits()
	if x.qc != nil {
		rep.Stats.Cache = x.qc.Stats()
	}
}

// runOne executes one path, converting abort panics into a structured result.
func runOne(run RunFunc, eng *Engine) (err error, abort *abortError) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(abortError); ok {
				abort = &a
				return
			}
			panic(r)
		}
	}()
	return run(eng), nil
}

func filterInputs(m smt.MapEnv, inputs []*smt.Term) smt.MapEnv {
	out := make(smt.MapEnv, len(inputs))
	for _, v := range inputs {
		if val, ok := m[v.Name()]; ok {
			out[v.Name()] = val
		}
	}
	return out
}

// ErrStopExploration can be returned by a RunFunc to end the exploration
// cleanly without recording a finding.
var ErrStopExploration = errors.New("core: stop exploration")

// String renders a compact single-line summary of the statistics.
func (s Stats) String() string {
	return fmt.Sprintf("paths=%d completed=%d partial=%d infeasible=%d instr=%d queries=%d elapsed=%s",
		s.Paths, s.Completed, s.Partial, s.Infeasible, s.Instructions, s.SolverQueries, s.Elapsed.Round(time.Millisecond))
}
