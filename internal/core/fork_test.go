package core

import (
	"fmt"
	"testing"

	"symriscv/internal/smt"
)

// forkProgram is a checkpointable branchProgram: each bit is decided in its
// own "cycle" with an Engine.Checkpoint at the top, mirroring the
// co-simulation loop's quiescent points. The capture closure freezes the loop
// position and accumulated pattern; resume continues the loop on the sibling's
// engine from the divergence point.
func forkProgram(bits int, collect func(pattern uint64)) RunFunc {
	done := func(*Engine, *smt.Term, uint64) error { return nil }
	if collect != nil {
		done = func(_ *Engine, _ *smt.Term, pat uint64) error { collect(pat); return nil }
	}
	return func(e *Engine) error {
		v := e.MakeSymbolic("v", 8)
		return forkLoop(e, v, 0, 0, bits, done)
	}
}

// forkLoop is the checkpointed cycle loop; done is the program epilogue and
// must be part of the capture closure — a resumed sibling re-enters the loop
// mid-way and still has to run everything after it.
func forkLoop(e *Engine, v *smt.Term, bit int, pat uint64, bits int, done func(*Engine, *smt.Term, uint64) error) error {
	ctx := e.Context()
	for ; bit < bits; bit++ {
		b, p := bit, pat
		e.Checkpoint(func() ResumeFunc {
			return func(e2 *Engine) error { return forkLoop(e2, v, b, p, bits, done) }
		})
		if e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1))) {
			pat |= 1 << bit
		}
	}
	return done(e, v, pat)
}

// TestForkResumeFullTree checks a checkpointable program still enumerates the
// complete tree exactly once with fork checkpointing on, and that siblings
// really did resume from snapshots rather than replay.
func TestForkResumeFullTree(t *testing.T) {
	seen := map[uint64]int{}
	rep := NewExplorer(forkProgram(4, func(p uint64) { seen[p]++ })).Explore(Options{})
	if rep.Stats.Paths != 16 || len(seen) != 16 {
		t.Fatalf("paths=%d distinct=%d, want 16/16", rep.Stats.Paths, len(seen))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("pattern %04b executed %d times", p, n)
		}
	}
	if rep.Stats.ForkResumes == 0 {
		t.Fatal("no sibling resumed from a checkpoint")
	}
	if rep.Stats.ForkSnapshots == 0 {
		t.Fatal("no snapshots captured")
	}
	if rep.Stats.ReplayEventsSaved == 0 {
		t.Fatal("resumes saved no replay events")
	}
}

// TestForkReplayEquivalence pins the determinism contract of fork-point
// checkpointing at the core level: the same exploration, fork on vs off,
// cache on vs off, across search strategies, reports identical deterministic
// statistics and identical path sets.
func TestForkReplayEquivalence(t *testing.T) {
	strategies := []struct {
		name string
		s    SearchStrategy
	}{{"dfs", SearchDFS}, {"bfs", SearchBFS}, {"random", SearchRandom}}
	for _, st := range strategies {
		for _, noCache := range []bool{false, true} {
			name := fmt.Sprintf("%s/cache=%v", st.name, !noCache)
			t.Run(name, func(t *testing.T) {
				var legs [2]*Report
				var sets [2]map[uint64]int
				for i, noFork := range []bool{false, true} {
					seen := map[uint64]int{}
					legs[i] = NewExplorer(forkProgram(5, func(p uint64) { seen[p]++ })).Explore(Options{
						Search:       st.s,
						Seed:         7,
						NoFork:       noFork,
						NoQueryCache: noCache,
					})
					sets[i] = seen
				}
				on, off := legs[0], legs[1]
				if on.Stats.Paths != off.Stats.Paths ||
					on.Stats.Completed != off.Stats.Completed ||
					on.Stats.Partial != off.Stats.Partial ||
					on.Stats.Infeasible != off.Stats.Infeasible ||
					on.Stats.SolverQueries != off.Stats.SolverQueries {
					t.Fatalf("deterministic stats diverge:\nfork on:  %v\nfork off: %v", on.Stats, off.Stats)
				}
				if len(sets[0]) != 32 || len(sets[1]) != 32 {
					t.Fatalf("pattern sets incomplete: fork on %d, fork off %d", len(sets[0]), len(sets[1]))
				}
				if on.Stats.ForkResumes == 0 {
					t.Fatal("fork-on leg resumed nothing")
				}
				if off.Stats.ForkResumes != 0 || off.Stats.ForkSnapshots != 0 {
					t.Fatalf("fork-off leg reports fork activity: %+v", off.Stats)
				}
			})
		}
	}
}

// TestForkFindingsAndVectorsMatchReplay checks findings and test vectors
// survive the resume path unchanged: paths that error report the same finding
// at the same canonical path index, with the same witness inputs, fork on and
// off.
func TestForkFindingsAndVectorsMatch(t *testing.T) {
	// Error on one specific leaf so the finding's witness is pinned. The
	// epilogue rides inside the capture closure via the done continuation.
	done := func(e *Engine, v *smt.Term, _ uint64) error {
		if _, ok := e.FindWitness(e.Context().Eq(v, e.Context().BV(8, 0x0b))); ok {
			return fmt.Errorf("bad leaf")
		}
		return nil
	}
	prog := func(e *Engine) error {
		v := e.MakeSymbolic("v", 8)
		return forkLoop(e, v, 0, 0, 4, done)
	}
	var reps [2]*Report
	for i, noFork := range []bool{false, true} {
		reps[i] = NewExplorer(prog).Explore(Options{NoFork: noFork})
	}
	on, off := reps[0], reps[1]
	if len(on.Findings) != len(off.Findings) {
		t.Fatalf("finding counts differ: fork on %d, fork off %d", len(on.Findings), len(off.Findings))
	}
	for i := range on.Findings {
		a, b := on.Findings[i], off.Findings[i]
		if a.Path != b.Path || a.Err.Error() != b.Err.Error() {
			t.Fatalf("finding %d differs: on (path %d) %v, off (path %d) %v", i, a.Path, a.Err, b.Path, b.Err)
		}
	}
	if len(on.TestVectors) != len(off.TestVectors) {
		t.Fatalf("test vector counts differ: %d vs %d", len(on.TestVectors), len(off.TestVectors))
	}
	if on.Stats.SolverQueries != off.Stats.SolverQueries {
		t.Fatalf("query counts differ: %d vs %d", on.Stats.SolverQueries, off.Stats.SolverQueries)
	}
}

// TestForkDisabledUnderConflictBudget: under a solver conflict budget a
// replayed query could return Unknown and abort the path — an outcome resume
// would skip — so resumable must refuse and paths must replay.
func TestForkDisabledUnderConflictBudget(t *testing.T) {
	rep := NewExplorer(forkProgram(3, nil)).Explore(Options{SolverConflictBudget: 1 << 20})
	if rep.Stats.ForkResumes != 0 {
		t.Fatalf("resumed %d paths under a conflict budget", rep.Stats.ForkResumes)
	}
	if rep.Stats.Paths != 8 {
		t.Fatalf("paths = %d, want 8", rep.Stats.Paths)
	}
}

// TestForkPointerDroppedOnHandoff checks the portable prefix representation
// stays canonical: a fork point never survives export/import, so handed-off
// subtrees replay.
func TestForkPointerDroppedOnHandoff(t *testing.T) {
	s1 := NewShard(forkProgram(3, nil), ShardOptions{})
	s1.SeedRoot()
	if _, ok := s1.Step(SearchBFS); !ok {
		t.Fatal("seed step failed")
	}
	prefix, sig, ok := s1.Handoff()
	if !ok {
		t.Fatal("handoff failed")
	}
	s2 := NewShard(forkProgram(3, nil), ShardOptions{})
	s2.AddPrefix(prefix, sig)
	for _, n := range s2.w.frontier {
		if n.fork != nil {
			t.Fatal("imported frontier node carries a fork point")
		}
	}
	for s2.Pending() > 0 {
		if _, ok := s2.Step(SearchDFS); !ok {
			break
		}
	}
	snaps, resumes, _ := s2.ForkStats()
	if resumes == 0 && snaps == 0 {
		// The imported node itself must replay; its descendants may then
		// checkpoint and resume — which is the point of the fallback design.
		t.Log("imported subtree explored fully by replay")
	}
}

// TestAddPCDeduplicates pins the assumption-dedup satellite: assuming the
// same term twice adds one path constraint and one cache observation, leaving
// the conjunction unchanged.
func TestAddPCDeduplicates(t *testing.T) {
	x := NewExplorer(nil)
	var st Stats
	eng := newEngine(x.ctx, x.sol, nil, &st, nil)
	ctx := eng.Context()
	v := eng.MakeSymbolic("v", 8)
	c := ctx.Eq(v, ctx.BV(8, 3))
	eng.Assume(c)
	eng.Assume(c)
	if got := len(eng.pcs); got != 1 {
		t.Fatalf("pcs length = %d after duplicate Assume, want 1", got)
	}
	eng.Assume(ctx.Ne(v, ctx.BV(8, 9)))
	if got := len(eng.pcs); got != 2 {
		t.Fatalf("pcs length = %d, want 2", got)
	}
}

// TestWalkerPopOrderAcrossStrategies drives the walker frontier directly:
// DFS pops newest-first, BFS oldest-first, and the random strategy is
// deterministic for a fixed seed.
func TestWalkerPopOrderAcrossStrategies(t *testing.T) {
	build := func() (*walker, *Explorer, []*node) {
		x := NewExplorer(branchProgram(3, nil))
		wk := &walker{}
		wk.addRoot()
		n := wk.pop(SearchDFS, &pathRNG{})
		var st Stats
		eng := newEngine(x.ctx, x.sol, wk.materialize(n), &st, nil)
		if err, abort := runOne(x.run, eng); err != nil || abort != nil {
			t.Fatalf("run failed: %v / %v", err, abort)
		}
		wk.schedule(n, eng.fresh)
		nodes := append([]*node(nil), wk.frontier...)
		return wk, x, nodes
	}

	wk, _, nodes := build()
	if len(nodes) != 3 {
		t.Fatalf("frontier size = %d, want 3", len(nodes))
	}
	// DFS: deepest (most recently scheduled) sibling first.
	if got := wk.pop(SearchDFS, &pathRNG{}); got != nodes[len(nodes)-1] {
		t.Fatal("DFS did not pop the deepest sibling first")
	}

	wk2, _, nodes2 := build()
	if got := wk2.pop(SearchBFS, &pathRNG{}); got != nodes2[0] {
		t.Fatal("BFS did not pop the shallowest sibling first")
	}

	// Random: identical seeds pop identical orders.
	order := func(seed uint64) []int {
		wk, _, _ := build()
		rng := &pathRNG{state: seed}
		var got []int
		for wk.pending() > 0 {
			got = append(got, wk.pop(SearchRandom, rng).depth)
		}
		return got
	}
	a, b := order(42), order(42)
	if len(a) != len(b) {
		t.Fatalf("random pop counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random pop order not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

// TestWalkerMaterializeMatchesNaive cross-checks the parent-pointer
// materialization against a naive reconstruction that walks the parent chain.
func TestWalkerMaterializeMatchesNaive(t *testing.T) {
	x := NewExplorer(branchProgram(4, nil))
	wk := &walker{}
	wk.addRoot()
	var st Stats
	for rounds := 0; wk.pending() > 0 && rounds < 6; rounds++ {
		n := wk.pop(SearchBFS, &pathRNG{})
		naive := naiveMaterialize(n)
		got := wk.materialize(n)
		if len(got) != len(naive) {
			t.Fatalf("materialize length %d, naive %d", len(got), len(naive))
		}
		for i := range got {
			if got[i].dir != naive[i].dir || got[i].kind != naive[i].kind {
				t.Fatalf("event %d differs from naive reconstruction", i)
			}
		}
		eng := newEngine(x.ctx, x.sol, got, &st, nil)
		if err, abort := runOne(x.run, eng); err != nil || abort != nil {
			t.Fatalf("run failed: %v / %v", err, abort)
		}
		wk.schedule(n, eng.fresh)
	}
}

// naiveMaterialize reconstructs a node's decision prefix by walking parent
// pointers — the specification the scratch-buffer materialize must match.
func naiveMaterialize(n *node) []event {
	if n == nil {
		return nil
	}
	prefix := append([]event(nil), naiveMaterialize(n.parent)...)
	prefix = append(prefix, n.events[:n.take]...)
	if n.flip {
		prefix[len(prefix)-1].dir = !prefix[len(prefix)-1].dir
	}
	return prefix
}
