package core_test

import (
	"fmt"

	"symriscv/internal/core"
)

// Example explores a two-path program and prints the finding's witness
// range, demonstrating the MakeSymbolic/Branch/witness workflow every model
// in this repository is written against.
func Example() {
	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		if e.Branch(ctx.Ult(v, ctx.BV(8, 16))) {
			return fmt.Errorf("low input reached the error branch")
		}
		return nil
	})
	rep := x.Explore(core.Options{})
	fmt.Println("paths:", rep.Stats.Paths)
	fmt.Println("findings:", len(rep.Findings))
	fmt.Println("witness in range:", rep.Findings[0].Inputs["v"] < 16)
	// Output:
	// paths: 2
	// findings: 1
	// witness in range: true
}
