package core

import (
	"errors"

	"symriscv/internal/obs"
	"symriscv/internal/querycache"
	"symriscv/internal/sat"
	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// PathKind classifies the outcome of one explored path.
type PathKind uint8

// Path outcomes.
const (
	PathCompleted  PathKind = iota // RunFunc returned nil
	PathPartial                    // limit or solver-unknown abort
	PathInfeasible                 // flipped branch or assumption unsatisfiable
	PathFinding                    // RunFunc returned an error
	PathStopped                    // RunFunc returned ErrStopExploration
)

// PathRecord is the outcome of one path explored by a Shard, carrying the
// per-path statistic deltas so an orchestrator can merge shard results
// deterministically: the engine's behaviour on a path does not depend on how
// the tree was split (replays cost no queries except the one flip check,
// whose necessity travels with the prefix via SibVerified), so summing
// deltas over a canonical, Sig-ordered subset of records yields totals that
// are independent of scheduling.
type PathRecord struct {
	Sig        Sig
	Kind       PathKind
	Err        error      // the finding (Kind == PathFinding)
	Inputs     smt.MapEnv // finding witness, restricted to the path's symbolic inputs
	TestInputs smt.MapEnv // test vector (Kind == PathCompleted, GenerateTests)
	HasTest    bool

	Instructions    uint64
	Cycles          uint64
	Branches        uint64
	Concretizations uint64
	SolverQueries   uint64
}

// ShardOptions configure one worker's exploration behaviour. Budgets are the
// orchestrator's job (it decides when to stop calling Step), so they do not
// appear here.
type ShardOptions struct {
	Search                SearchStrategy
	Seed                  int64
	SolverConflictBudget  uint64
	NoBranchOptimizations bool
	GenerateTests         bool
	NoQueryCache          bool
	NoTermRewrites        bool
	NoInprocessing        bool
	// NoFork disables fork-point checkpointing (Options.NoFork). Hand-offs
	// drop checkpoints regardless — exported prefixes always replay.
	NoFork bool
	// SATOptions, when non-nil, sets this shard's SAT-core heuristic
	// parameters (deterministic portfolio diversification; see
	// sat.PortfolioOptions). Nil means the tuned defaults.
	SATOptions *sat.Options
	// Obs, when non-nil, attaches this shard to the observability layer;
	// ObsWorker is the worker index its spans and counters report under.
	Obs       *obs.Recorder
	ObsWorker int
}

// Shard explores disjoint subtrees of one program's path tree over a private
// term context and solver. It is the sequential building block of parallel
// exploration: an orchestrator seeds it with portable prefixes, calls Step
// until the frontier drains, and moves work between shards with Handoff /
// AddPrefix. A Shard is not safe for concurrent use; run each on one
// goroutine.
type Shard struct {
	ctx  *smt.Context
	sol  *solver.Solver
	run  RunFunc
	w    walker
	rng  pathRNG
	opts ShardOptions
	qc   *querycache.Local
	h    *obs.Handle

	// Fork-point checkpointing telemetry (summed into the merged report's
	// Stats by the orchestrator, like SolverStats — per-path attribution
	// would make the canonical-cut totals scheduling-dependent).
	forkSnapshots     uint64
	forkResumes       uint64
	replayEventsSaved uint64
}

// NewShard returns a shard with a fresh context and solver.
func NewShard(run RunFunc, opts ShardOptions) *Shard {
	ctx := smt.NewContext()
	ctx.SetExtendedRewrites(!opts.NoTermRewrites)
	so := sat.DefaultOptions()
	if opts.SATOptions != nil {
		so = *opts.SATOptions
	}
	sol := solver.NewWithOptions(ctx, so)
	sol.SetConflictBudget(opts.SolverConflictBudget)
	sol.SetInprocessing(!opts.NoInprocessing)
	s := &Shard{
		ctx:  ctx,
		sol:  sol,
		run:  run,
		w:    walker{trackSigs: true},
		rng:  pathRNG{state: uint64(opts.Seed)},
		opts: opts,
	}
	if !opts.NoQueryCache {
		s.qc = querycache.NewLocal(ctx, sol, nil)
	}
	s.h = opts.Obs.NewHandle(opts.ObsWorker)
	sol.SetObs(s.h)
	if s.qc != nil {
		s.qc.SetObs(s.h)
	}
	return s
}

// ObsHandle returns the shard's observability handle (nil when disabled).
// The orchestrator uses it to stitch the shard's spans under its explore
// root and to merge counter shards at hand-off points.
func (s *Shard) ObsHandle() *obs.Handle { return s.h }

// FlushObs merges the shard's counter/phase shards into the recorder, the
// observability analogue of FlushCache. The orchestrator calls both at the
// same hand-off points.
func (s *Shard) FlushObs() { s.h.Flush() }

// PublishObsCounters absorbs the shard's solver, query-cache and rewriter
// counters into its registry shard and flushes. Called once per shard when
// the orchestrator merges results. The explore.* family comes from the
// orchestrator's merged report instead: summing per-shard path deltas
// would double-count replay work moved across hand-offs.
func (s *Shard) PublishObsCounters() {
	if s.h == nil {
		return
	}
	terms, satVars := s.Sizes()
	publishBackendObs(s.h, s.SolverStats(), s.CacheStats(), s.RewriteHits(), terms, satVars)
	publishForkObs(s.h, s.forkSnapshots, s.forkResumes, s.replayEventsSaved)
	s.h.Flush()
}

// AttachSharedCache connects the cross-worker query-cache store. Call before
// exploration starts; a no-op when the cache is disabled.
func (s *Shard) AttachSharedCache(sh *querycache.Shared) {
	if s.qc != nil {
		s.qc.AttachShared(sh)
	}
}

// FlushCache publishes locally created query-cache entries to the shared
// store (no-op without one). The orchestrator calls this at handoff points.
func (s *Shard) FlushCache() {
	if s.qc != nil {
		s.qc.Flush()
	}
}

// CacheStats returns the shard's query-elimination counters.
func (s *Shard) CacheStats() querycache.Stats {
	if s.qc == nil {
		return querycache.Stats{}
	}
	return s.qc.Stats()
}

// SolverStats returns the shard solver's cumulative counters.
func (s *Shard) SolverStats() solver.Stats { return s.sol.Stats() }

// RewriteHits returns the shard context's extended-rewrite application count.
func (s *Shard) RewriteHits() uint64 { return s.ctx.RewriteHits() }

// ForkStats returns the shard's fork-point checkpointing telemetry:
// snapshots captured, paths resumed from checkpoints, and prefix events
// those resumes skipped re-executing.
func (s *Shard) ForkStats() (snapshots, resumes, eventsSaved uint64) {
	return s.forkSnapshots, s.forkResumes, s.replayEventsSaved
}

// SeedRoot schedules the empty prefix — the whole path tree.
func (s *Shard) SeedRoot() { s.w.addRoot() }

// AddPrefix schedules an imported subtree root.
func (s *Shard) AddPrefix(prefix []Step, sig Sig) { s.w.addPrefix(prefix, sig) }

// Pending returns the number of scheduled, unexplored subtree roots.
func (s *Shard) Pending() int { return s.w.pending() }

// SetBound discards present and future work ordered strictly after sig.
func (s *Shard) SetBound(sig Sig) { s.w.setBound(sig) }

// Pruned reports whether any work was discarded by a bound.
func (s *Shard) Pruned() bool { return s.w.pruned }

// Handoff removes the oldest (shallowest, hence largest-subtree) frontier
// node and exports it in portable form for another shard.
func (s *Shard) Handoff() ([]Step, Sig, bool) {
	if len(s.w.frontier) == 0 {
		return nil, "", false
	}
	n := s.w.frontier[0]
	s.w.frontier = s.w.frontier[1:]
	return s.w.export(n), n.sig, true
}

// Step explores one path using the given pop order (the orchestrator's seed
// phase overrides the configured strategy with BFS to widen the frontier).
// It returns false when the frontier is empty or fully pruned.
func (s *Shard) Step(order SearchStrategy) (PathRecord, bool) {
	n := s.w.pop(order, &s.rng)
	if n == nil {
		return PathRecord{}, false
	}

	sp := s.h.Start(obs.PhasePath)
	var st Stats
	run := s.run
	var eng *Engine
	if resumable(n, s.opts.NoFork, s.qc, s.opts.SolverConflictBudget) {
		eng = newResumedEngine(s.ctx, s.sol, n.fork, &st, s.qc)
		run = n.fork.cp.resume
		s.forkResumes++
		s.replayEventsSaved += uint64(n.depth - len(n.fork.tail))
	} else {
		eng = newEngine(s.ctx, s.sol, s.w.materialize(n), &st, s.qc)
	}
	eng.forks = !s.opts.NoFork
	eng.noOpt = s.opts.NoBranchOptimizations
	eng.h = s.h
	err, abort := runOne(run, eng)
	s.forkSnapshots += eng.snaps

	rec := PathRecord{
		Sig:          s.w.pathSig(n, eng.fresh),
		Instructions: eng.instrRetired,
		Cycles:       eng.cycles,
	}
	switch {
	case abort != nil && abort.reason == AbortInfeasible:
		rec.Kind = PathInfeasible
		sp.End()
		return finishRecord(rec, &st), true // no fresh decisions to fork from
	case abort != nil:
		rec.Kind = PathPartial
	case errors.Is(err, ErrStopExploration):
		rec.Kind = PathStopped
		sp.End()
		return finishRecord(rec, &st), true // sequential parity: stop schedules no siblings
	case err != nil:
		rec.Kind = PathFinding
		rec.Err = err
		if w, ok := err.(Witnesser); ok {
			rec.Inputs = filterInputs(w.Witness(), eng.symbolic)
		} else if m, ok := eng.PathModel(); ok {
			rec.Inputs = filterInputs(m, eng.symbolic)
		}
	default:
		rec.Kind = PathCompleted
		if s.opts.GenerateTests {
			if m, ok := eng.PathModel(); ok {
				rec.TestInputs = filterInputs(m, eng.symbolic)
				rec.HasTest = true
			}
		}
	}

	// Every scheduled sibling flips a taken-true decision to false, so all
	// children order strictly after this path's Sig — scheduling after a
	// min-Sig finding is harmless under a bound (everything gets pruned).
	s.w.schedule(n, eng.fresh)
	sp.End()
	return finishRecord(rec, &st), true
}

// finishRecord captures the per-path statistic deltas after classification,
// so witness and test-vector model queries are attributed to their path just
// as the sequential explorer counts them.
func finishRecord(rec PathRecord, st *Stats) PathRecord {
	rec.Branches = st.Branches
	rec.Concretizations = st.Concretizations
	rec.SolverQueries = st.SolverQueries
	return rec
}

// Sizes reports the shard's term-context and SAT-instance sizes.
func (s *Shard) Sizes() (terms, satVars int) {
	return s.ctx.NumTerms(), s.sol.NumSATVars()
}
