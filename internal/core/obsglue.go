package core

import (
	"symriscv/internal/obs"
	"symriscv/internal/querycache"
	"symriscv/internal/solver"
)

// Registry names for the absorbed exploration counters. The explore.*
// family mirrors the deterministic Stats fields, solver.* the SAT facade,
// cache.* the query-elimination hit kinds, rewrite.* the term rewriter.
// smt.terms and sat.vars are gauges (per-context sizes, merged by max
// across workers).
const (
	CtrPaths           = "explore.paths"
	CtrCompleted       = "explore.completed"
	CtrPartial         = "explore.partial"
	CtrInfeasible      = "explore.infeasible"
	CtrInstructions    = "explore.instructions"
	CtrCycles          = "explore.cycles"
	CtrBranches        = "explore.branches"
	CtrConcretizations = "explore.concretizations"
	CtrQueries         = "explore.queries"

	CtrSolverChecks  = "solver.checks"
	CtrSolverSat     = "solver.sat"
	CtrSolverUnsat   = "solver.unsat"
	CtrSolverUnknown = "solver.unknown"

	CtrCacheQueries       = "cache.queries"
	CtrCacheStackHits     = "cache.stack_hits"
	CtrCacheExactHits     = "cache.exact_hits"
	CtrCacheSubsetSat     = "cache.subset_sat"
	CtrCacheSupersetUnsat = "cache.superset_unsat"
	CtrCacheCDCL          = "cache.cdcl"
	CtrCacheModelQueries  = "cache.model_queries"
	CtrCacheSliced        = "cache.sliced"
	CtrCacheSlicedDropped = "cache.sliced_dropped"
	CtrCacheEliminated    = "cache.eliminated"
	CtrCacheStoreHits     = "cache.store_hits"

	CtrRewriteHits = "rewrite.hits"

	CtrForkSnapshots     = "fork.snapshots"
	CtrForkResumes       = "fork.resumes"
	CtrReplayEventsSaved = "replay.events-saved"

	GaugeTerms   = "smt.terms"
	GaugeSATVars = "sat.vars"
)

// publishObs absorbs one exploration's scattered counters — the merged
// Stats, the solver facade and the query-cache hit kinds — into the
// handle's registry shard. The caller flushes. Nil-safe via the handle.
func publishObs(h *obs.Handle, st Stats, ss solver.Stats) {
	PublishExploreObs(h, st)
	publishBackendObs(h, ss, st.Cache, st.RewriteHits, st.TermCount, st.SATVars)
	publishForkObs(h, st.ForkSnapshots, st.ForkResumes, st.ReplayEventsSaved)
}

// publishForkObs absorbs the fork-point checkpointing telemetry, published
// once per worker (the sequential explorer's merged stats, or each shard's
// own counters via Shard.PublishObsCounters).
func publishForkObs(h *obs.Handle, snapshots, resumes, eventsSaved uint64) {
	if h == nil {
		return
	}
	h.Add(CtrForkSnapshots, snapshots)
	h.Add(CtrForkResumes, resumes)
	h.Add(CtrReplayEventsSaved, eventsSaved)
}

// PublishExploreObs absorbs the deterministic Stats fields of a finished
// exploration (the explore.* counter family) into the handle's registry
// shard; the caller flushes. The parallel orchestrator publishes its
// merged report through this, while each shard publishes its own backend
// counters via Shard.PublishObsCounters.
func PublishExploreObs(h *obs.Handle, st Stats) {
	if h == nil {
		return
	}
	h.Add(CtrPaths, uint64(st.Paths))
	h.Add(CtrCompleted, uint64(st.Completed))
	h.Add(CtrPartial, uint64(st.Partial))
	h.Add(CtrInfeasible, uint64(st.Infeasible))
	h.Add(CtrInstructions, st.Instructions)
	h.Add(CtrCycles, st.Cycles)
	h.Add(CtrBranches, st.Branches)
	h.Add(CtrConcretizations, st.Concretizations)
	h.Add(CtrQueries, st.SolverQueries)
}

// publishBackendObs absorbs the solver-facade, query-cache and rewriter
// counters plus the context-size gauges — the per-backend share of the
// registry, published once per solver context (the sequential explorer's,
// or each parallel shard's).
func publishBackendObs(h *obs.Handle, ss solver.Stats, cs querycache.Stats, rewrites uint64, terms, satVars int) {
	if h == nil {
		return
	}
	h.Add(CtrSolverChecks, ss.Checks)
	h.Add(CtrSolverSat, ss.SatAns)
	h.Add(CtrSolverUnsat, ss.UnsatAns)
	h.Add(CtrSolverUnknown, ss.UnknownAns)

	h.Add(CtrCacheQueries, cs.Queries)
	h.Add(CtrCacheStackHits, cs.StackHits)
	h.Add(CtrCacheExactHits, cs.ExactHits)
	h.Add(CtrCacheSubsetSat, cs.SubsetSat)
	h.Add(CtrCacheSupersetUnsat, cs.SupersetUnsat)
	h.Add(CtrCacheCDCL, cs.CDCL)
	h.Add(CtrCacheModelQueries, cs.ModelQueries)
	h.Add(CtrCacheSliced, cs.SlicedQueries)
	h.Add(CtrCacheSlicedDropped, cs.SlicedDropped)
	h.Add(CtrCacheEliminated, cs.Eliminated())
	h.Add(CtrCacheStoreHits, cs.StoreHits)

	h.Add(CtrRewriteHits, rewrites)

	h.Gauge(GaugeTerms, uint64(terms))
	h.Gauge(GaugeSATVars, uint64(satVars))
}
