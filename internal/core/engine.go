// Package core implements the symbolic execution engine at the heart of the
// verification methodology: the KLEE-role component that drives a
// deterministic program (here: the processor co-simulation) over symbolic
// values, forks at symbolic branches, prunes infeasible paths with the QF_BV
// solver, and emits concrete test vectors.
//
// # Execution model
//
// A path is a sequence of events: Boolean branch decisions and
// concretization choices. The Explorer re-runs the program from the start
// for every path, replaying a recorded event prefix and flipping its final
// branch (replay-based forking, in the spirit of execution-generated
// testing). The program must be deterministic given the engine's answers:
// all control decisions over symbolic data must flow through Branch/BranchBool
// and all concrete extractions through Concretize.
//
// One smt.Context and one incremental solver are shared by every path of an
// exploration. Program determinism means re-created terms intern to the very
// same objects, so the solver's CNF encoding and learned clauses carry over
// between paths — this is what makes thousands of per-path feasibility
// queries affordable.
package core

import (
	"fmt"

	"symriscv/internal/obs"
	"symriscv/internal/querycache"
	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// AbortReason classifies why a path stopped before its program returned.
type AbortReason uint8

// Abort reasons.
const (
	AbortNone       AbortReason = iota
	AbortInfeasible             // flipped branch or Assume contradicts the path constraints
	AbortUnknown                // solver budget exhausted
	AbortLimit                  // execution-controller limit reached mid-step
)

func (r AbortReason) String() string {
	switch r {
	case AbortInfeasible:
		return "infeasible"
	case AbortUnknown:
		return "solver-unknown"
	case AbortLimit:
		return "limit"
	}
	return "none"
}

// abortError is the panic sentinel used to unwind a path.
type abortError struct {
	reason AbortReason
	msg    string
}

func (a abortError) Error() string { return fmt.Sprintf("path abort (%s): %s", a.reason, a.msg) }

type eventKind uint8

const (
	evBranch eventKind = iota
	evConcretize
)

// event is one recorded engine interaction on a path. The cond/term fields
// are replay sanity checks only; they are nil in prefixes imported from
// another exploration context (parallel subtree hand-off), where program
// determinism is trusted instead of pointer-checked.
type event struct {
	kind eventKind
	dir  bool      // branch direction taken
	val  uint64    // concretization value chosen
	cond *smt.Term // branch condition (unpolarised) — replay sanity check
	term *smt.Term // concretised term — replay sanity check
	// noSibling marks a branch whose other direction is already known
	// infeasible, so the explorer must not schedule it.
	noSibling bool
	// sibVerified marks a branch whose other direction was already proven
	// feasible when the branch was taken, so the sibling replay can skip its
	// feasibility check.
	sibVerified bool
	// sibModel, when non-nil, is the model that proved the other direction
	// feasible. It seeds the sibling path's stack cache (querycache): the
	// model satisfies the sibling's entire replayed constraint prefix, so
	// every branch condition it satisfies during that path resolves without
	// a solver query. Maps are immutable once recorded.
	sibModel querycache.Model
	// fork, when non-nil, lets the sibling resume from the latest program
	// checkpoint instead of replaying from the start (see snapshot.go). It
	// is an in-memory acceleration only: the portable Step form drops it and
	// falls back to replay.
	fork *forkPoint
}

// Engine is the per-path symbolic execution interface handed to the program
// under exploration. Methods panic with an internal sentinel to unwind the
// path; the Explorer recovers it. An Engine is only valid during the Run
// callback it was created for.
type Engine struct {
	ctx *smt.Context
	sol *solver.Solver

	prefix []event // events to replay; the last one is the flipped branch
	n      int     // events seen so far on this run (replayed + fresh)
	fresh  []event // events recorded beyond the prefix (fresh decisions only)
	pcs    []*smt.Term
	pcsSet map[*smt.Term]struct{} // interned members of pcs, for implication shortcuts

	symbolic []*smt.Term // variables created via MakeSymbolic, in order

	instrRetired uint64
	cycles       uint64

	// noOpt disables the implication shortcut and eager sibling checks
	// (Options.NoBranchOptimizations — the engine ablation).
	noOpt bool

	// qc, when non-nil, is the query-elimination layer all feasibility
	// queries route through (Options.NoQueryCache disables it).
	qc *querycache.Local

	// h is the owning worker's observability handle (nil when disabled).
	// It is exposed to the program under exploration via Obs so the
	// co-simulation can open rtl-step/iss-step/voter-compare spans.
	h *obs.Handle

	// forks enables fork-point checkpointing: Checkpoint captures state and
	// fresh branch events carry fork points (Options.NoFork disables it).
	forks bool
	// cp is the latest quiescent-point checkpoint taken on this run.
	cp *checkpoint
	// snaps counts checkpoints captured on this run (Stats.ForkSnapshots).
	snaps uint64
	// replayQ counts the solver queries a full replay of this run's events
	// so far would issue (see checkpoint.replayQ).
	replayQ uint64

	stats *Stats
}

func newEngine(ctx *smt.Context, sol *solver.Solver, prefix []event, stats *Stats, qc *querycache.Local) *Engine {
	e := &Engine{
		ctx:    ctx,
		sol:    sol,
		prefix: prefix,
		pcsSet: make(map[*smt.Term]struct{}, 64),
		qc:     qc,
		stats:  stats,
	}
	if qc != nil {
		var seed querycache.Model
		if n := len(prefix); n > 0 {
			// The last prefix event is the flipped branch; its sibModel (when
			// captured) satisfies exactly this path's replayed constraints.
			seed = prefix[n-1].sibModel
		}
		qc.BeginPath(seed)
	}
	return e
}

// Context returns the shared term context.
func (e *Engine) Context() *smt.Context { return e.ctx }

// Obs returns the worker's observability handle, nil when disabled. All
// Span/Handle methods are nil-safe, so callers instrument unconditionally.
func (e *Engine) Obs() *obs.Handle { return e.h }

// MakeSymbolic returns the named symbolic bit-vector. Names must be chosen
// deterministically by the program (e.g. derived from a memory address) so
// replays re-create identical terms. Creating the same name twice returns
// the same variable.
func (e *Engine) MakeSymbolic(name string, width int) *smt.Term {
	v := e.ctx.Var(name, width)
	for _, s := range e.symbolic {
		if s == v {
			return v
		}
	}
	e.symbolic = append(e.symbolic, v)
	return v
}

// SymbolicInputs returns the variables registered through MakeSymbolic on
// this path, in first-use order.
func (e *Engine) SymbolicInputs() []*smt.Term { return e.symbolic }

// PathConstraints returns the constraints accumulated so far.
func (e *Engine) PathConstraints() []*smt.Term {
	return append([]*smt.Term(nil), e.pcs...)
}

// Assume adds the condition to the path constraints, aborting the path if it
// is (or makes the path) infeasible — the klee_assume analogue.
func (e *Engine) Assume(cond *smt.Term) {
	if v, ok := cond.IsBoolConst(); ok {
		if !v {
			panic(abortError{AbortInfeasible, "assume(false)"})
		}
		return
	}
	e.replayQ++ // assumptions re-check feasibility on every replay
	switch e.checkFeasible(cond) {
	case solver.Sat:
		// Assumptions replayed from the prefix were part of the scheduling
		// run too, so the seed model is known to satisfy them.
		e.addPC(cond, e.n < len(e.prefix))
	case solver.Unsat:
		panic(abortError{AbortInfeasible, "assumption contradicts path: " + cond.String()})
	default:
		panic(abortError{AbortUnknown, "assume: solver budget exhausted"})
	}
}

// Branch resolves the Boolean condition on this path, forking the
// exploration when both directions are feasible. It returns the direction
// taken; the path constraints are extended accordingly.
func (e *Engine) Branch(cond *smt.Term) bool {
	if !cond.IsBool() {
		panic("core: Branch on bit-vector term")
	}
	if v, ok := cond.IsBoolConst(); ok {
		return v // concrete control: no decision recorded
	}
	// Implication shortcut: conditions already entailed syntactically by a
	// path constraint (typically the other model's identical decode
	// condition) resolve without a decision, a solver query, or a fork.
	if !e.noOpt {
		if _, ok := e.pcsSet[cond]; ok {
			return true
		}
		if _, ok := e.pcsSet[e.ctx.BNot(cond)]; ok {
			return false
		}
	}

	idx := e.n
	if idx < len(e.prefix) {
		// Replay. Imported prefixes carry no cond (built in another term
		// context); program determinism guarantees the rebuilt condition is
		// the same decision, so only same-context prefixes are pointer-checked.
		ev := e.prefix[idx]
		if ev.kind != evBranch || (ev.cond != nil && ev.cond != cond) {
			panic(fmt.Sprintf("core: replay divergence at event %d: program is not deterministic (have %v)", idx, ev.kind))
		}
		e.n++
		e.addPC(polarise(e.ctx, cond, ev.dir), true)
		if idx == len(e.prefix)-1 && !ev.sibVerified {
			// This is the freshly flipped decision and its feasibility could
			// not be proven when it was scheduled: verify it now.
			switch e.checkFeasible(nil) {
			case solver.Unsat:
				panic(abortError{AbortInfeasible, "flipped branch infeasible"})
			case solver.Unknown:
				panic(abortError{AbortUnknown, "flip check: solver budget exhausted"})
			}
		}
		return ev.dir
	}

	// Fresh decision: try true first; its satisfiability check keeps the
	// path-constraint invariant (pcs always satisfiable). The other
	// direction is checked eagerly: on the forced chains of a decode most
	// branches have exactly one feasible direction, and proving the sibling
	// infeasible here avoids scheduling (and re-running) a dead path.
	e.stats.Branches++
	switch e.checkFeasible(cond) {
	case solver.Sat:
		ev := event{kind: evBranch, dir: true, cond: cond}
		if !e.noOpt {
			res, sib := e.checkSibling(e.ctx.BNot(cond))
			switch res {
			case solver.Unsat:
				ev.noSibling = true
			case solver.Sat:
				ev.sibVerified = true
				ev.sibModel = sib
			}
		}
		if e.forks && !ev.noSibling {
			ev.fork = e.forkFor(ev)
		}
		e.fresh = append(e.fresh, ev)
		e.n++
		e.addPC(cond, false)
		return true
	case solver.Unsat:
		// pcs are satisfiable and pcs∧cond is not, so pcs∧¬cond is.
		e.fresh = append(e.fresh, event{kind: evBranch, dir: false, cond: cond, noSibling: true})
		e.n++
		e.addPC(e.ctx.BNot(cond), false)
		return false
	default:
		panic(abortError{AbortUnknown, "branch: solver budget exhausted"})
	}
}

// BranchEq is a convenience for Branch(a == b).
func (e *Engine) BranchEq(a, b *smt.Term) bool { return e.Branch(e.ctx.Eq(a, b)) }

// Concretize picks a concrete value for the term that is consistent with the
// path constraints, records it as a constraint (t == value), and returns it.
// Constants short-circuit without a solver call.
func (e *Engine) Concretize(t *smt.Term) uint64 {
	if t.IsBool() {
		panic("core: Concretize on Boolean term")
	}
	if t.IsConst() {
		return t.ConstVal()
	}

	idx := e.n
	if idx < len(e.prefix) {
		ev := e.prefix[idx]
		if ev.kind != evConcretize || (ev.term != nil && ev.term != t) {
			panic(fmt.Sprintf("core: replay divergence at event %d: expected concretization", idx))
		}
		e.n++
		e.addPC(e.ctx.Eq(t, e.ctx.BV(t.Width(), ev.val)), true)
		return ev.val
	}

	e.stats.Concretizations++
	switch e.checkModel(nil) {
	case solver.Unsat:
		// Unreachable if the invariant holds; treat defensively.
		panic(abortError{AbortInfeasible, "concretize: path constraints unsatisfiable"})
	case solver.Unknown:
		panic(abortError{AbortUnknown, "concretize: solver budget exhausted"})
	}
	v := e.sol.ModelValue(t)
	e.fresh = append(e.fresh, event{kind: evConcretize, val: v, term: t})
	e.n++
	e.addPC(e.ctx.Eq(t, e.ctx.BV(t.Width(), v)), false)
	return v
}

// FindWitness reports whether cond is satisfiable together with the path
// constraints and, if so, returns a model over this path's symbolic inputs
// (variables never registered through MakeSymbolic read as zero, matching
// the solver's treatment of unconstrained variables). This is the voter's
// mismatch query: it does not alter the path constraints.
func (e *Engine) FindWitness(cond *smt.Term) (smt.MapEnv, bool) {
	if v, ok := cond.IsBoolConst(); ok {
		if !v {
			return nil, false
		}
		// Trivially true: any model of the path constraints witnesses it.
		e.replayQ++
		if e.checkModel(nil) != solver.Sat {
			return nil, false
		}
		return e.sol.ModelFor(e.symbolic), true
	}
	// Witness queries re-execute on every replay (the voter runs on replayed
	// cycles too), so they count toward the replay query budget.
	e.replayQ++
	if e.qc != nil {
		e.stats.SolverQueries++
		res, env := e.qc.CheckWitness(e.pcs, cond)
		switch res {
		case solver.Sat:
			if env != nil {
				return e.witnessEnv(env), true
			}
			return e.sol.ModelFor(e.symbolic), true
		case solver.Unknown:
			panic(abortError{AbortUnknown, "witness query: solver budget exhausted"})
		}
		return nil, false
	}
	switch e.check(append(e.pcs, cond)...) {
	case solver.Sat:
		return e.sol.ModelFor(e.symbolic), true
	case solver.Unknown:
		panic(abortError{AbortUnknown, "witness query: solver budget exhausted"})
	}
	return nil, false
}

// witnessEnv restricts a cache-provided model to this path's symbolic
// inputs, with the same zero default for unconstrained variables as the
// solver's model extraction.
func (e *Engine) witnessEnv(m querycache.Model) smt.MapEnv {
	out := make(smt.MapEnv, len(e.symbolic))
	for _, v := range e.symbolic {
		out[v.Name()] = m[v.Name()]
	}
	return out
}

// PathModel returns a model of the current path's symbolic inputs, used to
// turn a completed path into a concrete test vector. The model is restricted
// to the inputs registered via MakeSymbolic — O(symbolic inputs) rather than
// O(every variable the context ever interned).
func (e *Engine) PathModel() (smt.MapEnv, bool) {
	if e.checkModel(nil) != solver.Sat {
		return nil, false
	}
	return e.sol.ModelFor(e.symbolic), true
}

// CountInstruction records n retired instructions (for the experiment
// statistics mirroring the paper's executed-instruction counts).
func (e *Engine) CountInstruction(n uint64) { e.instrRetired += n }

// CountCycle records n simulated clock cycles.
func (e *Engine) CountCycle(n uint64) { e.cycles += n }

// InstructionsRetired returns this path's retired-instruction count.
func (e *Engine) InstructionsRetired() uint64 { return e.instrRetired }

// AbortLimitReached unwinds the path marking it partially explored; the
// execution controller calls this when a hard mid-step limit trips.
func (e *Engine) AbortLimitReached(msg string) {
	panic(abortError{AbortLimit, msg})
}

// addPC appends a constraint to the path. trusted marks replayed
// constraints: the query-cache seed model is known to satisfy them by
// program determinism, so its revalidation is skipped. Terms already on the
// path (hash-consing makes this a pointer lookup) are skipped: the
// constraint conjunction is unchanged and every later solver call gets a
// shorter assumption vector.
func (e *Engine) addPC(t *smt.Term, trusted bool) {
	if _, ok := e.pcsSet[t]; ok {
		return
	}
	e.pcs = append(e.pcs, t)
	e.pcsSet[t] = struct{}{}
	if e.qc != nil {
		e.qc.Observe(t, trusted)
	}
}

func (e *Engine) check(assumptions ...*smt.Term) solver.Result {
	e.stats.SolverQueries++
	return e.sol.Check(assumptions...)
}

// checkFeasible answers satisfiability of the path constraints plus the
// optional query condition (nil: the flip check over pcs alone), routing
// through the query-elimination layer when enabled. SolverQueries counts the
// engine-issued query either way, so the statistic is cache-independent.
func (e *Engine) checkFeasible(query *smt.Term) solver.Result {
	e.stats.SolverQueries++
	if e.qc != nil {
		return e.qc.CheckFeasible(e.pcs, query)
	}
	if query != nil {
		return e.sol.Check(append(e.pcs, query)...)
	}
	return e.sol.Check(e.pcs...)
}

// checkSibling is the eager sibling-feasibility query; with the cache
// enabled a Sat answer may carry the model that proves it, which seeds the
// sibling path's stack cache.
func (e *Engine) checkSibling(neg *smt.Term) (solver.Result, querycache.Model) {
	e.stats.SolverQueries++
	if e.qc != nil {
		return e.qc.CheckSibling(e.pcs, neg)
	}
	return e.sol.Check(append(e.pcs, neg)...), nil
}

// checkModel answers satisfiability guaranteeing a pass-through to the
// solver, so model values can be read afterwards. Model-bearing queries are
// never answered from the cache: the values the engine reads (concretized
// constants, witnesses, test vectors) must not depend on cache state.
func (e *Engine) checkModel(query *smt.Term) solver.Result {
	e.stats.SolverQueries++
	if e.qc != nil {
		return e.qc.CheckModel(e.pcs, query)
	}
	if query != nil {
		return e.sol.Check(append(e.pcs, query)...)
	}
	return e.sol.Check(e.pcs...)
}

// polarise returns cond or its negation according to dir.
func polarise(ctx *smt.Context, cond *smt.Term, dir bool) *smt.Term {
	if dir {
		return cond
	}
	return ctx.BNot(cond)
}
