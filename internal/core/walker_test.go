package core

import (
	"sort"
	"testing"
)

// branchProgram returns a RunFunc enumerating 2^bits paths over one symbolic
// byte, recording each path's bit pattern via the collect callback.
func branchProgram(bits int, collect func(pattern uint64)) RunFunc {
	return func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		var pat uint64
		for bit := 0; bit < bits; bit++ {
			if e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1))) {
				pat |= 1 << bit
			}
		}
		if collect != nil {
			collect(pat)
		}
		return nil
	}
}

// TestShardEnumeratesFullTree drives a Shard by hand over a 3-level tree and
// checks it explores exactly the 8 paths with unique canonical signatures.
func TestShardEnumeratesFullTree(t *testing.T) {
	seen := map[uint64]int{}
	s := NewShard(branchProgram(3, func(p uint64) { seen[p]++ }), ShardOptions{})
	s.SeedRoot()
	sigs := map[Sig]bool{}
	paths := 0
	for s.Pending() > 0 {
		rec, ok := s.Step(SearchDFS)
		if !ok {
			break
		}
		paths++
		if rec.Kind != PathCompleted {
			t.Fatalf("path %d kind = %v, want completed", paths, rec.Kind)
		}
		if sigs[rec.Sig] {
			t.Fatalf("duplicate signature %q", rec.Sig)
		}
		sigs[rec.Sig] = true
	}
	if paths != 8 || len(seen) != 8 {
		t.Fatalf("paths=%d distinct=%d, want 8/8", paths, len(seen))
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("pattern %03b executed %d times", p, n)
		}
	}
}

// TestShardDFSVisitsInSigOrder pins the property the canonical merge relies
// on: a depth-first shard discovers paths in ascending signature order, so
// lexicographic Sig order equals sequential DFS discovery order.
func TestShardDFSVisitsInSigOrder(t *testing.T) {
	s := NewShard(branchProgram(4, nil), ShardOptions{})
	s.SeedRoot()
	var order []Sig
	for s.Pending() > 0 {
		rec, ok := s.Step(SearchDFS)
		if !ok {
			break
		}
		order = append(order, rec.Sig)
	}
	if len(order) != 16 {
		t.Fatalf("paths = %d, want 16", len(order))
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("DFS discovery order is not ascending Sig order: %q", order)
	}
}

// TestShardHandoffRoundTrip exports a subtree from one shard, imports it
// into a second shard with its own term context, and checks the union of
// both shards' paths equals a sequential exploration.
func TestShardHandoffRoundTrip(t *testing.T) {
	s1 := NewShard(branchProgram(3, nil), ShardOptions{})
	s1.SeedRoot()
	// Explore two paths breadth-first to widen the frontier.
	for i := 0; i < 2; i++ {
		if _, ok := s1.Step(SearchBFS); !ok {
			t.Fatal("frontier drained during seeding")
		}
	}
	if s1.Pending() == 0 {
		t.Fatal("no frontier to hand off")
	}
	prefix, sig, ok := s1.Handoff()
	if !ok {
		t.Fatal("handoff failed")
	}
	if len(prefix) == 0 || sig == "" {
		t.Fatalf("exported prefix=%v sig=%q", prefix, sig)
	}

	s2 := NewShard(branchProgram(3, nil), ShardOptions{})
	s2.AddPrefix(prefix, sig)

	sigs := map[Sig]bool{}
	collect := func(s *Shard) int {
		n := 0
		for s.Pending() > 0 {
			rec, ok := s.Step(SearchDFS)
			if !ok {
				break
			}
			if sigs[rec.Sig] {
				t.Fatalf("subtrees overlap at signature %q", rec.Sig)
			}
			sigs[rec.Sig] = true
			n++
		}
		return n
	}
	n1 := collect(s1)
	n2 := collect(s2)
	if n1+n2+2 != 8 {
		t.Fatalf("seed(2) + s1(%d) + s2(%d) paths, want 8 total", n1, n2)
	}
	if n2 == 0 {
		t.Fatal("imported subtree explored no paths")
	}
}

// TestShardBoundPrunes checks SetBound discards exactly the paths ordered
// after the bound.
func TestShardBoundPrunes(t *testing.T) {
	// Reference exploration: collect all 8 sigs in DFS (= canonical) order.
	ref := NewShard(branchProgram(3, nil), ShardOptions{})
	ref.SeedRoot()
	var all []Sig
	for ref.Pending() > 0 {
		rec, ok := ref.Step(SearchDFS)
		if !ok {
			break
		}
		all = append(all, rec.Sig)
	}
	if len(all) != 8 {
		t.Fatalf("reference paths = %d, want 8", len(all))
	}

	bound := all[4]
	s := NewShard(branchProgram(3, nil), ShardOptions{})
	s.SeedRoot()
	s.SetBound(bound)
	var got []Sig
	for s.Pending() > 0 {
		rec, ok := s.Step(SearchBFS) // non-canonical order on purpose
		if !ok {
			break
		}
		got = append(got, rec.Sig)
	}
	if len(got) != 5 {
		t.Fatalf("bounded exploration ran %d paths, want 5 (all sig <= bound)", len(got))
	}
	for _, sig := range got {
		if sig > bound {
			t.Fatalf("explored signature %q beyond bound %q", sig, bound)
		}
	}
	if !s.Pruned() {
		t.Fatal("expected pruning to be reported")
	}
}

// TestShardPerPathStatsSplitInvariant checks the per-path statistic deltas a
// record carries do not depend on where the tree was split: the same path
// reached via a hand-off prefix reports the same query/branch counts as it
// does in a monolithic exploration.
func TestShardPerPathStatsSplitInvariant(t *testing.T) {
	mono := NewShard(branchProgram(3, nil), ShardOptions{})
	mono.SeedRoot()
	bysig := map[Sig]PathRecord{}
	for mono.Pending() > 0 {
		rec, ok := mono.Step(SearchDFS)
		if !ok {
			break
		}
		bysig[rec.Sig] = rec
	}

	s1 := NewShard(branchProgram(3, nil), ShardOptions{})
	s1.SeedRoot()
	for i := 0; i < 2; i++ {
		s1.Step(SearchBFS)
	}
	prefix, sig, ok := s1.Handoff()
	if !ok {
		t.Fatal("handoff failed")
	}
	s2 := NewShard(branchProgram(3, nil), ShardOptions{})
	s2.AddPrefix(prefix, sig)
	for s2.Pending() > 0 {
		rec, ok := s2.Step(SearchDFS)
		if !ok {
			break
		}
		want, found := bysig[rec.Sig]
		if !found {
			t.Fatalf("split exploration found unknown path %q", rec.Sig)
		}
		if rec.SolverQueries != want.SolverQueries ||
			rec.Branches != want.Branches ||
			rec.Concretizations != want.Concretizations ||
			rec.Instructions != want.Instructions {
			t.Fatalf("path %q stats differ across splits: got %+v want %+v", rec.Sig, rec, want)
		}
	}
}

// TestWalkerMaterializeSharesPrefixes checks the parent-pointer frontier:
// sibling nodes scheduled from one run share the run's fresh-event slice
// instead of owning O(depth) copies.
func TestWalkerMaterializeSharesPrefixes(t *testing.T) {
	x := NewExplorer(branchProgram(4, nil))
	wk := &walker{}
	wk.addRoot()
	n := wk.pop(SearchDFS, &pathRNG{})
	var st Stats
	eng := newEngine(x.ctx, x.sol, wk.materialize(n), &st, nil)
	if err, abort := runOne(x.run, eng); err != nil || abort != nil {
		t.Fatalf("run failed: %v / %v", err, abort)
	}
	wk.schedule(n, eng.fresh)
	if wk.pending() != 4 {
		t.Fatalf("scheduled %d siblings, want 4", wk.pending())
	}
	for _, child := range wk.frontier {
		if &child.events[0] != &eng.fresh[0] {
			t.Fatal("sibling does not share the run's fresh slice")
		}
	}
	// Deepest sibling materializes to the full run with its last decision
	// flipped.
	deepest := wk.frontier[len(wk.frontier)-1]
	pre := wk.materialize(deepest)
	if len(pre) != 4 {
		t.Fatalf("deepest prefix length = %d, want 4", len(pre))
	}
	for i := 0; i < 3; i++ {
		if pre[i].dir != eng.fresh[i].dir {
			t.Fatalf("prefix event %d direction diverged", i)
		}
	}
	if pre[3].dir == eng.fresh[3].dir {
		t.Fatal("last prefix event was not flipped")
	}
}

// BenchmarkExploreDeepTree measures exploration of a deep tree; with the
// parent-pointer frontier, scheduling a path's siblings is O(depth) pointers
// rather than O(depth²) copied events, which this benchmark's allocation
// figures track.
func BenchmarkExploreDeepTree(b *testing.B) {
	const bits = 8 // 256 paths, depth-8 prefixes
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := NewExplorer(func(e *Engine) error {
			ctx := e.Context()
			v := e.MakeSymbolic("v", 8)
			for bit := 0; bit < bits; bit++ {
				e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1)))
			}
			return nil
		})
		rep := x.Explore(Options{})
		if rep.Stats.Paths != 1<<bits {
			b.Fatalf("paths = %d, want %d", rep.Stats.Paths, 1<<bits)
		}
	}
}
