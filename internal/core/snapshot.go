// Fork-point state checkpointing: the mechanism that lets a scheduled
// sibling path resume from its divergence point instead of replaying the
// whole program from cycle 0.
//
// The replay-based execution model (see package comment) costs
// O(paths × depth) symbolic re-execution: every path re-runs the program
// from the start. Siblings share their entire prefix with the run that
// scheduled them, so that work is pure redundancy. A Go program cannot be
// resumed mid-stack, so the program instead declares quiescent points (the
// top of the co-simulation's cycle loop) by calling Engine.Checkpoint with a
// capture closure. The engine snapshots its own cheap state (hash-consed
// *smt.Term pointers make the constraint and symbolic-input vectors free to
// share; program memories use internal/cow layers inside the capture
// closure) and attaches the latest checkpoint to every fresh fork event.
// When the explorer later schedules that event's sibling, it restores the
// checkpoint and replays only the short intra-cycle event tail — the events
// between the checkpoint and the fork, with the final branch flipped.
//
// The walker's portable decision-prefix representation stays canonical:
// checkpoints are an in-memory acceleration attached to frontier nodes and
// are dropped (falling back to full replay) whenever a prefix crosses a
// worker hand-off, is imported from qstore/another context, or resume
// preconditions fail. Equivalence of the two execution modes is pinned by
// TestForkReplayEquivalence and the CI fork smoke.
package core

import (
	"symriscv/internal/querycache"
	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// ResumeFunc continues a checkpointed program execution under a fresh
// engine, exactly as if the program had run from the start and reached the
// checkpoint. It has the same contract as the run function handed to the
// Explorer.
type ResumeFunc = RunFunc

// checkpoint is one quiescent-point snapshot of a running path: the
// program-side restore closure plus the engine state needed to make the
// resumed run indistinguishable from a full replay.
type checkpoint struct {
	resume ResumeFunc

	// pcs/symbolic are capped slices sharing the parent's backing array up
	// to the snapshot; appends by resumed runs reallocate, so any number of
	// siblings can resume from one checkpoint.
	pcs      []*smt.Term
	symbolic []*smt.Term

	eventIdx int // events seen when captured, in the capturing run's coordinates

	// replayQ is the number of SolverQueries a full replay of the events up
	// to this checkpoint would issue (non-constant Assumes re-check
	// feasibility and witness queries re-execute on replay; branch and
	// concretize replays are query-free). Resumed runs pre-credit it so the
	// SolverQueries statistic stays byte-identical with replay.
	replayQ uint64

	instr  uint64
	cycles uint64
}

// forkPoint rides on a fresh branch event whose sibling can be resumed. tail
// holds the events from the checkpoint to the fork with the final branch
// flipped — the only part of the sibling's path that still replays.
type forkPoint struct {
	cp   *checkpoint
	tail []event
}

// Checkpoint declares the current program position as a quiescent point the
// engine may later resume siblings from. The program calls it where its
// state is self-contained (the top of the co-simulation's cycle loop);
// capture must freeze the program state and return a closure rebuilding an
// equivalent execution bound to a fresh engine. capture is only invoked when
// fork checkpointing is enabled, so programs call Checkpoint unconditionally
// and pay nothing under -fork off.
func (e *Engine) Checkpoint(capture func() ResumeFunc) {
	if !e.forks {
		return
	}
	// The current checkpoint stays valid until a decision event lands after
	// it: a resumed sibling deterministically re-runs any event-free cycles,
	// so quiet cycles never pay the capture cost.
	if e.cp != nil && e.cp.eventIdx == e.n {
		return
	}
	e.cp = &checkpoint{
		resume:   capture(),
		pcs:      e.pcs[:len(e.pcs):len(e.pcs)],
		symbolic: e.symbolic[:len(e.symbolic):len(e.symbolic)],
		eventIdx: e.n,
		replayQ:  e.replayQ,
		instr:    e.instrRetired,
		cycles:   e.cycles,
	}
	e.snaps++
}

// eventAt returns the i-th event this run has seen, replayed or fresh.
func (e *Engine) eventAt(i int) event {
	if i < len(e.prefix) {
		return e.prefix[i]
	}
	return e.fresh[i-len(e.prefix)]
}

// forkFor builds the fork point for a fresh branch event about to be
// recorded (ev is not yet appended; its sibling replays with dir flipped).
// Returns nil when no checkpoint has been taken yet.
func (e *Engine) forkFor(ev event) *forkPoint {
	cp := e.cp
	if cp == nil {
		return nil
	}
	tail := make([]event, 0, e.n-cp.eventIdx+1)
	for i := cp.eventIdx; i < e.n; i++ {
		t := e.eventAt(i)
		t.fork = nil // interior tail events never schedule
		tail = append(tail, t)
	}
	ev.dir = !ev.dir
	ev.fork = nil
	tail = append(tail, ev)
	return &forkPoint{cp: cp, tail: tail}
}

// resumable reports whether a scheduled node may resume from its fork point
// instead of replaying. Resume requires:
//   - a fork point (local nodes only — imported/handed-off prefixes replay);
//   - fork checkpointing enabled;
//   - no solver conflict budget: under a budget a replayed query could
//     return Unknown and abort the path, an outcome resume would skip;
//   - with the query cache enabled, a complete sibling seed model: the seed
//     is what keeps a replay's cache stack byte-equivalent to the resumed
//     reconstruction (see newResumedEngine).
func resumable(n *node, noFork bool, qc *querycache.Local, conflictBudget uint64) bool {
	if noFork || n.fork == nil || conflictBudget != 0 {
		return false
	}
	if qc == nil {
		return true
	}
	last := n.fork.tail[len(n.fork.tail)-1]
	return last.sibVerified && last.sibModel != nil
}

// newResumedEngine builds the engine for a resumed sibling: the checkpoint's
// engine state is restored, the fork tail becomes the replay prefix, and the
// statistics a full replay would have accumulated before the checkpoint are
// pre-credited. The query-cache path state is reconstructed exactly: a path
// that reached the checkpoint had every pre-checkpoint feasibility check
// stack-hit on its complete seed model and every witness query answer Unsat
// (a Sat witness ends the path), so a replay's stack at the checkpoint is
// precisely [seed] — which BeginPath plus trusted Observes rebuilds.
func newResumedEngine(ctx *smt.Context, sol *solver.Solver, fork *forkPoint, stats *Stats, qc *querycache.Local) *Engine {
	cp := fork.cp
	e := &Engine{
		ctx:          ctx,
		sol:          sol,
		prefix:       fork.tail,
		pcs:          cp.pcs,
		pcsSet:       make(map[*smt.Term]struct{}, len(cp.pcs)+16),
		symbolic:     cp.symbolic,
		instrRetired: cp.instr,
		cycles:       cp.cycles,
		replayQ:      cp.replayQ,
		qc:           qc,
		stats:        stats,
	}
	for _, t := range cp.pcs {
		e.pcsSet[t] = struct{}{}
	}
	stats.SolverQueries += cp.replayQ
	if qc != nil {
		var seed querycache.Model
		if n := len(fork.tail); n > 0 {
			seed = fork.tail[n-1].sibModel
		}
		qc.BeginPath(seed)
		for _, t := range cp.pcs {
			qc.Observe(t, true)
		}
	}
	return e
}
