package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"symriscv/internal/smt"
)

func TestTwoPathBranch(t *testing.T) {
	errLow := errors.New("x is low")
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		xv := e.MakeSymbolic("x", 8)
		if e.Branch(ctx.Ult(xv, ctx.BV(8, 10))) {
			return errLow
		}
		return nil
	})
	rep := x.Explore(Options{})
	if rep.Stats.Paths != 2 {
		t.Fatalf("paths = %d, want 2", rep.Stats.Paths)
	}
	if rep.Stats.Completed != 1 || len(rep.Findings) != 1 {
		t.Fatalf("completed=%d findings=%d", rep.Stats.Completed, len(rep.Findings))
	}
	if !rep.Exhausted {
		t.Fatal("expected exhausted exploration")
	}
	f := rep.Findings[0]
	if !errors.Is(f.Err, errLow) {
		t.Fatalf("finding error = %v", f.Err)
	}
	if v, ok := f.Inputs["x"]; !ok || v >= 10 {
		t.Fatalf("witness x = %v (ok=%v), want < 10", v, ok)
	}
}

func TestIndependentBranchesEnumerateAllPaths(t *testing.T) {
	seen := map[string]int{}
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		var sig string
		for bit := 0; bit < 3; bit++ {
			if e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1))) {
				sig += "1"
			} else {
				sig += "0"
			}
		}
		seen[sig]++
		return nil
	})
	rep := x.Explore(Options{GenerateTests: true})
	if rep.Stats.Paths != 8 || rep.Stats.Completed != 8 {
		t.Fatalf("paths=%d completed=%d, want 8/8", rep.Stats.Paths, rep.Stats.Completed)
	}
	if len(seen) != 8 {
		t.Fatalf("distinct signatures = %d, want 8", len(seen))
	}
	for sig, n := range seen {
		if n != 1 {
			t.Fatalf("signature %s executed %d times", sig, n)
		}
	}
	if len(rep.TestVectors) != 8 {
		t.Fatalf("test vectors = %d, want 8", len(rep.TestVectors))
	}
	// Each test vector must reproduce a distinct low-3-bit pattern.
	pats := map[uint64]bool{}
	for _, tv := range rep.TestVectors {
		pats[tv.Inputs["v"]&7] = true
	}
	if len(pats) != 8 {
		t.Fatalf("test vectors cover %d patterns, want 8", len(pats))
	}
}

func TestAssumePrunes(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		e.Assume(ctx.Eq(v, ctx.BV(8, 5)))
		if e.Branch(ctx.Ult(v, ctx.BV(8, 10))) {
			return nil
		}
		return errors.New("unreachable arm executed")
	})
	rep := x.Explore(Options{})
	if len(rep.Findings) != 0 {
		t.Fatalf("unexpected findings: %v", rep.Findings)
	}
	if rep.Stats.Completed != 1 {
		t.Fatalf("completed = %d, want 1", rep.Stats.Completed)
	}
	// The eager sibling check must prove the other direction infeasible at
	// branch time, so no dead path is ever scheduled.
	if rep.Stats.Paths != 1 || rep.Stats.Infeasible != 0 {
		t.Fatalf("paths=%d infeasible=%d, want 1/0", rep.Stats.Paths, rep.Stats.Infeasible)
	}
}

func TestAssumeFalseAbortsPath(t *testing.T) {
	ran := 0
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		ran++
		e.Assume(ctx.False())
		return errors.New("must not reach")
	})
	rep := x.Explore(Options{})
	if ran != 1 || len(rep.Findings) != 0 || rep.Stats.Infeasible != 1 {
		t.Fatalf("ran=%d findings=%d infeasible=%d", ran, len(rep.Findings), rep.Stats.Infeasible)
	}
}

func TestConcretizeConsistentWithConstraints(t *testing.T) {
	var got uint64
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		addr := e.MakeSymbolic("addr", 32)
		e.Assume(ctx.Ult(addr, ctx.BV(32, 0x100)))
		e.Assume(ctx.Uge(addr, ctx.BV(32, 0xf0)))
		got = e.Concretize(addr)
		return nil
	})
	rep := x.Explore(Options{})
	if rep.Stats.Completed != 1 {
		t.Fatalf("completed = %d", rep.Stats.Completed)
	}
	if got < 0xf0 || got >= 0x100 {
		t.Fatalf("concretized value %#x outside constraints", got)
	}
}

func TestConcretizeThenBranchReplays(t *testing.T) {
	// A branch after a concretization forces a replay through the recorded
	// concretization; the value must be identical on both paths.
	vals := map[uint64]int{}
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		addr := e.MakeSymbolic("a", 16)
		data := e.MakeSymbolic("d", 16)
		e.Assume(ctx.Ult(addr, ctx.BV(16, 4)))
		v := e.Concretize(addr)
		vals[v]++
		if e.Branch(ctx.Ult(data, ctx.BV(16, 100))) {
			return nil
		}
		return nil
	})
	rep := x.Explore(Options{})
	if rep.Stats.Completed != 2 {
		t.Fatalf("completed = %d, want 2", rep.Stats.Completed)
	}
	if len(vals) != 1 {
		t.Fatalf("concretization diverged across replays: %v", vals)
	}
	for v, n := range vals {
		if n != 2 {
			t.Fatalf("value %d seen %d times, want 2", v, n)
		}
	}
}

func TestConstantBranchRecordsNothing(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		if !e.Branch(ctx.True()) || e.Branch(ctx.False()) {
			return errors.New("constant branch misrouted")
		}
		return nil
	})
	rep := x.Explore(Options{})
	if rep.Stats.Paths != 1 || rep.Stats.Completed != 1 {
		t.Fatalf("paths=%d completed=%d, want 1/1", rep.Stats.Paths, rep.Stats.Completed)
	}
	if rep.Stats.Branches != 0 {
		t.Fatalf("symbolic branches = %d, want 0", rep.Stats.Branches)
	}
}

func TestMaxPathsBudget(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		for bit := 0; bit < 6; bit++ {
			e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1)))
		}
		return nil
	})
	rep := x.Explore(Options{MaxPaths: 5})
	if rep.Stats.Paths != 5 {
		t.Fatalf("paths = %d, want 5", rep.Stats.Paths)
	}
	if rep.Exhausted {
		t.Fatal("must not report exhaustion under a path budget")
	}
}

func TestStopOnFirstFinding(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		if e.Branch(ctx.Eq(v, ctx.BV(8, 0x42))) {
			return fmt.Errorf("bug for 0x42")
		}
		if e.Branch(ctx.Eq(v, ctx.BV(8, 0x43))) {
			return fmt.Errorf("bug for 0x43")
		}
		return nil
	})
	rep := x.Explore(Options{StopOnFirstFinding: true})
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(rep.Findings))
	}
}

func TestBFSAndDFSCoverSameTree(t *testing.T) {
	prog := func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		if e.Branch(ctx.Ult(v, ctx.BV(8, 64))) {
			e.Branch(ctx.Ult(v, ctx.BV(8, 32)))
		} else {
			e.Branch(ctx.Ult(v, ctx.BV(8, 128)))
			e.Branch(ctx.Eq(v, ctx.BV(8, 200)))
		}
		return nil
	}
	dfs := NewExplorer(prog).Explore(Options{})
	bfs := NewExplorer(prog).Explore(Options{Search: SearchBFS})
	if dfs.Stats.Completed != bfs.Stats.Completed || dfs.Stats.Paths != bfs.Stats.Paths {
		t.Fatalf("dfs %v != bfs %v", dfs.Stats, bfs.Stats)
	}
	if !dfs.Exhausted || !bfs.Exhausted {
		t.Fatal("both strategies must exhaust the tree")
	}
}

func TestWitnessSatisfiesPathAndCondition(t *testing.T) {
	// The classic KLEE-tutorial-style sign function, cross-checked: the
	// witness for the "negative" finding must actually be negative.
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("n", 32)
		if e.Branch(ctx.Slt(v, ctx.BV(32, 0))) {
			if env, ok := e.FindWitness(ctx.Slt(v, ctx.BV(32, 0xfffffff0))); ok {
				return mismatchErr{env}
			}
			return nil
		}
		return nil
	})
	rep := x.Explore(Options{})
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(rep.Findings))
	}
	v := rep.Findings[0].Inputs["n"]
	if int32(v) >= 0 || v >= 0xfffffff0 {
		t.Fatalf("witness %#x does not satisfy path+condition", v)
	}
}

type mismatchErr struct{ env smt.MapEnv }

func (m mismatchErr) Error() string       { return "mismatch" }
func (m mismatchErr) Witness() smt.MapEnv { return m.env }

func TestErrStopExploration(t *testing.T) {
	calls := 0
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		calls++
		e.Branch(ctx.Ult(v, ctx.BV(8, 10)))
		return ErrStopExploration
	})
	rep := x.Explore(Options{})
	if calls != 1 || len(rep.Findings) != 0 {
		t.Fatalf("calls=%d findings=%d", calls, len(rep.Findings))
	}
}

func TestCountInstructionAggregates(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		e.CountInstruction(3)
		e.Branch(ctx.Ult(v, ctx.BV(8, 10)))
		e.CountInstruction(2)
		return nil
	})
	rep := x.Explore(Options{})
	// Two paths, 5 instructions each.
	if rep.Stats.Instructions != 10 {
		t.Fatalf("instructions = %d, want 10", rep.Stats.Instructions)
	}
}

func TestRandomSearchCoversTreeDeterministically(t *testing.T) {
	prog := func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		for bit := 0; bit < 4; bit++ {
			e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1)))
		}
		return nil
	}
	a := NewExplorer(prog).Explore(Options{Search: SearchRandom, Seed: 5})
	b := NewExplorer(prog).Explore(Options{Search: SearchRandom, Seed: 5})
	if a.Stats.Completed != 16 || !a.Exhausted {
		t.Fatalf("random search missed paths: %v", a.Stats)
	}
	if a.Stats.Paths != b.Stats.Paths {
		t.Fatal("random search not deterministic under a fixed seed")
	}
	dfs := NewExplorer(prog).Explore(Options{})
	if dfs.Stats.Completed != a.Stats.Completed {
		t.Fatal("strategies disagree on tree size")
	}
}

func TestMaxInstructionsBudget(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		e.CountInstruction(10)
		for bit := 0; bit < 6; bit++ {
			e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1)))
		}
		return nil
	})
	rep := x.Explore(Options{MaxInstructions: 25})
	// 10 instructions per path: the budget check stops scheduling after the
	// cumulative count reaches 25 (i.e. after 3 paths).
	if rep.Stats.Paths != 3 {
		t.Fatalf("paths = %d, want 3", rep.Stats.Paths)
	}
}

func TestMaxTimeBudget(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 32)
		for bit := 0; bit < 30; bit++ {
			e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1)))
		}
		return nil
	})
	rep := x.Explore(Options{MaxTime: 50 * time.Millisecond})
	if rep.Exhausted {
		t.Fatal("a 2^30 tree cannot be exhausted in 50ms")
	}
	if rep.Stats.Elapsed > 5*time.Second {
		t.Fatalf("budget ignored: ran %v", rep.Stats.Elapsed)
	}
}

func TestReplayDivergencePanics(t *testing.T) {
	// A program whose branch conditions depend on mutable external state is
	// not deterministic; the engine must detect the divergence on replay.
	call := 0
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		call++
		bound := uint64(10 + call) // changes between replays: illegal
		e.Branch(ctx.Ult(v, ctx.BV(8, bound)))
		e.Branch(ctx.Ult(v, ctx.BV(8, 5)))
		return nil
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected replay-divergence panic")
		}
		if !strings.Contains(fmt.Sprint(r), "divergence") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	x.Explore(Options{})
}

func TestAbortLimitReachedCountsPartial(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		e.MakeSymbolic("v", 8)
		e.AbortLimitReached("test limit")
		return nil
	})
	rep := x.Explore(Options{})
	if rep.Stats.Partial != 1 || rep.Stats.Completed != 0 {
		t.Fatalf("limit abort: %v", rep.Stats)
	}
}

func TestPathConstraintsAccumulate(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		e.Assume(ctx.Ult(v, ctx.BV(8, 100)))
		e.Branch(ctx.Ult(v, ctx.BV(8, 50)))
		if n := len(e.PathConstraints()); n != 2 {
			t.Errorf("path constraints = %d, want 2", n)
		}
		return nil
	})
	x.Explore(Options{MaxPaths: 1})
}

func TestSymbolicInputsDeduplicated(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		a := e.MakeSymbolic("dup", 8)
		b := e.MakeSymbolic("dup", 8)
		if a != b {
			t.Error("same name must return the same variable")
		}
		if len(e.SymbolicInputs()) != 1 {
			t.Errorf("inputs = %d, want 1", len(e.SymbolicInputs()))
		}
		return nil
	})
	x.Explore(Options{MaxPaths: 1})
}

func TestBranchOnBVPanics(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		defer func() {
			if recover() == nil {
				t.Error("Branch on a bit-vector should panic")
			}
		}()
		e.Branch(e.Context().BV(8, 1))
		return nil
	})
	x.Explore(Options{MaxPaths: 1})
}

func TestConcretizeBoolPanics(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		defer func() {
			if recover() == nil {
				t.Error("Concretize on a Boolean should panic")
			}
		}()
		e.Concretize(e.Context().True())
		return nil
	})
	x.Explore(Options{MaxPaths: 1})
}

func TestAbortReasonStrings(t *testing.T) {
	for r, want := range map[AbortReason]string{
		AbortNone: "none", AbortInfeasible: "infeasible",
		AbortUnknown: "solver-unknown", AbortLimit: "limit",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	for s, want := range map[SearchStrategy]string{
		SearchDFS: "dfs", SearchBFS: "bfs", SearchRandom: "random-path",
	} {
		if s.String() != want {
			t.Errorf("SearchStrategy.String() = %q, want %q", s.String(), want)
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var snaps []Stats
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		for bit := 0; bit < 5; bit++ {
			e.Branch(ctx.Eq(ctx.Extract(v, bit, bit), ctx.BV(1, 1)))
		}
		return nil
	})
	rep := x.Explore(Options{
		Progress:      func(s Stats) { snaps = append(snaps, s) },
		ProgressEvery: 8,
	})
	if rep.Stats.Paths != 32 {
		t.Fatalf("paths = %d", rep.Stats.Paths)
	}
	if len(snaps) != 4 {
		t.Fatalf("progress callbacks = %d, want 4", len(snaps))
	}
	if snaps[0].Paths != 8 || snaps[3].Paths != 32 {
		t.Fatalf("snapshot paths wrong: %v", snaps)
	}
}

// TestNoBranchOptimizationsEquivalence: the ablation mode must explore the
// same path tree, just less efficiently (infeasible siblings get scheduled
// and rejected at replay instead of being pruned eagerly).
func TestNoBranchOptimizationsEquivalence(t *testing.T) {
	prog := func(e *Engine) error {
		ctx := e.Context()
		v := e.MakeSymbolic("v", 8)
		e.Assume(ctx.Ult(v, ctx.BV(8, 64)))
		if e.Branch(ctx.Ult(v, ctx.BV(8, 32))) {
			e.Branch(ctx.Ult(v, ctx.BV(8, 16)))
		}
		e.Branch(ctx.Ult(v, ctx.BV(8, 128))) // implied by the assume
		return nil
	}
	opt := NewExplorer(prog).Explore(Options{})
	abl := NewExplorer(prog).Explore(Options{NoBranchOptimizations: true})
	if opt.Stats.Completed != abl.Stats.Completed {
		t.Fatalf("completed paths differ: %d vs %d", opt.Stats.Completed, abl.Stats.Completed)
	}
	if abl.Stats.Infeasible == 0 {
		t.Error("ablation mode should schedule (and reject) infeasible siblings")
	}
	if opt.Stats.Infeasible != 0 {
		t.Error("optimized mode should prune infeasible siblings eagerly")
	}
}

// TestSolverBudgetAbortsPathAsPartial: with a starved SAT budget every
// symbolic branch aborts its path as AbortUnknown (counted partial).
func TestSolverBudgetAbortsPathAsPartial(t *testing.T) {
	x := NewExplorer(func(e *Engine) error {
		ctx := e.Context()
		a := e.MakeSymbolic("a", 32)
		b := e.MakeSymbolic("b", 32)
		// A branch condition hard enough to need more than one conflict.
		e.Branch(ctx.Eq(ctx.Mul(a, b), ctx.BV(32, 0x12345679)))
		return nil
	})
	rep := x.Explore(Options{SolverConflictBudget: 1, MaxPaths: 4})
	if rep.Stats.Completed != 0 {
		t.Skip("instance solved within one conflict on this build")
	}
	if rep.Stats.Partial == 0 {
		t.Fatalf("expected partial paths under a starved budget: %v", rep.Stats)
	}
}
