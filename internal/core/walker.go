package core

import "encoding/binary"

// Sig is the canonical signature of a path: one byte per branch decision
// (true sorts before false, so lexicographic Sig order equals the order a
// depth-first, true-first exploration discovers paths in) and nine bytes per
// concretization (tag plus the big-endian value). Two distinct paths always
// first disagree at a branch byte — a concretization never forks — so Sig
// order is a total order on paths that does not depend on which worker or
// search strategy discovered them. No path's Sig is a strict prefix of
// another's, and every scheduled sibling orders strictly after the path that
// scheduled it (siblings always flip a taken-true decision to false).
type Sig string

const (
	sigTrue       = 0x01
	sigFalse      = 0x02
	sigConcretize = 0x03
)

// appendSig appends the canonical encoding of one event.
func appendSig(buf []byte, ev event) []byte {
	if ev.kind == evBranch {
		if ev.dir {
			return append(buf, sigTrue)
		}
		return append(buf, sigFalse)
	}
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], ev.val)
	return append(append(buf, sigConcretize), v[:]...)
}

// Step is the portable form of one recorded event: a branch direction or a
// concretization value, with no term pointers, so a decision prefix can be
// replayed in a different smt.Context (parallel subtree hand-off).
// Deterministic symbolic-variable naming guarantees the importing context
// rebuilds the same decisions; the replay trusts that instead of
// pointer-checking.
type Step struct {
	Concretize  bool   // concretization (else branch)
	Dir         bool   // branch direction taken
	Val         uint64 // concretization value
	SibVerified bool   // branch: this direction was proven feasible when scheduled
	// SibModel is the model that proved this direction feasible (by variable
	// name, so it is context-portable); it seeds the importing shard's stack
	// cache. Nil when no complete model was captured. Immutable.
	SibModel map[string]uint64
}

// node is one scheduled path of the frontier, represented as a parent
// pointer plus a shared slice of the scheduling run's fresh events: the
// prefix to replay is materialize(parent) ++ events[:take], with the last
// event's direction flipped when flip is set. Sharing the immutable fresh
// slice across all siblings of a run replaces the old per-sibling prefix
// copy, which allocated O(depth²) memory per explored path.
type node struct {
	parent *node
	events []event // the scheduling run's fresh events (immutable, shared)
	take   int     // events[:take] belong to this prefix
	flip   bool    // events[take-1] replays with its direction inverted
	depth  int     // total prefix length (parent.depth + take)
	sig    Sig     // canonical signature of the prefix ("" unless tracking)
	// fork, when non-nil, is the flipped decision's resumable checkpoint
	// (snapshot.go). Local acceleration only: exported/imported prefixes
	// carry no fork and replay from the start.
	fork *forkPoint
}

// walker owns the frontier of scheduled paths and the scratch buffer
// prefixes are materialized into. The buffer is only valid until the next
// materialize call; the sequential explorer and the shard both finish one
// path before scheduling the next, so a single buffer suffices.
type walker struct {
	frontier  []*node
	scratch   []event
	sigBuf    []byte
	trackSigs bool
	bound     Sig  // discard nodes ordered after this signature
	bounded   bool // bound is active
	pruned    bool // at least one node was discarded by the bound
}

func (w *walker) pending() int { return len(w.frontier) }

// addRoot schedules the empty prefix (the whole tree).
func (w *walker) addRoot() { w.frontier = append(w.frontier, &node{}) }

// addPrefix schedules an imported portable prefix as a subtree root.
func (w *walker) addPrefix(steps []Step, sig Sig) {
	evs := make([]event, len(steps))
	for i, st := range steps {
		if st.Concretize {
			evs[i] = event{kind: evConcretize, val: st.Val}
		} else {
			evs[i] = event{kind: evBranch, dir: st.Dir, sibVerified: st.SibVerified, sibModel: st.SibModel}
		}
	}
	w.frontier = append(w.frontier, &node{events: evs, take: len(evs), depth: len(evs), sig: sig})
}

// setBound discards future work ordered strictly after sig. Because a node's
// prefix signature is a string prefix of every path in its subtree, pruning
// a node with sig > bound can never lose a path ordered at or before the
// bound.
func (w *walker) setBound(sig Sig) {
	w.bound = sig
	w.bounded = true
}

// pop removes and returns the next node per strategy, discarding pruned
// nodes; nil when the frontier is exhausted.
func (w *walker) pop(strategy SearchStrategy, rng *pathRNG) *node {
	for len(w.frontier) > 0 {
		var n *node
		switch strategy {
		case SearchBFS:
			n = w.frontier[0]
			w.frontier = w.frontier[1:]
		case SearchRandom:
			i := rng.intn(len(w.frontier))
			n = w.frontier[i]
			w.frontier[i] = w.frontier[len(w.frontier)-1]
			w.frontier = w.frontier[:len(w.frontier)-1]
		default:
			n = w.frontier[len(w.frontier)-1]
			w.frontier = w.frontier[:len(w.frontier)-1]
		}
		if w.bounded && n.sig > w.bound {
			w.pruned = true
			continue
		}
		return n
	}
	return nil
}

// materialize writes the node's full prefix into the walker's scratch
// buffer. The result is invalidated by the next materialize call.
func (w *walker) materialize(n *node) []event {
	if cap(w.scratch) < n.depth {
		w.scratch = make([]event, n.depth)
	}
	buf := w.scratch[:n.depth]
	pos := n.depth
	for m := n; m != nil; m = m.parent {
		pos -= m.take
		copy(buf[pos:pos+m.take], m.events[:m.take])
		if m.flip {
			buf[pos+m.take-1].dir = !buf[pos+m.take-1].dir
		}
	}
	return buf
}

// schedule pushes the unexplored sibling of every fresh branch decision of a
// finished run, sharing the run's fresh slice across all of them.
func (w *walker) schedule(n *node, fresh []event) {
	var cum []byte
	if w.trackSigs {
		cum = append(w.sigBuf[:0], n.sig...)
	}
	for i, ev := range fresh {
		if ev.kind == evBranch && !ev.noSibling {
			child := &node{parent: n, events: fresh, take: i + 1, flip: true, depth: n.depth + i + 1, fork: ev.fork}
			if w.trackSigs {
				flipped := ev
				flipped.dir = !ev.dir
				child.sig = Sig(appendSig(cum, flipped))
			}
			w.frontier = append(w.frontier, child)
		}
		if w.trackSigs {
			cum = appendSig(cum, ev)
		}
	}
	if w.trackSigs {
		w.sigBuf = cum[:0]
	}
}

// pathSig returns the canonical signature of the full path: the node's
// prefix followed by the run's fresh events.
func (w *walker) pathSig(n *node, fresh []event) Sig {
	cum := append(w.sigBuf[:0], n.sig...)
	for _, ev := range fresh {
		cum = appendSig(cum, ev)
	}
	w.sigBuf = cum[:0]
	return Sig(cum)
}

// export materializes a node into its portable form.
func (w *walker) export(n *node) []Step {
	evs := w.materialize(n)
	steps := make([]Step, len(evs))
	for i, ev := range evs {
		steps[i] = Step{
			Concretize:  ev.kind == evConcretize,
			Dir:         ev.dir,
			Val:         ev.val,
			SibVerified: ev.sibVerified,
			SibModel:    ev.sibModel,
		}
	}
	return steps
}
