// Package faults defines the ten injectable RTL errors E0–E9 of the paper's
// performance evaluation (§V-B). Each fault targets one microarchitectural
// point of the MicroRV32 core model; internal/microrv32 consults the active
// Set at those points.
package faults

import "fmt"

// Fault identifies one injectable error.
type Fault uint8

// The injected errors, in the paper's numbering.
const (
	// E0 marks instruction bit 25 (the RV64 shamt bit, reserved in RV32) as
	// don't-care in the SLLI decode-table entry, so the reserved encoding
	// decodes as SLLI instead of raising an illegal-instruction trap.
	E0 Fault = iota
	// E1 injects the same don't-care bit into the SRLI decode entry.
	E1
	// E2 injects the same don't-care bit into the SRAI decode entry (the
	// paper lists SRLI twice; SRAI is the remaining shift-immediate — see
	// DESIGN.md).
	E2
	// E3 is a stuck-at-0 fault on the lowest result bit of ADDI.
	E3
	// E4 is a stuck-at-0 fault on the highest result bit of SUB.
	E4
	// E5 prevents JAL from changing the PC.
	E5
	// E6 changes BNE to behave like BEQ.
	E6
	// E7 flips the byte-lane endianness of the LBU memory access.
	E7
	// E8 removes the 8-to-32-bit sign extension from LB.
	E8
	// E9 makes LW load only the lower 16 bits from memory.
	E9
	NumFaults // sentinel
)

var faultNames = [NumFaults]string{"E0", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"}

var faultDescs = [NumFaults]string{
	E0: "SLLI decode don't-care at bit 25 (reserved RV64 encoding accepted)",
	E1: "SRLI decode don't-care at bit 25 (reserved RV64 encoding accepted)",
	E2: "SRAI decode don't-care at bit 25 (reserved RV64 encoding accepted)",
	E3: "ADDI result bit 0 stuck-at-0",
	E4: "SUB result bit 31 stuck-at-0",
	E5: "JAL does not change the PC",
	E6: "BNE behaves like BEQ",
	E7: "LBU byte-lane endianness flipped",
	E8: "LB missing sign extension",
	E9: "LW loads only the lower 16 bits",
}

func (f Fault) String() string {
	if f < NumFaults {
		return faultNames[f]
	}
	return fmt.Sprintf("E?(%d)", uint8(f))
}

// Description returns the human-readable fault description.
func (f Fault) Description() string {
	if f < NumFaults {
		return faultDescs[f]
	}
	return "unknown fault"
}

// All returns every defined fault in order.
func All() []Fault {
	out := make([]Fault, NumFaults)
	for i := range out {
		out[i] = Fault(i)
	}
	return out
}

// Set is a bit set of active faults.
type Set uint16

// None is the empty fault set.
const None Set = 0

// Only returns a set containing exactly f.
func Only(f Fault) Set { return 1 << f }

// Of returns a set containing the given faults.
func Of(fs ...Fault) Set {
	var s Set
	for _, f := range fs {
		s |= Only(f)
	}
	return s
}

// Has reports whether f is active in the set.
func (s Set) Has(f Fault) bool { return s&Only(f) != 0 }

// String lists the active faults.
func (s Set) String() string {
	if s == 0 {
		return "none"
	}
	out := ""
	for _, f := range All() {
		if s.Has(f) {
			if out != "" {
				out += "+"
			}
			out += f.String()
		}
	}
	return out
}
