// Package faults defines the injectable RTL errors of the performance
// evaluation: E0–E9 are the paper's ten errors (§V-B), each targeting one
// microarchitectural point shared by both core models; E10–E14 are the
// hazard/forwarding/control series specific to the pipelined core.
// internal/microrv32 and internal/pipecore consult the active Set at those
// points.
package faults

import "fmt"

// Fault identifies one injectable error.
type Fault uint8

// The injected errors, in the paper's numbering.
const (
	// E0 marks instruction bit 25 (the RV64 shamt bit, reserved in RV32) as
	// don't-care in the SLLI decode-table entry, so the reserved encoding
	// decodes as SLLI instead of raising an illegal-instruction trap.
	E0 Fault = iota
	// E1 injects the same don't-care bit into the SRLI decode entry.
	E1
	// E2 injects the same don't-care bit into the SRAI decode entry (the
	// paper lists SRLI twice; SRAI is the remaining shift-immediate — see
	// DESIGN.md).
	E2
	// E3 is a stuck-at-0 fault on the lowest result bit of ADDI.
	E3
	// E4 is a stuck-at-0 fault on the highest result bit of SUB.
	E4
	// E5 prevents JAL from changing the PC.
	E5
	// E6 changes BNE to behave like BEQ.
	E6
	// E7 flips the byte-lane endianness of the LBU memory access.
	E7
	// E8 removes the 8-to-32-bit sign extension from LB.
	E8
	// E9 makes LW load only the lower 16 bits from memory.
	E9
	// E10 drops the rs1 writeback bypass in the pipelined core: a value
	// written back on the previous cycle is not yet visible on the register
	// read port, so a back-to-back consumer reads the stale rs1 operand.
	E10
	// E11 drops the rs2 writeback bypass (the rs2 twin of E10).
	E11
	// E12 drops the wrong-path squash on a taken redirect: the speculatively
	// fetched fall-through instruction executes and retires anyway.
	E12
	// E13 mis-latches the redirect target: the front end resumes fetching at
	// target+4 after a taken branch/jump/trap.
	E13
	// E14 rolls the destination-register write back when the retiring
	// instruction redirects the front end (the flush erases a committed
	// writeback, e.g. the link register of a JAL).
	E14
	NumFaults // sentinel
)

var faultNames = [NumFaults]string{"E0", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14"}

var faultDescs = [NumFaults]string{
	E0:  "SLLI decode don't-care at bit 25 (reserved RV64 encoding accepted)",
	E1:  "SRLI decode don't-care at bit 25 (reserved RV64 encoding accepted)",
	E2:  "SRAI decode don't-care at bit 25 (reserved RV64 encoding accepted)",
	E3:  "ADDI result bit 0 stuck-at-0",
	E4:  "SUB result bit 31 stuck-at-0",
	E5:  "JAL does not change the PC",
	E6:  "BNE behaves like BEQ",
	E7:  "LBU byte-lane endianness flipped",
	E8:  "LB missing sign extension",
	E9:  "LW loads only the lower 16 bits",
	E10: "writeback bypass dropped on rs1 (stale operand on back-to-back use)",
	E11: "writeback bypass dropped on rs2 (stale operand on back-to-back use)",
	E12: "wrong-path squash dropped (speculative fall-through retires)",
	E13: "redirect target mis-latched (front end resumes at target+4)",
	E14: "flush rolls back the retiring instruction's register writeback",
}

func (f Fault) String() string {
	if f < NumFaults {
		return faultNames[f]
	}
	return fmt.Sprintf("E?(%d)", uint8(f))
}

// Description returns the human-readable fault description.
func (f Fault) Description() string {
	if f < NumFaults {
		return faultDescs[f]
	}
	return "unknown fault"
}

// All returns every defined fault in order.
func All() []Fault {
	out := make([]Fault, NumFaults)
	for i := range out {
		out[i] = Fault(i)
	}
	return out
}

// Base returns the paper's E0–E9 series — the faults meaningful to every
// core model (the microrv32 campaign default).
func Base() []Fault {
	out := make([]Fault, 0, 10)
	for f := E0; f <= E9; f++ {
		out = append(out, f)
	}
	return out
}

// Pipeline returns the E10–E14 hazard/forwarding/control series, meaningful
// only to the pipelined core.
func Pipeline() []Fault {
	out := make([]Fault, 0, 5)
	for f := E10; f <= E14; f++ {
		out = append(out, f)
	}
	return out
}

// Set is a bit set of active faults.
type Set uint16

// None is the empty fault set.
const None Set = 0

// Only returns a set containing exactly f.
func Only(f Fault) Set { return 1 << f }

// Of returns a set containing the given faults.
func Of(fs ...Fault) Set {
	var s Set
	for _, f := range fs {
		s |= Only(f)
	}
	return s
}

// Has reports whether f is active in the set.
func (s Set) Has(f Fault) bool { return s&Only(f) != 0 }

// String lists the active faults.
func (s Set) String() string {
	if s == 0 {
		return "none"
	}
	out := ""
	for _, f := range All() {
		if s.Has(f) {
			if out != "" {
				out += "+"
			}
			out += f.String()
		}
	}
	return out
}
