package faults

import "testing"

func TestSetOperations(t *testing.T) {
	s := Of(E0, E5, E9)
	for _, f := range []Fault{E0, E5, E9} {
		if !s.Has(f) {
			t.Errorf("set should contain %s", f)
		}
	}
	for _, f := range []Fault{E1, E2, E3, E4, E6, E7, E8} {
		if s.Has(f) {
			t.Errorf("set should not contain %s", f)
		}
	}
	if None.Has(E0) {
		t.Error("empty set contains E0")
	}
	if Only(E3) != Of(E3) {
		t.Error("Only and Of disagree")
	}
}

func TestAllAndNames(t *testing.T) {
	all := All()
	if len(all) != int(NumFaults) || len(all) != 15 {
		t.Fatalf("All() = %d faults, want 15", len(all))
	}
	if base := Base(); len(base) != 10 || base[0] != E0 || base[9] != E9 {
		t.Fatalf("Base() = %v, want E0..E9", base)
	}
	if pipe := Pipeline(); len(pipe) != 5 || pipe[0] != E10 || pipe[4] != E14 {
		t.Fatalf("Pipeline() = %v, want E10..E14", pipe)
	}
	seen := map[string]bool{}
	for _, f := range all {
		if f.String() == "" || seen[f.String()] {
			t.Errorf("bad or duplicate name %q", f)
		}
		seen[f.String()] = true
		if f.Description() == "" || f.Description() == "unknown fault" {
			t.Errorf("%s missing description", f)
		}
	}
	if Fault(200).Description() != "unknown fault" {
		t.Error("out-of-range fault should report unknown")
	}
}

func TestSetString(t *testing.T) {
	if None.String() != "none" {
		t.Errorf("None.String() = %q", None.String())
	}
	if got := Of(E1, E7).String(); got != "E1+E7" {
		t.Errorf("Set.String() = %q, want E1+E7", got)
	}
}
