// Package bitblast lowers smt terms to CNF over a sat.Solver (Tseitin
// encoding). Each bit-vector term maps to a little-endian vector of SAT
// literals; each Boolean term maps to one literal. Encodings are cached per
// term identity, and gate outputs are cached per input-literal pair, so a
// Blaster can serve many incremental queries against one growing SAT
// instance — the mechanism the symbolic execution engine relies on for
// cheap per-path feasibility checks.
package bitblast

import (
	"fmt"

	"symriscv/internal/sat"
	"symriscv/internal/smt"
)

// Blaster encodes terms from one smt.Context into one sat.Solver.
type Blaster struct {
	ctx *smt.Context
	sat *sat.Solver

	bvBits  map[uint32][]sat.Lit // term ID -> bits, LSB first
	boolLit map[uint32]sat.Lit

	gates map[gateKey]sat.Lit

	lTrue  sat.Lit
	lFalse sat.Lit
}

type gateOp uint8

const (
	gAnd gateOp = iota
	gOr
	gXor
	gMux // s ? a : b; key fields (s, a, b) in c, a, b order
)

type gateKey struct {
	op      gateOp
	a, b, c sat.Lit
}

// New returns a Blaster targeting the given SAT solver. The solver gains one
// reserved variable that is constrained to true.
func New(ctx *smt.Context, s *sat.Solver) *Blaster {
	b := &Blaster{
		ctx:     ctx,
		sat:     s,
		bvBits:  make(map[uint32][]sat.Lit),
		boolLit: make(map[uint32]sat.Lit),
		gates:   make(map[gateKey]sat.Lit),
	}
	v := s.NewVar()
	b.lTrue = sat.MkLit(v, false)
	b.lFalse = b.lTrue.Neg()
	s.AddClause(b.lTrue)
	return b
}

// LitTrue returns the solver literal that is constrained to true.
func (b *Blaster) LitTrue() sat.Lit { return b.lTrue }

func (b *Blaster) constLit(v bool) sat.Lit {
	if v {
		return b.lTrue
	}
	return b.lFalse
}

func (b *Blaster) freshLit() sat.Lit { return sat.MkLit(b.sat.NewVar(), false) }

// mkAnd returns a literal equivalent to a AND b.
func (b *Blaster) mkAnd(a, c sat.Lit) sat.Lit {
	if a == b.lFalse || c == b.lFalse {
		return b.lFalse
	}
	if a == b.lTrue {
		return c
	}
	if c == b.lTrue {
		return a
	}
	if a == c {
		return a
	}
	if a == c.Neg() {
		return b.lFalse
	}
	if a > c {
		a, c = c, a
	}
	k := gateKey{op: gAnd, a: a, b: c}
	if o, ok := b.gates[k]; ok {
		return o
	}
	o := b.freshLit()
	b.sat.AddClause(o.Neg(), a)
	b.sat.AddClause(o.Neg(), c)
	b.sat.AddClause(o, a.Neg(), c.Neg())
	b.gates[k] = o
	return o
}

func (b *Blaster) mkOr(a, c sat.Lit) sat.Lit {
	return b.mkAnd(a.Neg(), c.Neg()).Neg()
}

// mkXor returns a literal equivalent to a XOR b.
func (b *Blaster) mkXor(a, c sat.Lit) sat.Lit {
	if a == b.lFalse {
		return c
	}
	if c == b.lFalse {
		return a
	}
	if a == b.lTrue {
		return c.Neg()
	}
	if c == b.lTrue {
		return a.Neg()
	}
	if a == c {
		return b.lFalse
	}
	if a == c.Neg() {
		return b.lTrue
	}
	// Normalise polarity so xor(a,b), xor(~a,b) share structure: fold the
	// output negation out of negated inputs.
	neg := false
	if a.Sign() {
		a = a.Neg()
		neg = !neg
	}
	if c.Sign() {
		c = c.Neg()
		neg = !neg
	}
	if a > c {
		a, c = c, a
	}
	k := gateKey{op: gXor, a: a, b: c}
	o, ok := b.gates[k]
	if !ok {
		o = b.freshLit()
		b.sat.AddClause(o.Neg(), a, c)
		b.sat.AddClause(o.Neg(), a.Neg(), c.Neg())
		b.sat.AddClause(o, a.Neg(), c)
		b.sat.AddClause(o, a, c.Neg())
		b.gates[k] = o
	}
	if neg {
		return o.Neg()
	}
	return o
}

// mkMux returns a literal equivalent to (s ? t : f).
func (b *Blaster) mkMux(s, t, f sat.Lit) sat.Lit {
	if s == b.lTrue {
		return t
	}
	if s == b.lFalse {
		return f
	}
	if t == f {
		return t
	}
	if t == f.Neg() {
		return b.mkXor(s, f)
	}
	if t == b.lTrue {
		return b.mkOr(s, f)
	}
	if t == b.lFalse {
		return b.mkAnd(s.Neg(), f)
	}
	if f == b.lTrue {
		return b.mkOr(s.Neg(), t)
	}
	if f == b.lFalse {
		return b.mkAnd(s, t)
	}
	k := gateKey{op: gMux, c: s, a: t, b: f}
	if o, ok := b.gates[k]; ok {
		return o
	}
	o := b.freshLit()
	b.sat.AddClause(s.Neg(), t.Neg(), o)
	b.sat.AddClause(s.Neg(), t, o.Neg())
	b.sat.AddClause(s, f.Neg(), o)
	b.sat.AddClause(s, f, o.Neg())
	// Redundant but propagation-strengthening clauses.
	b.sat.AddClause(t.Neg(), f.Neg(), o)
	b.sat.AddClause(t, f, o.Neg())
	b.gates[k] = o
	return o
}

// fullAdder returns (sum, carryOut) of a + b + cin.
func (b *Blaster) fullAdder(a, c, cin sat.Lit) (sum, cout sat.Lit) {
	axb := b.mkXor(a, c)
	sum = b.mkXor(axb, cin)
	cout = b.mkOr(b.mkAnd(a, c), b.mkAnd(axb, cin))
	return sum, cout
}

// Bits returns the literal vector (LSB first) encoding the bit-vector term t,
// encoding it (and its cone) on first use.
func (b *Blaster) Bits(t *smt.Term) []sat.Lit {
	if t.IsBool() {
		panic("bitblast: Bits on Boolean term")
	}
	if bits, ok := b.bvBits[t.ID()]; ok {
		return bits
	}
	bits := b.encodeBV(t)
	if len(bits) != t.Width() {
		panic(fmt.Sprintf("bitblast: internal: %v encoded to %d bits, want %d", t.Kind(), len(bits), t.Width()))
	}
	b.bvBits[t.ID()] = bits
	return bits
}

// LitFor returns the literal encoding the Boolean term t.
func (b *Blaster) LitFor(t *smt.Term) sat.Lit {
	if !t.IsBool() {
		panic("bitblast: LitFor on bit-vector term")
	}
	if l, ok := b.boolLit[t.ID()]; ok {
		return l
	}
	l := b.encodeBool(t)
	b.boolLit[t.ID()] = l
	return l
}

func (b *Blaster) encodeBV(t *smt.Term) []sat.Lit {
	w := t.Width()
	switch t.Kind() {
	case smt.KConst:
		v := t.ConstVal()
		bits := make([]sat.Lit, w)
		for i := range bits {
			bits[i] = b.constLit(v>>uint(i)&1 == 1)
		}
		return bits

	case smt.KVar:
		bits := make([]sat.Lit, w)
		for i := range bits {
			bits[i] = b.freshLit()
		}
		return bits

	case smt.KAdd:
		a := b.Bits(t.Arg(0))
		c := b.Bits(t.Arg(1))
		return b.adder(a, c, b.lFalse)

	case smt.KSub:
		a := b.Bits(t.Arg(0))
		c := negBits(b.Bits(t.Arg(1)))
		return b.adder(a, c, b.lTrue)

	case smt.KNeg:
		a := b.Bits(t.Arg(0))
		zero := make([]sat.Lit, w)
		for i := range zero {
			zero[i] = b.lFalse
		}
		return b.adder(zero, negBits(a), b.lTrue)

	case smt.KMul:
		return b.multiplier(b.Bits(t.Arg(0)), b.Bits(t.Arg(1)))

	case smt.KUDiv, smt.KURem:
		av := b.Bits(t.Arg(0))
		cv := b.Bits(t.Arg(1))
		q, r := b.divider(av, cv)
		// SMT-LIB division-by-zero semantics.
		bz := b.lTrue
		for _, l := range cv {
			bz = b.mkAnd(bz, l.Neg())
		}
		out := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			if t.Kind() == smt.KUDiv {
				out[i] = b.mkMux(bz, b.lTrue, q[i])
			} else {
				out[i] = b.mkMux(bz, av[i], r[i])
			}
		}
		return out

	case smt.KAnd, smt.KOr, smt.KXor:
		a := b.Bits(t.Arg(0))
		c := b.Bits(t.Arg(1))
		bits := make([]sat.Lit, w)
		for i := range bits {
			switch t.Kind() {
			case smt.KAnd:
				bits[i] = b.mkAnd(a[i], c[i])
			case smt.KOr:
				bits[i] = b.mkOr(a[i], c[i])
			default:
				bits[i] = b.mkXor(a[i], c[i])
			}
		}
		return bits

	case smt.KNot:
		return negBits(b.Bits(t.Arg(0)))

	case smt.KShl:
		return b.shifter(t.Arg(0), t.Arg(1), shiftLeft)
	case smt.KLshr:
		return b.shifter(t.Arg(0), t.Arg(1), shiftRightLogical)
	case smt.KAshr:
		return b.shifter(t.Arg(0), t.Arg(1), shiftRightArith)

	case smt.KConcat:
		hi := b.Bits(t.Arg(0))
		lo := b.Bits(t.Arg(1))
		bits := make([]sat.Lit, 0, w)
		bits = append(bits, lo...)
		bits = append(bits, hi...)
		return bits

	case smt.KExtract:
		hi, lo := t.ExtractBounds()
		src := b.Bits(t.Arg(0))
		bits := make([]sat.Lit, hi-lo+1)
		copy(bits, src[lo:hi+1])
		return bits

	case smt.KZExt:
		src := b.Bits(t.Arg(0))
		bits := make([]sat.Lit, w)
		copy(bits, src)
		for i := len(src); i < w; i++ {
			bits[i] = b.lFalse
		}
		return bits

	case smt.KSExt:
		src := b.Bits(t.Arg(0))
		bits := make([]sat.Lit, w)
		copy(bits, src)
		msb := src[len(src)-1]
		for i := len(src); i < w; i++ {
			bits[i] = msb
		}
		return bits

	case smt.KIte:
		s := b.LitFor(t.Arg(0))
		a := b.Bits(t.Arg(1))
		c := b.Bits(t.Arg(2))
		bits := make([]sat.Lit, w)
		for i := range bits {
			bits[i] = b.mkMux(s, a[i], c[i])
		}
		return bits
	}
	panic(fmt.Sprintf("bitblast: unsupported bit-vector kind %v", t.Kind()))
}

func negBits(a []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	for i, l := range a {
		out[i] = l.Neg()
	}
	return out
}

// adder returns a + c + cin, discarding the final carry (modular semantics).
func (b *Blaster) adder(a, c []sat.Lit, cin sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	carry := cin
	for i := range a {
		out[i], carry = b.fullAdder(a[i], c[i], carry)
	}
	return out
}

// multiplier implements shift-and-add multiplication, keeping the low bits.
func (b *Blaster) multiplier(a, c []sat.Lit) []sat.Lit {
	w := len(a)
	acc := make([]sat.Lit, w)
	for i := range acc {
		acc[i] = b.lFalse
	}
	for i := 0; i < w; i++ {
		// Partial product: (a << i) AND c[i], added into acc.
		row := make([]sat.Lit, w)
		for j := range row {
			if j < i {
				row[j] = b.lFalse
			} else {
				row[j] = b.mkAnd(a[j-i], c[i])
			}
		}
		acc = b.adder(acc, row, b.lFalse)
	}
	return acc
}

// adderCarry is the ripple adder variant that also returns the final carry.
func (b *Blaster) adderCarry(a, c []sat.Lit, cin sat.Lit) (sum []sat.Lit, cout sat.Lit) {
	sum = make([]sat.Lit, len(a))
	carry := cin
	for i := range a {
		sum[i], carry = b.fullAdder(a[i], c[i], carry)
	}
	return sum, carry
}

// divider implements unsigned restoring long division, producing the
// quotient and remainder bit vectors (callers overlay the division-by-zero
// semantics).
func (b *Blaster) divider(a, c []sat.Lit) (q, r []sat.Lit) {
	w := len(a)
	// (w+1)-bit remainder and divisor so the trial subtraction never wraps.
	rem := make([]sat.Lit, w+1)
	for i := range rem {
		rem[i] = b.lFalse
	}
	cext := make([]sat.Lit, w+1)
	copy(cext, c)
	cext[w] = b.lFalse

	q = make([]sat.Lit, w)
	for i := w - 1; i >= 0; i-- {
		// rem = (rem << 1) | a[i], dropping the (always-zero) top bit.
		shifted := make([]sat.Lit, w+1)
		shifted[0] = a[i]
		copy(shifted[1:], rem[:w])
		// Trial subtraction: diff = shifted - cext; carry-out == 1 means
		// shifted >= cext.
		diff, carry := b.adderCarry(shifted, negBits(cext), b.lTrue)
		q[i] = carry
		rem = make([]sat.Lit, w+1)
		for j := range rem {
			rem[j] = b.mkMux(carry, diff[j], shifted[j])
		}
	}
	return q, rem[:w]
}

type shiftKind uint8

const (
	shiftLeft shiftKind = iota
	shiftRightLogical
	shiftRightArith
)

// shifter implements a barrel shifter controlled by the (possibly symbolic)
// amount operand, with the SMT-LIB semantics for out-of-range amounts.
func (b *Blaster) shifter(val, amount *smt.Term, kind shiftKind) []sat.Lit {
	w := val.Width()
	bits := b.Bits(val)
	amt := b.Bits(amount)

	fill := b.lFalse
	if kind == shiftRightArith {
		fill = bits[w-1]
	}

	cur := make([]sat.Lit, w)
	copy(cur, bits)
	for k := 0; (1 << uint(k)) < w; k++ {
		sh := 1 << uint(k)
		next := make([]sat.Lit, w)
		for i := 0; i < w; i++ {
			var shifted sat.Lit
			switch kind {
			case shiftLeft:
				if i >= sh {
					shifted = cur[i-sh]
				} else {
					shifted = b.lFalse
				}
			default:
				if i+sh < w {
					shifted = cur[i+sh]
				} else {
					shifted = fill
				}
			}
			next[i] = b.mkMux(amt[k], shifted, cur[i])
		}
		cur = next
	}

	// If any amount bit at or above log2(w) is set, the whole value is
	// shifted out.
	overflow := b.lFalse
	for k := 0; k < len(amt); k++ {
		if (1 << uint(k)) >= w {
			overflow = b.mkOr(overflow, amt[k])
		}
	}
	if overflow != b.lFalse {
		for i := 0; i < w; i++ {
			cur[i] = b.mkMux(overflow, fill, cur[i])
		}
	}
	return cur
}

func (b *Blaster) encodeBool(t *smt.Term) sat.Lit {
	switch t.Kind() {
	case smt.KTrue:
		return b.lTrue
	case smt.KFalse:
		return b.lFalse

	case smt.KEq:
		a := b.Bits(t.Arg(0))
		c := b.Bits(t.Arg(1))
		acc := b.lTrue
		for i := range a {
			acc = b.mkAnd(acc, b.mkXor(a[i], c[i]).Neg())
		}
		return acc

	case smt.KUlt:
		return b.ultLit(b.Bits(t.Arg(0)), b.Bits(t.Arg(1)))
	case smt.KUle:
		return b.ultLit(b.Bits(t.Arg(1)), b.Bits(t.Arg(0))).Neg()
	case smt.KSlt:
		a := b.Bits(t.Arg(0))
		c := b.Bits(t.Arg(1))
		return b.ultLit(flipMSB(a), flipMSB(c))
	case smt.KSle:
		a := b.Bits(t.Arg(0))
		c := b.Bits(t.Arg(1))
		return b.ultLit(flipMSB(c), flipMSB(a)).Neg()

	case smt.KBAnd:
		return b.mkAnd(b.LitFor(t.Arg(0)), b.LitFor(t.Arg(1)))
	case smt.KBOr:
		return b.mkOr(b.LitFor(t.Arg(0)), b.LitFor(t.Arg(1)))
	case smt.KBXor:
		return b.mkXor(b.LitFor(t.Arg(0)), b.LitFor(t.Arg(1)))
	case smt.KBNot:
		return b.LitFor(t.Arg(0)).Neg()
	case smt.KIte:
		return b.mkMux(b.LitFor(t.Arg(0)), b.LitFor(t.Arg(1)), b.LitFor(t.Arg(2)))
	}
	panic(fmt.Sprintf("bitblast: unsupported Boolean kind %v", t.Kind()))
}

// ultLit builds the unsigned a < b comparator via a borrow chain.
func (b *Blaster) ultLit(a, c []sat.Lit) sat.Lit {
	lt := b.lFalse
	for i := 0; i < len(a); i++ {
		eq := b.mkXor(a[i], c[i]).Neg()
		gtBit := b.mkAnd(a[i].Neg(), c[i])
		lt = b.mkOr(gtBit, b.mkAnd(eq, lt))
	}
	return lt
}

func flipMSB(a []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	copy(out, a)
	out[len(a)-1] = out[len(a)-1].Neg()
	return out
}

// ModelValue reads the value of t from the SAT model after a Sat answer.
// The term must already have been encoded (directly or as part of a larger
// encoded term).
func (b *Blaster) ModelValue(t *smt.Term) (uint64, bool) {
	if t.IsBool() {
		l, ok := b.boolLit[t.ID()]
		if !ok {
			return 0, false
		}
		if b.sat.LitValue(l) {
			return 1, true
		}
		return 0, true
	}
	bits, ok := b.bvBits[t.ID()]
	if !ok {
		return 0, false
	}
	var v uint64
	for i, l := range bits {
		if b.sat.LitValue(l) {
			v |= 1 << uint(i)
		}
	}
	return v, true
}
