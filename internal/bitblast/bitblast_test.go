package bitblast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"symriscv/internal/sat"
	"symriscv/internal/smt"
)

// solveEq asserts t == want (width-w) plus the variable pins and solves.
func solveEq(t *testing.T, ctx *smt.Context, b *Blaster, s *sat.Solver, conds ...*smt.Term) sat.Status {
	t.Helper()
	lits := make([]sat.Lit, len(conds))
	for i, c := range conds {
		lits[i] = b.LitFor(c)
	}
	return s.Solve(lits...)
}

func TestConstantBits(t *testing.T) {
	ctx := smt.NewContext()
	s := sat.New()
	b := New(ctx, s)
	bits := b.Bits(ctx.BV(8, 0xa5))
	if len(bits) != 8 {
		t.Fatalf("got %d bits", len(bits))
	}
	if s.Solve() != sat.Sat {
		t.Fatal("trivial instance unsat")
	}
	v, ok := b.ModelValue(ctx.BV(8, 0xa5))
	if !ok || v != 0xa5 {
		t.Fatalf("ModelValue = %#x, %v", v, ok)
	}
}

func TestGateCachingReusesLiterals(t *testing.T) {
	ctx := smt.NewContext()
	s := sat.New()
	b := New(ctx, s)
	x := ctx.Var("x", 16)
	y := ctx.Var("y", 16)
	sum := ctx.Add(x, y)
	n1 := s.NumVars()
	_ = b.Bits(sum)
	n2 := s.NumVars()
	if n2 <= n1 {
		t.Fatal("encoding created no variables")
	}
	// Encoding the same term again must not grow the instance.
	_ = b.Bits(sum)
	_ = b.Bits(ctx.Add(y, x)) // commutative: interned to the same term
	if s.NumVars() != n2 {
		t.Fatalf("cache miss: vars grew %d -> %d", n2, s.NumVars())
	}
}

func TestXorPolarityNormalisation(t *testing.T) {
	ctx := smt.NewContext()
	s := sat.New()
	b := New(ctx, s)
	x := ctx.Var("x", 1)
	y := ctx.Var("y", 1)
	a := b.Bits(ctx.Xor(x, y))[0]
	c := b.Bits(ctx.Xor(x, ctx.Not(y)))[0]
	if a != c.Neg() {
		t.Fatal("xor with negated input should share the gate with flipped polarity")
	}
}

func TestModelValueUnencoded(t *testing.T) {
	ctx := smt.NewContext()
	s := sat.New()
	b := New(ctx, s)
	x := ctx.Var("x", 8)
	if _, ok := b.ModelValue(x); ok {
		t.Fatal("unencoded term should report !ok")
	}
	_ = b.Bits(x)
	if s.Solve() != sat.Sat {
		t.Fatal("unsat?")
	}
	if _, ok := b.ModelValue(x); !ok {
		t.Fatal("encoded term should report ok")
	}
}

// TestRandomTermEquivalence is the package-local version of the solver
// cross-check: for random small expressions and inputs, the CNF encoding
// must agree with the evaluator.
func TestRandomTermEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ctx := smt.NewContext()
	s := sat.New()
	b := New(ctx, s)
	x := ctx.Var("x", 16)
	y := ctx.Var("y", 16)

	exprs := []func(a, c *smt.Term) *smt.Term{
		func(a, c *smt.Term) *smt.Term { return ctx.Add(a, c) },
		func(a, c *smt.Term) *smt.Term { return ctx.Sub(a, c) },
		func(a, c *smt.Term) *smt.Term { return ctx.Mul(a, c) },
		func(a, c *smt.Term) *smt.Term { return ctx.Neg(a) },
		func(a, c *smt.Term) *smt.Term { return ctx.Shl(a, ctx.And(c, ctx.BV(16, 15))) },
		func(a, c *smt.Term) *smt.Term { return ctx.Ashr(a, ctx.And(c, ctx.BV(16, 15))) },
		func(a, c *smt.Term) *smt.Term { return ctx.Ite(ctx.Slt(a, c), a, c) },
		func(a, c *smt.Term) *smt.Term { return ctx.Concat(ctx.Extract(a, 7, 0), ctx.Extract(c, 15, 8)) },
		func(a, c *smt.Term) *smt.Term { return ctx.SExt(ctx.Extract(a, 11, 4), 16) },
	}
	for i := 0; i < 40; i++ {
		e := exprs[i%len(exprs)](x, y)
		xv := rng.Uint64() & 0xffff
		yv := rng.Uint64() & 0xffff
		want, err := smt.Eval(e, smt.MapEnv{"x": xv, "y": yv})
		if err != nil {
			t.Fatal(err)
		}
		pins := []*smt.Term{
			ctx.Eq(x, ctx.BV(16, xv)),
			ctx.Eq(y, ctx.BV(16, yv)),
		}
		if got := solveEq(t, ctx, b, s, append(pins, ctx.Eq(e, ctx.BV(16, want)))...); got != sat.Sat {
			t.Fatalf("iter %d: equality unsat (e=%v)", i, e)
		}
		if got := solveEq(t, ctx, b, s, append(pins, ctx.Ne(e, ctx.BV(16, want)))...); got != sat.Unsat {
			t.Fatalf("iter %d: disequality sat (e=%v)", i, e)
		}
	}
}

// TestUltBoundaryProperty checks the comparator encoding at random points,
// including equals.
func TestUltBoundaryProperty(t *testing.T) {
	f := func(a, c uint16) bool {
		ctx := smt.NewContext()
		s := sat.New()
		b := New(ctx, s)
		x := ctx.Var("x", 16)
		y := ctx.Var("y", 16)
		pinX := b.LitFor(ctx.Eq(x, ctx.BV(16, uint64(a))))
		pinY := b.LitFor(ctx.Eq(y, ctx.BV(16, uint64(c))))
		lt := b.LitFor(ctx.Ult(x, y))
		if s.Solve(pinX, pinY, lt) == sat.Sat != (a < c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
