package rvfi

import (
	"testing"

	"symriscv/internal/core"
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

// checkerFixture runs fn with a voter inside a single-path exploration.
func checkerFixture(t *testing.T, fn func(ctx *smt.Context, e *core.Engine, v *Checker)) {
	t.Helper()
	x := core.NewExplorer(func(e *core.Engine) error {
		fn(e.Context(), e, NewChecker(e))
		return nil
	})
	rep := x.Explore(core.Options{MaxPaths: 4})
	if rep.Stats.Paths == 0 {
		t.Fatal("fixture did not run")
	}
}

func TestVoterAgreement(t *testing.T) {
	checkerFixture(t, func(ctx *smt.Context, e *core.Engine, v *Checker) {
		val := e.MakeSymbolic("val", 32)
		ret := &Retirement{
			Valid:   true,
			Insn:    ctx.BV(32, 0x13),
			PCRData: ctx.BV(32, 0),
			PCWData: ctx.BV(32, 4),
			RdAddr:  1,
			RdWData: val,
		}
		res := Reference{
			PC:      ctx.BV(32, 0),
			NextPC:  ctx.BV(32, 4),
			Insn:    ctx.BV(32, 0x13),
			RdAddr:  1,
			RdValue: val,
		}
		if m := v.Compare(ret, res); m != nil {
			t.Errorf("agreeing step flagged: %v", m)
		}
	})
}

func TestVoterSemanticallyEqualValues(t *testing.T) {
	// Syntactically different but semantically equal rd values must pass:
	// x+x vs 2*x.
	checkerFixture(t, func(ctx *smt.Context, e *core.Engine, v *Checker) {
		x := e.MakeSymbolic("vx", 32)
		a := ctx.Add(x, x)
		b := ctx.Mul(x, ctx.BV(32, 2))
		ret := &Retirement{
			Valid: true, Insn: ctx.BV(32, 0x13),
			PCRData: ctx.BV(32, 0), PCWData: ctx.BV(32, 4),
			RdAddr: 1, RdWData: a,
		}
		res := Reference{
			PC: ctx.BV(32, 0), NextPC: ctx.BV(32, 4), Insn: ctx.BV(32, 0x13),
			RdAddr: 1, RdValue: b,
		}
		if m := v.Compare(ret, res); m != nil {
			t.Errorf("semantically equal values flagged: %v", m)
		}
	})
}

func TestVoterKinds(t *testing.T) {
	checkerFixture(t, func(ctx *smt.Context, e *core.Engine, v *Checker) {
		val := e.MakeSymbolic("kv", 32)
		base := func() (*Retirement, Reference) {
			return &Retirement{
					Valid: true, Insn: ctx.BV(32, 0x13),
					PCRData: ctx.BV(32, 0), PCWData: ctx.BV(32, 4),
				}, Reference{
					PC: ctx.BV(32, 0), NextPC: ctx.BV(32, 4), Insn: ctx.BV(32, 0x13),
				}
		}

		// Trap mismatch.
		ret, res := base()
		ret.Trap, ret.Cause = true, 2
		if m := v.Compare(ret, res); m == nil || m.Kind != TrapMismatch {
			t.Errorf("trap mismatch: got %v", m)
		}

		// Cause mismatch.
		ret, res = base()
		ret.Trap, ret.Cause = true, 2
		res.Trap, res.Cause = true, 4
		if m := v.Compare(ret, res); m == nil || m.Kind != CauseMismatch {
			t.Errorf("cause mismatch: got %v", m)
		}

		// PC mismatch.
		ret, res = base()
		res.NextPC = ctx.BV(32, 8)
		if m := v.Compare(ret, res); m == nil || m.Kind != PCMismatch {
			t.Errorf("pc mismatch: got %v", m)
		}

		// Rd index mismatch.
		ret, res = base()
		ret.RdAddr, ret.RdWData = 1, val
		res.RdAddr, res.RdValue = 2, val
		if m := v.Compare(ret, res); m == nil || m.Kind != RdMismatch {
			t.Errorf("rd index mismatch: got %v", m)
		}

		// Rd value mismatch.
		ret, res = base()
		ret.RdAddr, ret.RdWData = 1, val
		res.RdAddr, res.RdValue = 1, ctx.Add(val, ctx.BV(32, 1))
		if m := v.Compare(ret, res); m == nil || m.Kind != RdMismatch {
			t.Errorf("rd value mismatch: got %v", m)
		}

		// Store presence mismatch.
		ret, res = base()
		ret.MemAddr = ctx.BV(32, 100)
		ret.MemWMask = uint8(rtl.StrobeWord)
		ret.MemWData = val
		if m := v.Compare(ret, res); m == nil || m.Kind != MemMismatch {
			t.Errorf("store presence mismatch: got %v", m)
		}

		// Store width mismatch.
		ret, res = base()
		ret.MemAddr, res.MemAddr = ctx.BV(32, 100), ctx.BV(32, 100)
		ret.MemWMask = uint8(rtl.StrobeHalf0)
		ret.MemWData = val
		res.MemWrite, res.MemWData, res.MemWBytes = true, val, 4
		if m := v.Compare(ret, res); m == nil || m.Kind != MemMismatch {
			t.Errorf("store width mismatch: got %v", m)
		}

		// Store data mismatch.
		ret, res = base()
		ret.MemAddr, res.MemAddr = ctx.BV(32, 100), ctx.BV(32, 100)
		ret.MemWMask = uint8(rtl.StrobeWord)
		ret.MemWData = val
		res.MemWrite, res.MemWData, res.MemWBytes = true, ctx.Xor(val, ctx.BV(32, 0x80)), 4
		if m := v.Compare(ret, res); m == nil || m.Kind != MemMismatch {
			t.Errorf("store data mismatch: got %v", m)
		}

		// Matching store passes.
		ret, res = base()
		ret.MemAddr, res.MemAddr = ctx.BV(32, 100), ctx.BV(32, 100)
		ret.MemWMask = uint8(rtl.StrobeWord)
		ret.MemWData = val
		res.MemWrite, res.MemWData, res.MemWBytes = true, val, 4
		if m := v.Compare(ret, res); m != nil {
			t.Errorf("matching store flagged: %v", m)
		}
	})
}

func TestVoterWitnessEvaluation(t *testing.T) {
	checkerFixture(t, func(ctx *smt.Context, e *core.Engine, v *Checker) {
		val := e.MakeSymbolic("wv", 32)
		ret := &Retirement{
			Valid: true, Insn: ctx.BV(32, 0x00108093), // addi x1, x1, 1
			PCRData: ctx.BV(32, 0), PCWData: ctx.BV(32, 4),
			RdAddr: 1, RdWData: ctx.And(val, ctx.BV(32, 0xfffffffe)),
		}
		res := Reference{
			PC: ctx.BV(32, 0), NextPC: ctx.BV(32, 4), Insn: ret.Insn,
			RdAddr: 1, RdValue: val,
		}
		m := v.Compare(ret, res)
		if m == nil || m.Kind != RdMismatch {
			t.Fatalf("expected rd mismatch, got %v", m)
		}
		// The witness must actually discriminate: low bit of val set.
		if m.Env["wv"]&1 != 1 {
			t.Errorf("witness does not demonstrate the difference: %#x", m.Env["wv"])
		}
		if m.Disasm != "addi x1, x1, 1" {
			t.Errorf("disasm of witness instruction: %q", m.Disasm)
		}
		if m.RTLRd == m.ISSRd {
			t.Error("concrete replay values should differ")
		}
	})
}
