package rvfi

import (
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

// Port is the commit-level contract a device under test exposes to the
// co-simulation testbench: a clocked, bus-accurate core model publishing one
// RVFI retirement record per architecturally executed instruction. The
// testbench drives any Port the same way — the FSM core (internal/microrv32)
// and the pipelined core (internal/pipecore) are the two in-tree adapters.
//
// Adapter contract:
//   - Step advances one clock edge, consuming the bus responses for requests
//     issued on the previous edge and issuing this edge's requests.
//   - Retirement reports the record for the instruction (if any) that
//     architecturally retired on this edge. For a multi-cycle FSM core that
//     is the writeback state; for a pipelined core it is the retire stage,
//     so squashed (wrong-path) instructions must never be published.
//   - SetPC / SetReg install the reset PC and the sliced symbolic registers
//     before the first Step.
type Port interface {
	Step(rtl.IBusResponse, rtl.DBusResponse) (rtl.IBusRequest, rtl.DBusRequest)
	Retirement() *Retirement
	SetPC(pc uint32)
	SetReg(i int, v *smt.Term)
}

// IrqSource supplies the (symbolic) machine-external-interrupt line, one
// 1-bit term per instruction slot. A slot is one retirement opportunity: the
// reference model and every DUT adapter sample the same slot's line exactly
// once, before that slot's instruction executes, so interrupt delivery is
// architecturally synchronised across models regardless of their timing.
type IrqSource interface {
	Line(slot uint64) *smt.Term
}

// Reference is the reference model's architectural result for one
// instruction slot — the golden half of the comparison. The ISS produces one
// Reference per Step; the Checker holds it against the DUT's Retirement.
type Reference struct {
	PC     *smt.Term // PC of the executed instruction (concrete on each path)
	NextPC *smt.Term // PC after the instruction
	Insn   *smt.Term // instruction word

	Trap  bool
	Cause uint32

	RdAddr  int       // destination register, 0 when none
	RdValue *smt.Term // value written to RdAddr (nil when RdAddr == 0)

	MemAddr  *smt.Term // effective address of a load/store (nil otherwise)
	MemWrite bool
	// MemWData is the architectural store value (LSB-aligned, zero-extended
	// to 32 bits) and MemWBytes its width in bytes; set for stores only.
	MemWData  *smt.Term
	MemWBytes int
}
