// Package rvfi models the subset of the RISC-V Formal Interface (RVFI) that
// the co-simulation voter observes: one retirement record per architecturally
// executed instruction, carrying the (possibly symbolic) architectural
// effects of that instruction.
package rvfi

import "symriscv/internal/smt"

// Retirement is one RVFI record. Data values are smt terms (width 32) so the
// voter can compare them symbolically; control-flow facts (trap taken, rd
// index) are concrete on every explored path by construction.
type Retirement struct {
	Valid bool   // rvfi_valid: a retirement happened this cycle
	Order uint64 // rvfi_order: retirement index

	Insn *smt.Term // rvfi_insn: the instruction word

	Trap  bool   // rvfi_trap: the instruction trapped
	Cause uint32 // mcause value when Trap is set

	PCRData *smt.Term // rvfi_pc_rdata: PC of this instruction
	PCWData *smt.Term // rvfi_pc_wdata: PC of the next instruction

	RdAddr  int       // rvfi_rd_addr: destination register (0 = none)
	RdWData *smt.Term // rvfi_rd_wdata: value written (nil when RdAddr == 0)

	MemAddr  *smt.Term // rvfi_mem_addr: effective address of a load/store
	MemRMask uint8     // rvfi_mem_rmask: bytes read
	MemWMask uint8     // rvfi_mem_wmask: bytes written
	MemWData *smt.Term // rvfi_mem_wdata: store data (LSB-aligned, zero-extended)
}
