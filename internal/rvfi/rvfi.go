// Package rvfi models the subset of the RISC-V Formal Interface (RVFI) the
// co-simulation observes, and the core-agnostic machinery built on it: the
// Port contract a device under test implements (one Retirement record per
// architecturally executed instruction), the Reference result the golden
// model produces per instruction slot, and the Checker that searches for
// satisfiable architectural differences between the two. Any core whose
// adapter publishes commit-level RVFI state plugs into the same reference
// model and campaign harnesses — the FSM-style microrv32 and the pipelined
// pipecore are the two in-tree Ports.
package rvfi

import "symriscv/internal/smt"

// Retirement is one RVFI record. Data values are smt terms (width 32) so the
// checker can compare them symbolically; control-flow facts (trap taken, rd
// index) are concrete on every explored path by construction.
type Retirement struct {
	Valid bool   // rvfi_valid: a retirement happened this cycle
	Order uint64 // rvfi_order: retirement index

	Insn *smt.Term // rvfi_insn: the instruction word

	Trap  bool   // rvfi_trap: the instruction trapped
	Cause uint32 // mcause value when Trap is set

	PCRData *smt.Term // rvfi_pc_rdata: PC of this instruction
	PCWData *smt.Term // rvfi_pc_wdata: PC of the next instruction

	RdAddr  int       // rvfi_rd_addr: destination register (0 = none)
	RdWData *smt.Term // rvfi_rd_wdata: value written (nil when RdAddr == 0)

	MemAddr  *smt.Term // rvfi_mem_addr: effective address of a load/store
	MemRMask uint8     // rvfi_mem_rmask: bytes read
	MemWMask uint8     // rvfi_mem_wmask: bytes written
	MemWData *smt.Term // rvfi_mem_wdata: store data (LSB-aligned, zero-extended)
}
