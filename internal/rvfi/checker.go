package rvfi

import (
	"fmt"

	"symriscv/internal/core"
	"symriscv/internal/obs"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

// MismatchKind classifies what the checker saw disagree.
type MismatchKind uint8

// Mismatch kinds.
const (
	TrapMismatch  MismatchKind = iota // one side trapped, the other did not
	CauseMismatch                     // both trapped with different causes
	PCMismatch                        // next PC differs
	RdMismatch                        // destination register index or value differs
	MemMismatch                       // store effect (presence, address, size or data) differs
)

func (k MismatchKind) String() string {
	switch k {
	case TrapMismatch:
		return "trap-mismatch"
	case CauseMismatch:
		return "cause-mismatch"
	case PCMismatch:
		return "pc-mismatch"
	case RdMismatch:
		return "rd-mismatch"
	case MemMismatch:
		return "mem-mismatch"
	}
	return "mismatch"
}

// Mismatch is the checker's finding: a satisfiable functional difference
// between the RTL core and the reference model, with a concrete witness.
// It implements core.Witnesser so the explorer attaches the counterexample.
type Mismatch struct {
	Kind   MismatchKind
	Detail string

	// Witness assigns every symbolic input; the fields below are the
	// concrete replay of the step under that witness.
	Insn    uint32 // instruction word
	Disasm  string
	PC      uint32
	RTLNext uint32
	ISSNext uint32
	RTLTrap bool
	ISSTrap bool
	RdAddr  int
	RTLRd   uint32
	ISSRd   uint32

	Env smt.MapEnv
}

// Error implements error.
func (m *Mismatch) Error() string {
	return fmt.Sprintf("%s at pc=%#x insn=%#08x (%s): %s", m.Kind, m.PC, m.Insn, m.Disasm, m.Detail)
}

// Witness implements core.Witnesser.
func (m *Mismatch) Witness() smt.MapEnv { return m.Env }

// Checker compares each DUT retirement against the reference-model result,
// raising a Mismatch when any architectural difference is satisfiable under
// the path constraints (§IV-D). It is core-agnostic: any Port implementation
// whose retirements line up with the reference's instruction slots can be
// checked, regardless of how many cycles or pipeline stages produced them.
type Checker struct {
	eng *core.Engine
	ctx *smt.Context
}

// NewChecker returns a checker bound to the engine.
func NewChecker(eng *core.Engine) *Checker {
	return &Checker{eng: eng, ctx: eng.Context()}
}

// Compare checks one retirement against the reference result for the same
// instruction slot. A nil return means no observable difference is
// satisfiable on this path.
func (v *Checker) Compare(ret *Retirement, ref Reference) *Mismatch {
	defer v.eng.Obs().Start(obs.PhaseVoterCompare).End()
	ctx := v.ctx

	// Trap behaviour is concrete on each path.
	if ret.Trap != ref.Trap {
		return v.finish(ret, ref, TrapMismatch,
			fmt.Sprintf("RTL trap=%v (cause %s), ISS trap=%v (cause %s)",
				ret.Trap, causeStr(ret), ref.Trap, causeStrRef(ref)), nil)
	}
	if ret.Trap && ref.Trap {
		if ret.Cause != ref.Cause {
			return v.finish(ret, ref, CauseMismatch,
				fmt.Sprintf("RTL cause=%s, ISS cause=%s",
					riscv.ExcName(ret.Cause), riscv.ExcName(ref.Cause)), nil)
		}
		// Both trapped identically: compare the trap target PC below.
	}

	// Old and next PC: hash-consing makes identical expressions
	// pointer-equal, so the solver is only consulted for syntactically
	// distinct values. The old-PC comparison catches control-flow divergence
	// that happened *between* retirements (e.g. one side taking an
	// interrupt, or a pipeline retiring a wrong-path instruction).
	if ret.PCRData != ref.PC {
		if env, ok := v.eng.FindWitness(ctx.Ne(ret.PCRData, ref.PC)); ok {
			return v.finish(ret, ref, PCMismatch, "executed-instruction PCs can differ", env)
		}
	}
	if ret.PCWData != ref.NextPC {
		if env, ok := v.eng.FindWitness(ctx.Ne(ret.PCWData, ref.NextPC)); ok {
			return v.finish(ret, ref, PCMismatch, "next-PC values can differ", env)
		}
	}

	if ret.RdAddr != ref.RdAddr {
		return v.finish(ret, ref, RdMismatch,
			fmt.Sprintf("RTL writes x%d, ISS writes x%d", ret.RdAddr, ref.RdAddr), nil)
	}
	if ret.RdAddr != 0 && ret.RdWData != ref.RdValue {
		if env, ok := v.eng.FindWitness(ctx.Ne(ret.RdWData, ref.RdValue)); ok {
			return v.finish(ret, ref, RdMismatch,
				fmt.Sprintf("x%d values can differ", ret.RdAddr), env)
		}
	}

	// Memory-write effects (architectural store address, size and data).
	if !ret.Trap {
		rtlWrote := ret.MemWMask != 0
		if rtlWrote != ref.MemWrite {
			return v.finish(ret, ref, MemMismatch,
				fmt.Sprintf("RTL store=%v, ISS store=%v", rtlWrote, ref.MemWrite), nil)
		}
		if rtlWrote {
			if got, want := rtl.Strobe(ret.MemWMask).Bytes(), ref.MemWBytes; got != want {
				return v.finish(ret, ref, MemMismatch,
					fmt.Sprintf("store width %d bytes vs %d bytes", got, want), nil)
			}
			if ret.MemAddr != ref.MemAddr {
				if env, ok := v.eng.FindWitness(ctx.Ne(ret.MemAddr, ref.MemAddr)); ok {
					return v.finish(ret, ref, MemMismatch, "store addresses can differ", env)
				}
			}
			if ret.MemWData != nil && ref.MemWData != nil && ret.MemWData != ref.MemWData {
				if env, ok := v.eng.FindWitness(ctx.Ne(ret.MemWData, ref.MemWData)); ok {
					return v.finish(ret, ref, MemMismatch, "store data can differ", env)
				}
			}
		}
	}
	return nil
}

func causeStr(ret *Retirement) string {
	if !ret.Trap {
		return "-"
	}
	return riscv.ExcName(ret.Cause)
}

func causeStrRef(ref Reference) string {
	if !ref.Trap {
		return "-"
	}
	return riscv.ExcName(ref.Cause)
}

// finish materialises a witness (if not already provided by the deciding
// query) and evaluates both sides' behaviour under it for the report.
func (v *Checker) finish(ret *Retirement, ref Reference, kind MismatchKind, detail string, env smt.MapEnv) *Mismatch {
	if env == nil {
		var ok bool
		env, ok = v.eng.FindWitness(v.ctx.True())
		if !ok {
			// Unreachable: the path constraints are satisfiable by invariant.
			env = smt.MapEnv{}
		}
	}
	m := &Mismatch{
		Kind:    kind,
		Detail:  detail,
		RTLTrap: ret.Trap,
		ISSTrap: ref.Trap,
		RdAddr:  ret.RdAddr,
		Env:     env,
	}
	m.Insn = uint32(evalOr0(ret.Insn, env))
	m.Disasm = riscv.Disasm(m.Insn)
	m.PC = uint32(evalOr0(ret.PCRData, env))
	m.RTLNext = uint32(evalOr0(ret.PCWData, env))
	m.ISSNext = uint32(evalOr0(ref.NextPC, env))
	if ret.RdAddr != 0 {
		m.RTLRd = uint32(evalOr0(ret.RdWData, env))
	}
	if ref.RdAddr != 0 {
		m.ISSRd = uint32(evalOr0(ref.RdValue, env))
	}
	return m
}

func evalOr0(t *smt.Term, env smt.MapEnv) uint64 {
	if t == nil {
		return 0
	}
	v, err := smt.Eval(t, env)
	if err != nil {
		return 0
	}
	return v
}
