package pipecore

import (
	"symriscv/internal/faults"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

// execute runs the EX stage for the instruction currently held there.
// Loads/stores issue their bus request and park in exMem; everything else
// completes in one cycle.
func (c *Core) execute() (dbReq rtl.DBusRequest) {
	ctx := c.ctx
	insn := c.exInsn
	pc := c.bv(c.exPC)
	pcPlus4 := c.bv(c.exPC + 4)
	f := c.cfg.Faults

	done := func(rd int, val, next *smt.Term) {
		w := &wbEntry{pc: c.exPC, insn: insn, nextPC: next}
		if rd != 0 {
			w.rd, w.val = rd, val
		}
		c.complete(w)
	}

	op := c.decode(insn)
	switch op {
	case opIllegal:
		c.trap(riscv.ExcIllegalInstruction)

	case opLUI:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		done(rd, riscv.SymImmU(ctx, insn), pcPlus4)

	case opAUIPC:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		done(rd, ctx.Add(pc, riscv.SymImmU(ctx, insn)), pcPlus4)

	case opJAL:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		next := ctx.Add(pc, riscv.SymImmJ(ctx, insn))
		if f.Has(faults.E5) {
			next = pcPlus4 // E5: JAL fails to change the PC
		}
		done(rd, pcPlus4, next)

	case opJALR:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
		next := ctx.And(ctx.Add(c.srcReg(rs1, faults.E10), riscv.SymImmI(ctx, insn)), c.bv(0xfffffffe))
		done(rd, pcPlus4, next)

	case opBEQ, opBNE, opBLT, opBGE, opBLTU, opBGEU:
		rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
		rs2 := c.chooseReg(riscv.FieldRs2(ctx, insn))
		a, b := c.srcReg(rs1, faults.E10), c.srcReg(rs2, faults.E11)
		var cond *smt.Term
		switch op {
		case opBEQ:
			cond = ctx.Eq(a, b)
		case opBNE:
			if f.Has(faults.E6) {
				cond = ctx.Eq(a, b) // E6: BNE behaves like BEQ
			} else {
				cond = ctx.Ne(a, b)
			}
		case opBLT:
			cond = ctx.Slt(a, b)
		case opBGE:
			cond = ctx.Sge(a, b)
		case opBLTU:
			cond = ctx.Ult(a, b)
		default:
			cond = ctx.Uge(a, b)
		}
		next := pcPlus4
		if c.eng.Branch(cond) {
			next = ctx.Add(pc, riscv.SymImmB(ctx, insn))
		}
		done(0, nil, next)

	case opLB, opLH, opLW, opLBU, opLHU, opSB, opSH, opSW:
		dbReq = c.startMem(op, insn)

	case opADDI, opSLTI, opSLTIU, opXORI, opORI, opANDI, opSLLI, opSRLI, opSRAI:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
		a := c.srcReg(rs1, faults.E10)
		imm := riscv.SymImmI(ctx, insn)
		shamt := ctx.ZExt(riscv.FieldShamt(ctx, insn), 32)
		var res *smt.Term
		switch op {
		case opADDI:
			res = ctx.Add(a, imm)
			if f.Has(faults.E3) {
				res = ctx.And(res, c.bv(0xfffffffe)) // E3: bit 0 stuck at 0
			}
		case opSLTI:
			res = ctx.ZExt(ctx.BoolToBV(ctx.Slt(a, imm)), 32)
		case opSLTIU:
			res = ctx.ZExt(ctx.BoolToBV(ctx.Ult(a, imm)), 32)
		case opXORI:
			res = ctx.Xor(a, imm)
		case opORI:
			res = ctx.Or(a, imm)
		case opANDI:
			res = ctx.And(a, imm)
		case opSLLI:
			res = ctx.Shl(a, shamt)
		case opSRLI:
			res = ctx.Lshr(a, shamt)
		default:
			res = ctx.Ashr(a, shamt)
		}
		done(rd, res, pcPlus4)

	case opADD, opSUB, opSLL, opSLT, opSLTU, opXOR, opSRL, opSRA, opOR, opAND,
		opMUL, opMULH, opMULHSU, opMULHU, opDIV, opDIVU, opREM, opREMU:
		rd := c.chooseReg(riscv.FieldRd(ctx, insn))
		rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
		rs2 := c.chooseReg(riscv.FieldRs2(ctx, insn))
		a, b := c.srcReg(rs1, faults.E10), c.srcReg(rs2, faults.E11)
		shamt := ctx.And(b, c.bv(31))
		var res *smt.Term
		switch op {
		case opADD:
			res = ctx.Add(a, b)
		case opSUB:
			res = ctx.Sub(a, b)
			if f.Has(faults.E4) {
				res = ctx.And(res, c.bv(0x7fffffff)) // E4: bit 31 stuck at 0
			}
		case opSLL:
			res = ctx.Shl(a, shamt)
		case opSLT:
			res = ctx.ZExt(ctx.BoolToBV(ctx.Slt(a, b)), 32)
		case opSLTU:
			res = ctx.ZExt(ctx.BoolToBV(ctx.Ult(a, b)), 32)
		case opXOR:
			res = ctx.Xor(a, b)
		case opSRL:
			res = ctx.Lshr(a, shamt)
		case opSRA:
			res = ctx.Ashr(a, shamt)
		case opOR:
			res = ctx.Or(a, b)
		case opAND:
			res = ctx.And(a, b)
		case opMUL:
			res = riscv.SymMul(ctx, a, b)
		case opMULH:
			res = riscv.SymMulH(ctx, a, b)
		case opMULHSU:
			res = riscv.SymMulHSU(ctx, a, b)
		case opMULHU:
			res = riscv.SymMulHU(ctx, a, b)
		case opDIV:
			res = riscv.SymDiv(ctx, a, b)
		case opDIVU:
			res = riscv.SymDivU(ctx, a, b)
		case opREM:
			res = riscv.SymRem(ctx, a, b)
		default:
			res = riscv.SymRemU(ctx, a, b)
		}
		done(rd, res, pcPlus4)

	case opFENCE, opWFI:
		done(0, nil, pcPlus4)

	case opECALL:
		c.trap(riscv.ExcEnvCallFromM)
	case opEBREAK:
		c.trap(riscv.ExcBreakpoint)
	}
	return dbReq
}

func memOpSize(op opKind) uint32 {
	switch op {
	case opLB, opLBU, opSB:
		return 1
	case opLH, opLHU, opSH:
		return 2
	default:
		return 4
	}
}

// startMem runs the EX address phase of a load/store: alignment check (this
// core always traps on misaligned accesses), lane-select fork, one aligned
// bus transaction.
func (c *Core) startMem(op opKind, insn *smt.Term) rtl.DBusRequest {
	ctx := c.ctx
	isStore := op == opSB || op == opSH || op == opSW

	var rd, rs2 int
	rs1 := c.chooseReg(riscv.FieldRs1(ctx, insn))
	base := c.srcReg(rs1, faults.E10)
	var ea *smt.Term
	if isStore {
		rs2 = c.chooseReg(riscv.FieldRs2(ctx, insn))
		ea = ctx.Add(base, riscv.SymImmS(ctx, insn))
	} else {
		rd = c.chooseReg(riscv.FieldRd(ctx, insn))
		ea = ctx.Add(base, riscv.SymImmI(ctx, insn))
	}

	size := memOpSize(op)
	if size > 1 {
		cond := ctx.Ne(ctx.And(ea, c.bv(size-1)), c.bv(0))
		if c.eng.Branch(cond) {
			if isStore {
				c.trap(riscv.ExcStoreAddrMisaligned)
			} else {
				c.trap(riscv.ExcLoadAddrMisaligned)
			}
			return rtl.DBusRequest{}
		}
	}

	// Lane-select mux over the low address bits (forks the byte lanes).
	lane2 := ctx.Extract(ea, 1, 0)
	for i := uint64(0); i < 4; i++ {
		if c.eng.BranchEq(lane2, ctx.BV(2, i)) {
			break
		}
	}

	addr := uint32(c.eng.Concretize(ea))
	if op == opLBU && c.cfg.Faults.Has(faults.E7) {
		addr ^= 3 // E7: byte-lane endianness flip on LBU
	}

	m := &memState{op: op, rd: rd, addr: addr, ea: ea}
	lane := addr & 3
	switch size {
	case 1:
		m.strobe = rtl.ByteStrobe(lane)
	case 2:
		m.strobe = rtl.HalfStrobe(lane)
	default:
		m.strobe = rtl.StrobeWord
	}

	req := rtl.DBusRequest{
		Enable:   true,
		Write:    isStore,
		Address:  c.bv(addr &^ 3),
		WrStrobe: m.strobe,
	}
	if isStore {
		val := c.srcReg(rs2, faults.E11)
		if size < 4 {
			m.storeVal = ctx.ZExt(ctx.Extract(val, int(8*size-1), 0), 32)
		} else {
			m.storeVal = val
		}
		// Position the bytes in their lanes.
		lanes := [4]*smt.Term{}
		zero8 := ctx.BV(8, 0)
		for i := uint32(0); i < 4; i++ {
			lanes[i] = zero8
		}
		for i := uint32(0); i < size; i++ {
			lanes[lane+i] = ctx.Extract(val, int(8*i+7), int(8*i))
		}
		req.WriteData = ctx.Concat(lanes[3], ctx.Concat(lanes[2], ctx.Concat(lanes[1], lanes[0])))
	}
	c.exMem = m
	return req
}

// finishMem consumes the bus response and completes the load/store.
func (c *Core) finishMem(word *smt.Term) {
	ctx := c.ctx
	m := c.exMem
	pcPlus4 := c.bv(c.exPC + 4)
	f := c.cfg.Faults

	w := &wbEntry{pc: c.exPC, insn: c.exInsn, nextPC: pcPlus4, memAddr: m.ea}
	isStore := m.op == opSB || m.op == opSH || m.op == opSW
	if isStore {
		w.memWData = m.storeVal
		w.memWMask = uint8(m.strobe)
		c.complete(w)
		return
	}
	w.memRMask = uint8(m.strobe)

	lane := m.addr & 3
	byteAt := func(i uint32) *smt.Term {
		l := lane + i
		return ctx.Extract(word, int(8*l+7), int(8*l))
	}
	var val *smt.Term
	switch m.op {
	case opLB:
		if f.Has(faults.E8) {
			val = ctx.ZExt(byteAt(0), 32) // E8: sign extension missing
		} else {
			val = ctx.SExt(byteAt(0), 32)
		}
	case opLBU:
		val = ctx.ZExt(byteAt(0), 32)
	case opLH:
		val = ctx.SExt(ctx.Concat(byteAt(1), byteAt(0)), 32)
	case opLHU:
		val = ctx.ZExt(ctx.Concat(byteAt(1), byteAt(0)), 32)
	case opLW:
		full := ctx.Concat(byteAt(3), ctx.Concat(byteAt(2), ctx.Concat(byteAt(1), byteAt(0))))
		if f.Has(faults.E9) {
			val = ctx.ZExt(ctx.Extract(full, 15, 0), 32) // E9: upper half missing
		} else {
			val = full
		}
	}
	if m.rd != 0 {
		w.rd, w.val = m.rd, val
	}
	c.complete(w)
}
