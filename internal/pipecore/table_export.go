package pipecore

import (
	"symriscv/internal/faults"
)

// opNames maps each micro-op to the riscv-package mnemonic it implements,
// so the static decode-table verifier can compare the table against the
// independent reference decoder without a private mapping of its own.
// Zicsr and MRET have no rows: pipecore decodes them as illegal.
var opNames = [...]string{
	opIllegal: "illegal",
	opLUI:     "lui", opAUIPC: "auipc", opJAL: "jal", opJALR: "jalr",
	opBEQ: "beq", opBNE: "bne", opBLT: "blt", opBGE: "bge", opBLTU: "bltu", opBGEU: "bgeu",
	opLB: "lb", opLH: "lh", opLW: "lw", opLBU: "lbu", opLHU: "lhu",
	opSB: "sb", opSH: "sh", opSW: "sw",
	opADDI: "addi", opSLTI: "slti", opSLTIU: "sltiu",
	opXORI: "xori", opORI: "ori", opANDI: "andi",
	opSLLI: "slli", opSRLI: "srli", opSRAI: "srai",
	opADD: "add", opSUB: "sub", opSLL: "sll", opSLT: "slt", opSLTU: "sltu",
	opXOR: "xor", opSRL: "srl", opSRA: "sra", opOR: "or", opAND: "and",
	opMUL: "mul", opMULH: "mulh", opMULHSU: "mulhsu", opMULHU: "mulhu",
	opDIV: "div", opDIVU: "divu", opREM: "rem", opREMU: "remu",
	opFENCE: "fence", opECALL: "ecall", opEBREAK: "ebreak",
	opWFI: "wfi",
}

func (o opKind) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// TableEntry is an exported view of one decode-table row: the instruction
// matches when insn&Mask == Match and decodes to the micro-op implementing
// the mnemonic Op.
type TableEntry struct {
	Mask, Match uint32
	Op          string
}

// DecodeTableEntries builds the decode table for the given fault set and
// M-extension switch and returns it in walk order. It exists for the
// static decode-table verifier (internal/decodecheck) and tooling; the
// core itself keeps using the unexported representation.
func DecodeTableEntries(f faults.Set, enableM bool) []TableEntry {
	table := buildTable(f, enableM)
	out := make([]TableEntry, len(table))
	for i, e := range table {
		out[i] = TableEntry{Mask: e.mask, Match: e.match, Op: e.op.String()}
	}
	return out
}
