package pipecore_test

import (
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/pipecore"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

type fixture struct {
	rets   []rvfi.Retirement
	cycles uint64
	mem    map[uint32]uint8
}

// run clocks the pipelined core over a concrete program with a concrete byte
// memory until n retirements.
func run(t *testing.T, cfg pipecore.Config, words []uint32, regs map[int]uint32, n int, preMem map[uint32]uint8) fixture {
	t.Helper()
	var fx fixture
	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		c := pipecore.New(e, cfg)
		for i, v := range regs {
			c.SetReg(i, ctx.BV(32, uint64(v)))
		}
		mem := map[uint32]uint8{}
		for a, v := range preMem {
			mem[a] = v
		}
		fx = fixture{mem: mem}

		var ib rtl.IBusResponse
		var db rtl.DBusResponse
		for cycles := 0; len(fx.rets) < n; cycles++ {
			if cycles > 64*n+64 {
				t.Errorf("core hung after %d cycles", cycles)
				return nil
			}
			ibReq, dbReq := c.Step(ib, db)
			ib, db = rtl.IBusResponse{}, rtl.DBusResponse{}
			if ibReq.FetchEnable {
				addr := uint32(ibReq.Address.ConstVal())
				w := uint32(riscv.ADDI(0, 0, 0))
				if int(addr/4) < len(words) && addr%4 == 0 {
					w = words[addr/4]
				}
				ib = rtl.IBusResponse{InstructionReady: true, Instruction: ctx.BV(32, uint64(w))}
			}
			if dbReq.Enable {
				base := uint32(dbReq.Address.ConstVal()) &^ 3
				if dbReq.Write {
					for lane := uint32(0); lane < 4; lane++ {
						if dbReq.WrStrobe>>lane&1 == 1 {
							mem[base+lane] = uint8(dbReq.WriteData.ConstVal() >> (8 * lane))
						}
					}
					db = rtl.DBusResponse{DataReady: true, ReadData: ctx.BV(32, 0)}
				} else {
					var v uint64
					for lane := uint32(0); lane < 4; lane++ {
						v |= uint64(mem[base+lane]) << (8 * lane)
					}
					db = rtl.DBusResponse{DataReady: true, ReadData: ctx.BV(32, v)}
				}
			}
			if ret := c.Retirement(); ret.Valid {
				fx.rets = append(fx.rets, *ret)
			}
		}
		fx.cycles = c.Cycles()
		return nil
	})
	rep := x.Explore(core.Options{})
	if rep.Stats.Completed != 1 || rep.Stats.Paths != 1 {
		t.Fatalf("concrete program should run on one path: %v", rep.Stats)
	}
	return fx
}

func cval(t *testing.T, term *smt.Term) uint32 {
	t.Helper()
	if term == nil || !term.IsConst() {
		t.Fatalf("term not concrete: %v", term)
	}
	return uint32(term.ConstVal())
}

func TestPipelineOverlap(t *testing.T) {
	// Straight-line ALU code must approach 1 instruction per cycle after the
	// pipeline fills — measurably faster than the multi-cycle core's 3.
	prog := make([]uint32, 10)
	for i := range prog {
		prog[i] = riscv.ADDI(3, 3, 1)
	}
	fx := run(t, pipecore.Config{}, prog, nil, 10, nil)
	if fx.cycles > 24 {
		t.Errorf("10 ALU instructions took %d cycles; pipeline not overlapping", fx.cycles)
	}
	last := fx.rets[9]
	if got := cval(t, last.RdWData); got != 10 {
		t.Errorf("accumulated x3 = %d, want 10", got)
	}
	if cval(t, last.PCRData) != 36 {
		t.Errorf("10th instruction pc = %d", cval(t, last.PCRData))
	}
}

func TestProgramOrderRetirement(t *testing.T) {
	prog := []uint32{
		riscv.ADDI(1, 0, 5),
		riscv.ADDI(2, 1, 3), // depends on x1: write-through regfile
		riscv.ADD(3, 1, 2),
	}
	fx := run(t, pipecore.Config{}, prog, nil, 3, nil)
	for i, r := range fx.rets {
		if r.Order != uint64(i+1) {
			t.Fatalf("retirement %d has order %d", i, r.Order)
		}
	}
	if got := cval(t, fx.rets[1].RdWData); got != 8 {
		t.Errorf("dependent ADDI read stale x1: got %d, want 8", got)
	}
	if got := cval(t, fx.rets[2].RdWData); got != 13 {
		t.Errorf("ADD got %d, want 13", got)
	}
}

func TestBranchFlush(t *testing.T) {
	prog := []uint32{
		riscv.BEQ(0, 0, 12),   // taken: skip next two
		riscv.ADDI(1, 0, 111), // must be flushed
		riscv.ADDI(1, 0, 222), // never fetched
		riscv.ADDI(2, 0, 7),   // branch target
	}
	fx := run(t, pipecore.Config{}, prog, nil, 2, nil)
	if got := cval(t, fx.rets[0].PCWData); got != 12 {
		t.Fatalf("branch target %d, want 12", got)
	}
	second := fx.rets[1]
	if cval(t, second.PCRData) != 12 || second.RdAddr != 2 {
		t.Fatalf("instruction after taken branch: pc=%d rd=%d", cval(t, second.PCRData), second.RdAddr)
	}
	if got := cval(t, second.RdWData); got != 7 {
		t.Fatalf("x2 = %d, want 7 (flushed instruction leaked)", got)
	}
}

func TestJalAndJalr(t *testing.T) {
	prog := []uint32{
		riscv.JAL(1, 8),      // to pc=8, link 4
		riscv.ADDI(2, 0, 99), // skipped
		riscv.JALR(3, 1, 8),  // x1=4 -> target 12
		riscv.ADDI(4, 0, 1),  // at 12
	}
	fx := run(t, pipecore.Config{}, prog, nil, 3, nil)
	if got := cval(t, fx.rets[0].RdWData); got != 4 {
		t.Fatalf("jal link %d", got)
	}
	if cval(t, fx.rets[1].PCRData) != 8 {
		t.Fatalf("jal went to %d", cval(t, fx.rets[1].PCRData))
	}
	if cval(t, fx.rets[1].RdWData) != 12 {
		t.Fatalf("jalr link %d", cval(t, fx.rets[1].RdWData))
	}
	if cval(t, fx.rets[2].PCRData) != 12 {
		t.Fatalf("jalr went to %d", cval(t, fx.rets[2].PCRData))
	}
}

func TestLoadStoreAndTraps(t *testing.T) {
	mem := map[uint32]uint8{100: 0x80, 101: 0x91}
	regs := map[int]uint32{1: 100, 2: 0xdeadbeef}

	fx := run(t, pipecore.Config{}, []uint32{riscv.LB(3, 1, 0)}, regs, 1, mem)
	if got := cval(t, fx.rets[0].RdWData); got != 0xffffff80 {
		t.Errorf("lb = %#x", got)
	}
	fx = run(t, pipecore.Config{}, []uint32{riscv.SH(1, 2, 0)}, regs, 1, nil)
	if fx.mem[100] != 0xef || fx.mem[101] != 0xbe {
		t.Errorf("sh stored %#x %#x", fx.mem[100], fx.mem[101])
	}
	// Misaligned traps to vector 0.
	fx = run(t, pipecore.Config{}, []uint32{riscv.LW(3, 1, 1)}, regs, 1, nil)
	r := fx.rets[0]
	if !r.Trap || r.Cause != riscv.ExcLoadAddrMisaligned || cval(t, r.PCWData) != 0 {
		t.Errorf("misaligned LW: trap=%v cause=%d next=%d", r.Trap, r.Cause, cval(t, r.PCWData))
	}
	// CSR instructions are not implemented: illegal.
	fx = run(t, pipecore.Config{}, []uint32{riscv.CSRRW(1, riscv.CSRMScratch, 2)}, regs, 1, nil)
	if !fx.rets[0].Trap || fx.rets[0].Cause != riscv.ExcIllegalInstruction {
		t.Error("csrrw must trap illegal on the CSR-less pipeline core")
	}
}

// pipeCfg is the matched pipeline-vs-ISS co-simulation scenario.
func pipeCfg(f faults.Set) cosim.Config {
	return cosim.Config{
		ISS:    iss.FixedConfig(),
		Filter: cosim.BlockSystemInstructions,
		NewDUT: func(eng *core.Engine) cosim.DUT {
			return pipecore.New(eng, pipecore.Config{Faults: f})
		},
	}
}

// TestPipelineMatchedAgainstISS is the generality check: the clean pipelined
// core must agree with the reference ISS over the full symbolic RV32I space
// at instruction limit 1.
func TestPipelineMatchedAgainstISS(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space exploration")
	}
	x := core.NewExplorer(cosim.RunFunc(pipeCfg(faults.None)))
	rep := x.Explore(core.Options{MaxTime: 120 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("pipeline core diverges from ISS: %v", rep.Findings[0].Err)
	}
	if !rep.Exhausted {
		t.Fatalf("exploration not exhausted: %v", rep.Stats)
	}
	t.Logf("pipeline matched exploration: %v", rep.Stats)
}

// TestPipelineMatchedLimit2 extends the agreement to two-instruction traces
// (pipelining effects only show with >1 instruction in flight).
func TestPipelineMatchedLimit2(t *testing.T) {
	cfg := pipeCfg(faults.None)
	cfg.InstrLimit = 2
	cfg.Filter = cosim.Filters(cosim.BlockSystemInstructions, cosim.OnlyOpcode(riscv.OpBranch))
	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 60 * time.Second, MaxPaths: 500})
	if len(rep.Findings) != 0 {
		t.Fatalf("pipeline diverges at limit 2: %v", rep.Findings[0].Err)
	}
	if rep.Stats.Completed == 0 {
		t.Fatal("no completed paths")
	}
}

// TestPipelineFaultsFound reruns a Table II subset against the pipelined
// core: the same injected errors must be found by the same methodology.
func TestPipelineFaultsFound(t *testing.T) {
	for _, f := range faults.All() {
		x := core.NewExplorer(cosim.RunFunc(pipeCfg(faults.Only(f))))
		rep := x.Explore(core.Options{StopOnFirstFinding: true, MaxTime: 60 * time.Second})
		if len(rep.Findings) != 1 {
			t.Errorf("%s not found on the pipelined core: %v", f, rep.Stats)
		}
	}
}

// TestPipelineRV32MMatched sweeps the M-extension decode subtree on the
// pipelined core against the M-enabled ISS.
func TestPipelineRV32MMatched(t *testing.T) {
	cfg := cosim.Config{
		ISS: iss.Config{TrapOnMisaligned: true, EnableM: true},
		Filter: cosim.Filters(cosim.BlockSystemInstructions,
			cosim.OnlyMasked(0xfe00007f, uint32(riscv.F7MulDiv)<<25|riscv.OpReg)),
		NewDUT: func(eng *core.Engine) cosim.DUT {
			return pipecore.New(eng, pipecore.Config{EnableM: true})
		},
	}
	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 60 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("pipeline M mismatch: %v", rep.Findings[0].Err)
	}
	if !rep.Exhausted || rep.Stats.Completed == 0 {
		t.Fatalf("M sweep incomplete: %v", rep.Stats)
	}
}
