package pipecore_test

import (
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/pipecore"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

type fixture struct {
	rets   []rvfi.Retirement
	cycles uint64
	mem    map[uint32]uint8
}

// run clocks the pipelined core over a concrete program with a concrete byte
// memory until n retirements.
func run(t *testing.T, cfg pipecore.Config, words []uint32, regs map[int]uint32, n int, preMem map[uint32]uint8) fixture {
	t.Helper()
	var fx fixture
	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		c := pipecore.New(e, cfg)
		for i, v := range regs {
			c.SetReg(i, ctx.BV(32, uint64(v)))
		}
		mem := map[uint32]uint8{}
		for a, v := range preMem {
			mem[a] = v
		}
		fx = fixture{mem: mem}

		var ib rtl.IBusResponse
		var db rtl.DBusResponse
		for cycles := 0; len(fx.rets) < n; cycles++ {
			if cycles > 64*n+64 {
				t.Errorf("core hung after %d cycles", cycles)
				return nil
			}
			ibReq, dbReq := c.Step(ib, db)
			ib, db = rtl.IBusResponse{}, rtl.DBusResponse{}
			if ibReq.FetchEnable {
				addr := uint32(ibReq.Address.ConstVal())
				w := uint32(riscv.ADDI(0, 0, 0))
				if int(addr/4) < len(words) && addr%4 == 0 {
					w = words[addr/4]
				}
				ib = rtl.IBusResponse{InstructionReady: true, Instruction: ctx.BV(32, uint64(w))}
			}
			if dbReq.Enable {
				base := uint32(dbReq.Address.ConstVal()) &^ 3
				if dbReq.Write {
					for lane := uint32(0); lane < 4; lane++ {
						if dbReq.WrStrobe>>lane&1 == 1 {
							mem[base+lane] = uint8(dbReq.WriteData.ConstVal() >> (8 * lane))
						}
					}
					db = rtl.DBusResponse{DataReady: true, ReadData: ctx.BV(32, 0)}
				} else {
					var v uint64
					for lane := uint32(0); lane < 4; lane++ {
						v |= uint64(mem[base+lane]) << (8 * lane)
					}
					db = rtl.DBusResponse{DataReady: true, ReadData: ctx.BV(32, v)}
				}
			}
			if ret := c.Retirement(); ret.Valid {
				fx.rets = append(fx.rets, *ret)
			}
		}
		fx.cycles = c.Cycles()
		return nil
	})
	rep := x.Explore(core.Options{})
	if rep.Stats.Completed != 1 || rep.Stats.Paths != 1 {
		t.Fatalf("concrete program should run on one path: %v", rep.Stats)
	}
	return fx
}

func cval(t *testing.T, term *smt.Term) uint32 {
	t.Helper()
	if term == nil || !term.IsConst() {
		t.Fatalf("term not concrete: %v", term)
	}
	return uint32(term.ConstVal())
}

func TestPipelineOverlap(t *testing.T) {
	// Straight-line ALU code must approach 1 instruction per cycle after the
	// pipeline fills — measurably faster than the multi-cycle core's 3.
	prog := make([]uint32, 10)
	for i := range prog {
		prog[i] = riscv.ADDI(3, 3, 1)
	}
	fx := run(t, pipecore.Config{}, prog, nil, 10, nil)
	if fx.cycles > 24 {
		t.Errorf("10 ALU instructions took %d cycles; pipeline not overlapping", fx.cycles)
	}
	last := fx.rets[9]
	if got := cval(t, last.RdWData); got != 10 {
		t.Errorf("accumulated x3 = %d, want 10", got)
	}
	if cval(t, last.PCRData) != 36 {
		t.Errorf("10th instruction pc = %d", cval(t, last.PCRData))
	}
}

func TestProgramOrderRetirement(t *testing.T) {
	prog := []uint32{
		riscv.ADDI(1, 0, 5),
		riscv.ADDI(2, 1, 3), // depends on x1: write-through regfile
		riscv.ADD(3, 1, 2),
	}
	fx := run(t, pipecore.Config{}, prog, nil, 3, nil)
	for i, r := range fx.rets {
		if r.Order != uint64(i+1) {
			t.Fatalf("retirement %d has order %d", i, r.Order)
		}
	}
	if got := cval(t, fx.rets[1].RdWData); got != 8 {
		t.Errorf("dependent ADDI read stale x1: got %d, want 8", got)
	}
	if got := cval(t, fx.rets[2].RdWData); got != 13 {
		t.Errorf("ADD got %d, want 13", got)
	}
}

func TestBranchFlush(t *testing.T) {
	prog := []uint32{
		riscv.BEQ(0, 0, 12),   // taken: skip next two
		riscv.ADDI(1, 0, 111), // must be flushed
		riscv.ADDI(1, 0, 222), // never fetched
		riscv.ADDI(2, 0, 7),   // branch target
	}
	fx := run(t, pipecore.Config{}, prog, nil, 2, nil)
	if got := cval(t, fx.rets[0].PCWData); got != 12 {
		t.Fatalf("branch target %d, want 12", got)
	}
	second := fx.rets[1]
	if cval(t, second.PCRData) != 12 || second.RdAddr != 2 {
		t.Fatalf("instruction after taken branch: pc=%d rd=%d", cval(t, second.PCRData), second.RdAddr)
	}
	if got := cval(t, second.RdWData); got != 7 {
		t.Fatalf("x2 = %d, want 7 (flushed instruction leaked)", got)
	}
}

func TestJalAndJalr(t *testing.T) {
	prog := []uint32{
		riscv.JAL(1, 8),      // to pc=8, link 4
		riscv.ADDI(2, 0, 99), // skipped
		riscv.JALR(3, 1, 8),  // x1=4 -> target 12
		riscv.ADDI(4, 0, 1),  // at 12
	}
	fx := run(t, pipecore.Config{}, prog, nil, 3, nil)
	if got := cval(t, fx.rets[0].RdWData); got != 4 {
		t.Fatalf("jal link %d", got)
	}
	if cval(t, fx.rets[1].PCRData) != 8 {
		t.Fatalf("jal went to %d", cval(t, fx.rets[1].PCRData))
	}
	if cval(t, fx.rets[1].RdWData) != 12 {
		t.Fatalf("jalr link %d", cval(t, fx.rets[1].RdWData))
	}
	if cval(t, fx.rets[2].PCRData) != 12 {
		t.Fatalf("jalr went to %d", cval(t, fx.rets[2].PCRData))
	}
}

func TestLoadStoreAndTraps(t *testing.T) {
	mem := map[uint32]uint8{100: 0x80, 101: 0x91}
	regs := map[int]uint32{1: 100, 2: 0xdeadbeef}

	fx := run(t, pipecore.Config{}, []uint32{riscv.LB(3, 1, 0)}, regs, 1, mem)
	if got := cval(t, fx.rets[0].RdWData); got != 0xffffff80 {
		t.Errorf("lb = %#x", got)
	}
	fx = run(t, pipecore.Config{}, []uint32{riscv.SH(1, 2, 0)}, regs, 1, nil)
	if fx.mem[100] != 0xef || fx.mem[101] != 0xbe {
		t.Errorf("sh stored %#x %#x", fx.mem[100], fx.mem[101])
	}
	// Misaligned traps to vector 0.
	fx = run(t, pipecore.Config{}, []uint32{riscv.LW(3, 1, 1)}, regs, 1, nil)
	r := fx.rets[0]
	if !r.Trap || r.Cause != riscv.ExcLoadAddrMisaligned || cval(t, r.PCWData) != 0 {
		t.Errorf("misaligned LW: trap=%v cause=%d next=%d", r.Trap, r.Cause, cval(t, r.PCWData))
	}
	// CSR instructions are not implemented: illegal.
	fx = run(t, pipecore.Config{}, []uint32{riscv.CSRRW(1, riscv.CSRMScratch, 2)}, regs, 1, nil)
	if !fx.rets[0].Trap || fx.rets[0].Cause != riscv.ExcIllegalInstruction {
		t.Error("csrrw must trap illegal on the CSR-less pipeline core")
	}
}

// TestHazardFaultConcrete pins each E10–E14 injection point with a concrete
// two-instruction program, independent of the symbolic campaign.
func TestHazardFaultConcrete(t *testing.T) {
	// E10: a back-to-back rs1 consumer reads the stale operand.
	fx := run(t, pipecore.Config{Faults: faults.Only(faults.E10)}, []uint32{
		riscv.ADDI(1, 0, 5),
		riscv.ADD(2, 1, 0),
	}, nil, 2, nil)
	if got := cval(t, fx.rets[1].RdWData); got != 0 {
		t.Errorf("E10: dependent ADD = %d, want stale 0", got)
	}
	// E11: the rs2 twin.
	fx = run(t, pipecore.Config{Faults: faults.Only(faults.E11)}, []uint32{
		riscv.ADDI(1, 0, 5),
		riscv.ADD(2, 0, 1),
	}, nil, 2, nil)
	if got := cval(t, fx.rets[1].RdWData); got != 0 {
		t.Errorf("E11: dependent ADD = %d, want stale 0", got)
	}
	// E12: the wrong-path fall-through retires after the taken branch.
	fx = run(t, pipecore.Config{Faults: faults.Only(faults.E12)}, []uint32{
		riscv.BEQ(0, 0, 12),
		riscv.ADDI(1, 0, 111),
		riscv.ADDI(1, 0, 222),
		riscv.ADDI(2, 0, 7),
	}, nil, 2, nil)
	if got := cval(t, fx.rets[1].PCRData); got != 4 {
		t.Errorf("E12: second retirement at pc=%d, want wrong-path 4", got)
	}
	// E13: the front end resumes at target+4.
	fx = run(t, pipecore.Config{Faults: faults.Only(faults.E13)}, []uint32{
		riscv.BEQ(0, 0, 12),
		riscv.ADDI(1, 0, 111),
		riscv.ADDI(1, 0, 222),
		riscv.ADDI(2, 0, 7),
		riscv.ADDI(3, 0, 9),
	}, nil, 2, nil)
	if got := cval(t, fx.rets[1].PCRData); got != 16 {
		t.Errorf("E13: second retirement at pc=%d, want 16", got)
	}
	// E14: the flush erases the link-register writeback of a taken JAL.
	fx = run(t, pipecore.Config{Faults: faults.Only(faults.E14)}, []uint32{
		riscv.JAL(1, 8),
		riscv.ADDI(9, 0, 1),
		riscv.ADD(2, 1, 0),
	}, nil, 2, nil)
	if got := cval(t, fx.rets[1].RdWData); got != 0 {
		t.Errorf("E14: link register read back %d, want rolled-back 0", got)
	}
}

// pipeCfg is the matched pipeline-vs-ISS co-simulation scenario.
func pipeCfg(f faults.Set) cosim.Config {
	return cosim.Config{
		ISS:    iss.FixedConfig(),
		Filter: cosim.BlockSystemInstructions,
		NewDUT: func(eng *core.Engine) cosim.DUT {
			return pipecore.New(eng, pipecore.Config{Faults: f})
		},
	}
}

// TestPipelineMatchedAgainstISS is the generality check: the clean pipelined
// core must agree with the reference ISS over the full symbolic RV32I space
// at instruction limit 1.
func TestPipelineMatchedAgainstISS(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space exploration")
	}
	x := core.NewExplorer(cosim.RunFunc(pipeCfg(faults.None)))
	rep := x.Explore(core.Options{MaxTime: 120 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("pipeline core diverges from ISS: %v", rep.Findings[0].Err)
	}
	if !rep.Exhausted {
		t.Fatalf("exploration not exhausted: %v", rep.Stats)
	}
	t.Logf("pipeline matched exploration: %v", rep.Stats)
}

// TestPipelineMatchedLimit2 extends the agreement to two-instruction traces
// (pipelining effects only show with >1 instruction in flight).
func TestPipelineMatchedLimit2(t *testing.T) {
	cfg := pipeCfg(faults.None)
	cfg.InstrLimit = 2
	cfg.Filter = cosim.Filters(cosim.BlockSystemInstructions, cosim.OnlyOpcode(riscv.OpBranch))
	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 60 * time.Second, MaxPaths: 500})
	if len(rep.Findings) != 0 {
		t.Fatalf("pipeline diverges at limit 2: %v", rep.Findings[0].Err)
	}
	if rep.Stats.Completed == 0 {
		t.Fatal("no completed paths")
	}
}

// TestPipelineFaultsFound reruns a Table II subset against the pipelined
// core: the same injected errors must be found by the same methodology.
func TestPipelineFaultsFound(t *testing.T) {
	for _, f := range faults.Base() {
		x := core.NewExplorer(cosim.RunFunc(pipeCfg(faults.Only(f))))
		rep := x.Explore(core.Options{StopOnFirstFinding: true, MaxTime: 60 * time.Second})
		if len(rep.Findings) != 1 {
			t.Errorf("%s not found on the pipelined core: %v", f, rep.Stats)
		}
	}
}

// TestPipelineHazardFaultsFound covers the E10–E14 hazard/forwarding/control
// series. All five corrupt how one instruction's effect reaches the next, so
// they are invisible at instruction limit 1 and need two instructions in
// flight. Each fault gets a filter steering the two-instruction space toward
// its trigger shape (producer–consumer for the bypass faults, control flow
// for the redirect faults) so the sweep stays fast under -race; full-space
// detection is pinned by the `symv table2 -core pipecore` campaign in CI.
func TestPipelineHazardFaultsFound(t *testing.T) {
	// Control-flow subtree: branches, JAL and JALR (E14 needs a rd-writing
	// redirect followed by a consumer of the rolled-back link register).
	ctl := func(eng *core.Engine, word *smt.Term) {
		ctx := eng.Context()
		op := ctx.And(word, ctx.BV(32, 0x7f))
		eng.Assume(ctx.BOr(ctx.Eq(op, ctx.BV(32, riscv.OpJAL)),
			ctx.BOr(ctx.Eq(op, ctx.BV(32, riscv.OpJALR)),
				ctx.Eq(op, ctx.BV(32, riscv.OpBranch)))))
	}
	narrow := map[faults.Fault]cosim.InstrFilter{
		faults.E10: cosim.OnlyOpcode(riscv.OpReg), // producer + rs1 consumer
		faults.E11: cosim.OnlyOpcode(riscv.OpReg), // producer + rs2 consumer
		faults.E12: cosim.OnlyOpcode(riscv.OpBranch),
		faults.E13: cosim.OnlyOpcode(riscv.OpBranch),
		faults.E14: ctl,
	}
	for _, f := range faults.Pipeline() {
		cfg := pipeCfg(faults.Only(f))
		cfg.InstrLimit = 2
		cfg.Filter = cosim.Filters(cosim.BlockSystemInstructions, narrow[f])
		x := core.NewExplorer(cosim.RunFunc(cfg))
		rep := x.Explore(core.Options{StopOnFirstFinding: true, MaxTime: 120 * time.Second})
		if len(rep.Findings) != 1 {
			t.Errorf("%s not found on the pipelined core at limit 2: %v", f, rep.Stats)
		}
	}
}

// TestPipelineHazardFaultsInvisibleAtLimit1 pins down why the series needs
// multi-instruction traces: a single retirement carries no cross-instruction
// effect, so each fault's limit-1 exploration must stay clean.
func TestPipelineHazardFaultsInvisibleAtLimit1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space exploration")
	}
	for _, f := range faults.Pipeline() {
		x := core.NewExplorer(cosim.RunFunc(pipeCfg(faults.Only(f))))
		rep := x.Explore(core.Options{MaxTime: 120 * time.Second})
		if len(rep.Findings) != 0 {
			t.Errorf("%s visible at limit 1: %v", f, rep.Findings[0].Err)
		}
		if !rep.Exhausted {
			t.Errorf("%s limit-1 exploration not exhausted: %v", f, rep.Stats)
		}
	}
}

// slotLine drives the external interrupt line concretely: asserted for the
// slots in the set, deasserted otherwise.
type slotLine struct {
	ctx   *smt.Context
	slots map[uint64]bool
}

func (l slotLine) Line(slot uint64) *smt.Term {
	if l.slots[slot] {
		return l.ctx.BV(1, 1)
	}
	return l.ctx.BV(1, 0)
}

// TestPipelineInterruptEntryConcrete clocks the core with the interrupt line
// asserted for slot 0 and enables latched via SetCSR: the prefetched program
// instruction must be squashed and the first retirement must be the handler
// instruction at the hardwired vector 0.
func TestPipelineInterruptEntryConcrete(t *testing.T) {
	var rets []rvfi.Retirement
	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		c := pipecore.New(e, pipecore.Config{})
		c.SetPC(0x100)
		c.SetCSR(riscv.CSRMStatus, ctx.BV(32, riscv.MstatusMIE))
		c.SetCSR(riscv.CSRMIe, ctx.BV(32, riscv.MieMEIE))
		c.SetIrqSource(slotLine{ctx: ctx, slots: map[uint64]bool{0: true}})
		rets = nil
		var ib rtl.IBusResponse
		for cycles := 0; len(rets) < 2; cycles++ {
			if cycles > 64 {
				t.Fatal("core hung waiting for interrupt entry")
			}
			ibReq, _ := c.Step(ib, rtl.DBusResponse{})
			ib = rtl.IBusResponse{}
			if ibReq.FetchEnable {
				addr := uint32(ibReq.Address.ConstVal())
				w := riscv.ADDI(1, 0, 42) // handler body at/after the vector
				if addr >= 0x100 {
					w = riscv.ADDI(2, 0, 7) // original program
				}
				ib = rtl.IBusResponse{InstructionReady: true, Instruction: ctx.BV(32, uint64(w))}
			}
			if ret := c.Retirement(); ret.Valid {
				rets = append(rets, *ret)
			}
		}
		return nil
	})
	rep := x.Explore(core.Options{})
	if rep.Stats.Completed != 1 {
		t.Fatalf("concrete interrupt entry should run on one path: %v", rep.Stats)
	}
	if got := cval(t, rets[0].PCRData); got != 0 {
		t.Fatalf("first retirement at pc=%#x, want the vector 0", got)
	}
	if rets[0].RdAddr != 1 {
		t.Fatalf("first retirement rd=x%d, want the handler's x1", rets[0].RdAddr)
	}
	// Only slot 0 asserts the line: slot 1 must continue at vector+4.
	if got := cval(t, rets[1].PCRData); got != 4 {
		t.Fatalf("second retirement at pc=%#x, want 4", got)
	}
}

// TestPipelineInterruptsMatched extends the generality check to the
// interrupt-enabled scenario: with the symbolic line and symbolic initial
// mstatus/mie, the pipelined core must agree with the reference ISS on every
// path, and the take-condition must actually fork.
func TestPipelineInterruptsMatched(t *testing.T) {
	cfg := pipeCfg(faults.None)
	cfg.SymbolicInterrupts = true
	cfg.StartPC = 0x100 // keep the trap vector (0) distinct from the program
	cfg.Filter = cosim.Filters(cosim.BlockSystemInstructions, cosim.OnlyOpcode(riscv.OpImm))
	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 120 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("interrupt mismatch on matched pipeline: %v", rep.Findings[0].Err)
	}
	if !rep.Exhausted {
		t.Fatalf("not exhausted: %v", rep.Stats)
	}
	base := pipeCfg(faults.None)
	base.Filter = cosim.Filters(cosim.BlockSystemInstructions, cosim.OnlyOpcode(riscv.OpImm))
	baseRep := core.NewExplorer(cosim.RunFunc(base)).Explore(core.Options{MaxTime: 120 * time.Second})
	if rep.Stats.Completed < baseRep.Stats.Completed*3/2 {
		t.Fatalf("interrupt line did not fork: %d paths vs %d without interrupts",
			rep.Stats.Completed, baseRep.Stats.Completed)
	}
}

// TestPipelineRV32MMatched sweeps the M-extension decode subtree on the
// pipelined core against the M-enabled ISS.
func TestPipelineRV32MMatched(t *testing.T) {
	cfg := cosim.Config{
		ISS: iss.Config{TrapOnMisaligned: true, EnableM: true},
		Filter: cosim.Filters(cosim.BlockSystemInstructions,
			cosim.OnlyMasked(0xfe00007f, uint32(riscv.F7MulDiv)<<25|riscv.OpReg)),
		NewDUT: func(eng *core.Engine) cosim.DUT {
			return pipecore.New(eng, pipecore.Config{EnableM: true})
		},
	}
	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 60 * time.Second})
	if len(rep.Findings) != 0 {
		t.Fatalf("pipeline M mismatch: %v", rep.Findings[0].Err)
	}
	if !rep.Exhausted || rep.Stats.Completed == 0 {
		t.Fatalf("M sweep incomplete: %v", rep.Stats)
	}
}
