package pipecore

import (
	"symriscv/internal/core"
	"symriscv/internal/rvfi"
)

// SnapshotDUT freezes the pipeline's complete state and returns a restore
// closure rebuilding an equivalent core bound to a fresh engine (fork-point
// checkpointing, same contract as microrv32.Core.SnapshotDUT). All pipeline
// registers hold hash-consed *smt.Term pointers shared as-is; the EX-stage
// memory state and the interesting-register slice are the only mutable heap
// state, copied per restore. irqSrc, when non-nil, must be the restored
// interrupt source (asserted to rvfi.IrqSource); it replaces the frozen one
// without disturbing irqCheckedSlot, unlike the SetIrqSource testbench hook.
func (c *Core) SnapshotDUT() func(eng *core.Engine, irqSrc any) any {
	frozen := *c
	if c.exMem != nil {
		m := *c.exMem
		frozen.exMem = &m
	}
	interesting := append([]int(nil), c.interesting...)
	return func(eng *core.Engine, irqSrc any) any {
		n := frozen
		n.eng = eng
		if frozen.exMem != nil {
			m := *frozen.exMem
			n.exMem = &m
		}
		n.interesting = append([]int(nil), interesting...)
		if irqSrc != nil {
			n.irq = irqSrc.(rvfi.IrqSource)
		}
		return &n
	}
}
