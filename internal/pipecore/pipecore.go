// Package pipecore implements a second device under test: a fetch-overlapped
// pipelined RV32I core in the VexRiscv tradition (the other SpinalHDL
// processor the paper names). It demonstrates that the co-simulation
// methodology is not tied to the multi-cycle MicroRV32 microarchitecture:
// the testbench only sees the same IBus/DBus protocols and an RVFI port,
// while internally the fetch of the next instruction runs under the execute
// of the current one (speculative prefetch), taken branches and traps flush
// the fetch stage, and instructions retire at execute completion with a
// write-through register file.
//
// Scope: RV32I (+ optional RV32M) + ECALL/EBREAK/WFI/FENCE. Zicsr and MRET are not implemented
// (they raise illegal-instruction); co-simulation scenarios against the
// full-featured reference ISS must block the SYSTEM opcode, as the Table II
// configuration does anyway.
//
// The injected faults E0–E9 are supported at the same microarchitectural
// points as in the MicroRV32 model, so the error-injection study can be
// replayed against a pipelined implementation. E10–E14 target points that
// only exist in a pipelined microarchitecture — the writeback bypass network
// (E10/E11), the wrong-path squash (E12), the redirect target latch (E13)
// and the flush/writeback interaction (E14); all of them are invisible at
// instruction limit 1 and need at least two instructions in flight.
package pipecore

import (
	"symriscv/internal/core"
	"symriscv/internal/faults"
	"symriscv/internal/riscv"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// Config selects the core variant.
type Config struct {
	// EnableM adds the RV32M multiply/divide extension.
	EnableM bool
	// Faults is the set of injected errors (E0–E14; E10–E14 are the
	// pipeline-specific hazard/forwarding/control series).
	Faults faults.Set
}

type opKind uint8

const (
	opIllegal opKind = iota
	opLUI
	opAUIPC
	opJAL
	opJALR
	opBEQ
	opBNE
	opBLT
	opBGE
	opBLTU
	opBGEU
	opLB
	opLH
	opLW
	opLBU
	opLHU
	opSB
	opSH
	opSW
	opADDI
	opSLTI
	opSLTIU
	opXORI
	opORI
	opANDI
	opSLLI
	opSRLI
	opSRAI
	opADD
	opSUB
	opSLL
	opSLT
	opSLTU
	opXOR
	opSRL
	opSRA
	opOR
	opAND
	opMUL
	opMULH
	opMULHSU
	opMULHU
	opDIV
	opDIVU
	opREM
	opREMU
	opFENCE
	opECALL
	opEBREAK
	opWFI
)

type decodeEntry struct {
	mask, match uint32
	op          opKind
}

const bit25 = uint32(1) << 25

func buildTable(f faults.Set, enableM bool) []decodeEntry {
	slliMask := uint32(0xfe00707f)
	srliMask := uint32(0xfe00707f)
	sraiMask := uint32(0xfe00707f)
	if f.Has(faults.E0) {
		slliMask &^= bit25
	}
	if f.Has(faults.E1) {
		srliMask &^= bit25
	}
	if f.Has(faults.E2) {
		sraiMask &^= bit25
	}
	table := []decodeEntry{
		{0x7f, riscv.OpLUI, opLUI},
		{0x7f, riscv.OpAUIPC, opAUIPC},
		{0x7f, riscv.OpJAL, opJAL},
		{0x707f, riscv.OpJALR, opJALR},
		{0x707f, riscv.F3BEQ<<12 | riscv.OpBranch, opBEQ},
		{0x707f, riscv.F3BNE<<12 | riscv.OpBranch, opBNE},
		{0x707f, riscv.F3BLT<<12 | riscv.OpBranch, opBLT},
		{0x707f, riscv.F3BGE<<12 | riscv.OpBranch, opBGE},
		{0x707f, riscv.F3BLTU<<12 | riscv.OpBranch, opBLTU},
		{0x707f, riscv.F3BGEU<<12 | riscv.OpBranch, opBGEU},
		{0x707f, riscv.F3LB<<12 | riscv.OpLoad, opLB},
		{0x707f, riscv.F3LH<<12 | riscv.OpLoad, opLH},
		{0x707f, riscv.F3LW<<12 | riscv.OpLoad, opLW},
		{0x707f, riscv.F3LBU<<12 | riscv.OpLoad, opLBU},
		{0x707f, riscv.F3LHU<<12 | riscv.OpLoad, opLHU},
		{0x707f, riscv.F3SB<<12 | riscv.OpStore, opSB},
		{0x707f, riscv.F3SH<<12 | riscv.OpStore, opSH},
		{0x707f, riscv.F3SW<<12 | riscv.OpStore, opSW},
		{0x707f, riscv.F3ADDSUB<<12 | riscv.OpImm, opADDI},
		{0x707f, riscv.F3SLT<<12 | riscv.OpImm, opSLTI},
		{0x707f, riscv.F3SLTU<<12 | riscv.OpImm, opSLTIU},
		{0x707f, riscv.F3XOR<<12 | riscv.OpImm, opXORI},
		{0x707f, riscv.F3OR<<12 | riscv.OpImm, opORI},
		{0x707f, riscv.F3AND<<12 | riscv.OpImm, opANDI},
		{slliMask, riscv.F3SLL<<12 | riscv.OpImm, opSLLI},
		{srliMask, riscv.F3SRL<<12 | riscv.OpImm, opSRLI},
		{sraiMask, 0x40000000 | riscv.F3SRL<<12 | riscv.OpImm, opSRAI},
		{0xfe00707f, riscv.F3ADDSUB<<12 | riscv.OpReg, opADD},
		{0xfe00707f, 0x40000000 | riscv.F3ADDSUB<<12 | riscv.OpReg, opSUB},
		{0xfe00707f, riscv.F3SLL<<12 | riscv.OpReg, opSLL},
		{0xfe00707f, riscv.F3SLT<<12 | riscv.OpReg, opSLT},
		{0xfe00707f, riscv.F3SLTU<<12 | riscv.OpReg, opSLTU},
		{0xfe00707f, riscv.F3XOR<<12 | riscv.OpReg, opXOR},
		{0xfe00707f, riscv.F3SRL<<12 | riscv.OpReg, opSRL},
		{0xfe00707f, 0x40000000 | riscv.F3SRL<<12 | riscv.OpReg, opSRA},
		{0xfe00707f, riscv.F3OR<<12 | riscv.OpReg, opOR},
		{0xfe00707f, riscv.F3AND<<12 | riscv.OpReg, opAND},
		{0x707f, riscv.OpMisc, opFENCE},
		{0xffffffff, riscv.F12ECALL<<20 | riscv.OpSystem, opECALL},
		{0xffffffff, riscv.F12EBREAK<<20 | riscv.OpSystem, opEBREAK},
		{0xffffffff, riscv.F12WFI<<20 | riscv.OpSystem, opWFI},
	}
	if enableM {
		mRows := []struct {
			f3 uint32
			op opKind
		}{
			{riscv.F3MUL, opMUL}, {riscv.F3MULH, opMULH},
			{riscv.F3MULHSU, opMULHSU}, {riscv.F3MULHU, opMULHU},
			{riscv.F3DIV, opDIV}, {riscv.F3DIVU, opDIVU},
			{riscv.F3REM, opREM}, {riscv.F3REMU, opREMU},
		}
		for _, r := range mRows {
			table = append(table, decodeEntry{0xfe00707f, riscv.F7MulDiv<<25 | r.f3<<12 | riscv.OpReg, r.op})
		}
	}
	return table
}

// memState is an in-flight EX-stage memory access.
type memState struct {
	op       opKind
	rd       int
	addr     uint32
	ea       *smt.Term
	storeVal *smt.Term // architectural value for RVFI
	strobe   rtl.Strobe
}

// wbEntry carries one instruction's architectural results to retirement.
type wbEntry struct {
	pc     uint32
	insn   *smt.Term
	nextPC *smt.Term
	rd     int
	val    *smt.Term
	trap   bool
	cause  uint32

	memAddr  *smt.Term
	memWData *smt.Term
	memWMask uint8
	memRMask uint8
}

// Core is the pipelined core model.
type Core struct {
	cfg   Config
	eng   *core.Engine
	ctx   *smt.Context
	table []decodeEntry

	regs        [32]*smt.Term
	interesting []int

	pc      uint32 // next fetch address
	cycle   uint64
	instret uint64
	order   uint64

	// IF stage.
	fetchPending bool
	fetchDiscard bool
	fetchPC      uint32
	ifValid      bool
	ifPC         uint32
	ifInsn       *smt.Term

	// EX stage.
	exValid bool
	exPC    uint32
	exInsn  *smt.Term
	exMem   *memState

	// Writeback bypass bookkeeping: the register, pre-write value and cycle
	// of the most recent register writeback. srcReg consults it for the
	// E10/E11 dropped-bypass faults; complete consults it for E14.
	lastWBRd    int
	lastWBOld   *smt.Term
	lastWBCycle uint64

	// Interrupt delivery: the external line, the per-slot sampling guard,
	// and the latched interrupt-control state. The CSR-less core has no CSR
	// file — mstatus and mie exist only as tie-off inputs of the interrupt
	// gate (nil reads as 0, i.e. interrupts disabled).
	irq            rvfi.IrqSource
	irqCheckedSlot uint64
	mstatus        *smt.Term
	mie            *smt.Term

	ret rvfi.Retirement
}

// New returns a core at reset.
func New(eng *core.Engine, cfg Config) *Core {
	ctx := eng.Context()
	c := &Core{
		cfg:   cfg,
		eng:   eng,
		ctx:   ctx,
		table: buildTable(cfg.Faults, cfg.EnableM),
	}
	zero := ctx.BV(32, 0)
	for i := range c.regs {
		c.regs[i] = zero
	}
	c.interesting = []int{0}
	return c
}

// SetPC sets the reset fetch address.
func (c *Core) SetPC(pc uint32) { c.pc = pc }

// SetIrqSource connects the external interrupt line (testbench hook).
func (c *Core) SetIrqSource(src rvfi.IrqSource) {
	c.irq = src
	c.irqCheckedSlot = ^uint64(0)
}

// SetCSR latches interrupt-control state (testbench hook). The CSR-less
// pipeline core has no CSR file; only mstatus and mie are stored, as the
// tie-off inputs of the interrupt gate — every other address is ignored.
func (c *Core) SetCSR(addr uint16, v *smt.Term) {
	switch addr {
	case riscv.CSRMStatus:
		c.mstatus = v
	case riscv.CSRMIe:
		c.mie = v
	}
}

// csrOr0 reads a latched interrupt-control input, nil meaning hardwired 0.
func (c *Core) csrOr0(t *smt.Term) *smt.Term {
	if t == nil {
		return c.bv(0)
	}
	return t
}

// SetReg initialises a register (testbench hook); x0 writes are ignored.
func (c *Core) SetReg(i int, v *smt.Term) {
	if i == 0 {
		return
	}
	c.regs[i] = v
	c.markInteresting(i)
}

// Reg returns register i.
func (c *Core) Reg(i int) *smt.Term { return c.regs[i] }

// Cycles returns the clock cycle count.
func (c *Core) Cycles() uint64 { return c.cycle }

// Instret returns the retired instruction count.
func (c *Core) Instret() uint64 { return c.instret }

// Retirement returns the RVFI record (Valid only in the retiring cycle).
func (c *Core) Retirement() *rvfi.Retirement { return &c.ret }

func (c *Core) markInteresting(i int) {
	for p, x := range c.interesting {
		if x == i {
			return
		}
		if x > i {
			c.interesting = append(c.interesting, 0)
			copy(c.interesting[p+1:], c.interesting[p:])
			c.interesting[p] = i
			return
		}
	}
	c.interesting = append(c.interesting, i)
}

func (c *Core) writeReg(i int, v *smt.Term) {
	if i == 0 {
		return
	}
	c.regs[i] = v
	c.markInteresting(i)
}

func (c *Core) chooseReg(field *smt.Term) int {
	for _, i := range c.interesting {
		if c.eng.BranchEq(field, c.ctx.BV(5, uint64(i))) {
			return i
		}
	}
	return int(c.eng.Concretize(field))
}

func (c *Core) bv(v uint32) *smt.Term { return c.ctx.BV(32, uint64(v)) }

// Step advances one clock. Stage order within a cycle is EX → handoff → IF;
// an instruction retires in the cycle its execute stage completes, so the
// execution controller sees the retirement before the next instruction can
// enter execute.
func (c *Core) Step(ib rtl.IBusResponse, db rtl.DBusResponse) (ibReq rtl.IBusRequest, dbReq rtl.DBusRequest) {
	c.cycle++
	c.eng.CountCycle(1)
	c.ret.Valid = false

	// --- IF response capture (for the request issued last cycle).
	if c.fetchPending && ib.InstructionReady {
		c.fetchPending = false
		if c.fetchDiscard {
			c.fetchDiscard = false
		} else {
			c.ifValid = true
			c.ifPC = c.fetchPC
			c.ifInsn = ib.Instruction
			c.pc = c.fetchPC + 4
		}
	}

	// --- EX interrupt gate: one opportunity per instruction slot, sampled
	// before the slot's instruction executes — the same architectural point
	// the reference ISS uses. A taken interrupt squashes the not-yet-executed
	// instruction and steers fetch to the hardwired vector (0); the slot's
	// instruction is then the first handler instruction.
	if c.exValid && c.irq != nil && c.irqCheckedSlot != c.order {
		c.irqCheckedSlot = c.order
		line := c.irq.Line(c.order)
		taken := riscv.SymInterruptTaken(c.ctx, line, c.csrOr0(c.mstatus), c.csrOr0(c.mie))
		if c.eng.Branch(taken) {
			c.exValid = false
			c.exMem = nil
			c.redirect(0)
		}
	}

	// --- EX.
	if c.exValid {
		if c.exMem != nil {
			if db.DataReady {
				c.finishMem(db.ReadData)
			}
		} else {
			dbReq = c.execute()
		}
	}

	// --- IF→EX handoff.
	if !c.exValid && c.ifValid {
		c.exValid = true
		c.exPC = c.ifPC
		c.exInsn = c.ifInsn
		c.ifValid = false
	}

	// --- IF request issue (one instruction of prefetch).
	if !c.ifValid && !c.fetchPending {
		ibReq = rtl.IBusRequest{FetchEnable: true, Address: c.bv(c.pc)}
		c.fetchPending = true
		c.fetchPC = c.pc
	}
	return ibReq, dbReq
}

// srcReg reads register i as the EX stage sees it on its read port for the
// given bypass lane (faults.E10 for rs1, faults.E11 for rs2). With the lane's
// dropped-bypass fault injected, a value committed by the writeback on the
// previous cycle has not yet propagated to the read port, so a back-to-back
// consumer reads the stale operand.
func (c *Core) srcReg(i int, lane faults.Fault) *smt.Term {
	if i != 0 && i == c.lastWBRd && c.cycle == c.lastWBCycle+1 && c.cfg.Faults.Has(lane) {
		return c.lastWBOld
	}
	return c.regs[i]
}

// redirect flushes the fetch stage and steers it to the target.
func (c *Core) redirect(target uint32) {
	if c.cfg.Faults.Has(faults.E13) {
		target += 4 // E13: redirect target mis-latched
	}
	if c.cfg.Faults.Has(faults.E12) {
		// E12: the wrong-path squash is dropped — the speculatively fetched
		// fall-through instruction stays valid, executes and retires.
		c.pc = target
		return
	}
	c.ifValid = false
	if c.fetchPending {
		c.fetchDiscard = true
	}
	c.pc = target
}

// complete finishes the EX stage instruction: it commits the register write
// (write-through register file), publishes the RVFI retirement, and — when
// the concrete next PC is not the sequential successor — flushes the fetch
// stage.
func (c *Core) complete(w *wbEntry) {
	c.exValid = false
	c.exMem = nil

	if !w.trap && w.rd != 0 {
		c.lastWBRd, c.lastWBOld, c.lastWBCycle = w.rd, c.regs[w.rd], c.cycle
		c.writeReg(w.rd, w.val)
	}
	c.order++
	c.ret = rvfi.Retirement{
		Valid:    true,
		Order:    c.order,
		Insn:     w.insn,
		Trap:     w.trap,
		Cause:    w.cause,
		PCRData:  c.bv(w.pc),
		PCWData:  w.nextPC,
		RdAddr:   w.rd,
		RdWData:  w.val,
		MemAddr:  w.memAddr,
		MemWData: w.memWData,
		MemWMask: w.memWMask,
		MemRMask: w.memRMask,
	}
	if w.trap {
		c.ret.RdAddr = 0
		c.ret.RdWData = nil
	} else {
		c.instret++
	}
	c.eng.CountInstruction(1)

	next := uint32(c.eng.Concretize(w.nextPC))
	if next != w.pc+4 {
		if !w.trap && w.rd != 0 && c.cfg.Faults.Has(faults.E14) {
			// E14: the flush rolls back the retiring instruction's own
			// register writeback (e.g. the link register of a taken JAL).
			// The RVFI record keeps the committed value — the corruption
			// only surfaces through a later read of the register.
			c.regs[w.rd] = c.lastWBOld
		}
		c.redirect(next)
	}
}

func (c *Core) trap(cause uint32) {
	// Machine trap vector: this CSR-less core hardwires mtvec to 0.
	c.complete(&wbEntry{
		pc:     c.exPC,
		insn:   c.exInsn,
		nextPC: c.bv(0),
		trap:   true,
		cause:  cause,
	})
}

func (c *Core) decode(insn *smt.Term) opKind {
	for _, e := range c.table {
		cond := c.ctx.Eq(c.ctx.And(insn, c.bv(e.mask)), c.bv(e.match))
		if c.eng.Branch(cond) {
			return e.op
		}
	}
	return opIllegal
}
