// Package cow provides a persistent copy-on-write map: O(1) snapshots of a
// mutable map, with later writes landing in a fresh layer so every snapshot
// stays frozen forever. It is the state-sharing substrate of fork-point
// checkpointing (see internal/core): the co-simulation's lazily populated
// memories snapshot at every quiescent point, and sibling paths resume from
// a frozen layer without copying a single entry.
//
// The package is deterministic-kernel safe: no clocks, no randomness, and
// map iteration only ever feeds another map (flattening), never an ordered
// output.
package cow

// maxDepth bounds the frozen-layer chain a lookup walks. Snapshot flattens
// chains that grow beyond it, so Get stays O(maxDepth) regardless of how
// many checkpoints a long path takes.
const maxDepth = 8

// Layer is one frozen snapshot: an immutable set of entries over an
// immutable parent chain. A nil *Layer is the empty snapshot.
type Layer[K comparable, V any] struct {
	entries map[K]V
	parent  *Layer[K, V]
	depth   int
}

// Map is a mutable map view: a writable current layer over a frozen parent
// chain. The zero value / New() is an empty map. Not safe for concurrent
// use; like the rest of the deterministic kernel it is single-goroutine.
type Map[K comparable, V any] struct {
	cur  map[K]V
	base *Layer[K, V]
}

// New returns an empty copy-on-write map.
func New[K comparable, V any]() *Map[K, V] { return &Map[K, V]{} }

// Resume returns a fresh writable map on top of a frozen snapshot (nil is
// the empty snapshot). Writes never touch the layer, so any number of
// resumed maps can share it.
func Resume[K comparable, V any](l *Layer[K, V]) *Map[K, V] {
	return &Map[K, V]{base: l}
}

// Get returns the value for k, searching the current layer first and then
// the frozen chain (newer layers shadow older ones).
func (m *Map[K, V]) Get(k K) (V, bool) {
	if m.cur != nil {
		if v, ok := m.cur[k]; ok {
			return v, true
		}
	}
	for l := m.base; l != nil; l = l.parent {
		if v, ok := l.entries[k]; ok {
			return v, true
		}
	}
	var zero V
	return zero, false
}

// Set writes k in the current layer, shadowing any frozen binding.
func (m *Map[K, V]) Set(k K, v V) {
	if m.cur == nil {
		m.cur = make(map[K]V, 8)
	}
	m.cur[k] = v
}

// Snapshot freezes the current layer and returns the resulting immutable
// snapshot; the map keeps writing on top of it. With no writes since the
// last snapshot this is free (the existing snapshot is reused). Chains
// longer than maxDepth are flattened into one layer.
func (m *Map[K, V]) Snapshot() *Layer[K, V] {
	if len(m.cur) == 0 {
		return m.base
	}
	l := &Layer[K, V]{entries: m.cur, parent: m.base, depth: 1}
	if m.base != nil {
		l.depth = m.base.depth + 1
	}
	if l.depth > maxDepth {
		l = flatten(l)
	}
	m.base = l
	m.cur = nil
	return l
}

// flatten merges a chain into a single layer. Entries are copied oldest
// first so newer bindings shadow older ones; the copy targets a map, so the
// unordered iteration cannot leak into any deterministic output.
func flatten[K comparable, V any](l *Layer[K, V]) *Layer[K, V] {
	var chain []*Layer[K, V]
	n := 0
	for x := l; x != nil; x = x.parent {
		chain = append(chain, x)
		n += len(x.entries)
	}
	merged := make(map[K]V, n)
	for i := len(chain) - 1; i >= 0; i-- {
		for k, v := range chain[i].entries {
			merged[k] = v
		}
	}
	return &Layer[K, V]{entries: merged, depth: 1}
}
