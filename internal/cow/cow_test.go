package cow

import "testing"

func TestEmptyMap(t *testing.T) {
	m := New[uint32, int]()
	if _, ok := m.Get(1); ok {
		t.Fatal("empty map reported a hit")
	}
	if l := m.Snapshot(); l != nil {
		t.Fatal("empty snapshot should be nil")
	}
	r := Resume[uint32, int](nil)
	if _, ok := r.Get(1); ok {
		t.Fatal("resume of empty snapshot reported a hit")
	}
}

func TestSetGetShadowing(t *testing.T) {
	m := New[uint32, int]()
	m.Set(1, 10)
	m.Set(2, 20)
	s1 := m.Snapshot()
	m.Set(2, 21) // shadows the frozen binding
	m.Set(3, 30)

	for _, tc := range []struct {
		k    uint32
		want int
	}{{1, 10}, {2, 21}, {3, 30}} {
		if v, ok := m.Get(tc.k); !ok || v != tc.want {
			t.Fatalf("Get(%d) = %d,%v want %d", tc.k, v, ok, tc.want)
		}
	}

	// The frozen snapshot still sees the old world.
	r := Resume(s1)
	if v, ok := r.Get(2); !ok || v != 20 {
		t.Fatalf("snapshot Get(2) = %d,%v want 20", v, ok)
	}
	if _, ok := r.Get(3); ok {
		t.Fatal("snapshot sees a write made after it was taken")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New[uint32, int]()
	m.Set(1, 10)
	s := m.Snapshot()

	// Two siblings resume from the same snapshot and diverge.
	a, b := Resume(s), Resume(s)
	a.Set(1, 100)
	b.Set(2, 200)

	if v, _ := a.Get(1); v != 100 {
		t.Fatalf("a.Get(1) = %d want 100", v)
	}
	if v, _ := b.Get(1); v != 10 {
		t.Fatalf("b.Get(1) = %d want 10 (a's write leaked)", v)
	}
	if _, ok := a.Get(2); ok {
		t.Fatal("b's write leaked into a")
	}
	// The original keeps writing without disturbing either sibling.
	m.Set(1, 11)
	if v, _ := a.Get(1); v != 100 {
		t.Fatalf("parent write leaked into a: %d", v)
	}
	if v, _ := b.Get(1); v != 10 {
		t.Fatalf("parent write leaked into b: %d", v)
	}
}

func TestSnapshotReuseWhenClean(t *testing.T) {
	m := New[uint32, int]()
	m.Set(1, 10)
	s1 := m.Snapshot()
	s2 := m.Snapshot() // no writes in between: must reuse
	if s1 != s2 {
		t.Fatal("clean snapshot did not reuse the previous layer")
	}
	m.Set(2, 20)
	if s3 := m.Snapshot(); s3 == s2 {
		t.Fatal("dirty snapshot reused the previous layer")
	}
}

func TestFlattenBoundsDepthAndPreservesShadowing(t *testing.T) {
	m := New[int, int]()
	const rounds = 4 * maxDepth
	for i := 0; i < rounds; i++ {
		m.Set(i, i)  // a fresh key per round
		m.Set(-1, i) // rewritten every round: newest must win
		m.Snapshot()
	}
	l := m.Snapshot()
	if l.depth > maxDepth {
		t.Fatalf("layer depth %d exceeds maxDepth %d", l.depth, maxDepth)
	}
	for i := 0; i < rounds; i++ {
		if v, ok := m.Get(i); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v after flatten", i, v, ok)
		}
	}
	if v, _ := m.Get(-1); v != rounds-1 {
		t.Fatalf("shadowed key = %d want %d after flatten", v, rounds-1)
	}
}
