// Package dutlint is a static analyzer over the symbolic transition
// relation of a device under test: the EDA-style "lint before prove" stage
// that catches structural defects in a translated core in seconds, before
// any solver-hours are spent on full co-simulation campaigns.
//
// The analyzer drives one instruction slot of any core implementing the
// small DUT interface with fully-free inputs (a fresh symbolic instruction
// word per fetch, free data-bus read words, symbolic initial registers and
// CSRs), exploring every feasible path of the cycle function. Because
// terms are hash-consed and input names are deterministic, the per-path
// term DAGs intern into one shared DAG; dutlint then analyzes that DAG
// structurally — no solver involvement — for:
//
//   - per-state-bit and per-output cone of influence (which input bits
//     each observable bit depends on);
//   - dead logic: bit-vector terms the cycle function built that are in no
//     cone of any architectural state, RVFI port, bus output, or path
//     constraint;
//   - constant-valued signals the term rewriter did not fold (sampled
//     under multiple deterministic environments; rewrite-rule candidates);
//   - unconstrained/floating inputs: free variables that never reach a
//     state update, output, or path constraint;
//   - width/extract/ITE discipline on the DAG plus interface-contract
//     widths, and rtl.Strobe protocol checks on the DBus requests.
//
// An optional bounded mode SAT-probes whether each decode mux arm is
// selectable under the walk order, cross-checked against the purely
// bitwise overlap answer from internal/decodecheck.
//
// smt builder panics (*smt.BuildError) raised by a defective cycle
// function are recovered at the path boundary and converted into
// build-panic findings instead of crashing the analyzer.
package dutlint

import (
	"fmt"
	"sort"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/obs"
	"symriscv/internal/rtl"
	"symriscv/internal/smt"
)

// RootClass labels the kind of observable a Root is.
type RootClass string

// Root classes.
const (
	ClassState RootClass = "state" // architectural state next-value (PC, registers)
	ClassCSR   RootClass = "csr"   // CSR next-value
	ClassRVFI  RootClass = "rvfi"  // RVFI retirement port field
	ClassBus   RootClass = "bus"   // data-bus output
)

// Root is one labeled observable of the cycle function on one path.
type Root struct {
	Class RootClass
	Name  string
	Term  *smt.Term
}

// BusAccess is one DBus transaction the core emitted on one path.
type BusAccess struct {
	Write  bool
	Addr   *smt.Term
	Strobe rtl.Strobe
	WData  *smt.Term // nil on loads
}

// CycleResult is what a DUT's Run returns for one explored path.
type CycleResult struct {
	Roots []Root
	Bus   []BusAccess
}

// AddRoot appends a labeled observable, ignoring nil terms (absent fields).
func (r *CycleResult) AddRoot(class RootClass, name string, t *smt.Term) {
	if t == nil {
		return
	}
	r.Roots = append(r.Roots, Root{Class: class, Name: name, Term: t})
}

// DecodeArm is one row of the DUT's priority decode table, in walk order.
type DecodeArm struct {
	Op          string
	Mask, Match uint32
}

// DUT is the adapter interface a core must implement to be lintable.
type DUT interface {
	// Name identifies the core in reports and allowlists.
	Name() string
	// Run drives one instruction through a fresh core instance with
	// fully-free inputs, returning the observable roots of the resulting
	// transition relation for the current path. It is invoked once per
	// exploration path under the engine's replay discipline.
	Run(eng *core.Engine) (*CycleResult, error)
	// DecodeArms returns the priority decode table for the SAT-probe
	// reachability mode and its decodecheck cross-check.
	DecodeArms() []DecodeArm
}

// Options configure one lint run.
type Options struct {
	// MaxPaths bounds the exploration; 0 means exhaustive. A truncated
	// exploration downgrades the analyses that need full path coverage
	// (dead logic, unconstrained inputs, constant candidates) and reports
	// a partial-exploration finding instead of unsound results.
	MaxPaths int
	// MaxTime bounds the exploration wall clock; 0 means unlimited.
	MaxTime time.Duration
	// NoQueryCache and NoTermRewrites are the usual ablation toggles,
	// passed through to the explorer.
	NoQueryCache   bool
	NoTermRewrites bool
	// Obs, when non-nil, records exploration spans and counters.
	Obs *obs.Recorder
	// SATProbe enables the bounded decode-arm reachability mode.
	SATProbe bool
	// SATConflictBudget bounds each probe query (default 50000 conflicts).
	SATConflictBudget uint64
	// Samples is the number of deterministic sample environments for the
	// constant-candidate analysis (default 8).
	Samples int
}

// Finding classes, in report order.
const (
	FindBuildPanic    = "build-panic"   // smt builder discipline violation in the cycle function
	FindDriveError    = "drive-error"   // the drive loop could not complete a path
	FindWidth         = "width"         // DAG or interface-contract width violation
	FindStrobe        = "strobe"        // illegal rtl.Strobe pattern on an enabled request
	FindBusAlign      = "bus-align"     // non-word-aligned or non-constant request address
	FindDeadLogic     = "dead-logic"    // term in no observable cone
	FindUnconstrained = "unconstrained" // free input in no cone and no path constraint
	FindConstCand     = "const-cand"    // unfolded constant-valued signal (rewrite candidate)
	FindUnreachArm    = "unreach-arm"   // decode arm never selectable (SAT probe)
	FindProbeXCheck   = "probe-xcheck"  // SAT probe and decodecheck overlap answer disagree
	FindPartial       = "partial"       // exploration truncated; coverage analyses skipped
)

// Finding is one reported defect or notable condition.
type Finding struct {
	Class   string // one of the Find* classes
	Name    string // stable identifier within the class (allowlist key)
	Detail  string // human-readable description
	Allowed bool   // matched by the allowlist
}

func (f Finding) String() string {
	tag := ""
	if f.Allowed {
		tag = " (allowed)"
	}
	return fmt.Sprintf("%s %s%s: %s", f.Class, f.Name, tag, f.Detail)
}

// BitRange is a run of adjacent root bits with identical input support.
type BitRange struct {
	Hi, Lo int
	Deps   []string // input slices "var[h:l]", sorted by variable name
}

// COIEntry is the cone of influence of one named observable.
type COIEntry struct {
	Class  RootClass
	Name   string
	Width  int      // 0 for Boolean observables
	Inputs []string // sorted names of all input variables in the cone
	Bits   []BitRange
}

// Report is the result of linting one DUT.
type Report struct {
	Core      string
	Paths     int
	Exhausted bool
	Terms     int // terms the cycle function interned (beyond the baseline)
	Inputs    int // free input variables
	Arms      int // decode arms SAT-probed (0 when the probe is off)
	COI       []COIEntry
	Findings  []Finding

	// Wall-clock split, excluded from the JSON contract: DriveElapsed is
	// the symbolic exploration, AnalyzeElapsed the pure DAG analysis.
	DriveElapsed   time.Duration
	AnalyzeElapsed time.Duration
}

// Failed returns the findings not covered by the allowlist.
func (r *Report) Failed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Allowed {
			out = append(out, f)
		}
	}
	return out
}

// Clean reports whether the lint passed modulo the allowlist.
func (r *Report) Clean() bool { return len(r.Failed()) == 0 }

// Run lints one DUT: drive the symbolic cycle, analyze the DAG, probe the
// decode table when asked, then apply the allowlist.
func Run(dut DUT, opts Options, allow *Allowlist) *Report {
	rep := &Report{Core: dut.Name()}

	col := newCollector()
	driveStart := time.Now()
	xrep := drive(dut, opts, col)
	rep.DriveElapsed = time.Since(driveStart)
	rep.Paths = xrep.Stats.Paths
	rep.Exhausted = xrep.Exhausted

	analyzeStart := time.Now()
	analyze(rep, col, opts)
	if opts.SATProbe {
		probeArms(rep, dut, opts)
	}
	rep.AnalyzeElapsed = time.Since(analyzeStart)

	sortFindings(rep.Findings)
	if allow != nil {
		for i := range rep.Findings {
			rep.Findings[i].Allowed = allow.Allows(rep.Core, rep.Findings[i])
		}
	}
	return rep
}

// classOrder ranks finding classes for stable report ordering.
var classOrder = map[string]int{
	FindBuildPanic: 0, FindDriveError: 1, FindWidth: 2, FindStrobe: 3,
	FindBusAlign: 4, FindDeadLogic: 5, FindUnconstrained: 6, FindConstCand: 7,
	FindUnreachArm: 8, FindProbeXCheck: 9, FindPartial: 10,
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Class != fs[j].Class {
			return classOrder[fs[i].Class] < classOrder[fs[j].Class]
		}
		if fs[i].Name != fs[j].Name {
			return fs[i].Name < fs[j].Name
		}
		return fs[i].Detail < fs[j].Detail
	})
}
