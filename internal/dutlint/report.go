package dutlint

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Format renders the human-readable report.
func (r *Report) Format(verbose bool) string {
	var b strings.Builder
	verdict := "CLEAN"
	if failed := r.Failed(); len(failed) > 0 {
		verdict = fmt.Sprintf("FAIL (%d findings)", len(failed))
	} else if len(r.Findings) > 0 {
		verdict = fmt.Sprintf("CLEAN (%d allowed findings)", len(r.Findings))
	}
	exh := "exhausted"
	if !r.Exhausted {
		exh = "truncated"
	}
	fmt.Fprintf(&b, "dut-lint [%s]: %s\n", r.Core, verdict)
	fmt.Fprintf(&b, "  %d paths (%s), %d terms, %d free inputs, drive %v, analyze %v\n",
		r.Paths, exh, r.Terms, r.Inputs, r.DriveElapsed.Round(1000000), r.AnalyzeElapsed.Round(1000000))
	if r.Arms > 0 {
		fmt.Fprintf(&b, "  %d decode arms SAT-probed\n", r.Arms)
	}
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if verbose {
		for _, e := range r.COI {
			fmt.Fprintf(&b, "  coi %s.%s (%d bits) <- %s\n", e.Class, e.Name, e.Width, strings.Join(e.Inputs, ", "))
			for _, br := range e.Bits {
				if br.Hi == br.Lo {
					fmt.Fprintf(&b, "    bit  [%d]     <- %s\n", br.Hi, strings.Join(br.Deps, ", "))
				} else {
					fmt.Fprintf(&b, "    bits [%d:%d] <- %s\n", br.Hi, br.Lo, strings.Join(br.Deps, ", "))
				}
			}
		}
	}
	return b.String()
}

// WriteJSON emits the machine-readable report. Like the internal/obs JSONL
// schema, fields are hand-encoded so the byte layout is part of the
// contract (stable ordering, golden-testable): wall-clock durations are
// excluded, everything else is emitted in a fixed order with findings and
// COI entries pre-sorted by Run.
//
//	{"v":1,"core":"...","paths":N,"exhausted":true,"terms":N,"inputs":N,
//	 "arms":N,"findings":[{"class":"...","name":"...","detail":"...",
//	 "allowed":false}],"coi":[{"class":"state","name":"pc_next","width":32,
//	 "inputs":["..."],"bits":[{"hi":31,"lo":0,"deps":["..."]}]}]}
func (r *Report) WriteJSON(w io.Writer) error {
	var buf []byte
	buf = append(buf, `{"v":1,"core":`...)
	buf = strconv.AppendQuote(buf, r.Core)
	buf = append(buf, `,"paths":`...)
	buf = strconv.AppendInt(buf, int64(r.Paths), 10)
	buf = append(buf, `,"exhausted":`...)
	buf = strconv.AppendBool(buf, r.Exhausted)
	buf = append(buf, `,"terms":`...)
	buf = strconv.AppendInt(buf, int64(r.Terms), 10)
	buf = append(buf, `,"inputs":`...)
	buf = strconv.AppendInt(buf, int64(r.Inputs), 10)
	buf = append(buf, `,"arms":`...)
	buf = strconv.AppendInt(buf, int64(r.Arms), 10)
	buf = append(buf, `,"findings":[`...)
	for i, f := range r.Findings {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"class":`...)
		buf = strconv.AppendQuote(buf, f.Class)
		buf = append(buf, `,"name":`...)
		buf = strconv.AppendQuote(buf, f.Name)
		buf = append(buf, `,"detail":`...)
		buf = strconv.AppendQuote(buf, f.Detail)
		buf = append(buf, `,"allowed":`...)
		buf = strconv.AppendBool(buf, f.Allowed)
		buf = append(buf, '}')
	}
	buf = append(buf, `],"coi":[`...)
	for i, e := range r.COI {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"class":`...)
		buf = strconv.AppendQuote(buf, string(e.Class))
		buf = append(buf, `,"name":`...)
		buf = strconv.AppendQuote(buf, e.Name)
		buf = append(buf, `,"width":`...)
		buf = strconv.AppendInt(buf, int64(e.Width), 10)
		buf = append(buf, `,"inputs":`...)
		buf = appendStrings(buf, e.Inputs)
		buf = append(buf, `,"bits":[`...)
		for j, br := range e.Bits {
			if j > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"hi":`...)
			buf = strconv.AppendInt(buf, int64(br.Hi), 10)
			buf = append(buf, `,"lo":`...)
			buf = strconv.AppendInt(buf, int64(br.Lo), 10)
			buf = append(buf, `,"deps":`...)
			buf = appendStrings(buf, br.Deps)
			buf = append(buf, '}')
		}
		buf = append(buf, `]}`...)
	}
	buf = append(buf, `]}`...)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	return err
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = append(buf, '[')
	for i, s := range ss {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendQuote(buf, s)
	}
	return append(buf, ']')
}
