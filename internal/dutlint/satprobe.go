package dutlint

import (
	"fmt"

	"symriscv/internal/decodecheck"
	"symriscv/internal/smt"
	"symriscv/internal/solver"
)

// defaultProbeBudget bounds each reachability query's SAT conflicts; the
// probe is advisory, so running out of budget downgrades one arm's answer
// to "unknown" instead of stalling the lint.
const defaultProbeBudget = 50000

// probeArms SAT-probes whether each decode arm is selectable under the
// walk order: arm i is reachable iff some instruction word matches row i
// and no earlier row. The answers are cross-checked against the purely
// bitwise shadow analysis from internal/decodecheck — a full pairwise
// shadow (an earlier row's mask is a subset of arm i's and the matches
// agree on it) proves unreachability without a solver, so the two methods
// must agree wherever both are conclusive.
func probeArms(rep *Report, dut DUT, opts Options) {
	arms := dut.DecodeArms()
	rep.Arms = len(arms)
	if len(arms) == 0 {
		return
	}

	budget := opts.SATConflictBudget
	if budget == 0 {
		budget = defaultProbeBudget
	}
	// The probe runs in its own context and solver: its queries must not
	// pollute the transition-relation DAG the structural analyses walked.
	ctx := smt.NewContext()
	sol := solver.New(ctx)
	sol.SetConflictBudget(budget)
	insn := ctx.Var("insn", 32)

	match := func(a DecodeArm) *smt.Term {
		return ctx.Eq(ctx.And(insn, ctx.BV(32, uint64(a.Mask))), ctx.BV(32, uint64(a.Match)))
	}

	// Bitwise answer: arm i is shadowed when some earlier row matches
	// every word arm i matches (maskJ ⊆ maskI and matches agree on maskJ).
	shadowed := make([]bool, len(arms))
	for i, a := range arms {
		for j := 0; j < i; j++ {
			b := arms[j]
			if b.Mask&^a.Mask == 0 && a.Match&b.Mask == b.Match {
				shadowed[i] = true
				break
			}
		}
	}
	overlaps := decodecheck.FindOverlaps(armEntries(arms))
	overlapsEarlier := make([]bool, len(arms))
	for _, o := range overlaps {
		overlapsEarlier[o.J] = true
	}

	for i, a := range arms {
		assumptions := []*smt.Term{match(a)}
		for j := 0; j < i; j++ {
			assumptions = append(assumptions, ctx.BNot(match(arms[j])))
		}
		name := fmt.Sprintf("arm%02d:%s", i, a.Op)
		switch sol.Check(assumptions...) {
		case solver.Unsat:
			rep.Findings = append(rep.Findings, Finding{
				Class: FindUnreachArm, Name: name,
				Detail: fmt.Sprintf("decode arm %d (%s mask=%#08x match=%#08x) is never selected: every matching word hits an earlier row", i, a.Op, a.Mask, a.Match),
			})
			// Cross-check: an unreachable arm must at least overlap some
			// earlier row bitwise; a solver-unreachable arm with no
			// bitwise overlap means one of the two analyses is wrong.
			if !overlapsEarlier[i] && !shadowed[i] {
				rep.Findings = append(rep.Findings, Finding{
					Class: FindProbeXCheck, Name: name,
					Detail: "SAT probe says unreachable but decodecheck finds no overlapping earlier row",
				})
			}
		case solver.Sat:
			// Cross-check the other direction: a full bitwise shadow
			// proves unreachability, so Sat contradicts it.
			if shadowed[i] {
				rep.Findings = append(rep.Findings, Finding{
					Class: FindProbeXCheck, Name: name,
					Detail: "decodecheck proves a full shadow by an earlier row but the SAT probe found a selecting word",
				})
			}
		case solver.Unknown:
			rep.Findings = append(rep.Findings, Finding{
				Class: FindProbeXCheck, Name: name,
				Detail: fmt.Sprintf("probe exceeded the %d-conflict budget; arm reachability undecided", budget),
			})
		}
	}
}

func armEntries(arms []DecodeArm) []decodecheck.Entry {
	out := make([]decodecheck.Entry, len(arms))
	for i, a := range arms {
		out[i] = decodecheck.Entry{Mask: a.Mask, Match: a.Match, Op: a.Op}
	}
	return out
}
