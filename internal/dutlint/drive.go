package dutlint

import (
	"fmt"

	"symriscv/internal/core"
	"symriscv/internal/rtl"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// rootAgg merges one named observable across paths: hash-consing interns
// identical per-path computations to the same *smt.Term, so the set of
// distinct terms stays near the number of decode arms, not paths.
type rootAgg struct {
	class RootClass
	terms map[*smt.Term]struct{}
	order []*smt.Term // insertion order, for deterministic iteration
}

// busKey identifies a distinct bus transaction shape for deduplication.
type busKey struct {
	write       bool
	addr, wdata uint32 // term IDs (0 when nil)
	strobe      rtl.Strobe
}

// collector accumulates observables across every explored path. The
// explorer is sequential, so no locking is needed.
type collector struct {
	ctx      *smt.Context
	baseline int // terms interned before the first path ran

	roots     map[string]*rootAgg
	rootNames []string // insertion order
	pcs       map[*smt.Term]struct{}
	pcOrder   []*smt.Term
	inputs    map[*smt.Term]struct{}
	inOrder   []*smt.Term
	bus       []BusAccess
	busSeen   map[busKey]struct{}

	findings   []Finding
	findSeen   map[string]struct{} // class+name+detail dedup across paths
	driveFails int
}

func newCollector() *collector {
	return &collector{
		roots:    make(map[string]*rootAgg),
		pcs:      make(map[*smt.Term]struct{}),
		inputs:   make(map[*smt.Term]struct{}),
		busSeen:  make(map[busKey]struct{}),
		findSeen: make(map[string]struct{}),
	}
}

func (col *collector) addFinding(class, name, detail string) {
	key := class + "\x00" + name + "\x00" + detail
	if _, ok := col.findSeen[key]; ok {
		return
	}
	col.findSeen[key] = struct{}{}
	col.findings = append(col.findings, Finding{Class: class, Name: name, Detail: detail})
}

func (col *collector) addRoot(r Root) {
	agg, ok := col.roots[r.Name]
	if !ok {
		agg = &rootAgg{class: r.Class, terms: make(map[*smt.Term]struct{})}
		col.roots[r.Name] = agg
		col.rootNames = append(col.rootNames, r.Name)
	}
	if _, ok := agg.terms[r.Term]; !ok {
		agg.terms[r.Term] = struct{}{}
		agg.order = append(agg.order, r.Term)
	}
}

func (col *collector) addBus(b BusAccess) {
	k := busKey{write: b.Write, strobe: b.Strobe}
	if b.Addr != nil {
		k.addr = b.Addr.ID()
	}
	if b.WData != nil {
		k.wdata = b.WData.ID()
	}
	if _, ok := col.busSeen[k]; ok {
		return
	}
	col.busSeen[k] = struct{}{}
	col.bus = append(col.bus, b)
}

// drive explores every feasible path of the DUT's cycle function, feeding
// the collector. smt builder panics are converted into build-panic findings
// at the path boundary; every other panic (including the engine's internal
// abort signal) passes through untouched.
func drive(dut DUT, opts Options, col *collector) *core.Report {
	run := func(eng *core.Engine) error {
		if col.ctx == nil {
			col.ctx = eng.Context()
			col.baseline = col.ctx.NumTerms()
		}
		defer func() {
			// Inputs and path constraints are collected even when the
			// cycle function dies mid-path: a constrained term is not
			// dead, however the path ended.
			for _, v := range eng.SymbolicInputs() {
				if _, ok := col.inputs[v]; !ok {
					col.inputs[v] = struct{}{}
					col.inOrder = append(col.inOrder, v)
				}
			}
			for _, pc := range eng.PathConstraints() {
				if _, ok := col.pcs[pc]; !ok {
					col.pcs[pc] = struct{}{}
					col.pcOrder = append(col.pcOrder, pc)
				}
			}
			if r := recover(); r != nil {
				be, ok := r.(*smt.BuildError)
				if !ok {
					panic(r)
				}
				col.addFinding(FindBuildPanic, be.Op, be.Error())
			}
		}()
		res, err := dut.Run(eng)
		if err != nil {
			col.driveFails++
			col.addFinding(FindDriveError, dut.Name(), err.Error())
			return nil
		}
		for _, r := range res.Roots {
			col.addRoot(r)
		}
		for _, b := range res.Bus {
			col.addBus(b)
		}
		return nil
	}

	x := core.NewExplorer(run)
	return x.Explore(core.Options{
		MaxPaths:       opts.MaxPaths,
		MaxTime:        opts.MaxTime,
		NoQueryCache:   opts.NoQueryCache,
		NoTermRewrites: opts.NoTermRewrites,
		Obs:            opts.Obs,
	})
}

// stepCore is the cycle-level surface both cores share; the adapters'
// common drive loop runs against it.
type stepCore interface {
	Step(rtl.IBusResponse, rtl.DBusResponse) (rtl.IBusRequest, rtl.DBusRequest)
	Retirement() *rvfi.Retirement
}

// driveOne steps the core until the first retirement, answering every
// fetch with a fresh free symbolic instruction word and every data-bus
// request with a free symbolic read word. It returns the retirement
// record and the DBus requests the core emitted. The final cycle's bus
// requests are recorded but not serviced (the slot is over).
func driveOne(eng *core.Engine, c stepCore, cycleLimit int) (*rvfi.Retirement, []BusAccess, error) {
	var ib rtl.IBusResponse
	var db rtl.DBusResponse
	var bus []BusAccess
	nrd := 0
	for cycle := 0; cycle < cycleLimit; cycle++ {
		ibReq, dbReq := c.Step(ib, db)
		ib, db = rtl.IBusResponse{}, rtl.DBusResponse{}
		if dbReq.Enable {
			bus = append(bus, BusAccess{
				Write:  dbReq.Write,
				Addr:   dbReq.Address,
				Strobe: dbReq.WrStrobe,
				WData:  dbReq.WriteData,
			})
		}
		if ret := c.Retirement(); ret.Valid {
			r := *ret
			return &r, bus, nil
		}
		if ibReq.FetchEnable {
			if ibReq.Address == nil || !ibReq.Address.IsConst() {
				return nil, bus, fmt.Errorf("IBus fetch address is not concrete")
			}
			addr := uint32(ibReq.Address.ConstVal())
			w := eng.MakeSymbolic(fmt.Sprintf("insn_%08x", addr), 32)
			ib = rtl.IBusResponse{InstructionReady: true, Instruction: w}
		}
		if dbReq.Enable {
			rd := eng.MakeSymbolic(fmt.Sprintf("dbus_rdata_%d", nrd), 32)
			nrd++
			db = rtl.DBusResponse{DataReady: true, ReadData: rd}
		}
	}
	return nil, bus, fmt.Errorf("no retirement within %d cycles", cycleLimit)
}
