package dutlint

import (
	"fmt"
	"os"
	"strings"
)

// AllowEntry is one allowlist line: a finding matches when its class and
// name match (name supports a trailing-* prefix glob) for the given core
// ("*" covers both cores).
type AllowEntry struct {
	Class string
	Core  string
	Name  string
	Line  int // 1-based source line, for stale-entry reporting
}

func (e AllowEntry) matches(core string, f Finding) bool {
	if e.Class != f.Class {
		return false
	}
	if e.Core != "*" && e.Core != core {
		return false
	}
	if strings.HasSuffix(e.Name, "*") {
		return strings.HasPrefix(f.Name, strings.TrimSuffix(e.Name, "*"))
	}
	return e.Name == f.Name
}

// Allowlist holds the intentional findings a lint run tolerates: E-series
// fault hooks, speculative-prefetch inputs, and similar by-design
// structures. The file format is line-based:
//
//	// comment (also full-line #)
//	<class> <core> <name>
//
// where <core> is microrv32, pipecore, or *, and <name> may end in * for
// a prefix match. Blank lines are ignored.
type Allowlist struct {
	entries []AllowEntry
	used    map[int]bool // entry index -> matched something
}

// ParseAllowlist parses the allowlist format from a string.
func ParseAllowlist(text string) (*Allowlist, error) {
	al := &Allowlist{used: make(map[int]bool)}
	for i, line := range strings.Split(text, "\n") {
		s := strings.TrimSpace(line)
		if idx := strings.Index(s, "//"); idx >= 0 {
			s = strings.TrimSpace(s[:idx])
		}
		// Full-line # comments only: finding names may contain '#' (dbus#0).
		if strings.HasPrefix(s, "#") {
			s = ""
		}
		if s == "" {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 3 {
			return nil, fmt.Errorf("allowlist line %d: want \"<class> <core> <name>\", got %q", i+1, line)
		}
		if _, ok := classOrder[fields[0]]; !ok {
			return nil, fmt.Errorf("allowlist line %d: unknown finding class %q", i+1, fields[0])
		}
		al.entries = append(al.entries, AllowEntry{
			Class: fields[0], Core: fields[1], Name: fields[2], Line: i + 1,
		})
	}
	return al, nil
}

// LoadAllowlist reads and parses an allowlist file.
func LoadAllowlist(path string) (*Allowlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	al, err := ParseAllowlist(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return al, nil
}

// Allows reports whether the finding is covered, recording entry usage for
// Stale.
func (al *Allowlist) Allows(core string, f Finding) bool {
	hit := false
	for i, e := range al.entries {
		if e.matches(core, f) {
			al.used[i] = true
			hit = true
		}
	}
	return hit
}

// Stale returns the entries that matched no finding across every Allows
// call so far — candidates for deletion once the underlying defect is
// fixed. Reported as a note, never a failure: an entry for a core the
// current invocation did not lint is not stale.
func (al *Allowlist) Stale() []AllowEntry {
	var out []AllowEntry
	for i, e := range al.entries {
		if !al.used[i] {
			out = append(out, e)
		}
	}
	return out
}
