package dutlint

import (
	"fmt"
	"sort"
	"strings"

	"symriscv/internal/smt"
)

// support maps an input variable to the mask of its bits that influence
// some output bit. Maps are shared aggressively (a "smeared" term hands
// the same map to every output bit), so callers must copy before mutating.
type support map[*smt.Term]uint64

func (s support) clone() support {
	out := make(support, len(s))
	for v, m := range s {
		out[v] = m
	}
	return out
}

// merge returns a support containing both operands, reusing a side when
// the other is empty.
func mergeSupport(a, b support) support {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := a.clone()
	for v, m := range b {
		out[v] |= m
	}
	return out
}

func supportEqual(a, b support) bool {
	if len(a) != len(b) {
		return false
	}
	for v, m := range a {
		if b[v] != m {
			return false
		}
	}
	return true
}

// termSupport is the bit-level input support of one term: perBit[i] is the
// support of output bit i (a single entry for Boolean terms). flat marks
// that every entry aliases one shared map.
type termSupport struct {
	perBit []support
	flat   bool
}

func flatSupport(n int, s support) termSupport {
	pb := make([]support, n)
	for i := range pb {
		pb[i] = s
	}
	return termSupport{perBit: pb, flat: true}
}

// all returns the union over every bit.
func (t termSupport) all() support {
	if t.flat && len(t.perBit) > 0 {
		return t.perBit[0]
	}
	var u support
	for _, s := range t.perBit {
		u = mergeSupport(u, s)
	}
	if u == nil {
		u = support{}
	}
	return u
}

// coiAnalyzer computes bit-level cones of influence over the shared DAG.
// The transfer functions are exact for the structural operators (extract,
// concat, extensions, constant shifts, ite) and conservative ("smear":
// every output bit depends on every operand bit) for the arithmetic and
// comparison operators, where bit-precise tracking would cost more than
// it tells.
type coiAnalyzer struct {
	memo map[*smt.Term]termSupport
}

func newCOIAnalyzer() *coiAnalyzer {
	return &coiAnalyzer{memo: make(map[*smt.Term]termSupport)}
}

func (a *coiAnalyzer) bits(t *smt.Term) termSupport {
	if ts, ok := a.memo[t]; ok {
		return ts
	}
	ts := a.compute(t)
	a.memo[t] = ts
	return ts
}

// width1 returns the per-bit slot count: width for bit-vectors, 1 for Bool.
func width1(t *smt.Term) int {
	if w := t.Width(); w > 0 {
		return w
	}
	return 1
}

func (a *coiAnalyzer) compute(t *smt.Term) termSupport {
	n := width1(t)
	switch t.Kind() {
	case smt.KConst, smt.KTrue, smt.KFalse:
		return flatSupport(n, support{})
	case smt.KVar:
		pb := make([]support, n)
		for i := range pb {
			pb[i] = support{t: uint64(1) << uint(i)}
		}
		return termSupport{perBit: pb}
	case smt.KExtract:
		src := a.bits(t.Arg(0))
		hi, lo := t.ExtractBounds()
		return termSupport{perBit: src.perBit[lo : hi+1], flat: src.flat}
	case smt.KConcat:
		hiPart := a.bits(t.Arg(0))
		loPart := a.bits(t.Arg(1))
		pb := make([]support, 0, n)
		pb = append(pb, loPart.perBit...)
		pb = append(pb, hiPart.perBit...)
		return termSupport{perBit: pb}
	case smt.KZExt:
		src := a.bits(t.Arg(0))
		pb := make([]support, n)
		copy(pb, src.perBit)
		empty := support{}
		for i := len(src.perBit); i < n; i++ {
			pb[i] = empty
		}
		return termSupport{perBit: pb}
	case smt.KSExt:
		src := a.bits(t.Arg(0))
		pb := make([]support, n)
		copy(pb, src.perBit)
		sign := src.perBit[len(src.perBit)-1]
		for i := len(src.perBit); i < n; i++ {
			pb[i] = sign
		}
		return termSupport{perBit: pb}
	case smt.KIte:
		cond := a.bits(t.Arg(0)).all()
		x := a.bits(t.Arg(1))
		y := a.bits(t.Arg(2))
		pb := make([]support, n)
		for i := range pb {
			pb[i] = mergeSupport(cond, mergeSupport(x.perBit[i], y.perBit[i]))
		}
		return termSupport{perBit: pb}
	case smt.KAnd, smt.KOr, smt.KXor, smt.KNot:
		// Bitwise operators are bit-parallel: output bit i depends only
		// on the operands' bit i.
		if t.Kind() == smt.KNot {
			src := a.bits(t.Arg(0))
			return termSupport{perBit: src.perBit, flat: src.flat}
		}
		x := a.bits(t.Arg(0))
		y := a.bits(t.Arg(1))
		pb := make([]support, n)
		for i := range pb {
			pb[i] = mergeSupport(x.perBit[i], y.perBit[i])
		}
		return termSupport{perBit: pb}
	case smt.KShl, smt.KLshr:
		// Constant shifts relocate the window exactly; symbolic shifts smear.
		if sh := t.Arg(1); sh.IsConst() {
			src := a.bits(t.Arg(0))
			s := int(sh.ConstVal())
			empty := support{}
			pb := make([]support, n)
			for i := range pb {
				var from int
				if t.Kind() == smt.KShl {
					from = i - s
				} else {
					from = i + s
				}
				if from >= 0 && from < len(src.perBit) {
					pb[i] = src.perBit[from]
				} else {
					pb[i] = empty
				}
			}
			return termSupport{perBit: pb}
		}
	}
	// Smear: every output bit depends on the full support of every operand.
	var u support
	for i := 0; i < t.NumArgs(); i++ {
		u = mergeSupport(u, a.bits(t.Arg(i)).all())
	}
	if u == nil {
		u = support{}
	}
	return flatSupport(n, u)
}

// reachable marks every term reachable from the given roots.
func reachable(roots []*smt.Term) map[*smt.Term]bool {
	seen := make(map[*smt.Term]bool)
	var stack []*smt.Term
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for i := 0; i < t.NumArgs(); i++ {
			if a := t.Arg(i); !seen[a] {
				seen[a] = true
				stack = append(stack, a)
			}
		}
	}
	return seen
}

// formatSupport renders a support set as sorted "var[h:l]" slices, with
// non-contiguous masks split into maximal runs.
func formatSupport(s support) []string {
	names := make([]*smt.Term, 0, len(s))
	for v := range s {
		names = append(names, v)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })
	var out []string
	for _, v := range names {
		m := s[v]
		for lo := 0; lo < 64; lo++ {
			if m&(1<<uint(lo)) == 0 {
				continue
			}
			hi := lo
			for hi+1 < 64 && m&(1<<uint(hi+1)) != 0 {
				hi++
			}
			if lo == 0 && hi == v.Width()-1 {
				out = append(out, v.Name())
			} else if lo == hi {
				out = append(out, fmt.Sprintf("%s[%d]", v.Name(), lo))
			} else {
				out = append(out, fmt.Sprintf("%s[%d:%d]", v.Name(), hi, lo))
			}
			lo = hi
		}
	}
	return out
}

// coiEntry builds the report entry for one named observable, merging the
// bit supports of every per-path variant of the root.
func coiEntry(a *coiAnalyzer, name string, agg *rootAgg) COIEntry {
	width := 0
	for _, t := range agg.order {
		if w := t.Width(); w > width {
			width = w
		}
	}
	n := width
	if n == 0 {
		n = 1
	}
	merged := make([]support, n)
	for i := range merged {
		merged[i] = support{}
	}
	for _, t := range agg.order {
		ts := a.bits(t)
		for i, s := range ts.perBit {
			merged[i] = mergeSupport(merged[i], s)
		}
	}
	entry := COIEntry{Class: agg.class, Name: name, Width: width}
	all := support{}
	for _, s := range merged {
		all = mergeSupport(all, s)
	}
	for _, dep := range formatSupport(all) {
		// Inputs lists whole variables, not slices.
		if i := strings.IndexByte(dep, '['); i >= 0 {
			dep = dep[:i]
		}
		if k := len(entry.Inputs); k == 0 || entry.Inputs[k-1] != dep {
			entry.Inputs = append(entry.Inputs, dep)
		}
	}
	// Contiguous same-support segments, high to low.
	for hi := n - 1; hi >= 0; {
		lo := hi
		for lo-1 >= 0 && supportEqual(merged[lo-1], merged[hi]) {
			lo--
		}
		entry.Bits = append(entry.Bits, BitRange{Hi: hi, Lo: lo, Deps: formatSupport(merged[hi])})
		hi = lo - 1
	}
	return entry
}
