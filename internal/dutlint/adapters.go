package dutlint

import (
	"fmt"

	"symriscv/internal/core"
	"symriscv/internal/microrv32"
	"symriscv/internal/pipecore"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

// DefaultNumRegs is the number of symbolic initial registers (x1..xN) the
// adapters give the core. Two registers cover every two-source instruction
// shape; the cores' own register-slicing forks the rd/rs fields over the
// interesting set.
const DefaultNumRegs = 2

// mrvCycleLimit and pipeCycleLimit bound one instruction slot. The longest
// microrv32 slot is a misaligned store split over two bus transactions
// (fetch + fetch-wait + exec + 2×mem ≈ 8 cycles); pipecore retires in 3.
const (
	mrvCycleLimit  = 32
	pipeCycleLimit = 16
)

// mrvDUT adapts the multi-cycle MicroRV32 core.
type mrvDUT struct {
	cfg     microrv32.Config
	numRegs int
}

// MicroRV32 returns the dutlint adapter for the MicroRV32 core. numRegs
// sets the symbolic initial registers (0 selects DefaultNumRegs).
func MicroRV32(cfg microrv32.Config, numRegs int) DUT {
	if numRegs <= 0 {
		numRegs = DefaultNumRegs
	}
	return &mrvDUT{cfg: cfg, numRegs: numRegs}
}

func (d *mrvDUT) Name() string { return "microrv32" }

func (d *mrvDUT) DecodeArms() []DecodeArm {
	return tableArms(microrv32.DecodeTableEntries(d.cfg.Faults, d.cfg.EnableM))
}

// mrvCSRs are the CSRs given free symbolic initial storage. mscratch is
// deliberate bait: the RTL core does not implement it (a Table I
// "unimpl. CSR" row), so its initial value reaches nothing and the lint
// reports it unconstrained — the committed allowlist documents the known
// deficiency.
var mrvCSRs = []struct {
	addr uint16
	name string
}{
	{riscv.CSRMStatus, "mstatus"},
	{riscv.CSRMIe, "mie"},
	{riscv.CSRMTvec, "mtvec"},
	{riscv.CSRMScratch, "mscratch"},
}

// mrvCSROuts are the CSR next-values rooted as observables: every CSR the
// transition relation can commit a write to (nil storage — never written
// on any path — is skipped by AddRoot). Omitting a writable CSR here would
// make its read-modify-write terms falsely appear dead.
var mrvCSROuts = []struct {
	addr uint16
	name string
}{
	{riscv.CSRMStatus, "mstatus"},
	{riscv.CSRMIe, "mie"},
	{riscv.CSRMTvec, "mtvec"},
	{riscv.CSRMEpc, "mepc"},
	{riscv.CSRMCause, "mcause"},
	{riscv.CSRMTval, "mtval"},
	{riscv.CSRMIp, "mip"},
	{riscv.CSRMIdeleg, "mideleg"},
	{riscv.CSRMEdeleg, "medeleg"},
	{riscv.CSRMCycle, "mcycle"},
	{riscv.CSRMInstret, "minstret"},
	{riscv.CSRMCycleH, "mcycleh"},
	{riscv.CSRMInstretH, "minstreth"},
}

func (d *mrvDUT) Run(eng *core.Engine) (*CycleResult, error) {
	c := microrv32.New(eng, d.cfg)
	c.SetPC(0)
	for i := 1; i <= d.numRegs; i++ {
		c.SetReg(i, eng.MakeSymbolic(fmt.Sprintf("reg_x%d", i), 32))
	}
	for _, cs := range mrvCSRs {
		c.SetCSR(cs.addr, eng.MakeSymbolic("csr_"+cs.name, 32))
	}
	ret, bus, err := driveOne(eng, c, mrvCycleLimit)
	if err != nil {
		return nil, err
	}
	res := &CycleResult{Bus: bus}
	res.AddRoot(ClassState, "pc_next", ret.PCWData)
	for i := 1; i <= d.numRegs; i++ {
		res.AddRoot(ClassState, fmt.Sprintf("x%d", i), c.Reg(i))
	}
	for _, cs := range mrvCSROuts {
		res.AddRoot(ClassCSR, cs.name, c.CSR(cs.addr))
	}
	addRVFIRoots(res, ret)
	return res, nil
}

// pipeDUT adapts the fetch-overlapped pipelined core.
type pipeDUT struct {
	cfg     pipecore.Config
	numRegs int
}

// Pipecore returns the dutlint adapter for the pipelined core.
func Pipecore(cfg pipecore.Config, numRegs int) DUT {
	if numRegs <= 0 {
		numRegs = DefaultNumRegs
	}
	return &pipeDUT{cfg: cfg, numRegs: numRegs}
}

func (d *pipeDUT) Name() string { return "pipecore" }

func (d *pipeDUT) DecodeArms() []DecodeArm {
	return tableArms(pipecore.DecodeTableEntries(d.cfg.Faults, d.cfg.EnableM))
}

func (d *pipeDUT) Run(eng *core.Engine) (*CycleResult, error) {
	c := pipecore.New(eng, d.cfg)
	c.SetPC(0)
	for i := 1; i <= d.numRegs; i++ {
		c.SetReg(i, eng.MakeSymbolic(fmt.Sprintf("reg_x%d", i), 32))
	}
	ret, bus, err := driveOne(eng, c, pipeCycleLimit)
	if err != nil {
		return nil, err
	}
	res := &CycleResult{Bus: bus}
	res.AddRoot(ClassState, "pc_next", ret.PCWData)
	for i := 1; i <= d.numRegs; i++ {
		res.AddRoot(ClassState, fmt.Sprintf("x%d", i), c.Reg(i))
	}
	addRVFIRoots(res, ret)
	return res, nil
}

// addRVFIRoots reports the data-carrying RVFI port fields. pc_wdata
// already appears as the pc_next state root; the remaining fields carry
// the architectural effects of the retired instruction. Nil fields
// (no register write, no memory access) are skipped per path; the
// collector unions the populated variants across paths.
func addRVFIRoots(res *CycleResult, ret *rvfi.Retirement) {
	res.AddRoot(ClassRVFI, "insn", ret.Insn)
	res.AddRoot(ClassRVFI, "pc_rdata", ret.PCRData)
	if ret.RdAddr != 0 {
		res.AddRoot(ClassRVFI, "rd_wdata", ret.RdWData)
	}
	res.AddRoot(ClassRVFI, "mem_addr", ret.MemAddr)
	res.AddRoot(ClassRVFI, "mem_wdata", ret.MemWData)
}

// tableArms converts either core's exported decode table. Both exports use
// an identical row struct; the generic constraint keeps the conversion in
// one place.
func tableArms[E interface {
	~struct {
		Mask, Match uint32
		Op          string
	}
}](entries []E) []DecodeArm {
	out := make([]DecodeArm, len(entries))
	for i, e := range entries {
		r := (struct {
			Mask, Match uint32
			Op          string
		})(e)
		out[i] = DecodeArm{Op: r.Op, Mask: r.Mask, Match: r.Match}
	}
	return out
}
