package dutlint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/microrv32"
	"symriscv/internal/pipecore"
)

// fixtureDUT seeds exactly one defect of each acceptance class: a dead
// multiply, an ignored free input, an illegal store strobe, and a decode
// arm fully shadowed by an earlier row. Everything else is clean, so the
// expected finding set is exact.
type fixtureDUT struct{}

func (fixtureDUT) Name() string { return "fixture" }

func (fixtureDUT) DecodeArms() []DecodeArm {
	return []DecodeArm{
		{Op: "addi", Mask: 0x7f, Match: 0x13},
		{Op: "shadowed", Mask: 0x707f, Match: 0x13}, // every match also hits row 0
		{Op: "lui", Mask: 0x7f, Match: 0x37},
	}
}

func (fixtureDUT) Run(eng *core.Engine) (*CycleResult, error) {
	ctx := eng.Context()
	a := eng.MakeSymbolic("in_a", 32)
	b := eng.MakeSymbolic("in_b", 32)
	eng.MakeSymbolic("in_unused", 32) // seeded: unconstrained input
	ctx.Mul(a, b)                     // seeded: dead logic (never used)

	res := &CycleResult{}
	res.AddRoot(ClassState, "out", ctx.Add(a, ctx.BV(32, 4)))
	res.AddRoot(ClassState, "pass", ctx.Xor(a, b))
	res.Bus = append(res.Bus, BusAccess{
		Write:  true,
		Addr:   ctx.BV(32, 0x100),
		Strobe: 0b0101, // seeded: not a legal lane pattern
		WData:  ctx.Or(a, b),
	})
	return res, nil
}

func TestFixtureSeededDefects(t *testing.T) {
	rep := Run(fixtureDUT{}, Options{SATProbe: true}, nil)
	if !rep.Exhausted {
		t.Fatalf("fixture exploration not exhausted")
	}
	var classes []string
	for _, f := range rep.Findings {
		classes = append(classes, f.Class)
	}
	want := []string{FindStrobe, FindDeadLogic, FindUnconstrained, FindUnreachArm}
	if strings.Join(classes, ",") != strings.Join(want, ",") {
		t.Fatalf("finding classes = %v, want %v\nreport:\n%s", classes, want, rep.Format(true))
	}
	byClass := map[string]Finding{}
	for _, f := range rep.Findings {
		byClass[f.Class] = f
	}
	if f := byClass[FindUnconstrained]; f.Name != "in_unused" {
		t.Errorf("unconstrained finding names %q, want in_unused", f.Name)
	}
	if f := byClass[FindUnreachArm]; f.Name != "arm01:shadowed" {
		t.Errorf("unreach-arm finding names %q, want arm01:shadowed", f.Name)
	}
	if f := byClass[FindStrobe]; f.Name != "dbus#0" || !strings.Contains(f.Detail, "0101") {
		t.Errorf("strobe finding = %+v", f)
	}
	if f := byClass[FindDeadLogic]; !strings.HasPrefix(f.Name, "hash:") || !strings.Contains(f.Detail, "bvmul") {
		t.Errorf("dead-logic finding = %+v", f)
	}
}

// TestFixtureCOI pins the exact bit-level cone of the fixture outputs:
// out = a + 4 smears a's bits (arithmetic), pass = a ^ b is bit-parallel.
func TestFixtureCOI(t *testing.T) {
	rep := Run(fixtureDUT{}, Options{}, nil)
	byName := map[string]COIEntry{}
	for _, e := range rep.COI {
		byName[e.Name] = e
	}
	out, ok := byName["out"]
	if !ok {
		t.Fatalf("no COI entry for out; got %+v", rep.COI)
	}
	if strings.Join(out.Inputs, ",") != "in_a" {
		t.Errorf("out inputs = %v, want [in_a]", out.Inputs)
	}
	pass := byName["pass"]
	if strings.Join(pass.Inputs, ",") != "in_a,in_b" {
		t.Errorf("pass inputs = %v, want [in_a in_b]", pass.Inputs)
	}
	// a ^ b: one contiguous segment, every bit i depending on exactly
	// in_a[i], in_b[i] — the analyzer merges equal-support runs, and all
	// 32 bits have *different* supports, so there are 32 single-bit rows.
	if len(pass.Bits) != 32 {
		t.Errorf("pass has %d bit rows, want 32 (bit-parallel xor)", len(pass.Bits))
	}
	if top := pass.Bits[0]; top.Hi != 31 || top.Lo != 31 ||
		strings.Join(top.Deps, ",") != "in_a[31],in_b[31]" {
		t.Errorf("pass top bit = %+v", top)
	}
	// a + 4: carry smears, one segment covering all 32 bits.
	if len(out.Bits) != 1 || out.Bits[0].Hi != 31 || out.Bits[0].Lo != 0 {
		t.Errorf("out bits = %+v, want one full-width segment", out.Bits)
	}
}

// panicDUT builds a width-mismatched add: the smt builder panics with
// *smt.BuildError, which must surface as a build-panic finding instead of
// crashing the lint.
type panicDUT struct{}

func (panicDUT) Name() string            { return "panic-fixture" }
func (panicDUT) DecodeArms() []DecodeArm { return nil }

func (panicDUT) Run(eng *core.Engine) (*CycleResult, error) {
	ctx := eng.Context()
	a := eng.MakeSymbolic("a32", 32)
	b := eng.MakeSymbolic("b16", 16)
	ctx.Add(a, b) // panics: width mismatch
	return &CycleResult{}, nil
}

func TestBuildPanicRecovered(t *testing.T) {
	rep := Run(panicDUT{}, Options{}, nil)
	if len(rep.Findings) == 0 {
		t.Fatalf("no findings for a panicking DUT")
	}
	f := rep.Findings[0]
	if f.Class != FindBuildPanic || f.Name != "bvadd" || !strings.Contains(f.Detail, "width mismatch 32 vs 16") {
		t.Fatalf("build-panic finding = %+v", f)
	}
}

// constDUT returns a & ~a as an observable: constant zero under every
// environment, but not folded by the builders — the const-cand analysis
// must flag it as a rewrite candidate.
type constDUT struct{}

func (constDUT) Name() string            { return "const-fixture" }
func (constDUT) DecodeArms() []DecodeArm { return nil }

func (constDUT) Run(eng *core.Engine) (*CycleResult, error) {
	ctx := eng.Context()
	a := eng.MakeSymbolic("in_a", 32)
	res := &CycleResult{}
	res.AddRoot(ClassState, "konst", ctx.And(a, ctx.Not(a)))
	res.AddRoot(ClassState, "live", ctx.Add(a, ctx.BV(32, 1)))
	return res, nil
}

func TestConstCandidate(t *testing.T) {
	rep := Run(constDUT{}, Options{}, nil)
	var consts []Finding
	for _, f := range rep.Findings {
		if f.Class == FindConstCand {
			consts = append(consts, f)
		}
	}
	if len(consts) != 1 {
		t.Fatalf("const-cand findings = %v, want exactly one", consts)
	}
	if !strings.Contains(consts[0].Detail, "0x0") || !strings.Contains(consts[0].Detail, "bvand") {
		t.Errorf("const-cand detail = %q", consts[0].Detail)
	}
}

func TestAllowlist(t *testing.T) {
	al, err := ParseAllowlist(`
// intentional fixture defects
strobe fixture dbus#0
dead-logic fixture hash:*   // term-anchored, prefix glob
unconstrained * in_unused
width pipecore never_matches
`)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(fixtureDUT{}, Options{SATProbe: true}, al)
	var open []string
	for _, f := range rep.Failed() {
		open = append(open, f.Class)
	}
	if strings.Join(open, ",") != FindUnreachArm {
		t.Errorf("open findings after allowlist = %v, want only unreach-arm", open)
	}
	stale := al.Stale()
	if len(stale) != 1 || stale[0].Name != "never_matches" {
		t.Errorf("stale entries = %+v, want the pipecore width entry", stale)
	}
	if _, err := ParseAllowlist("bogus-class * x"); err == nil {
		t.Errorf("unknown class accepted")
	}
	if _, err := ParseAllowlist("too few"); err == nil {
		t.Errorf("malformed line accepted")
	}
}

// TestGoldenJSON pins the -json byte layout (same contract as the
// internal/obs JSONL schema): field order, sorting, and escaping are all
// part of the report format. Regenerate with -run TestGoldenJSON -update.
func TestGoldenJSON(t *testing.T) {
	rep := Run(fixtureDUT{}, Options{SATProbe: true}, nil)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fixture.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON drifted from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
	// Byte-stability across runs, independent of the golden file.
	rep2 := Run(fixtureDUT{}, Options{SATProbe: true}, nil)
	var buf2 bytes.Buffer
	if err := rep2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("JSON not byte-stable across identical runs")
	}
}

// repoAllowlist loads the committed allowlist the CI lint-dut step uses.
func repoAllowlist(t *testing.T) *Allowlist {
	t.Helper()
	al, err := LoadAllowlist(filepath.Join("..", "..", "LINTDUT.allow"))
	if err != nil {
		t.Fatal(err)
	}
	return al
}

// TestMicroRV32Clean lints the repaired microrv32 exhaustively (one
// symbolic register keeps the register-slicing fan-out small for CI) and
// requires a clean verdict modulo the committed allowlist — the same gate
// the CI lint-dut step applies.
func TestMicroRV32Clean(t *testing.T) {
	rep := Run(MicroRV32(microrv32.FixedConfig(), 1), Options{SATProbe: true}, repoAllowlist(t))
	if !rep.Exhausted {
		t.Fatalf("microrv32 lint not exhausted after %d paths", rep.Paths)
	}
	if failed := rep.Failed(); len(failed) > 0 {
		t.Errorf("microrv32 lint not clean:\n%s", rep.Format(false))
	}
	if rep.AnalyzeElapsed > time.Second {
		t.Errorf("analysis phase took %v, budget is 1s", rep.AnalyzeElapsed)
	}
	t.Logf("microrv32: %d paths, %d terms, drive %v, analyze %v",
		rep.Paths, rep.Terms, rep.DriveElapsed, rep.AnalyzeElapsed)
}

func TestPipecoreClean(t *testing.T) {
	rep := Run(Pipecore(pipecore.Config{}, 1), Options{SATProbe: true}, repoAllowlist(t))
	if !rep.Exhausted {
		t.Fatalf("pipecore lint not exhausted after %d paths", rep.Paths)
	}
	if failed := rep.Failed(); len(failed) > 0 {
		t.Errorf("pipecore lint not clean:\n%s", rep.Format(false))
	}
	if rep.AnalyzeElapsed > time.Second {
		t.Errorf("analysis phase took %v, budget is 1s", rep.AnalyzeElapsed)
	}
	t.Logf("pipecore: %d paths, %d terms, drive %v, analyze %v",
		rep.Paths, rep.Terms, rep.DriveElapsed, rep.AnalyzeElapsed)
}

// TestPartialDowngrade checks that a truncated exploration reports the
// partial finding and skips the coverage analyses instead of producing
// unsound dead-logic claims.
func TestPartialDowngrade(t *testing.T) {
	rep := Run(MicroRV32(microrv32.FixedConfig(), 1), Options{MaxPaths: 3}, nil)
	if rep.Exhausted {
		t.Skip("3 paths exhausted the tree; cannot test truncation")
	}
	sawPartial := false
	for _, f := range rep.Findings {
		switch f.Class {
		case FindPartial:
			sawPartial = true
		case FindDeadLogic, FindUnconstrained, FindConstCand:
			t.Errorf("coverage finding %v reported on a truncated exploration", f)
		}
	}
	if !sawPartial {
		t.Errorf("no partial finding on a truncated exploration")
	}
}

// TestShippedMisalignedStrobes documents the known protocol deviation of
// the as-shipped core: supporting misaligned accesses by splitting them
// into two transactions produces lane patterns (e.g. 1110) outside the
// legal strobe set. The lint must surface this.
func TestShippedMisalignedStrobes(t *testing.T) {
	if testing.Short() {
		t.Skip("shipped-config lint is slow")
	}
	rep := Run(MicroRV32(microrv32.ShippedConfig(), 1), Options{}, nil)
	saw := false
	for _, f := range rep.Findings {
		if f.Class == FindStrobe {
			saw = true
		}
	}
	if !saw {
		t.Errorf("shipped misaligned-split core produced no strobe findings:\n%s", rep.Format(false))
	}
}

func ExampleReport_WriteJSON() {
	rep := Run(constDUT{}, Options{}, nil)
	var buf bytes.Buffer
	rep.WriteJSON(&buf)
	fmt.Println(strings.Contains(buf.String(), `"core":"const-fixture"`))
	// Output: true
}
