package dutlint

import (
	"fmt"
	"sort"

	"symriscv/internal/smt"
)

// maxPerClass bounds dead-logic and const-candidate finding counts so a
// badly broken DUT produces a readable report; the truncation is announced
// in the last finding of the class.
const maxPerClass = 32

// contractWidth is the interface width every root, bus address, and bus
// data term must have: the cores are RV32, their buses 32-bit.
const contractWidth = 32

// analyze runs every pure-DAG analysis over the collected observables and
// appends findings and COI entries to the report.
func analyze(rep *Report, col *collector, opts Options) {
	rep.Findings = append(rep.Findings, col.findings...)
	if col.ctx == nil {
		// No path ran at all (MaxPaths 0 cannot cause this; a panic on the
		// very first term would). Nothing to analyze.
		return
	}
	rep.Terms = col.ctx.NumTerms() - col.baseline
	rep.Inputs = len(col.inOrder)

	// Cone of influence per observable, merged across path variants.
	coi := newCOIAnalyzer()
	for _, name := range sortedRootNames(col) {
		rep.COI = append(rep.COI, coiEntry(coi, name, col.roots[name]))
	}

	checkContracts(rep, col)

	// The coverage analyses (dead logic, unconstrained inputs, constant
	// candidates) are sound only over the full path tree: a truncated
	// exploration leaves logic unexplored, not dead.
	if !rep.Exhausted {
		rep.Findings = append(rep.Findings, Finding{
			Class: FindPartial, Name: rep.Core,
			Detail: fmt.Sprintf("exploration truncated after %d paths; dead-logic/unconstrained/const-cand analyses skipped", rep.Paths),
		})
		return
	}

	live := liveTerms(col)
	checkDeadLogic(rep, col, live)
	checkUnconstrained(rep, col, coi)
	checkConstCandidates(rep, col, live, opts)
}

func sortedRootNames(col *collector) []string {
	names := append([]string(nil), col.rootNames...)
	sort.Slice(names, func(i, j int) bool {
		a, b := col.roots[names[i]], col.roots[names[j]]
		if a.class != b.class {
			return classRank(a.class) < classRank(b.class)
		}
		return names[i] < names[j]
	})
	return names
}

func classRank(c RootClass) int {
	switch c {
	case ClassState:
		return 0
	case ClassCSR:
		return 1
	case ClassRVFI:
		return 2
	case ClassBus:
		return 3
	}
	return 4
}

// liveTerms marks everything reachable from any observable: root terms,
// path constraints, and bus outputs. Input variables are leaves, so they
// add nothing to reachability on their own.
func liveTerms(col *collector) map[*smt.Term]bool {
	var roots []*smt.Term
	for _, name := range col.rootNames {
		roots = append(roots, col.roots[name].order...)
	}
	roots = append(roots, col.pcOrder...)
	for _, b := range col.bus {
		roots = append(roots, b.Addr, b.WData)
	}
	return reachable(roots)
}

// checkContracts audits interface widths, DAG construction discipline, and
// the bus protocol: every root and bus term must be 32 bits wide; extract
// bounds, concat widths, extension targets, and ite arms must be
// internally consistent (the builders enforce this, so a hit means the
// DAG was corrupted); enabled requests must carry a legal non-zero strobe,
// a concrete word-aligned address, and store data exactly on writes.
func checkContracts(rep *Report, col *collector) {
	for _, name := range col.rootNames {
		agg := col.roots[name]
		for _, t := range agg.order {
			if t.Width() != contractWidth {
				rep.Findings = append(rep.Findings, Finding{
					Class: FindWidth, Name: name,
					Detail: fmt.Sprintf("%s root %s has width %d, contract requires %d", agg.class, name, t.Width(), contractWidth),
				})
			}
		}
	}
	for i, b := range col.bus {
		name := fmt.Sprintf("dbus#%d", i)
		dir := "load"
		if b.Write {
			dir = "store"
		}
		if b.Addr == nil {
			rep.Findings = append(rep.Findings, Finding{Class: FindBusAlign, Name: name,
				Detail: dir + " request without an address"})
		} else {
			if b.Addr.Width() != contractWidth {
				rep.Findings = append(rep.Findings, Finding{Class: FindWidth, Name: name,
					Detail: fmt.Sprintf("%s address has width %d, bus is %d-bit", dir, b.Addr.Width(), contractWidth)})
			}
			if !b.Addr.IsConst() {
				rep.Findings = append(rep.Findings, Finding{Class: FindBusAlign, Name: name,
					Detail: dir + " address is symbolic; the protocol requires a concretized word address"})
			} else if b.Addr.ConstVal()%4 != 0 {
				rep.Findings = append(rep.Findings, Finding{Class: FindBusAlign, Name: name,
					Detail: fmt.Sprintf("%s address %#x is not word-aligned (lanes must be selected by the strobe)", dir, b.Addr.ConstVal())})
			}
		}
		if b.Write {
			if !b.Strobe.Valid() {
				rep.Findings = append(rep.Findings, Finding{Class: FindStrobe, Name: name,
					Detail: fmt.Sprintf("store strobe %04b is not a legal lane pattern", b.Strobe)})
			}
			if b.WData == nil {
				rep.Findings = append(rep.Findings, Finding{Class: FindWidth, Name: name,
					Detail: "store request without write data"})
			} else if b.WData.Width() != contractWidth {
				rep.Findings = append(rep.Findings, Finding{Class: FindWidth, Name: name,
					Detail: fmt.Sprintf("store data has width %d, bus is %d-bit", b.WData.Width(), contractWidth)})
			}
		} else if b.Strobe != 0 && !b.Strobe.Valid() {
			rep.Findings = append(rep.Findings, Finding{Class: FindStrobe, Name: name,
				Detail: fmt.Sprintf("load strobe %04b is not a legal lane pattern", b.Strobe)})
		}
	}
	if n := auditDAG(col); n > 0 {
		rep.Findings = append(rep.Findings, Finding{Class: FindWidth, Name: "dag",
			Detail: fmt.Sprintf("%d structurally inconsistent terms in the DAG", n)})
	}
}

// auditDAG re-validates the width discipline of every term the cycle
// function interned. The builders enforce these invariants at construction,
// so this is a cheap defense-in-depth sweep that should never fire.
func auditDAG(col *collector) int {
	bad := 0
	for id := col.baseline + 1; id <= col.ctx.NumTerms(); id++ {
		t := col.ctx.TermByID(uint32(id))
		switch t.Kind() {
		case smt.KAdd, smt.KSub, smt.KMul, smt.KUDiv, smt.KURem,
			smt.KAnd, smt.KOr, smt.KXor, smt.KShl, smt.KLshr, smt.KAshr:
			if t.Arg(0).Width() != t.Width() || t.Arg(1).Width() != t.Width() || t.Width() == 0 {
				bad++
			}
		case smt.KConcat:
			if t.Arg(0).Width()+t.Arg(1).Width() != t.Width() {
				bad++
			}
		case smt.KExtract:
			hi, lo := t.ExtractBounds()
			if lo < 0 || hi < lo || hi >= t.Arg(0).Width() || t.Width() != hi-lo+1 {
				bad++
			}
		case smt.KZExt, smt.KSExt:
			if t.Arg(0).Width() > t.Width() || t.Width() == 0 {
				bad++
			}
		case smt.KIte:
			if !t.Arg(0).IsBool() || t.Arg(1).Width() != t.Arg(2).Width() || t.Width() != t.Arg(1).Width() {
				bad++
			}
		case smt.KEq, smt.KUlt, smt.KUle, smt.KSlt, smt.KSle:
			if t.Arg(0).Width() != t.Arg(1).Width() || t.Arg(0).Width() == 0 || !t.IsBool() {
				bad++
			}
		}
	}
	return bad
}

// isWiring reports whether a term kind is pure bit rearrangement — no gate
// content. Dead wiring is canonicalisation residue: the term rewriter's
// extract/extend/concat fusions build intermediates and then supersede
// them in the same expression, leaving interned-but-unreachable slices.
// Reporting those would make every lane-splitting DUT noisy, so the
// dead-logic analysis looks through them for dead *operators* instead.
func isWiring(k smt.Kind) bool {
	switch k {
	case smt.KExtract, smt.KZExt, smt.KSExt, smt.KConcat:
		return true
	}
	return false
}

// checkDeadLogic reports maximal dead operator terms: bit-vector terms with
// gate content (arithmetic, bitwise, muxes, comparisons feeding BVs) that
// no observable, path constraint, or bus output can see. Within a dead
// region only the topmost operators are reported (a dead operator under
// another dead operator is implied); pure-wiring dead terms are suppressed
// entirely (see isWiring). Variables and constants are exempt — floating
// inputs get their own analysis, and constants are shared plumbing.
func checkDeadLogic(rep *Report, col *collector, live map[*smt.Term]bool) {
	var dead []*smt.Term
	deadSet := make(map[*smt.Term]bool)
	for id := col.baseline + 1; id <= col.ctx.NumTerms(); id++ {
		t := col.ctx.TermByID(uint32(id))
		if t.Width() == 0 || t.Kind() == smt.KConst || t.Kind() == smt.KVar || live[t] {
			continue
		}
		dead = append(dead, t)
		deadSet[t] = true
	}
	// Mark every dead term that sits below a dead operator (descending
	// through dead wiring): those are implied by their topmost operator.
	covered := make(map[*smt.Term]bool)
	var markBelow func(t *smt.Term)
	markBelow = func(t *smt.Term) {
		for i := 0; i < t.NumArgs(); i++ {
			a := t.Arg(i)
			if deadSet[a] && !covered[a] {
				covered[a] = true
				markBelow(a)
			}
		}
	}
	for _, t := range dead {
		if !isWiring(t.Kind()) {
			markBelow(t)
		}
	}
	n := 0
	for _, t := range dead {
		if isWiring(t.Kind()) || covered[t] {
			continue
		}
		n++
		if n > maxPerClass {
			continue
		}
		rep.Findings = append(rep.Findings, Finding{
			Class: FindDeadLogic, Name: termKey(col.ctx, t),
			Detail: fmt.Sprintf("%d-bit %s term unreachable from every state, RVFI, bus output and path constraint: %s",
				t.Width(), t.Kind(), clip(t.String(), 120)),
		})
	}
	if n > maxPerClass {
		rep.Findings = append(rep.Findings, Finding{Class: FindDeadLogic, Name: "truncated",
			Detail: fmt.Sprintf("%d further dead terms not listed", n-maxPerClass)})
	}
}

// checkUnconstrained reports free inputs that appear in no observable cone
// and no path constraint: the DUT asked for them and then ignored them on
// every explored path.
func checkUnconstrained(rep *Report, col *collector, coi *coiAnalyzer) {
	inCone := support{}
	for _, name := range col.rootNames {
		for _, t := range col.roots[name].order {
			inCone = mergeSupport(inCone, coi.bits(t).all())
		}
	}
	for _, pc := range col.pcOrder {
		inCone = mergeSupport(inCone, coi.bits(pc).all())
	}
	for _, b := range col.bus {
		if b.Addr != nil {
			inCone = mergeSupport(inCone, coi.bits(b.Addr).all())
		}
		if b.WData != nil {
			inCone = mergeSupport(inCone, coi.bits(b.WData).all())
		}
	}
	for _, v := range col.inOrder {
		if _, ok := inCone[v]; !ok {
			rep.Findings = append(rep.Findings, Finding{
				Class: FindUnconstrained, Name: v.Name(),
				Detail: fmt.Sprintf("free input %s (%d bits) reaches no state update, output, or path constraint", v.Name(), v.Width()),
			})
		}
	}
}

// sampleSeeds are the deterministic bases of the constant-candidate
// environments; each variable's value is splitmix64(seed ^ nameHash).
var sampleSeeds = [...]uint64{
	0x9e3779b97f4a7c15, 0x2545f4914f6cdd1d, 0xda942042e4dd58b5,
	0x8cb92ba72f3d8dd7, 0x6a09e667f3bcc908, 0xbb67ae8584caa73b,
	0x3c6ef372fe94f82b, 0xa54ff53a5f1d36f1,
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func nameHash(s string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a 64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// sampleEnv deterministically assigns every variable a value. The two
// extremal kinds pin the corner cases pseudo-random sampling almost never
// hits (x != 0 comparators, all-ones masks); the pseudo-random kind derives
// each value from the variable name and the sample seed.
type sampleEnv struct {
	kind int // 0: all-zeros, 1: all-ones, 2: pseudo-random
	seed uint64
}

func (e sampleEnv) Lookup(name string, width int) (uint64, bool) {
	switch e.kind {
	case 0:
		return 0, true
	case 1:
		return ^uint64(0), true // the evaluator masks to width
	}
	return splitmix64(e.seed ^ nameHash(name)), true
}

// checkConstCandidates samples every live non-constant term the cycle
// function built under several deterministic environments; a term whose
// value never moves is (with overwhelming probability) a constant the
// rewriter failed to fold — a candidate for a new rule in smt/rewrite.go.
// This is a sampling heuristic, documented as such: it can in principle
// flag a term that is non-constant only on an unsampled input, which is
// what the allowlist is for.
func checkConstCandidates(rep *Report, col *collector, live map[*smt.Term]bool, opts Options) {
	samples := opts.Samples
	if samples <= 0 {
		samples = 8
	}
	if samples > 2+len(sampleSeeds) {
		samples = 2 + len(sampleSeeds)
	}
	envs := []sampleEnv{{kind: 0}, {kind: 1}}
	for i := 0; len(envs) < samples && i < len(sampleSeeds); i++ {
		envs = append(envs, sampleEnv{kind: 2, seed: sampleSeeds[i]})
	}
	samples = len(envs)
	evals := make([]*smt.Evaluator, samples)
	for i := range evals {
		evals[i] = smt.NewEvaluator(envs[i])
	}
	n := 0
	for id := col.baseline + 1; id <= col.ctx.NumTerms(); id++ {
		t := col.ctx.TermByID(uint32(id))
		if t.Width() == 0 || t.Kind() == smt.KConst || t.Kind() == smt.KVar || !live[t] {
			continue
		}
		first, err := evals[0].Eval(t)
		if err != nil {
			continue
		}
		constant := true
		for i := 1; i < samples && constant; i++ {
			v, err := evals[i].Eval(t)
			if err != nil || v != first {
				constant = false
			}
		}
		if !constant {
			continue
		}
		n++
		if n > maxPerClass {
			continue
		}
		rep.Findings = append(rep.Findings, Finding{
			Class: FindConstCand, Name: termKey(col.ctx, t),
			Detail: fmt.Sprintf("%d-bit %s term evaluates to %#x under all %d sample environments; rewrite-rule candidate: %s",
				t.Width(), t.Kind(), first, samples, clip(t.String(), 120)),
		})
	}
	if n > maxPerClass {
		rep.Findings = append(rep.Findings, Finding{Class: FindConstCand, Name: "truncated",
			Detail: fmt.Sprintf("%d further constant candidates not listed", n-maxPerClass)})
	}
}

// termKey is the stable allowlist identifier of a term-anchored finding:
// the context-independent structural hash, immune to term-ID drift across
// exploration-order changes.
func termKey(ctx *smt.Context, t *smt.Term) string {
	return fmt.Sprintf("hash:%016x", ctx.StructuralHash(t))
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
