package iss

import (
	"symriscv/internal/core"
	"symriscv/internal/smt"
)

// Snapshot freezes the simulator's architectural state and returns a restore
// closure rebuilding an equivalent ISS bound to a fresh engine and to the
// restored memory bindings (fork-point checkpointing: the instruction and
// data memories are snapshotted separately by the co-simulation, so the
// resumed ISS must point at the restored instances, not the originals).
// Register values and the PC are hash-consed *smt.Term pointers shared as-is;
// the CSR map and interesting-register slice are copied per restore so any
// number of resumed siblings stay isolated. irq, when non-nil, replaces the
// frozen interrupt source (which is bound to the captured engine).
func (s *ISS) Snapshot() func(eng *core.Engine, imem InstrFetcher, dmem DataMemory, irq IrqSource) *ISS {
	frozen := *s
	csr := copyCSRs(s.csr)
	interesting := append([]int(nil), s.interesting...)
	return func(eng *core.Engine, imem InstrFetcher, dmem DataMemory, irq IrqSource) *ISS {
		n := frozen
		n.eng = eng
		n.imem = imem
		n.dmem = dmem
		n.csr = copyCSRs(csr)
		n.interesting = append([]int(nil), interesting...)
		n.irq = irq
		return &n
	}
}

func copyCSRs(m map[uint16]*smt.Term) map[uint16]*smt.Term {
	out := make(map[uint16]*smt.Term, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
